package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pcltm/stm"
)

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postTx(t *testing.T, url string, cmds []Command) (*http.Response, TxResponse) {
	t.Helper()
	body, _ := json.Marshal(TxRequest{Cmds: cmds})
	resp, err := http.Post(url+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out TxResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func getKV(t *testing.T, url string, key int64) (int, KVResponse) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/kv/%d", url, key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out KVResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, out
}

// TestCommandQueryRoundTrip drives every op through /tx and reads the
// results back through both paths, on every engine.
func TestCommandQueryRoundTrip(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			_, ts := startServer(t, Config{Partitions: 4, Engine: kind, Buckets: 16})

			resp, out := postTx(t, ts.URL, []Command{
				{Op: "put", Key: 1, Value: 10},
				{Op: "put", Key: 2, Value: 20},
				{Op: "incr", Key: 1, Value: 5},
				{Op: "get", Key: 2},
				{Op: "incr", Key: 3}, // zero delta means 1
				{Op: "delete", Key: 2},
				{Op: "get", Key: 2},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			want := []CmdResult{
				{Value: 10, Found: true},
				{Value: 20, Found: true},
				{Value: 15, Found: true},
				{Value: 20, Found: true},
				{Value: 1, Found: true},
				{Value: 20, Found: true},
				{Value: 0, Found: false},
			}
			for i, w := range want {
				if out.Results[i] != w {
					t.Fatalf("result[%d] = %+v, want %+v", i, out.Results[i], w)
				}
			}

			if code, kv := getKV(t, ts.URL, 1); code != 200 || kv.Value != 15 || !kv.Found {
				t.Fatalf("GET /kv/1 = %d %+v", code, kv)
			}
			if code, kv := getKV(t, ts.URL, 2); code != 200 || kv.Found {
				t.Fatalf("GET /kv/2 = %d %+v, want found=false", code, kv)
			}
		})
	}
}

// TestBadRequests pins the 4xx surface.
func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Partitions: 2})
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "explode", Key: 1}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d", resp.StatusCode)
	}
	if resp, _ := postTx(t, ts.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/kv/not-a-number")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d", resp.StatusCode)
	}
}

// TestBatchAmortization pins the tentpole's mechanism: one /tx request
// whose commands land on one partition is applied by exactly one
// store transaction, whatever its size — Cmds/Batches > 1 is the
// amortization the applier exists for.
func TestBatchAmortization(t *testing.T) {
	s, ts := startServer(t, Config{Partitions: 1, Engine: stm.EngineTL2, BatchMax: 64})
	const k = 32
	cmds := make([]Command, k)
	for i := range cmds {
		cmds[i] = Command{Op: "incr", Key: int64(i)}
	}
	if resp, _ := postTx(t, ts.URL, cmds); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := s.StatsSnapshot()
	if st.Batches != 1 || st.Cmds != k {
		t.Fatalf("batches=%d cmds=%d, want one batch of %d", st.Batches, st.Cmds, k)
	}
}

// TestRateLimiter pins the admission guard: a bucket with no refill
// admits exactly its capacity and 429s the rest.
func TestRateLimiter(t *testing.T) {
	s, ts := startServer(t, Config{Partitions: 2, RateLimit: 1e-9, RateBurst: 3})
	ok, limited := 0, 0
	for i := 0; i < 6; i++ {
		resp, _ := postTx(t, ts.URL, []Command{{Op: "incr", Key: int64(i)}})
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if ok != 3 || limited != 3 {
		t.Fatalf("ok=%d limited=%d, want 3/3", ok, limited)
	}
	if st := s.StatsSnapshot(); st.Rejected != 3 {
		t.Fatalf("rejected=%d, want 3", st.Rejected)
	}
}

// TestConcurrentLoad is the end-to-end invariant: concurrent clients
// incrementing through /tx must sum exactly, read back through /kv.
func TestConcurrentLoad(t *testing.T) {
	const (
		clients = 8
		opsEach = 40
		keys    = 16
	)
	s, ts := startServer(t, Config{Partitions: 4, Engine: stm.EngineAdaptive, BatchMax: 8})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				body, _ := json.Marshal(TxRequest{Cmds: []Command{
					{Op: "incr", Key: int64((c + i) % keys)},
					{Op: "incr", Key: int64((c + i + 7) % keys)},
				}})
				resp, err := http.Post(ts.URL+"/tx", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	var sum int64
	for k := int64(0); k < keys; k++ {
		_, kv := getKV(t, ts.URL, k)
		sum += kv.Value
	}
	if want := int64(clients * opsEach * 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	st := s.StatsSnapshot()
	if st.Cmds != uint64(clients*opsEach*2) {
		t.Fatalf("cmds = %d, want %d", st.Cmds, clients*opsEach*2)
	}
	if st.Batches == 0 || st.Batches > st.Cmds {
		t.Fatalf("batches = %d vs cmds = %d", st.Batches, st.Cmds)
	}
	// The exact Len must agree with what the traffic created, while the
	// server (with idle parked appliers) is still running — the
	// no-parked-lock design under test.
	if got := s.Store().Len(); got != keys {
		t.Fatalf("store.Len = %d, want %d", got, keys)
	}
}

// TestCloseFailsPending pins shutdown: post-close requests get 503 and
// the server quiesces without leaking appliers.
func TestCloseFailsPending(t *testing.T) {
	s, ts := startServer(t, Config{Partitions: 2})
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: 1, Value: 1}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-close status %d", resp.StatusCode)
	}
	s.Close()
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: 2, Value: 2}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d", resp.StatusCode)
	}
	if code, _ := getKV(t, ts.URL, 1); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close query status %d", code)
	}
	s.Close() // idempotent
}

// TestStatsEndpoint sanity-checks the JSON surface.
func TestStatsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Partitions: 2, Engine: stm.EngineTL2Striped})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engine != "tl2s" || st.Partitions != 2 || len(st.Store) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp2.StatusCode)
	}
}

// keyInPartition returns a key the store routes to partition p.
func keyInPartition(t *testing.T, s *Server, p int) int64 {
	t.Helper()
	for k := int64(0); k < 1_000_000; k++ {
		if s.Store().PartitionOf(k) == p {
			return k
		}
	}
	t.Fatalf("no key found for partition %d", p)
	return 0
}

// TestCrossTxAtomicMultiPartition: a /tx batch whose keys span
// partitions commits through the scoped cross path — the results are
// mutually consistent, the cross counter ticks, and concurrent
// transfers between two partitions conserve their total.
func TestCrossTxAtomicMultiPartition(t *testing.T) {
	s, ts := startServer(t, Config{Partitions: 4})
	a := keyInPartition(t, s, 0)
	b := keyInPartition(t, s, 1)

	resp, out := postTx(t, ts.URL, []Command{
		{Op: "put", Key: a, Value: 100},
		{Op: "put", Key: b, Value: 100},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}
	if len(out.Results) != 2 || !out.Results[0].Found || !out.Results[1].Found {
		t.Fatalf("seed results = %+v", out.Results)
	}
	if got := s.StatsSnapshot().CrossTxs; got == 0 {
		t.Fatal("multi-partition batch did not take the cross path")
	}

	// Concurrent transfers a→b and b→a; the pair's total is invariant
	// only if each batch applies atomically.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from, to := a, b
			if w%2 == 1 {
				from, to = b, a
			}
			for i := 0; i < 25; i++ {
				resp, _ := postTx(t, ts.URL, []Command{
					{Op: "incr", Key: from, Value: -1},
					{Op: "incr", Key: to, Value: 1},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("transfer status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	_, va := getKV(t, ts.URL, a)
	_, vb := getKV(t, ts.URL, b)
	if va.Value+vb.Value != 200 {
		t.Fatalf("transfers not atomic: %d + %d != 200", va.Value, vb.Value)
	}
	// A single-partition batch still takes the applier path: the read
	// below sees both keys through /kv, and CrossTxs counts only the
	// spanning batches.
	crosses := s.StatsSnapshot().CrossTxs
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "incr", Key: a}, {Op: "incr", Key: a}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("single-partition batch status %d", resp.StatusCode)
	}
	if got := s.StatsSnapshot().CrossTxs; got != crosses {
		t.Fatalf("single-partition batch took the cross path: %d -> %d", crosses, got)
	}
}
