package server

import (
	"io"
	"net/http"
	"testing"

	"pcltm/internal/certify"
	"pcltm/internal/trace"
)

func getHistory(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHistoryDisabledWithoutRecord(t *testing.T) {
	_, ts := startServer(t, Config{Partitions: 1})
	code, _ := getHistory(t, ts.URL)
	if code != http.StatusConflict {
		t.Fatalf("GET /history without Record: status %d, want %d", code, http.StatusConflict)
	}
}

// TestHistoryEndpoint drives traffic through every handler path on a
// recording server — including rate-limited admission, which must NOT
// appear in the history (its token TVar lives on a private engine) —
// and then asks the certifier to judge the artifact end to end, the
// same judgment CI's serve-smoke passes with tmcheck -certify.
func TestHistoryEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{
		Partitions: 2, Record: true,
		RateLimit: 1e9, RateBurst: 1 << 40, // limiter active, never rejecting
	})

	for i := int64(0); i < 20; i++ {
		resp, _ := postTx(t, ts.URL, []Command{
			{Op: "incr", Key: i % 5},
			{Op: "put", Key: 100 + i, Value: i},
			{Op: "get", Key: i % 5},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tx %d: status %d", i, resp.StatusCode)
		}
	}
	if code, _ := getKV(t, ts.URL, 0); code != http.StatusOK {
		t.Fatalf("kv read: status %d", code)
	}

	code, body := getHistory(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("GET /history: status %d: %s", code, body)
	}
	exec, meta, err := trace.DecodeFile(body)
	if err != nil {
		t.Fatalf("decoding history artifact: %v", err)
	}
	if meta == nil || meta.Source != "tmserve" || meta.Partitions != 2 {
		t.Fatalf("artifact meta = %+v, want source tmserve over 2 partitions", meta)
	}

	h := certify.FromExecution(exec)
	if len(h.Txns) == 0 {
		t.Fatal("recorded history is empty")
	}
	for cond, rep := range certify.All(h) {
		if rep.Verdict == certify.Violated {
			t.Errorf("%s: server history convicted: %s", cond, rep)
		}
		if rep.Verdict != certify.Certified {
			t.Logf("%s: %s", cond, rep)
		}
	}

	// The artifact is cumulative: more traffic, then a second fetch,
	// must yield a strictly larger history.
	n1 := len(h.Txns)
	for i := int64(0); i < 5; i++ {
		postTx(t, ts.URL, []Command{{Op: "incr", Key: i}})
	}
	code, body = getHistory(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("second GET /history: status %d", code)
	}
	exec2, _, err := trace.DecodeFile(body)
	if err != nil {
		t.Fatal(err)
	}
	if n2 := len(certify.FromExecution(exec2).Txns); n2 <= n1 {
		t.Fatalf("history not cumulative: %d txns then %d", n1, n2)
	}
}

// TestHistoryCertifiedSequential pins the strongest claim on a
// deterministic schedule: strictly sequential requests must certify
// (not merely escape conviction) under every condition.
func TestHistoryCertifiedSequential(t *testing.T) {
	_, ts := startServer(t, Config{Partitions: 1, Record: true})
	for i := int64(0); i < 10; i++ {
		postTx(t, ts.URL, []Command{{Op: "incr", Key: 1}, {Op: "get", Key: 1}})
	}
	code, body := getHistory(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("GET /history: status %d", code)
	}
	exec, _, err := trace.DecodeFile(body)
	if err != nil {
		t.Fatal(err)
	}
	for cond, rep := range certify.All(certify.FromExecution(exec)) {
		if rep.Verdict != certify.Certified {
			t.Errorf("%s: sequential server history not certified: %s", cond, rep)
		}
	}
}
