package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"pcltm/internal/trace"
	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
)

// TestDurableServerRoundTrip pins graceful shutdown: Close seals the
// WAL tail, and the next boot reports a clean recovery with every
// committed key intact.
func TestDurableServerRoundTrip(t *testing.T) {
	b := wal.NewMemBackend()
	s, err := New(Config{Partitions: 2, WAL: b, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	for i := int64(1); i <= 20; i++ {
		resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: i, Value: i * 3}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.StatusCode)
		}
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{Partitions: 2, WAL: b, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil || !rec.Clean {
		t.Fatalf("Recovery() = %+v, want clean scan", rec)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for i := int64(1); i <= 20; i++ {
		if code, kv := getKV(t, ts2.URL, i); code != 200 || !kv.Found || kv.Value != i*3 {
			t.Fatalf("recovered key %d = %d %+v", i, code, kv)
		}
	}
	st := s2.StatsSnapshot()
	if st.WalAck != "group" || st.Wal == nil {
		t.Fatalf("stats lack WAL fields: %+v", st)
	}
}

// TestDurableServerCrashRecovery pins the crash path: every /tx the
// server answered 200 survives a power cut that keeps only fsynced
// bytes, and the next boot reports the recovery as not clean.
func TestDurableServerCrashRecovery(t *testing.T) {
	b := wal.NewMemBackend()
	s, err := New(Config{Partitions: 2, WAL: b, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	for i := int64(1); i <= 15; i++ {
		resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: i, Value: i}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.StatusCode)
		}
	}
	img := b.Clone(0) // power cut: no Close, only synced bytes survive
	ts.Close()
	defer s.Close()

	s2, err := New(Config{Partitions: 2, WAL: img, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("crash recovery: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil || rec.Clean {
		t.Fatalf("Recovery() = %+v, want unclean crash scan", rec)
	}
	for i := int64(1); i <= 15; i++ {
		if v, ok := s2.Store().Get(i); !ok || v != i {
			t.Fatalf("acked key %d lost after crash (got %d,%v)", i, v, ok)
		}
	}
}

// TestDurabilityErrorMapsTo500 pins the error surface: when the log
// fails an fsync mid-commit the client gets 500 (applied in memory,
// durability lost), not the 503 reserved for shutdown.
func TestDurabilityErrorMapsTo500(t *testing.T) {
	fb := wal.NewFailBackend(wal.NewMemBackend())
	s, err := New(Config{Partitions: 1, WAL: fb, WALAck: wal.AckSync})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: 1, Value: 1}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy put: status %d", resp.StatusCode)
	}
	fb.Arm(wal.FailPoint{Kind: wal.FailSync, N: 2}) // next commit: append, then its fsync fails
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: 2, Value: 2}}); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("fsync-failed put: status %d, want 500", resp.StatusCode)
	}
	// The log is poisoned: later commits also refuse to acknowledge.
	if resp, _ := postTx(t, ts.URL, []Command{{Op: "put", Key: 3, Value: 3}}); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("post-poison put: status %d, want 500", resp.StatusCode)
	}
	if st := s.StatsSnapshot(); st.Wal == nil || st.Wal.Failed == 0 {
		t.Fatalf("stats after poison = %+v, want Wal.Failed set", st.Wal)
	}
}

// TestHistoryRotation pins the bounded accumulator: with a tiny cap,
// sustained recorded traffic rotates whole old segments out, the drop
// count surfaces in /stats and the artifact's meta, and the surviving
// suffix still stamps and serves.
func TestHistoryRotation(t *testing.T) {
	s, ts := startServer(t, Config{Partitions: 1, Record: true, HistoryCap: 1})
	// Drive well past two rotation grains so at least one whole segment
	// is dropped. Direct store transactions keep this fast.
	const txns = 2*histSegMax + 512
	for i := 0; i < txns; i++ {
		i := i
		if err := s.Store().Atomically(0, func(tx *stm.Tx, p *store.Part[int64, int64]) error {
			p.Put(tx, int64(i%64), int64(i))
			return nil
		}); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	code, body := getHistory(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("GET /history: status %d: %s", code, body)
	}
	_, meta, err := trace.DecodeFile(body)
	if err != nil {
		t.Fatalf("decoding rotated history: %v", err)
	}
	if meta == nil || meta.HistoryDropped == 0 {
		t.Fatalf("meta = %+v, want HistoryDropped > 0", meta)
	}
	st := s.StatsSnapshot()
	if st.HistoryDropped == 0 {
		t.Fatal("stats.HistoryDropped = 0 after rotation")
	}
	if st.HistoryDropped != meta.HistoryDropped {
		t.Fatalf("stats drop count %d != meta drop count %d", st.HistoryDropped, meta.HistoryDropped)
	}
}

// TestDurableServerCrossRoundTrip: multi-partition /tx batches on a
// durable server are logged through the cross decision-record protocol
// and recover whole — every acknowledged transfer's effect on both
// partitions survives the restart.
func TestDurableServerCrossRoundTrip(t *testing.T) {
	b := wal.NewMemBackend()
	s, err := New(Config{Partitions: 4, WAL: b, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	a := keyInPartition(t, s, 0)
	c := keyInPartition(t, s, 2)
	if resp, _ := postTx(t, ts.URL, []Command{
		{Op: "put", Key: a, Value: 50},
		{Op: "put", Key: c, Value: 50},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}
	for i := 0; i < 10; i++ {
		if resp, _ := postTx(t, ts.URL, []Command{
			{Op: "incr", Key: a, Value: -2},
			{Op: "incr", Key: c, Value: 2},
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("transfer %d: status %d", i, resp.StatusCode)
		}
	}
	if got := s.StatsSnapshot().CrossTxs; got < 11 {
		t.Fatalf("CrossTxs = %d, want ≥ 11", got)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{Partitions: 4, WAL: b, WALAck: wal.AckGroup})
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if _, kv := getKV(t, ts2.URL, a); kv.Value != 30 {
		t.Fatalf("recovered a = %+v, want 30", kv)
	}
	if _, kv := getKV(t, ts2.URL, c); kv.Value != 70 {
		t.Fatalf("recovered c = %+v, want 70", kv)
	}
}
