// Package server is the network front end of the partitioned store —
// the first storey of this repo that serves traffic instead of
// simulating it. It exposes store.Store[int64,int64] over HTTP with a
// command/query split:
//
//   - POST /tx   — commands: a batch of read-modify-write operations
//     (get/put/incr/delete), routed by key to per-partition appliers; a
//     batch whose keys span partitions commits atomically through the
//     store's scoped cross-partition path (only the touched partitions
//     lock; on a durable server the batch recovers all-or-nothing);
//   - GET /kv/{key} — queries: one single-partition read transaction,
//     no queue, no batching;
//   - GET /healthz, GET /stats — liveness and introspection;
//   - GET /history — with Config.Record, the recorded execution as a
//     trace file for cmd/tmcheck to judge (see below).
//
// Recording (Config.Record) attaches ONE stm.Recorder to every
// partition engine. The recorder owns the stamp counter, so sharing it
// makes the per-partition logs one totally ordered history — exactly
// the precondition the certifier's stitching relies on — and GET
// /history serves that history, stamped into the paper's vocabulary,
// as a trace JSON artifact that `tmcheck -certify` can pass judgment
// on. The artifact is cumulative: each /history call drains the
// recorder and re-serves everything observed since boot.
//
// The command path is where the PCL trade-off meets a wire: instead of
// paying one Atomically per command, each partition runs an applier
// goroutine fed by a tstructs.TQueue. Handlers enqueue pending command
// groups; the applier drains up to Config.BatchMax groups and applies
// them in ONE store.Atomically, so the per-commit cost (clock ticks,
// lock traffic, validation) is amortized across the batch exactly when
// load is high enough for it to matter — at low load batches are size
// one and latency is untouched. Queue hand-off and batch application
// are transactions on the partition's own engine, so the network tier
// inherits the store's isolation rather than reimplementing it.
//
// Admission is a tstructs.TBucket — the transactional token bucket —
// spent inside a transaction per request batch: over-rate commands get
// 429 before they touch a queue. The applier never parks holding its
// partition's escalation lock (waiting happens in a queue-only
// transaction), so Cross and the exact store.Len keep working while
// the server idles.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pcltm/internal/conformance"
	"pcltm/internal/core"
	"pcltm/internal/trace"
	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
	"pcltm/tstructs"
)

// Config sizes the server.
type Config struct {
	// Partitions, Engine, Buckets configure the underlying store (see
	// store.Config; zero values mean GOMAXPROCS partitions, TL2).
	Partitions int
	Engine     stm.EngineKind
	Buckets    int
	// BatchMax caps how many pending command groups one applier
	// transaction drains (default 64). Batching is opportunistic: an
	// idle server applies singletons immediately.
	BatchMax int
	// RateLimit, when positive, caps admitted commands per second with
	// burst capacity RateBurst (default: one second's worth). Zero
	// disables admission control.
	RateLimit float64
	RateBurst int64
	// Record attaches a shared recorder to every partition engine and
	// enables GET /history, which serves the recorded execution as a
	// trace artifact for `tmcheck -certify`. Recording costs one log
	// append per transaction; leave it off for latency benchmarks.
	Record bool
	// HistoryCap bounds the accumulated attempt log behind /history
	// (default 1<<20 attempts). The log rotates in segments: when the
	// total exceeds the cap, whole oldest segments are dropped and
	// counted in Stats.HistoryDropped and the trace's meta — /history
	// then serves a suffix of the run, which keeps a long-lived recorded
	// server bounded at the price of whole-run certification.
	HistoryCap int
	// WAL, when non-nil, opens the store on a durable commit log: boot
	// recovers whatever state the log certifies (see store.OpenDurable),
	// and every applier commit is appended and acknowledged per WALAck
	// before the client sees 200. A failed append surfaces as 500 — the
	// commit applied in memory, durability is lost, and the log is
	// poisoned.
	WAL wal.Backend
	// WALAck is the acknowledgement mode (default wal.AckGroup).
	WALAck wal.AckMode
	// WALSegmentBytes caps log segment size (0 = wal default).
	WALSegmentBytes int64
	// WALWindow is the group-commit batch window: the log writer waits
	// at most this long to widen a batch before fsyncing (0 = fsync as
	// soon as the queue drains).
	WALWindow time.Duration
}

// Command is one operation of a POST /tx batch.
type Command struct {
	// Op is one of "get", "put", "incr", "delete".
	Op string `json:"op"`
	// Key routes the command to its partition.
	Key int64 `json:"key"`
	// Value is stored by put and added by incr (incr of 0 means 1, so
	// `{"op":"incr","key":k}` is a plain counter bump).
	Value int64 `json:"value,omitempty"`
}

// CmdResult is one command's outcome, index-aligned with the request.
type CmdResult struct {
	// Value: get returns the read value, incr the post-increment value;
	// put and delete return the stored/removed value.
	Value int64 `json:"value"`
	// Found: whether the key existed before the command (get/delete) or
	// at all (put/incr report true — the key exists afterwards).
	Found bool `json:"found"`
}

// TxRequest and TxResponse are the /tx wire format.
type TxRequest struct {
	Cmds []Command `json:"cmds"`
}

type TxResponse struct {
	Results []CmdResult `json:"results"`
}

// KVResponse is the /kv/{key} wire format.
type KVResponse struct {
	Value int64 `json:"value"`
	Found bool  `json:"found"`
}

// Stats is the /stats wire format.
type Stats struct {
	Engine     string `json:"engine"`
	Partitions int    `json:"partitions"`
	// Batches and Cmds count applier transactions and the commands they
	// carried; Cmds/Batches is the realized amortization factor.
	Batches uint64 `json:"batches"`
	Cmds    uint64 `json:"cmds"`
	// CrossTxs counts /tx requests whose commands spanned partitions and
	// therefore committed through the scoped cross-partition path.
	CrossTxs uint64 `json:"cross_txs,omitempty"`
	// Rejected counts 429s from the admission bucket.
	Rejected uint64 `json:"rejected"`
	// HistoryDropped counts recorded attempts rotated out of the bounded
	// /history accumulator (0 unless the server outlived HistoryCap).
	HistoryDropped uint64 `json:"history_dropped,omitempty"`
	// WalAck and Wal describe the commit log on a durable server.
	WalAck string     `json:"wal_ack,omitempty"`
	Wal    *wal.Stats `json:"wal,omitempty"`
	// Store aggregates every partition engine's counters.
	Store []stm.Stats `json:"store"`
}

// pending is one partition's share of a /tx request: commands plus the
// response slots they fill. It crosses from handler to applier through
// the partition's TQueue; done is the only synchronization of res —
// the handler must not read res before receiving on done.
type pending struct {
	cmds []Command
	idx  []int // position of each cmd in the request's result slice
	res  []CmdResult
	done chan error
}

// ErrClosed is reported for commands caught in a server shutdown.
var ErrClosed = errors.New("server: closed")

// Server routes HTTP traffic onto the store. Create with New, attach
// via Handler, stop with Close.
type Server struct {
	store    *store.Store[int64, int64]
	queues   []*tstructs.TQueue[*pending]
	stopped  []*stm.TVar[bool]
	batchMax int

	limiter  *tstructs.TBucket // nil = unlimited
	admitEng *stm.Engine       // engine admission transactions run on

	// recorder is the shared per-partition-engine recorder when
	// Config.Record is set. The accumulated attempt log is segmented so
	// it can rotate: histSegs holds up to histSegMax attempts per
	// segment, oldest first; histLen is the total retained; histDropped
	// counts attempts rotated away. histMu guards all of them. A
	// background ticker drains the recorder even when nobody polls
	// /history, so the recorder's own buffer stays bounded too.
	recorder    *stm.Recorder
	histMu      sync.Mutex
	histSegs    [][]*stm.AttemptRecord
	histLen     int
	histCap     int
	histDropped uint64
	drainStop   chan struct{}

	// recovery is what boot found in the WAL (nil when not durable).
	recovery *wal.ScanResult

	closed  atomic.Bool
	wg      sync.WaitGroup
	batches atomic.Uint64
	cmds    atomic.Uint64
	crosses atomic.Uint64
	reject  atomic.Uint64
}

// histSegMax is the rotation grain: attempts per history segment.
const histSegMax = 1 << 14

// New builds the store — recovering it from the WAL when Config.WAL is
// set — starts one applier per partition, and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 1 << 20
	}
	sc := store.Config{Partitions: cfg.Partitions, Engine: cfg.Engine, Buckets: cfg.Buckets}
	var rec *stm.Recorder
	if cfg.Record {
		rec = stm.NewRecorder()
		sc.EngineOptions = func(int) []stm.Option { return []stm.Option{stm.WithRecorder(rec)} }
	}
	var st *store.Store[int64, int64]
	var recovery *wal.ScanResult
	if cfg.WAL != nil {
		// Recovery replays through recorded store transactions, so with
		// Record set the served history begins with the replayed
		// prefix — recovered state arrives pre-justified.
		var err error
		st, recovery, err = store.OpenDurable(store.DurableConfig[int64, int64]{
			Store:        sc,
			Backend:      cfg.WAL,
			Ack:          cfg.WALAck,
			SegmentBytes: cfg.WALSegmentBytes,
			BatchWindow:  cfg.WALWindow,
			Codec:        store.Int64Codec(),
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening durable store: %w", err)
		}
	} else {
		st = store.New[int64, int64](sc)
	}
	s := &Server{
		store:    st,
		recorder: rec,
		batchMax: cfg.BatchMax,
		histCap:  cfg.HistoryCap,
		recovery: recovery,
	}
	// Admission normally serializes on partition 0's engine. When
	// recording it moves to a private, unrecorded engine: the token
	// bucket's TVar starts at full capacity — a non-zero initial value
	// the checkers' vocabulary cannot express (reads of it would look
	// unjustifiable) — and admission state is not store data, so the
	// history is cleaner without it.
	s.admitEng = s.store.Engine(0)
	if cfg.Record {
		s.admitEng = stm.NewEngine(cfg.Engine)
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int64(cfg.RateLimit)
			if burst < 1 {
				burst = 1
			}
		}
		s.limiter = tstructs.NewTBucket(burst, cfg.RateLimit)
	}
	n := s.store.Partitions()
	s.queues = make([]*tstructs.TQueue[*pending], n)
	s.stopped = make([]*stm.TVar[bool], n)
	for p := 0; p < n; p++ {
		s.queues[p] = tstructs.NewTQueue[*pending]()
		s.stopped[p] = stm.NewTVar(false)
		s.wg.Add(1)
		go s.applier(p)
	}
	if rec != nil {
		s.drainStop = make(chan struct{})
		s.wg.Add(1)
		go s.drainLoop()
	}
	return s, nil
}

// Store exposes the underlying store (tests, embedding).
func (s *Server) Store() *store.Store[int64, int64] { return s.store }

// Recovery returns what boot found in the WAL: nil for a non-durable
// server, otherwise the scan result (horizons, torn tails, Clean).
func (s *Server) Recovery() *wal.ScanResult { return s.recovery }

// drainLoop moves recorder attempts into the rotating history
// accumulator on a timer, so a recorded server that nobody polls stays
// bounded.
func (s *Server) drainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.histMu.Lock()
			s.drainLocked()
			s.histMu.Unlock()
		case <-s.drainStop:
			return
		}
	}
}

// drainLocked pulls everything the recorder has and rotates whole
// oldest segments out while the total exceeds the cap. Callers hold
// histMu.
func (s *Server) drainLocked() {
	fresh := s.recorder.Take()
	for len(fresh) > 0 {
		if n := len(s.histSegs); n > 0 && len(s.histSegs[n-1]) < histSegMax {
			room := histSegMax - len(s.histSegs[n-1])
			if room > len(fresh) {
				room = len(fresh)
			}
			s.histSegs[n-1] = append(s.histSegs[n-1], fresh[:room]...)
			s.histLen += room
			fresh = fresh[room:]
			continue
		}
		s.histSegs = append(s.histSegs, make([]*stm.AttemptRecord, 0, histSegMax))
	}
	for s.histLen > s.histCap && len(s.histSegs) > 1 {
		s.histDropped += uint64(len(s.histSegs[0]))
		s.histLen -= len(s.histSegs[0])
		s.histSegs[0] = nil
		s.histSegs = s.histSegs[1:]
	}
}

// applier is partition part's consumer: it blocks on the queue in a
// queue-only transaction (holding no partition lock while parked — a
// parked RLock would deadlock Cross and the exact Len), then drains up
// to batchMax pending groups and applies them in one store.Atomically.
func (s *Server) applier(part int) {
	defer s.wg.Done()
	eng := s.store.Engine(part)
	q := s.queues[part]
	stopTV := s.stopped[part]
	batch := make([]*pending, 0, s.batchMax)
	for {
		// Wait for work. This transaction touches only the queue and the
		// stop flag, so parking in Retry holds no store lock.
		var first *pending
		var stopping bool
		_ = eng.Atomically(func(tx *stm.Tx) error {
			first, stopping = nil, false
			if p, ok := q.TryTake(tx); ok {
				first = p
				return nil
			}
			if stm.Get(tx, stopTV) {
				stopping = true
				return nil
			}
			stm.Retry(tx)
			return nil
		})
		if stopping {
			// Drain stragglers that beat the stop flag, then exit. Any
			// enqueue serialized after the stop flag was set has been
			// rejected by the handler's same-transaction check, so after
			// this drain the queue stays empty forever.
			for {
				var p *pending
				_ = eng.Atomically(func(tx *stm.Tx) error {
					p, _ = q.TryTake(tx)
					return nil
				})
				if p == nil {
					return
				}
				p.done <- ErrClosed
			}
		}

		// Apply a batch in one store transaction: first plus whatever
		// else queued meanwhile, at most batchMax groups. On conflict
		// retry the drains re-run, so batch is rebuilt from scratch. On
		// a durable store the transaction blocks here until the WAL
		// acknowledges it; an append failure (DurabilityError) fails the
		// whole batch — the writes applied in memory but the clients
		// must not be told they are durable.
		err := s.store.Atomically(part, func(tx *stm.Tx, ph *store.Part[int64, int64]) error {
			batch = append(batch[:0], first)
			for len(batch) < s.batchMax {
				p, ok := q.TryTake(tx)
				if !ok {
					break
				}
				batch = append(batch, p)
			}
			for _, p := range batch {
				applyCmds(tx, ph, p)
			}
			return nil
		})
		s.batches.Add(1)
		for _, p := range batch {
			s.cmds.Add(uint64(len(p.cmds)))
			p.done <- err
		}
	}
}

// applyCmds runs one pending group's commands inside the applier's
// transaction, filling the response slots.
func applyCmds(tx *stm.Tx, ph *store.Part[int64, int64], p *pending) {
	for i, c := range p.cmds {
		switch c.Op {
		case "get":
			v, ok := ph.Get(tx, c.Key)
			p.res[i] = CmdResult{Value: v, Found: ok}
		case "put":
			ph.Put(tx, c.Key, c.Value)
			p.res[i] = CmdResult{Value: c.Value, Found: true}
		case "incr":
			delta := c.Value
			if delta == 0 {
				delta = 1
			}
			v, _ := ph.Get(tx, c.Key)
			v += delta
			ph.Put(tx, c.Key, v)
			p.res[i] = CmdResult{Value: v, Found: true}
		case "delete":
			v, ok := ph.Get(tx, c.Key)
			if ok {
				ph.Delete(tx, c.Key)
			}
			p.res[i] = CmdResult{Value: v, Found: ok}
		}
	}
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tx", s.handleTx)
	mux.HandleFunc("GET /kv/{key}", s.handleKV)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /history", s.handleHistory)
	return mux
}

// handleHistory drains the shared recorder into the accumulated attempt
// log, stamps the whole log into the paper's vocabulary, and serves it
// as a trace file. Answers 409 when the server was built without
// Config.Record.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		http.Error(w, "history recording disabled; start the server with Record set (tmserve -record)",
			http.StatusConflict)
		return
	}
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.drainLocked()
	attempts := make([]*stm.AttemptRecord, 0, s.histLen)
	for _, seg := range s.histSegs {
		attempts = append(attempts, seg...)
	}
	nprocs := 1
	for _, a := range attempts {
		if a.Proc+1 > nprocs {
			nprocs = a.Proc + 1
		}
	}
	exec, err := conformance.StampInterned(attempts,
		func(id uint64) (core.Item, bool) { return core.Item(fmt.Sprintf("t%d", id)), true }, nprocs)
	if err != nil {
		http.Error(w, "stamping history: "+err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := trace.EncodeWithMeta(exec, &trace.Meta{
		Source:         "tmserve",
		Engine:         s.store.Engine(0).Kind().String(),
		Partitions:     s.store.Partitions(),
		HistoryDropped: s.histDropped,
	})
	if err != nil {
		http.Error(w, "encoding history: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, "server closed", http.StatusServiceUnavailable)
		return
	}
	var req TxRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Cmds) == 0 {
		http.Error(w, "empty command batch", http.StatusBadRequest)
		return
	}
	for _, c := range req.Cmds {
		switch c.Op {
		case "get", "put", "incr", "delete":
		default:
			http.Error(w, fmt.Sprintf("unknown op %q", c.Op), http.StatusBadRequest)
			return
		}
	}
	if !s.admit(int64(len(req.Cmds))) {
		s.reject.Add(1)
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}

	// Group commands by partition, preserving request order per slot.
	results := make([]CmdResult, len(req.Cmds))
	groups := make(map[int]*pending)
	for i, c := range req.Cmds {
		part := s.store.PartitionOf(c.Key)
		g := groups[part]
		if g == nil {
			g = &pending{done: make(chan error, 1)}
			groups[part] = g
		}
		g.cmds = append(g.cmds, c)
		g.idx = append(g.idx, i)
	}

	// A batch that spans partitions is one transaction to the client, so
	// it commits through the scoped cross-partition path: only the
	// partitions the commands touch are locked, traffic on the rest is
	// unaffected, and on a durable server the decision record makes the
	// whole batch recover all-or-nothing.
	if len(groups) > 1 {
		for _, g := range groups {
			g.res = make([]CmdResult, len(g.cmds))
		}
		s.handleCrossTx(w, groups, results)
		return
	}

	// Enqueue each group onto its partition's queue. The stop flag is
	// checked inside the same transaction, so an enqueue can never
	// commit after the applier's final drain (both orders of the two
	// commits are handled: flag-first rejects here, enqueue-first is
	// caught by the drain).
	for part, g := range groups {
		g.res = make([]CmdResult, len(g.cmds))
		var closed bool
		_ = s.store.Engine(part).Atomically(func(tx *stm.Tx) error {
			closed = stm.Get(tx, s.stopped[part])
			if !closed {
				s.queues[part].Put(tx, g)
			}
			return nil
		})
		if closed {
			http.Error(w, "server closed", http.StatusServiceUnavailable)
			return
		}
	}
	for _, g := range groups {
		if err := <-g.done; err != nil {
			var de *store.DurabilityError
			if errors.As(err, &de) {
				// Applied in memory, not durable: the server's log is
				// poisoned and this commit cannot be acknowledged.
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		for j, i := range g.idx {
			results[i] = g.res[j]
		}
	}
	writeJSON(w, TxResponse{Results: results})
}

// handleCrossTx applies a multi-partition command batch atomically via
// store.Cross. The body re-executes (discovery run, then the locked
// run, possibly again if the footprint grows), so the response slots
// are rewritten from scratch every run — only the committed run's
// values survive.
func (s *Server) handleCrossTx(w http.ResponseWriter, groups map[int]*pending, results []CmdResult) {
	err := s.store.Cross(func(ct *store.CrossTx[int64, int64]) error {
		for _, g := range groups {
			for i, c := range g.cmds {
				switch c.Op {
				case "get":
					v, ok := ct.Get(c.Key)
					g.res[i] = CmdResult{Value: v, Found: ok}
				case "put":
					ct.Put(c.Key, c.Value)
					g.res[i] = CmdResult{Value: c.Value, Found: true}
				case "incr":
					delta := c.Value
					if delta == 0 {
						delta = 1
					}
					v, _ := ct.Get(c.Key)
					v += delta
					ct.Put(c.Key, v)
					g.res[i] = CmdResult{Value: v, Found: true}
				case "delete":
					v, ok := ct.Get(c.Key)
					if ok {
						ct.Delete(c.Key)
					}
					g.res[i] = CmdResult{Value: v, Found: ok}
				}
			}
		}
		return nil
	})
	if err != nil {
		var de *store.DurabilityError
		if errors.As(err, &de) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.crosses.Add(1)
	for _, g := range groups {
		s.cmds.Add(uint64(len(g.cmds)))
		for j, i := range g.idx {
			results[i] = g.res[j]
		}
	}
	writeJSON(w, TxResponse{Results: results})
}

// admit spends n tokens from the admission bucket (one transaction on
// partition 0's engine — admission is global, its serialization point
// deliberate; see tstructs.TBucket).
func (s *Server) admit(n int64) bool {
	if s.limiter == nil {
		return true
	}
	now := time.Now().UnixNano()
	ok := false
	_ = s.admitEng.Atomically(func(tx *stm.Tx) error {
		ok = s.limiter.TryTake(tx, now, n)
		return nil
	})
	return ok
}

func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, "server closed", http.StatusServiceUnavailable)
		return
	}
	key, err := strconv.ParseInt(r.PathValue("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.admit(1) {
		s.reject.Add(1)
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}
	v, ok := s.store.Get(key)
	writeJSON(w, KVResponse{Value: v, Found: ok})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.StatsSnapshot())
}

// StatsSnapshot returns the server's counters.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Engine:     s.store.Engine(0).Kind().String(),
		Partitions: s.store.Partitions(),
		Batches:    s.batches.Load(),
		Cmds:       s.cmds.Load(),
		CrossTxs:   s.crosses.Load(),
		Rejected:   s.reject.Load(),
		Store:      s.store.Stats(),
	}
	if s.recorder != nil {
		s.histMu.Lock()
		st.HistoryDropped = s.histDropped
		s.histMu.Unlock()
	}
	if ws, ok := s.store.WALStats(); ok {
		ack, _ := s.store.WALAck()
		st.WalAck = ack.String()
		st.Wal = &ws
	}
	return st
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Close stops accepting requests, wakes every applier, fails whatever
// was still queued with ErrClosed, waits for the appliers to exit, and
// on a durable server flushes and seals the WAL's tail segment — the
// graceful-shutdown path recovery recognizes as clean. The returned
// error is the seal's (nil for a non-durable server). Safe to call more
// than once.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return nil
	}
	for p := range s.stopped {
		_ = s.store.Engine(p).Atomically(func(tx *stm.Tx) error {
			stm.Set(tx, s.stopped[p], true)
			return nil
		})
	}
	if s.drainStop != nil {
		close(s.drainStop)
	}
	s.wg.Wait()
	return s.store.CloseWAL()
}
