package tstructs

import (
	"sync"
	"testing"
	"time"

	"pcltm/stm"
)

// TestTQueueFIFO checks strict FIFO order through mixed Put/Take on
// every engine.
func TestTQueueFIFO(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			q := NewTQueue[int]()
			for i := 0; i < 10; i++ {
				_ = e.Atomically(func(tx *stm.Tx) error {
					q.Put(tx, i)
					return nil
				})
			}
			var n int
			_ = e.Atomically(func(tx *stm.Tx) error {
				n = q.Len(tx)
				return nil
			})
			if n != 10 {
				t.Fatalf("Len = %d, want 10", n)
			}
			for i := 0; i < 10; i++ {
				var got int
				_ = e.Atomically(func(tx *stm.Tx) error {
					got = q.Take(tx)
					return nil
				})
				if got != i {
					t.Fatalf("Take #%d = %d, want %d", i, got, i)
				}
			}
			var ok bool
			_ = e.Atomically(func(tx *stm.Tx) error {
				_, ok = q.TryTake(tx)
				return nil
			})
			if ok {
				t.Fatal("TryTake on drained queue reported a value")
			}
		})
	}
}

// TestTQueueInterleavedDrain refills while draining so the queue passes
// through empty repeatedly, exercising the tail-reset path.
func TestTQueueInterleavedDrain(t *testing.T) {
	e := stm.NewEngine(stm.EngineTL2)
	q := NewTQueue[int]()
	next := 0
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ {
			_ = e.Atomically(func(tx *stm.Tx) error {
				q.Put(tx, next)
				return nil
			})
			next++
		}
		for i := 0; i < 3; i++ {
			var got int
			var ok bool
			_ = e.Atomically(func(tx *stm.Tx) error {
				got, ok = q.TryTake(tx)
				return nil
			})
			if !ok || got != round*3+i {
				t.Fatalf("round %d TryTake = %d,%v want %d,true", round, got, ok, round*3+i)
			}
		}
	}
}

// TestTQueueBlockingTake checks Take blocks via stm.Retry on an empty
// queue and wakes when a producer's commit publishes, on every engine.
func TestTQueueBlockingTake(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			q := NewTQueue[string]()
			got := make(chan string, 1)
			go func() {
				var v string
				_ = e.Atomically(func(tx *stm.Tx) error {
					v = q.Take(tx)
					return nil
				})
				got <- v
			}()
			// Give the consumer a moment to park in Retry; the wakeup
			// must come from the producer commit, not from polling.
			time.Sleep(10 * time.Millisecond)
			_ = e.Atomically(func(tx *stm.Tx) error {
				q.Put(tx, "wake")
				return nil
			})
			select {
			case v := <-got:
				if v != "wake" {
					t.Fatalf("blocked Take woke with %q", v)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("blocked Take never woke after producer commit")
			}
		})
	}
}

// TestTQueueProducersConsumers runs a multi-producer multi-consumer
// hand-off and checks every value crosses exactly once.
func TestTQueueProducersConsumers(t *testing.T) {
	const producers, consumers, perProducer = 3, 3, 100
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			q := NewTQueue[int]()
			var wg sync.WaitGroup
			results := make(chan int, producers*perProducer)
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						var v int
						_ = e.Atomically(func(tx *stm.Tx) error {
							v = q.Take(tx)
							return nil
						})
						if v < 0 {
							return
						}
						results <- v
					}
				}()
			}
			for p := 0; p < producers; p++ {
				go func(p int) {
					for i := 0; i < perProducer; i++ {
						v := p*perProducer + i
						_ = e.Atomically(func(tx *stm.Tx) error {
							q.Put(tx, v)
							return nil
						})
					}
				}(p)
			}
			seen := make(map[int]bool, producers*perProducer)
			for i := 0; i < producers*perProducer; i++ {
				select {
				case v := <-results:
					if seen[v] {
						t.Fatalf("value %d delivered twice", v)
					}
					seen[v] = true
				case <-time.After(10 * time.Second):
					t.Fatalf("stalled after %d of %d deliveries", i, producers*perProducer)
				}
			}
			// Poison pills stop the consumers.
			for c := 0; c < consumers; c++ {
				_ = e.Atomically(func(tx *stm.Tx) error {
					q.Put(tx, -1)
					return nil
				})
			}
			wg.Wait()
		})
	}
}

// TestTSetOrdered drives the ordered set against a model and checks
// order-sensitive queries.
func TestTSetOrdered(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			s := NewTSet[int]()
			_ = e.Atomically(func(tx *stm.Tx) error {
				for _, k := range []int{5, 1, 9, 3, 7, 1, 5} {
					s.Insert(tx, k)
				}
				return nil
			})
			_ = e.Atomically(func(tx *stm.Tx) error {
				if got := s.Len(tx); got != 5 {
					t.Errorf("Len = %d, want 5", got)
				}
				if min, ok := s.Min(tx); !ok || min != 1 {
					t.Errorf("Min = %d,%v want 1,true", min, ok)
				}
				want := []int{1, 3, 5, 7, 9}
				got := s.Snapshot(tx)
				if len(got) != len(want) {
					t.Fatalf("Snapshot = %v, want %v", got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Snapshot = %v, want %v", got, want)
					}
				}
				var ranged []int
				s.Ascend(tx, 3, 9, func(k int) bool {
					ranged = append(ranged, k)
					return true
				})
				if len(ranged) != 3 || ranged[0] != 3 || ranged[1] != 5 || ranged[2] != 7 {
					t.Errorf("Ascend[3,9) = %v, want [3 5 7]", ranged)
				}
				if !s.Remove(tx, 5) || s.Remove(tx, 5) {
					t.Errorf("Remove(5) twice: want true then false")
				}
				if s.Contains(tx, 5) || !s.Contains(tx, 7) {
					t.Errorf("membership wrong after Remove(5)")
				}
				return nil
			})
		})
	}
}

// TestTSetConcurrentInserts inserts disjoint ranges from parallel
// workers and checks the final chain is exactly the sorted union.
func TestTSetConcurrentInserts(t *testing.T) {
	const workers, perWorker = 4, 100
	e := stm.NewEngine(stm.EngineAdaptive)
	s := NewTSet[int]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := i*workers + w // interleaved, so inserts collide positionally
				_ = e.Atomically(func(tx *stm.Tx) error {
					s.Insert(tx, k)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	_ = e.Atomically(func(tx *stm.Tx) error {
		snap := s.Snapshot(tx)
		if len(snap) != workers*perWorker {
			t.Errorf("Len = %d, want %d", len(snap), workers*perWorker)
		}
		for i, k := range snap {
			if k != i {
				t.Errorf("Snapshot[%d] = %d; chain out of order or missing keys", i, k)
				break
			}
		}
		return nil
	})
}
