//go:build race

package tstructs

// raceEnabled mirrors stm's race_test.go: the race detector randomizes
// sync.Pool reuse, so steady-state allocation counts are meaningless
// and the zero-alloc gates skip. CI runs them in a non-race step.
const raceEnabled = true
