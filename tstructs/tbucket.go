package tstructs

import (
	"pcltm/stm"
)

// tbucketScale is the fixed-point resolution of the token count:
// micro-tokens, so slow refill rates still accrue between closely
// spaced takes without floating point living in the transactional
// state.
const tbucketScale = 1_000_000

// TBucket is a transactional token bucket: capacity tokens, refilled
// continuously at a fixed rate, spent by TryTake. The entire state is
// one two-word pointer-free struct behind a single TVar, so it rides
// the engines' raw-word path — a steady-state TryTake allocates
// nothing — and every taker conflicts with every other taker on that
// one TVar. That concentration is the point twice over: as the
// admission guard of the server package (admit or 429 is one tiny
// transaction, composable with whatever else the admission decision
// needs), and as the deliberately maximal-contention "ratelimit"
// workload pattern of internal/workload, where N workers hammering one
// bucket is the high-contention regime the adaptive engine's policy
// must survive.
//
// Time is the caller's: every operation takes now in nanoseconds
// (monotonic, e.g. time.Now().UnixNano() captured once before the
// surrounding Atomically), keeping the transactional code deterministic
// across conflict retries. Clock steps backwards are treated as zero
// elapsed time.
type TBucket struct {
	state *stm.TVar[tbucketState]
	// capacity is the burst ceiling in micro-tokens; perNS the refill in
	// micro-tokens per nanosecond. Both are immutable after New.
	capacity float64
	perNS    float64
}

// tbucketState is the mutable bucket state: two int64 words,
// pointer-free, so Set never boxes.
type tbucketState struct {
	// MicroTokens is the current balance in micro-tokens.
	MicroTokens int64
	// LastNS is the instant of the last refill.
	LastNS int64
}

// NewTBucket builds a bucket holding (and capped at) capacity tokens,
// refilling at perSec tokens per second. A non-positive capacity is
// clamped to 1; a negative rate to 0 (a bucket that never refills —
// a quota, not a limiter).
func NewTBucket(capacity int64, perSec float64) *TBucket {
	if capacity <= 0 {
		capacity = 1
	}
	if perSec < 0 {
		perSec = 0
	}
	return &TBucket{
		state:    stm.NewTVar(tbucketState{MicroTokens: capacity * tbucketScale}),
		capacity: float64(capacity) * tbucketScale,
		perNS:    perSec * tbucketScale / 1e9,
	}
}

// refill returns the balance advanced to now, clamped to capacity.
func (b *TBucket) refill(s tbucketState, now int64) tbucketState {
	if now > s.LastNS {
		added := float64(now-s.LastNS) * b.perNS
		balance := float64(s.MicroTokens) + added
		if balance > b.capacity {
			balance = b.capacity
		}
		s.MicroTokens = int64(balance)
	}
	s.LastNS = now
	return s
}

// TryTake spends n tokens inside tx if the balance (refilled to now)
// covers them, reporting whether it did. A rejected take still writes
// the refilled state, so rejection is not free of conflicts — admission
// control is itself a serialization point, which is exactly what the
// ratelimit workload pattern measures.
func (b *TBucket) TryTake(tx *stm.Tx, now int64, n int64) bool {
	s := b.refill(stm.Get(tx, b.state), now)
	need := n * tbucketScale
	ok := s.MicroTokens >= need
	if ok {
		s.MicroTokens -= need
	}
	stm.Set(tx, b.state, s)
	return ok
}

// Tokens reports the whole tokens available at now, without spending.
func (b *TBucket) Tokens(tx *stm.Tx, now int64) int64 {
	s := b.refill(stm.Get(tx, b.state), now)
	return s.MicroTokens / tbucketScale
}
