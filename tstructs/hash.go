package tstructs

import (
	"reflect"
	"unsafe"
)

// fibMul is the 64-bit Fibonacci hashing constant (2^64/φ), the same
// multiplier the engines' orec table uses: a multiply-shift by it
// spreads sequential and low-entropy hash values evenly over a
// power-of-two table.
const fibMul = 0x9E3779B97F4A7C15

// fibIndex maps a hash to a table index with shift = 64 - log2(size).
// For a one-entry table the shift is 64, which Go defines as shifting
// everything out: index 0.
func fibIndex(h uint64, shift uint) uint64 {
	return (h * fibMul) >> shift
}

// mix64 is the splitmix64 finalizer: a full-avalanche scrambler so that
// nearby key words (sequential ints, pointers from one allocation span)
// produce unrelated hashes before the Fibonacci spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a over the string bytes, finalized with mix64. It
// walks the bytes in place — no copy, no allocation.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// KeyHash exposes the derived key hash for a type — nil when the type
// has no canonical byte image — so layered packages (the partitioned
// store) can route on the same hash their TMaps bucket on.
func KeyHash[K comparable]() func(K) uint64 {
	return hasherFor[K]()
}

// hasherFor builds the allocation-free hash function for a key type:
// string kinds hash their bytes, single-pointer-word kinds hash the
// pointer bits, and pointer-free types hash their data bytes through a
// padding-aware range plan computed once from the type's layout (so
// struct padding, whose content Go does not define, never reaches the
// hash). Key types with no canonical byte image — interfaces, or
// structs mixing pointers and data — require an explicit hash via
// NewTMapFunc; hasherFor returns nil for them and constructors panic
// with that advice.
//
// Caveat shared with any byte-image hash: float keys hash by bit
// pattern, so 0.0 and -0.0 (which compare equal) land in different
// buckets. Use integer or string keys, or NewTMapFunc with a
// normalizing hash, for float-keyed maps.
func hasherFor[K comparable]() func(K) uint64 {
	t := reflect.TypeFor[K]()
	switch t.Kind() {
	case reflect.String:
		return func(k K) uint64 {
			return hashString(*(*string)(unsafe.Pointer(&k)))
		}
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func:
		return func(k K) uint64 {
			return mix64(uint64(*(*uintptr)(unsafe.Pointer(&k))))
		}
	}
	ranges, ok := keyRanges(t, 0, nil)
	if !ok {
		return nil
	}
	plan := mergeRanges(ranges)
	return func(k K) uint64 {
		h := uint64(fibMul)
		p := unsafe.Pointer(&k)
		for _, r := range plan {
			for off, end := r.off, r.off+r.n; off < end; off += 8 {
				n := end - off
				if n > 8 {
					n = 8
				}
				h = mix64(h ^ loadKeyWord(unsafe.Add(p, off), n))
			}
		}
		return h
	}
}

// byteRange is one run of meaningful (non-padding) key bytes.
type byteRange struct {
	off, n uintptr
}

// keyRanges collects the data-byte ranges of a pointer-free type in
// layout order, skipping struct padding. ok=false means the type has no
// canonical byte image (it contains pointers, strings, interfaces or
// slices).
func keyRanges(t reflect.Type, base uintptr, acc []byteRange) ([]byteRange, bool) {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return append(acc, byteRange{off: base, n: t.Size()}), true
	case reflect.Array:
		elem := t.Elem()
		for i := 0; i < t.Len(); i++ {
			var ok bool
			if acc, ok = keyRanges(elem, base+uintptr(i)*elem.Size(), acc); !ok {
				return nil, false
			}
		}
		return acc, true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			var ok bool
			if acc, ok = keyRanges(f.Type, base+f.Offset, acc); !ok {
				return nil, false
			}
		}
		return acc, true
	default:
		return nil, false
	}
}

// mergeRanges coalesces adjacent ranges (already in layout order) so a
// padding-free struct hashes as one run of words.
func mergeRanges(rs []byteRange) []byteRange {
	var out []byteRange
	for _, r := range rs {
		if r.n == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].off+out[len(out)-1].n == r.off {
			out[len(out)-1].n += r.n
			continue
		}
		out = append(out, r)
	}
	return out
}

// loadKeyWord reads the n (≤8) bytes at p into one word, byte-copying
// so no alignment or trailing-byte assumption is made.
func loadKeyWord(p unsafe.Pointer, n uintptr) uint64 {
	var w uint64
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&w)), n), unsafe.Slice((*byte)(p), n))
	return w
}
