// Package tstructs provides STM-native data structures engineered for
// commit parallelism on the stm/ engines: a sharded transactional map
// (TMap), a retry-based blocking FIFO queue (TQueue), and a sorted
// linked set index (TSet).
//
// Raw TVars are the assembly language of the engines; these structures
// are the calling convention. Every operation takes the caller's *stm.Tx
// and composes with any other transactional work in the same atomic
// block — a TMap put, a TQueue push and a plain TVar increment can
// commit or abort as one transaction. The structures themselves hold no
// engine reference: the engine is chosen by whoever opens the
// transaction, which is what lets store/ run one engine instance per
// keyspace partition.
//
// The design rule throughout is PCL-aware: the theorem says parallelism,
// consistency and liveness cannot all be had where transactions
// conflict, so the structures are shaped to make *disjoint* operations
// genuinely disjoint at the TVar level and pay the theorem's price only
// on true conflicts:
//
//   - TMap hashes keys over a power-of-two bucket table (Fibonacci
//     multiply-shift, same discipline as the engines' orec table), one
//     chain-head TVar per bucket and one value TVar per entry, so
//     operations on keys in different buckets have disjoint read and
//     write sets and never false-conflict; overwrites of an existing key
//     touch only that entry's value TVar.
//   - TQueue concentrates conflicts at the two ends of the list — which
//     is the point of a queue — and blocks empty takers with stm.Retry
//     so they wake exactly when a producer commits.
//   - TSet is the ordered index: conflicts are confined to the
//     insertion window actually touched.
//
// # Allocation contract
//
// Steady-state operations stay on the engines' zero-allocation hot
// path: TMap get, overwrite-put and delete, TSet contains, and TQueue
// take of an already-linked node perform no heap allocations (gated in
// alloc_test.go with testing.AllocsPerRun, engine by engine). Inserting
// links fresh nodes and necessarily allocates them; nothing else does.
//
// # Conformance discipline
//
// Structure mutations write every freshly created TVar inside the
// creating transaction (allocate zero-valued, then stm.Set) instead of
// smuggling initial values through stm.NewTVar. The extra write-set
// entry costs one word on inserts only, and it keeps recorded histories
// closed: every value a later transaction reads was written by some
// recorded transaction, which is what lets internal/conformance stamp
// TMap and store histories and run the paper's checkers on them.
package tstructs
