package tstructs

import (
	"fmt"
	"reflect"

	"pcltm/stm"
)

// DefaultBuckets is the bucket-table size a TMap gets when the
// constructor is passed 0. 64 buckets keep a few hundred keys at short
// chain lengths while costing one TVar pair per bucket up front; the
// table doubles itself past the load-factor threshold, so the
// constructor size is a starting point, not a ceiling.
const DefaultBuckets = 64

// maxBuckets caps table growth where the TVar overhead of the chain
// heads would start to matter (2^20 buckets ≈ tens of MiB of heads).
const maxBuckets = 1 << 20

// growChainLen is the chain length past which an insert doubles the
// bucket table. The trigger is per-bucket deliberately: the inserting
// transaction already owns its bucket's counter, so the check costs no
// extra footprint — a global entry counter would put every insert in
// the map in conflict with every other, serializing exactly the
// disjoint-key traffic the sharded table exists to parallelize. With
// the Fibonacci spread keeping chains near the mean, a chain crossing
// growChainLen signals the whole table is past a mean load factor of
// roughly half this, so doubling on the local signal tracks the global
// load-factor policy.
const growChainLen = 12

// entry is one key's cell in a bucket chain. The key is immutable node
// data; the value and the chain link are transactional, so an overwrite
// of an existing key touches exactly one TVar (val) and a structural
// change (insert, delete) touches only the links of its own bucket.
type entry[K comparable, V any] struct {
	key  K
	val  *stm.TVar[V]
	next *stm.TVar[*entry[K, V]]
}

// table is one generation of the bucket table: a fixed power-of-two
// array of chain heads and per-bucket entry counters. A generation is
// immutable once published — growth builds the next generation and
// swaps the map's table TVar — so a transaction that read the table
// pointer works against internally consistent arrays, and the swap
// itself conflicts with every concurrent operation exactly the way a
// structural rehash must.
type table[K comparable, V any] struct {
	buckets []*stm.TVar[*entry[K, V]]
	counts  []*stm.TVar[int64]
	shift   uint
}

// TMap is a sharded transactional hash map: a power-of-two table of
// bucket chains, one chain-head TVar per bucket, keys spread by
// Fibonacci multiply-shift of the key hash. Transactions on keys in
// different buckets read and write disjoint TVar sets, so they commit
// in parallel with no false conflicts on any engine; the residual false
// conflict — two distinct keys hashing to one bucket — shrinks with the
// bucket count, exactly like orec aliasing in the 2PL engine.
//
// The bucket table grows: an insert that pushes its bucket's chain
// past growChainLen rehashes into a table of twice the size, inside
// the inserting transaction (cost amortized O(1) per insert by
// doubling). The table is held in a TVar, so growth is transactional:
// concurrent readers either serialize before the swap (and see the old
// generation whole) or after it (and see the new one) — never a mix.
//
// All operations take the caller's transaction and compose with any
// other transactional work. TMap holds no engine: run its operations
// under whichever engine owns the surrounding Atomically (the store
// package runs one engine instance per partition this way).
//
// A TMap is safe for concurrent use by transactions of one engine;
// like TVars, its internals must not be shared between engines.
type TMap[K comparable, V any] struct {
	// tab holds the current table generation — nil meaning gen0, so the
	// TVar's initial value is the conformance discipline's zero and
	// only growth ever writes it (a recorded write every later read is
	// justified by).
	tab  *stm.TVar[*table[K, V]]
	gen0 *table[K, V]
	hash func(K) uint64
	// brokenChain is the planted-bug switch of NewAliasedTMapForTest:
	// Put replaces the chain head instead of walking it — the
	// cross-bucket-aliasing bug the conformance harness must convict.
	// It also pins the table (the fixture's single bucket must stay
	// single).
	brokenChain bool
}

// NewTMap builds a map with the given initial bucket count (0 =
// DefaultBuckets, otherwise rounded up to a power of two and clamped).
// The key type's hash function is derived from its layout (see
// hasherFor); key types without a canonical byte image panic with
// advice to use NewTMapFunc.
func NewTMap[K comparable, V any](buckets int) *TMap[K, V] {
	hash := hasherFor[K]()
	if hash == nil {
		panic(fmt.Sprintf("tstructs: key type %v has no derivable hash; use NewTMapFunc",
			reflect.TypeFor[K]()))
	}
	return NewTMapFunc[K, V](buckets, hash)
}

// NewTMapFunc builds a map with an explicit key hash. The hash must be
// deterministic and agree with == (equal keys, equal hashes); quality
// matters only for spread, not correctness — the table applies its own
// Fibonacci finalizer.
func NewTMapFunc[K comparable, V any](buckets int, hash func(K) uint64) *TMap[K, V] {
	if hash == nil {
		panic("tstructs: NewTMapFunc: nil hash")
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if buckets > maxBuckets {
		buckets = maxBuckets
	}
	n, log := 1, uint(0)
	for n < buckets {
		n <<= 1
		log++
	}
	return &TMap[K, V]{
		tab:  stm.NewTVar[*table[K, V]](nil),
		gen0: newTable[K, V](n, 64-log),
		hash: hash,
	}
}

// newTable allocates one table generation with empty chains.
func newTable[K comparable, V any](n int, shift uint) *table[K, V] {
	t := &table[K, V]{
		buckets: make([]*stm.TVar[*entry[K, V]], n),
		counts:  make([]*stm.TVar[int64], n),
		shift:   shift,
	}
	for i := range t.buckets {
		t.buckets[i] = stm.NewTVar[*entry[K, V]](nil)
		t.counts[i] = stm.NewTVar[int64](0)
	}
	return t
}

// tableOf resolves the current generation inside tx: the table TVar,
// whose nil initial value stands for generation 0.
func (m *TMap[K, V]) tableOf(tx *stm.Tx) *table[K, V] {
	if t := stm.Get(tx, m.tab); t != nil {
		return t
	}
	return m.gen0
}

// tablePeek resolves the current generation outside any transaction —
// for the monitoring reads (Buckets, BucketOf, LenQuiesced).
func (m *TMap[K, V]) tablePeek() *table[K, V] {
	if t := m.tab.Peek(); t != nil {
		return t
	}
	return m.gen0
}

// Buckets returns the current bucket-table size (a power of two). It
// peeks the table pointer outside any transaction, so under concurrent
// growth it is a monitoring read, like LenQuiesced.
func (m *TMap[K, V]) Buckets() int { return len(m.tablePeek().buckets) }

// bucketOf returns the chain-head index covering k in generation t.
func (t *table[K, V]) bucketOf(hash func(K) uint64, k K) int {
	return int(fibIndex(hash(k), t.shift))
}

// BucketOf exposes the bucket index covering k — for sharding
// diagnostics and the store's routing-independence tests; two
// transactions conflict falsely in the map exactly when their keys
// share a BucketOf value. Like Buckets, it peeks the current
// generation.
func (m *TMap[K, V]) BucketOf(k K) int { return m.tablePeek().bucketOf(m.hash, k) }

// locate walks k's bucket chain in generation t inside tx, returning
// the TVar holding the link to k's entry (the bucket head or a
// predecessor's next) and the entry itself, nil if absent.
func (m *TMap[K, V]) locate(tx *stm.Tx, t *table[K, V], k K) (*stm.TVar[*entry[K, V]], *entry[K, V]) {
	prev := t.buckets[t.bucketOf(m.hash, k)]
	cur := stm.Get(tx, prev)
	for cur != nil && cur.key != k {
		prev = cur.next
		cur = stm.Get(tx, prev)
	}
	return prev, cur
}

// Get reads k's value inside tx; ok reports presence. The read set is
// the table pointer plus the bucket chain walked plus the entry's value
// — disjoint from every other bucket.
func (m *TMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	_, cur := m.locate(tx, m.tableOf(tx), k)
	if cur == nil {
		var zero V
		return zero, false
	}
	return stm.Get(tx, cur.val), true
}

// Contains reports whether k is present, without reading the value.
func (m *TMap[K, V]) Contains(tx *stm.Tx, k K) bool {
	_, cur := m.locate(tx, m.tableOf(tx), k)
	return cur != nil
}

// Put stores v under k inside tx. Overwriting an existing key writes
// only that entry's value TVar; inserting links a fresh entry at the
// chain head and, past the load-factor threshold, doubles the table.
// Freshly created TVars are written through stm.Set inside tx (not
// seeded via NewTVar), so the whole insert is visible to an attached
// recorder — see the package's conformance discipline.
func (m *TMap[K, V]) Put(tx *stm.Tx, k K, v V) {
	if m.brokenChain {
		m.putBroken(tx, k, v)
		return
	}
	t := m.tableOf(tx)
	_, cur := m.locate(tx, t, k)
	if cur != nil {
		stm.Set(tx, cur.val, v)
		return
	}
	b := t.bucketOf(m.hash, k)
	head := t.buckets[b]
	e := &entry[K, V]{
		key:  k,
		val:  stm.NewTVar[V](*new(V)),
		next: stm.NewTVar[*entry[K, V]](nil),
	}
	stm.Set(tx, e.val, v)
	stm.Set(tx, e.next, stm.Get(tx, head))
	stm.Set(tx, head, e)
	c := stm.Get(tx, t.counts[b]) + 1
	stm.Set(tx, t.counts[b], c)
	if c > growChainLen && len(t.buckets) < maxBuckets {
		m.grow(tx, t)
	}
}

// grow rehashes generation old into a table of twice the size and
// swaps the map's table TVar, all inside tx. Entries move whole — the
// same entry structs, value TVars untouched, only the chain links
// rewritten — so an overwrite racing the growth conflicts on exactly
// the TVars it would have anyway. The transaction's footprint is the
// entire old table, which is what makes the swap safe: any concurrent
// operation that saw the old generation overlaps it and serializes.
func (m *TMap[K, V]) grow(tx *stm.Tx, old *table[K, V]) {
	n := len(old.buckets) * 2
	nt := newTable[K, V](n, old.shift-1)
	moved := make([]int64, n)
	for _, head := range old.buckets {
		cur := stm.Get(tx, head)
		for cur != nil {
			next := stm.Get(tx, cur.next)
			b := nt.bucketOf(m.hash, cur.key)
			stm.Set(tx, cur.next, stm.Get(tx, nt.buckets[b]))
			stm.Set(tx, nt.buckets[b], cur)
			moved[b]++
			cur = next
		}
	}
	for b, c := range moved {
		if c != 0 {
			stm.Set(tx, nt.counts[b], c)
		}
	}
	stm.Set(tx, m.tab, nt)
}

// Delete removes k inside tx, reporting whether the map changed. A miss
// leaves the transaction read-only for this op.
func (m *TMap[K, V]) Delete(tx *stm.Tx, k K) bool {
	t := m.tableOf(tx)
	prev, cur := m.locate(tx, t, k)
	if cur == nil {
		return false
	}
	stm.Set(tx, prev, stm.Get(tx, cur.next))
	b := t.bucketOf(m.hash, k)
	stm.Update(tx, t.counts[b], func(n int64) int64 { return n - 1 })
	return true
}

// Len returns the entry count inside tx. It reads every bucket's
// counter (not every chain), so it is O(buckets) and conflicts with all
// concurrent inserts and deletes — an inherently global question.
func (m *TMap[K, V]) Len(tx *stm.Tx) int {
	var n int64
	for _, c := range m.tableOf(tx).counts {
		n += stm.Get(tx, c)
	}
	return int(n)
}

// LenQuiesced returns the entry count without a transaction, by
// peeking every bucket counter of the current generation. Each peek is
// individually consistent, so the sum is exact only when the caller
// excludes all concurrent transactions on the map's engine for the
// duration — the contract store.Len provides by holding every
// partition's escalation lock exclusive. Without that exclusion the
// sum is a monitoring approximation, like summing sharded counters
// anywhere.
func (m *TMap[K, V]) LenQuiesced() int {
	var n int64
	for _, c := range m.tablePeek().counts {
		n += c.Peek()
	}
	return int(n)
}

// ForEach visits every entry inside tx, in unspecified order, until fn
// returns false. The read set is the whole table; use it for snapshots
// and administration, not hot paths.
func (m *TMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	for _, head := range m.tableOf(tx).buckets {
		for cur := stm.Get(tx, head); cur != nil; cur = stm.Get(tx, cur.next) {
			if !fn(cur.key, stm.Get(tx, cur.val)) {
				return
			}
		}
	}
}

// putBroken is the planted chain-handling bug: it replaces the bucket
// head outright, dropping whatever chain hung off it, so a key that
// aliases into the bucket silently deletes its neighbors. It never
// grows the table — the fixture's single bucket is the point.
func (m *TMap[K, V]) putBroken(tx *stm.Tx, k K, v V) {
	t := m.tableOf(tx)
	b := t.bucketOf(m.hash, k)
	head := t.buckets[b]
	e := &entry[K, V]{
		key:  k,
		val:  stm.NewTVar[V](*new(V)),
		next: stm.NewTVar[*entry[K, V]](nil),
	}
	stm.Set(tx, e.val, v)
	stm.Set(tx, head, e)
	stm.Update(tx, t.counts[b], func(n int64) int64 { return n + 1 })
}

// NewAliasedTMapForTest builds the conformance harness's planted-bug
// fixture: a single-bucket table (every key aliases onto one chain-head
// TVar) whose Put mishandles the chain — it replaces the head instead
// of walking it, so putting key B destroys key A's entry. Recorded
// store histories over this map read values that were never written to
// the keys they came from; the consistency checkers must convict it,
// which is the harness's self-test for the structure layer (mirroring
// stm.NewBrokenEngineForTest at the engine layer). Not registered, not
// for production use.
func NewAliasedTMapForTest[K comparable, V any]() *TMap[K, V] {
	hash := hasherFor[K]()
	if hash == nil {
		hash = func(K) uint64 { return 0 }
	}
	m := NewTMapFunc[K, V](1, hash)
	m.brokenChain = true
	return m
}
