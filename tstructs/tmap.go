package tstructs

import (
	"fmt"
	"reflect"

	"pcltm/stm"
)

// DefaultBuckets is the bucket-table size a TMap gets when the
// constructor is passed 0. 64 buckets keep a few hundred keys at short
// chain lengths while costing one TVar pair per bucket up front.
const DefaultBuckets = 64

// maxBuckets caps the table where the up-front TVar allocation would
// start to matter (2^16 buckets ≈ a few MiB of chain heads).
const maxBuckets = 1 << 16

// entry is one key's cell in a bucket chain. The key is immutable node
// data; the value and the chain link are transactional, so an overwrite
// of an existing key touches exactly one TVar (val) and a structural
// change (insert, delete) touches only the links of its own bucket.
type entry[K comparable, V any] struct {
	key  K
	val  *stm.TVar[V]
	next *stm.TVar[*entry[K, V]]
}

// TMap is a sharded transactional hash map: a fixed power-of-two table
// of bucket chains, one chain-head TVar per bucket, keys spread by
// Fibonacci multiply-shift of the key hash. Transactions on keys in
// different buckets read and write disjoint TVar sets, so they commit
// in parallel with no false conflicts on any engine; the residual false
// conflict — two distinct keys hashing to one bucket — shrinks with the
// bucket count, exactly like orec aliasing in the 2PL engine.
//
// All operations take the caller's transaction and compose with any
// other transactional work. TMap holds no engine: run its operations
// under whichever engine owns the surrounding Atomically (the store
// package runs one engine instance per partition this way).
//
// A TMap is safe for concurrent use by transactions of one engine;
// like TVars, its internals must not be shared between engines.
type TMap[K comparable, V any] struct {
	buckets []*stm.TVar[*entry[K, V]]
	counts  []*stm.TVar[int64]
	hash    func(K) uint64
	shift   uint
	// brokenChain is the planted-bug switch of NewAliasedTMapForTest:
	// Put replaces the chain head instead of walking it — the
	// cross-bucket-aliasing bug the conformance harness must convict.
	brokenChain bool
}

// NewTMap builds a map with the given bucket count (0 = DefaultBuckets,
// otherwise rounded up to a power of two and clamped). The key type's
// hash function is derived from its layout (see hasherFor); key types
// without a canonical byte image panic with advice to use NewTMapFunc.
func NewTMap[K comparable, V any](buckets int) *TMap[K, V] {
	hash := hasherFor[K]()
	if hash == nil {
		panic(fmt.Sprintf("tstructs: key type %v has no derivable hash; use NewTMapFunc",
			reflect.TypeFor[K]()))
	}
	return NewTMapFunc[K, V](buckets, hash)
}

// NewTMapFunc builds a map with an explicit key hash. The hash must be
// deterministic and agree with == (equal keys, equal hashes); quality
// matters only for spread, not correctness — the table applies its own
// Fibonacci finalizer.
func NewTMapFunc[K comparable, V any](buckets int, hash func(K) uint64) *TMap[K, V] {
	if hash == nil {
		panic("tstructs: NewTMapFunc: nil hash")
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if buckets > maxBuckets {
		buckets = maxBuckets
	}
	n, log := 1, uint(0)
	for n < buckets {
		n <<= 1
		log++
	}
	m := &TMap[K, V]{
		buckets: make([]*stm.TVar[*entry[K, V]], n),
		counts:  make([]*stm.TVar[int64], n),
		hash:    hash,
		shift:   64 - log,
	}
	for i := range m.buckets {
		m.buckets[i] = stm.NewTVar[*entry[K, V]](nil)
		m.counts[i] = stm.NewTVar[int64](0)
	}
	return m
}

// Buckets returns the bucket-table size (a power of two).
func (m *TMap[K, V]) Buckets() int { return len(m.buckets) }

// bucketOf returns the chain-head index covering k.
func (m *TMap[K, V]) bucketOf(k K) int {
	return int(fibIndex(m.hash(k), m.shift))
}

// BucketOf exposes the bucket index covering k — for sharding
// diagnostics and the store's routing-independence tests; two
// transactions conflict falsely in the map exactly when their keys
// share a BucketOf value.
func (m *TMap[K, V]) BucketOf(k K) int { return m.bucketOf(k) }

// locate walks k's bucket chain inside tx, returning the TVar holding
// the link to k's entry (the bucket head or a predecessor's next) and
// the entry itself, nil if absent.
func (m *TMap[K, V]) locate(tx *stm.Tx, k K) (*stm.TVar[*entry[K, V]], *entry[K, V]) {
	prev := m.buckets[m.bucketOf(k)]
	cur := stm.Get(tx, prev)
	for cur != nil && cur.key != k {
		prev = cur.next
		cur = stm.Get(tx, prev)
	}
	return prev, cur
}

// Get reads k's value inside tx; ok reports presence. The read set is
// the bucket chain walked plus the entry's value — disjoint from every
// other bucket.
func (m *TMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	_, cur := m.locate(tx, k)
	if cur == nil {
		var zero V
		return zero, false
	}
	return stm.Get(tx, cur.val), true
}

// Contains reports whether k is present, without reading the value.
func (m *TMap[K, V]) Contains(tx *stm.Tx, k K) bool {
	_, cur := m.locate(tx, k)
	return cur != nil
}

// Put stores v under k inside tx. Overwriting an existing key writes
// only that entry's value TVar; inserting links a fresh entry at the
// chain head. Freshly created TVars are written through stm.Set inside
// tx (not seeded via NewTVar), so the whole insert is visible to an
// attached recorder — see the package's conformance discipline.
func (m *TMap[K, V]) Put(tx *stm.Tx, k K, v V) {
	if m.brokenChain {
		m.putBroken(tx, k, v)
		return
	}
	_, cur := m.locate(tx, k)
	if cur != nil {
		stm.Set(tx, cur.val, v)
		return
	}
	b := m.bucketOf(k)
	head := m.buckets[b]
	e := &entry[K, V]{
		key:  k,
		val:  stm.NewTVar[V](*new(V)),
		next: stm.NewTVar[*entry[K, V]](nil),
	}
	stm.Set(tx, e.val, v)
	stm.Set(tx, e.next, stm.Get(tx, head))
	stm.Set(tx, head, e)
	stm.Update(tx, m.counts[b], func(n int64) int64 { return n + 1 })
}

// Delete removes k inside tx, reporting whether the map changed. A miss
// leaves the transaction read-only for this op.
func (m *TMap[K, V]) Delete(tx *stm.Tx, k K) bool {
	prev, cur := m.locate(tx, k)
	if cur == nil {
		return false
	}
	stm.Set(tx, prev, stm.Get(tx, cur.next))
	b := m.bucketOf(k)
	stm.Update(tx, m.counts[b], func(n int64) int64 { return n - 1 })
	return true
}

// Len returns the entry count inside tx. It reads every bucket's
// counter (not every chain), so it is O(buckets) and conflicts with all
// concurrent inserts and deletes — an inherently global question.
func (m *TMap[K, V]) Len(tx *stm.Tx) int {
	var n int64
	for _, c := range m.counts {
		n += stm.Get(tx, c)
	}
	return int(n)
}

// LenQuiesced returns the entry count without a transaction, by
// peeking every bucket counter. Each peek is individually consistent,
// so the sum is exact only when the caller excludes all concurrent
// transactions on the map's engine for the duration — the contract
// store.Len provides by holding every partition's escalation lock
// exclusive. Without that exclusion the sum is a monitoring
// approximation, like summing sharded counters anywhere.
func (m *TMap[K, V]) LenQuiesced() int {
	var n int64
	for _, c := range m.counts {
		n += c.Peek()
	}
	return int(n)
}

// ForEach visits every entry inside tx, in unspecified order, until fn
// returns false. The read set is the whole table; use it for snapshots
// and administration, not hot paths.
func (m *TMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	for _, head := range m.buckets {
		for cur := stm.Get(tx, head); cur != nil; cur = stm.Get(tx, cur.next) {
			if !fn(cur.key, stm.Get(tx, cur.val)) {
				return
			}
		}
	}
}

// putBroken is the planted chain-handling bug: it replaces the bucket
// head outright, dropping whatever chain hung off it, so a key that
// aliases into the bucket silently deletes its neighbors.
func (m *TMap[K, V]) putBroken(tx *stm.Tx, k K, v V) {
	b := m.bucketOf(k)
	head := m.buckets[b]
	e := &entry[K, V]{
		key:  k,
		val:  stm.NewTVar[V](*new(V)),
		next: stm.NewTVar[*entry[K, V]](nil),
	}
	stm.Set(tx, e.val, v)
	stm.Set(tx, head, e)
	stm.Update(tx, m.counts[b], func(n int64) int64 { return n + 1 })
}

// NewAliasedTMapForTest builds the conformance harness's planted-bug
// fixture: a single-bucket table (every key aliases onto one chain-head
// TVar) whose Put mishandles the chain — it replaces the head instead
// of walking it, so putting key B destroys key A's entry. Recorded
// store histories over this map read values that were never written to
// the keys they came from; the consistency checkers must convict it,
// which is the harness's self-test for the structure layer (mirroring
// stm.NewBrokenEngineForTest at the engine layer). Not registered, not
// for production use.
func NewAliasedTMapForTest[K comparable, V any]() *TMap[K, V] {
	hash := hasherFor[K]()
	if hash == nil {
		hash = func(K) uint64 { return 0 }
	}
	m := NewTMapFunc[K, V](1, hash)
	m.brokenChain = true
	return m
}
