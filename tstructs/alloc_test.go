package tstructs

import (
	"testing"

	"pcltm/stm"
)

// The structure library's allocation regression gates: the package doc
// promises get, overwrite-put, miss-delete, contains and take are
// allocation-free in steady state, on every engine. The pattern mirrors
// stm/alloc_test.go — warm the pools and chains first, then pin
// AllocsPerRun — and shares its adaptive-budget rationale.

func allocBudget(kind stm.EngineKind) float64 {
	if kind == stm.EngineAdaptive {
		return 0.5
	}
	return 0
}

const allocWarmup = 200

func measureAllocs(t *testing.T, e *stm.Engine, fn func(tx *stm.Tx) error) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
	}
	for i := 0; i < allocWarmup; i++ {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	})
}

// seededMap returns a warmed TMap holding keys 0..n-1 with int64 values.
func seededMap(e *stm.Engine, n int) *TMap[int64, int64] {
	m := NewTMap[int64, int64](64)
	_ = e.Atomically(func(tx *stm.Tx) error {
		for k := int64(0); k < int64(n); k++ {
			m.Put(tx, k, k)
		}
		return nil
	})
	return m
}

// TestZeroAllocTMapGet: a steady-state get of an existing key — hash,
// chain walk, value read, commit — allocates nothing.
func TestZeroAllocTMapGet(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			m := seededMap(e, 32)
			var sink int64
			k := int64(0)
			fn := func(tx *stm.Tx) error {
				v, ok := m.Get(tx, k%32)
				if !ok {
					t.Fatal("seeded key missing")
				}
				sink += v
				k++
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: TMap get allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocTMapPutOverwrite: overwriting an existing key writes one
// value TVar and allocates nothing — no entry, no boxing, no chain
// mutation.
func TestZeroAllocTMapPutOverwrite(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			m := seededMap(e, 32)
			i := int64(0)
			fn := func(tx *stm.Tx) error {
				m.Put(tx, i%32, i)
				i++
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: TMap overwrite-put allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocTMapDeleteMiss: deleting an absent key is a read-only
// chain walk and allocates nothing.
func TestZeroAllocTMapDeleteMiss(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			m := seededMap(e, 32)
			fn := func(tx *stm.Tx) error {
				if m.Delete(tx, 1<<40) {
					t.Fatal("absent key reported deleted")
				}
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: TMap miss-delete allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocTMapDeleteReinsertCycle: a delete of a present key
// followed by a reinsert in a later transaction reaches steady state at
// exactly the entry allocations (entry + two TVars + their value cells
// on some engines) — pinned here not at zero but as a fixed ceiling so
// accidental per-op growth in the walk itself still fails the gate.
func TestZeroAllocTMapDeleteReinsertCycle(t *testing.T) {
	const insertCeiling = 8 // entry + 2 TVars + engine write-set growth, measured headroom
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			m := seededMap(e, 32)
			del := true
			fn := func(tx *stm.Tx) error {
				if del {
					if !m.Delete(tx, 7) {
						t.Fatal("present key not deleted")
					}
				} else {
					m.Put(tx, 7, 7)
				}
				del = !del
				return nil
			}
			if got := measureAllocs(t, e, fn); got > insertCeiling+allocBudget(kind) {
				t.Errorf("%s: TMap delete/reinsert cycle allocates %.2f allocs/op, ceiling %d",
					kind, got, insertCeiling)
			}
		})
	}
}

// TestZeroAllocTMapStringKeys: the derived string hasher walks the key
// bytes in place, so string-keyed gets are allocation-free too.
func TestZeroAllocTMapStringKeys(t *testing.T) {
	keys := [4]string{"alpha", "beta", "gamma", "delta"}
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			m := NewTMap[string, int64](16)
			_ = e.Atomically(func(tx *stm.Tx) error {
				for i, k := range keys {
					m.Put(tx, k, int64(i))
				}
				return nil
			})
			i := 0
			var sink int64
			fn := func(tx *stm.Tx) error {
				v, ok := m.Get(tx, keys[i%len(keys)])
				if !ok {
					t.Fatal("seeded string key missing")
				}
				sink += v
				i++
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: string-keyed TMap get allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocTQueueTake: a take from a non-empty queue — head read,
// unlink, size update — allocates nothing. The queue is topped up
// outside the measured transaction (puts allocate their node by design).
func TestZeroAllocTQueueTake(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			q := NewTQueue[int64]()
			refill := func() {
				_ = e.Atomically(func(tx *stm.Tx) error {
					for i := int64(0); i < 4; i++ {
						q.Put(tx, i)
					}
					return nil
				})
			}
			refill()
			var sink int64
			fn := func(tx *stm.Tx) error {
				v, ok := q.TryTake(tx)
				if !ok {
					return nil // refilled outside; measured op stays take-shaped
				}
				sink += v
				return nil
			}
			if raceEnabled {
				t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
			}
			for i := 0; i < allocWarmup; i++ {
				refill()
				for j := 0; j < 4; j++ {
					if err := e.Atomically(fn); err != nil {
						t.Fatal(err)
					}
				}
			}
			refill()
			got := testing.AllocsPerRun(4, func() {
				if err := e.Atomically(fn); err != nil {
					t.Fatal(err)
				}
			})
			if got > allocBudget(kind) {
				t.Errorf("%s: TQueue take allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocTSetContains: a membership probe walks the chain prefix
// and allocates nothing.
func TestZeroAllocTSetContains(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			s := NewTSet[int64]()
			_ = e.Atomically(func(tx *stm.Tx) error {
				for k := int64(0); k < 16; k++ {
					s.Insert(tx, k)
				}
				return nil
			})
			k := int64(0)
			var sink bool
			fn := func(tx *stm.Tx) error {
				sink = s.Contains(tx, k%16)
				k++
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: TSet contains allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}
