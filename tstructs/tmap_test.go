package tstructs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pcltm/stm"
)

// engines returns one fresh engine per registered kind.
func engines(t *testing.T) []*stm.Engine {
	t.Helper()
	var out []*stm.Engine
	for _, kind := range stm.EngineKinds() {
		out = append(out, stm.NewEngine(kind))
	}
	return out
}

// TestTMapBasicOps drives the map's whole surface sequentially on every
// engine against a plain Go map as the model.
func TestTMapBasicOps(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[string, int64](8)
			model := map[string]int64{}
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", r.Intn(64))
				switch r.Intn(10) {
				case 0, 1: // delete
					var got bool
					_ = e.Atomically(func(tx *stm.Tx) error {
						got = m.Delete(tx, k)
						return nil
					})
					_, want := model[k]
					if got != want {
						t.Fatalf("Delete(%q) = %v, model %v", k, got, want)
					}
					delete(model, k)
				case 2, 3, 4: // get
					var got int64
					var ok bool
					_ = e.Atomically(func(tx *stm.Tx) error {
						got, ok = m.Get(tx, k)
						return nil
					})
					want, wantOK := model[k]
					if ok != wantOK || got != want {
						t.Fatalf("Get(%q) = %d,%v, model %d,%v", k, got, ok, want, wantOK)
					}
				default: // put
					v := int64(i)
					_ = e.Atomically(func(tx *stm.Tx) error {
						m.Put(tx, k, v)
						return nil
					})
					model[k] = v
				}
			}
			var n int
			snapshot := map[string]int64{}
			_ = e.Atomically(func(tx *stm.Tx) error {
				n = m.Len(tx)
				m.ForEach(tx, func(k string, v int64) bool {
					snapshot[k] = v
					return true
				})
				return nil
			})
			if n != len(model) {
				t.Fatalf("Len = %d, model %d", n, len(model))
			}
			if len(snapshot) != len(model) {
				t.Fatalf("ForEach visited %d entries, model %d", len(snapshot), len(model))
			}
			for k, v := range model {
				if snapshot[k] != v {
					t.Fatalf("snapshot[%q] = %d, model %d", k, snapshot[k], v)
				}
			}
		})
	}
}

// TestTMapAliasedKeysShareBucket forces every key into one bucket and
// checks the chain handles arbitrarily aliased keys: the correctness
// property the sharding must never depend on.
func TestTMapAliasedKeysShareBucket(t *testing.T) {
	e := stm.NewEngine(stm.EngineTL2)
	m := NewTMapFunc[int, int](4, func(int) uint64 { return 7 }) // all keys alias
	_ = e.Atomically(func(tx *stm.Tx) error {
		for k := 0; k < 32; k++ {
			m.Put(tx, k, k*10)
		}
		return nil
	})
	_ = e.Atomically(func(tx *stm.Tx) error {
		for k := 0; k < 32; k++ {
			if v, ok := m.Get(tx, k); !ok || v != k*10 {
				t.Errorf("aliased Get(%d) = %d,%v want %d,true", k, v, ok, k*10)
			}
		}
		if got := m.Len(tx); got != 32 {
			t.Errorf("aliased Len = %d, want 32", got)
		}
		// Delete from the middle of the shared chain.
		for k := 0; k < 32; k += 2 {
			if !m.Delete(tx, k) {
				t.Errorf("aliased Delete(%d) = false", k)
			}
		}
		for k := 0; k < 32; k++ {
			want := k%2 == 1
			if got := m.Contains(tx, k); got != want {
				t.Errorf("after deletes Contains(%d) = %v, want %v", k, got, want)
			}
		}
		return nil
	})
}

// TestTMapConcurrentDisjointKeys hammers the map from parallel workers
// on disjoint key ranges on every engine and checks every write landed:
// the commit-parallelism contract, validated for correctness here and
// for throughput in tmbench.
func TestTMapConcurrentDisjointKeys(t *testing.T) {
	const workers, opsPer = 4, 300
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[int, int64](64)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					base := worker * opsPer
					for i := 0; i < opsPer; i++ {
						k := base + i
						_ = e.Atomically(func(tx *stm.Tx) error {
							m.Put(tx, k, int64(k))
							return nil
						})
						// Increment through a read-modify-write.
						_ = e.Atomically(func(tx *stm.Tx) error {
							v, _ := m.Get(tx, k)
							m.Put(tx, k, v+1)
							return nil
						})
					}
				}(w)
			}
			wg.Wait()
			_ = e.Atomically(func(tx *stm.Tx) error {
				if got := m.Len(tx); got != workers*opsPer {
					t.Errorf("Len = %d, want %d", got, workers*opsPer)
				}
				for k := 0; k < workers*opsPer; k++ {
					if v, ok := m.Get(tx, k); !ok || v != int64(k)+1 {
						t.Errorf("Get(%d) = %d,%v want %d,true", k, v, ok, k+1)
					}
				}
				return nil
			})
		})
	}
}

// TestTMapContendedCounter runs conflicting read-modify-writes of one
// hot key from many workers; the final value must equal the increment
// count on every engine (atomicity under real conflicts).
func TestTMapContendedCounter(t *testing.T) {
	const workers, opsPer = 4, 200
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[string, int64](4)
			_ = e.Atomically(func(tx *stm.Tx) error {
				m.Put(tx, "hot", 0)
				return nil
			})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						_ = e.Atomically(func(tx *stm.Tx) error {
							v, _ := m.Get(tx, "hot")
							m.Put(tx, "hot", v+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			var got int64
			_ = e.Atomically(func(tx *stm.Tx) error {
				got, _ = m.Get(tx, "hot")
				return nil
			})
			if got != workers*opsPer {
				t.Errorf("hot counter = %d, want %d", got, workers*opsPer)
			}
		})
	}
}

// TestTMapAbortRollsBackStructure aborts transactions mid-mutation and
// checks no structural change leaks (insert, overwrite and delete all
// undone), on every engine.
func TestTMapAbortRollsBackStructure(t *testing.T) {
	errBoom := fmt.Errorf("deliberate abort")
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[int, string](8)
			_ = e.Atomically(func(tx *stm.Tx) error {
				m.Put(tx, 1, "one")
				m.Put(tx, 2, "two")
				return nil
			})
			if err := e.Atomically(func(tx *stm.Tx) error {
				m.Put(tx, 3, "three") // insert, to be undone
				m.Put(tx, 1, "uno")   // overwrite, to be undone
				m.Delete(tx, 2)       // delete, to be undone
				return errBoom
			}); err != errBoom {
				t.Fatalf("abort err = %v", err)
			}
			_ = e.Atomically(func(tx *stm.Tx) error {
				if v, ok := m.Get(tx, 1); !ok || v != "one" {
					t.Errorf("after abort Get(1) = %q,%v want \"one\",true", v, ok)
				}
				if v, ok := m.Get(tx, 2); !ok || v != "two" {
					t.Errorf("after abort Get(2) = %q,%v want \"two\",true", v, ok)
				}
				if _, ok := m.Get(tx, 3); ok {
					t.Errorf("after abort Get(3) present, want absent")
				}
				if n := m.Len(tx); n != 2 {
					t.Errorf("after abort Len = %d, want 2", n)
				}
				return nil
			})
		})
	}
}

// TestTMapKeyKinds exercises the derived hashers across key layouts:
// strings, ints, pointer keys, small structs with padding, and arrays.
func TestTMapKeyKinds(t *testing.T) {
	e := stm.NewEngine(stm.EngineTL2)

	t.Run("padded-struct-key", func(t *testing.T) {
		type padded struct {
			A uint8
			B uint64 // 7 bytes of padding before B
		}
		m := NewTMap[padded, int](8)
		_ = e.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, padded{A: 1, B: 2}, 12)
			m.Put(tx, padded{A: 3, B: 4}, 34)
			return nil
		})
		_ = e.Atomically(func(tx *stm.Tx) error {
			if v, ok := m.Get(tx, padded{A: 1, B: 2}); !ok || v != 12 {
				t.Errorf("padded Get = %d,%v want 12,true", v, ok)
			}
			return nil
		})
	})

	t.Run("pointer-key", func(t *testing.T) {
		m := NewTMap[*int, string](8)
		k1, k2 := new(int), new(int)
		_ = e.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, k1, "one")
			m.Put(tx, k2, "two")
			return nil
		})
		_ = e.Atomically(func(tx *stm.Tx) error {
			if v, ok := m.Get(tx, k1); !ok || v != "one" {
				t.Errorf("pointer Get(k1) = %q,%v", v, ok)
			}
			if v, ok := m.Get(tx, k2); !ok || v != "two" {
				t.Errorf("pointer Get(k2) = %q,%v", v, ok)
			}
			return nil
		})
	})

	t.Run("array-key", func(t *testing.T) {
		m := NewTMap[[3]uint16, int](8)
		_ = e.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, [3]uint16{1, 2, 3}, 123)
			return nil
		})
		_ = e.Atomically(func(tx *stm.Tx) error {
			if v, ok := m.Get(tx, [3]uint16{1, 2, 3}); !ok || v != 123 {
				t.Errorf("array Get = %d,%v want 123,true", v, ok)
			}
			if _, ok := m.Get(tx, [3]uint16{3, 2, 1}); ok {
				t.Errorf("array Get of absent key reported present")
			}
			return nil
		})
	})

	t.Run("underivable-key-panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("NewTMap with interface key did not panic")
			}
		}()
		_ = NewTMap[any, int](8)
	})
}

// TestHasherSpread sanity-checks the derived hashers: equal keys hash
// equal, and a few thousand distinct keys spread over the table without
// catastrophic clustering.
func TestHasherSpread(t *testing.T) {
	hInt := hasherFor[int]()
	hStr := hasherFor[string]()
	if hInt == nil || hStr == nil {
		t.Fatal("derived hashers missing for int/string")
	}
	if hInt(42) != hInt(42) || hStr("x") != hStr("x") {
		t.Fatal("hash not deterministic")
	}
	const n, buckets = 4096, 64
	var shift uint = 64 - 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[fibIndex(hInt(i), shift)]++
	}
	for b, c := range counts {
		if c == 0 || c > 4*n/buckets {
			t.Fatalf("int hash clusters: bucket %d has %d of %d keys", b, c, n)
		}
	}
	counts = make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[fibIndex(hStr(fmt.Sprintf("key-%d", i)), shift)]++
	}
	for b, c := range counts {
		if c == 0 || c > 4*n/buckets {
			t.Fatalf("string hash clusters: bucket %d has %d of %d keys", b, c, n)
		}
	}
}

// TestAliasedTMapFixtureLosesKeys pins the planted bug's observable
// symptom (the conformance harness convicts it from recorded histories;
// this is the direct view): putting a second key destroys the first.
func TestAliasedTMapFixtureLosesKeys(t *testing.T) {
	e := stm.NewEngine(stm.EngineGlobalLock)
	m := NewAliasedTMapForTest[int, int64]()
	_ = e.Atomically(func(tx *stm.Tx) error {
		m.Put(tx, 1, 100)
		return nil
	})
	_ = e.Atomically(func(tx *stm.Tx) error {
		m.Put(tx, 2, 200)
		return nil
	})
	_ = e.Atomically(func(tx *stm.Tx) error {
		if _, ok := m.Get(tx, 1); ok {
			t.Errorf("aliased fixture kept key 1; the planted bug is gone and the conformance self-test is vacuous")
		}
		return nil
	})
}

// TestTMapGrows checks the bucket table doubles past the load-factor
// threshold and that nothing is lost or misrouted across generations:
// every key inserted before, during and after growth stays readable,
// and lookups keep agreeing with a model map.
func TestTMapGrows(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[int64, int64](1) // smallest start: growth must engage fast
			if got := m.Buckets(); got != 1 {
				t.Fatalf("initial buckets = %d, want 1", got)
			}
			const keys = 4096
			for k := int64(0); k < keys; k++ {
				if err := e.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, k*3)
					return nil
				}); err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
			}
			grown := m.Buckets()
			if grown < keys/(2*growChainLen) {
				t.Fatalf("table did not grow: %d buckets for %d keys", grown, keys)
			}
			// Mean chain length stays at or under the trigger.
			if lf := keys / grown; lf > growChainLen {
				t.Fatalf("load factor %d exceeds growth threshold %d (buckets %d)", lf, growChainLen, grown)
			}
			if err := e.Atomically(func(tx *stm.Tx) error {
				if n := m.Len(tx); n != keys {
					return fmt.Errorf("Len = %d, want %d", n, keys)
				}
				for k := int64(0); k < keys; k++ {
					v, ok := m.Get(tx, k)
					if !ok || v != k*3 {
						return fmt.Errorf("key %d = %d,%v after growth", k, v, ok)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Deletes still route correctly in the grown generation.
			for k := int64(0); k < keys; k += 2 {
				if err := e.Atomically(func(tx *stm.Tx) error {
					if !m.Delete(tx, k) {
						return fmt.Errorf("delete %d missed", k)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			if n := m.LenQuiesced(); n != keys/2 {
				t.Fatalf("LenQuiesced = %d after deletes, want %d", n, keys/2)
			}
		})
	}
}

// TestTMapGrowsUnderConcurrentReaders races growth against readers and
// disjoint-key writers: reader transactions either serialize before a
// table swap (old generation, whole) or after it (new generation,
// whole), so every committed read must still see exactly the model's
// value. Run with -race in CI.
func TestTMapGrowsUnderConcurrentReaders(t *testing.T) {
	for _, e := range engines(t) {
		t.Run(e.Kind().String(), func(t *testing.T) {
			m := NewTMap[int64, int64](1)
			const seeded = 64
			for k := int64(0); k < seeded; k++ {
				_ = e.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, k+1000)
					return nil
				})
			}
			start := m.Buckets()
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) { // readers over the seeded range
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := int64(r.Intn(seeded))
						var v int64
						var ok bool
						_ = e.AtomicallyAs(w, func(tx *stm.Tx) error {
							v, ok = m.Get(tx, k)
							return nil
						})
						if !ok || v != k+1000 {
							t.Errorf("reader saw key %d = %d,%v across growth", k, v, ok)
							return
						}
					}
				}(w)
			}
			// Writer drives growth by inserting fresh keys.
			for k := int64(seeded); k < seeded+2048; k++ {
				if err := e.AtomicallyAs(5, func(tx *stm.Tx) error {
					m.Put(tx, k, k+1000)
					return nil
				}); err != nil {
					t.Fatalf("grow put %d: %v", k, err)
				}
			}
			close(stop)
			wg.Wait()
			if got := m.Buckets(); got <= start {
				t.Fatalf("no growth under load: %d -> %d buckets", start, got)
			}
			for k := int64(0); k < seeded+2048; k++ {
				_ = e.Atomically(func(tx *stm.Tx) error {
					if v, ok := m.Get(tx, k); !ok || v != k+1000 {
						t.Errorf("key %d = %d,%v after concurrent growth", k, v, ok)
					}
					return nil
				})
			}
		})
	}
}
