//go:build !race

package tstructs

// raceEnabled: see race_test.go.
const raceEnabled = false
