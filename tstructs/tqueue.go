package tstructs

import (
	"pcltm/stm"
)

// qnode is one queued cell. The value is immutable node data (written
// before the node is published, read after it is observed through a
// TVar — the STM's atomic publish/load pair carries the happens-before);
// only the link is transactional.
type qnode[T any] struct {
	v    T
	next *stm.TVar[*qnode[T]]
}

// TQueue is an unbounded transactional FIFO queue — the retry-based
// blocking channel of the structure library. Put appends at the tail,
// Take pops the head and blocks with stm.Retry while the queue is
// empty, waking exactly when a producer's commit publishes a write.
// Both ends are single TVars, so producers conflict with producers and
// (on a short queue) with consumers: a queue is a deliberate
// contention point, the opposite trade-off from TMap — use it where
// ordering is the point, not as a work-spreading device.
//
// All operations take the caller's transaction and compose: a Take and
// the processing of the taken value can be one atomic block, giving
// exactly-once hand-off even when the processing aborts and retries.
type TQueue[T any] struct {
	head *stm.TVar[*qnode[T]]
	tail *stm.TVar[*qnode[T]]
	size *stm.TVar[int64]
}

// NewTQueue builds an empty queue.
func NewTQueue[T any]() *TQueue[T] {
	return &TQueue[T]{
		head: stm.NewTVar[*qnode[T]](nil),
		tail: stm.NewTVar[*qnode[T]](nil),
		size: stm.NewTVar[int64](0),
	}
}

// Put appends v inside tx.
func (q *TQueue[T]) Put(tx *stm.Tx, v T) {
	n := &qnode[T]{v: v, next: stm.NewTVar[*qnode[T]](nil)}
	t := stm.Get(tx, q.tail)
	if t == nil {
		stm.Set(tx, q.head, n)
	} else {
		stm.Set(tx, t.next, n)
	}
	stm.Set(tx, q.tail, n)
	stm.Update(tx, q.size, func(s int64) int64 { return s + 1 })
}

// Take pops the oldest value inside tx, blocking the transaction with
// stm.Retry while the queue is empty. Steady-state takes from a
// non-empty queue allocate nothing.
func (q *TQueue[T]) Take(tx *stm.Tx) T {
	h := stm.Get(tx, q.head)
	if h == nil {
		stm.Retry(tx)
	}
	q.unlink(tx, h)
	return h.v
}

// TryTake pops the oldest value inside tx without blocking; ok reports
// whether the queue was non-empty.
func (q *TQueue[T]) TryTake(tx *stm.Tx) (T, bool) {
	h := stm.Get(tx, q.head)
	if h == nil {
		var zero T
		return zero, false
	}
	q.unlink(tx, h)
	return h.v, true
}

// unlink advances the head past h (the current head), emptying the
// tail pointer when h was the last node.
func (q *TQueue[T]) unlink(tx *stm.Tx, h *qnode[T]) {
	next := stm.Get(tx, h.next)
	stm.Set(tx, q.head, next)
	if next == nil {
		stm.Set(tx, q.tail, nil)
	}
	stm.Update(tx, q.size, func(s int64) int64 { return s - 1 })
}

// Len returns the queued count inside tx.
func (q *TQueue[T]) Len(tx *stm.Tx) int {
	return int(stm.Get(tx, q.size))
}
