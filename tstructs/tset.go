package tstructs

import (
	"cmp"

	"pcltm/stm"
)

// snode is one cell of the sorted chain; the key is immutable node
// data, the link is transactional.
type snode[K cmp.Ordered] struct {
	key  K
	next *stm.TVar[*snode[K]]
}

// TSet is the ordered-set index of the structure library: a sorted
// singly-linked set over transactional links, grown from
// examples/orderedset into a composable, engine-free structure. Unlike
// TMap it supports ordered queries — minimum, in-order iteration, range
// scans — at the cost of O(position) walks; a transaction's read set is
// the prefix it walked, so conflicts concentrate where insertions
// actually interleave rather than across the whole structure.
//
// All operations take the caller's transaction and compose with other
// transactional work under whichever engine runs the atomic block.
type TSet[K cmp.Ordered] struct {
	head *stm.TVar[*snode[K]]
	size *stm.TVar[int64]
}

// NewTSet builds an empty ordered set.
func NewTSet[K cmp.Ordered]() *TSet[K] {
	return &TSet[K]{
		head: stm.NewTVar[*snode[K]](nil),
		size: stm.NewTVar[int64](0),
	}
}

// locate finds the insertion window for k inside tx: the TVar holding
// the link where k is or would be, and the node at that link (nil at
// the end of the chain or when the next key is greater).
func (s *TSet[K]) locate(tx *stm.Tx, k K) (*stm.TVar[*snode[K]], *snode[K]) {
	prev := s.head
	cur := stm.Get(tx, prev)
	for cur != nil && cur.key < k {
		prev = cur.next
		cur = stm.Get(tx, prev)
	}
	return prev, cur
}

// Insert adds k inside tx, reporting whether the set changed.
func (s *TSet[K]) Insert(tx *stm.Tx, k K) bool {
	prev, cur := s.locate(tx, k)
	if cur != nil && cur.key == k {
		return false
	}
	n := &snode[K]{key: k, next: stm.NewTVar[*snode[K]](nil)}
	stm.Set(tx, n.next, cur)
	stm.Set(tx, prev, n)
	stm.Update(tx, s.size, func(v int64) int64 { return v + 1 })
	return true
}

// Remove deletes k inside tx, reporting whether the set changed.
func (s *TSet[K]) Remove(tx *stm.Tx, k K) bool {
	prev, cur := s.locate(tx, k)
	if cur == nil || cur.key != k {
		return false
	}
	stm.Set(tx, prev, stm.Get(tx, cur.next))
	stm.Update(tx, s.size, func(v int64) int64 { return v - 1 })
	return true
}

// Contains tests membership inside tx; a miss leaves the transaction's
// write set untouched.
func (s *TSet[K]) Contains(tx *stm.Tx, k K) bool {
	_, cur := s.locate(tx, k)
	return cur != nil && cur.key == k
}

// Min returns the smallest key inside tx; ok is false when empty.
func (s *TSet[K]) Min(tx *stm.Tx) (K, bool) {
	cur := stm.Get(tx, s.head)
	if cur == nil {
		var zero K
		return zero, false
	}
	return cur.key, true
}

// Len returns the element count inside tx.
func (s *TSet[K]) Len(tx *stm.Tx) int {
	return int(stm.Get(tx, s.size))
}

// Ascend visits keys in [from, to) in order inside tx until fn returns
// false. The read set is the chain prefix up to the last visited node.
func (s *TSet[K]) Ascend(tx *stm.Tx, from, to K, fn func(K) bool) {
	_, cur := s.locate(tx, from)
	for cur != nil && cur.key < to {
		if !fn(cur.key) {
			return
		}
		cur = stm.Get(tx, cur.next)
	}
}

// Snapshot returns all keys in order inside tx.
func (s *TSet[K]) Snapshot(tx *stm.Tx) []K {
	var keys []K
	for cur := stm.Get(tx, s.head); cur != nil; cur = stm.Get(tx, cur.next) {
		keys = append(keys, cur.key)
	}
	return keys
}
