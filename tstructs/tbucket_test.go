package tstructs

import (
	"sync"
	"testing"

	"pcltm/stm"
)

// take runs one TryTake transaction at a fixed instant.
func take(t *testing.T, e *stm.Engine, b *TBucket, now, n int64) bool {
	t.Helper()
	var ok bool
	if err := e.Atomically(func(tx *stm.Tx) error {
		ok = b.TryTake(tx, now, n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ok
}

// TestTBucketDeterministic drives the bucket with a hand-rolled clock:
// burst drains the capacity, rejection at zero, refill accrues at the
// configured rate and clamps at capacity.
func TestTBucketDeterministic(t *testing.T) {
	e := stm.NewEngine(stm.EngineTL2)
	b := NewTBucket(10, 1000) // 10 tokens, 1000/s = 1 per ms
	now := int64(1_000_000_000)

	for i := 0; i < 10; i++ {
		if !take(t, e, b, now, 1) {
			t.Fatalf("take %d rejected with tokens left", i)
		}
	}
	if take(t, e, b, now, 1) {
		t.Fatal("take accepted on an empty bucket")
	}

	// 5ms refills 5 tokens.
	now += 5 * 1_000_000
	for i := 0; i < 5; i++ {
		if !take(t, e, b, now, 1) {
			t.Fatalf("refilled take %d rejected", i)
		}
	}
	if take(t, e, b, now, 1) {
		t.Fatal("take accepted beyond the refill")
	}

	// A long idle clamps at capacity, not beyond.
	now += 60 * 1_000_000_000
	if take(t, e, b, now, 11) {
		t.Fatal("burst beyond capacity accepted")
	}
	if !take(t, e, b, now, 10) {
		t.Fatal("full-capacity burst rejected after idle")
	}

	// Clock stepping backwards adds nothing.
	if take(t, e, b, now-1_000_000_000, 1) {
		t.Fatal("backwards clock minted tokens")
	}
}

// TestTBucketQuota pins the zero-rate bucket: a spend-down quota that
// never refills.
func TestTBucketQuota(t *testing.T) {
	e := stm.NewEngine(stm.EngineGlobalLock)
	b := NewTBucket(3, 0)
	now := int64(1)
	if !take(t, e, b, now, 3) {
		t.Fatal("quota rejected its capacity")
	}
	if take(t, e, b, now+1<<40, 1) {
		t.Fatal("zero-rate bucket refilled")
	}
	var left int64
	_ = e.Atomically(func(tx *stm.Tx) error {
		left = b.Tokens(tx, now)
		return nil
	})
	if left != 0 {
		t.Fatalf("tokens = %d, want 0", left)
	}
}

// TestTBucketConcurrent hammers one bucket from many goroutines on
// every engine: the admitted total must never exceed capacity plus what
// the elapsed time could have refilled (here: nothing — the clock is
// frozen), and the bucket must end exactly drained.
func TestTBucketConcurrent(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			const capacity = 64
			b := NewTBucket(capacity, 0) // frozen clock: admissions are bounded by capacity alone
			now := int64(1_000)
			var admitted int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := int64(0)
					for i := 0; i < 100; i++ {
						var ok bool
						_ = e.Atomically(func(tx *stm.Tx) error {
							ok = b.TryTake(tx, now, 1)
							return nil
						})
						if ok {
							local++
						}
					}
					mu.Lock()
					admitted += local
					mu.Unlock()
				}()
			}
			wg.Wait()
			if admitted != capacity {
				t.Fatalf("admitted %d, want exactly %d", admitted, capacity)
			}
		})
	}
}

// TestZeroAllocTBucketTryTake: the admission path — refill arithmetic,
// one Get, one Set of a two-word struct — allocates nothing in steady
// state; the guard can sit in front of every request without feeding
// the GC.
func TestZeroAllocTBucketTryTake(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := stm.NewEngine(kind)
			b := NewTBucket(1<<40, 1e9)
			now := int64(1_000_000_000)
			allocs := measureAllocs(t, e, func(tx *stm.Tx) error {
				now += 1000
				b.TryTake(tx, now, 1)
				return nil
			})
			if budget := allocBudget(kind); allocs > budget {
				t.Fatalf("TryTake allocates %.2f/op, budget %.2f", allocs, budget)
			}
		})
	}
}
