module pcltm

go 1.24
