module pcltm

go 1.23
