// Command tmbench measures the P/C/L tradeoff empirically.
//
// Real mode (-mode real, default) drives the production stm/ engines with
// goroutine workloads and prints throughput, aborts and retries across
// contention patterns and worker counts — the E1 experiment of
// EXPERIMENTS.md: disjoint workloads reward parallelism-friendly designs,
// contended workloads surface the consistency price. With -json FILE the
// same results are also written as machine-readable JSON (the BENCH_*.json
// files of the perf trajectory; "-" writes to stdout).
//
// Sim mode (-mode sim) runs the simulated protocol portfolio on static
// transaction sets over the deterministic machine and reports step
// counts, base-object contentions and strict-DAP violations — the
// machine-level view of the same tradeoff.
//
// Structure modes (-mode map, -mode store) are the E7 experiment: keyed
// get/increment traffic against the transactional map (tstructs.TMap on
// one engine) or the partitioned store (store.Store, one engine instance
// per partition), swept over key skew (uniform = disjoint-dominated,
// zipf = hot-key contention) and — for the store — partition counts, so
// one run records the partitions-vs-throughput curve.
//
// Wal mode (-mode wal) is the E10 experiment: the same store workload
// over a durable store (internal/wal commit log), swept across
// acknowledgement modes (-ack sync,group,async) — what the durability
// contract costs, and how much group commit buys back. -wal-dir runs
// the log on real files with real fsync; the default in-memory backend
// prices the protocol alone.
//
// Engines, patterns, skews and protocols are enumerated through
// internal/registry, so a newly registered engine appears in the sweep
// without touching this file.
//
// Usage:
//
//	tmbench [-mode real|sim|map|store|wal|certify] [-workers 1,2,4,8] [-ops 2000] [-vars 256]
//	        [-engine tl2,tl2s,twopl,glock,adaptive]
//	        [-pattern disjoint,uniform,zipf,phase,ratelimit]
//	        [-values int,string,struct,any] [-keys 1024] [-partitions 1,2,4]
//	        [-skew uniform,zipf] [-ack sync,group,async] [-wal-dir DIR]
//	        [-wal-window 200us] [-cross-frac 0,10,30] [-cross-path scoped,sweep]
//	        [-orec-shards N] [-json results.json] [-txns 6]
//
// -values selects the payload kind(s) each transaction carries (the
// value-representation dimension: int/string/struct ride the engines'
// raw-word path, any is the boxed fallback); the default sweeps only
// int, so trajectory comparisons against pre-value-kind baselines stay
// cell-compatible. -keys, -partitions and -skew shape the structure
// modes only.
//
// The adaptive engine's rows carry an extra per-regime breakdown (which
// delegate ran, how many switches) both in the table and in the JSON.
//
// Every JSON record is stamped with the producing machine's runner
// class ($BENCH_RUNNER_CLASS, or "local") and CPU shape, so benchdiff
// can refuse blocking verdicts across runner classes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"pcltm/internal/benchfmt"
	"pcltm/internal/certify"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/registry"
	"pcltm/internal/stms"
	"pcltm/internal/wal"
	"pcltm/internal/workload"
	"pcltm/stm"
)

func main() {
	mode := flag.String("mode", "real", "real (stm/ engines) or sim (machine protocols)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts (real mode)")
	ops := flag.Int("ops", 2000, "transactions per worker (real mode)")
	vars := flag.Int("vars", 256, "number of transactional variables (real mode)")
	enginesFlag := flag.String("engine", strings.Join(registry.EngineNames(), ","),
		"comma-separated engines to sweep (real mode)")
	patternsFlag := flag.String("pattern", strings.Join(registry.PatternNames(), ","),
		"contention patterns (real mode)")
	valuesFlag := flag.String("values", "int",
		"payload value kinds to sweep: int,string,struct,any (real mode)")
	jsonPath := flag.String("json", "", "also write real-mode results as JSON to this file (\"-\" = stdout)")
	keys := flag.Int("keys", 1024, "keyspace size (map/store modes)")
	partitionsFlag := flag.String("partitions", "1,2,4", "comma-separated partition counts (store mode)")
	skewFlag := flag.String("skew", strings.Join(registry.SkewNames(), ","),
		"key distributions to sweep: uniform,zipf (map/store modes)")
	acksFlag := flag.String("ack", "sync,group,async", "wal acknowledgement modes to sweep (wal mode)")
	walDir := flag.String("wal-dir", "", "run the commit log on files under this directory (wal mode; empty = in-memory backend)")
	walWindow := flag.Duration("wal-window", 0, "group-commit batch window: fsync at most every this often (wal mode; 0 = fsync as soon as the queue drains)")
	crossFracFlag := flag.String("cross-frac", "0", "comma-separated percentages of ops that are two-key cross-partition transfers (store/wal modes)")
	crossPathFlag := flag.String("cross-path", "scoped", "cross-commit paths to sweep: scoped (footprint locking) and/or sweep (whole-store) (store/wal modes)")
	orecShards := flag.Int("orec-shards", 0, "ownership-record table size for twopl-based engines (0 = default, rounded up to a power of two)")
	txns := flag.Int("txns", 6, "transactions per workload (sim mode)")
	seed := flag.Int64("seed", 1, "workload seed")
	sizesFlag := flag.String("sizes", "1000,10000,100000", "history sizes to certify (certify mode)")
	flag.Parse()

	stm.OrecShards = *orecShards

	switch *mode {
	case "real":
		realMode(parseInts(*workersFlag), *ops, *vars,
			parseEngines(*enginesFlag), parsePatterns(*patternsFlag),
			parseValueKinds(*valuesFlag), *seed, *jsonPath)
	case "map", "store":
		structMode(*mode, parseInts(*workersFlag), parseInts(*partitionsFlag), *ops, *keys,
			parseEngines(*enginesFlag), parseSkews(*skewFlag),
			parseFracs(*crossFracFlag), parseCrossPaths(*crossPathFlag), *seed, *jsonPath)
	case "wal":
		walMode(parseInts(*workersFlag), parseInts(*partitionsFlag), *ops, *keys,
			parseEngines(*enginesFlag), parseAcks(*acksFlag), *walDir, *walWindow,
			parseFracs(*crossFracFlag), parseCrossPaths(*crossPathFlag), *seed, *jsonPath)
	case "certify":
		certifyMode(parseInts(*sizesFlag), *vars, *seed, *jsonPath)
	case "sim":
		if *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "tmbench: -json does not apply to -mode sim")
			os.Exit(2)
		}
		simMode(*txns, *seed)
	default:
		fmt.Fprintf(os.Stderr, "tmbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "tmbench: bad worker count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func parseEngines(s string) []stm.EngineKind {
	var out []stm.EngineKind
	for _, part := range strings.Split(s, ",") {
		k, err := registry.EngineByName(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}

func parsePatterns(s string) []workload.Pattern {
	var out []workload.Pattern
	for _, part := range strings.Split(s, ",") {
		p, err := registry.PatternByName(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
			os.Exit(2)
		}
		out = append(out, p)
	}
	return out
}

func parseValueKinds(s string) []workload.ValueKind {
	var out []workload.ValueKind
	for _, part := range strings.Split(s, ",") {
		k, err := registry.ValueKindByName(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}

func realMode(workers []int, ops, vars int, engines []stm.EngineKind,
	patterns []workload.Pattern, valueKinds []workload.ValueKind,
	seed int64, jsonPath string) {
	var records []benchfmt.Record
	fmt.Println("E1 — production engines under real parallelism")
	fmt.Printf("%-8s %-9s %-7s %-8s %12s %10s %10s %10s %10s %10s\n",
		"engine", "pattern", "values", "workers", "tx/s", "commits", "aborts", "retries", "allocs/op", "B/op")
	for _, pat := range patterns {
		for _, vk := range valueKinds {
			for _, w := range workers {
				for _, kind := range engines {
					cfg := workload.Config{
						Vars: vars, Workers: w, OpsPerWorker: ops,
						Pattern: pat, Values: vk, Seed: seed,
					}
					res := workload.Run(kind, cfg)
					if res.Sum != cfg.ExpectedSum() {
						fmt.Fprintf(os.Stderr, "tmbench: %v/%v sum invariant broken: %d != %d\n",
							kind, pat, res.Sum, cfg.ExpectedSum())
						os.Exit(1)
					}
					fmt.Printf("%-8s %-9s %-7s %-8d %12.0f %10d %10d %10d %10.2f %10.1f\n",
						kind, pat, vk, w, res.Throughput, res.Commits, res.Aborts, res.Retries,
						res.AllocsPerOp, res.BytesPerOp)
					if res.Adaptive != nil {
						printRegimes(res.Adaptive)
					}
					rec := benchfmt.Record{
						Engine: kind.String(), Pattern: pat.String(), Values: vk.String(),
						Workers: w, OpsPerWkr: ops, Vars: vars, Seed: seed,
						ElapsedNS: res.Elapsed.Nanoseconds(), Throughput: res.Throughput,
						Commits: res.Commits, Aborts: res.Aborts, Retries: res.Retries,
						AllocsPerOp: res.AllocsPerOp, BytesPerOp: res.BytesPerOp,
						Adaptive: res.Adaptive,
					}
					benchfmt.StampRunner(&rec)
					records = append(records, rec)
				}
			}
		}
		fmt.Println()
	}
	if jsonPath != "" {
		writeJSON(jsonPath, records)
	}
}

// parseFracs parses comma-separated percentages; unlike parseInts, zero
// is a valid entry (the no-cross baseline cell).
func parseFracs(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 || n > 100 {
			fmt.Fprintf(os.Stderr, "tmbench: bad cross fraction %q (percent, 0..100)\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func parseCrossPaths(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		if p != "scoped" && p != "sweep" {
			fmt.Fprintf(os.Stderr, "tmbench: unknown cross path %q (scoped or sweep)\n", part)
			os.Exit(2)
		}
		out = append(out, p)
	}
	return out
}

func parseSkews(s string) []workload.Skew {
	var out []workload.Skew
	for _, part := range strings.Split(s, ",") {
		k, err := registry.SkewByName(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
			os.Exit(2)
		}
		out = append(out, k)
	}
	return out
}

// structMode is the E7 experiment: keyed get/increment traffic against
// the transactional map ("map": tstructs.TMap on one engine) or the
// partitioned store ("store": one engine instance per partition),
// sweeping engines × skews × workers, and — for the store — partition
// counts, so the partitions-vs-throughput curve of uniform (mostly
// disjoint) traffic is one sweep. With -cross-frac the store cells mix
// in two-key cross-partition transfers routed through the scoped
// footprint commit or the whole-store sweep (-cross-path) — the E11
// dimension.
func structMode(mode string, workers, partitions []int, ops, keys int,
	engines []stm.EngineKind, skews []workload.Skew,
	crossFracs []int, crossPaths []string, seed int64, jsonPath string) {
	var records []benchfmt.Record
	fmt.Printf("E7 — transactional structures under real parallelism (%s)\n", mode)
	fmt.Printf("%-8s %-8s %-6s %-10s %-8s %12s %10s %10s %10s %10s\n",
		"engine", "skew", "parts", "cross", "workers", "tx/s", "commits", "retries", "allocs/op", "B/op")
	if mode == "map" {
		partitions = []int{0}
		crossFracs = []int{0} // the cross dimension is a store experiment
	}
	for _, sk := range skews {
		for _, cf := range crossFracs {
			paths := crossPaths
			if cf == 0 {
				paths = []string{""} // no transfers: the path is moot
			}
			for _, cp := range paths {
				for _, parts := range partitions {
					for _, w := range workers {
						for _, kind := range engines {
							cfg := workload.StoreConfig{
								Keys: keys, Partitions: parts, Workers: w,
								OpsPerWorker: ops, Skew: sk, Seed: seed,
								CrossFrac: cf, CrossSweep: cp == "sweep",
							}
							var res workload.StoreResult
							if mode == "map" {
								res = workload.RunMap(kind, cfg)
							} else {
								res = workload.RunStore(kind, cfg)
							}
							if res.Sum != res.Writes {
								fmt.Fprintf(os.Stderr, "tmbench: %v/%v sum invariant broken: %d != %d writes\n",
									kind, sk, res.Sum, res.Writes)
								os.Exit(1)
							}
							partsLabel := res.Config.Partitions
							if mode == "map" {
								partsLabel = 0
							}
							crossLabel := "-"
							if cf > 0 {
								crossLabel = fmt.Sprintf("%d%%/%s", cf, cp)
							}
							fmt.Printf("%-8s %-8s %-6d %-10s %-8d %12.0f %10d %10d %10.2f %10.1f\n",
								kind, sk, partsLabel, crossLabel, w, res.Throughput, res.Commits,
								res.Retries, res.AllocsPerOp, res.BytesPerOp)
							rec := benchfmt.Record{
								Engine: kind.String(), Pattern: "keyed", Workers: w,
								OpsPerWkr: ops, Vars: keys, Seed: seed,
								ElapsedNS: res.Elapsed.Nanoseconds(), Throughput: res.Throughput,
								Commits: res.Commits, Aborts: res.Aborts, Retries: res.Retries,
								AllocsPerOp: res.AllocsPerOp, BytesPerOp: res.BytesPerOp,
								Structure: "tmap", Skew: sk.String(),
							}
							if mode == "store" {
								rec.Structure = "store"
								rec.Partitions = res.Config.Partitions
								if cf > 0 {
									rec.CrossFrac = cf
									rec.CrossPath = cp
								}
							}
							benchfmt.StampRunner(&rec)
							records = append(records, rec)
						}
					}
				}
			}
		}
		fmt.Println()
	}
	if jsonPath != "" {
		writeJSON(jsonPath, records)
	}
}

func parseAcks(s string) []wal.AckMode {
	var out []wal.AckMode
	for _, part := range strings.Split(s, ",") {
		m, ok := wal.AckByName(strings.TrimSpace(part))
		if !ok {
			fmt.Fprintf(os.Stderr, "tmbench: unknown ack mode %q (sync, group or async)\n", part)
			os.Exit(2)
		}
		out = append(out, m)
	}
	return out
}

// walMode is the E10 experiment: the E7 store workload over a durable
// store, sweeping acknowledgement modes so one run prices the
// durability contract — and what group commit buys back at each worker
// count. Cells carry the wal_ack/wal_backend stamps (and wal_window_us
// when -wal-window widens the batch window); benchdiff keys on them, so
// durability cells never compare against non-durable baselines.
// -cross-frac mixes in durable cross-partition transfers, which pay the
// decision-record protocol on top of the payload appends.
func walMode(workers, partitions []int, ops, keys int, engines []stm.EngineKind,
	acks []wal.AckMode, dir string, window time.Duration,
	crossFracs []int, crossPaths []string, seed int64, jsonPath string) {
	var records []benchfmt.Record
	backendName := "mem"
	if dir != "" {
		backendName = "file"
	}
	fmt.Printf("E10 — group-commit cost of durability (backend %s, window %s)\n", backendName, window)
	fmt.Printf("%-8s %-6s %-6s %-10s %-8s %12s %10s %10s %10s %12s\n",
		"engine", "ack", "parts", "cross", "workers", "tx/s", "commits", "appends", "fsyncs", "commits/sync")
	for _, ack := range acks {
		for _, cf := range crossFracs {
			paths := crossPaths
			if cf == 0 {
				paths = []string{""}
			}
			for _, cp := range paths {
				for _, parts := range partitions {
					for _, w := range workers {
						for _, kind := range engines {
							cfg := workload.DurableStoreConfig{
								StoreConfig: workload.StoreConfig{
									Keys: keys, Partitions: parts, Workers: w,
									OpsPerWorker: ops, Seed: seed,
									CrossFrac: cf, CrossSweep: cp == "sweep",
								},
								Ack:    ack,
								Window: window,
							}
							if dir != "" {
								cfg.Dir = fmt.Sprintf("%s/e10-%s-%s-p%d-w%d-x%d%s", dir, kind, ack, parts, w, cf, cp)
							}
							res, err := workload.RunDurableStore(kind, cfg)
							if err != nil {
								fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
								os.Exit(1)
							}
							if res.Sum != res.Writes {
								fmt.Fprintf(os.Stderr, "tmbench: %v/%v sum invariant broken: %d != %d writes\n",
									kind, ack, res.Sum, res.Writes)
								os.Exit(1)
							}
							var appends, syncs uint64
							perSync := 0.0
							if res.Wal != nil {
								appends, syncs = res.Wal.Appends, res.Wal.Syncs
								if syncs > 0 {
									perSync = float64(appends) / float64(syncs)
								}
							}
							crossLabel := "-"
							if cf > 0 {
								crossLabel = fmt.Sprintf("%d%%/%s", cf, cp)
							}
							fmt.Printf("%-8s %-6s %-6d %-10s %-8d %12.0f %10d %10d %10d %12.2f\n",
								kind, ack, res.Config.Partitions, crossLabel, w, res.Throughput,
								res.Commits, appends, syncs, perSync)
							rec := benchfmt.Record{
								Engine: kind.String(), Pattern: "keyed", Workers: w,
								OpsPerWkr: ops, Vars: keys, Seed: seed,
								ElapsedNS: res.Elapsed.Nanoseconds(), Throughput: res.Throughput,
								Commits: res.Commits, Aborts: res.Aborts, Retries: res.Retries,
								AllocsPerOp: res.AllocsPerOp, BytesPerOp: res.BytesPerOp,
								Structure: "store", Partitions: res.Config.Partitions,
								Skew:   res.Config.Skew.String(),
								WalAck: res.WalAck, WalBackend: res.WalBackend,
								WalWindowUS: window.Microseconds(),
							}
							if cf > 0 {
								rec.CrossFrac = cf
								rec.CrossPath = cp
							}
							benchfmt.StampRunner(&rec)
							records = append(records, rec)
						}
					}
				}
			}
		}
		fmt.Println()
	}
	if jsonPath != "" {
		writeJSON(jsonPath, records)
	}
}

// certifyMode is the E9 experiment: the polynomial certifier's cost
// against history size, on the honest path (certify.Synth generates
// deterministic overlapping-interval read-modify-write histories that
// certify by construction; a non-Certified verdict fails the run). The
// history size rides in the pattern label, so every (condition, size)
// pair is its own benchdiff cell.
func certifyMode(sizes []int, items int, seed int64, jsonPath string) {
	var records []benchfmt.Record
	fmt.Println("E9 — polynomial certification cost vs history size")
	fmt.Printf("%-24s %-10s %14s %14s %s\n", "condition", "txns", "elapsed", "txns/s", "method")
	for _, n := range sizes {
		h := certify.Synth(n, items, 8, seed)
		for _, cond := range certify.Conditions() {
			rep := certify.Check(h, cond)
			if rep.Verdict != certify.Certified {
				fmt.Fprintf(os.Stderr, "tmbench: synthetic E9 history not certified: %s\n", rep)
				os.Exit(1)
			}
			tput := float64(n) / rep.Elapsed.Seconds()
			fmt.Printf("%-24s %-10d %14s %14.0f %s\n",
				cond, n, rep.Elapsed.Round(time.Microsecond), tput, rep.Method)
			rec := benchfmt.Record{
				Engine: cond, Pattern: fmt.Sprintf("synthetic-%d", n),
				Vars: items, Seed: seed, Structure: "certify",
				ElapsedNS: rep.Elapsed.Nanoseconds(), Throughput: tput,
				Commits: uint64(rep.Com),
			}
			benchfmt.StampRunner(&rec)
			records = append(records, rec)
		}
		fmt.Println()
	}
	if jsonPath != "" {
		writeJSON(jsonPath, records)
	}
}

// printRegimes renders the adaptive engine's per-regime breakdown under
// its result row: which delegate finished the run, how many switches it
// took, and each delegate's share of the work.
func printRegimes(as *stm.AdaptiveStats) {
	fmt.Printf("%-8s   regimes: current=%s switches=%d\n", "", as.Current, as.Switches)
	for _, r := range as.Regimes {
		if r.Commits == 0 && r.Conflicts == 0 && r.Windows == 0 {
			continue
		}
		fmt.Printf("%-8s     %-6s %10d commits %10d conflicts %10d lock-fails %6d windows\n",
			"", r.Engine, r.Commits, r.Conflicts, r.LockFails, r.Windows)
	}
}

func writeJSON(path string, records []benchfmt.Record) {
	if err := benchfmt.WriteJSON(path, records); err != nil {
		fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
		os.Exit(1)
	}
}

// simWorkloads names the static transaction sets of sim mode.
func simWorkloads(txns int, seed int64) map[string][]core.TxSpec {
	return map[string][]core.TxSpec{
		"disjoint": workload.DisjointSpecs(txns, 2),
		"chain":    workload.ChainSpecs(txns),
		"star":     workload.StarSpecs(txns),
		"random":   workload.RandomSpecs(txns, txns*2, 4, seed),
	}
}

func simMode(txns int, seed int64) {
	fmt.Println("machine-level accounting — simulated protocols on static workloads")
	fmt.Printf("%-10s %-9s %8s %10s %12s %12s %9s\n",
		"protocol", "workload", "steps", "commits", "contentions", "strict-DAP", "blocked")
	for _, name := range []string{"disjoint", "chain", "star", "random"} {
		specs := simWorkloads(txns, seed)[name]
		for _, proto := range registry.Protocols() {
			b := &stms.Bundle{Protocol: proto, Specs: specs}
			exec, blocked := fairRun(b, len(specs), seed)
			commits := 0
			for _, s := range specs {
				if exec.StatusOf(s.ID) == core.TxCommitted {
					commits++
				}
			}
			fmt.Printf("%-10s %-9s %8d %10d %12d %12d %9v\n",
				proto.Name(), name, len(exec.Steps), commits,
				len(dap.Contentions(exec)), len(dap.CheckStrict(exec)), blocked)
		}
		fmt.Println()
	}
}

// fairRun interleaves all processes with a seeded random fair scheduler.
func fairRun(b *stms.Bundle, nprocs int, seed int64) (*core.Execution, bool) {
	m := b.Build()
	defer m.Close()
	r := rand.New(rand.NewSource(seed))
	const budget = 1 << 18
	for steps := 0; steps < budget; steps++ {
		var live []core.ProcID
		for p := 0; p < nprocs; p++ {
			if !m.Done(core.ProcID(p)) {
				live = append(live, core.ProcID(p))
			}
		}
		if len(live) == 0 {
			return m.Execution(), false
		}
		if _, err := m.Step(live[r.Intn(len(live))]); err != nil {
			break
		}
	}
	return m.Execution(), true
}
