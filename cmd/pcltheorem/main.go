// Command pcltheorem runs the mechanized Section-4 construction against
// the TM protocol portfolio and regenerates the paper's figures: the
// critical-step searches (Figures 1–2), the assembled executions β and β′
// (Figures 3–4), the read-value tables (Figures 5–6), and the Theorem 4.1
// verdict matrix showing that every protocol fails exactly one of
// Parallelism, Consistency, Liveness.
//
// Usage:
//
//	pcltheorem [-protocol name] [-figures] [-log]
//
// Without flags it prints the verdict matrix for the whole portfolio.
package main

import (
	"flag"
	"fmt"
	"os"

	"pcltm/internal/pcl"
	"pcltm/internal/stms"
	"pcltm/internal/stms/portfolio"
)

func main() {
	protoName := flag.String("protocol", "", "run a single protocol (default: whole portfolio)")
	figures := flag.Bool("figures", false, "print the full per-protocol figure reports")
	showLog := flag.Bool("log", false, "print the adversary's phase log")
	flag.Parse()

	var protos []stms.Protocol
	if *protoName != "" {
		p, err := portfolio.ByName(*protoName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcltheorem: %v (known: %v)\n", err, portfolio.Names())
			os.Exit(2)
		}
		protos = []stms.Protocol{p}
	} else {
		protos = portfolio.All()
	}

	fmt.Println("The PCL theorem (Bushkov, Dziuma, Fatourou, Guerraoui, SPAA 2014):")
	fmt.Println("no TM can be strictly disjoint-access-parallel (P), weakly adaptively")
	fmt.Println("consistent (C), and obstruction-free (L). Running the Section-4")
	fmt.Println("adversary against each protocol:")
	fmt.Println()

	var outcomes []*pcl.Outcome
	for _, p := range protos {
		fmt.Printf("· %-8s %s\n", p.Name(), p.Description())
		o := pcl.NewAdversary(p).Run()
		outcomes = append(outcomes, o)
	}
	fmt.Println()
	fmt.Print(pcl.RenderVerdictMatrix(outcomes))
	fmt.Println()

	for _, o := range outcomes {
		if *figures {
			fmt.Println(o.Report())
		} else if o.Verdict != nil {
			fmt.Println(o.Verdict)
		}
		if *showLog {
			for _, line := range o.Log {
				fmt.Printf("    log: %s\n", line)
			}
		}
	}
}
