// Command tmserve boots the network front end: the partitioned
// transactional store behind the server package's HTTP surface.
//
//	tmserve [-addr :7070] [-partitions N] [-engine tl2|tl2s|twopl|glock|adaptive]
//	        [-buckets N] [-batch-max 64] [-rate-limit 0] [-rate-burst 0] [-record]
//	        [-wal DIR] [-wal-ack group|sync|async] [-wal-window 0] [-history-cap N]
//
// Endpoints:
//
//	POST /tx       {"cmds":[{"op":"incr","key":7},...]} — batched commands;
//	               a batch whose keys span partitions commits atomically
//	               through the store's scoped cross-partition path
//	GET  /kv/{key}                                      — single-key query
//	GET  /healthz                                       — liveness
//	GET  /stats                                         — engine + applier counters
//	GET  /history  (with -record)                       — recorded execution as trace JSON
//
// -rate-limit caps admitted commands per second through the
// transactional token bucket (0 = unlimited); -batch-max caps how many
// queued command groups one applier transaction absorbs. Drive it with
// cmd/tmload for open-loop latency numbers.
//
// -record attaches one shared recorder to every partition engine;
// GET /history then serves everything recorded since boot as a trace
// file for `tmcheck -certify` — a load test becomes a consistency
// certificate:
//
//	tmserve -record &  tmload -duration 5s
//	curl -s localhost:7070/history > hist.json
//	tmcheck -certify hist.json
//
// -wal DIR makes the store durable: boot recovers whatever the commit
// log in DIR certifies (after a crash, the per-partition acknowledged
// prefixes; after a clean shutdown, everything), and every commit is
// appended and acknowledged per -wal-ack before the client sees 200 —
// "sync" fsyncs per commit, "group" (default) batches concurrent
// commits into one fsync, "async" acknowledges before the fsync and is
// allowed to lose the unflushed tail. -wal-window widens group commit:
// the log writer waits at most that long (e.g. 200us) to absorb more
// concurrent commits into one fsync, trading a bounded latency floor
// for fewer fsyncs. SIGTERM/SIGINT shut down
// gracefully: the tail segment is flushed and sealed, so the next boot
// reports a clean recovery. `tmcheck -recover DIR` judges a log
// offline.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pcltm/internal/registry"
	"pcltm/internal/wal"
	"pcltm/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	partitions := flag.Int("partitions", 0, "store partitions (0 = GOMAXPROCS, or adopted from -wal)")
	engine := flag.String("engine", "tl2", "engine kind every partition runs")
	buckets := flag.Int("buckets", 0, "per-partition TMap buckets (0 = default)")
	batchMax := flag.Int("batch-max", 64, "max command groups per applier transaction")
	rateLimit := flag.Float64("rate-limit", 0, "admitted commands per second (0 = unlimited)")
	rateBurst := flag.Int64("rate-burst", 0, "admission burst capacity (0 = one second of rate)")
	record := flag.Bool("record", false, "record the execution; GET /history serves it as trace JSON")
	historyCap := flag.Int("history-cap", 0, "max recorded attempts retained for /history (0 = default)")
	walDir := flag.String("wal", "", "durable commit log directory (empty = not durable)")
	walAck := flag.String("wal-ack", "group", "WAL acknowledgement mode: group, sync or async")
	walWindow := flag.Duration("wal-window", 0, "group-commit batch window: fsync at most every this often (0 = fsync as soon as the queue drains)")
	flag.Parse()

	kind, err := registry.EngineByName(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(2)
	}
	cfg := server.Config{
		Partitions: *partitions, Engine: kind, Buckets: *buckets,
		BatchMax: *batchMax, RateLimit: *rateLimit, RateBurst: *rateBurst,
		Record: *record, HistoryCap: *historyCap,
	}
	if *walDir != "" {
		ack, ok := wal.AckByName(*walAck)
		if !ok {
			fmt.Fprintf(os.Stderr, "tmserve: unknown -wal-ack %q (group, sync or async)\n", *walAck)
			os.Exit(2)
		}
		backend, err := wal.NewFileBackend(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
			os.Exit(1)
		}
		cfg.WAL = backend
		cfg.WALAck = ack
		cfg.WALWindow = *walWindow
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
	if rec := s.Recovery(); rec != nil {
		if rec.Segments == 0 {
			fmt.Printf("tmserve: fresh log in %s, ack %s\n", *walDir, *walAck)
		} else {
			var replayed uint64
			for _, h := range rec.Horizon {
				replayed += h
			}
			fmt.Printf("tmserve: recovered %s from %s: %d segments, %d commits replayed, %d dropped past gaps, %d torn tails, ack %s\n",
				map[bool]string{true: "clean", false: "crashed"}[rec.Clean],
				*walDir, rec.Segments, replayed, rec.DroppedRecords(), len(rec.Torn), *walAck)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// sealed closes only after s.Close() returns: main must not exit
	// before the WAL tail is flushed and sealed, or a graceful shutdown
	// would race its own durability.
	sealed := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "tmserve: shutting down")
		_ = httpSrv.Close()
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tmserve: sealing wal: %v\n", err)
		}
		close(sealed)
	}()

	st := s.StatsSnapshot()
	fmt.Printf("tmserve: %s, %d partitions, batch-max %d, listening on %s\n",
		st.Engine, st.Partitions, *batchMax, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
	<-sealed
}
