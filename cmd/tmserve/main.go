// Command tmserve boots the network front end: the partitioned
// transactional store behind the server package's HTTP surface.
//
//	tmserve [-addr :7070] [-partitions N] [-engine tl2|tl2s|twopl|glock|adaptive]
//	        [-buckets N] [-batch-max 64] [-rate-limit 0] [-rate-burst 0] [-record]
//
// Endpoints:
//
//	POST /tx       {"cmds":[{"op":"incr","key":7},...]} — batched commands
//	GET  /kv/{key}                                      — single-key query
//	GET  /healthz                                       — liveness
//	GET  /stats                                         — engine + applier counters
//	GET  /history  (with -record)                       — recorded execution as trace JSON
//
// -rate-limit caps admitted commands per second through the
// transactional token bucket (0 = unlimited); -batch-max caps how many
// queued command groups one applier transaction absorbs. Drive it with
// cmd/tmload for open-loop latency numbers.
//
// -record attaches one shared recorder to every partition engine;
// GET /history then serves everything recorded since boot as a trace
// file for `tmcheck -certify` — a load test becomes a consistency
// certificate:
//
//	tmserve -record &  tmload -duration 5s
//	curl -s localhost:7070/history > hist.json
//	tmcheck -certify hist.json
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pcltm/internal/registry"
	"pcltm/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	partitions := flag.Int("partitions", 0, "store partitions (0 = GOMAXPROCS)")
	engine := flag.String("engine", "tl2", "engine kind every partition runs")
	buckets := flag.Int("buckets", 0, "per-partition TMap buckets (0 = default)")
	batchMax := flag.Int("batch-max", 64, "max command groups per applier transaction")
	rateLimit := flag.Float64("rate-limit", 0, "admitted commands per second (0 = unlimited)")
	rateBurst := flag.Int64("rate-burst", 0, "admission burst capacity (0 = one second of rate)")
	record := flag.Bool("record", false, "record the execution; GET /history serves it as trace JSON")
	flag.Parse()

	kind, err := registry.EngineByName(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(2)
	}
	s := server.New(server.Config{
		Partitions: *partitions, Engine: kind, Buckets: *buckets,
		BatchMax: *batchMax, RateLimit: *rateLimit, RateBurst: *rateBurst,
		Record: *record,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "tmserve: shutting down")
		_ = httpSrv.Close()
		s.Close()
	}()

	st := s.StatsSnapshot()
	fmt.Printf("tmserve: %s, %d partitions, batch-max %d, listening on %s\n",
		st.Engine, st.Partitions, *batchMax, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
}
