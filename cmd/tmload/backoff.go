package main

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"syscall"
	"time"
)

// Retry policy for transient connection errors: capped exponential
// backoff with jitter. During a crash-recovery load test the server
// disappears for a restart window; without retries every arrival in
// that window reports a transport error and the run reads as a server
// failure. The budget is per arrival (-retry-for), so the open-loop
// latency of a retried request honestly includes the outage — the
// coordinated-omission discipline extends to downtime.
const (
	retryBase = 20 * time.Millisecond
	retryCap  = 1 * time.Second
)

// statusError is a non-2xx response — a server answer, never retried
// and never counted as transport noise.
type statusError struct {
	code int
}

func (e statusError) Error() string { return fmt.Sprintf("status %d", e.code) }

// transientErr reports whether err is transport noise worth retrying:
// the connection-level failures a restarting server produces (dial
// refused, reset, a connection dying mid-response). Server answers
// (statusError) and everything else are final.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	var se statusError
	if errors.As(err, &se) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// backoff yields the retry delay sequence: exponential from base,
// capped, each delay jittered uniformly over [d/2, d] so a fleet of
// workers retrying into a restart does not thunder in lockstep. The
// jitter stream is seeded per arrival (splitmix64 of the arrival
// number), keeping the measured path free of shared RNG state.
type backoff struct {
	base, cap time.Duration
	attempt   uint
	rng       uint64
}

func (b *backoff) next() time.Duration {
	d := b.cap
	if b.attempt < 32 {
		if e := b.base << b.attempt; e < b.cap {
			d = e
		}
		b.attempt++
	}
	b.rng = splitmix64(b.rng)
	half := d / 2
	return half + time.Duration(b.rng%uint64(half+1))
}

// retrier wraps one arrival's send with the retry policy. Counters are
// shared across a rate point: retries counts every transient error that
// was retried, giveups every arrival whose budget ran out mid-outage.
type retrier struct {
	budget           time.Duration
	sleep            func(time.Duration) // time.Sleep; swappable in tests
	retries, giveups *atomic.Uint64
}

// do runs send, retrying transient errors until the budget is spent.
// The returned error is send's final answer: nil, a non-transient
// failure, or the last transient error after giving up.
func (r *retrier) do(send func() error, seed uint64) error {
	bo := backoff{base: retryBase, cap: retryCap, rng: seed}
	var waited time.Duration
	for {
		err := send()
		if !transientErr(err) {
			return err
		}
		if waited >= r.budget {
			r.giveups.Add(1)
			return err
		}
		d := bo.next()
		if waited+d > r.budget {
			d = r.budget - waited
		}
		waited += d
		r.retries.Add(1)
		r.sleep(d)
	}
}
