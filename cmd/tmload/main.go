// Command tmload is the open-loop load generator for tmserve: it offers
// requests at a fixed arrival rate regardless of how fast the server
// answers, and measures each response's latency from its *scheduled*
// arrival instant — the coordinated-omission-safe discipline of
// internal/hist. A slow server therefore inflates the tail instead of
// silently throttling the measurement.
//
//	tmload -url http://127.0.0.1:7070 [-rate 200,500,1000] [-duration 5s]
//	       [-conns 4] [-keys 1024] [-read-frac 0.5] [-batch 4] [-cross-frac 0]
//	       [-retry-for 0] [-json BENCH_serve.json] [-hist latency.json] [-strict]
//
// Each arrival is one HTTP request: a GET /kv/{key} query with
// probability -read-frac, else a POST /tx carrying -batch incr
// commands. A write normally aims all its commands at one key (one
// partition — the applier fast path); with probability -cross-frac (a
// percentage) it spreads them over -batch distinct random keys instead,
// an atomic multi-key group that usually spans partitions and so
// commits through the server's scoped cross-partition path. -rate takes
// a comma-separated sweep; each point runs for -duration and emits one
// benchfmt record (Pattern "openloop", Structure "served", stamped with
// cross_frac when set) with p50/p99/p999 from the latency histogram and
// the runner-class stamp. -hist additionally writes the raw histograms
// (one per rate point) so CI can archive full distributions, not just
// three quantiles. -strict exits nonzero if any response was non-2xx —
// the serve-smoke gate.
//
// -retry-for gives each arrival a retry budget for transient connection
// errors (dial refused, reset, a connection dying mid-response): capped
// exponential backoff with per-arrival jitter, so a crash-recovery load
// test rides through the server's restart window instead of reporting
// the outage as failures. Transport errors are counted separately from
// non-2xx — the transp column and the transport_errs benchfmt field —
// and do not trip -strict; a retried arrival's latency still runs from
// its scheduled instant, so downtime shows up in the tail, honestly.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pcltm/internal/benchfmt"
	"pcltm/internal/hist"
	"pcltm/server"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:7070", "tmserve base URL")
	rates := flag.String("rate", "200", "comma-separated offered request rates (req/s)")
	duration := flag.Duration("duration", 5*time.Second, "run length per rate point")
	conns := flag.Int("conns", 4, "concurrent responder workers (and idle conns kept to the host)")
	keys := flag.Int("keys", 1024, "keyspace size; preloaded before measuring")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of arrivals that are GET /kv queries")
	batch := flag.Int("batch", 4, "incr commands per POST /tx write request")
	crossFrac := flag.Int("cross-frac", 0, "percent of write requests that are atomic multi-key groups over distinct random keys (usually cross-partition)")
	jsonPath := flag.String("json", "", "write benchfmt records to this file (\"-\" = stdout)")
	histPath := flag.String("hist", "", "write per-rate latency histograms to this file")
	strict := flag.Bool("strict", false, "exit nonzero if any response was non-2xx")
	retryFor := flag.Duration("retry-for", 0, "per-arrival retry budget for transient connection errors (0 = no retries)")
	flag.Parse()

	base := strings.TrimRight(*url, "/")
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: *conns},
		Timeout:   30 * time.Second,
	}

	engine, partitions, err := serverInfo(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmload: cannot reach %s: %v\n", base, err)
		os.Exit(1)
	}
	if err := preload(client, base, *keys); err != nil {
		fmt.Fprintf(os.Stderr, "tmload: preload: %v\n", err)
		os.Exit(1)
	}

	var records []benchfmt.Record
	var hists []ratePoint
	var anyNon2xx uint64
	fmt.Printf("tmload — open-loop against %s (%s, %d partitions)\n", base, engine, partitions)
	fmt.Printf("%-10s %10s %10s %10s %8s %10s %10s %10s\n",
		"rate", "done", "non2xx", "transp", "ach/s", "p50", "p99", "p999")
	for _, rate := range parseRates(*rates) {
		res := runPoint(client, base, rate, *duration, *conns, *keys, *readFrac, *batch, *crossFrac, *retryFor)
		anyNon2xx += res.Non2xx
		achieved := float64(res.Done) / res.Elapsed.Seconds()
		p50, p99, p999 := res.Hist.Quantile(0.50), res.Hist.Quantile(0.99), res.Hist.Quantile(0.999)
		fmt.Printf("%-10.0f %10d %10d %10d %8.0f %10s %10s %10s\n",
			rate, res.Done, res.Non2xx, res.Transport, achieved,
			time.Duration(p50), time.Duration(p99), time.Duration(p999))

		rec := benchfmt.Record{
			Engine: engine, Pattern: "openloop", Workers: *conns,
			Vars: *keys, Structure: "served", Partitions: partitions,
			ElapsedNS:  res.Elapsed.Nanoseconds(),
			Throughput: achieved,
			Commits:    res.Done - res.Errors,
			RateRPS:    rate,
			P50NS:      p50, P99NS: p99, P999NS: p999,
			Non2xx:        res.Non2xx,
			TransportErrs: res.Transport,
			CrossFrac:     *crossFrac,
		}
		benchfmt.StampRunner(&rec)
		records = append(records, rec)
		hists = append(hists, ratePoint{
			RateRPS: rate, Scheduled: res.Scheduled, Done: res.Done,
			Errors: res.Errors, Non2xx: res.Non2xx, TransportErrs: res.Transport,
			Hist: res.Hist,
		})
	}

	if *jsonPath != "" {
		if err := benchfmt.WriteJSON(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "tmload: %v\n", err)
			os.Exit(1)
		}
	}
	if *histPath != "" {
		data, err := json.MarshalIndent(hists, "", "  ")
		if err == nil {
			err = os.WriteFile(*histPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmload: %v\n", err)
			os.Exit(1)
		}
	}
	if *strict && anyNon2xx > 0 {
		fmt.Fprintf(os.Stderr, "tmload: %d non-2xx responses under -strict\n", anyNon2xx)
		os.Exit(1)
	}
}

// ratePoint is one entry of the -hist artifact: the full latency
// distribution at one offered rate. Errors is the total failed
// arrivals; Non2xx and TransportErrs break it down by blame (server
// answer vs. connection noise; TransportErrs also counts retried
// errors that eventually succeeded).
type ratePoint struct {
	RateRPS       float64 `json:"rate_rps"`
	Scheduled     uint64  `json:"scheduled"`
	Done          uint64  `json:"done"`
	Errors        uint64  `json:"errors"`
	Non2xx        uint64  `json:"non2xx"`
	TransportErrs uint64  `json:"transport_errs"`
	Hist          *hist.H `json:"hist"`
}

func parseRates(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			fmt.Fprintf(os.Stderr, "tmload: bad rate %q\n", part)
			os.Exit(2)
		}
		out = append(out, r)
	}
	return out
}

// serverInfo labels the records with what is actually serving: engine
// kind and partition count from GET /stats.
func serverInfo(client *http.Client, base string) (string, int, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("/stats: status %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", 0, err
	}
	return st.Engine, st.Partitions, nil
}

// preload puts every key once so measured GETs hit existing keys, in
// chunks of 128 commands per request.
func preload(client *http.Client, base string, keys int) error {
	const chunk = 128
	for lo := 0; lo < keys; lo += chunk {
		hi := lo + chunk
		if hi > keys {
			hi = keys
		}
		cmds := make([]server.Command, 0, hi-lo)
		for k := lo; k < hi; k++ {
			cmds = append(cmds, server.Command{Op: "put", Key: int64(k), Value: int64(k)})
		}
		if err := postTx(client, base, cmds); err != nil {
			return err
		}
	}
	return nil
}

func postTx(client *http.Client, base string, cmds []server.Command) error {
	body, err := json.Marshal(server.TxRequest{Cmds: cmds})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return statusError{code: resp.StatusCode}
	}
	return nil
}

// pointResult is one rate point's outcome: the open-loop measurement
// plus the error breakdown. Non2xx counts server answers outside 2xx;
// Transport counts transient connection errors (retried or given up).
type pointResult struct {
	hist.OpenLoopResult
	Non2xx    uint64
	Transport uint64
}

// runPoint drives one rate point through hist.OpenLoop. The Send
// closure is called from cfg.Workers goroutines concurrently, so key
// picking uses an atomic sequence hashed through splitmix64 — no shared
// rand.Rand lock on the measured path; the same hash seeds each
// arrival's retry jitter.
func runPoint(client *http.Client, base string, rate float64, duration time.Duration,
	conns, keys int, readFrac float64, batch, crossFrac int, retryFor time.Duration) pointResult {
	var seq atomic.Uint64
	var non2xx, retries, giveups atomic.Uint64
	rt := &retrier{budget: retryFor, sleep: time.Sleep, retries: &retries, giveups: &giveups}
	readCut := uint64(readFrac * (1 << 32))
	res := hist.OpenLoop(hist.OpenLoopConfig{
		Rate:     rate,
		Duration: duration,
		Workers:  conns,
		Send: func() error {
			h := splitmix64(seq.Add(1))
			send := func() error {
				if h>>32 < readCut {
					return getKV(client, base, int64(h%uint64(keys)))
				}
				cmds := make([]server.Command, batch)
				if int(splitmix64(h^0x5ca1ab1e)%100) < crossFrac {
					// Atomic multi-key group: distinct random keys, almost
					// always spanning partitions → the scoped cross path.
					for i := range cmds {
						cmds[i] = server.Command{Op: "incr", Key: int64(splitmix64(h+uint64(i)) % uint64(keys))}
					}
				} else {
					// Single-key batch: one partition, the applier fast path.
					for i := range cmds {
						cmds[i] = server.Command{Op: "incr", Key: int64(h % uint64(keys))}
					}
				}
				return postTx(client, base, cmds)
			}
			err := rt.do(send, h)
			var se statusError
			if errors.As(err, &se) {
				non2xx.Add(1)
			}
			return err
		},
	})
	return pointResult{
		OpenLoopResult: res,
		Non2xx:         non2xx.Load(),
		Transport:      retries.Load() + giveups.Load(),
	}
}

func getKV(client *http.Client, base string, key int64) error {
	resp, err := client.Get(fmt.Sprintf("%s/kv/%d", base, key))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return statusError{code: resp.StatusCode}
	}
	return nil
}

// splitmix64 is the standard 64-bit finalizer; it turns the arrival
// sequence number into a well-mixed key without shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
