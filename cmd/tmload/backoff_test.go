package main

import (
	"errors"
	"fmt"
	"net"
	"net/url"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestBackoffShape pins the delay sequence: exponential from base,
// jittered within [d/2, d], never above cap, and deterministic for a
// given seed.
func TestBackoffShape(t *testing.T) {
	bo := backoff{base: retryBase, cap: retryCap, rng: 7}
	want := retryBase
	var prevSeq []time.Duration
	for i := 0; i < 12; i++ {
		d := bo.next()
		if d < want/2 || d > want {
			t.Fatalf("delay %d = %v, want within [%v, %v]", i, d, want/2, want)
		}
		prevSeq = append(prevSeq, d)
		if want < retryCap {
			want *= 2
			if want > retryCap {
				want = retryCap
			}
		}
	}
	bo2 := backoff{base: retryBase, cap: retryCap, rng: 7}
	for i, d := range prevSeq {
		if d2 := bo2.next(); d2 != d {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, d, d2)
		}
	}
	bo3 := backoff{base: retryBase, cap: retryCap, rng: 8}
	same := true
	for _, d := range prevSeq {
		if bo3.next() != d {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestTransientErr pins the classification: connection-level failures
// retry, server answers and everything else are final.
func TestTransientErr(t *testing.T) {
	refused := &url.Error{Op: "Post", URL: "http://x/tx",
		Err: &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}}
	reset := &net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{refused, true},
		{reset, true},
		{syscall.EPIPE, true},
		{statusError{code: 500}, false},
		{fmt.Errorf("wrapped: %w", statusError{code: 503}), false},
		{errors.New("bad json"), false},
	} {
		if got := transientErr(tc.err); got != tc.want {
			t.Errorf("transientErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestRetrierRidesThroughOutage pins the satellite's point: a send that
// fails with connection errors for a while (a server restart) and then
// answers must come back nil, with the transient errors counted as
// retries, not surfaced.
func TestRetrierRidesThroughOutage(t *testing.T) {
	var retries, giveups atomic.Uint64
	var slept time.Duration
	rt := &retrier{
		budget:  time.Minute,
		sleep:   func(d time.Duration) { slept += d },
		retries: &retries, giveups: &giveups,
	}
	fails := 3
	err := rt.do(func() error {
		if fails > 0 {
			fails--
			return &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
		}
		return nil
	}, 42)
	if err != nil {
		t.Fatalf("send after outage = %v, want nil", err)
	}
	if retries.Load() != 3 || giveups.Load() != 0 {
		t.Fatalf("retries=%d giveups=%d, want 3/0", retries.Load(), giveups.Load())
	}
	if slept <= 0 {
		t.Fatal("no backoff slept")
	}
}

// TestRetrierGivesUpOnBudget pins the bound: a dead server exhausts the
// per-arrival budget and the last transport error comes back, counted
// as a giveup. Total sleep never exceeds the budget.
func TestRetrierGivesUpOnBudget(t *testing.T) {
	var retries, giveups atomic.Uint64
	var slept time.Duration
	rt := &retrier{
		budget:  50 * time.Millisecond,
		sleep:   func(d time.Duration) { slept += d },
		retries: &retries, giveups: &giveups,
	}
	dead := &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	err := rt.do(func() error { return dead }, 99)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("exhausted budget = %v, want the transport error", err)
	}
	if giveups.Load() != 1 {
		t.Fatalf("giveups = %d, want 1", giveups.Load())
	}
	if retries.Load() == 0 {
		t.Fatal("no retries before giving up")
	}
	if slept > rt.budget {
		t.Fatalf("slept %v, over the %v budget", slept, rt.budget)
	}
}

// TestRetrierNon2xxNotRetried pins the separation: a server answer —
// even a 5xx — is never transport noise.
func TestRetrierNon2xxNotRetried(t *testing.T) {
	var retries, giveups atomic.Uint64
	rt := &retrier{budget: time.Minute, sleep: func(time.Duration) {},
		retries: &retries, giveups: &giveups}
	calls := 0
	err := rt.do(func() error { calls++; return statusError{code: 500} }, 1)
	var se statusError
	if !errors.As(err, &se) || se.code != 500 {
		t.Fatalf("err = %v, want statusError 500", err)
	}
	if calls != 1 || retries.Load() != 0 || giveups.Load() != 0 {
		t.Fatalf("calls=%d retries=%d giveups=%d, want 1/0/0", calls, retries.Load(), giveups.Load())
	}
}

// TestRetrierZeroBudget pins -retry-for's default: no retries, the
// first transient error surfaces immediately as a giveup.
func TestRetrierZeroBudget(t *testing.T) {
	var retries, giveups atomic.Uint64
	rt := &retrier{budget: 0, sleep: func(time.Duration) { t.Fatal("slept with zero budget") },
		retries: &retries, giveups: &giveups}
	calls := 0
	err := rt.do(func() error {
		calls++
		return &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	}, 5)
	if !errors.Is(err, syscall.ECONNREFUSED) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate transport error", err, calls)
	}
	if retries.Load() != 0 || giveups.Load() != 1 {
		t.Fatalf("retries=%d giveups=%d, want 0/1", retries.Load(), giveups.Load())
	}
}
