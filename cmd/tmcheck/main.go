// Command tmcheck runs the consistency and disjoint-access-parallelism
// analyses on a recorded execution trace (the JSON format of
// internal/trace).
//
// Usage:
//
//	tmcheck [-check all|<name>] [-dap] trace.json
//	tmcheck -demo [protocol]     # generate a demo trace on stdout
//
// The known checkers, simulated protocols and production engines are
// enumerated at runtime (run tmcheck -h); nothing here maintains a list
// by hand.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/registry"
	"pcltm/internal/stms"
	"pcltm/internal/trace"
)

// checkerNames enumerates the consistency checkers at runtime.
func checkerNames() []string {
	cs := consistency.Checkers()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

func main() {
	check := flag.String("check", "all", "checker name or 'all'")
	dapFlag := flag.Bool("dap", true, "also run the disjoint-access-parallelism analysis")
	demo := flag.Bool("demo", false, "emit a demo trace (optionally: protocol name as arg) and exit")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: tmcheck [-check all|<name>] [-dap] trace.json")
		fmt.Fprintln(o, "       tmcheck -demo [protocol]")
		fmt.Fprintln(o)
		flag.PrintDefaults()
		// Everything below comes from the registries, so a newly added
		// checker, protocol or engine shows up here without edits.
		fmt.Fprintf(o, "\ncheckers:  %s\n", strings.Join(checkerNames(), ", "))
		fmt.Fprintf(o, "protocols: %s\n", strings.Join(registry.ProtocolNames(), ", "))
		fmt.Fprintf(o, "engines:   %s (production stm/ engines; traces come from the simulated protocols)\n",
			strings.Join(registry.EngineNames(), ", "))
	}
	flag.Parse()

	if *demo {
		emitDemo(flag.Arg(0))
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}
	exec, err := trace.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}

	if werr := history.CheckWellFormed(exec); werr != nil {
		fmt.Printf("history: NOT well-formed: %v\n", werr)
	} else {
		fmt.Println("history: well-formed")
	}

	v := history.FromExecution(exec)
	fmt.Printf("transactions: %d (%d committed, %d commit-pending)\n",
		len(v.Txns), len(v.Committed()), len(v.CommitPending()))

	ran := false
	for _, c := range consistency.Checkers() {
		if *check != "all" && c.Name != *check {
			continue
		}
		ran = true
		res := c.Check(v)
		verdict := "SATISFIED"
		if !res.Satisfied {
			verdict = "VIOLATED"
			if res.Exhausted {
				verdict = "INCONCLUSIVE (search budget exhausted)"
			}
		}
		fmt.Printf("%-26s %-10s (%d configs, %d nodes)\n", c.Name, verdict, res.Configs, res.Nodes)
		if res.Satisfied && res.Witness != nil {
			fmt.Printf("    witness: %s\n", res.Witness)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tmcheck: unknown checker %q\n", *check)
		os.Exit(2)
	}

	if *dapFlag {
		strict := dap.CheckStrict(exec)
		chain := dap.CheckChain(exec)
		fmt.Printf("strict disjoint-access-parallelism: %d violation(s)\n", len(strict))
		for _, viol := range strict {
			fmt.Printf("    %s\n", viol)
		}
		fmt.Printf("chain disjoint-access-parallelism:  %d violation(s)\n", len(chain))
	}
}

// emitDemo records a small two-transaction run under the named protocol
// (default naive) and writes the JSON trace to stdout. Protocols resolve
// through the shared registry.
func emitDemo(protoName string) {
	if protoName == "" {
		protoName = "naive"
	}
	proto, err := registry.ProtocolByName(protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(2)
	}
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 2)}},
	}
	b := &stms.Bundle{Protocol: proto, Specs: specs}
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: demo run: %v\n", err)
		os.Exit(1)
	}
	data, err := trace.Encode(exec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
