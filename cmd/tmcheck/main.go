// Command tmcheck runs the consistency and disjoint-access-parallelism
// analyses on a recorded execution trace (the JSON format of
// internal/trace), or — with -live — records fresh histories from the
// production stm/ engines and runs the same checkers on them.
//
// Usage:
//
//	tmcheck [-check all|<name>] [-dap] trace.json
//	tmcheck -certify trace.json  # polynomial certifier instead of the exhaustive checkers
//	tmcheck -recover DIR         # judge a durable commit log offline
//	tmcheck -demo [protocol]     # generate a demo trace on stdout
//	tmcheck -live [-episodes N] [-seed S] [-engine tl2,...] [-pattern disjoint,...] [-dump DIR]
//
// Recover mode is the offline judge for a durable store's commit log
// (internal/wal, written by tmserve -wal): it scans DIR read-only,
// reports what recovery would do — per-partition horizons, torn tails
// truncated, records dropped past gaps, clean or crashed shutdown —
// replays the surviving prefix into a fresh recorded store, and runs
// the polynomial certifier over each partition's replay history. A
// corrupt log (mid-log checksum mismatch, duplicate sequence number,
// structural damage) is refused with the witness. Exit status: 0 log
// accepted and every partition certified, 1 refused or violated, 3
// accepted but some partition undecided.
//
// Certify mode runs the polynomial consistency certifier
// (internal/certify) on the trace: it scales to load-test-sized
// histories the exhaustive checkers cannot touch, answering Certified,
// Violated (with a witness) or Unknown per condition. Exit status: 0
// all certified, 1 any violated, 3 none violated but some unknown.
//
// Live mode is the conformance harness (internal/conformance) from the
// CLI: every selected engine runs seeded concurrent episodes across the
// selected contention patterns, each recorded history is checked against
// the engine's required conditions, and any violation is dumped in the
// paper's x:v notation with a non-zero exit. With -dump DIR every
// violating history is additionally written to DIR as a trace JSON
// file, replayable through either checking mode.
//
// The known checkers, simulated protocols and production engines are
// enumerated at runtime (run tmcheck -h); nothing here maintains a list
// by hand.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pcltm/internal/certify"
	"pcltm/internal/conformance"
	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/registry"
	"pcltm/internal/stms"
	"pcltm/internal/trace"
	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
)

// checkerNames enumerates the consistency checkers at runtime.
func checkerNames() []string {
	cs := consistency.Checkers()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

func main() {
	check := flag.String("check", "all", "checker name or 'all'")
	dapFlag := flag.Bool("dap", true, "also run the disjoint-access-parallelism analysis")
	certifyFlag := flag.Bool("certify", false, "run the polynomial certifier on the trace instead of the exhaustive checkers")
	demo := flag.Bool("demo", false, "emit a demo trace (optionally: protocol name as arg) and exit")
	live := flag.Bool("live", false, "run conformance against the real stm/ engines instead of a trace")
	episodes := flag.Int("episodes", 8, "episodes per engine × pattern cell (live mode)")
	seed := flag.Int64("seed", 1, "sweep seed; episode shapes and op plans derive from it (live mode)")
	enginesFlag := flag.String("engine", "", "comma-separated engines to sweep (live mode; default all)")
	patternsFlag := flag.String("pattern", "", "comma-separated contention patterns (live mode; default all)")
	dumpDir := flag.String("dump", "", "directory for violating histories as trace JSON (live mode)")
	recoverDir := flag.String("recover", "", "durable commit log directory to judge offline")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: tmcheck [-check all|<name>] [-dap] trace.json")
		fmt.Fprintln(o, "       tmcheck -certify trace.json")
		fmt.Fprintln(o, "       tmcheck -recover DIR")
		fmt.Fprintln(o, "       tmcheck -demo [protocol]")
		fmt.Fprintln(o, "       tmcheck -live [-episodes N] [-seed S] [-engine tl2,...] [-pattern disjoint,...] [-dump DIR]")
		fmt.Fprintln(o)
		flag.PrintDefaults()
		// Everything below comes from the registries, so a newly added
		// checker, protocol or engine shows up here without edits.
		fmt.Fprintf(o, "\ncheckers:  %s\n", strings.Join(checkerNames(), ", "))
		fmt.Fprintf(o, "protocols: %s\n", strings.Join(registry.ProtocolNames(), ", "))
		fmt.Fprintf(o, "engines:   %s (production stm/ engines; traces come from the simulated protocols, -live records the engines directly)\n",
			strings.Join(registry.EngineNames(), ", "))
		fmt.Fprintf(o, "patterns:  %s (live mode contention shapes)\n",
			strings.Join(registry.PatternNames(), ", "))
	}
	flag.Parse()

	if *demo {
		emitDemo(flag.Arg(0))
		return
	}
	if *live {
		runLive(*episodes, *seed, *enginesFlag, *patternsFlag, *dumpDir)
		return
	}
	if *recoverDir != "" {
		runRecover(*recoverDir)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}
	exec, meta, err := trace.DecodeFile(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}
	if meta != nil {
		fmt.Printf("trace: source=%s engine=%s partitions=%d\n", meta.Source, meta.Engine, meta.Partitions)
	}
	if *certifyFlag {
		runCertify(exec, *check)
		return
	}

	if werr := history.CheckWellFormed(exec); werr != nil {
		fmt.Printf("history: NOT well-formed: %v\n", werr)
	} else {
		fmt.Println("history: well-formed")
	}

	v := history.FromExecution(exec)
	fmt.Printf("transactions: %d (%d committed, %d commit-pending)\n",
		len(v.Txns), len(v.Committed()), len(v.CommitPending()))

	ran := false
	for _, c := range consistency.Checkers() {
		if *check != "all" && c.Name != *check {
			continue
		}
		ran = true
		res := c.Check(v)
		verdict := "SATISFIED"
		if !res.Satisfied {
			verdict = "VIOLATED"
			if res.Exhausted {
				verdict = "INCONCLUSIVE (search budget exhausted)"
			}
		}
		fmt.Printf("%-26s %-10s (%d configs, %d nodes)\n", c.Name, verdict, res.Configs, res.Nodes)
		if res.Satisfied && res.Witness != nil {
			fmt.Printf("    witness: %s\n", res.Witness)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tmcheck: unknown checker %q\n", *check)
		os.Exit(2)
	}

	if *dapFlag {
		strict := dap.CheckStrict(exec)
		chain := dap.CheckChain(exec)
		fmt.Printf("strict disjoint-access-parallelism: %d violation(s)\n", len(strict))
		for _, viol := range strict {
			fmt.Printf("    %s\n", viol)
		}
		fmt.Printf("chain disjoint-access-parallelism:  %d violation(s)\n", len(chain))
	}
}

// runCertify judges the trace with the polynomial certifier: per
// condition one line — verdict, method and cost — plus the violation
// witness when there is one. Exit codes: 0 every selected condition
// certified, 1 any violated, 3 none violated but some undecided.
func runCertify(exec *core.Execution, check string) {
	h := certify.FromExecution(exec)
	fmt.Printf("transactions: %d\n", len(h.Txns))
	ran, violated, unknown := false, false, false
	for _, cond := range certify.Conditions() {
		if check != "all" && cond != check {
			continue
		}
		ran = true
		rep := certify.Check(h, cond)
		fmt.Println(rep)
		switch rep.Verdict {
		case certify.Violated:
			violated = true
			if len(rep.Witness) > 0 {
				fmt.Printf("    witness: %v\n", rep.Witness)
			}
		case certify.Unknown:
			unknown = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tmcheck: unknown condition %q (certifier knows: %s)\n",
			check, strings.Join(certify.Conditions(), ", "))
		os.Exit(2)
	}
	switch {
	case violated:
		os.Exit(1)
	case unknown:
		os.Exit(3)
	}
}

// runRecover judges a durable commit log offline: scan (read-only),
// report the recovery plan, replay into a recorded store, certify each
// partition's replay history. A corrupt log is refused with its
// witness; torn tails are reported but — by design — accepted.
func runRecover(dir string) {
	backend, err := wal.NewFileBackend(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: -recover: %v\n", err)
		os.Exit(1)
	}
	scan, err := wal.Scan(backend)
	if err != nil {
		var ce *wal.CorruptError
		if errors.As(err, &ce) {
			fmt.Printf("log REFUSED: %s\n", ce)
			fmt.Printf("    witness: segment %s, offset %d: %s\n", ce.Segment, ce.Offset, ce.Reason)
		} else {
			fmt.Fprintf(os.Stderr, "tmcheck: -recover: %v\n", err)
		}
		os.Exit(1)
	}
	shutdown := "crashed (unsealed tail)"
	if scan.Clean {
		shutdown = "clean (sealed)"
	}
	fmt.Printf("log: %d partition(s), %d segment(s), shutdown %s\n",
		scan.Partitions, scan.Segments, shutdown)
	fmt.Printf("replayable: %d commit(s); horizons %v\n", len(scan.Records), scan.Horizon)
	if scan.CrossReplayed > 0 || scan.CrossVoided > 0 {
		fmt.Printf("cross-partition: %d transaction(s) replayed whole, %d voided whole (undecided or incomplete)\n",
			scan.CrossReplayed, scan.CrossVoided)
	}
	if dropped := scan.DroppedRecords(); dropped > 0 {
		fmt.Printf("dropped past per-partition gaps: %d commit(s) %v\n", dropped, scan.DroppedByPart)
	}
	for _, tt := range scan.Torn {
		fmt.Printf("torn tail truncated: segment %s, offset %d: %s\n", tt.Segment, tt.Offset, tt.Reason)
	}

	// Replay into a fresh store with one recorder per partition, so the
	// rebuild itself becomes a certifiable history.
	var recs []*stm.Recorder
	s := store.New[int64, int64](store.Config{
		Partitions: scan.Partitions,
		EngineOptions: func(int) []stm.Option {
			r := stm.NewRecorder()
			recs = append(recs, r)
			return []stm.Option{stm.WithRecorder(r)}
		},
	})
	if err := store.Replay(s, store.Int64Codec(), scan.Records, 0); err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: -recover: replay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replayed into %d key(s)\n", s.Len())

	itemOf := func(id uint64) (core.Item, bool) {
		return core.Item(fmt.Sprintf("t%d", id)), true
	}
	violated, unknown := false, false
	for pi, r := range recs {
		attempts := r.Take()
		if len(attempts) == 0 {
			fmt.Printf("partition %d: empty replay history\n", pi)
			continue
		}
		exec, err := conformance.StampInterned(attempts, itemOf, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmcheck: -recover: stamping partition %d: %v\n", pi, err)
			os.Exit(1)
		}
		rep := certify.Check(certify.FromExecution(exec), certify.StrictSerializability)
		fmt.Printf("partition %d: %s\n", pi, rep)
		switch rep.Verdict {
		case certify.Violated:
			violated = true
			if len(rep.Witness) > 0 {
				fmt.Printf("    witness: %v\n", rep.Witness)
			}
		case certify.Unknown:
			unknown = true
		}
	}
	switch {
	case violated:
		os.Exit(1)
	case unknown:
		os.Exit(3)
	}
	fmt.Println("log accepted: recovery certified")
}

// dumpViolations writes every violating report's history to dir as a
// trace JSON file; the returned count excludes reports without an
// execution. Dump failures are fatal: live mode's whole point under
// -dump is leaving the repro behind.
func dumpViolations(dir string, reports []*conformance.Report) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: -dump: %v\n", err)
		os.Exit(1)
	}
	n := 0
	for _, rep := range reports {
		if len(rep.Failures()) == 0 || rep.Exec == nil {
			continue
		}
		data, err := trace.EncodeWithMeta(rep.Exec, &trace.Meta{
			Source: "tmcheck -live", Engine: rep.Engine,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmcheck: -dump: %v\n", err)
			os.Exit(1)
		}
		name := fmt.Sprintf("violation-%03d-%s-%s-seed%d.json",
			n, rep.Engine, rep.Episode.Pattern, rep.Episode.Seed)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tmcheck: -dump: %v\n", err)
			os.Exit(1)
		}
		n++
	}
	return n
}

// runLive sweeps the conformance harness over the real engines: episodes
// per engine × pattern, each recorded, stamped and checked. Violations
// are dumped in the paper's notation and fail the process.
func runLive(episodes int, seed int64, enginesCSV, patternsCSV, dumpDir string) {
	cfg := conformance.StressConfig{Episodes: episodes, Seed: seed}
	if enginesCSV != "" {
		for _, part := range strings.Split(enginesCSV, ",") {
			k, err := registry.EngineByName(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
				os.Exit(2)
			}
			cfg.Engines = append(cfg.Engines, k)
		}
	}
	if patternsCSV != "" {
		for _, part := range strings.Split(patternsCSV, ",") {
			p, err := registry.PatternByName(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
				os.Exit(2)
			}
			cfg.Patterns = append(cfg.Patterns, p)
		}
	}

	sum, err := conformance.Stress(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: live: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("conformance of production engines (recorded histories vs. the paper's checkers)")
	fmt.Printf("%-9s %-9s %9s %6s %8s %8s %8s  %s\n",
		"engine", "pattern", "episodes", "txns", "checked", "skipped", "violate", "required")
	type cell struct{ episodes, txns, checked, skipped, violated int }
	cells := make(map[string]*cell)
	var order []string
	for _, rep := range sum.Reports {
		key := rep.Engine + "/" + rep.Episode.Pattern.String()
		c, ok := cells[key]
		if !ok {
			c = &cell{}
			cells[key] = c
			order = append(order, key)
		}
		c.episodes++
		c.txns += rep.Txns
		if rep.Skipped {
			c.skipped++
		} else {
			c.checked++
		}
		if len(rep.Failures()) > 0 {
			c.violated++
		}
	}
	for _, key := range order {
		c := cells[key]
		eng, pat, _ := strings.Cut(key, "/")
		req := conformance.RequiredConditions(eng)
		reqLabel := "all"
		switch {
		case len(req) == 0:
			reqLabel = "none"
		case len(req) < len(consistency.Checkers()):
			reqLabel = req[0] + ",…"
		}
		fmt.Printf("%-9s %-9s %9d %6d %8d %8d %8d  %s\n",
			eng, pat, c.episodes, c.txns, c.checked, c.skipped, c.violated, reqLabel)
	}
	fmt.Printf("\ntotal: %d episodes, %d checked, %d skipped (oversized), %d inconclusive (budget)\n",
		sum.Episodes, sum.Checked, sum.Skipped, sum.Inconclusive)

	// The structure layer: the same checkers over histories of the
	// transactional data structures (tstructs.TMap) and the partitioned
	// store — keyspace-level operation histories plus every partition's
	// own TVar-level history — with the planted aliased-TMap fixture as
	// the layer's self-test.
	ssum, err := conformance.StressStructures(conformance.StructStressConfig{
		Episodes: max(1, episodes/2), Seed: seed, Engines: cfg.Engines})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: live structures: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nconformance of transactional structures (TMap + partitioned store)\n")
	fmt.Printf("histories: %d map-level, %d store-level, %d per-partition, %d stitched cross-partition; %d checked, %d skipped, %d inconclusive\n",
		ssum.MapHistories, ssum.StoreHistories, ssum.PartitionHistories, ssum.StitchedHistories,
		ssum.Checked, ssum.Skipped, ssum.Inconclusive)
	if ssum.AliasedConvicted {
		fmt.Println("planted aliased-TMap fixture: convicted (self-test passed)")
	} else {
		fmt.Println("planted aliased-TMap fixture: NOT convicted — the structure harness is vacuous")
	}
	if ssum.HalfCrossConvicted {
		fmt.Println("planted half-applied-cross fixture: convicted (self-test passed)")
	} else {
		fmt.Println("planted half-applied-cross fixture: NOT convicted — the stitching checker is vacuous")
	}

	if dumpDir != "" {
		dumped := dumpViolations(dumpDir, append(append([]*conformance.Report(nil), sum.Reports...), ssum.Reports...))
		fmt.Printf("dumped %d violating histor(ies) to %s\n", dumped, dumpDir)
	}

	failures := len(sum.Failures) + len(ssum.Failures)
	if failures > 0 || !ssum.AliasedConvicted || !ssum.HalfCrossConvicted {
		if failures > 0 {
			fmt.Printf("\n%d VIOLATION(S):\n", failures)
			for _, f := range sum.Failures {
				fmt.Println(f)
			}
			for _, f := range ssum.Failures {
				fmt.Println(f)
			}
		}
		os.Exit(1)
	}
	fmt.Println("all engines satisfied their required conditions")
}

// emitDemo records a small two-transaction run under the named protocol
// (default naive) and writes the JSON trace to stdout. Protocols resolve
// through the shared registry.
func emitDemo(protoName string) {
	if protoName == "" {
		protoName = "naive"
	}
	proto, err := registry.ProtocolByName(protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(2)
	}
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 2)}},
	}
	b := &stms.Bundle{Protocol: proto, Specs: specs}
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: demo run: %v\n", err)
		os.Exit(1)
	}
	data, err := trace.Encode(exec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheck: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
