package main

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Record is one measurement of a BENCH_*.json file — the benchRecord
// schema cmd/tmbench writes; fields this tool doesn't compare are
// ignored on decode.
type Record struct {
	Engine     string  `json:"engine"`
	Pattern    string  `json:"pattern"`
	Workers    int     `json:"workers"`
	Throughput float64 `json:"tx_per_sec"`
	Commits    uint64  `json:"commits"`
	Retries    uint64  `json:"retries"`
}

// Key identifies a measurement cell across runs.
func (r Record) Key() string {
	return fmt.Sprintf("%s/%s/w%d", r.Engine, r.Pattern, r.Workers)
}

// Delta compares one cell across the two files.
type Delta struct {
	// Key is engine/pattern/wN.
	Key string
	// Old and New are the throughputs (tx/s).
	Old, New float64
	// Change is (New-Old)/Old: -0.25 means a 25% throughput drop.
	Change float64
	// Regression marks drops beyond the threshold.
	Regression bool
}

// Diff joins two record sets on their cell key and flags throughput drops
// beyond threshold (a fraction: 0.1 = 10%). Cells present in only one
// file are skipped — a new engine or pattern is not a regression.
func Diff(old, new []Record, threshold float64) []Delta {
	oldBy := make(map[string]Record, len(old))
	for _, r := range old {
		oldBy[r.Key()] = r
	}
	var deltas []Delta
	for _, n := range new {
		o, ok := oldBy[n.Key()]
		if !ok || o.Throughput <= 0 {
			continue
		}
		change := (n.Throughput - o.Throughput) / o.Throughput
		deltas = append(deltas, Delta{
			Key: n.Key(), Old: o.Throughput, New: n.Throughput,
			Change: change, Regression: change < -threshold,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Change < deltas[j].Change })
	return deltas
}

// Regressions filters the flagged deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Parse decodes one BENCH_*.json payload.
func Parse(data []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchdiff: decoding: %w", err)
	}
	return recs, nil
}
