package main

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Record is one measurement of a BENCH_*.json file — the benchRecord
// schema cmd/tmbench writes; fields this tool doesn't compare are
// ignored on decode. The alloc cells are pointers so baselines written
// before the schema carried them decode as absent rather than as a
// spurious zero; Values defaults to "int" on absence for the same
// reason (pre-value-kind baselines measured the int payload).
type Record struct {
	Engine      string   `json:"engine"`
	Pattern     string   `json:"pattern"`
	Workers     int      `json:"workers"`
	Values      string   `json:"values"`
	Throughput  float64  `json:"tx_per_sec"`
	Commits     uint64   `json:"commits"`
	Retries     uint64   `json:"retries"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	// Structure, Partitions and Skew identify the E7 structure cells
	// (tmap/store workloads); they are empty/zero on raw-TVar cells, so
	// pre-structure baselines join unchanged.
	Structure  string `json:"structure"`
	Partitions int    `json:"partitions"`
	Skew       string `json:"skew"`
	// CrossFrac and CrossPath are the E11 cross-partition dimensions
	// (percent of ops that are two-key transfers, and the commit path —
	// "scoped" or "sweep"). Zero/empty on single-key cells, so pre-E11
	// baselines join unchanged.
	CrossFrac int    `json:"cross_frac"`
	CrossPath string `json:"cross_path"`
	// RateRPS and the latency quantiles are the open-loop served cells
	// cmd/tmload writes; the quantiles are pointers so throughput-only
	// records read as carrying no latency rather than a zero one.
	RateRPS float64 `json:"rate_rps"`
	P99NS   *int64  `json:"p99_ns"`
	P999NS  *int64  `json:"p999_ns"`
	// WalAck and WalBackend are the E10 durability dimensions; empty on
	// non-durable cells, so pre-durability baselines join unchanged.
	WalAck     string `json:"wal_ack"`
	WalBackend string `json:"wal_backend"`
	// WalWindowUS is the group-commit batch window in microseconds; zero
	// (no window — fsync as soon as the queue drains) is the unsuffixed
	// spelling, so pre-window durability baselines join unchanged.
	WalWindowUS int64 `json:"wal_window_us"`
	// RunnerClass is the machine class that produced the record
	// ($BENCH_RUNNER_CLASS). Empty means unknown — pre-metadata
	// baselines — and compares as if same-class; two differing non-empty
	// classes downgrade the cell's verdict to advisory.
	RunnerClass string `json:"runner_class"`
}

// Key identifies a measurement cell across runs. The int value kind is
// the unsuffixed spelling, so cells join across the schema change.
func (r Record) Key() string {
	key := fmt.Sprintf("%s/%s/w%d", r.Engine, r.Pattern, r.Workers)
	if r.Values != "" && r.Values != "int" {
		key += "/" + r.Values
	}
	if r.Structure != "" {
		key += "/" + r.Structure
		if r.Partitions > 0 {
			key += fmt.Sprintf("/p%d", r.Partitions)
		}
		if r.Skew != "" {
			key += "/" + r.Skew
		}
	}
	if r.CrossFrac > 0 {
		key += fmt.Sprintf("/x%d", r.CrossFrac)
		if r.CrossPath != "" {
			key += "-" + r.CrossPath
		}
	}
	if r.RateRPS > 0 {
		key += fmt.Sprintf("/r%g", r.RateRPS)
	}
	if r.WalAck != "" {
		key += "/" + r.WalAck
		if r.WalBackend != "" {
			key += "-" + r.WalBackend
		}
		if r.WalWindowUS > 0 {
			key += fmt.Sprintf("-win%dus", r.WalWindowUS)
		}
	}
	return key
}

// Delta compares one cell across the two files.
type Delta struct {
	// Key is engine/pattern/wN.
	Key string
	// Old and New are the throughputs (tx/s).
	Old, New float64
	// Change is (New-Old)/Old: -0.25 means a 25% throughput drop.
	Change float64
	// Regression marks throughput drops beyond the threshold.
	Regression bool
	// HasAllocs is set when both files carry alloc cells for the key;
	// OldAllocs/NewAllocs are then allocs per committed transaction.
	HasAllocs            bool
	OldAllocs, NewAllocs float64
	// AllocRegression marks allocs/op increases beyond the alloc
	// threshold — the zero-alloc contract's trajectory gate.
	AllocRegression bool
	// Missing marks a cell present in the baseline but absent from the
	// candidate — a silently dropped measurement (an engine that stopped
	// registering, a renamed pattern) used to pass unnoticed; it is a
	// regression on its own.
	Missing bool
	// HasLatency is set when both sides carry a p99 latency quantile
	// (open-loop served cells); LatencyChange is then the relative p99
	// movement and LatencyRegression marks inflation beyond the latency
	// threshold.
	HasLatency         bool
	OldP99NS, NewP99NS int64
	LatencyChange      float64
	LatencyRegression  bool
	// CrossRunner marks a cell whose two sides were produced by
	// different (known) runner classes; OldClass/NewClass name them.
	// Wall-clock numbers across machine classes are weather, not signal,
	// so every flag on such a cell is advisory: Regressions excludes it
	// and Geomean skips its ratio. Missing cells stay blocking — whether
	// a measurement exists does not depend on the machine it ran on.
	CrossRunner        bool
	OldClass, NewClass string
}

// allocEpsilon absorbs float jitter in the per-op averages so an
// allocThreshold of 0 means "any real increase" rather than "any bit
// flip".
const allocEpsilon = 1e-6

// Diff joins two record sets on their cell key and flags throughput
// drops beyond threshold (a fraction: 0.1 = 10%), allocs/op increases
// beyond allocThreshold (absolute allocs per op: 0 flags any
// steady-state increase), and p99 latency inflation beyond
// latencyThreshold (a fraction: 0.5 = p99 may grow 50%). Cells only in
// the candidate are skipped — a new engine or pattern is not a
// regression — but a baseline cell missing from the candidate is
// flagged: a measurement that silently vanishes is exactly the kind of
// rot -threshold exists to catch. Alloc and latency cells are only
// compared when both files carry them, so diffing against an older
// baseline degrades to throughput-only. Cells whose two sides carry
// differing known runner classes are marked CrossRunner: their flags
// still compute (for the report) but they never block.
func Diff(old, new []Record, threshold, allocThreshold, latencyThreshold float64) []Delta {
	oldBy := make(map[string]Record, len(old))
	for _, r := range old {
		oldBy[r.Key()] = r
	}
	seen := make(map[string]bool, len(new))
	var deltas []Delta
	for _, n := range new {
		o, ok := oldBy[n.Key()]
		if !ok || o.Throughput <= 0 {
			continue
		}
		seen[n.Key()] = true
		change := (n.Throughput - o.Throughput) / o.Throughput
		d := Delta{
			Key: n.Key(), Old: o.Throughput, New: n.Throughput,
			Change: change, Regression: change < -threshold,
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			d.HasAllocs = true
			d.OldAllocs, d.NewAllocs = *o.AllocsPerOp, *n.AllocsPerOp
			d.AllocRegression = d.NewAllocs > d.OldAllocs+allocThreshold+allocEpsilon
		}
		if o.P99NS != nil && n.P99NS != nil && *o.P99NS > 0 {
			d.HasLatency = true
			d.OldP99NS, d.NewP99NS = *o.P99NS, *n.P99NS
			d.LatencyChange = float64(d.NewP99NS-d.OldP99NS) / float64(d.OldP99NS)
			d.LatencyRegression = d.LatencyChange > latencyThreshold
		}
		if o.RunnerClass != "" && n.RunnerClass != "" && o.RunnerClass != n.RunnerClass {
			d.CrossRunner = true
			d.OldClass, d.NewClass = o.RunnerClass, n.RunnerClass
		}
		deltas = append(deltas, d)
	}
	for _, o := range old {
		if o.Throughput <= 0 || seen[o.Key()] {
			continue
		}
		deltas = append(deltas, Delta{
			Key: o.Key(), Old: o.Throughput, Change: -1,
			Missing: true, Regression: true,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Change < deltas[j].Change })
	return deltas
}

// Geomean returns the benchstat-style geometric mean of the matched
// cells' throughput ratios (new/old) — one number for "did this run get
// faster or slower overall", robust to cells living on wildly different
// absolute scales. Missing cells are excluded (they have no ratio), and
// so are cross-runner cells (their ratio measures the machines, not the
// code); ok=false when nothing was matched.
func Geomean(deltas []Delta) (ratio float64, ok bool) {
	var logSum float64
	n := 0
	for _, d := range deltas {
		if d.Missing || d.CrossRunner || d.Old <= 0 || d.New <= 0 {
			continue
		}
		logSum += math.Log(d.New / d.Old)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return math.Exp(logSum / float64(n)), true
}

// Regressions filters the deltas that should block: flagged on any
// axis, except cross-runner cells, whose wall-clock flags are advisory
// only (their Missing case never arises here — a missing cell has no
// candidate side to disagree on class).
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.CrossRunner {
			continue
		}
		if d.Regression || d.AllocRegression || d.LatencyRegression {
			out = append(out, d)
		}
	}
	return out
}

// Advisories filters the cross-runner deltas that would have been
// regressions on a same-class comparison — reported with the
// incomparable-runner-class note, never blocking.
func Advisories(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.CrossRunner && (d.Regression || d.AllocRegression || d.LatencyRegression) {
			out = append(out, d)
		}
	}
	return out
}

// Parse decodes one BENCH_*.json payload.
func Parse(data []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchdiff: decoding: %w", err)
	}
	return recs, nil
}
