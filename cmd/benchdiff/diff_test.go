package main

import "testing"

// fixture JSON in the benchRecord schema of cmd/tmbench (extra fields
// present to prove they are tolerated; the tl2/disjoint cell carries
// alloc cells on both sides, twopl only on one).
const oldJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"ops_per_worker":1000,"vars":256,"seed":1,
   "elapsed_ns":1000,"tx_per_sec":100000,"commits":4000,"aborts":0,"retries":12,
   "allocs_per_op":0.10,"bytes_per_op":12.5},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":80000,"commits":4000},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":50000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":0,"commits":0}
]`

const newJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"tx_per_sec":99000,"commits":4000,
   "allocs_per_op":0.10,"bytes_per_op":12.0},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":60000,"commits":4000,
   "allocs_per_op":0.50,"bytes_per_op":64.0},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":52000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":41000,"commits":2000},
  {"engine":"adaptive","pattern":"disjoint","workers":4,"tx_per_sec":90000,"commits":4000}
]`

func mustParse(t *testing.T, s string) []Record {
	t.Helper()
	recs, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestDiffFlagsRegressions: the 25% twopl drop is flagged at a 10%
// threshold; the 1% tl2 drift and the 4% glock gain are not; cells
// missing from either side (adaptive is new, zero-throughput old tl2/zipf)
// are skipped rather than compared.
func TestDiffFlagsRegressions(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.10, 0, 0.5)
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3: %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "twopl/disjoint/w4" {
		t.Fatalf("regressions = %+v, want exactly twopl/disjoint/w4", regs)
	}
	if got := regs[0].Change; got > -0.24 || got < -0.26 {
		t.Errorf("twopl change = %.3f, want ≈ -0.25", got)
	}
	// Sorted worst-first.
	if deltas[0].Key != "twopl/disjoint/w4" {
		t.Errorf("deltas not sorted worst-first: %+v", deltas)
	}
}

// TestDiffThreshold: the same data at a 30% threshold is clean.
func TestDiffThreshold(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.30, 0, 0.5)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("no regression expected at 30%%: %+v", regs)
	}
}

// TestDiffAllocCells: alloc cells are compared only where both sides
// carry them (tl2/disjoint), missing cells degrade silently
// (twopl/disjoint has them only in the new file, glock in neither), and
// a flat allocs/op is not a regression even at threshold 0.
func TestDiffAllocCells(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.30, 0, 0.5)
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	tl2 := byKey["tl2/disjoint/w4"]
	if !tl2.HasAllocs || tl2.OldAllocs != 0.10 || tl2.NewAllocs != 0.10 {
		t.Fatalf("tl2 alloc cells wrong: %+v", tl2)
	}
	if tl2.AllocRegression {
		t.Errorf("flat allocs/op flagged as regression: %+v", tl2)
	}
	if byKey["twopl/disjoint/w4"].HasAllocs {
		t.Errorf("one-sided alloc cells should not compare: %+v", byKey["twopl/disjoint/w4"])
	}
	if byKey["glock/zipf/w2"].HasAllocs {
		t.Errorf("absent alloc cells should not compare: %+v", byKey["glock/zipf/w2"])
	}
}

// TestDiffAllocRegression: an allocs/op increase beyond the alloc
// threshold is flagged even when throughput is fine, and the threshold
// gives slack when raised.
func TestDiffAllocRegression(t *testing.T) {
	old := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000,
		AllocsPerOp: f(0.0), BytesPerOp: f(0)}}
	worse := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 105000,
		AllocsPerOp: f(2.0), BytesPerOp: f(32)}}
	regs := Regressions(Diff(old, worse, 0.10, 0, 0.5))
	if len(regs) != 1 || !regs[0].AllocRegression || regs[0].Regression {
		t.Fatalf("allocs/op 0→2 at threshold 0 should be exactly an alloc regression: %+v", regs)
	}
	if regs := Regressions(Diff(old, worse, 0.10, 2.5, 0.5)); len(regs) != 0 {
		t.Fatalf("allocs/op 0→2 within threshold 2.5 flagged: %+v", regs)
	}
}

func f(v float64) *float64 { return &v }

// TestDiffMissingCells: a live baseline cell absent from the candidate
// is a regression in its own right (it used to pass silently), while a
// zero-throughput baseline cell and candidate-only cells stay skipped.
func TestDiffMissingCells(t *testing.T) {
	old := []Record{
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000},
		{Engine: "twopl", Pattern: "disjoint", Workers: 4, Throughput: 80000},
		{Engine: "dead", Pattern: "zipf", Workers: 2, Throughput: 0},
	}
	new := []Record{
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000},
		{Engine: "fresh", Pattern: "disjoint", Workers: 4, Throughput: 50000},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if len(deltas) != 2 {
		t.Fatalf("compared %d cells, want 2 (one matched, one missing): %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "twopl/disjoint/w4" || !regs[0].Missing {
		t.Fatalf("regressions = %+v, want exactly the missing twopl cell", regs)
	}
	// Missing cells sort worst-first (change -1).
	if !deltas[0].Missing {
		t.Errorf("missing cell not sorted first: %+v", deltas)
	}
}

// TestDiffValuesDimension: the value-kind field joins cells — the int
// kind spells its key bare so pre-value-kind baselines still match, and
// distinct kinds never cross-join.
func TestDiffValuesDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Throughput: 100000}, // pre-schema: no values
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "any", Throughput: 50000},
	}
	new := []Record{
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "int", Throughput: 99000},
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "any", Throughput: 30000},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if len(deltas) != 2 {
		t.Fatalf("compared %d cells, want 2: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	if d, ok := byKey["tl2/uniform/w4"]; !ok || d.Regression {
		t.Errorf("int cell should join the bare baseline key cleanly: %+v", byKey)
	}
	if d, ok := byKey["tl2/uniform/w4/any"]; !ok || !d.Regression {
		t.Errorf("any cell's 40%% drop should flag: %+v", byKey)
	}
}

// TestDiffStructureDimension: the E7 structure fields join cells —
// raw-TVar records (empty structure) keep their bare keys, map cells
// key on structure+skew, store cells additionally on partition count,
// and distinct partition counts never cross-join.
func TestDiffStructureDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Throughput: 100000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "tmap", Skew: "uniform", Throughput: 90000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 1, Skew: "uniform", Throughput: 80000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 120000},
	}
	new := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Throughput: 100000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "tmap", Skew: "uniform", Throughput: 89000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 1, Skew: "uniform", Throughput: 81000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 60000},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if len(deltas) != 4 {
		t.Fatalf("compared %d cells, want 4: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	for _, want := range []string{
		"tl2s/keyed/w4",
		"tl2s/keyed/w4/tmap/uniform",
		"tl2s/keyed/w4/store/p1/uniform",
		"tl2s/keyed/w4/store/p4/uniform",
	} {
		if _, ok := byKey[want]; !ok {
			t.Fatalf("missing cell key %q in %+v", want, byKey)
		}
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "tl2s/keyed/w4/store/p4/uniform" {
		t.Fatalf("regressions = %+v, want exactly the p4 store cell", regs)
	}
}

// TestGeomean: the geometric mean of the matched ratios, with missing
// cells excluded; no matches means no geomean.
func TestGeomean(t *testing.T) {
	deltas := []Delta{
		{Old: 100, New: 200},      // ratio 2
		{Old: 100, New: 50},       // ratio 0.5
		{Old: 100, Missing: true}, // excluded
		{Old: 0, New: 10},         // excluded (no baseline)
	}
	g, ok := Geomean(deltas)
	if !ok || g < 0.999 || g > 1.001 {
		t.Fatalf("geomean = %v, %v; want 1.0 (2 × 0.5)", g, ok)
	}
	if _, ok := Geomean([]Delta{{Old: 100, Missing: true}}); ok {
		t.Fatal("geomean of only-missing deltas should not exist")
	}
}

// fixture JSON with runner metadata and open-loop latency cells, as
// cmd/tmload writes them: the baseline ran on ubuntu-latest, the
// candidate's tl2 cell on a larger runner (cross-class) and its glock
// cell on the same class.
const oldRunnerJSON = `[
  {"engine":"tl2","pattern":"openloop","workers":4,"structure":"served","partitions":4,
   "rate_rps":500,"tx_per_sec":500,"p50_ns":1000000,"p99_ns":4000000,"p999_ns":9000000,
   "runner_class":"ubuntu-latest","gomaxprocs":4,"num_cpu":4},
  {"engine":"glock","pattern":"openloop","workers":4,"structure":"served","partitions":4,
   "rate_rps":500,"tx_per_sec":500,"p99_ns":2000000,"runner_class":"ubuntu-latest"},
  {"engine":"tl2","pattern":"disjoint","workers":4,"tx_per_sec":100000,"commits":4000}
]`

const newRunnerJSON = `[
  {"engine":"tl2","pattern":"openloop","workers":4,"structure":"served","partitions":4,
   "rate_rps":500,"tx_per_sec":300,"p50_ns":2000000,"p99_ns":40000000,"p999_ns":90000000,
   "runner_class":"ubuntu-latest-8-cores","gomaxprocs":8,"num_cpu":8},
  {"engine":"glock","pattern":"openloop","workers":4,"structure":"served","partitions":4,
   "rate_rps":500,"tx_per_sec":495,"p99_ns":8000000,"runner_class":"ubuntu-latest"},
  {"engine":"tl2","pattern":"disjoint","workers":4,"tx_per_sec":99000,"commits":4000}
]`

// TestDiffCrossRunnerAdvisory: a cell whose sides were produced by
// different known runner classes has its flags (here both a 40%
// throughput drop and a 10× p99 inflation) downgraded to advisory —
// reported, but never blocking and never in the geomean — while the
// same-class latency cell still blocks.
func TestDiffCrossRunnerAdvisory(t *testing.T) {
	deltas := Diff(mustParse(t, oldRunnerJSON), mustParse(t, newRunnerJSON), 0.10, 0, 0.5)
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}

	cross := byKey["tl2/openloop/w4/served/p4/r500"]
	if !cross.CrossRunner || cross.OldClass != "ubuntu-latest" || cross.NewClass != "ubuntu-latest-8-cores" {
		t.Fatalf("cross-runner cell not marked: %+v", cross)
	}
	if !cross.Regression || !cross.LatencyRegression {
		t.Fatalf("cross-runner flags should still compute for the report: %+v", cross)
	}

	same := byKey["glock/openloop/w4/served/p4/r500"]
	if same.CrossRunner {
		t.Fatalf("same-class cell marked cross-runner: %+v", same)
	}
	if !same.HasLatency || !same.LatencyRegression || same.Regression {
		t.Fatalf("same-class 4x p99 inflation should flag latency only: %+v", same)
	}

	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != same.Key {
		t.Fatalf("regressions = %+v, want exactly the same-class latency cell", regs)
	}
	advs := Advisories(deltas)
	if len(advs) != 1 || advs[0].Key != cross.Key {
		t.Fatalf("advisories = %+v, want exactly the cross-runner cell", advs)
	}

	// Geomean over the remaining comparable cells only: glock 495/500 and
	// the bare tl2 throughput cell 99000/100000 — the cross-runner 0.6
	// ratio must not drag it down.
	if g, ok := Geomean(deltas); !ok || g < 0.98 || g > 1.0 {
		t.Fatalf("geomean = %v, %v; want ≈0.99 excluding the cross-runner cell", g, ok)
	}
}

// TestDiffLatencyThreshold: p99 inflation within the latency threshold
// is clean, and one-sided latency cells never compare (the old
// throughput-only cell joined with a latency-carrying candidate).
func TestDiffLatencyThreshold(t *testing.T) {
	p := func(v int64) *int64 { return &v }
	old := []Record{
		{Engine: "tl2", Pattern: "openloop", Workers: 4, Structure: "served",
			RateRPS: 500, Throughput: 500, RunnerClass: "ubuntu-latest", P99NS: p(4000000)},
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000},
	}
	new := []Record{
		{Engine: "tl2", Pattern: "openloop", Workers: 4, Structure: "served",
			RateRPS: 500, Throughput: 500, RunnerClass: "ubuntu-latest", P99NS: p(5000000)},
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000, P99NS: p(1)},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("p99 +25%% within a 50%% threshold flagged: %+v", regs)
	}
	for _, d := range deltas {
		if d.Key == "tl2/disjoint/w4" && d.HasLatency {
			t.Fatalf("one-sided latency cell should not compare: %+v", d)
		}
	}
	if regs := Regressions(Diff(old, new, 0.10, 0, 0.2)); len(regs) != 1 || !regs[0].LatencyRegression {
		t.Fatalf("p99 +25%% beyond a 20%% threshold should flag: %+v", regs)
	}
}

// TestDiffEmptyRunnerClassComparable: empty classes (pre-metadata
// baselines) keep their blocking power against stamped candidates.
func TestDiffEmptyRunnerClassComparable(t *testing.T) {
	old := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000}}
	new := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 50000,
		RunnerClass: "ubuntu-latest"}}
	regs := Regressions(Diff(old, new, 0.10, 0, 0.5))
	if len(regs) != 1 || regs[0].CrossRunner {
		t.Fatalf("unknown-class baseline must still block: %+v", regs)
	}
}

// TestDiffCrossDimension: the E11 cross fields join cells — records
// without transfers (cross_frac 0) keep their bare keys so pre-E11
// baselines stay comparable, cross cells key on fraction+path, and the
// scoped and sweep paths never cross-join.
func TestDiffCrossDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 100000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", CrossFrac: 30, CrossPath: "sweep", Throughput: 40000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", CrossFrac: 30, CrossPath: "scoped", Throughput: 80000},
	}
	new := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 99000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", CrossFrac: 30, CrossPath: "sweep", Throughput: 41000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", CrossFrac: 30, CrossPath: "scoped", Throughput: 50000},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	for _, want := range []string{
		"tl2s/keyed/w4/store/p4/uniform",
		"tl2s/keyed/w4/store/p4/uniform/x30-sweep",
		"tl2s/keyed/w4/store/p4/uniform/x30-scoped",
	} {
		if _, ok := byKey[want]; !ok {
			t.Fatalf("missing cell key %q in %+v", want, byKey)
		}
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "tl2s/keyed/w4/store/p4/uniform/x30-scoped" {
		t.Fatalf("regressions = %+v, want exactly the scoped cross cell", regs)
	}
}

// TestDiffWalWindowDimension: the batch-window stamp keys E10 cells —
// zero-window records (pre-window baselines) keep the bare ack-backend
// key, windowed records get their own cell.
func TestDiffWalWindowDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 2, Skew: "uniform", WalAck: "group", WalBackend: "mem", Throughput: 50000},
	}
	new := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 2, Skew: "uniform", WalAck: "group", WalBackend: "mem", Throughput: 49000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 2, Skew: "uniform", WalAck: "group", WalBackend: "mem", WalWindowUS: 200, Throughput: 60000},
	}
	deltas := Diff(old, new, 0.10, 0, 0.5)
	if len(deltas) != 1 {
		t.Fatalf("compared %d cells, want 1 (the windowed cell is new): %+v", len(deltas), deltas)
	}
	if deltas[0].Key != "tl2s/keyed/w4/store/p2/uniform/group-mem" {
		t.Fatalf("joined key = %q, want the bare group-mem cell", deltas[0].Key)
	}
	wantNew := Record{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store",
		Partitions: 2, Skew: "uniform", WalAck: "group", WalBackend: "mem", WalWindowUS: 200}
	if got := wantNew.Key(); got != "tl2s/keyed/w4/store/p2/uniform/group-mem-win200us" {
		t.Fatalf("windowed key = %q", got)
	}
}

// TestParseRejectsGarbage: a malformed file is an error, not a silent
// empty comparison.
func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatal("expected decode error")
	}
}
