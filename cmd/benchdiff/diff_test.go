package main

import "testing"

// fixture JSON in the benchRecord schema of cmd/tmbench (extra fields
// present to prove they are tolerated; the tl2/disjoint cell carries
// alloc cells on both sides, twopl only on one).
const oldJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"ops_per_worker":1000,"vars":256,"seed":1,
   "elapsed_ns":1000,"tx_per_sec":100000,"commits":4000,"aborts":0,"retries":12,
   "allocs_per_op":0.10,"bytes_per_op":12.5},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":80000,"commits":4000},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":50000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":0,"commits":0}
]`

const newJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"tx_per_sec":99000,"commits":4000,
   "allocs_per_op":0.10,"bytes_per_op":12.0},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":60000,"commits":4000,
   "allocs_per_op":0.50,"bytes_per_op":64.0},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":52000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":41000,"commits":2000},
  {"engine":"adaptive","pattern":"disjoint","workers":4,"tx_per_sec":90000,"commits":4000}
]`

func mustParse(t *testing.T, s string) []Record {
	t.Helper()
	recs, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestDiffFlagsRegressions: the 25% twopl drop is flagged at a 10%
// threshold; the 1% tl2 drift and the 4% glock gain are not; cells
// missing from either side (adaptive is new, zero-throughput old tl2/zipf)
// are skipped rather than compared.
func TestDiffFlagsRegressions(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.10, 0)
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3: %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "twopl/disjoint/w4" {
		t.Fatalf("regressions = %+v, want exactly twopl/disjoint/w4", regs)
	}
	if got := regs[0].Change; got > -0.24 || got < -0.26 {
		t.Errorf("twopl change = %.3f, want ≈ -0.25", got)
	}
	// Sorted worst-first.
	if deltas[0].Key != "twopl/disjoint/w4" {
		t.Errorf("deltas not sorted worst-first: %+v", deltas)
	}
}

// TestDiffThreshold: the same data at a 30% threshold is clean.
func TestDiffThreshold(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.30, 0)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("no regression expected at 30%%: %+v", regs)
	}
}

// TestDiffAllocCells: alloc cells are compared only where both sides
// carry them (tl2/disjoint), missing cells degrade silently
// (twopl/disjoint has them only in the new file, glock in neither), and
// a flat allocs/op is not a regression even at threshold 0.
func TestDiffAllocCells(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.30, 0)
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	tl2 := byKey["tl2/disjoint/w4"]
	if !tl2.HasAllocs || tl2.OldAllocs != 0.10 || tl2.NewAllocs != 0.10 {
		t.Fatalf("tl2 alloc cells wrong: %+v", tl2)
	}
	if tl2.AllocRegression {
		t.Errorf("flat allocs/op flagged as regression: %+v", tl2)
	}
	if byKey["twopl/disjoint/w4"].HasAllocs {
		t.Errorf("one-sided alloc cells should not compare: %+v", byKey["twopl/disjoint/w4"])
	}
	if byKey["glock/zipf/w2"].HasAllocs {
		t.Errorf("absent alloc cells should not compare: %+v", byKey["glock/zipf/w2"])
	}
}

// TestDiffAllocRegression: an allocs/op increase beyond the alloc
// threshold is flagged even when throughput is fine, and the threshold
// gives slack when raised.
func TestDiffAllocRegression(t *testing.T) {
	old := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000,
		AllocsPerOp: f(0.0), BytesPerOp: f(0)}}
	worse := []Record{{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 105000,
		AllocsPerOp: f(2.0), BytesPerOp: f(32)}}
	regs := Regressions(Diff(old, worse, 0.10, 0))
	if len(regs) != 1 || !regs[0].AllocRegression || regs[0].Regression {
		t.Fatalf("allocs/op 0→2 at threshold 0 should be exactly an alloc regression: %+v", regs)
	}
	if regs := Regressions(Diff(old, worse, 0.10, 2.5)); len(regs) != 0 {
		t.Fatalf("allocs/op 0→2 within threshold 2.5 flagged: %+v", regs)
	}
}

func f(v float64) *float64 { return &v }

// TestDiffMissingCells: a live baseline cell absent from the candidate
// is a regression in its own right (it used to pass silently), while a
// zero-throughput baseline cell and candidate-only cells stay skipped.
func TestDiffMissingCells(t *testing.T) {
	old := []Record{
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000},
		{Engine: "twopl", Pattern: "disjoint", Workers: 4, Throughput: 80000},
		{Engine: "dead", Pattern: "zipf", Workers: 2, Throughput: 0},
	}
	new := []Record{
		{Engine: "tl2", Pattern: "disjoint", Workers: 4, Throughput: 100000},
		{Engine: "fresh", Pattern: "disjoint", Workers: 4, Throughput: 50000},
	}
	deltas := Diff(old, new, 0.10, 0)
	if len(deltas) != 2 {
		t.Fatalf("compared %d cells, want 2 (one matched, one missing): %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "twopl/disjoint/w4" || !regs[0].Missing {
		t.Fatalf("regressions = %+v, want exactly the missing twopl cell", regs)
	}
	// Missing cells sort worst-first (change -1).
	if !deltas[0].Missing {
		t.Errorf("missing cell not sorted first: %+v", deltas)
	}
}

// TestDiffValuesDimension: the value-kind field joins cells — the int
// kind spells its key bare so pre-value-kind baselines still match, and
// distinct kinds never cross-join.
func TestDiffValuesDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Throughput: 100000}, // pre-schema: no values
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "any", Throughput: 50000},
	}
	new := []Record{
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "int", Throughput: 99000},
		{Engine: "tl2", Pattern: "uniform", Workers: 4, Values: "any", Throughput: 30000},
	}
	deltas := Diff(old, new, 0.10, 0)
	if len(deltas) != 2 {
		t.Fatalf("compared %d cells, want 2: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	if d, ok := byKey["tl2/uniform/w4"]; !ok || d.Regression {
		t.Errorf("int cell should join the bare baseline key cleanly: %+v", byKey)
	}
	if d, ok := byKey["tl2/uniform/w4/any"]; !ok || !d.Regression {
		t.Errorf("any cell's 40%% drop should flag: %+v", byKey)
	}
}

// TestDiffStructureDimension: the E7 structure fields join cells —
// raw-TVar records (empty structure) keep their bare keys, map cells
// key on structure+skew, store cells additionally on partition count,
// and distinct partition counts never cross-join.
func TestDiffStructureDimension(t *testing.T) {
	old := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Throughput: 100000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "tmap", Skew: "uniform", Throughput: 90000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 1, Skew: "uniform", Throughput: 80000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 120000},
	}
	new := []Record{
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Throughput: 100000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "tmap", Skew: "uniform", Throughput: 89000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 1, Skew: "uniform", Throughput: 81000},
		{Engine: "tl2s", Pattern: "keyed", Workers: 4, Structure: "store", Partitions: 4, Skew: "uniform", Throughput: 60000},
	}
	deltas := Diff(old, new, 0.10, 0)
	if len(deltas) != 4 {
		t.Fatalf("compared %d cells, want 4: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	for _, want := range []string{
		"tl2s/keyed/w4",
		"tl2s/keyed/w4/tmap/uniform",
		"tl2s/keyed/w4/store/p1/uniform",
		"tl2s/keyed/w4/store/p4/uniform",
	} {
		if _, ok := byKey[want]; !ok {
			t.Fatalf("missing cell key %q in %+v", want, byKey)
		}
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "tl2s/keyed/w4/store/p4/uniform" {
		t.Fatalf("regressions = %+v, want exactly the p4 store cell", regs)
	}
}

// TestGeomean: the geometric mean of the matched ratios, with missing
// cells excluded; no matches means no geomean.
func TestGeomean(t *testing.T) {
	deltas := []Delta{
		{Old: 100, New: 200},      // ratio 2
		{Old: 100, New: 50},       // ratio 0.5
		{Old: 100, Missing: true}, // excluded
		{Old: 0, New: 10},         // excluded (no baseline)
	}
	g, ok := Geomean(deltas)
	if !ok || g < 0.999 || g > 1.001 {
		t.Fatalf("geomean = %v, %v; want 1.0 (2 × 0.5)", g, ok)
	}
	if _, ok := Geomean([]Delta{{Old: 100, Missing: true}}); ok {
		t.Fatal("geomean of only-missing deltas should not exist")
	}
}

// TestParseRejectsGarbage: a malformed file is an error, not a silent
// empty comparison.
func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatal("expected decode error")
	}
}
