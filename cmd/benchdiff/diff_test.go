package main

import "testing"

// fixture JSON in the benchRecord schema of cmd/tmbench (extra fields
// present to prove they are tolerated).
const oldJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"ops_per_worker":1000,"vars":256,"seed":1,
   "elapsed_ns":1000,"tx_per_sec":100000,"commits":4000,"aborts":0,"retries":12},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":80000,"commits":4000},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":50000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":0,"commits":0}
]`

const newJSON = `[
  {"engine":"tl2","pattern":"disjoint","workers":4,"tx_per_sec":99000,"commits":4000},
  {"engine":"twopl","pattern":"disjoint","workers":4,"tx_per_sec":60000,"commits":4000},
  {"engine":"glock","pattern":"zipf","workers":2,"tx_per_sec":52000,"commits":2000},
  {"engine":"tl2","pattern":"zipf","workers":2,"tx_per_sec":41000,"commits":2000},
  {"engine":"adaptive","pattern":"disjoint","workers":4,"tx_per_sec":90000,"commits":4000}
]`

func mustParse(t *testing.T, s string) []Record {
	t.Helper()
	recs, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestDiffFlagsRegressions: the 25% twopl drop is flagged at a 10%
// threshold; the 1% tl2 drift and the 4% glock gain are not; cells
// missing from either side (adaptive is new, zero-throughput old tl2/zipf)
// are skipped rather than compared.
func TestDiffFlagsRegressions(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.10)
	if len(deltas) != 3 {
		t.Fatalf("compared %d cells, want 3: %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Key != "twopl/disjoint/w4" {
		t.Fatalf("regressions = %+v, want exactly twopl/disjoint/w4", regs)
	}
	if got := regs[0].Change; got > -0.24 || got < -0.26 {
		t.Errorf("twopl change = %.3f, want ≈ -0.25", got)
	}
	// Sorted worst-first.
	if deltas[0].Key != "twopl/disjoint/w4" {
		t.Errorf("deltas not sorted worst-first: %+v", deltas)
	}
}

// TestDiffThreshold: the same data at a 30% threshold is clean.
func TestDiffThreshold(t *testing.T) {
	deltas := Diff(mustParse(t, oldJSON), mustParse(t, newJSON), 0.30)
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("no regression expected at 30%%: %+v", regs)
	}
}

// TestParseRejectsGarbage: a malformed file is an error, not a silent
// empty comparison.
func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatal("expected decode error")
	}
}
