// Command benchdiff compares two BENCH_*.json files (the schema
// cmd/tmbench and cmd/tmload write via internal/benchfmt, and CI
// uploads as BENCH_ci.json) and flags regressions beyond thresholds —
// the perf-trajectory tool of ROADMAP.md. Three axes are compared per
// cell:
//
//   - throughput: a relative drop beyond -threshold;
//   - allocations: an allocs/op increase beyond -alloc-threshold
//     (absolute; the default 0 flags any steady-state increase, since
//     the stm engines' contract is zero allocations on the warmed hot
//     path);
//   - latency: a relative p99 inflation beyond -latency-threshold on
//     the open-loop served cells cmd/tmload writes.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-alloc-threshold 0] [-latency-threshold 0.5]
//	          [-all] OLD.json NEW.json
//
// Cells (engine × pattern × workers × value kind, plus the structure
// and offered-rate dimensions when present) are joined by key; any
// flagged cell makes the exit status non-zero. A baseline cell missing
// from the candidate is itself a failure — a measurement that silently
// vanishes is rot, not a pass. Alloc and latency cells are compared
// only when both files carry them, so old baselines degrade to
// throughput-only, and a missing "values" field reads as the int kind.
// The summary ends with a benchstat-style geometric-mean line over the
// matched cells' throughput ratios (CI surfaces it in the step summary).
// -all prints every matched cell, not just the regressions.
//
// Wall-clock numbers are only comparable within a runner class: when
// the two sides of a cell carry differing runner_class stamps, every
// flag on it is downgraded to advisory — printed with an explicit
// "incomparable runner class" note, excluded from the geomean, and
// never failing the exit status. Empty classes (pre-metadata baselines)
// compare as same-class, so old files keep their blocking power.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative throughput drop that counts as a regression")
	allocThreshold := flag.Float64("alloc-threshold", 0, "absolute allocs/op increase that counts as a regression (0 = any increase)")
	latencyThreshold := flag.Float64("latency-threshold", 0.5, "relative p99 latency inflation that counts as a regression")
	all := flag.Bool("all", false, "print every matched cell, not just regressions")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: benchdiff [-threshold 0.10] [-alloc-threshold 0] [-latency-threshold 0.5] [-all] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) []Record {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		recs, err := Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(1)
		}
		return recs
	}
	oldRecs, newRecs := read(flag.Arg(0)), read(flag.Arg(1))

	deltas := Diff(oldRecs, newRecs, *threshold, *allocThreshold, *latencyThreshold)
	if len(deltas) == 0 {
		fmt.Println("benchdiff: no common cells to compare")
		return
	}
	regs, advisories := Regressions(deltas), Advisories(deltas)

	fmt.Printf("%-28s %14s %14s %8s %11s %11s\n",
		"cell", "old tx/s", "new tx/s", "change", "old alloc/op", "new alloc/op")
	for _, d := range deltas {
		flagged := d.Regression || d.AllocRegression || d.LatencyRegression
		if !*all && !flagged {
			continue
		}
		if d.Missing {
			fmt.Printf("%-28s %14.0f %14s %8s %11s %11s  MISSING-IN-CANDIDATE\n",
				d.Key, d.Old, "-", "-", "-", "-")
			continue
		}
		mark := ""
		if d.Regression {
			mark += "  REGRESSION"
		}
		if d.AllocRegression {
			mark += "  ALLOC-REGRESSION"
		}
		if d.LatencyRegression {
			mark += fmt.Sprintf("  P99-REGRESSION(%+.0f%%)", d.LatencyChange*100)
		}
		if d.CrossRunner && flagged {
			mark += fmt.Sprintf("  [ADVISORY: incomparable runner class %s vs %s]", d.OldClass, d.NewClass)
		}
		allocs := fmt.Sprintf("%11s %11s", "-", "-")
		if d.HasAllocs {
			allocs = fmt.Sprintf("%11.2f %11.2f", d.OldAllocs, d.NewAllocs)
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%% %s%s\n", d.Key, d.Old, d.New, d.Change*100, allocs, mark)
	}
	fmt.Printf("\n%d cell(s) compared, %d regression(s) beyond %.0f%% throughput / %.2f allocs/op / %.0f%% p99\n",
		len(deltas), len(regs), *threshold*100, *allocThreshold, *latencyThreshold*100)
	if len(advisories) > 0 {
		fmt.Printf("%d advisory cell(s) downgraded: incomparable runner class\n", len(advisories))
	}
	if g, ok := Geomean(deltas); ok {
		fmt.Printf("geomean throughput ratio (new/old): %.3f (%+.1f%%)\n", g, (g-1)*100)
	}
	if len(regs) > 0 {
		os.Exit(1)
	}
}
