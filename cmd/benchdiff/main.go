// Command benchdiff compares two BENCH_*.json files (the schema
// cmd/tmbench -json writes and CI uploads as BENCH_ci.json) and flags
// regressions beyond thresholds — the perf-trajectory tool of
// ROADMAP.md. Two axes are compared per cell:
//
//   - throughput: a relative drop beyond -threshold;
//   - allocations: an allocs/op increase beyond -alloc-threshold
//     (absolute; the default 0 flags any steady-state increase, since
//     the stm engines' contract is zero allocations on the warmed hot
//     path).
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-alloc-threshold 0] [-all] OLD.json NEW.json
//
// Cells (engine × pattern × workers × value kind) are joined by key; any
// flagged cell makes the exit status non-zero. A baseline cell missing
// from the candidate is itself a failure — a measurement that silently
// vanishes is rot, not a pass. Alloc cells are compared only when both
// files carry them, so old baselines degrade to throughput-only, and a
// missing "values" field reads as the int kind. The summary ends with a
// benchstat-style geometric-mean line over the matched cells' throughput
// ratios (CI surfaces it in the step summary).
// -all prints every matched cell, not just the regressions.
// Single-core runners are noisy — compare runs from the same class of
// machine, and treat small throughput deltas as weather (the alloc
// cells are far more stable: per-op averages of deterministic counts
// plus a fixed harness overhead).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative throughput drop that counts as a regression")
	allocThreshold := flag.Float64("alloc-threshold", 0, "absolute allocs/op increase that counts as a regression (0 = any increase)")
	all := flag.Bool("all", false, "print every matched cell, not just regressions")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: benchdiff [-threshold 0.10] [-alloc-threshold 0] [-all] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) []Record {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		recs, err := Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(1)
		}
		return recs
	}
	oldRecs, newRecs := read(flag.Arg(0)), read(flag.Arg(1))

	deltas := Diff(oldRecs, newRecs, *threshold, *allocThreshold)
	if len(deltas) == 0 {
		fmt.Println("benchdiff: no common cells to compare")
		return
	}
	regs := Regressions(deltas)

	fmt.Printf("%-24s %14s %14s %8s %11s %11s\n",
		"cell", "old tx/s", "new tx/s", "change", "old alloc/op", "new alloc/op")
	for _, d := range deltas {
		if !*all && !d.Regression && !d.AllocRegression {
			continue
		}
		if d.Missing {
			fmt.Printf("%-24s %14.0f %14s %8s %11s %11s  MISSING-IN-CANDIDATE\n",
				d.Key, d.Old, "-", "-", "-", "-")
			continue
		}
		mark := ""
		if d.Regression {
			mark += "  REGRESSION"
		}
		if d.AllocRegression {
			mark += "  ALLOC-REGRESSION"
		}
		allocs := fmt.Sprintf("%11s %11s", "-", "-")
		if d.HasAllocs {
			allocs = fmt.Sprintf("%11.2f %11.2f", d.OldAllocs, d.NewAllocs)
		}
		fmt.Printf("%-24s %14.0f %14.0f %+7.1f%% %s%s\n", d.Key, d.Old, d.New, d.Change*100, allocs, mark)
	}
	fmt.Printf("\n%d cell(s) compared, %d regression(s) beyond %.0f%% throughput / %.2f allocs/op\n",
		len(deltas), len(regs), *threshold*100, *allocThreshold)
	if g, ok := Geomean(deltas); ok {
		fmt.Printf("geomean throughput ratio (new/old): %.3f (%+.1f%%)\n", g, (g-1)*100)
	}
	if len(regs) > 0 {
		os.Exit(1)
	}
}
