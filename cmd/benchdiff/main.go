// Command benchdiff compares two BENCH_*.json files (the schema
// cmd/tmbench -json writes and CI uploads as BENCH_ci.json) and flags
// throughput regressions beyond a threshold — the perf-trajectory tool
// of ROADMAP.md.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-all] OLD.json NEW.json
//
// Cells (engine × pattern × workers) are joined by key; a cell that lost
// more than the threshold's fraction of throughput is a regression and
// makes the exit status non-zero. -all prints every matched cell, not
// just the regressions. Single-core runners are noisy — compare runs
// from the same class of machine, and treat small deltas as weather.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative throughput drop that counts as a regression")
	all := flag.Bool("all", false, "print every matched cell, not just regressions")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: benchdiff [-threshold 0.10] [-all] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) []Record {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		recs, err := Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(1)
		}
		return recs
	}
	oldRecs, newRecs := read(flag.Arg(0)), read(flag.Arg(1))

	deltas := Diff(oldRecs, newRecs, *threshold)
	if len(deltas) == 0 {
		fmt.Println("benchdiff: no common cells to compare")
		return
	}
	regs := Regressions(deltas)

	fmt.Printf("%-24s %14s %14s %8s\n", "cell", "old tx/s", "new tx/s", "change")
	for _, d := range deltas {
		if !*all && !d.Regression {
			continue
		}
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Printf("%-24s %14.0f %14.0f %+7.1f%%%s\n", d.Key, d.Old, d.New, d.Change*100, mark)
	}
	fmt.Printf("\n%d cell(s) compared, %d regression(s) beyond %.0f%%\n",
		len(deltas), len(regs), *threshold*100)
	if len(regs) > 0 {
		os.Exit(1)
	}
}
