// Package pcltm's root benchmark harness regenerates every figure of the
// paper and the added experiments of EXPERIMENTS.md:
//
//	F1/F2  — the critical-step searches (Figures 1–2)
//	F3/F5  — assembling and value-checking β (Figures 3 and 5)
//	F4/F6  — assembling and value-checking β′ (Figures 4 and 6)
//	T4.1   — the full verdict matrix over the protocol portfolio
//	E1     — production engine throughput across contention patterns
//	E2     — decision-procedure cost of the consistency conditions
//	E9     — polynomial certification cost vs history size
//	E10    — durability cost across wal acknowledgement modes
//
// Run with: go test -bench=. -benchmem .
package pcltm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pcltm/internal/certify"
	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
	"pcltm/internal/pcl"
	"pcltm/internal/registry"
	"pcltm/internal/stms"
	"pcltm/internal/wal"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// mustProto resolves a portfolio protocol through the shared registry or
// fails the benchmark.
func mustProto(b *testing.B, name string) stms.Protocol {
	b.Helper()
	p, err := registry.ProtocolByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchAdversary runs the construction to the given depth against the
// naive protocol — the only portfolio member that walks the whole
// construction, so the figure benchmarks measure the full search work.
func benchAdversary(b *testing.B, depth pcl.Depth, needS1, needS2, needBeta, needBetaPrime bool) {
	proto := mustProto(b, "naive")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := pcl.NewAdversary(proto).RunTo(depth)
		if needS1 && o.S1 == nil {
			b.Fatal("s1 not located")
		}
		if needS2 && o.S2 == nil {
			b.Fatal("s2 not located")
		}
		if needBeta && o.Beta == nil {
			b.Fatal("β not assembled")
		}
		if needBetaPrime && o.BetaPrime == nil {
			b.Fatal("β′ not assembled")
		}
	}
}

// BenchmarkFigure1CriticalStepS1 regenerates Figure 1: T1's solo run,
// prefix probes by T3, and the location of s1 with Claims 1–2 checked.
func BenchmarkFigure1CriticalStepS1(b *testing.B) {
	benchAdversary(b, pcl.DepthS1, true, false, false, false)
}

// BenchmarkFigure2CriticalStepS2 regenerates Figure 2: the s2 search from
// configuration C1⁻.
func BenchmarkFigure2CriticalStepS2(b *testing.B) {
	benchAdversary(b, pcl.DepthS2, true, true, false, false)
}

// BenchmarkFigure3ExecutionBeta regenerates Figure 3: assembling
// β = α1·α2·s1·α3·α4·s2·α7 (with the Claim 3 and δ2 probes).
func BenchmarkFigure3ExecutionBeta(b *testing.B) {
	benchAdversary(b, pcl.DepthBeta, true, true, true, false)
}

// BenchmarkFigure4ExecutionBetaPrime regenerates Figure 4: assembling
// β′ = α1·α2·s2·α5·α6·s1·α′7 and the p7 indistinguishability comparison.
func BenchmarkFigure4ExecutionBetaPrime(b *testing.B) {
	benchAdversary(b, pcl.DepthFull, true, true, true, true)
}

// BenchmarkFigure5ValuesBeta measures the Figure 5 work in isolation: the
// exhaustive weak-adaptive-consistency certification of the assembled β.
func BenchmarkFigure5ValuesBeta(b *testing.B) {
	proto := mustProto(b, "naive")
	o := pcl.NewAdversary(proto).RunTo(pcl.DepthBeta)
	if o.Beta == nil {
		b.Fatal("β not assembled")
	}
	v := history.FromExecution(o.Beta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := consistency.WeakAdaptiveConsistent(v)
		if res.Satisfied {
			b.Fatal("β unexpectedly WAC-consistent")
		}
	}
}

// BenchmarkFigure6ValuesBetaPrime certifies β′ (Figure 6).
func BenchmarkFigure6ValuesBetaPrime(b *testing.B) {
	proto := mustProto(b, "naive")
	o := pcl.NewAdversary(proto).RunTo(pcl.DepthFull)
	if o.BetaPrime == nil {
		b.Fatal("β′ not assembled")
	}
	v := history.FromExecution(o.BetaPrime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := consistency.WeakAdaptiveConsistent(v)
		if res.Satisfied {
			b.Fatal("β′ unexpectedly WAC-consistent")
		}
	}
}

// BenchmarkTheoremVerdictMatrix regenerates the Theorem 4.1 matrix: the
// whole portfolio through the whole construction.
func BenchmarkTheoremVerdictMatrix(b *testing.B) {
	protos := registry.Protocols()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range protos {
			o := pcl.NewAdversary(p).Run()
			if o.Verdict == nil {
				b.Fatalf("%s survived the construction", p.Name())
			}
		}
	}
}

// BenchmarkAdversaryPerProtocol times one matrix row per sub-benchmark,
// showing how far each protocol gets before failing (early liveness
// failures are cheap; walking the whole construction plus the WAC
// certification is the expensive case).
func BenchmarkAdversaryPerProtocol(b *testing.B) {
	for _, p := range registry.Protocols() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := pcl.NewAdversary(p).Run()
				if o.Verdict == nil {
					b.Fatalf("%s survived the construction", p.Name())
				}
			}
		})
	}
}

// ---- E1: production engines under real parallelism ----

func benchEngine(b *testing.B, kind stm.EngineKind, pattern workload.Pattern) {
	const vars = 256
	eng := stm.NewEngine(kind)
	tvs := make([]*stm.TVar[int64], vars)
	for i := range tvs {
		tvs[i] = stm.NewTVar[int64](0)
	}
	var workerIDs atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		worker := int(workerIDs.Add(1)) - 1
		span := vars / 8
		base := (worker * span) % vars
		n := 0
		for pb.Next() {
			n++
			_ = eng.Atomically(func(tx *stm.Tx) error {
				pick := func(i int) *stm.TVar[int64] {
					switch pattern {
					case workload.Disjoint:
						return tvs[base+(n*7+i*13)%span]
					case workload.Zipf:
						return tvs[(n*7+i*13)%16] // 16 hot variables
					case workload.PhaseShift:
						// Alternate 256-transaction blocks between the
						// disjoint partition and a tiny hot set, so the
						// contention regime keeps flipping mid-run.
						if (n>>8)&1 == 0 {
							return tvs[base+(n*7+i*13)%span]
						}
						return tvs[(n*7+i*13)%4]
					case workload.RateLimit:
						// The admission-control shape: disjoint reads, but
						// every transaction's write funnels through one
						// shared variable — the token bucket's footprint.
						if i < 2 {
							return tvs[base+(n*7+i*13)%span]
						}
						return tvs[0]
					default:
						return tvs[(n*7+i*13)%vars]
					}
				}
				acc := stm.Get(tx, pick(0)) + stm.Get(tx, pick(1))
				tv := pick(2)
				stm.Set(tx, tv, stm.Get(tx, tv)+acc+1)
				return nil
			})
		}
	})
	b.StopTimer()
	st := eng.Stats()
	if st.Commits > 0 {
		b.ReportMetric(float64(st.Retries)/float64(st.Commits), "retries/commit")
	}
}

// BenchmarkE1Engines sweeps engine × contention pattern (experiment E1).
// The engine and pattern lists come from the shared registry, so a newly
// registered engine joins the sweep automatically.
func BenchmarkE1Engines(b *testing.B) {
	for _, kind := range registry.Engines() {
		for _, pat := range registry.Patterns() {
			b.Run(fmt.Sprintf("%s/%s", kind, pat), func(b *testing.B) {
				benchEngine(b, kind, pat)
			})
		}
	}
}

// BenchmarkE1LongReadOnlyScans measures the workload snapshot isolation
// was invented for (paper §2): a long read-only scan racing concurrent
// writers; the reported retries/scan metric is the price each
// concurrency control charges long readers.
func BenchmarkE1LongReadOnlyScans(b *testing.B) {
	for _, kind := range registry.Engines() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			res := workload.RunScan(kind, workload.ScanConfig{
				Vars: 512, Writers: 2, Scans: b.N, Seed: 1,
			})
			if !res.Consistent {
				b.Fatal("torn scan observed")
			}
			b.ReportMetric(float64(res.ScanRetries)/float64(b.N), "retries/scan")
		})
	}
}

// BenchmarkE1ValueKinds sweeps engine × payload value kind (experiment
// E6): int, string and struct payloads ride the raw-word value
// representation and owe zero allocations per transaction; any is the
// boxed fallback and pays one box per Set. The workload-allocs/op metric
// (workload.Result's runtime-counted average) makes the gap visible next
// to ns/op whatever the harness overhead.
func BenchmarkE1ValueKinds(b *testing.B) {
	for _, kind := range registry.Engines() {
		for _, vk := range registry.ValueKinds() {
			b.Run(fmt.Sprintf("%s/%s", kind, vk), func(b *testing.B) {
				b.ReportAllocs()
				const workers = 4
				cfg := workload.Config{
					Vars: 256, Workers: workers, OpsPerWorker: b.N/workers + 1,
					Pattern: workload.Uniform, Values: vk, Seed: 1,
				}
				res := workload.Run(kind, cfg)
				if res.Sum != cfg.ExpectedSum() {
					b.Fatalf("sum invariant broken: %d != %d", res.Sum, cfg.ExpectedSum())
				}
				b.ReportMetric(res.AllocsPerOp, "workload-allocs/op")
			})
		}
	}
}

// ---- E3: contention ramp — where the adaptive engine switches ----

// benchRamp drives one engine with fixed-size transactions whose write
// share is the swept knob: opsPerTx operations over a small hot set,
// `writes` of them read-modify-write increments, the rest plain reads.
// As the write fraction ramps up, speculation's retries grow while
// locking's convoying stays flat — the crossover the adaptive engine is
// supposed to find on its own.
func benchRamp(b *testing.B, kind stm.EngineKind, writes int) {
	const hot = 8
	const opsPerTx = 8
	eng := stm.NewEngine(kind)
	tvs := make([]*stm.TVar[int64], hot)
	for i := range tvs {
		tvs[i] = stm.NewTVar[int64](0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := 0
		for pb.Next() {
			n++
			_ = eng.Atomically(func(tx *stm.Tx) error {
				var acc int64
				for i := 0; i < opsPerTx-writes; i++ {
					acc += stm.Get(tx, tvs[(n*7+i*13)%hot])
				}
				for i := 0; i < writes; i++ {
					tv := tvs[(n*11+i*17)%hot]
					stm.Set(tx, tv, stm.Get(tx, tv)+1)
				}
				_ = acc
				return nil
			})
		}
	})
	b.StopTimer()
	st := eng.Stats()
	if st.Commits > 0 {
		b.ReportMetric(float64(st.Retries)/float64(st.Commits), "retries/commit")
	}
	if as, ok := eng.AdaptiveStats(); ok {
		b.ReportMetric(float64(as.Switches), "switches")
	}
}

// BenchmarkE3ContentionRamp sweeps the write fraction of a hot-set
// workload across the three engines on the adaptive ladder plus the
// adaptive engine itself (experiment E3 of EXPERIMENTS.md). Read the
// rows by column: at low write fractions tl2s should win, at high ones
// twopl, and adaptive should track whichever wins its regime (its
// switches metric shows the policy firing).
func BenchmarkE3ContentionRamp(b *testing.B) {
	engines := []stm.EngineKind{
		stm.EngineTL2Striped, stm.EngineTwoPL, stm.EngineGlobalLock, stm.EngineAdaptive,
	}
	for _, writes := range []int{0, 1, 2, 4, 8} {
		for _, kind := range engines {
			b.Run(fmt.Sprintf("writes=%d of 8/%s", writes, kind), func(b *testing.B) {
				benchRamp(b, kind, writes)
			})
		}
	}
}

// ---- E2: decision-procedure cost of the consistency conditions ----

// sequentialExecution builds a legal m-transaction sequential execution
// (worst case for the checkers: a witness exists, so the search must find
// it rather than fail fast).
func sequentialExecution(m int) *core.Execution {
	bld := exectest.New()
	last := map[core.Item]core.Value{}
	items := []core.Item{"x", "y", "z"}
	for i := 0; i < m; i++ {
		tx := core.TxID(i + 1)
		p := core.ProcID(i % 4)
		rd := items[i%len(items)]
		wr := items[(i+1)%len(items)]
		bld.SeqTxn(p, tx,
			exectest.RV(rd, last[rd]),
			exectest.WV(wr, core.Value(i+1)),
		)
		last[wr] = core.Value(i + 1)
	}
	return bld.Exec()
}

func benchChecker(b *testing.B, m int, name string, check func(*history.View) consistency.Result) {
	v := history.FromExecution(sequentialExecution(m))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := check(v)
		if !res.Satisfied {
			b.Fatalf("%s rejected a legal sequential execution", name)
		}
	}
}

// BenchmarkE2Checkers sweeps checker × history size (experiment E2): the
// weaker the condition, the more it admits and the more the exhaustive
// search costs.
func BenchmarkE2Checkers(b *testing.B) {
	for _, m := range []int{2, 4, 6} {
		for _, c := range consistency.Checkers() {
			c := c
			b.Run(fmt.Sprintf("%s/txns=%d", c.Name, m), func(b *testing.B) {
				benchChecker(b, m, c.Name, c.Check)
			})
		}
	}
}

// BenchmarkE9Certify sweeps condition × history size on the polynomial
// certifier (experiment E9): the second checker tier's cost on honest
// overlapping-interval histories orders of magnitude past what the
// exhaustive E2 tier can touch. The per-iteration work scales with the
// history, so compare ns/op across sizes for the growth curve.
func BenchmarkE9Certify(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		h := certify.Synth(n, 64, 8, 1)
		for _, cond := range certify.Conditions() {
			b.Run(fmt.Sprintf("%s/txns=%d", cond, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep := certify.Check(h, cond)
					if rep.Verdict != certify.Certified {
						b.Fatalf("synthetic history not certified: %s", rep)
					}
				}
			})
		}
	}
}

// BenchmarkE10Durability sweeps the durable store's acknowledgement
// modes (experiment E10): the same keyed store workload, paying for a
// commit log at three contracts — sync (one fsync per commit), group
// (one fsync per concurrent batch), async (acknowledge before the
// fsync). The in-memory backend isolates the protocol's cost from the
// disk's; cmd/tmbench -mode wal -wal-dir adds the disk.
func BenchmarkE10Durability(b *testing.B) {
	for _, ack := range wal.AckModes() {
		for _, workers := range []int{2, 8} {
			b.Run(fmt.Sprintf("ack=%s/w=%d", ack, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := workload.RunDurableStore(stm.EngineTL2, workload.DurableStoreConfig{
						StoreConfig: workload.StoreConfig{
							Keys: 256, Partitions: 4, Workers: workers, OpsPerWorker: 400,
						},
						Ack: ack,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Sum != res.Writes {
						b.Fatalf("sum invariant broken: %d != %d writes", res.Sum, res.Writes)
					}
				}
			})
		}
	}
}

// ---- machine substrate ----

// BenchmarkMachineSteps measures the raw cost of the deterministic
// machine's scheduler handshake (steps per second of a solo run).
func BenchmarkMachineSteps(b *testing.B) {
	proto := mustProto(b, "naive")
	specs := workload.DisjointSpecs(1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bundle := &stms.Bundle{Protocol: proto, Specs: specs}
		m := bundle.Build()
		if _, err := m.RunUntilDone(0, 1<<16); err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
