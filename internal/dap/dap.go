// Package dap analyzes disjoint-access-parallelism on recorded executions.
//
// Two transactions conflict when their static data sets intersect
// (D(T1) ∩ D(T2) ≠ ∅). Two executions contend on a base object when both
// contain a primitive operation on it and at least one of those operations
// is non-trivial (updates the object's state). A TM implementation is
// strictly disjoint-access-parallel when, in every execution, α|T1 and
// α|T2 contend only if T1 and T2 conflict.
//
// Besides the strict check the package implements the weaker chain variant
// used by the paper's companion DSTM design (contention permitted whenever
// a conflict-graph path connects the two transactions), which is what the
// non-strictly-DAP protocols in the portfolio satisfy.
package dap

import (
	"fmt"

	"pcltm/internal/core"
)

// Contention records that two transactions contend on a base object.
type Contention struct {
	// T1, T2 are the contending transactions (T1 < T2 numerically).
	T1, T2 core.TxID
	// Obj is the contended base object.
	Obj core.ObjID
	// ObjName is its display name.
	ObjName string
	// Step1, Step2 are representative step indices of each side's access
	// (a non-trivial one when available).
	Step1, Step2 int
	// NonTrivial1, NonTrivial2 report which sides performed a
	// non-trivial operation on the object.
	NonTrivial1, NonTrivial2 bool
}

func (c Contention) String() string {
	return fmt.Sprintf("%s and %s contend on %s (steps #%d/#%d)", c.T1, c.T2, c.ObjName, c.Step1, c.Step2)
}

// access summarizes one transaction's use of one object.
type access struct {
	firstStep      int
	firstNonTriv   int
	hasNonTrivial  bool
	representative int
}

// Contentions lists every pair of transactions that contend on some base
// object in the execution, one record per (pair, object).
func Contentions(e *core.Execution) []Contention {
	// perObj[obj][txn] = access summary.
	perObj := make(map[core.ObjID]map[core.TxID]*access)
	var objOrder []core.ObjID
	objNames := make(map[core.ObjID]string)
	for _, s := range e.Steps {
		if s.Prim == core.PrimEvent || s.Txn == core.NoTx {
			continue
		}
		m, ok := perObj[s.Obj]
		if !ok {
			m = make(map[core.TxID]*access)
			perObj[s.Obj] = m
			objOrder = append(objOrder, s.Obj)
			objNames[s.Obj] = s.ObjName
		}
		a, ok := m[s.Txn]
		if !ok {
			a = &access{firstStep: s.Index, firstNonTriv: -1, representative: s.Index}
			m[s.Txn] = a
		}
		if s.NonTrivial() && !a.hasNonTrivial {
			a.hasNonTrivial = true
			a.firstNonTriv = s.Index
			a.representative = s.Index
		}
	}

	var out []Contention
	for _, obj := range objOrder {
		m := perObj[obj]
		ids := make([]core.TxID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sortTxIDs(ids)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a1, a2 := m[ids[i]], m[ids[j]]
				if !a1.hasNonTrivial && !a2.hasNonTrivial {
					continue
				}
				out = append(out, Contention{
					T1: ids[i], T2: ids[j],
					Obj: obj, ObjName: objNames[obj],
					Step1: a1.representative, Step2: a2.representative,
					NonTrivial1: a1.hasNonTrivial, NonTrivial2: a2.hasNonTrivial,
				})
			}
		}
	}
	return out
}

func sortTxIDs(ids []core.TxID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Conflicts reports whether the execution's specs declare the two
// transactions conflicting. Transactions without a registered spec are
// conservatively treated as conflicting with everything (no false
// violations).
func Conflicts(e *core.Execution, t1, t2 core.TxID) bool {
	s1, ok1 := e.Specs[t1]
	s2, ok2 := e.Specs[t2]
	if !ok1 || !ok2 {
		return true
	}
	return core.Conflicts(s1, s2)
}

// Violation is a strict-DAP violation: a contention between transactions
// whose data sets are disjoint.
type Violation struct {
	Contention
	// DataSet1, DataSet2 document the disjoint data sets.
	DataSet1, DataSet2 []core.Item
}

func (v Violation) String() string {
	return fmt.Sprintf("strict DAP violated: %s, yet D(%s)=%v and D(%s)=%v are disjoint",
		v.Contention, v.T1, v.DataSet1, v.T2, v.DataSet2)
}

// CheckStrict returns every strict-DAP violation in the execution.
func CheckStrict(e *core.Execution) []Violation {
	var out []Violation
	for _, c := range Contentions(e) {
		if Conflicts(e, c.T1, c.T2) {
			continue
		}
		out = append(out, Violation{
			Contention: c,
			DataSet1:   e.Specs[c.T1].DataSet(),
			DataSet2:   e.Specs[c.T2].DataSet(),
		})
	}
	return out
}

// ConflictGraph builds the execution's conflict graph: vertices are the
// transactions with specs, edges join conflicting pairs.
func ConflictGraph(e *core.Execution) map[core.TxID][]core.TxID {
	ids := e.TxIDs()
	g := make(map[core.TxID][]core.TxID, len(ids))
	for _, id := range ids {
		g[id] = nil
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ids[i], ids[j]
			sa, oka := e.Specs[a]
			sb, okb := e.Specs[b]
			if oka && okb && core.Conflicts(sa, sb) {
				g[a] = append(g[a], b)
				g[b] = append(g[b], a)
			}
		}
	}
	return g
}

// connected reports whether a path joins t1 and t2 in the conflict graph.
func connected(g map[core.TxID][]core.TxID, t1, t2 core.TxID) bool {
	if t1 == t2 {
		return true
	}
	seen := map[core.TxID]bool{t1: true}
	stack := []core.TxID{t1}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range g[cur] {
			if nxt == t2 {
				return true
			}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return false
}

// CheckChain returns the contentions not justified even by the weaker
// chain variant of disjoint-access-parallelism: the two transactions are
// not connected in the execution's conflict graph. Every strictly-DAP
// execution is chain-DAP; the DSTM-style protocols violate strict DAP but
// satisfy the chain variant, matching the paper's companion design [11].
func CheckChain(e *core.Execution) []Violation {
	g := ConflictGraph(e)
	var out []Violation
	for _, c := range Contentions(e) {
		if connected(g, c.T1, c.T2) {
			continue
		}
		v := Violation{Contention: c}
		if s, ok := e.Specs[c.T1]; ok {
			v.DataSet1 = s.DataSet()
		}
		if s, ok := e.Specs[c.T2]; ok {
			v.DataSet2 = s.DataSet()
		}
		out = append(out, v)
	}
	return out
}
