package dap

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
)

func specs() (core.TxSpec, core.TxSpec, core.TxSpec) {
	t1 := core.TxSpec{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}}
	t2 := core.TxSpec{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("y", 1)}}              // disjoint from t1
	t3 := core.TxSpec{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x"), core.W("y", 2)}} // conflicts with both
	return t1, t2, t3
}

func TestNoContentionOnTrivialAccesses(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimRead, false).
		Obj(1, 2, "o", core.PrimRead, false).
		Exec()
	if cs := Contentions(e); len(cs) != 0 {
		t.Errorf("two trivial accesses contend: %v", cs)
	}
	if vs := CheckStrict(e); len(vs) != 0 {
		t.Errorf("strict violations on trivial accesses: %v", vs)
	}
}

func TestContentionNeedsOneNonTrivial(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimRead, false).
		Exec()
	cs := Contentions(e)
	if len(cs) != 1 {
		t.Fatalf("contentions = %v, want exactly one", cs)
	}
	c := cs[0]
	if c.T1 != 1 || c.T2 != 2 || c.ObjName != "o" {
		t.Errorf("contention record wrong: %+v", c)
	}
	if !c.NonTrivial1 || c.NonTrivial2 {
		t.Errorf("non-trivial sides wrong: %+v", c)
	}
}

func TestStrictViolationOnlyForDisjointPairs(t *testing.T) {
	t1, t2, t3 := specs()
	// T1 and T3 conflict (share x): contention allowed.
	e := exectest.New().Spec(t1).Spec(t3).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(2, 3, "o", core.PrimRead, false).
		Exec()
	if vs := CheckStrict(e); len(vs) != 0 {
		t.Errorf("conflicting pair flagged: %v", vs)
	}
	// T1 and T2 are disjoint: same contention is a violation.
	e2 := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimRead, false).
		Exec()
	vs := CheckStrict(e2)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want one", vs)
	}
	if vs[0].String() == "" {
		t.Errorf("violation unprintable")
	}
}

func TestMissingSpecsAreConservative(t *testing.T) {
	e := exectest.New().
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimWrite, true).
		Exec()
	if vs := CheckStrict(e); len(vs) != 0 {
		t.Errorf("spec-less transactions flagged: %v", vs)
	}
}

func TestConflictGraphAndChainDAP(t *testing.T) {
	t1, t2, t3 := specs()
	// Chain: T1–T3–T2 (T3 conflicts with both; T1,T2 disjoint).
	e := exectest.New().Spec(t1).Spec(t2).Spec(t3).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimRead, false).
		Obj(2, 3, "p", core.PrimRead, false).
		Exec()
	g := ConflictGraph(e)
	if len(g[3]) != 2 {
		t.Errorf("T3 must neighbor both: %v", g)
	}
	if len(g[1]) != 1 || g[1][0] != 3 {
		t.Errorf("T1 neighbors = %v", g[1])
	}
	// Strict DAP violated (T1,T2 contend, disjoint) ...
	if vs := CheckStrict(e); len(vs) != 1 {
		t.Errorf("strict violations = %v", vs)
	}
	// ... but the chain through T3 justifies it under chain-DAP.
	if vs := CheckChain(e); len(vs) != 0 {
		t.Errorf("chain violations = %v, want none", vs)
	}
}

func TestChainDAPViolatedWithoutPath(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimWrite, true).
		Exec()
	if vs := CheckChain(e); len(vs) != 1 {
		t.Errorf("chain violations = %v, want one", vs)
	}
}

func TestEventStepsIgnored(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Begin(0, 1).Begin(1, 2).
		Exec()
	if cs := Contentions(e); len(cs) != 0 {
		t.Errorf("event steps produced contention: %v", cs)
	}
}

func TestMultipleObjectsReported(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimWrite, true).
		Obj(1, 2, "o", core.PrimRead, false).
		Obj(0, 1, "p", core.PrimWrite, true).
		Obj(1, 2, "p", core.PrimWrite, true).
		Exec()
	cs := Contentions(e)
	if len(cs) != 2 {
		t.Fatalf("contentions = %v, want two (one per object)", cs)
	}
	if vs := CheckStrict(e); len(vs) != 2 {
		t.Errorf("strict violations = %d, want 2", len(vs))
	}
}

func TestRepresentativeStepPrefersNonTrivial(t *testing.T) {
	t1, t2, _ := specs()
	e := exectest.New().Spec(t1).Spec(t2).
		Obj(0, 1, "o", core.PrimRead, false). // step 0: trivial
		Obj(0, 1, "o", core.PrimWrite, true). // step 1: non-trivial
		Obj(1, 2, "o", core.PrimRead, false). // step 2
		Exec()
	cs := Contentions(e)
	if len(cs) != 1 {
		t.Fatalf("contentions = %v", cs)
	}
	if cs[0].Step1 != 1 {
		t.Errorf("representative step = %d, want the non-trivial step 1", cs[0].Step1)
	}
}
