// Package exectest builds hand-crafted executions for tests: a fluent
// builder that assembles step sequences with TM-interface events and
// anonymous base-object accesses, so checker and analyzer tests can state
// scenarios directly instead of driving a protocol.
package exectest

import "pcltm/internal/core"

// Builder accumulates steps for a synthetic execution.
type Builder struct {
	steps  []core.Step
	specs  map[core.TxID]core.TxSpec
	objs   map[string]core.ObjID
	nprocs int
}

// New returns an empty builder.
func New() *Builder {
	return &Builder{
		specs:  make(map[core.TxID]core.TxSpec),
		objs:   make(map[string]core.ObjID),
		nprocs: 8,
	}
}

// NProcs overrides the machine width stamped on the execution (default 8).
func (b *Builder) NProcs(n int) *Builder {
	b.nprocs = n
	return b
}

// Spec registers a transaction spec on the resulting execution.
func (b *Builder) Spec(s core.TxSpec) *Builder {
	b.specs[s.ID] = s
	return b
}

// Ev appends a raw TM-interface event step.
func (b *Builder) Ev(p core.ProcID, t core.TxID, ev core.Event) *Builder {
	e := ev
	e.Proc = p
	e.Txn = t
	e.StepIndex = len(b.steps)
	b.steps = append(b.steps, core.Step{
		Index: e.StepIndex, Proc: p, Txn: t, Obj: core.NoObj,
		Prim: core.PrimEvent, Event: &e,
	})
	return b
}

// Obj appends a base-object access step on the named object; changed marks
// it non-trivial.
func (b *Builder) Obj(p core.ProcID, t core.TxID, name string, prim core.Prim, changed bool) *Builder {
	id, ok := b.objs[name]
	if !ok {
		id = core.ObjID(len(b.objs))
		b.objs[name] = id
	}
	b.steps = append(b.steps, core.Step{
		Index: len(b.steps), Proc: p, Txn: t, Obj: id, ObjName: name,
		Prim: prim, Changed: changed,
	})
	return b
}

// Begin appends begin invocation and ok response.
func (b *Builder) Begin(p core.ProcID, t core.TxID) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpBegin, Inv: true}).
		Ev(p, t, core.Event{Op: core.OpBegin, Status: core.StatusOK})
}

// Read appends a successful read of x returning v.
func (b *Builder) Read(p core.ProcID, t core.TxID, x core.Item, v core.Value) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpRead, Inv: true, Item: x}).
		Ev(p, t, core.Event{Op: core.OpRead, Item: x, Value: v, Status: core.StatusOK})
}

// Write appends a successful write of v to x.
func (b *Builder) Write(p core.ProcID, t core.TxID, x core.Item, v core.Value) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpWrite, Inv: true, Item: x, Value: v}).
		Ev(p, t, core.Event{Op: core.OpWrite, Item: x, Value: v, Status: core.StatusOK})
}

// Commit appends commit invocation and C_T.
func (b *Builder) Commit(p core.ProcID, t core.TxID) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpTryCommit, Inv: true}).
		Ev(p, t, core.Event{Op: core.OpTryCommit, Status: core.StatusCommitted})
}

// CommitInv appends only the commit invocation, leaving the transaction
// commit-pending.
func (b *Builder) CommitInv(p core.ProcID, t core.TxID) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpTryCommit, Inv: true})
}

// Abort appends abort invocation and A_T.
func (b *Builder) Abort(p core.ProcID, t core.TxID) *Builder {
	return b.Ev(p, t, core.Event{Op: core.OpAbortReq, Inv: true}).
		Ev(p, t, core.Event{Op: core.OpAbortReq, Status: core.StatusAborted})
}

// SeqTxn appends a whole committed transaction executed solo: begin, the
// given ops (reads carry the provided values), commit.
func (b *Builder) SeqTxn(p core.ProcID, t core.TxID, ops ...core.TxOp) *Builder {
	b.Begin(p, t)
	for _, op := range ops {
		if op.Kind == core.OpRead {
			b.Read(p, t, op.Item, op.Value)
		} else {
			b.Write(p, t, op.Item, op.Value)
		}
	}
	return b.Commit(p, t)
}

// Exec finalizes the execution.
func (b *Builder) Exec() *core.Execution {
	return &core.Execution{Steps: b.steps, Specs: b.specs, NProcs: b.nprocs}
}

// RV builds a read op that returned value v, for use with SeqTxn.
func RV(x core.Item, v core.Value) core.TxOp {
	return core.TxOp{Kind: core.OpRead, Item: x, Value: v}
}

// WV builds a write op of v to x, for use with SeqTxn.
func WV(x core.Item, v core.Value) core.TxOp { return core.W(x, v) }
