package wal

import (
	"fmt"
	"sync"
	"time"
)

// Log is an open write-ahead log: one writer goroutine owns the current
// segment, concurrent committers enqueue records through Append, and
// every flush round writes the whole queue before (at most) one fsync —
// group commit. Acknowledgement order is the partially-constrained part:
// a record is acked only once every lower sequence of its own partition
// is durable, and records of different partitions never wait for each
// other — except where a cross-partition transaction ties them: a cross
// record is acked only when its decision record is durable and every
// participant sits at the head of its own partition's release queue, so
// recovery's all-or-nothing rule (scan.go) can never swallow an
// acknowledged commit.
type Log struct {
	backend Backend
	opts    Options

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*appendReq
	closed  bool
	sealed  chan struct{} // closed when the writer has sealed and exited
	failure error         // non-nil once poisoned; wrapped into FailedError

	// acks is the per-partition release state: next[p] is the lowest
	// sequence of p not yet acknowledged, ready[p] holds durable records
	// (with their waiters) not yet releasable — stuck behind a lower
	// in-flight sequence or behind their cross transaction's stability.
	next  []uint64
	ready []map[uint64]*appendReq

	// Cross-transaction release state: decided marks decision records
	// durable, members names each open cross's participants, nextCross
	// allocates ids (monotone over the log's whole life — seeded past
	// everything the scan saw, so a stale decision can never adopt a new
	// generation's payload).
	decided   map[uint64]bool
	members   map[uint64][]CrossPart
	nextCross uint64

	// writer-only state (no lock needed).
	seg     Segment
	segSize int64
	segIdx  uint64

	stats struct {
		sync.Mutex
		Stats
	}

	reqPool sync.Pool
}

type appendReq struct {
	part     int
	seq      uint64
	cross    uint64     // non-zero: payload record of that cross transaction
	decision bool       // true: this is cross's decision record (part/seq unused)
	scratch  []byte     // payload build space, reused across pool cycles
	frame    []byte     // complete record: header + payload
	done     chan error // nil for async appends
}

// Start opens the log for appending on top of a completed Scan: it
// validates the partition count against the logged meta, creates a
// fresh segment (recovery never reopens a tail in place — the torn
// bytes stay where they fell, unreferenced), writes the meta record
// and one cut per partition whose post-gap stragglers the scan
// dropped, syncs, and launches the writer.
func Start(backend Backend, opts Options, scan *ScanResult) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Partitions <= 0 {
		return nil, fmt.Errorf("wal: Start: Partitions must be set")
	}
	if scan.Partitions > 0 && scan.Partitions != opts.Partitions {
		return nil, fmt.Errorf("wal: Start: log recorded %d partitions, store wants %d — routing would corrupt the keyspace",
			scan.Partitions, opts.Partitions)
	}
	l := &Log{
		backend:   backend,
		opts:      opts,
		sealed:    make(chan struct{}),
		next:      make([]uint64, opts.Partitions),
		ready:     make([]map[uint64]*appendReq, opts.Partitions),
		decided:   make(map[uint64]bool),
		members:   make(map[uint64][]CrossPart),
		nextCross: scan.maxCrossID,
		segIdx:    scan.nextSegIdx,
	}
	l.cond = sync.NewCond(&l.mu)
	for p := 0; p < opts.Partitions; p++ {
		l.next[p] = 1
		l.ready[p] = make(map[uint64]*appendReq)
		if p < len(scan.Horizon) {
			l.next[p] = scan.Horizon[p] + 1
		}
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	// Void every sequence past a gap so the new generation can reuse it
	// without tripping the duplicate check on the next recovery.
	for p, dropped := range scan.DroppedByPart {
		if dropped > 0 {
			if err := l.writeFrame(appendFrame(nil, cutPayload(p, scan.Horizon[p]+1))); err != nil {
				return nil, err
			}
		}
	}
	if err := l.seg.Sync(); err != nil {
		return nil, err
	}
	l.bumpStat(func(s *Stats) { s.Syncs++ })
	go l.writer()
	return l, nil
}

// Open is Scan + Start: the one-call path when the caller also wants
// the scan result for replay.
func Open(backend Backend, opts Options) (*Log, *ScanResult, error) {
	scan, err := Scan(backend)
	if err != nil {
		return nil, nil, err
	}
	if opts.Partitions <= 0 {
		opts.Partitions = scan.Partitions
	}
	l, err := Start(backend, opts, scan)
	if err != nil {
		return nil, nil, err
	}
	return l, scan, nil
}

// Ack returns the log's acknowledgement mode.
func (l *Log) Ack() AckMode { return l.opts.Ack }

// Partitions returns the partition count the log is locked to.
func (l *Log) Partitions() int { return l.opts.Partitions }

// Append hands one committed transaction's record to the log: partition
// part's seq'th logged commit, carrying nops ops in the encoded ops
// section (AppendOp). The bytes are copied before return. Depending on
// the ack mode, Append returns when the record is individually fsynced
// (AckSync), when a group fsync covers it and all lower sequences of
// its partition (AckGroup), or immediately after enqueue (AckAsync).
// A non-nil error means durability is NOT guaranteed; the error wraps
// the storage fault (FailedError) or ErrClosed.
func (l *Log) Append(part int, seq uint64, nops int, ops []byte) error {
	if part < 0 || part >= l.opts.Partitions {
		return fmt.Errorf("wal: Append: partition %d out of range", part)
	}
	req := l.getReq()
	req.part, req.seq = part, seq
	req.scratch = appendTxnPayload(req.scratch[:0], part, seq, nops, ops)
	req.frame = appendFrame(req.frame[:0], req.scratch)

	async := l.opts.Ack == AckAsync
	l.mu.Lock()
	if l.closed || l.failure != nil {
		err := l.failure
		l.mu.Unlock()
		if err != nil {
			return &FailedError{Cause: err}
		}
		return ErrClosed
	}
	done := req.done
	if async {
		req.done = nil
	}
	l.queue = append(l.queue, req)
	l.cond.Signal()
	l.mu.Unlock()
	l.bumpStat(func(s *Stats) { s.Appends++ })
	if async {
		return nil
	}
	err := <-done
	req.done = done
	l.reqPool.Put(req)
	return err
}

// AppendCross hands one cross-partition transaction to the log: every
// participant's payload record plus the decision record that commits
// them, enqueued as one unit. Participants must name distinct
// partitions. The returned wait function blocks until the whole cross
// is acknowledged — decision durable and every participant covered
// contiguously in its own partition — or reports the storage fault;
// under AckAsync it returns immediately. Splitting enqueue from wait
// lets the store release its partition locks before sleeping on the
// fsync.
func (l *Log) AppendCross(parts []CrossPart) (wait func() error, err error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("wal: AppendCross: no participants")
	}
	seen := make(map[int]bool, len(parts))
	for _, m := range parts {
		if m.Part < 0 || m.Part >= l.opts.Partitions {
			return nil, fmt.Errorf("wal: AppendCross: partition %d out of range", m.Part)
		}
		if seen[m.Part] {
			return nil, fmt.Errorf("wal: AppendCross: duplicate participant partition %d", m.Part)
		}
		seen[m.Part] = true
	}

	async := l.opts.Ack == AckAsync
	reqs := make([]*appendReq, 0, len(parts)+1)
	dones := make([]chan error, 0, len(parts)+1)

	l.mu.Lock()
	if l.closed || l.failure != nil {
		ferr := l.failure
		l.mu.Unlock()
		if ferr != nil {
			return nil, &FailedError{Cause: ferr}
		}
		return nil, ErrClosed
	}
	l.nextCross++
	id := l.nextCross
	l.mu.Unlock()

	// Build frames outside the lock; the id is already reserved.
	for _, m := range parts {
		req := l.getReq()
		req.part, req.seq, req.cross = m.Part, m.Seq, id
		req.scratch = appendCrossPayload(req.scratch[:0], id, m.Part, m.Seq, m.Nops, m.Ops)
		req.frame = appendFrame(req.frame[:0], req.scratch)
		reqs = append(reqs, req)
	}
	dec := l.getReq()
	dec.cross, dec.decision = id, true
	dec.scratch = append(dec.scratch[:0], decisionPayload(id, parts)...)
	dec.frame = appendFrame(dec.frame[:0], dec.scratch)
	reqs = append(reqs, dec)

	members := make([]CrossPart, len(parts))
	for i, m := range parts {
		members[i] = CrossPart{Part: m.Part, Seq: m.Seq}
	}

	l.mu.Lock()
	if l.closed || l.failure != nil {
		ferr := l.failure
		l.mu.Unlock()
		for _, req := range reqs {
			l.reqPool.Put(req)
		}
		if ferr != nil {
			return nil, &FailedError{Cause: ferr}
		}
		return nil, ErrClosed
	}
	l.members[id] = members
	for _, req := range reqs {
		done := req.done
		if async {
			req.done = nil
		}
		dones = append(dones, done)
		l.queue = append(l.queue, req)
	}
	l.cond.Signal()
	l.mu.Unlock()
	l.bumpStat(func(s *Stats) {
		s.Appends += uint64(len(parts))
		s.Crosses++
	})

	if async {
		return func() error { return nil }, nil
	}
	return func() error {
		var first error
		for i, done := range dones {
			err := <-done
			if err != nil && first == nil {
				first = err
			}
			reqs[i].done = done
			l.reqPool.Put(reqs[i])
		}
		return first
	}, nil
}

func (l *Log) getReq() *appendReq {
	req, _ := l.reqPool.Get().(*appendReq)
	if req == nil {
		req = &appendReq{done: make(chan error, 1)}
	}
	req.cross, req.decision = 0, false
	return req
}

// Close flushes everything queued, writes the seal record, syncs and
// closes the tail segment — the graceful-shutdown path recovery
// recognizes as clean. Idempotent; Append after Close returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.sealed
		return l.failure
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.sealed
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.stats.Lock()
	defer l.stats.Unlock()
	return l.stats.Stats
}

func (l *Log) bumpStat(fn func(*Stats)) {
	l.stats.Lock()
	fn(&l.stats.Stats)
	l.stats.Unlock()
}

// writer is the group-commit loop: take whatever the queue holds, write
// every frame, rotate if the segment overflowed, fsync once, then
// release acknowledgements in per-partition sequence order. AckSync
// narrows the batch to one record per fsync; a positive BatchWindow
// holds the fsync back so more committers join the batch.
func (l *Log) writer() {
	defer close(l.sealed)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed && l.failure == nil {
			l.cond.Wait()
		}
		if l.failure != nil {
			l.failQueueLocked()
			l.mu.Unlock()
			return
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			l.sealAndExit()
			return
		}
		if l.opts.BatchWindow > 0 && l.opts.Ack != AckSync && !l.closed {
			// The latency-vs-batch-size knob: sleep out the window before
			// collecting, so at most one fsync happens per window under
			// load. Committers already queued wait at most the window.
			l.mu.Unlock()
			time.Sleep(l.opts.BatchWindow)
			l.mu.Lock()
			if l.failure != nil {
				l.failQueueLocked()
				l.mu.Unlock()
				return
			}
		}
		var batch []*appendReq
		if l.opts.Ack == AckSync {
			batch = l.queue[:1:1]
			l.queue = l.queue[1:]
		} else {
			batch = l.queue
			l.queue = nil
		}
		l.mu.Unlock()

		if err := l.flush(batch); err != nil {
			l.poison(err, batch)
			return
		}
	}
}

// flush writes one batch and syncs once, then releases acks.
func (l *Log) flush(batch []*appendReq) error {
	for _, req := range batch {
		if err := l.writeFrame(req.frame); err != nil {
			return err
		}
	}
	if l.segSize > l.opts.SegmentBytes {
		// Rotate at a flush boundary: sync the full segment first so a
		// non-final segment can never legitimately end mid-record.
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.bumpStat(func(s *Stats) { s.Syncs++ })
		_ = l.seg.Close()
		l.segIdx++
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	l.bumpStat(func(s *Stats) {
		s.Syncs++
		s.Batches++
		if uint64(len(batch)) > s.MaxBatch {
			s.MaxBatch = uint64(len(batch))
		}
	})
	l.release(batch)
	return nil
}

// release marks the batch durable and acks every waiter whose partition
// prefix is now complete — including waiters parked by earlier batches.
// Cross records are the coupling point: they release only when their
// decision record is durable AND every participant is simultaneously at
// the head of its own partition's queue, mirroring recovery's
// all-or-nothing fixpoint so an acked commit can never sit past a
// recovery-time void.
func (l *Log) release(batch []*appendReq) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, req := range batch {
		if req.decision {
			l.decided[req.cross] = true
			l.ackLocked(req.done)
			continue
		}
		p := req.part
		if req.seq < l.next[p] {
			// A sequence below next is a store-layer bug (duplicate
			// stamp); ack it rather than wedge the caller.
			l.ackLocked(req.done)
			continue
		}
		l.ready[p][req.seq] = req
	}
	l.advanceLocked()
}

// advanceLocked runs the release fixpoint over every partition.
func (l *Log) advanceLocked() {
	for progress := true; progress; {
		progress = false
		for p := range l.ready {
			for {
				req, ok := l.ready[p][l.next[p]]
				if !ok {
					break
				}
				if req.cross == 0 {
					delete(l.ready[p], l.next[p])
					l.ackLocked(req.done)
					l.next[p]++
					progress = true
					continue
				}
				if !l.releaseCrossLocked(req.cross) {
					break
				}
				progress = true
			}
		}
	}
}

// releaseCrossLocked acks a whole cross transaction if it is stable:
// decision durable, every participant durable and at the head of its
// partition's release queue. All participants advance together.
func (l *Log) releaseCrossLocked(id uint64) bool {
	if !l.decided[id] {
		return false
	}
	members := l.members[id]
	for _, m := range members {
		if l.next[m.Part] != m.Seq {
			return false
		}
		if _, ok := l.ready[m.Part][m.Seq]; !ok {
			return false
		}
	}
	for _, m := range members {
		req := l.ready[m.Part][m.Seq]
		delete(l.ready[m.Part], m.Seq)
		l.ackLocked(req.done)
		l.next[m.Part]++
	}
	delete(l.members, id)
	delete(l.decided, id)
	return true
}

func (l *Log) ackLocked(done chan error) {
	if done != nil {
		done <- nil
	}
}

// poison records the storage fault, fails the triggering batch, every
// parked waiter and everything queued, and exits the writer.
func (l *Log) poison(err error, batch []*appendReq) {
	l.bumpStat(func(s *Stats) { s.Failed = 1 })
	l.mu.Lock()
	l.failure = err
	for _, req := range batch {
		if req.done != nil {
			req.done <- &FailedError{Cause: err}
		}
	}
	l.failQueueLocked()
	l.mu.Unlock()
}

// failQueueLocked drains queue and parked waiters with the failure.
func (l *Log) failQueueLocked() {
	for _, req := range l.queue {
		if req.done != nil {
			req.done <- &FailedError{Cause: l.failure}
		}
	}
	l.queue = nil
	for p := range l.ready {
		for seq, req := range l.ready[p] {
			if req.done != nil {
				req.done <- &FailedError{Cause: l.failure}
			}
			delete(l.ready[p], seq)
		}
	}
}

// sealAndExit writes the clean-shutdown marker.
func (l *Log) sealAndExit() {
	if err := l.writeFrame(appendFrame(nil, sealPayload())); err != nil {
		l.poison(err, nil)
		return
	}
	if err := l.seg.Sync(); err != nil {
		l.poison(err, nil)
		return
	}
	l.bumpStat(func(s *Stats) { s.Syncs++ })
	_ = l.seg.Close()
}

// openSegment creates the segIdx'th segment and writes its meta record.
func (l *Log) openSegment() error {
	seg, err := l.backend.Create(segName(l.segIdx))
	if err != nil {
		return err
	}
	l.seg, l.segSize = seg, 0
	l.bumpStat(func(s *Stats) { s.Segments++ })
	if err := l.seg.Append([]byte(Magic)); err != nil {
		return err
	}
	l.segSize += int64(len(Magic))
	return l.writeFrame(appendFrame(nil, metaPayload(l.opts.Partitions)))
}

// writeFrame appends one framed record to the current segment.
func (l *Log) writeFrame(frame []byte) error {
	if err := l.seg.Append(frame); err != nil {
		return err
	}
	l.segSize += int64(len(frame))
	l.bumpStat(func(s *Stats) {
		s.Records++
		s.Bytes += uint64(len(frame))
	})
	return nil
}
