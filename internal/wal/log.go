package wal

import (
	"fmt"
	"sync"
)

// Log is an open write-ahead log: one writer goroutine owns the current
// segment, concurrent committers enqueue records through Append, and
// every flush round writes the whole queue before (at most) one fsync —
// group commit. Acknowledgement order is the partially-constrained part:
// a record is acked only once every lower sequence of its own partition
// is durable, and records of different partitions never wait for each
// other.
type Log struct {
	backend Backend
	opts    Options

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*appendReq
	closed  bool
	sealed  chan struct{} // closed when the writer has sealed and exited
	failure error         // non-nil once poisoned; wrapped into FailedError

	// acks is the per-partition release state: next[p] is the lowest
	// sequence of p not yet durable, parked[p] holds durable records
	// (and their waiters) stuck behind a lower in-flight sequence.
	next   []uint64
	parked []map[uint64]chan error

	// writer-only state (no lock needed).
	seg     Segment
	segSize int64
	segIdx  uint64

	stats struct {
		sync.Mutex
		Stats
	}

	reqPool sync.Pool
}

type appendReq struct {
	part    int
	seq     uint64
	scratch []byte     // payload build space, reused across pool cycles
	frame   []byte     // complete record: header + payload
	done    chan error // nil for async appends
}

// Start opens the log for appending on top of a completed Scan: it
// validates the partition count against the logged meta, creates a
// fresh segment (recovery never reopens a tail in place — the torn
// bytes stay where they fell, unreferenced), writes the meta record
// and one cut per partition whose post-gap stragglers the scan
// dropped, syncs, and launches the writer.
func Start(backend Backend, opts Options, scan *ScanResult) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Partitions <= 0 {
		return nil, fmt.Errorf("wal: Start: Partitions must be set")
	}
	if scan.Partitions > 0 && scan.Partitions != opts.Partitions {
		return nil, fmt.Errorf("wal: Start: log recorded %d partitions, store wants %d — routing would corrupt the keyspace",
			scan.Partitions, opts.Partitions)
	}
	l := &Log{
		backend: backend,
		opts:    opts,
		sealed:  make(chan struct{}),
		next:    make([]uint64, opts.Partitions),
		parked:  make([]map[uint64]chan error, opts.Partitions),
		segIdx:  scan.nextSegIdx,
	}
	l.cond = sync.NewCond(&l.mu)
	for p := 0; p < opts.Partitions; p++ {
		l.next[p] = 1
		l.parked[p] = make(map[uint64]chan error)
		if p < len(scan.Horizon) {
			l.next[p] = scan.Horizon[p] + 1
		}
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	// Void every sequence past a gap so the new generation can reuse it
	// without tripping the duplicate check on the next recovery.
	for p, dropped := range scan.DroppedByPart {
		if dropped > 0 {
			if err := l.writeFrame(appendFrame(nil, cutPayload(p, scan.Horizon[p]+1))); err != nil {
				return nil, err
			}
		}
	}
	if err := l.seg.Sync(); err != nil {
		return nil, err
	}
	l.bumpStat(func(s *Stats) { s.Syncs++ })
	go l.writer()
	return l, nil
}

// Open is Scan + Start: the one-call path when the caller also wants
// the scan result for replay.
func Open(backend Backend, opts Options) (*Log, *ScanResult, error) {
	scan, err := Scan(backend)
	if err != nil {
		return nil, nil, err
	}
	if opts.Partitions <= 0 {
		opts.Partitions = scan.Partitions
	}
	l, err := Start(backend, opts, scan)
	if err != nil {
		return nil, nil, err
	}
	return l, scan, nil
}

// Ack returns the log's acknowledgement mode.
func (l *Log) Ack() AckMode { return l.opts.Ack }

// Partitions returns the partition count the log is locked to.
func (l *Log) Partitions() int { return l.opts.Partitions }

// Append hands one committed transaction's record to the log: partition
// part's seq'th logged commit, carrying nops ops in the encoded ops
// section (AppendOp). The bytes are copied before return. Depending on
// the ack mode, Append returns when the record is individually fsynced
// (AckSync), when a group fsync covers it and all lower sequences of
// its partition (AckGroup), or immediately after enqueue (AckAsync).
// A non-nil error means durability is NOT guaranteed; the error wraps
// the storage fault (FailedError) or ErrClosed.
func (l *Log) Append(part int, seq uint64, nops int, ops []byte) error {
	if part < 0 || part >= l.opts.Partitions {
		return fmt.Errorf("wal: Append: partition %d out of range", part)
	}
	req, _ := l.reqPool.Get().(*appendReq)
	if req == nil {
		req = &appendReq{done: make(chan error, 1)}
	}
	req.part, req.seq = part, seq
	req.scratch = appendTxnPayload(req.scratch[:0], part, seq, nops, ops)
	req.frame = appendFrame(req.frame[:0], req.scratch)

	async := l.opts.Ack == AckAsync
	l.mu.Lock()
	if l.closed || l.failure != nil {
		err := l.failure
		l.mu.Unlock()
		if err != nil {
			return &FailedError{Cause: err}
		}
		return ErrClosed
	}
	done := req.done
	if async {
		req.done = nil
	}
	l.queue = append(l.queue, req)
	l.cond.Signal()
	l.mu.Unlock()
	l.bumpStat(func(s *Stats) { s.Appends++ })
	if async {
		return nil
	}
	err := <-done
	req.done = done
	l.reqPool.Put(req)
	return err
}

// Close flushes everything queued, writes the seal record, syncs and
// closes the tail segment — the graceful-shutdown path recovery
// recognizes as clean. Idempotent; Append after Close returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.sealed
		return l.failure
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.sealed
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.stats.Lock()
	defer l.stats.Unlock()
	return l.stats.Stats
}

func (l *Log) bumpStat(fn func(*Stats)) {
	l.stats.Lock()
	fn(&l.stats.Stats)
	l.stats.Unlock()
}

// writer is the group-commit loop: take whatever the queue holds, write
// every frame, rotate if the segment overflowed, fsync once, then
// release acknowledgements in per-partition sequence order. AckSync
// narrows the batch to one record per fsync.
func (l *Log) writer() {
	defer close(l.sealed)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed && l.failure == nil {
			l.cond.Wait()
		}
		if l.failure != nil {
			l.failQueueLocked()
			l.mu.Unlock()
			return
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			l.sealAndExit()
			return
		}
		var batch []*appendReq
		if l.opts.Ack == AckSync {
			batch = l.queue[:1:1]
			l.queue = l.queue[1:]
		} else {
			batch = l.queue
			l.queue = nil
		}
		l.mu.Unlock()

		if err := l.flush(batch); err != nil {
			l.poison(err, batch)
			return
		}
	}
}

// flush writes one batch and syncs once, then releases acks.
func (l *Log) flush(batch []*appendReq) error {
	for _, req := range batch {
		if err := l.writeFrame(req.frame); err != nil {
			return err
		}
	}
	if l.segSize > l.opts.SegmentBytes {
		// Rotate at a flush boundary: sync the full segment first so a
		// non-final segment can never legitimately end mid-record.
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.bumpStat(func(s *Stats) { s.Syncs++ })
		_ = l.seg.Close()
		l.segIdx++
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	l.bumpStat(func(s *Stats) {
		s.Syncs++
		s.Batches++
		if uint64(len(batch)) > s.MaxBatch {
			s.MaxBatch = uint64(len(batch))
		}
	})
	l.release(batch)
	return nil
}

// release marks the batch durable and acks every waiter whose partition
// prefix is now complete — including waiters parked by earlier batches.
func (l *Log) release(batch []*appendReq) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, req := range batch {
		p := req.part
		if req.seq == l.next[p] {
			l.ackLocked(req.done)
			l.next[p]++
			for {
				done, ok := l.parked[p][l.next[p]]
				if !ok {
					break
				}
				delete(l.parked[p], l.next[p])
				l.ackLocked(done)
				l.next[p]++
			}
		} else if req.seq > l.next[p] {
			l.parked[p][req.seq] = req.done
		} else {
			// A sequence below next is a store-layer bug (duplicate
			// stamp); ack it rather than wedge the caller.
			l.ackLocked(req.done)
		}
	}
}

func (l *Log) ackLocked(done chan error) {
	if done != nil {
		done <- nil
	}
}

// poison records the storage fault, fails the triggering batch, every
// parked waiter and everything queued, and exits the writer.
func (l *Log) poison(err error, batch []*appendReq) {
	l.bumpStat(func(s *Stats) { s.Failed = 1 })
	l.mu.Lock()
	l.failure = err
	for _, req := range batch {
		if req.done != nil {
			req.done <- &FailedError{Cause: err}
		}
	}
	l.failQueueLocked()
	l.mu.Unlock()
}

// failQueueLocked drains queue and parked waiters with the failure.
func (l *Log) failQueueLocked() {
	for _, req := range l.queue {
		if req.done != nil {
			req.done <- &FailedError{Cause: l.failure}
		}
	}
	l.queue = nil
	for p := range l.parked {
		for seq, done := range l.parked[p] {
			if done != nil {
				done <- &FailedError{Cause: l.failure}
			}
			delete(l.parked[p], seq)
		}
	}
}

// sealAndExit writes the clean-shutdown marker.
func (l *Log) sealAndExit() {
	if err := l.writeFrame(appendFrame(nil, sealPayload())); err != nil {
		l.poison(err, nil)
		return
	}
	if err := l.seg.Sync(); err != nil {
		l.poison(err, nil)
		return
	}
	l.bumpStat(func(s *Stats) { s.Syncs++ })
	_ = l.seg.Close()
}

// openSegment creates the segIdx'th segment and writes its meta record.
func (l *Log) openSegment() error {
	seg, err := l.backend.Create(segName(l.segIdx))
	if err != nil {
		return err
	}
	l.seg, l.segSize = seg, 0
	l.bumpStat(func(s *Stats) { s.Segments++ })
	if err := l.seg.Append([]byte(Magic)); err != nil {
		return err
	}
	l.segSize += int64(len(Magic))
	return l.writeFrame(appendFrame(nil, metaPayload(l.opts.Partitions)))
}

// writeFrame appends one framed record to the current segment.
func (l *Log) writeFrame(frame []byte) error {
	if err := l.seg.Append(frame); err != nil {
		return err
	}
	l.segSize += int64(len(frame))
	l.bumpStat(func(s *Stats) {
		s.Records++
		s.Bytes += uint64(len(frame))
	})
	return nil
}
