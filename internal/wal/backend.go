package wal

import (
	"fmt"
	"sort"
	"sync"
)

// Backend abstracts the storage medium behind the log — the provider
// seam that lets tests run on memory, production on files, and fault
// injection on a wrapper around either. Implementations must keep List
// in lexical name order; segment names are generated so lexical order
// is creation order.
type Backend interface {
	// Create opens a fresh segment for appending. Creating a name that
	// already exists is an error — segments are immutable once sealed.
	Create(name string) (Segment, error)
	// Load returns the full content of an existing segment.
	Load(name string) ([]byte, error)
	// List returns existing segment names in lexical order.
	List() ([]string, error)
}

// Segment is one append-only storage unit.
type Segment interface {
	// Append writes b at the end of the segment. Data is durable only
	// after a successful Sync.
	Append(b []byte) error
	// Sync makes everything appended so far durable.
	Sync() error
	// Close releases the segment; it does not imply Sync.
	Close() error
}

// segName formats the idx'th segment's name; lexical order == numeric
// order up to 16 digits.
func segName(idx uint64) string { return fmt.Sprintf("wal-%016d.seg", idx) }

// MemBackend is the in-memory backend: segments are byte slices guarded
// by one mutex. It models durability honestly — each segment tracks its
// synced prefix, and Crash discards everything after it — so recovery
// tests exercise the same torn-tail geometry a real disk produces.
type MemBackend struct {
	mu   sync.Mutex
	segs map[string]*memSegment
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{segs: make(map[string]*memSegment)}
}

type memSegment struct {
	b      *MemBackend
	buf    []byte
	synced int  // bytes guaranteed to survive Crash
	lost   bool // a dropped fsync: synced never advances again
}

// Create implements Backend.
func (b *MemBackend) Create(name string) (Segment, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.segs[name]; ok {
		return nil, fmt.Errorf("wal: mem: segment %q exists", name)
	}
	s := &memSegment{b: b}
	b.segs[name] = s
	return s, nil
}

// Load implements Backend.
func (b *MemBackend) Load(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.segs[name]
	if !ok {
		return nil, fmt.Errorf("wal: mem: no segment %q", name)
	}
	return append([]byte(nil), s.buf...), nil
}

// List implements Backend.
func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.segs))
	for n := range b.segs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *memSegment) Append(p []byte) error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.buf = append(s.buf, p...)
	return nil
}

func (s *memSegment) Sync() error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if !s.lost {
		s.synced = len(s.buf)
	}
	return nil
}

func (s *memSegment) Close() error { return nil }

// Crash simulates power loss: every segment is truncated to its synced
// prefix plus keep extra unsynced bytes (0 = synced data only, -1 =
// keep everything buffered — a lucky crash). The backend stays usable
// afterwards, standing in for the disk as the next process finds it.
func (b *MemBackend) Crash(keep int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.segs {
		if keep < 0 {
			continue
		}
		cut := s.synced + keep
		if cut < len(s.buf) {
			s.buf = s.buf[:cut]
		}
	}
}

// Corrupt flips one bit at off in the named segment — the fixture hook
// for mid-log corruption tests.
func (b *MemBackend) Corrupt(name string, off int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.segs[name]
	if !ok || off >= len(s.buf) {
		return fmt.Errorf("wal: mem: cannot corrupt %q at %d", name, off)
	}
	s.buf[off] ^= 0x40
	return nil
}

// Truncate cuts the named segment to n bytes — the torn-tail fixture
// hook.
func (b *MemBackend) Truncate(name string, n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.segs[name]
	if !ok || n > len(s.buf) {
		return fmt.Errorf("wal: mem: cannot truncate %q to %d", name, n)
	}
	s.buf = s.buf[:n]
	if s.synced > n {
		s.synced = n
	}
	return nil
}

// Clone copies the backend's current durable image (what a crash right
// now would leave) into a fresh backend — the crash-point sweep uses it
// to recover "the disk" while the original log keeps running.
func (b *MemBackend) Clone(keep int) *MemBackend {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := NewMemBackend()
	for name, s := range b.segs {
		cut := len(s.buf)
		if keep >= 0 && s.synced+keep < cut {
			cut = s.synced + keep
		}
		out.segs[name] = &memSegment{b: out, buf: append([]byte(nil), s.buf[:cut]...), synced: cut}
	}
	return out
}

// Duplicate copies segment src to name dst verbatim — the duplicated-
// segment fixture hook.
func (b *MemBackend) Duplicate(src, dst string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.segs[src]
	if !ok {
		return fmt.Errorf("wal: mem: no segment %q", src)
	}
	if _, ok := b.segs[dst]; ok {
		return fmt.Errorf("wal: mem: segment %q exists", dst)
	}
	b.segs[dst] = &memSegment{b: b, buf: append([]byte(nil), s.buf...), synced: len(s.buf)}
	return nil
}
