// Package wal is the durable commit log of the partitioned store: a
// checksummed, segmented write-ahead log with group commit, pluggable
// storage backends, and crash-fault injection built in from day one.
//
// The design follows the shape the rest of this repo gives the PCL
// trade-off. A totally ordered log would serialize every committer on
// one append point — the durability analogue of the global version
// clock. Instead the log is *partially constrained* ("Guaranteeing
// Recoverability via Partially Constrained Transaction Logs",
// PAPERS.md): each record carries a (partition, sequence) stamp, the
// sequence is dense per partition and assigned inside the committing
// transaction itself (store/durable.go), and the physical append order
// in the segments is unconstrained. Recovery sorts per partition and
// replays each partition's contiguous sequence prefix; records of
// different partitions never constrain each other, exactly mirroring
// the store's claim that disjoint-partition transactions share no
// concurrency-control state.
//
// Group commit is the second half of the same trade-off: concurrent
// committers hand their records to one writer goroutine, which flushes
// whatever has accumulated with a single fsync and then acknowledges
// the whole batch (AckGroup). AckSync degrades to one fsync per record
// — the honest naive baseline E10 measures against — and AckAsync
// acknowledges on enqueue, trading the durability of the unsynced tail
// for throughput. Acknowledgement is released in per-partition sequence
// order (a record is acked only when every lower sequence of its
// partition is durable), so an acked commit can never be lost to a
// recovery-time gap truncation: gaps only ever swallow commits whose
// callers were still waiting.
//
// Storage is behind the Backend interface: MemBackend for tests and
// crash simulation, FileBackend with real fsync for production, and
// FailBackend — a failpoint-style wrapper that tears a record
// mid-write, fails or silently drops an fsync, or kills the "process"
// at a numbered crash point — so every recovery path in this package
// was written against injected crashes, not hoped about.
package wal

import (
	"errors"
	"fmt"
	"time"
)

// AckMode selects when Append acknowledges durability.
type AckMode int

const (
	// AckGroup batches concurrent appends into one fsync and returns
	// after that fsync covers the record and all lower sequences of its
	// partition — group commit, the default.
	AckGroup AckMode = iota
	// AckSync gives every record its own fsync: maximal latency, the
	// baseline group commit is measured against.
	AckSync
	// AckAsync returns as soon as the record is queued; the background
	// flush still runs, but a crash can lose the unsynced tail. The
	// recovery gap rule keeps even that loss prefix-shaped per
	// partition.
	AckAsync
)

var ackNames = [...]string{"group", "sync", "async"}

// String returns the mode name ("group", "sync", "async").
func (m AckMode) String() string {
	if m < 0 || int(m) >= len(ackNames) {
		return fmt.Sprintf("ack(%d)", int(m))
	}
	return ackNames[m]
}

// AckModes lists all acknowledgement modes.
func AckModes() []AckMode { return []AckMode{AckGroup, AckSync, AckAsync} }

// AckByName resolves a mode name.
func AckByName(s string) (AckMode, bool) {
	for _, m := range AckModes() {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// Options sizes a Log.
type Options struct {
	// Ack is the acknowledgement mode (default AckGroup).
	Ack AckMode
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this many bytes (default 4 MiB).
	SegmentBytes int64
	// Partitions is stamped into every segment's meta record so a
	// reopened log refuses a store with different routing. Required on
	// first open; later opens must match the logged value.
	Partitions int
	// BatchWindow, when positive, holds each group-commit fsync back by
	// this long so more concurrent committers join the batch: fsync at
	// most once per window under load, at the price of up to one window
	// of added commit latency. Ignored under AckSync (whose whole point
	// is one fsync per record).
	BatchWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: closed")

// FailedError poisons the log after a storage fault: once a write or
// fsync errors, no later acknowledgement can be trusted, so every
// pending and future Append fails with the original cause.
type FailedError struct{ Cause error }

func (e *FailedError) Error() string { return "wal: log failed: " + e.Cause.Error() }
func (e *FailedError) Unwrap() error { return e.Cause }

// CorruptError is recovery's hard stop: a record in the durable part of
// the log (anything but the final segment's final, truncatable tail)
// failed its checksum or structure, with the witness pinpointing it.
// Torn tails are NOT corruption — they truncate cleanly; see Scan.
type CorruptError struct {
	Segment string // segment name
	Offset  int64  // byte offset of the bad record
	Reason  string // what failed (checksum, structure, duplicate, meta)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at %s+%d", e.Reason, e.Segment, e.Offset)
}

// Stats snapshots a Log's counters.
type Stats struct {
	// Appends counts Append calls accepted; Records counts records
	// physically written (appends plus cuts, seals and metas).
	Appends uint64 `json:"appends"`
	Records uint64 `json:"records"`
	// Syncs counts backend fsyncs; Appends/Syncs is the realized group
	// commit amortization.
	Syncs uint64 `json:"syncs"`
	// Batches counts writer flush rounds; MaxBatch is the largest
	// number of appends one fsync covered.
	Batches  uint64 `json:"batches"`
	MaxBatch uint64 `json:"max_batch"`
	// Bytes is the payload volume written; Segments counts segments
	// created over the log's life (including recovered ones).
	Bytes    uint64 `json:"bytes"`
	Segments uint64 `json:"segments"`
	// Crosses counts cross-partition transactions appended (each one
	// carries one payload record per participant plus a decision
	// record).
	Crosses uint64 `json:"crosses"`
	// Failed is 1 once the log is poisoned by a storage fault.
	Failed uint64 `json:"failed"`
}
