package wal

import (
	"errors"
	"sync"
)

// ErrInjectedCrash is the error every backend operation returns after a
// failpoint fired: the "process" is dead as far as the log can tell,
// and only recovery over the surviving image makes progress.
var ErrInjectedCrash = errors.New("wal: injected crash")

// ErrInjectedSyncFail is returned by the one Sync a FailSync failpoint
// targets (the fsync fails loudly but the process survives — the log
// poisons itself in response).
var ErrInjectedSyncFail = errors.New("wal: injected fsync failure")

// FailKind selects what a failpoint does when its trigger fires.
type FailKind int

const (
	// FailCrash kills the process at the trigger point: the triggering
	// operation (and everything after it) fails with ErrInjectedCrash
	// and leaves no bytes behind.
	FailCrash FailKind = iota
	// FailTear writes only the first TearBytes bytes of the triggering
	// append, then crashes — the torn-record geometry.
	FailTear
	// FailSync makes the triggering Sync return an error (no crash; the
	// log must poison itself rather than ack on a failed fsync).
	FailSync
	// FailLostSync makes the triggering Sync *lie*: it returns success
	// but the segment's durable horizon does not advance, so a later
	// crash drops data an fsync claimed to cover — the reordered/absorbed
	// fsync fault. Requires a *MemBackend underneath (only it models the
	// durable horizon).
	FailLostSync
)

// FailPoint arms one fault: the Nth counted operation (1-based, counted
// across appends, syncs and creates in wrapper call order) triggers
// Kind.
type FailPoint struct {
	Kind FailKind
	// N is the global operation number that triggers the fault.
	N uint64
	// TearBytes is how much of the triggering append survives
	// (FailTear).
	TearBytes int
}

// FailBackend wraps a Backend with numbered crash points. Every
// Append/Sync/Create increments one shared counter; when the counter
// reaches the armed FailPoint's N, the fault fires. After a crash-kind
// fault, every operation returns ErrInjectedCrash — the surviving bytes
// (plus whatever the inner backend's durability model keeps) are the
// image recovery runs on.
type FailBackend struct {
	inner Backend

	mu      sync.Mutex
	point   FailPoint
	armed   bool
	ops     uint64
	crashed bool
}

// NewFailBackend wraps inner with no fault armed.
func NewFailBackend(inner Backend) *FailBackend {
	return &FailBackend{inner: inner}
}

// Arm installs the failpoint and resets the operation counter.
func (b *FailBackend) Arm(p FailPoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.point, b.armed, b.ops, b.crashed = p, true, 0, false
}

// Ops returns how many counted operations have run since Arm — running
// a workload once with no fault armed measures how many numbered crash
// points it exposes.
func (b *FailBackend) Ops() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops
}

// Crashed reports whether a crash-kind fault has fired.
func (b *FailBackend) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

// step counts one operation and reports which fault, if any, it must
// apply.
func (b *FailBackend) step() (FailKind, int, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed {
		return 0, 0, false, ErrInjectedCrash
	}
	b.ops++
	if !b.armed || b.ops != b.point.N {
		return 0, 0, false, nil
	}
	switch b.point.Kind {
	case FailCrash, FailTear:
		b.crashed = true
	}
	return b.point.Kind, b.point.TearBytes, true, nil
}

// Create implements Backend.
func (b *FailBackend) Create(name string) (Segment, error) {
	kind, _, fired, err := b.step()
	if err != nil {
		return nil, err
	}
	if fired && (kind == FailCrash || kind == FailTear) {
		return nil, ErrInjectedCrash
	}
	s, err := b.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &failSegment{b: b, inner: s}, nil
}

// Load implements Backend (reads are recovery's business and never
// count as crash points).
func (b *FailBackend) Load(name string) ([]byte, error) { return b.inner.Load(name) }

// List implements Backend.
func (b *FailBackend) List() ([]string, error) { return b.inner.List() }

type failSegment struct {
	b     *FailBackend
	inner Segment
}

func (s *failSegment) Append(p []byte) error {
	kind, tear, fired, err := s.b.step()
	if err != nil {
		return err
	}
	if fired {
		switch kind {
		case FailCrash:
			return ErrInjectedCrash
		case FailTear:
			if tear > len(p) {
				tear = len(p)
			}
			_ = s.inner.Append(p[:tear])
			return ErrInjectedCrash
		}
	}
	return s.inner.Append(p)
}

func (s *failSegment) Sync() error {
	kind, _, fired, err := s.b.step()
	if err != nil {
		return err
	}
	if fired {
		switch kind {
		case FailCrash, FailTear:
			// A tear point landing on a sync is just a crash there.
			return ErrInjectedCrash
		case FailSync:
			return ErrInjectedSyncFail
		case FailLostSync:
			if ms, ok := s.inner.(*memSegment); ok {
				ms.b.mu.Lock()
				ms.lost = true
				ms.b.mu.Unlock()
				return nil
			}
			return ErrInjectedSyncFail
		}
	}
	return s.inner.Sync()
}

func (s *failSegment) Close() error { return s.inner.Close() }
