package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// crossOps builds a one-op ops section for participant p of cross c.
func crossOps(c uint64, p int) []byte {
	return AppendOp(nil, false, []byte(fmt.Sprintf("c%d", c)), []byte(fmt.Sprintf("p%d", p)))
}

// appendCrossN appends one cross transaction over the given (part, seq)
// members and waits for the acknowledgement.
func appendCrossN(t *testing.T, l *Log, members []CrossPart) {
	t.Helper()
	wait, err := l.AppendCross(members)
	if err != nil {
		t.Fatalf("AppendCross: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("AppendCross wait: %v", err)
	}
}

func TestCrossRoundTrip(t *testing.T) {
	for _, ack := range AckModes() {
		t.Run(ack.String(), func(t *testing.T) {
			b := NewMemBackend()
			l := mustStart(t, b, Options{Partitions: 4, Ack: ack})
			appendN(t, l, 0, 1, 2)
			appendN(t, l, 2, 1, 1)
			appendCrossN(t, l, []CrossPart{
				{Part: 0, Seq: 3, Nops: 1, Ops: crossOps(1, 0)},
				{Part: 1, Seq: 1, Nops: 1, Ops: crossOps(1, 1)},
				{Part: 3, Seq: 1, Nops: 1, Ops: crossOps(1, 3)},
			})
			appendN(t, l, 1, 2, 4)
			appendCrossN(t, l, []CrossPart{
				{Part: 2, Seq: 2, Nops: 1, Ops: crossOps(2, 2)},
				{Part: 3, Seq: 2, Nops: 1, Ops: crossOps(2, 3)},
			})
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if st := l.Stats(); st.Crosses != 2 {
				t.Errorf("Stats.Crosses = %d, want 2", st.Crosses)
			}
			scan, err := Scan(b)
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if !scan.Clean {
				t.Error("sealed log not Clean")
			}
			if got, want := fmt.Sprint(scan.Horizon), "[3 4 2 2]"; got != want {
				t.Errorf("Horizon = %s, want %s", got, want)
			}
			if scan.CrossReplayed != 2 || scan.CrossVoided != 0 {
				t.Errorf("cross replayed/voided = %d/%d, want 2/0", scan.CrossReplayed, scan.CrossVoided)
			}
			var crossRecs int
			for _, r := range scan.Records {
				if r.CrossID != 0 {
					crossRecs++
					if len(r.Ops) != 1 {
						t.Errorf("cross record %d/%d lost its ops", r.Part, r.Seq)
					}
				}
			}
			if crossRecs != 5 {
				t.Errorf("cross payload records replayed = %d, want 5", crossRecs)
			}
		})
	}
}

func TestCrossAckedSurvivesCrash(t *testing.T) {
	// Once AppendCross's wait returns nil in group mode, a crash keeping
	// only synced bytes must preserve the whole cross transaction.
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 2, Ack: AckGroup})
	appendN(t, l, 0, 1, 2)
	appendCrossN(t, l, []CrossPart{
		{Part: 0, Seq: 3, Nops: 1, Ops: crossOps(1, 0)},
		{Part: 1, Seq: 1, Nops: 1, Ops: crossOps(1, 1)},
	})
	scan, err := Scan(b.Clone(0))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 3 || scan.Horizon[1] != 1 {
		t.Errorf("acked cross not durable: horizons %v", scan.Horizon)
	}
	if scan.CrossReplayed != 1 || scan.CrossVoided != 0 {
		t.Errorf("cross replayed/voided = %d/%d, want 1/0", scan.CrossReplayed, scan.CrossVoided)
	}
	_ = l.Close()
}

func TestCrossRejectsBadMembers(t *testing.T) {
	l := mustStart(t, NewMemBackend(), Options{Partitions: 2})
	if _, err := l.AppendCross(nil); err == nil {
		t.Error("AppendCross with no members succeeded")
	}
	if _, err := l.AppendCross([]CrossPart{{Part: 5, Seq: 1}}); err == nil {
		t.Error("AppendCross with out-of-range partition succeeded")
	}
	if _, err := l.AppendCross([]CrossPart{{Part: 0, Seq: 1}, {Part: 0, Seq: 2}}); err == nil {
		t.Error("AppendCross with duplicate participant partition succeeded")
	}
	_ = l.Close()
}

// forge writes one synced segment holding the given record payloads
// (after magic; the caller includes the meta payload).
func forge(t *testing.T, b *MemBackend, name string, payloads ...[]byte) {
	t.Helper()
	seg, err := b.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if err := seg.Append([]byte(Magic)); err != nil {
		t.Fatalf("Append magic: %v", err)
	}
	for _, p := range payloads {
		if err := seg.Append(appendFrame(nil, p)); err != nil {
			t.Fatalf("Append frame: %v", err)
		}
	}
	if err := seg.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestCrossUndecidedVoidsWhole(t *testing.T) {
	// Both participants' payloads are durable but the decision record
	// never made it: the crash window between payload appends and the
	// decision fsync. Replaying either share would be a half (or
	// un-acked whole) cross commit — recovery must void both.
	b := NewMemBackend()
	forge(t, b, "wal-0000000000000000.seg",
		metaPayload(2),
		appendCrossPayload(nil, 7, 0, 1, 1, crossOps(7, 0)),
		appendCrossPayload(nil, 7, 1, 1, 1, crossOps(7, 1)),
	)
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 0 || scan.Horizon[1] != 0 {
		t.Errorf("undecided cross replayed: horizons %v", scan.Horizon)
	}
	if scan.CrossVoided != 1 || scan.CrossReplayed != 0 {
		t.Errorf("cross replayed/voided = %d/%d, want 0/1", scan.CrossReplayed, scan.CrossVoided)
	}
	if scan.DroppedByPart[0] != 1 || scan.DroppedByPart[1] != 1 {
		t.Errorf("DroppedByPart = %v, want [1 1]", scan.DroppedByPart)
	}
	// The next generation writes cuts for the voided sequences and may
	// reuse them; its own cross ids must not collide with id 7.
	l, err := Start(b, Options{Partitions: 2}, scan)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	appendCrossN(t, l, []CrossPart{
		{Part: 0, Seq: 1, Nops: 1, Ops: crossOps(8, 0)},
		{Part: 1, Seq: 1, Nops: 1, Ops: crossOps(8, 1)},
	})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	scan2, err := Scan(b)
	if err != nil {
		t.Fatalf("second Scan: %v", err)
	}
	if scan2.Horizon[0] != 1 || scan2.Horizon[1] != 1 {
		t.Errorf("reused sequences not replayable: horizons %v", scan2.Horizon)
	}
	if scan2.CrossReplayed != 1 || scan2.CrossVoided != 0 {
		t.Errorf("after reuse: replayed/voided = %d/%d, want 1/0", scan2.CrossReplayed, scan2.CrossVoided)
	}
	for _, r := range scan2.Records {
		if string(r.Ops[0].Key) != "c8" {
			t.Errorf("replayed stale generation record: %q", r.Ops[0].Key)
		}
	}
}

func TestCrossDecidedMissingParticipantVoids(t *testing.T) {
	// The decision is durable but one participant's payload is not (its
	// append raced the decision's fsync and lost): the decision names a
	// member that never arrived, so the whole cross voids.
	b := NewMemBackend()
	forge(t, b, "wal-0000000000000000.seg",
		metaPayload(2),
		appendCrossPayload(nil, 3, 0, 1, 1, crossOps(3, 0)),
		decisionPayload(3, []CrossPart{{Part: 0, Seq: 1}, {Part: 1, Seq: 1}}),
	)
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 0 {
		t.Errorf("half-present decided cross replayed: horizons %v", scan.Horizon)
	}
	if scan.CrossVoided != 1 {
		t.Errorf("CrossVoided = %d, want 1", scan.CrossVoided)
	}
}

func TestCrossCascadeVoid(t *testing.T) {
	// Voiding one cross opens a gap that voids another: cross 5 is
	// decided with members (p0,1) and (p1,2), but p1's seq 1 (a plain
	// record) is missing — so (p1,2) sits past a gap, cross 5 voids, and
	// its (p0,1) share must fall with it even though partition 0 has no
	// gap of its own.
	b := NewMemBackend()
	forge(t, b, "wal-0000000000000000.seg",
		metaPayload(2),
		appendCrossPayload(nil, 5, 0, 1, 1, crossOps(5, 0)),
		appendCrossPayload(nil, 5, 1, 2, 1, crossOps(5, 1)),
		decisionPayload(5, []CrossPart{{Part: 0, Seq: 1}, {Part: 1, Seq: 2}}),
		appendTxnPayload(nil, 0, 2, 1, AppendOp(nil, false, []byte("x"), []byte("y"))),
	)
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 0 || scan.Horizon[1] != 0 {
		t.Errorf("cascade void failed: horizons %v", scan.Horizon)
	}
	if scan.CrossVoided != 1 {
		t.Errorf("CrossVoided = %d, want 1", scan.CrossVoided)
	}
	// The plain record at (p0,2) sat behind the voided cross share and
	// must be dropped too (it was never acked: release stalls behind an
	// unstable cross).
	if scan.DroppedByPart[0] != 2 {
		t.Errorf("DroppedByPart[0] = %d, want 2", scan.DroppedByPart[0])
	}
}

func TestCrossStaleDecisionCannotAdoptReusedSeq(t *testing.T) {
	// Generation 1 leaves a decided cross whose sequences a cut later
	// frees; generation 2 reuses (p0,1) for a plain record. The stale
	// decision for cross 9 must not adopt the reused sequence: its own
	// payload is gone, so it voids, while the new plain record replays.
	b := NewMemBackend()
	forge(t, b, "wal-0000000000000000.seg",
		metaPayload(2),
		// Gen 1: decided cross, but participant (p1,1) payload lost.
		appendCrossPayload(nil, 9, 0, 1, 1, crossOps(9, 0)),
		decisionPayload(9, []CrossPart{{Part: 0, Seq: 1}, {Part: 1, Seq: 1}}),
	)
	forge(t, b, "wal-0000000000000001.seg",
		metaPayload(2),
		// Gen 2: cut voids p0 from seq 1, then reuses seq 1.
		cutPayload(0, 1),
		appendTxnPayload(nil, 0, 1, 1, AppendOp(nil, false, []byte("new"), []byte("v"))),
	)
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 1 {
		t.Fatalf("Horizon[0] = %d, want 1 (the reused plain record)", scan.Horizon[0])
	}
	if len(scan.Records) != 1 || scan.Records[0].CrossID != 0 || string(scan.Records[0].Ops[0].Key) != "new" {
		t.Errorf("replay plan = %+v, want only the new generation's record", scan.Records)
	}
}

func TestCrossReleaseGatesLaterAppends(t *testing.T) {
	// A plain append with a higher sequence than an in-flight cross on
	// the same partition must not ack before the cross is stable —
	// otherwise a crash could void the cross, open a gap, and drop an
	// acked record. Exercised by concurrency: many rounds of cross +
	// chasing plain appends, then verify on the synced image that every
	// acked plain record survives.
	b := NewMemBackend()
	l := mustStart(t, slowBackend{b}, Options{Partitions: 2, Ack: AckGroup})
	var wg sync.WaitGroup
	seq := [2]uint64{}
	for round := 0; round < 20; round++ {
		members := []CrossPart{
			{Part: 0, Seq: seq[0] + 1, Nops: 1, Ops: crossOps(uint64(round), 0)},
			{Part: 1, Seq: seq[1] + 1, Nops: 1, Ops: crossOps(uint64(round), 1)},
		}
		seq[0]++
		seq[1]++
		wait, err := l.AppendCross(members)
		if err != nil {
			t.Fatalf("AppendCross: %v", err)
		}
		// Chasing plain appends on both partitions, concurrent with the
		// cross's ack path.
		for p := 0; p < 2; p++ {
			seq[p]++
			wg.Add(1)
			go func(p int, s uint64) {
				defer wg.Done()
				if err := l.Append(p, s, 1, AppendOp(nil, false, []byte{byte(p)}, []byte{byte(s)})); err != nil {
					t.Errorf("Append: %v", err)
				}
			}(p, seq[p])
		}
		if err := wait(); err != nil {
			t.Fatalf("cross wait: %v", err)
		}
	}
	wg.Wait()
	scan, err := Scan(b.Clone(0))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	// Everything acked: both partitions' horizons cover all 40 seqs.
	if scan.Horizon[0] != seq[0] || scan.Horizon[1] != seq[1] {
		t.Errorf("horizons %v, want [%d %d]", scan.Horizon, seq[0], seq[1])
	}
	if scan.CrossReplayed != 20 {
		t.Errorf("CrossReplayed = %d, want 20", scan.CrossReplayed)
	}
	_ = l.Close()
}

func TestBatchWindowBatches(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 4, Ack: AckGroup, BatchWindow: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := uint64(1); seq <= 25; seq++ {
				if err := l.Append(p, seq, 1, AppendOp(nil, false, []byte{byte(p)}, []byte{byte(seq)})); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != 100 {
		t.Errorf("Appends = %d, want 100", st.Appends)
	}
	// The window must force real batching even on a fast mem backend:
	// with 4 blocking committers each window collects (up to) one record
	// per committer, so syncs ≈ appends/4 plus the start/seal pair.
	if st.Syncs > st.Appends/3 {
		t.Errorf("window did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for p := 0; p < 4; p++ {
		if scan.Horizon[p] != 25 {
			t.Errorf("Horizon[%d] = %d, want 25", p, scan.Horizon[p])
		}
	}
}
