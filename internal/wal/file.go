package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileBackend stores segments as files in one directory, with real
// fsync: Segment.Sync is File.Sync, and segment creation syncs the
// directory so the name itself survives a crash (a synced record in an
// unlinked file is not durable).
type FileBackend struct {
	dir string
}

// NewFileBackend opens (creating if needed) dir as a log directory.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: file backend: %w", err)
	}
	return &FileBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (b *FileBackend) Dir() string { return b.dir }

// Create implements Backend: exclusive create, then directory sync so
// the entry is durable before any record lands in it.
func (b *FileBackend) Create(name string) (Segment, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := b.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return fileSegment{f}, nil
}

func (b *FileBackend) syncDir() error {
	d, err := os.Open(b.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load implements Backend.
func (b *FileBackend) Load(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(b.dir, name))
}

// List implements Backend: every "wal-*.seg" entry, lexically sorted.
func (b *FileBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

type fileSegment struct{ f *os.File }

func (s fileSegment) Append(b []byte) error { _, err := s.f.Write(b); return err }
func (s fileSegment) Sync() error           { return s.f.Sync() }
func (s fileSegment) Close() error          { return s.f.Close() }
