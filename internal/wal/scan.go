package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// ScanResult is what recovery learned from the surviving segments.
type ScanResult struct {
	// Partitions is the partition count from the log's meta records
	// (0 for an empty log).
	Partitions int
	// Records is the replay plan: for each partition its contiguous
	// sequence prefix, ordered by (partition, seq).
	Records []Record
	// Horizon[p] is the highest replayable sequence of partition p —
	// the contiguous prefix runs 1..Horizon[p] (0 = nothing survived).
	Horizon []uint64
	// DroppedByPart[p] counts live records of p discarded because they
	// sat beyond the first sequence gap: durable bytes for commits that
	// were never acknowledged contiguously. Always 0 under AckSync and
	// AckGroup semantics for acked commits.
	DroppedByPart []uint64
	// Torn lists where torn tails were truncated (clean degradation —
	// unsynced bytes at the end of a segment).
	Torn []TornTail
	// Clean reports a sealed log: the final surviving record is a seal,
	// i.e. the previous process shut down gracefully.
	Clean bool
	// Segments is how many segments the scan read.
	Segments int
	// CrossReplayed counts cross-partition transactions whose decision
	// record and every participant survived — replayed whole.
	// CrossVoided counts cross transactions dropped whole: the decision
	// record never became durable, or a participant fell past its
	// partition's horizon, so replaying any share would expose a
	// half-applied cross transaction.
	CrossReplayed uint64
	CrossVoided   uint64

	// nextSegIdx is the index Start uses for the generation's first new
	// segment.
	nextSegIdx uint64
	// maxCrossID seeds the next generation's cross id allocator: ids
	// must never repeat within one log, or a stale decision record could
	// commit a later generation's half-written cross transaction.
	maxCrossID uint64
}

// TornTail records one truncation the scan performed.
type TornTail struct {
	Segment string `json:"segment"`
	Offset  int64  `json:"offset"` // byte offset of the first discarded byte
	Reason  string `json:"reason"`
}

// DroppedRecords sums DroppedByPart.
func (r *ScanResult) DroppedRecords() uint64 {
	var n uint64
	for _, d := range r.DroppedByPart {
		n += d
	}
	return n
}

// Scan reads every segment and computes the replayable state. The
// policy separating degradation from damage:
//
//   - A record that runs off the end of its segment (or a partial
//     header, or a segment too short for its magic) is a torn tail:
//     append-only storage can only lose a suffix, so everything before
//     the tear is intact and the tear itself only holds data no one was
//     ever promised. The tail is truncated, noted in Torn, and the scan
//     continues. This also covers a lying fsync tearing a non-final
//     segment: the lost suffix becomes per-partition sequence gaps,
//     handled below.
//   - A fully-present record with a bad checksum is CorruptError: bytes
//     in the middle of the log changed under us, and replaying around
//     them could resurrect a state no linearization justifies. Scan
//     refuses with a witness (segment, offset, reason).
//   - Two live records claiming the same (partition, seq) are
//     CorruptError too — a duplicated segment or a broken stamp, either
//     way replay order is no longer well-defined.
//   - Per-partition sequence gaps (from torn tails or group-commit
//     reordering at the crash edge) truncate that partition at the gap:
//     records past it were never contiguously acked, so dropping them
//     keeps exactly the acked-⇒-survives contract. Start then writes a
//     cut so the next generation can reuse the dropped numbers.
//   - Cross-partition transactions replay all-or-nothing: a cross
//     record counts toward its partition's prefix only when its
//     decision record is durable AND every participant named by that
//     decision survives inside its own partition's prefix. Voiding one
//     participant voids the whole cross, which can open a gap in
//     another partition and void further crosses — the horizon is the
//     fixpoint of that rule. The writer's release rule (log.go) is the
//     mirror image: no record at or past a cross payload is acked until
//     the whole cross is stable, so the fixpoint only ever swallows
//     commits whose callers were still waiting.
func Scan(backend Backend) (*ScanResult, error) {
	names, err := backend.List()
	if err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	res := &ScanResult{}
	if len(names) == 0 {
		return res, nil
	}
	res.Segments = len(names)
	res.nextSegIdx = nextSegIdx(names)

	byPart := map[int]map[uint64]Record{} // part -> seq -> live record
	decisions := map[uint64][]CrossPart{} // cross id -> participants
	sealLast := false

	for segNo, name := range names {
		data, err := backend.Load(name)
		if err != nil {
			return nil, fmt.Errorf("wal: scan: %w", err)
		}
		torn := func(off int64, reason string) {
			res.Torn = append(res.Torn, TornTail{Segment: name, Offset: off, Reason: reason})
		}
		if len(data) < len(Magic) {
			torn(0, "segment shorter than magic")
			continue
		}
		if string(data[:len(Magic)]) != Magic {
			return nil, &CorruptError{Segment: name, Offset: 0, Reason: "bad magic"}
		}
		off := int64(len(Magic))
		first := true
		for int(off) < len(data) {
			rest := data[off:]
			if len(rest) < headerSize {
				torn(off, "partial record header")
				break
			}
			plen := binary.LittleEndian.Uint32(rest[0:4])
			want := binary.LittleEndian.Uint32(rest[4:8])
			if int(off)+headerSize+int(plen) > len(data) {
				torn(off, "record extends past end of segment")
				break
			}
			payload := rest[headerSize : headerSize+int(plen)]
			if crc32.Checksum(payload, castagnoli) != want {
				return nil, &CorruptError{Segment: name, Offset: off,
					Reason: fmt.Sprintf("checksum mismatch on %d-byte record", plen)}
			}
			if len(payload) == 0 {
				return nil, &CorruptError{Segment: name, Offset: off, Reason: "empty payload"}
			}
			sealLast = false
			kind, body := payload[0], payload[1:]
			switch kind {
			case kindMeta:
				version, parts, ok := decodeMeta(body)
				if !ok || !first {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "misplaced or malformed meta record"}
				}
				if version != formatVersion {
					return nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("format version %d, this build reads %d", version, formatVersion)}
				}
				if parts <= 0 {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "non-positive partition count"}
				}
				if res.Partitions == 0 {
					res.Partitions = parts
				} else if res.Partitions != parts {
					return nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("partition count changed mid-log: %d then %d", res.Partitions, parts)}
				}
			case kindTxn, kindCross:
				if first {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "segment does not start with meta"}
				}
				var rec Record
				var ok bool
				if kind == kindTxn {
					rec, ok = decodeTxn(body)
				} else {
					rec, ok = decodeCross(body)
					if rec.CrossID > res.maxCrossID {
						res.maxCrossID = rec.CrossID
					}
				}
				if !ok {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "malformed txn record"}
				}
				if rec.Part < 0 || rec.Part >= res.Partitions || rec.Seq == 0 {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "txn record out of range"}
				}
				m := byPart[rec.Part]
				if m == nil {
					m = map[uint64]Record{}
					byPart[rec.Part] = m
				}
				if _, ok := m[rec.Seq]; ok {
					// A cut deletes every sequence it voids, so any
					// collision with a still-live record is real.
					return nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("duplicate record: partition %d seq %d", rec.Part, rec.Seq)}
				}
				m[rec.Seq] = rec
			case kindDecision:
				if first {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "segment does not start with meta"}
				}
				cross, members, ok := decodeDecision(body)
				if !ok {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "malformed decision record"}
				}
				if _, dup := decisions[cross]; dup {
					// Cross ids are unique for the log's whole life; a
					// second decision means a duplicated segment.
					return nil, &CorruptError{Segment: name, Offset: off,
						Reason: fmt.Sprintf("duplicate decision record: cross %d", cross)}
				}
				for _, mem := range members {
					if mem.Part < 0 || mem.Part >= res.Partitions {
						return nil, &CorruptError{Segment: name, Offset: off, Reason: "decision record out of range"}
					}
				}
				decisions[cross] = members
				if cross > res.maxCrossID {
					res.maxCrossID = cross
				}
			case kindCut:
				if first {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "segment does not start with meta"}
				}
				part, from, ok := decodeCut(body)
				if !ok {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "malformed cut record"}
				}
				if part < 0 || part >= res.Partitions {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "cut record out of range"}
				}
				for seq := range byPart[part] {
					if seq >= from {
						delete(byPart[part], seq)
					}
				}
			case kindSeal:
				if first {
					return nil, &CorruptError{Segment: name, Offset: off, Reason: "segment does not start with meta"}
				}
				if segNo == len(names)-1 {
					sealLast = true
				}
				// Seals from earlier generations mid-log are inert.
			default:
				return nil, &CorruptError{Segment: name, Offset: off,
					Reason: fmt.Sprintf("unknown record kind %d", kind)}
			}
			first = false
			off += int64(headerSize) + int64(plen)
		}
	}
	res.Clean = sealLast && len(res.Torn) == 0

	if res.Partitions > 0 {
		res.resolve(byPart, decisions)
	}
	return res, nil
}

// resolve turns the live record maps into the replay plan: per-partition
// contiguous prefixes under the cross-transaction all-or-nothing rule.
// voided grows monotonically (a cross, once voided, never un-voids), so
// the loop reaches a fixpoint in at most one pass per voided cross.
func (res *ScanResult) resolve(byPart map[int]map[uint64]Record, decisions map[uint64][]CrossPart) {
	voided := map[uint64]bool{}
	horizons := func() []uint64 {
		h := make([]uint64, res.Partitions)
		for p := 0; p < res.Partitions; p++ {
			var seq uint64
			for seq = 1; ; seq++ {
				rec, ok := byPart[p][seq]
				if !ok {
					break
				}
				if rec.CrossID != 0 {
					if _, decided := decisions[rec.CrossID]; !decided || voided[rec.CrossID] {
						break
					}
				}
			}
			h[p] = seq - 1
		}
		return h
	}
	var h []uint64
	for {
		h = horizons()
		changed := false
		for id, members := range decisions {
			if voided[id] {
				continue
			}
			for _, m := range members {
				rec, ok := byPart[m.Part][m.Seq]
				// A participant is live only if the record at its slot
				// really belongs to this cross (a cut may have freed the
				// sequence for a later generation) and sits inside the
				// current prefix.
				if !ok || rec.CrossID != id || m.Seq > h[m.Part] {
					voided[id] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}

	replayedCross := map[uint64]bool{}
	voidedCross := map[uint64]bool{}
	res.Horizon = h
	res.DroppedByPart = make([]uint64, res.Partitions)
	for p := 0; p < res.Partitions; p++ {
		m := byPart[p]
		for seq := uint64(1); seq <= h[p]; seq++ {
			rec := m[seq]
			res.Records = append(res.Records, rec)
			if rec.CrossID != 0 {
				replayedCross[rec.CrossID] = true
			}
			delete(m, seq)
		}
		res.DroppedByPart[p] = uint64(len(m))
		for _, rec := range m {
			if rec.CrossID != 0 {
				voidedCross[rec.CrossID] = true
			}
		}
	}
	res.CrossReplayed = uint64(len(replayedCross))
	res.CrossVoided = uint64(len(voidedCross))
}

// nextSegIdx picks the first unused segment index: one past the highest
// parseable name (unparseable survivors are ignored by List's filter
// shape, so the worst case is a collision error from Create, not silent
// reuse).
func nextSegIdx(names []string) uint64 {
	var next uint64
	for _, n := range names {
		num := strings.TrimSuffix(strings.TrimPrefix(n, "wal-"), ".seg")
		if idx, err := strconv.ParseUint(num, 10, 64); err == nil && idx+1 > next {
			next = idx + 1
		}
	}
	return next
}
