package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// The on-disk grammar. A segment is the 8-byte magic followed by
// records; a record is an 8-byte header — little-endian payload length,
// then CRC-32C of the payload — followed by the payload bytes. The
// first payload byte is the record kind:
//
//	txn  — part uvarint, seq uvarint, nops uvarint, then per op one
//	       flag byte (bit0 = delete), key length+bytes and, for
//	       non-deletes, value length+bytes;
//	cut  — part uvarint, from uvarint: every earlier record of part
//	       with seq >= from is void. Written on reopen after a gap
//	       truncation so a later generation can reuse the sequence
//	       numbers the truncation dropped;
//	seal — no payload: a clean shutdown flushed everything before this
//	       point. Only meaningful as the last record of the log;
//	meta — format version uvarint, partitions uvarint: opens every
//	       segment, making each self-describing and pinning the
//	       partition count routing depends on;
//	cross — cross uvarint (the cross-transaction id), then a txn body:
//	       one participant partition's share of a cross-partition
//	       commit. Replayable only when the id's decision record is
//	       durable and every participant survives — see scan.go;
//	decision — cross uvarint, nparts uvarint, then per participant
//	       part uvarint + seq uvarint: the atomic commit point of a
//	       cross-partition transaction. Its durability decides the
//	       whole cross all-or-nothing at recovery.
//
// Checksums cover the payload only; the length field is validated by
// the extent check (a record must fit inside its segment). The split of
// decode failures into "torn" and "corrupt" lives in scan.go.

// Magic opens every segment.
const Magic = "pclwal01"

// formatVersion is bumped on any grammar change.
const formatVersion = 1

// Record kinds.
const (
	kindTxn byte = iota + 1
	kindCut
	kindSeal
	kindMeta
	kindCross
	kindDecision
)

// headerSize is the fixed record header: uint32 length + uint32 CRC.
const headerSize = 8

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is one logical store operation inside a txn record. Key and Val
// are the codec's byte images (store/durable.go); Del distinguishes
// deletions, whose Val is empty.
type Op struct {
	Del      bool
	Key, Val []byte
}

// Record is one decoded txn record: partition part committed the ops as
// its seq'th logged transaction. CrossID is non-zero for a cross
// record — one participant's share of the cross-partition transaction
// with that id, replayable only under the decision rule in scan.go.
type Record struct {
	Part    int
	Seq     uint64
	CrossID uint64
	Ops     []Op
}

// CrossPart names one participant of a cross-partition transaction:
// partition Part's share committed as its Seq'th logged transaction,
// carrying Nops encoded ops. The same struct is the append-side input
// (Ops filled) and the decision record's participant list (Ops nil).
type CrossPart struct {
	Part int
	Seq  uint64
	Nops int
	Ops  []byte
}

// appendUvarint appends x in unsigned varint form.
func appendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// appendFrame appends a complete record (header + payload) to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendTxnPayload builds a txn record payload: the caller supplies the
// already-encoded ops section (nops ops) produced by store/durable.go.
func appendTxnPayload(dst []byte, part int, seq uint64, nops int, ops []byte) []byte {
	dst = append(dst, kindTxn)
	dst = appendUvarint(dst, uint64(part))
	dst = appendUvarint(dst, seq)
	dst = appendUvarint(dst, uint64(nops))
	return append(dst, ops...)
}

// AppendOp appends one op to an ops section under construction — the
// encoding half the store's capture buffer uses, kept next to decodeOps
// so the two halves cannot drift.
func AppendOp(dst []byte, del bool, key, val []byte) []byte {
	var flag byte
	if del {
		flag = 1
	}
	dst = append(dst, flag)
	dst = appendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	if !del {
		dst = appendUvarint(dst, uint64(len(val)))
		dst = append(dst, val...)
	}
	return dst
}

// appendCrossPayload builds a cross record payload: the cross id, then
// the same body as a txn record.
func appendCrossPayload(dst []byte, cross uint64, part int, seq uint64, nops int, ops []byte) []byte {
	dst = append(dst, kindCross)
	dst = appendUvarint(dst, cross)
	dst = appendUvarint(dst, uint64(part))
	dst = appendUvarint(dst, seq)
	dst = appendUvarint(dst, uint64(nops))
	return append(dst, ops...)
}

// decisionPayload builds a decision record: the commit point of cross
// transaction cross, naming every participant's (part, seq).
func decisionPayload(cross uint64, members []CrossPart) []byte {
	dst := []byte{kindDecision}
	dst = appendUvarint(dst, cross)
	dst = appendUvarint(dst, uint64(len(members)))
	for _, m := range members {
		dst = appendUvarint(dst, uint64(m.Part))
		dst = appendUvarint(dst, m.Seq)
	}
	return dst
}

func cutPayload(part int, from uint64) []byte {
	dst := []byte{kindCut}
	dst = appendUvarint(dst, uint64(part))
	return appendUvarint(dst, from)
}

func sealPayload() []byte { return []byte{kindSeal} }

func metaPayload(partitions int) []byte {
	dst := []byte{kindMeta}
	dst = appendUvarint(dst, formatVersion)
	return appendUvarint(dst, uint64(partitions))
}

// uvarint reads one uvarint, reporting failure instead of panicking.
func uvarint(b []byte) (uint64, []byte, bool) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return x, b[n:], true
}

// decodeTxn parses a txn payload (kind byte already consumed).
func decodeTxn(b []byte) (Record, bool) {
	var r Record
	part, b, ok := uvarint(b)
	if !ok {
		return r, false
	}
	seq, b, ok := uvarint(b)
	if !ok {
		return r, false
	}
	nops, b, ok := uvarint(b)
	if !ok || nops > uint64(len(b)) { // each op is ≥1 byte
		return r, false
	}
	r.Part, r.Seq = int(part), seq
	r.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(b) == 0 {
			return r, false
		}
		op := Op{Del: b[0]&1 != 0}
		b = b[1:]
		klen, rest, ok := uvarint(b)
		if !ok || klen > uint64(len(rest)) {
			return r, false
		}
		op.Key, b = rest[:klen], rest[klen:]
		if !op.Del {
			vlen, rest, ok := uvarint(b)
			if !ok || vlen > uint64(len(rest)) {
				return r, false
			}
			op.Val, b = rest[:vlen], rest[vlen:]
		}
		r.Ops = append(r.Ops, op)
	}
	if len(b) != 0 {
		return r, false // trailing garbage inside a checksummed payload
	}
	return r, true
}

// decodeCross parses a cross payload (kind byte already consumed): the
// cross id, then a txn body.
func decodeCross(b []byte) (Record, bool) {
	cross, b, ok := uvarint(b)
	if !ok || cross == 0 {
		return Record{}, false
	}
	r, ok := decodeTxn(b)
	if !ok {
		return Record{}, false
	}
	r.CrossID = cross
	return r, true
}

// decodeDecision parses a decision payload (kind byte already
// consumed).
func decodeDecision(b []byte) (cross uint64, members []CrossPart, ok bool) {
	cross, b, ok = uvarint(b)
	if !ok || cross == 0 {
		return 0, nil, false
	}
	n, b, ok := uvarint(b)
	if !ok || n == 0 || n > uint64(len(b)) { // each member is ≥2 bytes
		return 0, nil, false
	}
	members = make([]CrossPart, 0, n)
	for i := uint64(0); i < n; i++ {
		part, rest, ok := uvarint(b)
		if !ok {
			return 0, nil, false
		}
		seq, rest, ok := uvarint(rest)
		if !ok || seq == 0 {
			return 0, nil, false
		}
		members = append(members, CrossPart{Part: int(part), Seq: seq})
		b = rest
	}
	if len(b) != 0 {
		return 0, nil, false
	}
	return cross, members, true
}

func decodeCut(b []byte) (part int, from uint64, ok bool) {
	p, b, ok := uvarint(b)
	if !ok {
		return 0, 0, false
	}
	f, b, ok := uvarint(b)
	if !ok || len(b) != 0 {
		return 0, 0, false
	}
	return int(p), f, true
}

func decodeMeta(b []byte) (version uint64, partitions int, ok bool) {
	v, b, ok := uvarint(b)
	if !ok {
		return 0, 0, false
	}
	p, b, ok := uvarint(b)
	if !ok || len(b) != 0 {
		return 0, 0, false
	}
	return v, int(p), true
}
