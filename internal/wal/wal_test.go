package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustStart(t *testing.T, b Backend, opts Options) *Log {
	t.Helper()
	l, _, err := Open(b, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, part int, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		ops := AppendOp(nil, false, []byte(fmt.Sprintf("k%d", seq)), []byte(fmt.Sprintf("v%d", seq)))
		if err := l.Append(part, seq, 1, ops); err != nil {
			t.Fatalf("Append(part=%d seq=%d): %v", part, seq, err)
		}
	}
}

func TestRoundTripSealed(t *testing.T) {
	for _, ack := range AckModes() {
		t.Run(ack.String(), func(t *testing.T) {
			b := NewMemBackend()
			l := mustStart(t, b, Options{Partitions: 2, Ack: ack})
			appendN(t, l, 0, 1, 5)
			appendN(t, l, 1, 1, 3)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			scan, err := Scan(b)
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if !scan.Clean {
				t.Error("sealed log not reported Clean")
			}
			if scan.Partitions != 2 {
				t.Errorf("Partitions = %d, want 2", scan.Partitions)
			}
			if got, want := fmt.Sprint(scan.Horizon), "[5 3]"; got != want {
				t.Errorf("Horizon = %s, want %s", got, want)
			}
			if len(scan.Records) != 8 {
				t.Fatalf("Records = %d, want 8", len(scan.Records))
			}
			// Replay plan is (partition, seq) ordered with intact ops.
			r := scan.Records[4]
			if r.Part != 0 || r.Seq != 5 || len(r.Ops) != 1 ||
				string(r.Ops[0].Key) != "k5" || string(r.Ops[0].Val) != "v5" {
				t.Errorf("record 4 = %+v, want part 0 seq 5 k5=v5", r)
			}
		})
	}
}

func TestEmptyLog(t *testing.T) {
	scan, err := Scan(NewMemBackend())
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Partitions != 0 || len(scan.Records) != 0 || scan.Clean {
		t.Errorf("empty scan = %+v, want zero state", scan)
	}
}

func TestUnsealedNotClean(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1})
	appendN(t, l, 0, 1, 3)
	b.Crash(-1) // keep all buffered bytes, but no seal was written
	scan, err := Scan(b.Clone(-1))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Clean {
		t.Error("unsealed log reported Clean")
	}
	if scan.Horizon[0] != 3 {
		t.Errorf("Horizon = %d, want 3", scan.Horizon[0])
	}
	_ = l
}

// slowBackend adds latency to every fsync so concurrent appends pile up
// behind the writer — the condition group commit exists for.
type slowBackend struct{ Backend }

func (b slowBackend) Create(name string) (Segment, error) {
	s, err := b.Backend.Create(name)
	if err != nil {
		return nil, err
	}
	return slowSegment{s}, nil
}

type slowSegment struct{ Segment }

func (s slowSegment) Sync() error {
	time.Sleep(200 * time.Microsecond)
	return s.Segment.Sync()
}

func TestGroupCommitBatches(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, slowBackend{b}, Options{Partitions: 4, Ack: AckGroup})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := uint64(1); seq <= 50; seq++ {
				ops := AppendOp(nil, false, []byte{byte(p)}, []byte{byte(seq)})
				if err := l.Append(p, seq, 1, ops); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != 200 {
		t.Errorf("Appends = %d, want 200", st.Appends)
	}
	if st.Syncs >= st.Appends {
		t.Errorf("group commit did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for p := 0; p < 4; p++ {
		if scan.Horizon[p] != 50 {
			t.Errorf("Horizon[%d] = %d, want 50", p, scan.Horizon[p])
		}
	}
}

func TestSyncModeOneFsyncPerRecord(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1, Ack: AckSync})
	appendN(t, l, 0, 1, 10)
	st := l.Stats()
	// 1 Start sync + 10 record syncs (no rotation at this volume).
	if st.Syncs < 11 {
		t.Errorf("Syncs = %d, want >= 11 in sync mode", st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAckedSurvivesCrash(t *testing.T) {
	// The durability contract: once Append returns nil (group mode), a
	// crash that preserves only synced bytes must keep the record.
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1, Ack: AckGroup})
	appendN(t, l, 0, 1, 20)
	img := b.Clone(0) // synced bytes only — the harshest crash
	scan, err := Scan(img)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 20 {
		t.Errorf("acked seq 20 not durable: horizon %d", scan.Horizon[0])
	}
	_ = l.Close()
}

func TestRotation(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1, SegmentBytes: 256})
	appendN(t, l, 0, 1, 100)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, _ := b.List()
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(names))
	}
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !scan.Clean || scan.Horizon[0] != 100 {
		t.Errorf("after rotation: clean=%v horizon=%d, want true/100", scan.Clean, scan.Horizon[0])
	}
}

func TestTornTailTruncates(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1})
	appendN(t, l, 0, 1, 5)
	_ = l.Close()
	names, _ := b.List()
	last := names[len(names)-1]
	data, _ := b.Load(last)
	// Chop into the middle of the final (seal) record.
	if err := b.Truncate(last, len(data)-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan after torn tail: %v", err)
	}
	if scan.Clean {
		t.Error("torn log reported Clean")
	}
	if len(scan.Torn) != 1 {
		t.Fatalf("Torn = %v, want one entry", scan.Torn)
	}
	if scan.Horizon[0] != 5 {
		t.Errorf("Horizon = %d, want 5 (only the seal was torn)", scan.Horizon[0])
	}
}

func TestBitFlipRefuses(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1})
	appendN(t, l, 0, 1, 5)
	_ = l.Close()
	names, _ := b.List()
	// Flip a bit inside the first txn record's payload (past magic +
	// meta frame) — mid-log damage, not a tail.
	if err := b.Corrupt(names[0], len(Magic)+headerSize+3+headerSize+4); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	_, err := Scan(b)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Scan = %v, want CorruptError", err)
	}
	if ce.Segment != names[0] || ce.Offset == 0 {
		t.Errorf("witness = %+v, want segment %s with nonzero offset", ce, names[0])
	}
}

func TestDuplicateSegmentRefuses(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1})
	appendN(t, l, 0, 1, 5)
	_ = l.Close()
	names, _ := b.List()
	if err := b.Duplicate(names[0], "wal-0000000000000009.seg"); err != nil {
		t.Fatalf("Duplicate: %v", err)
	}
	_, err := Scan(b)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Scan = %v, want CorruptError for duplicated segment", err)
	}
	if ce.Reason == "" || ce.Segment == "" {
		t.Errorf("witness incomplete: %+v", ce)
	}
}

func TestEmptyFinalSegmentRecovers(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1})
	appendN(t, l, 0, 1, 5)
	_ = l.Close()
	// A crash right after segment creation leaves an empty file.
	if _, err := b.Create("wal-0000000000000009.seg"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 5 {
		t.Errorf("Horizon = %d, want 5", scan.Horizon[0])
	}
	if scan.Clean {
		t.Error("log with empty trailing segment reported Clean")
	}
	// And the next generation can open on top of it... except the name
	// collides; nextSegIdx must step past it.
	l2, scan2, err := Open(b, Options{Partitions: 1})
	if err != nil {
		t.Fatalf("reopen over empty segment: %v", err)
	}
	if scan2.Horizon[0] != 5 {
		t.Errorf("reopen horizon = %d, want 5", scan2.Horizon[0])
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestGapTruncationAndCut(t *testing.T) {
	// Forge a gap: write seqs 1..3 and 5 (4 missing — its append "was
	// lost in the crash"), then recover twice to prove cut records make
	// sequence reuse safe.
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 1, Ack: AckAsync})
	appendN(t, l, 0, 1, 3)
	if err := l.Append(0, 5, 1, AppendOp(nil, false, []byte("k5"), []byte("v5"))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_ = l.Close()

	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if scan.Horizon[0] != 3 || scan.DroppedByPart[0] != 1 {
		t.Fatalf("gap scan: horizon=%d dropped=%d, want 3/1", scan.Horizon[0], scan.DroppedByPart[0])
	}
	// Reopen (writes the cut), then reuse seqs 4 and 5.
	l2, err := Start(b, Options{Partitions: 1}, scan)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	appendN(t, l2, 0, 4, 6)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	scan2, err := Scan(b)
	if err != nil {
		t.Fatalf("second Scan: %v", err)
	}
	if scan2.Horizon[0] != 6 || scan2.DroppedByPart[0] != 0 {
		t.Errorf("after cut+reuse: horizon=%d dropped=%d, want 6/0", scan2.Horizon[0], scan2.DroppedByPart[0])
	}
	if !scan2.Clean {
		t.Error("cleanly closed second generation not Clean")
	}
	// The reused seq 5 must carry the new generation's value.
	for _, r := range scan2.Records {
		if r.Seq == 5 && string(r.Ops[0].Key) != "k5" {
			t.Errorf("seq 5 key = %q", r.Ops[0].Key)
		}
	}
}

func TestPartitionMismatchRefuses(t *testing.T) {
	b := NewMemBackend()
	l := mustStart(t, b, Options{Partitions: 4})
	appendN(t, l, 0, 1, 2)
	_ = l.Close()
	scan, err := Scan(b)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if _, err := Start(b, Options{Partitions: 8}, scan); err == nil {
		t.Fatal("Start with mismatched partition count succeeded")
	}
}

func TestFailpointSyncPoisons(t *testing.T) {
	fb := NewFailBackend(NewMemBackend())
	l := mustStart(t, fb, Options{Partitions: 1, Ack: AckSync})
	appendN(t, l, 0, 1, 2)
	// Arm resets the op counter: the next record is append (1), sync (2).
	fb.Arm(FailPoint{Kind: FailSync, N: 2})
	err := l.Append(0, 3, 1, AppendOp(nil, false, []byte("k"), []byte("v")))
	var fe *FailedError
	if !errors.As(err, &fe) {
		t.Fatalf("Append over failed fsync = %v, want FailedError", err)
	}
	// Poisoned: every later append fails fast.
	if err := l.Append(0, 4, 1, nil); !errors.As(err, &fe) {
		t.Errorf("append after poison = %v, want FailedError", err)
	}
	if l.Stats().Failed == 0 {
		t.Error("Stats.Failed not set")
	}
}

func TestFailpointCrashSweep(t *testing.T) {
	// Measure the workload's crash surface, then kill it at every
	// numbered point and prove scan always yields a usable prefix.
	workload := func(fb *FailBackend) (*Log, error) {
		l, _, err := Open(fb, Options{Partitions: 2, Ack: AckGroup, SegmentBytes: 512})
		if err != nil {
			return nil, err
		}
		for seq := uint64(1); seq <= 30; seq++ {
			for p := 0; p < 2; p++ {
				ops := AppendOp(nil, false, []byte{byte(p), byte(seq)}, []byte{1})
				if err := l.Append(p, seq, 1, ops); err != nil {
					return l, err
				}
			}
		}
		return l, l.Close()
	}
	probe := NewFailBackend(NewMemBackend())
	if _, err := workload(probe); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Ops()
	if total < 30 {
		t.Fatalf("workload exposes only %d crash points", total)
	}
	for n := uint64(1); n <= total; n++ {
		for _, kind := range []FailKind{FailCrash, FailTear} {
			mem := NewMemBackend()
			fb := NewFailBackend(mem)
			fb.Arm(FailPoint{Kind: kind, N: n, TearBytes: 5})
			_, err := workload(fb)
			if err == nil {
				if fb.Crashed() {
					t.Fatalf("crash point %d/%v fired but did not surface", n, kind)
				}
				continue // batching variance left this point unreached
			}
			scan, err := Scan(mem.Clone(0))
			if err != nil {
				t.Fatalf("point %d/%v: scan refused: %v", n, kind, err)
			}
			// Whatever survived must be a dense prefix per partition.
			counts := map[int]uint64{}
			for _, r := range scan.Records {
				counts[r.Part]++
				if r.Seq != counts[r.Part] {
					t.Fatalf("point %d/%v: non-dense replay: part %d seq %d at position %d",
						n, kind, r.Part, r.Seq, counts[r.Part])
				}
			}
		}
	}
}

func TestFailpointLostSync(t *testing.T) {
	// A lying fsync: acked records vanish in the crash. Recovery must
	// still produce a dense prefix (degradation, not refusal).
	mem := NewMemBackend()
	fb := NewFailBackend(mem)
	l := mustStart(t, fb, Options{Partitions: 1, Ack: AckSync})
	appendN(t, l, 0, 1, 2)
	fb.Arm(FailPoint{Kind: FailLostSync, N: 2}) // seq 3's fsync lies
	appendN(t, l, 0, 3, 6)                      // syncs lie from seq 3 on: horizon stuck after seq 2's bytes
	scan, err := Scan(mem.Clone(0))
	if err != nil {
		t.Fatalf("Scan after lost sync: %v", err)
	}
	if scan.Horizon[0] < 2 {
		t.Errorf("Horizon = %d, want >= 2 (seqs 1-2 were honestly synced)", scan.Horizon[0])
	}
	if scan.Horizon[0] == 6 {
		t.Error("lost fsync did not lose anything — fault not wired")
	}
	_ = l.Close()
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatalf("NewFileBackend: %v", err)
	}
	l := mustStart(t, fb, Options{Partitions: 2, SegmentBytes: 256})
	appendN(t, l, 0, 1, 20)
	appendN(t, l, 1, 1, 7)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fb2, _ := NewFileBackend(dir)
	scan, err := Scan(fb2)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !scan.Clean || scan.Horizon[0] != 20 || scan.Horizon[1] != 7 {
		t.Errorf("file round trip: clean=%v horizons=%v", scan.Clean, scan.Horizon)
	}
	// Second generation appends and recovers on the same directory.
	l2, err := Start(fb2, Options{Partitions: 2}, scan)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	appendN(t, l2, 1, 8, 9)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	scan2, err := Scan(fb2)
	if err != nil {
		t.Fatalf("Scan 2: %v", err)
	}
	if scan2.Horizon[1] != 9 {
		t.Errorf("second generation horizon = %d, want 9", scan2.Horizon[1])
	}
}

func TestAckModeNames(t *testing.T) {
	for _, m := range AckModes() {
		got, ok := AckByName(m.String())
		if !ok || got != m {
			t.Errorf("AckByName(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := AckByName("bogus"); ok {
		t.Error("AckByName accepted bogus mode")
	}
}
