// Package dstm implements an obstruction-free DSTM-style TM (Herlihy,
// Luchangco, Moir, Scherer): per-item locators naming an owner transaction
// and old/new values, per-transaction status words, an aggressive
// contention manager that aborts encountered owners, invisible reads with
// commit-time validation, and a single-CAS commit on the status word.
//
// P/C/L position: obstruction-free (solo runs always commit; a transaction
// aborts only after another process took steps) and consistent
// (serializable on the recorded executions), but not strictly
// disjoint-access-parallel: any transaction touching an item owned by T
// reads — and, to abort T, CASes — T's status word. Two transactions that
// are disjoint at the item level therefore contend on the status word of a
// common neighbor, which is precisely where the PCL adversary catches it
// (the T2/T3 contention on status(T1) in Claim 3's probe execution). The
// contention always follows conflict-graph chains, so the weaker
// chain-DAP of the paper's companion design [11] is satisfied.
package dstm

import (
	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// Transaction status word values.
const (
	active    int64 = 0
	committed int64 = 1
	aborted   int64 = 2
)

// locator is the per-item ownership record: the owning transaction and the
// item's value before/after that owner. It is a comparable value, so a
// single CAS switches ownership atomically.
type locator struct {
	owner    core.TxID
	old, new core.Value
}

// Protocol is the DSTM-style obstruction-free TM. Polite selects the
// contention-manager ablation: instead of aborting an encountered active
// owner (the aggressive manager obstruction-freedom requires), a polite
// transaction waits for it — which turns the design into a blocking one
// and flips its PCL verdict from Parallelism to Liveness. The ablation
// demonstrates that the contention manager, not the locator machinery,
// is what buys DSTM its liveness corner.
type Protocol struct {
	// Polite switches the contention manager from abort-the-enemy to
	// wait-for-the-enemy.
	Polite bool
}

// Name implements stms.Protocol.
func (p Protocol) Name() string {
	if p.Polite {
		return "dstm-polite"
	}
	return "dstm"
}

// Description implements stms.Protocol.
func (p Protocol) Description() string {
	if p.Polite {
		return "DSTM with a waiting contention manager: P becomes moot, fails L (blocking)"
	}
	return "DSTM-style locators + status CAS: C+L, fails strict DAP (status contention)"
}

type instance struct {
	loc    map[core.Item]core.ObjID
	status map[core.TxID]core.ObjID
	polite bool
}

// New implements stms.Protocol.
func (p Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	return &instance{
		loc:    stms.ItemObjects(m, specs, "loc", func(core.Item) any { return locator{} }),
		status: stms.TxObjects(m, specs, "status", active),
		polite: p.Polite,
	}
}

// Txn implements stms.Instance.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	return &txn{inst: i, ctx: ctx, self: spec.ID}
}

type txn struct {
	inst *instance
	ctx  *machine.Ctx
	self core.TxID
	// reads records (item, observed locator) pairs for commit validation.
	reads []readRecord
}

type readRecord struct {
	item core.Item
	seen locator
}

// currentValue resolves a locator to the item's current value: the new
// value if the owner committed (or there is no owner), the old value if it
// aborted. ok=false means the owner is still active and must be dealt
// with first.
func (t *txn) currentValue(l locator) (core.Value, bool) {
	if l.owner == core.NoTx || l.owner == t.self {
		return l.new, true
	}
	switch t.ctx.Read(t.inst.status[l.owner]).(int64) {
	case committed:
		return l.new, true
	case aborted:
		return l.old, true
	default:
		return 0, false
	}
}

// abortOwner resolves an encountered active owner. The aggressive manager
// CASes it to aborted; the polite ablation just re-reads (spinning on the
// caller's loop) until the owner decides — which blocks forever if the
// owner is parked, surrendering obstruction-freedom.
func (t *txn) abortOwner(owner core.TxID) {
	if t.inst.polite {
		return // caller's loop re-reads the status: wait, don't fight
	}
	t.ctx.CAS(t.inst.status[owner], active, aborted)
}

// Read resolves the item's current value invisibly and records the
// observed locator for commit-time validation. Encountered active owners
// are aborted first (obstruction-freedom permits this: the owner has taken
// steps during our interval).
func (t *txn) Read(x core.Item) (core.Value, bool) {
	for {
		l := t.ctx.Read(t.inst.loc[x]).(locator)
		if l.owner == t.self {
			return l.new, true // own write: local read, not validated
		}
		v, ok := t.currentValue(l)
		if !ok {
			t.abortOwner(l.owner)
			continue
		}
		t.reads = append(t.reads, readRecord{x, l})
		return v, true
	}
}

// Write acquires ownership of the item's locator by CAS, aborting any
// active owner it encounters. Read records for the item are refreshed to
// the acquired locator: ownership now guards the earlier read, and a later
// steal changes the locator and fails validation, exactly as before.
func (t *txn) Write(x core.Item, v core.Value) bool {
	for {
		l := t.ctx.Read(t.inst.loc[x]).(locator)
		if l.owner == t.self {
			nl := locator{t.self, l.old, v}
			if t.ctx.CAS(t.inst.loc[x], l, nl) {
				t.refreshReads(x, l, nl)
				return true
			}
			continue
		}
		cur, ok := t.currentValue(l)
		if !ok {
			t.abortOwner(l.owner)
			continue
		}
		nl := locator{t.self, cur, v}
		if t.ctx.CAS(t.inst.loc[x], l, nl) {
			t.refreshReads(x, l, nl)
			return true
		}
	}
}

// refreshReads re-anchors the validation records of an item this
// transaction now owns — but only records whose observed locator survived
// until the acquisition. A record whose locator had already changed stays
// stale on purpose: commit validation will then see our own locator
// instead of the recorded one and abort, which is exactly the
// read-invalidation DSTM requires (the read no longer reflects the
// current committed state).
func (t *txn) refreshReads(x core.Item, replaced, nl locator) {
	for i := range t.reads {
		if t.reads[i].item == x && t.reads[i].seen == replaced {
			t.reads[i].seen = nl
		}
	}
}

// Commit validates the read set (the observed locators must be unchanged)
// and then tries the single-step status CAS. A transaction that was
// aborted by an enemy, or whose reads were invalidated, returns false —
// both can only happen after another process took steps.
func (t *txn) Commit() bool {
	for _, r := range t.reads {
		l := t.ctx.Read(t.inst.loc[r.item]).(locator)
		if l != r.seen {
			t.ctx.CAS(t.inst.status[t.self], active, aborted)
			return false
		}
	}
	return t.ctx.CAS(t.inst.status[t.self], active, committed)
}
