package dstm

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func bundle(specs []core.TxSpec) *stms.Bundle {
	return &stms.Bundle{Protocol: Protocol{}, Specs: specs}
}

func TestCommitIsSingleStatusCAS(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}}}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one successful CAS on status(T1), flipping active→committed.
	var statusCASes int
	for _, s := range exec.Steps {
		if s.ObjName == "status(T1)" && s.Prim == core.PrimCAS && s.Changed {
			statusCASes++
			if s.Args[1] != committed {
				t.Errorf("status CAS installs %v, want committed", s.Args[1])
			}
		}
	}
	if statusCASes != 1 {
		t.Errorf("status CASes = %d, want 1", statusCASes)
	}
}

func TestOwnershipTransferCapturesCommittedValue(t *testing.T) {
	// T1 commits x=5; T2 then acquires x: its locator's old value must
	// be 5 so that aborting T2 restores the right state.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 5)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 9)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x")}},
	}
	b := bundle(specs)
	m := b.Build()
	defer m.Close()
	// T1 commits; T2 acquires but never commits; T3 reads: T2 is active,
	// so T3 aborts it and must read 5.
	if err := machine.RunSchedule(m, machine.Schedule{machine.Solo(0)}); err != nil {
		t.Fatal(err)
	}
	// Step T2 until it holds the locator (write response recorded).
	for !m.Execution().InvokedCommit(2) && !m.Done(1) {
		if _, err := m.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := machine.RunSchedule(m, machine.Schedule{machine.Solo(2)}); err != nil {
		t.Fatal(err)
	}
	exec := m.Execution()
	if v := exec.ReadValues(3)["x"]; v != 5 {
		t.Errorf("T3 read %d after aborting the active owner, want T1's committed 5", v)
	}
	if exec.StatusOf(3) != core.TxCommitted {
		t.Errorf("T3 status = %v", exec.StatusOf(3))
	}
}

func TestStolenReadInvalidatesCommit(t *testing.T) {
	// T1 reads x; T2 commits a new x; T1 then writes x (re-acquiring a
	// changed locator) and must fail commit validation: its read no
	// longer reflects the committed state it observed.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 5)}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	sawAbort := false
	for k := 1; k < len(full.Steps); k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k), machine.Solo(1), machine.Solo(0),
		})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		r1 := exec.ReadValues(1)
		if exec.StatusOf(1) == core.TxCommitted && exec.StatusOf(2) == core.TxCommitted {
			// Both committed: only legal if T1's read saw T2's write (T1
			// serialized after T2) or T2 overwrote after T1 (T1 read 0).
			// T1 reading 0 while T2 committed before T1's write is the
			// lost-update DSTM must prevent when the read was recorded.
			if r1["x"] == 0 && exec.Precedes(2, 1) {
				t.Errorf("prefix %d: lost update committed", k)
			}
		}
		if exec.StatusOf(1) == core.TxAborted {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Errorf("no interleaving aborted T1 — read validation after re-acquisition is broken")
	}
}

func TestReadOwnWriteIsLocal(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{
		core.W("x", 3), core.R("x"),
	}}}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	if v := exec.ReadValues(1)["x"]; v != 3 {
		t.Errorf("read own write = %d, want 3", v)
	}
}

func TestEnemyAbortIsPermanent(t *testing.T) {
	// Once aborted by an enemy, the victim's commit CAS must fail.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2)}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(full.Steps)-1; k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k), machine.Solo(1), machine.Solo(0),
		})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		// T2 ran solo to completion: always commits.
		if exec.StatusOf(2) != core.TxCommitted {
			t.Fatalf("prefix %d: T2 = %v", k, exec.StatusOf(2))
		}
		// If T1 had acquired x before stopping, T2 aborted it; T1 must
		// then report A_T1, never C_T1 with a stale write.
		if exec.StatusOf(1) == core.TxCommitted {
			// Legal only if T1 committed without interference — which
			// requires its locator to have survived; verify final value
			// is T1's only when T1's commit CAS succeeded after T2's.
			continue
		}
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "dstm" || p.Description() == "" {
		t.Errorf("metadata wrong")
	}
}
