// Package sidstm implements a snapshot-isolation DSTM variant in the
// spirit of the paper's companion technical report [11] ("Snapshot
// isolation does not scale either", TR-437, FORTH-ICS): DSTM's ownership
// machinery for writes, combined with an obstruction-free begin-time
// snapshot of the transaction's (static) data set, taken with a
// double-collect — re-reading every (locator, owner-status) pair until two
// consecutive passes agree. All reads are then served from the snapshot,
// so every global read observes the committed memory state at a single
// instant inside the transaction's execution interval, which is exactly
// the paper's weak snapshot isolation (Definition 3.1). Commit is DSTM's
// single status CAS; reads are never validated and writers are never
// aborted by readers, and the "first committer wins" rule is deliberately
// absent, matching the weak definition.
//
// P/C/L position: obstruction-free (the double-collect retries only when a
// concurrent process moved a locator or status; solo runs converge in two
// passes) and snapshot-isolation-consistent, but — like DSTM — not
// strictly disjoint-access-parallel: writers CAS the status words of
// encountered owners, and the snapshot collect reads them, so disjoint
// transactions meet on a common neighbor's status word. The contention
// stays on conflict-graph chains, the weakened DAP the TR trades for
// SI + obstruction-freedom.
package sidstm

import (
	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

const (
	active    int64 = 0
	committed int64 = 1
	aborted   int64 = 2
)

type locator struct {
	owner    core.TxID
	old, new core.Value
}

// Protocol is the SI-DSTM variant.
type Protocol struct{}

// Name implements stms.Protocol.
func (Protocol) Name() string { return "sidstm" }

// Description implements stms.Protocol.
func (Protocol) Description() string {
	return "DSTM writes + double-collect begin snapshot: SI+L, fails strict DAP"
}

type instance struct {
	loc    map[core.Item]core.ObjID
	status map[core.TxID]core.ObjID
}

// New implements stms.Protocol.
func (Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	return &instance{
		loc:    stms.ItemObjects(m, specs, "loc", func(core.Item) any { return locator{} }),
		status: stms.TxObjects(m, specs, "status", active),
	}
}

// observation is one item's (locator, decided owner status) pair from a
// collect pass; equal observations across two passes pin the committed
// value.
type observation struct {
	loc locator
	st  int64
}

// Txn implements stms.Instance: it takes the begin-time snapshot of the
// transaction's static data set before begin responds.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	t := &txn{
		inst: i, ctx: ctx, self: spec.ID,
		snap: make(map[core.Item]core.Value),
		buf:  make(map[core.Item]core.Value),
	}
	t.collectSnapshot(spec.DataSet())
	return t
}

type txn struct {
	inst *instance
	ctx  *machine.Ctx
	self core.TxID
	snap map[core.Item]core.Value
	buf  map[core.Item]core.Value
}

// observe reads one item's locator and resolves the owner's status.
func (t *txn) observe(x core.Item) observation {
	l := t.ctx.Read(t.inst.loc[x]).(locator)
	if l.owner == core.NoTx {
		return observation{l, committed}
	}
	return observation{l, t.ctx.Read(t.inst.status[l.owner]).(int64)}
}

// value resolves an observation to the item's last committed value.
func (o observation) value() core.Value {
	if o.st == committed {
		return o.loc.new
	}
	return o.loc.old
}

// collectSnapshot double-collects (locator, status) pairs over the data
// set until two consecutive passes agree; the agreed pass is an atomic
// snapshot of the committed state at an instant between the passes.
// Disagreement requires a concurrent step, so solo runs finish in exactly
// two passes and obstruction-freedom is preserved.
func (t *txn) collectSnapshot(items []core.Item) {
	prev := make(map[core.Item]observation, len(items))
	for _, x := range items {
		prev[x] = t.observe(x)
	}
	for {
		stable := true
		cur := make(map[core.Item]observation, len(items))
		for _, x := range items {
			cur[x] = t.observe(x)
			if cur[x] != prev[x] {
				stable = false
			}
		}
		if stable {
			for _, x := range items {
				t.snap[x] = cur[x].value()
			}
			return
		}
		prev = cur
	}
}

// Read serves the begin snapshot, or the write buffer for items this
// transaction wrote.
func (t *txn) Read(x core.Item) (core.Value, bool) {
	if v, ok := t.buf[x]; ok {
		return v, true
	}
	return t.snap[x], true
}

// Write acquires ownership DSTM-style, aborting encountered active owners,
// and records the written value for local reads.
func (t *txn) Write(x core.Item, v core.Value) bool {
	for {
		l := t.ctx.Read(t.inst.loc[x]).(locator)
		if l.owner == t.self {
			if t.ctx.CAS(t.inst.loc[x], l, locator{t.self, l.old, v}) {
				t.buf[x] = v
				return true
			}
			continue
		}
		cur := l.new
		if l.owner != core.NoTx {
			switch t.ctx.Read(t.inst.status[l.owner]).(int64) {
			case active:
				t.ctx.CAS(t.inst.status[l.owner], active, aborted)
				continue
			case aborted:
				cur = l.old
			}
		}
		if t.ctx.CAS(t.inst.loc[x], l, locator{t.self, cur, v}) {
			t.buf[x] = v
			return true
		}
	}
}

// Commit is the single status CAS; no read validation (snapshot isolation
// does not require it) and no first-committer-wins rule.
func (t *txn) Commit() bool {
	return t.ctx.CAS(t.inst.status[t.self], active, committed)
}
