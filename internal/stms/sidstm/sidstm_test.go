package sidstm

import (
	"testing"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func bundle(specs []core.TxSpec) *stms.Bundle {
	return &stms.Bundle{Protocol: Protocol{}, Specs: specs}
}

func TestReadsNeverWriteBaseObjects(t *testing.T) {
	// A read-only transaction's steps must all be trivial: readers never
	// abort writers nor publish anything.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y")}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= len(full.Steps); k++ {
		exec, err := b.Run(machine.Schedule{machine.Steps(0, k), machine.Solo(1)})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		for _, s := range exec.Steps {
			if s.Txn == 2 && s.Prim != core.PrimEvent && s.NonTrivial() && s.ObjName != "status(T2)" {
				// The only non-trivial step of a read-only transaction
				// is the commit CAS on its OWN status word; items and
				// other transactions' metadata are untouched.
				t.Fatalf("prefix %d: reader took non-trivial step %v", k, s)
			}
		}
		if exec.StatusOf(2) != core.TxCommitted {
			t.Fatalf("prefix %d: read-only txn = %v", k, exec.StatusOf(2))
		}
	}
}

func TestSnapshotIsAtomic(t *testing.T) {
	// T1 commits x=1 and y=1 atomically (status CAS). Whatever prefix of
	// T1 ran, a reader must see x and y TOGETHER: (0,0) or (1,1), never
	// torn — the begin snapshot is atomic thanks to the double collect.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y")}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= len(full.Steps); k++ {
		exec, err := b.Run(machine.Schedule{machine.Steps(0, k), machine.Solo(1)})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		rv := exec.ReadValues(2)
		if rv["x"] != rv["y"] {
			t.Fatalf("prefix %d: torn snapshot x=%d y=%d", k, rv["x"], rv["y"])
		}
	}
}

func TestWriterAbortsActiveOwner(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2)}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	sawEnemyAbort := false
	for k := 1; k < len(full.Steps)-1; k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k), machine.Solo(1), machine.Solo(0),
		})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if exec.StatusOf(2) != core.TxCommitted {
			t.Fatalf("prefix %d: solo T2 = %v", k, exec.StatusOf(2))
		}
		if exec.StatusOf(1) == core.TxAborted {
			sawEnemyAbort = true
		}
	}
	if !sawEnemyAbort {
		t.Errorf("no prefix led to an enemy abort")
	}
}

// TestRandomSchedulesSatisfySI cross-validates the SI claim on adversarial
// interleavings of three transactions.
func TestRandomSchedulesSatisfySI(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("y", 1), core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("y"), core.W("x", 2)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 1)}},
	}
	b := bundle(specs)
	// Deterministic round-robin-ish interleavings with different strides
	// exercise many overlap shapes without randomness.
	for stride := 1; stride <= 5; stride++ {
		m := b.Build()
		turn := 0
		for steps := 0; steps < 4096; steps++ {
			p := core.ProcID(turn % 3)
			turn++
			if m.Done(p) {
				if m.Done(0) && m.Done(1) && m.Done(2) {
					break
				}
				continue
			}
			for i := 0; i < stride && !m.Done(p); i++ {
				if _, err := m.Step(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		exec := m.Execution()
		m.Close()
		v := history.FromExecution(exec)
		res := consistency.SnapshotIsolation(v)
		if !res.Satisfied {
			t.Errorf("stride %d: SI violated", stride)
		}
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "sidstm" || p.Description() == "" {
		t.Errorf("metadata wrong")
	}
}
