package naive

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func run(t *testing.T, specs []core.TxSpec, sched machine.Schedule) *core.Execution {
	t.Helper()
	b := &stms.Bundle{Protocol: Protocol{}, Specs: specs}
	exec, err := b.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestWritesAreBufferedUntilCommit(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{
		core.W("x", 1), core.W("y", 2), core.R("x"),
	}}}
	exec := run(t, specs, machine.Schedule{machine.Solo(0)})

	// Before the commit invocation no object step may occur: writes are
	// buffered and the read of x is served from the buffer.
	commitInv := -1
	for _, s := range exec.Steps {
		if ev := s.Event; ev != nil && ev.Inv && ev.Op == core.OpTryCommit {
			commitInv = s.Index
		}
	}
	if commitInv < 0 {
		t.Fatal("no commit invocation")
	}
	for _, s := range exec.Steps {
		if s.Prim != core.PrimEvent && s.Index < commitInv {
			t.Errorf("object step %v before commit invocation", s)
		}
	}
	// The local read returns the buffered value.
	if v := exec.ReadValues(1)["x"]; v != 1 {
		t.Errorf("local read = %d, want 1", v)
	}
}

func TestFlushFollowsFirstWriteOrder(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{
		core.W("z", 1), core.W("a", 2), core.W("z", 3),
	}}}
	exec := run(t, specs, machine.Schedule{machine.Solo(0)})
	var flushed []string
	for _, s := range exec.Steps {
		if s.Prim == core.PrimWrite {
			flushed = append(flushed, s.ObjName)
		}
	}
	// z first (first written), then a; the second write to z coalesces.
	want := []string{"val(z)", "val(a)"}
	if len(flushed) != len(want) {
		t.Fatalf("flush sequence %v, want %v", flushed, want)
	}
	for i := range want {
		if flushed[i] != want[i] {
			t.Fatalf("flush sequence %v, want %v", flushed, want)
		}
	}
}

func TestLastWriteWins(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("x", 7)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x")}},
	}
	exec := run(t, specs, machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if v := exec.ReadValues(2)["x"]; v != 7 {
		t.Errorf("read %d, want the last buffered value 7", v)
	}
}

func TestHalfFlushedCommitIsVisible(t *testing.T) {
	// The naive design's flaw, on which the PCL verdict rests: stopping
	// mid-flush exposes a torn commit.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y")}},
	}
	b := &stms.Bundle{Protocol: Protocol{}, Specs: specs}
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(full.Steps)
	torn := false
	for k := 1; k < n1; k++ {
		exec, err := b.Run(machine.Schedule{machine.Steps(0, k), machine.Solo(1)})
		if err != nil {
			t.Fatal(err)
		}
		rv := exec.ReadValues(2)
		if rv["x"] == 1 && rv["y"] == 0 {
			torn = true
		}
	}
	if !torn {
		t.Errorf("no prefix exposed a torn commit — the naive TM should have one")
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "naive" || p.Description() == "" {
		t.Errorf("metadata wrong: %q %q", p.Name(), p.Description())
	}
}
