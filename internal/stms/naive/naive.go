// Package naive implements the simplest deferred-update TM: writes are
// buffered locally and flushed to per-item registers at commit, reads take
// the current register value, and commit always succeeds.
//
// P/C/L position: strictly disjoint-access-parallel (only the
// transaction's own items' registers are ever touched) and trivially
// obstruction-free (no waiting, no aborts) — so by the PCL theorem its
// consistency must fail, and it does: half-flushed commits are visible,
// which the adversary's Figure-5/6 value checks expose as a weak adaptive
// consistency violation.
package naive

import (
	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// Protocol is the naive deferred-update TM.
type Protocol struct{}

// Name implements stms.Protocol.
func (Protocol) Name() string { return "naive" }

// Description implements stms.Protocol.
func (Protocol) Description() string {
	return "deferred update, unguarded commit write-back: P+L, fails C"
}

type instance struct {
	val map[core.Item]core.ObjID
}

// New implements stms.Protocol.
func (Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	return &instance{
		val: stms.ItemObjects(m, specs, "val", func(core.Item) any { return core.InitialValue }),
	}
}

// Txn implements stms.Instance.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	return &txn{inst: i, ctx: ctx, buf: make(map[core.Item]core.Value)}
}

type txn struct {
	inst  *instance
	ctx   *machine.Ctx
	buf   map[core.Item]core.Value
	order []core.Item // first-write order, the commit flush order
}

// Read returns the buffered value for items this transaction wrote, and
// the shared register's current value otherwise.
func (t *txn) Read(x core.Item) (core.Value, bool) {
	if v, ok := t.buf[x]; ok {
		return v, true
	}
	return t.ctx.Read(t.inst.val[x]).(core.Value), true
}

// Write buffers the value locally; no shared step is taken.
func (t *txn) Write(x core.Item, v core.Value) bool {
	if _, ok := t.buf[x]; !ok {
		t.order = append(t.order, x)
	}
	t.buf[x] = v
	return true
}

// Commit flushes the write buffer in first-write order. It cannot fail.
func (t *txn) Commit() bool {
	for _, x := range t.order {
		t.ctx.Write(t.inst.val[x], t.buf[x])
	}
	return true
}
