// Package stms defines the plug-in interface for simulated TM protocols
// running on the deterministic machine, plus the generic transaction
// driver and the Bundle helper the harnesses use to build fresh, replayable
// machines.
//
// Every protocol in the portfolio occupies a known corner of the paper's
// P/C/L triangle; the PCL adversary (internal/pcl) demonstrates that each
// one fails exactly the property its design gives up.
package stms

import (
	"sort"

	"pcltm/internal/core"
	"pcltm/internal/machine"
)

// Protocol is a simulated TM algorithm.
type Protocol interface {
	// Name is the protocol's short identifier (e.g. "tl", "dstm").
	Name() string
	// Description summarizes the design and its P/C/L position.
	Description() string
	// New binds a fresh instance to machine m, pre-allocating every base
	// object the given transactions may touch (shared item
	// representations, per-transaction metadata). Pre-allocation keeps
	// object identities schedule-independent, which the
	// indistinguishability comparisons rely on.
	New(m *machine.Machine, specs []core.TxSpec) Instance
}

// Instance is a protocol bound to one machine.
type Instance interface {
	// Txn starts the protocol-side state of one transaction and returns
	// the operation callbacks the driver invokes. It is called between
	// the begin invocation and its response.
	Txn(ctx *machine.Ctx, spec core.TxSpec) TxOps
}

// TxOps are one live transaction's operation implementations. Each method
// performs the protocol's base-object accesses through the transaction's
// Ctx; returning ok=false means the transaction must abort (the driver
// emits A_T and stops issuing operations).
type TxOps interface {
	// Read implements x.read().
	Read(x core.Item) (v core.Value, ok bool)
	// Write implements x.write(v).
	Write(x core.Item, v core.Value) (ok bool)
	// Commit implements commit_T; true means C_T.
	Commit() (ok bool)
}

// RunTx drives one static transaction through a protocol instance,
// emitting the TM-interface events around the protocol's base-object
// steps. This is the shared "transaction runner" all protocols use, so
// every recorded history is well-formed by construction.
func RunTx(ctx *machine.Ctx, inst Instance, spec core.TxSpec) {
	ctx.SetTxn(spec.ID)
	ctx.InvBegin()
	ops := inst.Txn(ctx, spec)
	ctx.RespBegin()
	for _, op := range spec.Ops {
		switch op.Kind {
		case core.OpRead:
			ctx.InvRead(op.Item)
			v, ok := ops.Read(op.Item)
			if !ok {
				ctx.RespAborted(core.OpRead, op.Item)
				return
			}
			ctx.RespRead(op.Item, v)
		case core.OpWrite:
			ctx.InvWrite(op.Item, op.Value)
			if !ops.Write(op.Item, op.Value) {
				ctx.RespAborted(core.OpWrite, op.Item)
				return
			}
			ctx.RespWrite(op.Item, op.Value)
		}
	}
	ctx.InvCommit()
	if ops.Commit() {
		ctx.RespCommitted()
	} else {
		ctx.RespAborted(core.OpTryCommit, "")
	}
}

// Bundle wires a protocol to a transaction set: Build returns a fresh
// machine with every process's program spawned (each process runs its
// transactions in spec order). Building anew for every schedule is how the
// harness implements "resume from configuration C" — deterministic replay.
type Bundle struct {
	// Protocol is the TM under test.
	Protocol Protocol
	// Specs are the static transactions, each bound to its process.
	Specs []core.TxSpec
	// NProcs is the machine width; zero means "max process index + 1".
	NProcs int
}

// Build constructs a fresh machine, pre-allocates the protocol's objects,
// registers the specs, and spawns one program per process.
func (b *Bundle) Build() *machine.Machine {
	n := b.NProcs
	for _, s := range b.Specs {
		if int(s.Proc)+1 > n {
			n = int(s.Proc) + 1
		}
	}
	m := machine.New(n)
	inst := b.Protocol.New(m, b.Specs)
	for _, s := range b.Specs {
		m.RegisterSpec(s)
	}
	byProc := make(map[core.ProcID][]core.TxSpec)
	var procs []core.ProcID
	for _, s := range b.Specs {
		if _, ok := byProc[s.Proc]; !ok {
			procs = append(procs, s.Proc)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		specs := byProc[p]
		m.Spawn(p, func(ctx *machine.Ctx) {
			for _, spec := range specs {
				RunTx(ctx, inst, spec)
			}
		})
	}
	return m
}

// Run builds a fresh machine, runs the schedule, and returns the recorded
// execution together with any schedule error (budget exhaustion marks
// blocking). The machine is closed before returning.
func (b *Bundle) Run(sched machine.Schedule) (*core.Execution, error) {
	m := b.Build()
	defer m.Close()
	err := machine.RunSchedule(m, sched)
	return m.Execution(), err
}

// ItemObjects is a helper for protocols that allocate per-item base
// objects: it allocates one object per item of the specs' universe with
// the given name prefix and initial state.
func ItemObjects(m *machine.Machine, specs []core.TxSpec, prefix string, initial func(core.Item) any) map[core.Item]core.ObjID {
	out := make(map[core.Item]core.ObjID)
	for _, x := range core.ItemUniverse(specs) {
		out[x] = m.NewObject(prefix+"("+string(x)+")", initial(x))
	}
	return out
}

// TxObjects allocates one object per transaction (protocol metadata such
// as DSTM status words).
func TxObjects(m *machine.Machine, specs []core.TxSpec, prefix string, initial any) map[core.TxID]core.ObjID {
	ids := make([]core.TxID, 0, len(specs))
	for _, s := range specs {
		ids = append(ids, s.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[core.TxID]core.ObjID, len(ids))
	for _, id := range ids {
		out[id] = m.NewObject(prefix+"("+id.String()+")", initial)
	}
	return out
}
