package tl

import (
	"errors"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func bundle(specs []core.TxSpec) *stms.Bundle {
	return &stms.Bundle{Protocol: Protocol{}, Specs: specs}
}

func TestVersionBumpOnCommit(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2)}},
	}
	b := bundle(specs)
	m := b.Build()
	defer m.Close()
	if err := machine.RunSchedule(m, machine.Schedule{machine.Solo(0), machine.Solo(1)}); err != nil {
		t.Fatal(err)
	}
	// Find the meta(x) object's final state: version 2, unlocked.
	var final meta
	found := false
	for _, s := range m.Steps() {
		if s.ObjName == "meta(x)" && s.Prim == core.PrimWrite {
			final = s.Args[0].(meta)
			found = true
		}
	}
	if !found {
		t.Fatal("no meta(x) write recorded")
	}
	if final.locked || final.ver != 2 {
		t.Errorf("final meta = %+v, want unlocked version 2", final)
	}
}

func TestReaderSpinsOnLockedItem(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x")}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	// Find the lock-acquisition step (the successful CAS on meta(x)).
	lockStep := -1
	for _, s := range full.Steps {
		if s.ObjName == "meta(x)" && s.Prim == core.PrimCAS && s.Changed {
			lockStep = s.Index
			break
		}
	}
	if lockStep < 0 {
		t.Fatal("no lock acquisition found")
	}
	// From just after the acquisition, the reader must block.
	_, err = b.Run(machine.Schedule{
		machine.Steps(0, lockStep+1),
		{Proc: 1, Stop: machine.UntilDone, Budget: 500},
	})
	var be *machine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("reader did not block on the held lock: %v", err)
	}
}

func TestValidationAbortOnConcurrentCommit(t *testing.T) {
	// T1 reads x then y; between the two reads T2 commits a new x.
	// T1's commit-time validation must abort it.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 5)}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(full.Steps)
	sawAbort := false
	for k := 1; k < n1; k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k),
			machine.Solo(1),
			{Proc: 0, Stop: machine.UntilDone, Budget: 2000},
		})
		var be *machine.BudgetError
		if errors.As(err, &be) {
			continue // T1 blocked on T2's... cannot happen after T2 done
		}
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if exec.StatusOf(1) == core.TxAborted {
			sawAbort = true
			if exec.StatusOf(2) != core.TxCommitted {
				t.Errorf("prefix %d: T2 not committed", k)
			}
		}
	}
	if !sawAbort {
		t.Errorf("no interleaving aborted T1 — read validation is not working")
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	// After T1 aborts (validation failure), its write-set locks must be
	// released so a later transaction can proceed solo.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("z", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 5)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("z"), core.W("z", 9)}},
	}
	b := bundle(specs)
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(full.Steps); k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k),
			machine.Solo(1),
			{Proc: 0, Stop: machine.UntilDone, Budget: 2000},
			{Proc: 2, Stop: machine.UntilDone, Budget: 2000},
		})
		if err != nil {
			t.Fatalf("prefix %d: %v (locks leaked after abort?)", k, err)
		}
		if exec.StatusOf(3) != core.TxCommitted {
			t.Fatalf("prefix %d: T3 did not commit solo: %v", k, exec.StatusOf(3))
		}
	}
}

func TestLocksAcquiredInSortedItemOrder(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{
		core.W("z", 1), core.W("a", 1), core.W("m", 1),
	}}}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	var acquisitions []string
	for _, s := range exec.Steps {
		if s.Prim == core.PrimCAS && s.Changed {
			acquisitions = append(acquisitions, s.ObjName)
		}
	}
	want := []string{"meta(a)", "meta(m)", "meta(z)"}
	if len(acquisitions) != len(want) {
		t.Fatalf("acquisitions = %v", acquisitions)
	}
	for i := range want {
		if acquisitions[i] != want[i] {
			t.Fatalf("acquisitions = %v, want sorted %v", acquisitions, want)
		}
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "tl" || p.Description() == "" {
		t.Errorf("metadata wrong")
	}
}
