// Package tl implements a TL-style lock-based TM (Dice & Shavit): per-item
// versioned write locks, invisible versioned reads, commit-time lock
// acquisition with read-set validation and version bump.
//
// P/C/L position: strictly disjoint-access-parallel (every base object —
// one version/lock word and one value register per item — belongs to a
// single item) and strictly serializable, but blocking: readers and
// committers spin while an item is write-locked, so a transaction that
// stops mid-commit blocks every later conflicting solo run. The PCL
// adversary observes exactly that: T3's solo run from C1⁻ exhausts its
// step budget on b1's lock — the Liveness corner fails.
package tl

import (
	"sort"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// meta is the per-item version/lock word.
type meta struct {
	locked bool
	owner  core.TxID
	ver    int64
}

// Protocol is the TL-style locking TM.
type Protocol struct{}

// Name implements stms.Protocol.
func (Protocol) Name() string { return "tl" }

// Description implements stms.Protocol.
func (Protocol) Description() string {
	return "TL-style versioned locks, commit-time locking: P+C, fails L (blocking)"
}

type instance struct {
	meta map[core.Item]core.ObjID
	val  map[core.Item]core.ObjID
}

// New implements stms.Protocol.
func (Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	return &instance{
		meta: stms.ItemObjects(m, specs, "meta", func(core.Item) any { return meta{} }),
		val:  stms.ItemObjects(m, specs, "val", func(core.Item) any { return core.InitialValue }),
	}
}

// Txn implements stms.Instance.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	return &txn{
		inst: i, ctx: ctx, self: spec.ID,
		buf:     make(map[core.Item]core.Value),
		readVer: make(map[core.Item]int64),
	}
}

type txn struct {
	inst      *instance
	ctx       *machine.Ctx
	self      core.TxID
	buf       map[core.Item]core.Value
	order     []core.Item
	readVer   map[core.Item]int64
	readOrder []core.Item
}

// Read spins while the item is write-locked, then takes a consistent
// (version-stable) snapshot of the value and records the version for
// commit-time validation. Local reads are served from the write buffer.
func (t *txn) Read(x core.Item) (core.Value, bool) {
	if v, ok := t.buf[x]; ok {
		return v, true
	}
	for {
		m1 := t.ctx.Read(t.inst.meta[x]).(meta)
		if m1.locked {
			continue // blocking: wait for the writer
		}
		v := t.ctx.Read(t.inst.val[x]).(core.Value)
		m2 := t.ctx.Read(t.inst.meta[x]).(meta)
		if m2 == m1 {
			if _, seen := t.readVer[x]; !seen {
				t.readVer[x] = m1.ver
				t.readOrder = append(t.readOrder, x)
			}
			return v, true
		}
	}
}

// Write buffers the value; locks are acquired at commit.
func (t *txn) Write(x core.Item, v core.Value) bool {
	if _, ok := t.buf[x]; !ok {
		t.order = append(t.order, x)
	}
	t.buf[x] = v
	return true
}

// Commit acquires the write-set locks in item order (spinning on held
// locks), validates the read set's versions, flushes values and releases
// with bumped versions. Validation failure — only possible under
// contention — aborts.
func (t *txn) Commit() bool {
	writeSet := make([]core.Item, len(t.order))
	copy(writeSet, t.order)
	sort.Slice(writeSet, func(i, j int) bool { return writeSet[i] < writeSet[j] })

	type held struct {
		item core.Item
		prev meta
	}
	var locks []held
	for _, x := range writeSet {
		for {
			m := t.ctx.Read(t.inst.meta[x]).(meta)
			if m.locked {
				continue // blocking: wait for the other committer
			}
			if t.ctx.CAS(t.inst.meta[x], m, meta{locked: true, owner: t.self, ver: m.ver}) {
				locks = append(locks, held{x, m})
				break
			}
		}
	}

	release := func() {
		for _, h := range locks {
			t.ctx.Write(t.inst.meta[h.item], h.prev)
		}
	}

	for _, x := range t.readOrder {
		m := t.ctx.Read(t.inst.meta[x]).(meta)
		if m.ver != t.readVer[x] || (m.locked && m.owner != t.self) {
			release()
			return false
		}
	}

	for _, h := range locks {
		t.ctx.Write(t.inst.val[h.item], t.buf[h.item])
		t.ctx.Write(t.inst.meta[h.item], meta{ver: h.prev.ver + 1})
	}
	return true
}
