package portfolio

import (
	"errors"
	"math/rand"
	"testing"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
	"pcltm/internal/stms/dstm"
	"pcltm/internal/stms/gclock"
	"pcltm/internal/stms/pramtm"
	"pcltm/internal/stms/tl"
)

func TestRegistry(t *testing.T) {
	if len(All()) != 7 {
		t.Fatalf("portfolio size = %d, want 7", len(All()))
	}
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
		if p.Description() == "" {
			t.Errorf("%s has no description", name)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Errorf("ByName accepted an unknown protocol")
	}
}

// soloSpec is a small read-modify-write transaction.
func soloSpec(id core.TxID, p core.ProcID) core.TxSpec {
	return core.TxSpec{ID: id, Proc: p, Ops: []core.TxOp{
		core.R("x"), core.W("x", core.Value(id)*10), core.W("y", core.Value(id)),
	}}
}

func TestSoloRunsCommitEverywhere(t *testing.T) {
	for _, p := range All() {
		b := &stms.Bundle{Protocol: p, Specs: []core.TxSpec{soloSpec(1, 0)}}
		exec, err := b.Run(machine.Schedule{machine.Solo(0)})
		if err != nil {
			t.Errorf("%s: solo run failed: %v", p.Name(), err)
			continue
		}
		if got := exec.StatusOf(1); got != core.TxCommitted {
			t.Errorf("%s: solo txn status = %v, want committed (obstruction-freedom)", p.Name(), got)
		}
		if v := exec.ReadValues(1)["x"]; v != 0 {
			t.Errorf("%s: solo read of fresh item = %d, want 0", p.Name(), v)
		}
		if werr := history.CheckWellFormed(exec); werr != nil {
			t.Errorf("%s: history not well-formed: %v", p.Name(), werr)
		}
		v := history.FromExecution(exec)
		if !consistency.StrictlySerializable(v).Satisfied {
			t.Errorf("%s: solo execution not strictly serializable", p.Name())
		}
	}
}

// sequentialSpecs: T1 then T2 on different processes, conflicting on x.
func sequentialSpecs() []core.TxSpec {
	return []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 7)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.W("y", 1)}},
	}
}

func TestSequentialVisibility(t *testing.T) {
	sched := machine.Schedule{machine.Solo(0), machine.Solo(1)}
	for _, p := range All() {
		b := &stms.Bundle{Protocol: p, Specs: sequentialSpecs()}
		exec, err := b.Run(sched)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		got := exec.ReadValues(2)["x"]
		want := core.Value(7)
		if p.Name() == "pramtm" {
			want = 0 // replicas never propagate across processes
		}
		if got != want {
			t.Errorf("%s: T2 read x=%d, want %d", p.Name(), got, want)
		}
	}
}

func TestPramSameProcessVisibility(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 7)}},
		{ID: 2, Proc: 0, Ops: []core.TxOp{core.R("x")}},
	}
	b := &stms.Bundle{Protocol: pramtm.Protocol{}, Specs: specs}
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.ReadValues(2)["x"]; got != 7 {
		t.Errorf("same-process read x=%d, want 7 (reads own replica)", got)
	}
	v := history.FromExecution(exec)
	if !consistency.PRAMConsistent(v).Satisfied {
		t.Errorf("pramtm execution not PRAM-consistent")
	}
}

// TestTLBlocksMidCommit reproduces the TL liveness failure: T1 stops while
// holding its commit locks; a conflicting T2 solo run spins into its
// budget.
func TestTLBlocksMidCommit(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x")}},
	}
	b := &stms.Bundle{Protocol: tl.Protocol{}, Specs: specs}

	// Find T1's total solo step count, then replay prefixes until one
	// blocks T2.
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(full.Steps)
	blocked := false
	for k := 1; k < n1; k++ {
		_, err := b.Run(machine.Schedule{
			machine.Steps(0, k),
			{Proc: 1, Stop: machine.UntilDone, Budget: 2000},
		})
		var be *machine.BudgetError
		if errors.As(err, &be) {
			blocked = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected error at prefix %d: %v", k, err)
		}
	}
	if !blocked {
		t.Errorf("no prefix of T1 blocked T2: TL should be blocking mid-commit")
	}
}

// TestDSTMEnemyAbort: T1 opens x and stops; T2 writes x solo (aborting T1)
// and commits; T1 resumes and must abort — legal under obstruction-freedom
// because T2 took steps during T1's interval.
func TestDSTMEnemyAbort(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("z", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2)}},
	}
	b := &stms.Bundle{Protocol: dstm.Protocol{}, Specs: specs}
	// T1 takes enough steps to acquire x's locator but not commit, then
	// T2 runs solo, then T1 finishes.
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(full.Steps)
	sawAbort := false
	for k := 5; k < n1; k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k),
			machine.Solo(1),
			machine.Solo(0),
		})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if exec.StatusOf(2) != core.TxCommitted {
			t.Fatalf("prefix %d: T2 did not commit solo: %v", k, exec.StatusOf(2))
		}
		if exec.StatusOf(1) == core.TxAborted {
			sawAbort = true
			// The execution must still be serializable: T1's writes are
			// invisible.
			v := history.FromExecution(exec)
			if !consistency.Serializable(v).Satisfied {
				t.Errorf("prefix %d: aborted-T1 execution not serializable", k)
			}
			break
		}
	}
	if !sawAbort {
		t.Errorf("no prefix of T1 led to an enemy abort")
	}
}

// TestDSTMStatusContentionViolatesStrictDAP reproduces the Claim-3 shape:
// T1 owns x and y; T2 (conflicting with T1 on x) aborts it; T3
// (conflicting with T1 on y, disjoint from T2) reads T1's status. T2 and
// T3 contend on status(T1) although their data sets are disjoint.
func TestDSTMStatusContentionViolatesStrictDAP(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("y")}},
	}
	b := &stms.Bundle{Protocol: dstm.Protocol{}, Specs: specs}
	full, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(full.Steps)
	found := false
	for k := 1; k < n1; k++ {
		exec, err := b.Run(machine.Schedule{
			machine.Steps(0, k),
			machine.Solo(1),
			machine.Solo(2),
		})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		for _, v := range dap.CheckStrict(exec) {
			if (v.T1 == 2 && v.T2 == 3) || (v.T1 == 3 && v.T2 == 2) {
				found = true
				// The chain T2–T1–T3 must justify it under chain-DAP.
				if chain := dap.CheckChain(exec); len(chain) != 0 {
					t.Errorf("prefix %d: chain-DAP also violated: %v", k, chain)
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Errorf("no prefix exhibited the T2/T3 status-word contention")
	}
}

// TestGClockDisjointContention: two fully disjoint write transactions
// contend on the global clock even when run strictly one after the other.
func TestGClockDisjointContention(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("y", 2)}},
	}
	b := &stms.Bundle{Protocol: gclock.Protocol{}, Specs: specs}
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		t.Fatal(err)
	}
	vs := dap.CheckStrict(exec)
	if len(vs) == 0 {
		t.Fatalf("no strict-DAP violation on the global clock")
	}
	if vs[0].ObjName != "clock" {
		t.Errorf("violation on %s, want clock", vs[0].ObjName)
	}
}

// TestPramZeroContention: no pair of transactions ever contends under
// pramtm, in any schedule.
func TestPramZeroContention(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.R("y")}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 2), core.R("x")}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.W("y", 3), core.R("x")}},
	}
	b := &stms.Bundle{Protocol: pramtm.Protocol{}, Specs: specs}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		exec := randomRun(t, b, r, 3)
		if cs := dap.Contentions(exec); len(cs) != 0 {
			t.Fatalf("pramtm produced contention: %v", cs)
		}
	}
}

// randomRun drives all processes with a random but fair interleaving until
// every program finishes.
func randomRun(t *testing.T, b *stms.Bundle, r *rand.Rand, nprocs int) *core.Execution {
	t.Helper()
	m := b.Build()
	defer m.Close()
	for steps := 0; ; steps++ {
		if steps > 100000 {
			t.Fatalf("random run did not terminate")
		}
		var live []core.ProcID
		for p := 0; p < nprocs; p++ {
			if !m.Done(core.ProcID(p)) {
				live = append(live, core.ProcID(p))
			}
		}
		if len(live) == 0 {
			break
		}
		p := live[r.Intn(len(live))]
		if _, err := m.Step(p); err != nil {
			t.Fatalf("step %v: %v", p, err)
		}
	}
	return m.Execution()
}

// TestRandomSchedulesMeetDeclaredConsistency cross-validates every
// protocol against the checker of the consistency level its design claims.
func TestRandomSchedulesMeetDeclaredConsistency(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("y"), core.W("x", 2)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 3)}},
	}
	claims := map[string]func(*history.View) consistency.Result{
		"tl":     consistency.StrictlySerializable,
		"dstm":   consistency.Serializable,
		"sidstm": consistency.SnapshotIsolation,
		"gclock": consistency.SnapshotIsolation,
		"pramtm": consistency.PRAMConsistent,
	}
	for name, check := range claims {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := &stms.Bundle{Protocol: proto, Specs: specs}
		r := rand.New(rand.NewSource(int64(len(name))))
		for trial := 0; trial < 25; trial++ {
			exec := randomRun(t, b, r, 3)
			if werr := history.CheckWellFormed(exec); werr != nil {
				t.Fatalf("%s trial %d: ill-formed history: %v", name, trial, werr)
			}
			v := history.FromExecution(exec)
			res := check(v)
			if !res.Satisfied {
				t.Errorf("%s trial %d: declared consistency violated", name, trial)
			}
		}
	}
}

// TestDeterministicProtocols: identical schedules yield identical step
// traces for every protocol — the property the replay-based configuration
// machinery depends on.
func TestDeterministicProtocols(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.W("x", 2)}},
	}
	for _, p := range All() {
		b := &stms.Bundle{Protocol: p, Specs: specs}
		full, err := b.Run(machine.Schedule{machine.Solo(0)})
		if err != nil {
			t.Fatal(err)
		}
		k := len(full.Steps) / 2
		sched := machine.Schedule{machine.Steps(0, k), machine.Solo(1), machine.Solo(0)}
		e1, err1 := b.Run(sched)
		e2, err2 := b.Run(sched)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: replay error divergence: %v vs %v", p.Name(), err1, err2)
		}
		if len(e1.Steps) != len(e2.Steps) {
			t.Fatalf("%s: replay length divergence", p.Name())
		}
		for i := range e1.Steps {
			if e1.Steps[i].String() != e2.Steps[i].String() {
				t.Fatalf("%s: replay diverges at step %d:\n  %v\n  %v",
					p.Name(), i, e1.Steps[i], e2.Steps[i])
			}
		}
	}
}

// TestStrictDAPHonoredBySoloCompositions: the strictly-DAP protocols show
// no violation on purely sequential compositions.
func TestStrictDAPHonoredBySoloCompositions(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("y", 2)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x"), core.R("y")}},
	}
	sched := machine.Schedule{machine.Solo(0), machine.Solo(1), machine.Solo(2)}
	for _, name := range []string{"naive", "tl", "pramtm"} {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := &stms.Bundle{Protocol: proto, Specs: specs}
		exec, err := b.Run(sched)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vs := dap.CheckStrict(exec); len(vs) != 0 {
			t.Errorf("%s: unexpected strict-DAP violations: %v", name, vs)
		}
	}
}
