// Package portfolio registers the simulated TM protocols spanning the
// corners of the PCL triangle, for use by the adversary harness, the CLI
// tools and the benchmarks.
package portfolio

import (
	"fmt"

	"pcltm/internal/stms"
	"pcltm/internal/stms/dstm"
	"pcltm/internal/stms/gclock"
	"pcltm/internal/stms/naive"
	"pcltm/internal/stms/pramtm"
	"pcltm/internal/stms/sidstm"
	"pcltm/internal/stms/tl"
)

// All returns every protocol in the portfolio, in presentation order.
// dstm appears twice: with the aggressive contention manager
// obstruction-freedom requires, and with the "polite" waiting manager —
// the ablation that flips its PCL verdict from Parallelism to Liveness.
func All() []stms.Protocol {
	return []stms.Protocol{
		tl.Protocol{},
		dstm.Protocol{},
		dstm.Protocol{Polite: true},
		sidstm.Protocol{},
		gclock.Protocol{},
		pramtm.Protocol{},
		naive.Protocol{},
	}
}

// ByName looks a protocol up by its Name.
func ByName(name string) (stms.Protocol, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("portfolio: unknown protocol %q", name)
}

// Names lists the protocol names in presentation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name()
	}
	return names
}
