// Package pramtm implements the "weaken Consistency" corner of the PCL
// triangle, following the paper's Section 5 remark that PRAM consistency
// "makes it possible to trivially ensure strict disjoint-access-parallelism
// and wait-freedom, without any synchronization between processes": every
// process keeps its own private replica of each item in process-local base
// objects, reads its own replica, and flushes writes only to it.
//
// P/C/L position: strictly disjoint-access-parallel in the strongest
// possible sense (no base object is ever shared between processes, so no
// two transactions contend on anything) and wait-free (every operation is
// a bounded number of uncontended steps). Consistency collapses: writes
// never propagate, which is PRAM-consistent — every process may order
// other processes' transactions at the end of its own view — but violates
// weak adaptive consistency as soon as two conflicting transactions on
// different processes share a written item, which is exactly what the
// adversary's δ1 check catches.
package pramtm

import (
	"fmt"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// Protocol is the no-synchronization PRAM TM.
type Protocol struct{}

// Name implements stms.Protocol.
func (Protocol) Name() string { return "pramtm" }

// Description implements stms.Protocol.
func (Protocol) Description() string {
	return "per-process private replicas, zero synchronization: P+L (wait-free), fails C (PRAM only)"
}

type instance struct {
	// replica[p][x] is process p's private register for item x.
	replica []map[core.Item]core.ObjID
}

// New implements stms.Protocol; it allocates one replica set per process
// in deterministic (process, item) order.
func (Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	nprocs := 0
	for _, s := range specs {
		if int(s.Proc)+1 > nprocs {
			nprocs = int(s.Proc) + 1
		}
	}
	if n := m.NProcs(); n > nprocs {
		nprocs = n
	}
	inst := &instance{replica: make([]map[core.Item]core.ObjID, nprocs)}
	items := core.ItemUniverse(specs)
	for p := 0; p < nprocs; p++ {
		inst.replica[p] = make(map[core.Item]core.ObjID, len(items))
		for _, x := range items {
			inst.replica[p][x] = m.NewObject(fmt.Sprintf("rep%d(%s)", p+1, x), core.InitialValue)
		}
	}
	return inst
}

// Txn implements stms.Instance.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	return &txn{inst: i, ctx: ctx, buf: make(map[core.Item]core.Value)}
}

type txn struct {
	inst  *instance
	ctx   *machine.Ctx
	buf   map[core.Item]core.Value
	order []core.Item
}

// Read returns the buffered value or the process's own replica.
func (t *txn) Read(x core.Item) (core.Value, bool) {
	if v, ok := t.buf[x]; ok {
		return v, true
	}
	return t.ctx.Read(t.inst.replica[t.ctx.Proc()][x]).(core.Value), true
}

// Write buffers locally.
func (t *txn) Write(x core.Item, v core.Value) bool {
	if _, ok := t.buf[x]; !ok {
		t.order = append(t.order, x)
	}
	t.buf[x] = v
	return true
}

// Commit flushes to the process's own replicas only; it cannot fail and
// never touches another process's objects.
func (t *txn) Commit() bool {
	for _, x := range t.order {
		t.ctx.Write(t.inst.replica[t.ctx.Proc()][x], t.buf[x])
	}
	return true
}
