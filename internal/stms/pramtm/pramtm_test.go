package pramtm

import (
	"testing"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func bundle(specs []core.TxSpec) *stms.Bundle {
	return &stms.Bundle{Protocol: Protocol{}, Specs: specs}
}

func TestReplicasAreProcessLocal(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.R("x")}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.W("x", 2)}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Every object step by p1 touches rep1(...), by p2 rep2(...).
	for _, s := range exec.Steps {
		if s.Prim == core.PrimEvent {
			continue
		}
		want := map[core.ProcID]string{0: "rep1", 1: "rep2"}[s.Proc]
		if len(s.ObjName) < 4 || s.ObjName[:4] != want {
			t.Errorf("process %v touched %s", s.Proc, s.ObjName)
		}
	}
	// Cross-process write invisible.
	if v := exec.ReadValues(2)["x"]; v != 0 {
		t.Errorf("T2 saw T1's write: %d", v)
	}
	// Own write visible (local buffer).
	if v := exec.ReadValues(1)["x"]; v != 1 {
		t.Errorf("T1 did not see its own write: %d", v)
	}
}

func TestSameProcessSequentialVisibility(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 7)}},
		{ID: 2, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 8)}},
		{ID: 3, Proc: 0, Ops: []core.TxOp{core.R("x")}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	if v := exec.ReadValues(2)["x"]; v != 7 {
		t.Errorf("T2 read %d, want 7", v)
	}
	if v := exec.ReadValues(3)["x"]; v != 8 {
		t.Errorf("T3 read %d, want 8", v)
	}
}

// TestAlwaysPRAMConsistent: any interleaving whatsoever is
// PRAM-consistent (and wait-free: every op takes a bounded number of
// steps).
func TestAlwaysPRAMConsistent(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.R("y")}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("y", 2), core.R("x")}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.W("x", 3), core.R("x")}},
	}
	b := bundle(specs)
	for stride := 1; stride <= 4; stride++ {
		m := b.Build()
		turn := 0
		for !(m.Done(0) && m.Done(1) && m.Done(2)) {
			p := core.ProcID(turn % 3)
			turn++
			for i := 0; i < stride && !m.Done(p); i++ {
				if _, err := m.Step(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		exec := m.Execution()
		m.Close()
		v := history.FromExecution(exec)
		if !consistency.PRAMConsistent(v).Satisfied {
			t.Fatalf("stride %d: PRAM violated", stride)
		}
		// But weak adaptive consistency fails as soon as cross-process
		// writes exist on shared items (T1/T3 both write x).
		if consistency.WeakAdaptiveConsistent(v).Satisfied {
			t.Logf("stride %d: WAC satisfied (no forcing pattern in this interleaving)", stride)
		}
	}
}

func TestStepCountBounded(t *testing.T) {
	// Wait-freedom, machine-checked: the transaction completes within a
	// fixed number of steps regardless of other processes' state.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.R("y"), core.W("z", 2)}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	// 5 inv/resp pairs (begin, write x, read y, write z, commit) = 10
	// event steps, plus 1 replica read and 2 commit flushes = 13 steps.
	if got := len(exec.Steps); got != 13 {
		t.Errorf("solo run took %d steps, want exactly 13", got)
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "pramtm" || p.Description() == "" {
		t.Errorf("metadata wrong")
	}
}
