// Package gclock implements a global-clock snapshot-isolation STM in the
// style of SI-STM (Riegel, Fetzer, Felber): a shared version clock read at
// begin, per-item versioned registers, reads that insist on
// begin-time-consistent versions, and commits that bump the clock and
// write back stamped values.
//
// P/C/L position: obstruction-free (a read aborts only when it sees a
// version newer than the begin snapshot, which requires a concurrent
// commit) and snapshot-isolation-consistent, but not disjoint-access
// parallel in any variant: every transaction reads the global clock and
// every committing writer fetch-and-adds it, so any two transactions
// whatsoever contend on the clock — exactly the reason the paper notes
// SI-STM "employs a global clock mechanism and therefore is not
// disjoint-access-parallel".
package gclock

import (
	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// vv is a versioned value: the item's value and the clock stamp of the
// commit that produced it.
type vv struct {
	val core.Value
	ver int64
}

// Protocol is the global-clock SI STM.
type Protocol struct{}

// Name implements stms.Protocol.
func (Protocol) Name() string { return "gclock" }

// Description implements stms.Protocol.
func (Protocol) Description() string {
	return "global version clock + stamped registers (SI-STM style): C+L, fails P (clock contention)"
}

type instance struct {
	clock core.ObjID
	item  map[core.Item]core.ObjID
}

// New implements stms.Protocol.
func (Protocol) New(m *machine.Machine, specs []core.TxSpec) stms.Instance {
	return &instance{
		clock: m.NewObject("clock", int64(0)),
		item:  stms.ItemObjects(m, specs, "item", func(core.Item) any { return vv{} }),
	}
}

// Txn implements stms.Instance; it samples the begin snapshot.
func (i *instance) Txn(ctx *machine.Ctx, spec core.TxSpec) stms.TxOps {
	return &txn{
		inst: i, ctx: ctx,
		rv:  ctx.Read(i.clock).(int64),
		buf: make(map[core.Item]core.Value),
	}
}

type txn struct {
	inst  *instance
	ctx   *machine.Ctx
	rv    int64 // begin-time clock value: the snapshot
	buf   map[core.Item]core.Value
	order []core.Item
}

// Read returns the buffered value for written items; otherwise it reads
// the stamped register and aborts if the version postdates the snapshot
// (which only happens when another transaction committed concurrently, so
// obstruction-freedom is preserved).
func (t *txn) Read(x core.Item) (core.Value, bool) {
	if v, ok := t.buf[x]; ok {
		return v, true
	}
	o := t.ctx.Read(t.inst.item[x]).(vv)
	if o.ver > t.rv {
		return 0, false
	}
	return o.val, true
}

// Write buffers locally.
func (t *txn) Write(x core.Item, v core.Value) bool {
	if _, ok := t.buf[x]; !ok {
		t.order = append(t.order, x)
	}
	t.buf[x] = v
	return true
}

// Commit bumps the global clock and writes back the buffered values
// stamped with the new version. Read-only transactions commit without
// touching the clock.
func (t *txn) Commit() bool {
	if len(t.order) == 0 {
		return true
	}
	wv := t.ctx.FAA(t.inst.clock, 1) + 1
	for _, x := range t.order {
		t.ctx.Write(t.inst.item[x], vv{t.buf[x], wv})
	}
	return true
}
