package gclock

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

func bundle(specs []core.TxSpec) *stms.Bundle {
	return &stms.Bundle{Protocol: Protocol{}, Specs: specs}
}

func TestEveryTransactionReadsClockAtBegin(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x")}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("y", 1)}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		t.Fatal(err)
	}
	reads := map[core.TxID]bool{}
	for _, s := range exec.Steps {
		if s.ObjName == "clock" && s.Prim == core.PrimRead {
			reads[s.Txn] = true
		}
	}
	if !reads[1] || !reads[2] {
		t.Errorf("clock begin-reads missing: %v", reads)
	}
}

func TestReadOnlyCommitSkipsClockIncrement(t *testing.T) {
	specs := []core.TxSpec{{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.R("y")}}}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range exec.Steps {
		if s.Prim == core.PrimFAA {
			t.Errorf("read-only transaction incremented the clock: %v", s)
		}
	}
	if exec.StatusOf(1) != core.TxCommitted {
		t.Errorf("read-only txn = %v", exec.StatusOf(1))
	}
}

func TestWriterStampsNewVersion(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 5)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 7)}},
	}
	b := bundle(specs)
	m := b.Build()
	defer m.Close()
	if err := machine.RunSchedule(m, machine.Schedule{machine.Solo(0), machine.Solo(1)}); err != nil {
		t.Fatal(err)
	}
	// The final stamped value must be {7, 2}: second committer, version 2.
	var last vv
	for _, s := range m.Steps() {
		if s.ObjName == "item(x)" && s.Prim == core.PrimWrite {
			last = s.Args[0].(vv)
		}
	}
	if last.val != 7 || last.ver != 2 {
		t.Errorf("final item(x) = %+v, want {7 2}", last)
	}
}

func TestReaderAbortsOnNewerVersion(t *testing.T) {
	// T1 begins (snapshot rv=0) and stalls; T2 commits x with version 1;
	// T1 then reads x, sees ver 1 > rv 0 and must abort — an abort that
	// required T2's concurrent steps, so obstruction-freedom is intact.
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x")}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.W("x", 9)}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{
		machine.Steps(0, 3), // begin events + clock read
		machine.Solo(1),
		machine.Solo(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.StatusOf(1) != core.TxAborted {
		t.Errorf("T1 = %v, want aborted (snapshot too old)", exec.StatusOf(1))
	}
	if exec.StatusOf(2) != core.TxCommitted {
		t.Errorf("T2 = %v", exec.StatusOf(2))
	}
}

func TestSequentialReadersSeeCommittedSnapshot(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.W("x", 1), core.W("y", 2)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.R("y")}},
	}
	b := bundle(specs)
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		t.Fatal(err)
	}
	rv := exec.ReadValues(2)
	if rv["x"] != 1 || rv["y"] != 2 {
		t.Errorf("reader saw %v, want x=1 y=2", rv)
	}
}

func TestDescription(t *testing.T) {
	p := Protocol{}
	if p.Name() != "gclock" || p.Description() == "" {
		t.Errorf("metadata wrong")
	}
}
