package consistency

import (
	"fmt"

	"pcltm/internal/core"
	"pcltm/internal/history"
)

// ValidateWACWitness independently re-checks a witness returned by
// WeakAdaptiveConsistent against Definition 3.3: com(α) shape, partition
// well-formedness (contiguous in begin order, covering all transactions),
// point windows (condition 3 for SI groups, condition 4 for PC groups),
// gr-before-w (condition 1), adjacency for PC groups, cross-view same-item
// write order (condition 2), and per-view legality of the view owner's
// transactions (condition 5). The checkers' searches and this validator
// share only the block-derivation helpers, so agreement is meaningful
// evidence of correctness; the property tests run it on every witness.
func ValidateWACWitness(v *history.View, w *Witness) error {
	byID := make(map[core.TxID]*history.Txn, len(v.Txns))
	for _, t := range v.Txns {
		byID[t.ID] = t
	}

	// com(α): all committed transactions, plus only commit-pending ones.
	inCom := make(map[core.TxID]bool, len(w.Com))
	for _, id := range w.Com {
		t := byID[id]
		if t == nil {
			return fmt.Errorf("witness com contains unknown %v", id)
		}
		if t.Status != core.TxCommitted && t.Status != core.TxCommitPending {
			return fmt.Errorf("witness com contains %v with status %v", id, t.Status)
		}
		inCom[id] = true
	}
	for _, t := range v.Txns {
		if t.Status == core.TxCommitted && !inCom[t.ID] {
			return fmt.Errorf("committed %v missing from com", t.ID)
		}
	}

	// Partition: contiguous cover of the begin order.
	var flat []core.TxID
	groupOf := make(map[core.TxID]int)
	for g, group := range w.Partition {
		for _, id := range group {
			flat = append(flat, id)
			groupOf[id] = g
		}
	}
	if len(flat) != len(v.Txns) {
		return fmt.Errorf("partition covers %d transactions, view has %d", len(flat), len(v.Txns))
	}
	for i, t := range v.Txns {
		if flat[i] != t.ID {
			return fmt.Errorf("partition not contiguous in begin order at position %d: %v vs %v", i, flat[i], t.ID)
		}
	}
	if len(w.Labels) != len(w.Partition) {
		return fmt.Errorf("labels/partition length mismatch")
	}
	groups := make([]groupInterval, len(w.Partition))
	for g, group := range w.Partition {
		gi := groupInterval{lo: byID[group[0]].IntervalLo, hi: byID[group[0]].IntervalHi}
		for _, id := range group[1:] {
			if byID[id].IntervalHi > gi.hi {
				gi.hi = byID[id].IntervalHi
			}
		}
		groups[g] = gi
	}

	// Per view: structural constraints and legality.
	for proc, placed := range w.Views {
		if err := validateWACView(byID, inCom, groupOf, groups, w, proc, placed); err != nil {
			return fmt.Errorf("view of %v: %w", proc, err)
		}
	}

	// Condition 2: same-item writers ordered identically in all views.
	if err := validateSharedWriteOrder(byID, w); err != nil {
		return err
	}
	return nil
}

func validateWACView(byID map[core.TxID]*history.Txn, inCom map[core.TxID]bool,
	groupOf map[core.TxID]int, groups []groupInterval, w *Witness,
	proc core.ProcID, placed []PlacedPoint) error {

	// Every com transaction must contribute its points exactly once.
	type seenPoints struct{ gr, wr bool }
	seen := make(map[core.TxID]*seenPoints)
	for id := range inCom {
		seen[id] = &seenPoints{}
	}

	prevGap := 0
	st := history.NewLegalPrefix()
	for i, pt := range placed {
		t := byID[pt.Txn]
		if t == nil || !inCom[pt.Txn] {
			return fmt.Errorf("point %v for transaction outside com", pt)
		}
		if pt.Gap < prevGap {
			return fmt.Errorf("gaps not monotone at %v", pt)
		}
		prevGap = pt.Gap
		g := groupOf[pt.Txn]
		grBlocks, wBlocks := siBlocks(t, t.Proc == proc)

		switch pt.Kind {
		case PointGR:
			if w.Labels[g] != LabelSI {
				return fmt.Errorf("split point %v in a PC group", pt)
			}
			if pt.Gap < t.IntervalLo+1 || pt.Gap > t.IntervalHi {
				return fmt.Errorf("gr point %v outside active interval [%d,%d]", pt, t.IntervalLo+1, t.IntervalHi)
			}
			if seen[pt.Txn].gr {
				return fmt.Errorf("duplicate gr point for %v", pt.Txn)
			}
			seen[pt.Txn].gr = true
			for _, blk := range grBlocks {
				if !st.Append(blk) {
					return fmt.Errorf("illegal read at %v", pt)
				}
			}
		case PointW:
			if w.Labels[g] != LabelSI {
				return fmt.Errorf("split point %v in a PC group", pt)
			}
			if pt.Gap < t.IntervalLo+1 || pt.Gap > t.IntervalHi {
				return fmt.Errorf("w point %v outside active interval", pt)
			}
			if !seen[pt.Txn].gr {
				return fmt.Errorf("w point of %v before its gr point (condition 1)", pt.Txn)
			}
			if seen[pt.Txn].wr {
				return fmt.Errorf("duplicate w point for %v", pt.Txn)
			}
			seen[pt.Txn].wr = true
			for _, blk := range wBlocks {
				if !st.Append(blk) {
					return fmt.Errorf("illegal block at %v", pt)
				}
			}
		case PointGRW:
			if w.Labels[g] != LabelPC {
				return fmt.Errorf("fused point %v in an SI group", pt)
			}
			if pt.Gap < groups[g].lo+1 || pt.Gap > groups[g].hi {
				return fmt.Errorf("fused point %v outside group interval [%d,%d]", pt, groups[g].lo+1, groups[g].hi)
			}
			if seen[pt.Txn].gr || seen[pt.Txn].wr {
				return fmt.Errorf("duplicate fused point for %v", pt.Txn)
			}
			seen[pt.Txn].gr, seen[pt.Txn].wr = true, true
			for _, blk := range append(append([]history.Block{}, grBlocks...), wBlocks...) {
				if !st.Append(blk) {
					return fmt.Errorf("illegal block at %v", pt)
				}
			}
		default:
			return fmt.Errorf("unexpected point kind %v at %d", pt.Kind, i)
		}
	}
	for id, s := range seen {
		if !s.gr || !s.wr {
			return fmt.Errorf("missing serialization points for %v", id)
		}
	}
	return nil
}

// validateSharedWriteOrder checks condition 2 across all views by
// extracting, per view, the order of write-carrying points of each item's
// writers and comparing.
func validateSharedWriteOrder(byID map[core.TxID]*history.Txn, w *Witness) error {
	writers := make(map[core.Item][]core.TxID)
	for _, id := range w.Com {
		t := byID[id]
		seen := make(map[core.Item]bool)
		for _, op := range t.Ops {
			if op.Kind == core.OpWrite && !seen[op.Item] {
				seen[op.Item] = true
				writers[op.Item] = append(writers[op.Item], id)
			}
		}
	}
	var ref map[core.Item][]core.TxID
	for proc, placed := range w.Views {
		pos := make(map[core.TxID]int)
		for i, pt := range placed {
			if pt.Kind == PointW || pt.Kind == PointGRW {
				pos[pt.Txn] = i
			}
		}
		cur := make(map[core.Item][]core.TxID)
		for item, ws := range writers {
			if len(ws) < 2 {
				continue
			}
			order := append([]core.TxID(nil), ws...)
			for i := 1; i < len(order); i++ {
				for j := i; j > 0 && pos[order[j]] < pos[order[j-1]]; j-- {
					order[j], order[j-1] = order[j-1], order[j]
				}
			}
			cur[item] = order
		}
		if ref == nil {
			ref = cur
			continue
		}
		for item, order := range cur {
			for i := range order {
				if ref[item][i] != order[i] {
					return fmt.Errorf("views disagree on %s write order (%v vs %v in view of %v)",
						item, ref[item], order, proc)
				}
			}
		}
	}
	return nil
}
