package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// ProcessorConsistent decides the paper's processor consistency
// (Definition 3.2): every process p_i has its own serialization ∗T of the
// com(α) transactions such that
//
//	1a. same-process transactions keep their <α order in every view,
//	1b. transactions writing the same data item are ordered the same way
//	    in all views,
//	 2. every transaction executed by p_i is legal in p_i's view.
//
// Views place whole-transaction points anywhere in the execution; only
// the view owner's reads are validated.
func ProcessorConsistent(v *history.View) Result {
	return processorLike(v, true)
}

// PRAMConsistent decides PRAM consistency (Lipton–Sandberg): processor
// consistency without condition 1b — views need not agree on the order of
// writes to the same item. The paper's Section 5 uses PRAM as the "weaken
// C" corner: it is trivially compatible with strict
// disjoint-access-parallelism and wait-freedom.
func PRAMConsistent(v *history.View) Result {
	return processorLike(v, false)
}

func processorLike(v *history.View, sharedWriteOrder bool) Result {
	res := Result{}
	for _, com := range comChoices(v) {
		orderChoices := []map[core.Item][]core.TxID{{}}
		if sharedWriteOrder {
			orderChoices = itemOrderChoices(com)
		}
		for _, orders := range orderChoices {
			res.Configs++
			views := make(map[core.ProcID][]PlacedPoint)
			allOK := true
			for _, p := range viewProcs(com) {
				placed, ok := solvePCView(com, p, orders, &res.Nodes)
				if !ok {
					allOK = false
					break
				}
				views[p] = placed
			}
			if allOK {
				res.Satisfied = true
				w := &Witness{Com: comIDs(com), Views: views}
				if sharedWriteOrder {
					w.ItemOrders = prunedOrders(orders)
				}
				res.Witness = w
				return res
			}
			if res.Nodes > searchBudget {
				res.Exhausted = true
				return res
			}
		}
	}
	return res
}

// solvePCView builds and solves the view of process p: one point per com
// transaction carrying its full history block, reads validated only for
// p's own transactions.
func solvePCView(com []*history.Txn, p core.ProcID, orders map[core.Item][]core.TxID, nodes *int) ([]PlacedPoint, bool) {
	points := make([]point, 0, len(com))
	idx := make(map[core.TxID]int, len(com))
	writerPoint := make(map[core.TxID]int, len(com))
	for _, t := range com {
		b := history.FullBlock(t)
		b.CheckReads = t.Proc == p
		idx[t.ID] = len(points)
		if len(t.Writes()) > 0 {
			writerPoint[t.ID] = len(points)
		}
		points = append(points, point{
			txn: t.ID, kind: PointTx,
			blocks: []history.Block{b},
			lo:     0, hi: unboundedHi,
		})
	}
	// Condition 1a: same-process <α order.
	for _, a := range com {
		for _, b := range com {
			if a != b && a.Proc == b.Proc && precedes(a, b) {
				points[idx[b.ID]].preds = append(points[idx[b.ID]].preds, idx[a.ID])
			}
		}
	}
	// Condition 1b: the shared per-item write order.
	orderEdges(points, writerPoint, orders)
	vs := &viewSolver{points: points, nodes: nodes}
	return vs.solve()
}

// prunedOrders drops single-writer items from a witness's order map.
func prunedOrders(orders map[core.Item][]core.TxID) map[core.Item][]core.TxID {
	out := make(map[core.Item][]core.TxID)
	for x, seq := range orders {
		if len(seq) >= 2 {
			out[x] = seq
		}
	}
	return out
}
