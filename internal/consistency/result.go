// Package consistency turns the paper's consistency conditions into exact
// decision procedures over recorded executions:
//
//   - Serializable / StrictlySerializable (Papadimitriou),
//   - SnapshotIsolation — the paper's weak variant (Definition 3.1): split
//     global-read/write serialization points inside active execution
//     intervals, no "first committer wins", local reads unconstrained,
//   - ProcessorConsistent (Definition 3.2): per-process views, shared
//     per-item write order,
//   - PRAMConsistent: per-process views without the shared write order,
//   - WeakAdaptiveConsistent (Definition 3.3): consistency partitions into
//     snapshot-isolation and processor-consistency groups.
//
// Each checker either produces a Witness — the serialization points,
// partition, labelling and per-item write orders that demonstrate the
// condition — or reports that the exhaustive search found none. The
// searches are exact for the execution sizes the PCL construction
// produces (≤ 8 transactions); a node budget guards against pathological
// inputs.
package consistency

import (
	"fmt"
	"sort"
	"strings"

	"pcltm/internal/core"
)

// PointKind labels a placed serialization point.
type PointKind string

const (
	// PointGR is a global-read serialization point ∗T,gr.
	PointGR PointKind = "gr"
	// PointW is a write serialization point ∗T,w.
	PointW PointKind = "w"
	// PointTx is a whole-transaction point ∗T (serializability, Def 3.2).
	PointTx PointKind = "tx"
	// PointGRW is a fused adjacent ⟨∗T,gr ∗T,w⟩ pair (PC groups in WAC).
	PointGRW PointKind = "gr+w"
)

// PlacedPoint is one serialization point of a witness view: the
// transaction, the point kind, and the gap (between execution steps
// Gap-1 and Gap) where the search placed it.
type PlacedPoint struct {
	Txn  core.TxID
	Kind PointKind
	Gap  int
}

func (p PlacedPoint) String() string {
	return fmt.Sprintf("*%s,%s@%d", p.Txn, p.Kind, p.Gap)
}

// GroupLabel says whether a consistency group was satisfied as a snapshot
// isolation group or a processor consistency group.
type GroupLabel int

const (
	// LabelSI marks a snapshot isolation group.
	LabelSI GroupLabel = iota
	// LabelPC marks a processor consistency group.
	LabelPC
)

func (l GroupLabel) String() string {
	if l == LabelSI {
		return "SI"
	}
	return "PC"
}

// Witness is the evidence that an execution satisfies a condition: the
// commit-set choice, the per-process serialization sequences and — for
// weak adaptive consistency — the consistency partition, group labels and
// per-item write orders.
type Witness struct {
	// Com is com(α): the committed transactions plus the chosen
	// commit-pending ones.
	Com []core.TxID
	// Views maps each process with transactions to its serialization
	// sequence. Single-view conditions use process 0 as the sole key.
	Views map[core.ProcID][]PlacedPoint
	// Partition lists the consistency groups (WAC only).
	Partition [][]core.TxID
	// Labels parallels Partition (WAC only).
	Labels []GroupLabel
	// ItemOrders records the per-item write order the views agreed on
	// (WAC and PC only; items with fewer than two writers omitted).
	ItemOrders map[core.Item][]core.TxID
}

// String renders a compact human-readable witness.
func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "com(α)={%s}", joinTx(w.Com))
	if len(w.Partition) > 0 {
		b.WriteString(" partition=")
		for i, g := range w.Partition {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s{%s}", w.Labels[i], joinTx(g))
		}
	}
	procs := make([]int, 0, len(w.Views))
	for p := range w.Views {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	for _, p := range procs {
		fmt.Fprintf(&b, " σ_%s=[", core.ProcID(p))
		for i, pt := range w.Views[core.ProcID(p)] {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(pt.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

func joinTx(ids []core.TxID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, ",")
}

// Result is a checker verdict.
type Result struct {
	// Satisfied reports whether a witness exists.
	Satisfied bool
	// Witness demonstrates satisfaction (nil when unsatisfied).
	Witness *Witness
	// Configs counts the (com, partition, labelling, item-order)
	// configurations the search examined.
	Configs int
	// Nodes counts search-tree nodes across all configurations.
	Nodes int
	// Exhausted is set when the node budget was hit before the search
	// completed; Satisfied=false is then inconclusive.
	Exhausted bool
}

// searchBudget bounds the total number of search nodes per checker call.
const searchBudget = 50_000_000
