package consistency

import "pcltm/internal/history"

// Checker is a named consistency decision procedure.
type Checker struct {
	// Name is the condition's short name.
	Name string
	// Check decides the condition on a view.
	Check func(*history.View) Result
}

// Checkers lists every implemented condition, strongest first. The order
// documents the paper's hierarchy: strict serializability ⇒ serializability
// ⇒ processor consistency ⇒ weak adaptive consistency, and snapshot
// isolation ⇒ weak adaptive consistency; PRAM is weaker than processor
// consistency but incomparable to the rest.
func Checkers() []Checker {
	return []Checker{
		{"opacity", Opaque},
		{"strict-serializability", StrictlySerializable},
		{"serializability", Serializable},
		{"snapshot-isolation", SnapshotIsolation},
		{"processor-consistency", ProcessorConsistent},
		{"pram", PRAMConsistent},
		{"weak-adaptive-consistency", WeakAdaptiveConsistent},
	}
}

// CheckAll runs every checker on the view.
func CheckAll(v *history.View) map[string]Result {
	out := make(map[string]Result)
	for _, c := range Checkers() {
		out[c.Name] = c.Check(v)
	}
	return out
}
