package consistency

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
)

func TestOpacityAcceptsSequential(t *testing.T) {
	v := view(sequentialExec())
	res := Opaque(v)
	if !res.Satisfied {
		t.Fatalf("opacity rejected a legal sequential execution")
	}
	if res.Witness == nil || len(res.Witness.Views[0]) != 2 {
		t.Errorf("witness incomplete: %v", res.Witness)
	}
}

// TestOpacityValidatesAbortedReads: a zombie transaction that observed an
// inconsistent snapshot violates opacity even though it aborted, while
// strict serializability (committed projection) is untouched.
func TestOpacityValidatesAbortedReads(t *testing.T) {
	// T1 commits x=1, y=1 atomically. T2 read x=1 but y=0 — a torn
	// snapshot — and then aborted.
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 1), exectest.WV("y", 1))
	b.Begin(1, 2).
		Read(1, 2, "x", 1).
		Read(1, 2, "y", 0).
		Abort(1, 2)
	v := view(b.Exec())
	if !StrictlySerializable(v).Satisfied {
		t.Fatalf("strict serializability must ignore the aborted zombie")
	}
	if Opaque(v).Satisfied {
		t.Errorf("opacity accepted a torn snapshot in an aborted transaction")
	}
}

// TestOpacityConsistentAbortAccepted: an aborted transaction whose reads
// were consistent is fine.
func TestOpacityConsistentAbortAccepted(t *testing.T) {
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 1), exectest.WV("y", 1))
	b.Begin(1, 2).
		Read(1, 2, "x", 1).
		Read(1, 2, "y", 1).
		Abort(1, 2)
	v := view(b.Exec())
	if !Opaque(v).Satisfied {
		t.Errorf("opacity rejected a consistent aborted reader")
	}
}

// TestOpacityAbortedWritesInvisible: nobody else may observe an aborted
// transaction's writes, but the aborted transaction's own later reads do
// see them — the paper's legality rule (i) applies within the block, so
// an aborted transaction's reads validate against its own earlier writes
// (Block.Ephemeral) while publishing nothing.
func TestOpacityAbortedWritesInvisible(t *testing.T) {
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 9).Abort(0, 1)
	b.SeqTxn(1, 2, exectest.RV("x", 9)) // claims to see the aborted write
	v := view(b.Exec())
	if Opaque(v).Satisfied {
		t.Errorf("opacity accepted a read of an aborted write")
	}
	b2 := exectest.New()
	b2.Begin(0, 1).Write(0, 1, "x", 9).Abort(0, 1)
	b2.SeqTxn(1, 2, exectest.RV("x", 0))
	if !Opaque(view(b2.Exec())).Satisfied {
		t.Errorf("opacity rejected the invisible-abort execution")
	}
	// Read-own-write inside the aborted transaction: legal iff the value
	// matches the transaction's own write, independent of committed state.
	b3 := exectest.New()
	b3.Begin(0, 1).Write(0, 1, "x", 9).Read(0, 1, "x", 9).Abort(0, 1)
	if !Opaque(view(b3.Exec())).Satisfied {
		t.Errorf("opacity rejected an aborted transaction reading its own write")
	}
	b4 := exectest.New()
	b4.Begin(0, 1).Write(0, 1, "x", 9).Read(0, 1, "x", 7).Abort(0, 1)
	if Opaque(view(b4.Exec())).Satisfied {
		t.Errorf("opacity accepted an aborted transaction misreading its own write")
	}
}

// TestOpacityRealTimeOrder: opacity preserves real-time order across all
// transactions, like strict serializability.
func TestOpacityRealTimeOrder(t *testing.T) {
	v := view(staleSequentialExec())
	if Opaque(v).Satisfied {
		t.Errorf("opacity accepted a stale read across disjoint intervals")
	}
}

// TestOpacityImpliesStrictSerializability: on every shared fixture, an
// opacity witness implies a strict-serializability witness (the paper's
// hierarchy: opacity is the strongest condition considered).
func TestOpacityImpliesStrictSerializability(t *testing.T) {
	for i, e := range []*core.Execution{
		sequentialExec(), writeSkewExec(), staleSequentialExec(), delta1Exec(),
	} {
		v := view(e)
		op := Opaque(v)
		strict := StrictlySerializable(v)
		if op.Satisfied && !strict.Satisfied {
			t.Errorf("case %d: opaque but not strictly serializable", i)
		}
		if op.Satisfied && !WeakAdaptiveConsistent(v).Satisfied {
			t.Errorf("case %d: opaque but not WAC — WAC must be weaker", i)
		}
	}
}
