package consistency

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
)

func view(e *core.Execution) *history.View { return history.FromExecution(e) }

// sequentialExec: T1 then T2 run solo, fully committed, values consistent.
func sequentialExec() *core.Execution {
	return exectest.New().
		SeqTxn(0, 1, exectest.RV("x", 0), exectest.WV("x", 1), exectest.WV("y", 1)).
		SeqTxn(1, 2, exectest.RV("x", 1), exectest.RV("y", 1), exectest.WV("z", 2)).
		Exec()
}

func TestSequentialSatisfiesEverything(t *testing.T) {
	v := view(sequentialExec())
	for _, c := range Checkers() {
		res := c.Check(v)
		if !res.Satisfied {
			t.Errorf("%s rejects a legal sequential execution", c.Name)
		}
		if res.Witness == nil {
			t.Errorf("%s returned no witness", c.Name)
		}
		if res.Exhausted {
			t.Errorf("%s exhausted its budget on a 2-txn execution", c.Name)
		}
	}
}

func TestEmptyExecutionSatisfiesEverything(t *testing.T) {
	v := view(exectest.New().Exec())
	for _, c := range Checkers() {
		if !c.Check(v).Satisfied {
			t.Errorf("%s rejects the empty execution", c.Name)
		}
	}
}

// staleSequentialExec: T1 commits x:=1; T2 begins strictly afterwards and
// reads the stale x=0.
func staleSequentialExec() *core.Execution {
	return exectest.New().
		SeqTxn(0, 1, exectest.WV("x", 1)).
		SeqTxn(1, 2, exectest.RV("x", 0)).
		Exec()
}

func TestStaleReadSeparatesStrictFromPlain(t *testing.T) {
	v := view(staleSequentialExec())
	if StrictlySerializable(v).Satisfied {
		t.Errorf("strict serializability accepted a stale read after real-time commit")
	}
	if !Serializable(v).Satisfied {
		t.Errorf("plain serializability must accept (T2 serialized before T1)")
	}
	// The paper's SI anchors points inside active execution intervals, so
	// real time is respected: T2's gr point cannot precede T1's w point.
	if SnapshotIsolation(v).Satisfied {
		t.Errorf("snapshot isolation accepted a stale read across disjoint intervals")
	}
}

// writeSkewExec interleaves T1 and T2 so their intervals overlap:
// T1 reads x=0 writes y:=1, T2 reads y=0 writes x:=1.
func writeSkewExec() *core.Execution {
	b := exectest.New()
	b.Begin(0, 1).Begin(1, 2)
	b.Read(0, 1, "x", 0).Read(1, 2, "y", 0)
	b.Write(0, 1, "y", 1).Write(1, 2, "x", 1)
	b.Commit(0, 1).Commit(1, 2)
	return b.Exec()
}

func TestWriteSkew(t *testing.T) {
	v := view(writeSkewExec())
	if Serializable(v).Satisfied {
		t.Errorf("write skew is not serializable")
	}
	res := SnapshotIsolation(v)
	if !res.Satisfied {
		t.Errorf("write skew is the canonical snapshot-isolation-legal anomaly")
	}
	if !WeakAdaptiveConsistent(v).Satisfied {
		t.Errorf("snapshot isolation implies weak adaptive consistency")
	}
}

// delta1Exec reproduces the proof's δ1 shape as produced by a TM with no
// inter-process visibility (the PRAM-TM): T1 commits writes including b1
// and the shared item e1,3; T3 then runs solo but still reads b1=0.
func delta1Exec() *core.Execution {
	return exectest.New().
		SeqTxn(0, 1,
			exectest.RV("b3", 0), exectest.RV("b7", 0),
			exectest.WV("a", 1), exectest.WV("b1", 1), exectest.WV("c1", 1),
			exectest.WV("d1", 1), exectest.WV("e1,3", 1)).
		SeqTxn(2, 3,
			exectest.RV("b1", 0), exectest.RV("b4", 0),
			exectest.WV("b3", 1), exectest.WV("c3", 1),
			exectest.WV("e1,3", 1), exectest.WV("e3,4", 1)).
		Exec()
}

// TestDelta1ForcesB1Read mechanizes the first case analysis of the proof:
// after T1 commits solo, weak adaptive consistency forces T3's solo run to
// read 1 for b1 — so the δ1 execution where it reads 0 has no witness, in
// any partition, labelling, or com choice.
func TestDelta1ForcesB1Read(t *testing.T) {
	v := view(delta1Exec())
	if SnapshotIsolation(v).Satisfied {
		t.Errorf("SI accepted δ1 with a stale b1")
	}
	if ProcessorConsistent(v).Satisfied {
		t.Errorf("PC accepted δ1 with a stale b1")
	}
	res := WeakAdaptiveConsistent(v)
	if res.Satisfied {
		t.Errorf("WAC accepted δ1 with a stale b1: witness %v", res.Witness)
	}
	if res.Exhausted {
		t.Errorf("WAC search exhausted on δ1")
	}
	// PRAM, lacking the shared write order on e1,3, accepts it: this is
	// exactly why PRAM-consistent TMs escape the PCL theorem (Section 5).
	if !PRAMConsistent(v).Satisfied {
		t.Errorf("PRAM must accept δ1 (views may disagree on e1,3's writers)")
	}
}

// TestDelta1WithoutSharedItem drops the shared written item e1,3: the
// processor-consistency escape hatch opens and WAC accepts the stale read.
func TestDelta1WithoutSharedItem(t *testing.T) {
	e := exectest.New().
		SeqTxn(0, 1,
			exectest.RV("b3", 0),
			exectest.WV("a", 1), exectest.WV("b1", 1)).
		SeqTxn(2, 3,
			exectest.RV("b1", 0),
			exectest.WV("b3", 1), exectest.WV("c3", 1)).
		Exec()
	v := view(e)
	res := WeakAdaptiveConsistent(v)
	if !res.Satisfied {
		t.Fatalf("WAC must accept once no written item is shared")
	}
	// The witness must use a PC group: SI groups anchor points in the
	// transactions' disjoint intervals, forcing T3 to see b1=1.
	foundPC := false
	for _, l := range res.Witness.Labels {
		if l == LabelPC {
			foundPC = true
		}
	}
	if !foundPC {
		t.Errorf("witness used no PC group: %v", res.Witness)
	}
	if SnapshotIsolation(v).Satisfied {
		t.Errorf("SI cannot accept: intervals are disjoint")
	}
}

// pcOrderExec: two writers to x commit; two reader processes each run two
// sequential transactions observing the writes in the SAME order.
func pcOrderExec(p3FirstVal, p3SecondVal, p4FirstVal, p4SecondVal core.Value) *core.Execution {
	b := exectest.New()
	b.Begin(0, 1).Begin(1, 2)
	b.Write(0, 1, "x", 1).Write(1, 2, "x", 2)
	b.Commit(0, 1).Commit(1, 2)
	b.SeqTxn(2, 3, exectest.RV("x", p3FirstVal))
	b.SeqTxn(2, 4, exectest.RV("x", p3SecondVal))
	b.SeqTxn(3, 5, exectest.RV("x", p4FirstVal))
	b.SeqTxn(3, 6, exectest.RV("x", p4SecondVal))
	return b.Exec()
}

func TestProcessorConsistencySharedWriteOrder(t *testing.T) {
	// Both reader processes see 1 then 2: PC-consistent.
	agree := view(pcOrderExec(1, 2, 1, 2))
	if !ProcessorConsistent(agree).Satisfied {
		t.Errorf("PC rejected agreeing views")
	}
	// p3 sees 1→2 but p4 sees 2→1: PRAM fine, PC violated.
	disagree := view(pcOrderExec(1, 2, 2, 1))
	if ProcessorConsistent(disagree).Satisfied {
		t.Errorf("PC accepted diverging write orders")
	}
	if !PRAMConsistent(disagree).Satisfied {
		t.Errorf("PRAM rejected diverging write orders")
	}
}

func TestPCRespectsProcessOrder(t *testing.T) {
	// One process runs T1 then T2; T2 reads its own process's earlier
	// write via memory. A view reordering T2 before T1 would be illegal
	// for the owner, but other processes may order them freely.
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 1))
	b.SeqTxn(0, 2, exectest.RV("x", 1))
	v := view(b.Exec())
	if !ProcessorConsistent(v).Satisfied {
		t.Errorf("PC rejected program-order-respecting run")
	}
	// Same process, but the second transaction reads a stale 0: 1a forces
	// T1 before T2 in the owner's view, so the read is illegal.
	b2 := exectest.New()
	b2.SeqTxn(0, 1, exectest.WV("x", 1))
	b2.SeqTxn(0, 2, exectest.RV("x", 0))
	v2 := view(b2.Exec())
	if ProcessorConsistent(v2).Satisfied {
		t.Errorf("PC accepted a same-process stale read")
	}
	// On different processes the same stale read is PC-legal.
	b3 := exectest.New()
	b3.SeqTxn(0, 1, exectest.WV("x", 1))
	b3.SeqTxn(1, 2, exectest.RV("x", 0))
	v3 := view(b3.Exec())
	if !ProcessorConsistent(v3).Satisfied {
		t.Errorf("PC rejected a cross-process stale read")
	}
}

func TestCommitPendingSelection(t *testing.T) {
	// T1 is commit-pending with a write of x=1; T2 committed reading 1:
	// satisfiable only by including T1 in com(α).
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 1).CommitInv(0, 1)
	b.SeqTxn(1, 2, exectest.RV("x", 1))
	v := view(b.Exec())
	res := Serializable(v)
	if !res.Satisfied {
		t.Fatalf("serializability rejected commit-pending inclusion")
	}
	if len(res.Witness.Com) != 2 {
		t.Errorf("witness com = %v, want both transactions", res.Witness.Com)
	}

	// Reading 0 instead: satisfiable only by excluding T1.
	b2 := exectest.New()
	b2.Begin(0, 1).Write(0, 1, "x", 1).CommitInv(0, 1)
	b2.SeqTxn(1, 2, exectest.RV("x", 0))
	v2 := view(b2.Exec())
	res2 := Serializable(v2)
	if !res2.Satisfied {
		t.Fatalf("serializability rejected commit-pending exclusion")
	}
	if len(res2.Witness.Com) != 1 || res2.Witness.Com[0] != 2 {
		t.Errorf("witness com = %v, want only T2", res2.Witness.Com)
	}
}

func TestAbortedTransactionsInvisible(t *testing.T) {
	// T1 aborts after writing x=1 (the write must not be visible); T2
	// reads 0 and commits.
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 1).Abort(0, 1)
	b.SeqTxn(1, 2, exectest.RV("x", 0))
	v := view(b.Exec())
	for _, c := range Checkers() {
		if !c.Check(v).Satisfied {
			t.Errorf("%s rejected an execution with an invisible aborted write", c.Name)
		}
	}
	// If T2 claims to have seen the aborted write, nothing can justify it.
	b2 := exectest.New()
	b2.Begin(0, 1).Write(0, 1, "x", 1).Abort(0, 1)
	b2.SeqTxn(1, 2, exectest.RV("x", 1))
	v2 := view(b2.Exec())
	for _, c := range Checkers() {
		if c.Check(v2).Satisfied {
			t.Errorf("%s accepted a read of an aborted write", c.Name)
		}
	}
}

func TestLocalReadsUnconstrainedUnderSI(t *testing.T) {
	// T1 writes x=5 then reads x=77 (nonsense locally, but the paper's
	// weak SI does not constrain local reads); the global read of y is
	// still validated.
	b := exectest.New()
	b.Begin(0, 1).
		Write(0, 1, "x", 5).
		Read(0, 1, "x", 77).
		Read(0, 1, "y", 0).
		Commit(0, 1)
	v := view(b.Exec())
	if !SnapshotIsolation(v).Satisfied {
		t.Errorf("weak SI must ignore local reads")
	}
	if !WeakAdaptiveConsistent(v).Satisfied {
		t.Errorf("WAC must ignore local reads")
	}
	// Serializability validates local reads and must reject.
	if Serializable(v).Satisfied {
		t.Errorf("serializability must validate local reads")
	}
}

func TestSIImpliesWACOnConstructedCases(t *testing.T) {
	cases := []*core.Execution{
		sequentialExec(),
		writeSkewExec(),
		staleSequentialExec(),
		delta1Exec(),
	}
	for i, e := range cases {
		v := view(e)
		si := SnapshotIsolation(v)
		wac := WeakAdaptiveConsistent(v)
		if si.Satisfied && !wac.Satisfied {
			t.Errorf("case %d: SI satisfied but WAC not — WAC must be weaker", i)
		}
		pc := ProcessorConsistent(v)
		if pc.Satisfied && !wac.Satisfied {
			t.Errorf("case %d: PC satisfied but WAC not — WAC must be weaker", i)
		}
		ser := Serializable(v)
		if ser.Satisfied && !pc.Satisfied {
			t.Errorf("case %d: serializable but not PC", i)
		}
		strict := StrictlySerializable(v)
		if strict.Satisfied && !ser.Satisfied {
			t.Errorf("case %d: strictly serializable but not serializable", i)
		}
		if pc.Satisfied && !PRAMConsistent(v).Satisfied {
			t.Errorf("case %d: PC but not PRAM", i)
		}
	}
}

func TestWitnessString(t *testing.T) {
	v := view(sequentialExec())
	res := WeakAdaptiveConsistent(v)
	if !res.Satisfied || res.Witness.String() == "" {
		t.Errorf("witness unprintable: %+v", res)
	}
	res2 := SnapshotIsolation(v)
	if !res2.Satisfied || res2.Witness.String() == "" {
		t.Errorf("SI witness unprintable")
	}
}

func TestConfigsCounted(t *testing.T) {
	v := view(delta1Exec())
	res := WeakAdaptiveConsistent(v)
	if res.Configs < 2 {
		t.Errorf("WAC examined only %d configurations on an unsatisfiable input", res.Configs)
	}
	if res.Nodes == 0 {
		t.Errorf("no search nodes counted")
	}
}
