package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// WeakAdaptiveConsistent decides the paper's weak adaptive consistency
// (Definition 3.3), the weakest condition in the PCL theorem. An execution
// satisfies it if one can
//
//	(i)   choose a consistency partition P(α) — a division of the
//	      transactions, in begin order, into contiguous consistency
//	      groups,
//	(ii)  label every group as a snapshot-isolation group or a
//	      processor-consistency group,
//	(iii) choose com(α) ⊇ committed transactions,
//	(iv)  give every process p_i its own placement of the points ∗T,gr
//	      and ∗T,w such that per view: gr precedes w (cond. 1); SI-group
//	      members keep both points inside their own active execution
//	      interval (cond. 3); PC-group members keep their two points
//	      adjacent and inside the group's active execution interval
//	      (cond. 4); all views order same-item writers identically
//	      (cond. 2); and replacing points by Tgr/Tw fragments leaves every
//	      transaction of p_i legal in p_i's view (cond. 5).
//
// The search is exhaustive over partitions, labellings, com choices and
// per-item write orders; it returns the first witness found.
func WeakAdaptiveConsistent(v *history.View) Result {
	res := Result{}
	n := len(v.Txns)
	if n == 0 {
		res.Satisfied = true
		res.Witness = &Witness{Views: map[core.ProcID][]PlacedPoint{}}
		res.Configs = 1
		return res
	}
	for _, com := range comChoices(v) {
		inCom := make(map[core.TxID]bool, len(com))
		for _, t := range com {
			inCom[t.ID] = true
		}
		for _, part := range partitions(v.Txns) {
			groups := groupIntervals(part)
			for label := 0; label < 1<<len(part); label++ {
				labels := make([]GroupLabel, len(part))
				for g := range part {
					if label&(1<<g) != 0 {
						labels[g] = LabelPC
					}
				}
				for _, orders := range itemOrderChoices(com) {
					res.Configs++
					views := make(map[core.ProcID][]PlacedPoint)
					allOK := true
					for _, p := range viewProcs(com) {
						placed, ok := solveWACView(com, part, groups, labels, p, orders, &res.Nodes)
						if !ok {
							allOK = false
							break
						}
						views[p] = placed
					}
					if allOK {
						res.Satisfied = true
						res.Witness = &Witness{
							Com:        comIDs(com),
							Views:      views,
							Partition:  partitionIDs(part),
							Labels:     labels,
							ItemOrders: prunedOrders(orders),
						}
						return res
					}
					if res.Nodes > searchBudget {
						res.Exhausted = true
						return res
					}
				}
			}
		}
	}
	return res
}

// partitions enumerates the consistency partitions: every composition of
// the begin-ordered transaction sequence into contiguous groups.
func partitions(txns []*history.Txn) [][][]*history.Txn {
	n := len(txns)
	var out [][][]*history.Txn
	// Bit i of mask set ⇔ a group boundary after position i.
	for mask := 0; mask < 1<<(n-1); mask++ {
		var part [][]*history.Txn
		start := 0
		for i := 0; i < n; i++ {
			if i == n-1 || mask&(1<<i) != 0 {
				part = append(part, txns[start:i+1])
				start = i + 1
			}
		}
		out = append(out, part)
	}
	return out
}

// groupInterval is a group's active execution interval: from the first
// step of its first (begin-order) member to the last step of any member.
type groupInterval struct{ lo, hi int }

func groupIntervals(part [][]*history.Txn) []groupInterval {
	out := make([]groupInterval, len(part))
	for g, members := range part {
		gi := groupInterval{lo: members[0].IntervalLo, hi: members[0].IntervalHi}
		for _, t := range members[1:] {
			if t.IntervalHi > gi.hi {
				gi.hi = t.IntervalHi
			}
		}
		out[g] = gi
	}
	return out
}

func partitionIDs(part [][]*history.Txn) [][]core.TxID {
	out := make([][]core.TxID, len(part))
	for g, members := range part {
		for _, t := range members {
			out[g] = append(out[g], t.ID)
		}
	}
	return out
}

// solveWACView builds and solves process p's view for one WAC
// configuration.
func solveWACView(com []*history.Txn, part [][]*history.Txn, groups []groupInterval,
	labels []GroupLabel, p core.ProcID, orders map[core.Item][]core.TxID, nodes *int) ([]PlacedPoint, bool) {

	groupOf := make(map[core.TxID]int)
	for g, members := range part {
		for _, t := range members {
			groupOf[t.ID] = g
		}
	}

	points := make([]point, 0, 2*len(com))
	writerPoint := make(map[core.TxID]int, len(com))
	for _, t := range com {
		g, ok := groupOf[t.ID]
		if !ok {
			// A com transaction outside the partition cannot happen:
			// partitions cover all transactions.
			return nil, false
		}
		grBlocks, wBlocks := siBlocks(t, t.Proc == p)
		switch labels[g] {
		case LabelSI:
			// Cond. 3: both points inside T's own active interval.
			gi := len(points)
			points = append(points, point{
				txn: t.ID, kind: PointGR, blocks: grBlocks,
				lo: t.IntervalLo + 1, hi: t.IntervalHi,
			})
			writerPoint[t.ID] = len(points)
			points = append(points, point{
				txn: t.ID, kind: PointW, blocks: wBlocks,
				lo: t.IntervalLo + 1, hi: t.IntervalHi,
				preds: []int{gi},
			})
		case LabelPC:
			// Cond. 4: adjacent points inside the group's interval —
			// modelled as one fused point emitting Tgr then Tw.
			writerPoint[t.ID] = len(points)
			points = append(points, point{
				txn: t.ID, kind: PointGRW,
				blocks: append(append([]history.Block{}, grBlocks...), wBlocks...),
				lo:     groups[g].lo + 1, hi: groups[g].hi,
			})
		}
	}
	// Cond. 2: shared per-item write order across views.
	orderEdges(points, writerPoint, orders)
	vs := &viewSolver{points: points, nodes: nodes}
	return vs.solve()
}
