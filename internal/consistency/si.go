package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// SnapshotIsolation decides the paper's weak snapshot isolation
// (Definition 3.1): there is a single sequence of serialization points,
// one global-read point ∗T,gr and one write point ∗T,w per transaction of
// com(α), such that
//
//  1. ∗T,gr precedes ∗T,w,
//  2. both points lie within T's active execution interval,
//  3. replacing ∗T,gr with Tgr and ∗T,w with Tw yields a legal history.
//
// The definition deliberately omits the classic "first committer wins"
// rule and places no constraint on local reads — both weakenings the paper
// introduces to strengthen the impossibility result.
func SnapshotIsolation(v *history.View) Result {
	res := Result{}
	for _, com := range comChoices(v) {
		res.Configs++
		points := make([]point, 0, 2*len(com))
		for _, t := range com {
			grBlocks, wBlocks := siBlocks(t, true)
			gi := len(points)
			points = append(points, point{
				txn: t.ID, kind: PointGR, blocks: grBlocks,
				lo: t.IntervalLo + 1, hi: t.IntervalHi,
			})
			points = append(points, point{
				txn: t.ID, kind: PointW, blocks: wBlocks,
				lo: t.IntervalLo + 1, hi: t.IntervalHi,
				preds: []int{gi},
			})
		}
		vs := &viewSolver{points: points, nodes: &res.Nodes}
		if placed, ok := vs.solve(); ok {
			res.Satisfied = true
			res.Witness = &Witness{
				Com:   comIDs(com),
				Views: map[core.ProcID][]PlacedPoint{0: placed},
			}
			return res
		}
		if res.Nodes > searchBudget {
			res.Exhausted = true
			return res
		}
	}
	return res
}

// siBlocks derives the Tgr and Tw fragments of a transaction as point
// contents; empty fragments (Tgr = λ or Tw = λ) contribute inert points.
func siBlocks(t *history.Txn, checkReads bool) (gr, w []history.Block) {
	if b, ok := history.GRBlock(t, checkReads); ok {
		gr = []history.Block{b}
	}
	if b, ok := history.WBlock(t); ok {
		w = []history.Block{b}
	}
	return gr, w
}
