package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// point is one serialization point to place in a candidate view: its
// content blocks (emitted in order when the point is placed), its window
// in gap coordinates, and its precedence predecessors.
//
// Gap coordinates: gap g denotes the position between execution steps g-1
// and g. A point constrained to the active execution interval [lo,hi] (in
// step indices) may occupy gaps lo+1..hi — after the interval's first step
// and before its last. Several points may share a gap; their relative
// order is the order the search places them in.
type point struct {
	txn    core.TxID
	kind   PointKind
	blocks []history.Block
	lo, hi int   // allowed gap window, inclusive
	preds  []int // point indices that must be placed earlier
}

// unbounded marks points that may be placed anywhere in the execution.
const unboundedHi = int(^uint(0) >> 1)

// viewSolver performs the backtracking placement of one view's points.
type viewSolver struct {
	points []point
	succs  [][]int
	nodes  *int // shared node counter (budget accounting)
}

// solve searches for a placement of all points that respects windows,
// precedence, and incremental legality. It returns the placement as a
// sequence of point indices with their gaps, or ok=false.
func (vs *viewSolver) solve() (placed []PlacedPoint, ok bool) {
	n := len(vs.points)
	vs.succs = make([][]int, n)
	remPreds := make([]int, n)
	for i, p := range vs.points {
		for _, pr := range p.preds {
			vs.succs[pr] = append(vs.succs[pr], i)
			remPreds[i]++
		}
	}
	done := make([]bool, n)
	order := make([]PlacedPoint, 0, n)

	var dfs func(gap int, st *history.LegalPrefix) bool
	dfs = func(gap int, st *history.LegalPrefix) bool {
		*vs.nodes++
		if *vs.nodes > searchBudget {
			return false
		}
		if len(order) == n {
			return true
		}
		// A point whose window already closed can never be placed.
		for i := range vs.points {
			if !done[i] && vs.points[i].hi < gap {
				return false
			}
		}
		for i := range vs.points {
			if done[i] || remPreds[i] > 0 {
				continue
			}
			p := &vs.points[i]
			pos := max(gap, p.lo)
			if pos > p.hi {
				continue
			}
			st2 := st.Clone()
			legal := true
			for _, b := range p.blocks {
				if !st2.Append(b) {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			done[i] = true
			order = append(order, PlacedPoint{Txn: p.txn, Kind: p.kind, Gap: pos})
			for _, s := range vs.succs[i] {
				remPreds[s]--
			}
			if dfs(pos, st2) {
				return true
			}
			for _, s := range vs.succs[i] {
				remPreds[s]++
			}
			order = order[:len(order)-1]
			done[i] = false
		}
		return false
	}

	if dfs(0, history.NewLegalPrefix()) {
		return order, true
	}
	return nil, false
}

// comChoices enumerates the admissible com(α) sets: all committed
// transactions plus each subset of the commit-pending ones. Choices with
// fewer pending members come first, so witnesses prefer minimal commit
// sets.
func comChoices(v *history.View) [][]*history.Txn {
	committed := v.Committed()
	pending := v.CommitPending()
	var choices [][]*history.Txn
	n := len(pending)
	subsets := make([][]*history.Txn, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []*history.Txn
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, pending[i])
			}
		}
		subsets = append(subsets, sub)
	}
	// Order subsets by size.
	for size := 0; size <= n; size++ {
		for _, sub := range subsets {
			if len(sub) != size {
				continue
			}
			com := make([]*history.Txn, 0, len(committed)+size)
			com = append(com, committed...)
			com = append(com, sub...)
			choices = append(choices, com)
		}
	}
	return choices
}

// itemOrderChoices enumerates, for every item written by at least two
// transactions of com, a total order of its writers; the cartesian product
// over items is returned as a list of constraint maps item → ordered
// writers. Views must agree on these orders (Def 3.2 condition 1b,
// Def 3.3 condition 2).
func itemOrderChoices(com []*history.Txn) []map[core.Item][]core.TxID {
	writers := make(map[core.Item][]core.TxID)
	var items []core.Item
	for _, t := range com {
		seen := make(map[core.Item]bool)
		for _, op := range t.Ops {
			if op.Kind == core.OpWrite && !seen[op.Item] {
				seen[op.Item] = true
				writers[op.Item] = append(writers[op.Item], t.ID)
			}
		}
	}
	for x, ws := range writers {
		if len(ws) >= 2 {
			items = append(items, x)
		}
	}
	// Deterministic order of items.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j] < items[j-1]; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	choices := []map[core.Item][]core.TxID{{}}
	for _, x := range items {
		var next []map[core.Item][]core.TxID
		for _, perm := range permutations(writers[x]) {
			for _, base := range choices {
				m := make(map[core.Item][]core.TxID, len(base)+1)
				for k, v := range base {
					m[k] = v
				}
				m[x] = perm
				next = append(next, m)
			}
		}
		choices = next
	}
	return choices
}

// permutations returns all orderings of ids (n ≤ 6 in practice).
func permutations(ids []core.TxID) [][]core.TxID {
	if len(ids) <= 1 {
		out := make([]core.TxID, len(ids))
		copy(out, ids)
		return [][]core.TxID{out}
	}
	var res [][]core.TxID
	for i := range ids {
		rest := make([]core.TxID, 0, len(ids)-1)
		rest = append(rest, ids[:i]...)
		rest = append(rest, ids[i+1:]...)
		for _, p := range permutations(rest) {
			res = append(res, append([]core.TxID{ids[i]}, p...))
		}
	}
	return res
}

// viewProcs returns the processes that executed at least one com
// transaction; only their views carry legality obligations.
func viewProcs(com []*history.Txn) []core.ProcID {
	seen := make(map[core.ProcID]bool)
	var procs []core.ProcID
	for _, t := range com {
		if !seen[t.Proc] {
			seen[t.Proc] = true
			procs = append(procs, t.Proc)
		}
	}
	for i := 1; i < len(procs); i++ {
		for j := i; j > 0 && procs[j] < procs[j-1]; j-- {
			procs[j], procs[j-1] = procs[j-1], procs[j]
		}
	}
	return procs
}

// orderEdges converts per-item write orders into precedence edges over the
// points of a view. pointOf maps a transaction to the index of the point
// that carries its writes (the w point, or the fused/tx point).
func orderEdges(points []point, pointOf map[core.TxID]int, orders map[core.Item][]core.TxID) {
	for _, seq := range orders {
		for i := 0; i+1 < len(seq); i++ {
			a, aok := pointOf[seq[i]]
			b, bok := pointOf[seq[i+1]]
			if aok && bok {
				points[b].preds = append(points[b].preds, a)
			}
		}
	}
}

// comIDs extracts the transaction ids of a com choice.
func comIDs(com []*history.Txn) []core.TxID {
	ids := make([]core.TxID, len(com))
	for i, t := range com {
		ids[i] = t.ID
	}
	return ids
}
