package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// precedes reports T1 <α T2 on the view: T1 committed (commit-pending and
// live transactions are live in H_α and precede nothing) and T1's last
// step precedes T2's begin invocation.
func precedes(a, b *history.Txn) bool {
	return a.Status == core.TxCommitted && a.IntervalHi < b.BeginIndex
}

// Serializable decides the paper's serializability: all committed
// transactions (and some commit-pending ones) execute as in a legal
// sequential execution.
func Serializable(v *history.View) Result {
	return serializable(v, false)
}

// StrictlySerializable decides strict serializability: serializability
// where the sequential order additionally respects the real-time
// precedence T1 <α T2.
func StrictlySerializable(v *history.View) Result {
	return serializable(v, true)
}

func serializable(v *history.View, strict bool) Result {
	res := Result{}
	for _, com := range comChoices(v) {
		res.Configs++
		points := make([]point, 0, len(com))
		idx := make(map[core.TxID]int, len(com))
		for _, t := range com {
			idx[t.ID] = len(points)
			points = append(points, point{
				txn:    t.ID,
				kind:   PointTx,
				blocks: []history.Block{history.FullBlock(t)},
				lo:     0,
				hi:     unboundedHi,
			})
		}
		if strict {
			for _, a := range com {
				for _, b := range com {
					if a != b && precedes(a, b) {
						points[idx[b.ID]].preds = append(points[idx[b.ID]].preds, idx[a.ID])
					}
				}
			}
		}
		vs := &viewSolver{points: points, nodes: &res.Nodes}
		if placed, ok := vs.solve(); ok {
			res.Satisfied = true
			res.Witness = &Witness{
				Com:   comIDs(com),
				Views: map[core.ProcID][]PlacedPoint{0: placed},
			}
			return res
		}
		if res.Nodes > searchBudget {
			res.Exhausted = true
			return res
		}
	}
	return res
}
