package consistency

import (
	"math/rand"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
	"pcltm/internal/stms"
	"pcltm/internal/stms/portfolio"
)

// TestWACWitnessesValidate: every witness the WAC checker returns on the
// fixture executions passes the independent validator.
func TestWACWitnessesValidate(t *testing.T) {
	fixtures := []*core.Execution{
		sequentialExec(),
		writeSkewExec(),
		staleSequentialExec(), // not SI, but WAC-satisfiable via PC group
	}
	for i, e := range fixtures {
		v := view(e)
		res := WeakAdaptiveConsistent(v)
		if !res.Satisfied {
			continue
		}
		if err := ValidateWACWitness(v, res.Witness); err != nil {
			t.Errorf("fixture %d: witness failed validation: %v\nwitness: %v", i, err, res.Witness)
		}
	}
}

// TestWACWitnessesValidateOnProtocolRuns: witnesses from real recorded
// protocol executions under random schedules validate too.
func TestWACWitnessesValidateOnProtocolRuns(t *testing.T) {
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1), core.W("y", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("y"), core.W("x", 2)}},
		{ID: 3, Proc: 2, Ops: []core.TxOp{core.R("x"), core.R("y"), core.W("z", 3)}},
	}
	for _, name := range []string{"dstm", "sidstm", "gclock", "pramtm"} {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := &stms.Bundle{Protocol: proto, Specs: specs}
		r := rand.New(rand.NewSource(99))
		for trial := 0; trial < 10; trial++ {
			m := b.Build()
			for steps := 0; steps < 100000; steps++ {
				var live []core.ProcID
				for p := 0; p < 3; p++ {
					if !m.Done(core.ProcID(p)) {
						live = append(live, core.ProcID(p))
					}
				}
				if len(live) == 0 {
					break
				}
				if _, err := m.Step(live[r.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			}
			exec := m.Execution()
			m.Close()
			v := history.FromExecution(exec)
			res := WeakAdaptiveConsistent(v)
			if !res.Satisfied {
				continue // pramtm may genuinely violate; that's fine here
			}
			if err := ValidateWACWitness(v, res.Witness); err != nil {
				t.Errorf("%s trial %d: witness failed validation: %v", name, trial, err)
			}
		}
	}
}

// TestValidatorRejectsDoctoredWitnesses: sanity that the validator is not
// vacuously accepting.
func TestValidatorRejectsDoctoredWitnesses(t *testing.T) {
	v := view(sequentialExec())
	res := WeakAdaptiveConsistent(v)
	if !res.Satisfied {
		t.Fatal("fixture unexpectedly unsatisfiable")
	}

	// Drop a committed transaction from com.
	w1 := *res.Witness
	w1.Com = w1.Com[:1]
	if err := ValidateWACWitness(v, &w1); err == nil {
		t.Errorf("validator accepted a com missing a committed transaction")
	}

	// Scramble a view's point order (w before gr).
	w2 := *res.Witness
	views := make(map[core.ProcID][]PlacedPoint)
	for p, placed := range w2.Views {
		cp := append([]PlacedPoint(nil), placed...)
		// Reverse: any gr-before-w pair breaks.
		for i, j := 0, len(cp)-1; i < j; i, j = i+1, j-1 {
			cp[i], cp[j] = cp[j], cp[i]
		}
		views[p] = cp
	}
	w2.Views = views
	if err := ValidateWACWitness(v, &w2); err == nil {
		t.Errorf("validator accepted a reversed view")
	}

	// Move a point outside its window.
	w3 := *res.Witness
	views3 := make(map[core.ProcID][]PlacedPoint)
	for p, placed := range w3.Views {
		cp := append([]PlacedPoint(nil), placed...)
		if len(cp) > 0 {
			cp[0].Gap = 1 << 30
		}
		views3[p] = cp
	}
	w3.Views = views3
	if err := ValidateWACWitness(v, &w3); err == nil {
		t.Errorf("validator accepted an out-of-window point")
	}

	// Mislabel a group (fused points in an SI group).
	w4 := *res.Witness
	labels := append([]GroupLabel(nil), w4.Labels...)
	for g := range labels {
		if labels[g] == LabelSI {
			labels[g] = LabelPC
		} else {
			labels[g] = LabelSI
		}
	}
	w4.Labels = labels
	if err := ValidateWACWitness(v, &w4); err == nil {
		t.Errorf("validator accepted mislabeled groups")
	}
}

// TestValidatorOnDelta1WithoutSharedItem validates the PC-group witness
// of the partition-mechanics fixture.
func TestValidatorOnDelta1WithoutSharedItem(t *testing.T) {
	e := exectest.New().
		SeqTxn(0, 1, exectest.RV("b3", 0), exectest.WV("a", 1), exectest.WV("b1", 1)).
		SeqTxn(2, 3, exectest.RV("b1", 0), exectest.WV("b3", 1), exectest.WV("c3", 1)).
		Exec()
	v := view(e)
	res := WeakAdaptiveConsistent(v)
	if !res.Satisfied {
		t.Fatal("fixture unexpectedly unsatisfiable")
	}
	if err := ValidateWACWitness(v, res.Witness); err != nil {
		t.Errorf("PC-group witness failed validation: %v\n%v", err, res.Witness)
	}
}
