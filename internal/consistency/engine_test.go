package consistency

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/history"
)

// solve is a test harness around viewSolver.
func solve(points []point) ([]PlacedPoint, bool) {
	nodes := 0
	vs := &viewSolver{points: points, nodes: &nodes}
	return vs.solve()
}

func wblock(tx core.TxID, item core.Item, v core.Value) []history.Block {
	return []history.Block{{Txn: tx, Ops: []history.Op{{Kind: core.OpWrite, Item: item, Value: v}}}}
}

func rblock(tx core.TxID, item core.Item, v core.Value) []history.Block {
	return []history.Block{{Txn: tx, Ops: []history.Op{{Kind: core.OpRead, Item: item, Value: v, Global: true}}, CheckReads: true}}
}

func TestSolverRespectsWindows(t *testing.T) {
	// Two points with disjoint windows must be placed in window order.
	pts := []point{
		{txn: 2, kind: PointTx, lo: 10, hi: 12},
		{txn: 1, kind: PointTx, lo: 1, hi: 3},
	}
	placed, ok := solve(pts)
	if !ok {
		t.Fatalf("feasible windows rejected")
	}
	if placed[0].Txn != 1 || placed[1].Txn != 2 {
		t.Errorf("placement order %v, want T1 before T2", placed)
	}
	if placed[0].Gap < 1 || placed[0].Gap > 3 || placed[1].Gap < 10 || placed[1].Gap > 12 {
		t.Errorf("gaps out of windows: %v", placed)
	}
}

func TestSolverDetectsDeadWindow(t *testing.T) {
	// A precedence edge forcing the later point before an earlier window
	// is infeasible.
	pts := []point{
		{txn: 1, kind: PointTx, lo: 10, hi: 12},
		{txn: 2, kind: PointTx, lo: 1, hi: 3, preds: []int{0}},
	}
	if _, ok := solve(pts); ok {
		t.Errorf("infeasible precedence accepted")
	}
}

func TestSolverLegalityPruning(t *testing.T) {
	// Reader of x=1 must come after the writer of x=1.
	pts := []point{
		{txn: 1, kind: PointTx, lo: 0, hi: unboundedHi, blocks: rblock(1, "x", 1)},
		{txn: 2, kind: PointTx, lo: 0, hi: unboundedHi, blocks: wblock(2, "x", 1)},
	}
	placed, ok := solve(pts)
	if !ok {
		t.Fatalf("satisfiable legality rejected")
	}
	if placed[0].Txn != 2 {
		t.Errorf("writer not placed first: %v", placed)
	}
	// Unsatisfiable: reader of x=2, writer writes 1.
	pts2 := []point{
		{txn: 1, kind: PointTx, lo: 0, hi: unboundedHi, blocks: rblock(1, "x", 2)},
		{txn: 2, kind: PointTx, lo: 0, hi: unboundedHi, blocks: wblock(2, "x", 1)},
	}
	if _, ok := solve(pts2); ok {
		t.Errorf("unsatisfiable read accepted")
	}
}

func TestSolverSharedGaps(t *testing.T) {
	// Multiple points may share one gap when windows force it.
	pts := []point{
		{txn: 1, kind: PointGR, lo: 5, hi: 5},
		{txn: 1, kind: PointW, lo: 5, hi: 5, preds: []int{0}},
	}
	placed, ok := solve(pts)
	if !ok {
		t.Fatalf("shared gap rejected")
	}
	if placed[0].Gap != 5 || placed[1].Gap != 5 {
		t.Errorf("gaps = %v, want both 5", placed)
	}
	if placed[0].Kind != PointGR {
		t.Errorf("gr/w order violated")
	}
}

func TestComChoicesOrderedBySize(t *testing.T) {
	v := &history.View{Txns: []*history.Txn{
		{ID: 1, Status: core.TxCommitted},
		{ID: 2, Status: core.TxCommitPending},
		{ID: 3, Status: core.TxCommitPending},
	}}
	choices := comChoices(v)
	if len(choices) != 4 {
		t.Fatalf("choices = %d, want 4 (2^2 pending subsets)", len(choices))
	}
	for i := 1; i < len(choices); i++ {
		if len(choices[i]) < len(choices[i-1]) {
			t.Errorf("choices not ordered by size: %d then %d", len(choices[i-1]), len(choices[i]))
		}
	}
	if len(choices[0]) != 1 || choices[0][0].ID != 1 {
		t.Errorf("first choice must be the committed core: %v", choices[0])
	}
}

func TestItemOrderChoices(t *testing.T) {
	w := func(id core.TxID, items ...core.Item) *history.Txn {
		t := &history.Txn{ID: id, Status: core.TxCommitted}
		for _, x := range items {
			t.Ops = append(t.Ops, history.Op{Kind: core.OpWrite, Item: x, Value: 1})
		}
		return t
	}
	// Two items with two writers each: 2×2 = 4 order combinations.
	com := []*history.Txn{w(1, "x", "y"), w(2, "x", "y"), w(3, "z")}
	choices := itemOrderChoices(com)
	if len(choices) != 4 {
		t.Fatalf("choices = %d, want 4", len(choices))
	}
	for _, c := range choices {
		if len(c["x"]) != 2 || len(c["y"]) != 2 {
			t.Errorf("missing orders: %v", c)
		}
		if _, ok := c["z"]; ok {
			t.Errorf("single-writer item z got an order")
		}
	}
}

func TestPermutations(t *testing.T) {
	perms := permutations([]core.TxID{1, 2, 3})
	if len(perms) != 6 {
		t.Fatalf("permutations = %d, want 6", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		key := ""
		for _, id := range p {
			key += id.String()
		}
		if seen[key] {
			t.Errorf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}

func TestViewProcsSortedUnique(t *testing.T) {
	com := []*history.Txn{
		{ID: 1, Proc: 3}, {ID: 2, Proc: 0}, {ID: 3, Proc: 3},
	}
	procs := viewProcs(com)
	if len(procs) != 2 || procs[0] != 0 || procs[1] != 3 {
		t.Errorf("viewProcs = %v", procs)
	}
}

func TestPartitionsEnumeration(t *testing.T) {
	txns := []*history.Txn{{ID: 1}, {ID: 2}, {ID: 3}}
	parts := partitions(txns)
	if len(parts) != 4 {
		t.Fatalf("partitions of 3 = %d, want 4 (compositions)", len(parts))
	}
	// Each partition covers all transactions contiguously.
	for _, p := range parts {
		count := 0
		var last core.TxID
		for _, g := range p {
			for _, txn := range g {
				count++
				if txn.ID <= last {
					t.Errorf("partition not order-preserving: %v", p)
				}
				last = txn.ID
			}
		}
		if count != 3 {
			t.Errorf("partition loses transactions: %v", p)
		}
	}
}

func TestGroupIntervals(t *testing.T) {
	part := [][]*history.Txn{
		{{ID: 1, IntervalLo: 0, IntervalHi: 10}, {ID: 2, IntervalLo: 5, IntervalHi: 30}},
		{{ID: 3, IntervalLo: 40, IntervalHi: 50}},
	}
	gis := groupIntervals(part)
	if gis[0].lo != 0 || gis[0].hi != 30 {
		t.Errorf("group 0 interval = %+v, want [0,30]", gis[0])
	}
	if gis[1].lo != 40 || gis[1].hi != 50 {
		t.Errorf("group 1 interval = %+v", gis[1])
	}
}
