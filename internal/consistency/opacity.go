package consistency

import (
	"pcltm/internal/core"
	"pcltm/internal/history"
)

// Opaque decides (final-state) opacity in the sense of Guerraoui &
// Kapałka, the strongest condition the paper's hierarchy mentions: there
// is a single sequential order of ALL transactions — committed,
// commit-pending (optionally completed as committed) and aborted — that
// preserves real-time precedence and in which every transaction,
// including the aborted ones, observes a legal memory snapshot; writes of
// aborted and excluded commit-pending transactions are invisible.
//
// On recorded executions this strengthens strict serializability by
// additionally validating the reads of aborted transactions (a live
// transaction that observed an inconsistent snapshot — a "zombie" — is an
// opacity violation even if it later aborts).
func Opaque(v *history.View) Result {
	res := Result{}
	for _, com := range comChoices(v) {
		res.Configs++
		inCom := make(map[core.TxID]bool, len(com))
		for _, t := range com {
			inCom[t.ID] = true
		}
		points := make([]point, 0, len(v.Txns))
		idx := make(map[core.TxID]int, len(v.Txns))
		for _, t := range v.Txns {
			block := history.FullBlock(t)
			if !inCom[t.ID] {
				// Aborted / excluded commit-pending / live: reads must
				// still be legal — including reads of the transaction's
				// own earlier writes — but nothing it wrote is visible
				// to anyone else.
				block.Ephemeral = true
			}
			idx[t.ID] = len(points)
			points = append(points, point{
				txn:    t.ID,
				kind:   PointTx,
				blocks: []history.Block{block},
				lo:     0,
				hi:     unboundedHi,
			})
		}
		// Real-time precedence over all transactions.
		for _, a := range v.Txns {
			for _, b := range v.Txns {
				if a != b && completedBefore(a, b) {
					points[idx[b.ID]].preds = append(points[idx[b.ID]].preds, idx[a.ID])
				}
			}
		}
		vs := &viewSolver{points: points, nodes: &res.Nodes}
		if placed, ok := vs.solve(); ok {
			res.Satisfied = true
			res.Witness = &Witness{
				Com:   comIDs(com),
				Views: map[core.ProcID][]PlacedPoint{0: placed},
			}
			return res
		}
		if res.Nodes > searchBudget {
			res.Exhausted = true
			return res
		}
	}
	return res
}

// completedBefore is real-time precedence over all transactions: a
// finished (committed or aborted) transaction precedes one that begins
// after its last step.
func completedBefore(a, b *history.Txn) bool {
	done := a.Status == core.TxCommitted || a.Status == core.TxAborted
	return done && a.IntervalHi < b.BeginIndex
}
