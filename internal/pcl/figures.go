package pcl

import (
	"fmt"
	"sort"
	"strings"

	"pcltm/internal/core"
)

// RenderVerdictMatrix renders the Theorem 4.1 table: one row per protocol,
// one column per property, exactly one ✗ per row at the corner the design
// gives up.
func RenderVerdictMatrix(outcomes []*Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-14s %s\n", "protocol", "P(strict DAP)", "C(weak adpt.)", "L(obstr-free)", "first violation")
	for _, o := range outcomes {
		marks := map[Property]string{Parallelism: "ok", Consistency: "ok", Liveness: "ok"}
		first := "survived (impossible per Theorem 4.1!)"
		seen := map[Property]bool{}
		for _, an := range o.Anomalies {
			if !seen[an.Property] {
				marks[an.Property] = "VIOLATED"
				seen[an.Property] = true
			}
		}
		if o.Verdict != nil {
			first = fmt.Sprintf("%s @ %s", o.Verdict.Violated.Short(), o.Verdict.Anomaly.Phase)
		}
		fmt.Fprintf(&b, "%-12s %-14s %-14s %-14s %s\n",
			o.Protocol, marks[Parallelism], marks[Consistency], marks[Liveness], first)
	}
	return b.String()
}

// RenderCriticalStep renders a Figure 1 / Figure 2 panel: the probe curve
// (the seeker's observed value per writer prefix length) and the located
// step.
func RenderCriticalStep(title string, cs *CriticalStep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if cs == nil {
		b.WriteString("  (not located — the pipeline stopped earlier)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  writer %v runs solo (%d steps); %v probes %s after every prefix:\n",
		cs.Writer, cs.WriterSoloSteps, cs.Seeker, cs.Item)
	b.WriteString("  k:      ")
	for k := range cs.Probes {
		if k%5 == 0 {
			fmt.Fprintf(&b, "%-5d", k)
		}
	}
	b.WriteString("\n  value:  ")
	for _, v := range cs.Probes {
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  s located at step %d/%d: %v\n", cs.K, cs.WriterSoloSteps, cs.Step)
	fmt.Fprintf(&b, "  Claim 1 (commit invoked in α): %v\n", cs.CommitInvoked)
	fmt.Fprintf(&b, "  Claim 2 (non-trivial on %s, read by %v after/before): %v/%v/%v\n",
		cs.Step.ObjName, cs.Seeker, cs.NonTrivial, cs.SeekerReadsObjAfter, cs.SeekerReadsObjBefore)
	return b.String()
}

// RenderValueTable renders a Figure 5 / Figure 6 panel: per-process lanes
// with the values each transaction read and wrote, annotated with the
// proof-forced expectations.
func RenderValueTable(title string, exec *core.Execution, expected ExpectedReads) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if exec == nil {
		b.WriteString("  (execution not assembled)\n")
		return b.String()
	}
	ids := exec.TxIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		spec, ok := exec.Specs[id]
		if !ok {
			continue
		}
		reads := exec.ReadValues(id)
		var cells []string
		for _, op := range spec.Ops {
			if op.Kind == core.OpRead {
				got, read := reads[op.Item]
				if !read {
					continue
				}
				cell := fmt.Sprintf("%s:%d", op.Item, got)
				if want, has := expected[id][op.Item]; has {
					if got == want {
						cell += "=ok"
					} else {
						cell += fmt.Sprintf("≠%d!", want)
					}
				}
				cells = append(cells, cell)
			}
		}
		var writes []string
		for _, op := range spec.Ops {
			if op.Kind == core.OpWrite {
				writes = append(writes, fmt.Sprintf("%s(%d)", op.Item, op.Value))
			}
		}
		fmt.Fprintf(&b, "  %-3s %-3s [%-14s] reads: %-40s writes: %s\n",
			spec.Proc, id, exec.StatusOf(id), strings.Join(cells, " "), strings.Join(writes, " "))
	}
	return b.String()
}

// RenderComposition renders a Figure 3 / Figure 4 panel: the named
// segments of the assembled schedule.
func RenderComposition(title string, o *Outcome, prime bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if o.S1 == nil || o.S2 == nil {
		b.WriteString("  (critical steps not located — composition impossible)\n")
		return b.String()
	}
	a1, a2 := o.S1.K-1, o.S2.K-1
	if prime {
		fmt.Fprintf(&b, "  β′ = α1(%d steps of T1) · α2(%d steps of T2) · s2(%s) · α5(T5 solo) · α6(T6 solo) · s1(%s) · α′7(T7 solo)\n",
			a1, a2, o.S2.Step.ObjName, o.S1.Step.ObjName)
		fmt.Fprintf(&b, "  s′′1 response matches s1: %v\n", o.S1RespMatches)
	} else {
		fmt.Fprintf(&b, "  β  = α1(%d steps of T1) · α2(%d steps of T2) · s1(%s) · α3(T3 solo) · α4(T4 solo) · s2(%s) · α7(T7 solo)\n",
			a1, a2, o.S1.Step.ObjName, o.S2.Step.ObjName)
		fmt.Fprintf(&b, "  s′′2 response matches s2: %v\n", o.S2RespMatches)
	}
	return b.String()
}

// Report renders the full per-protocol report: figures, anomalies,
// verdict.
func (o *Outcome) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s ====\n", o.Protocol)
	b.WriteString(RenderCriticalStep("Figure 1 — critical step s1 (T1 probed by T3 on b1):", o.S1))
	b.WriteString(RenderCriticalStep("Figure 2 — critical step s2 (T2 probed by T5 on b2):", o.S2))
	b.WriteString(RenderComposition("Figure 3 — execution β:", o, false))
	b.WriteString(RenderValueTable("Figure 5 — values read in β (measured vs forced):", o.Beta, Figure5Expected()))
	b.WriteString(RenderComposition("Figure 4 — execution β′:", o, true))
	b.WriteString(RenderValueTable("Figure 6 — values read in β′ (measured vs forced):", o.BetaPrime, Figure6Expected()))
	if o.Indist != nil {
		fmt.Fprintf(&b, "α7 vs α′7 indistinguishable to p7: %v", o.Indist.Indistinguishable)
		if !o.Indist.Indistinguishable {
			fmt.Fprintf(&b, " (first difference: %s)", o.Indist.FirstDiff)
		}
		b.WriteString("\n")
	}
	if len(o.Anomalies) > 0 {
		fmt.Fprintf(&b, "anomalies (%d):\n", len(o.Anomalies))
		for _, an := range o.Anomalies {
			fmt.Fprintf(&b, "  %s\n", an)
		}
	}
	if o.Verdict != nil {
		fmt.Fprintf(&b, "VERDICT: %s\n", o.Verdict)
	} else {
		b.WriteString("VERDICT: survived the construction — impossible per Theorem 4.1; check the model\n")
	}
	return b.String()
}
