// Package pcl mechanizes Section 4 of the paper: the adversarial
// construction behind Theorem 4.1 (the PCL theorem). Given any TM protocol
// plugged into the deterministic machine, the adversary
//
//   - runs the paper's seven static transactions T1..T7,
//   - locates the critical steps s1 and s2 by replaying solo-run prefixes
//     (Figures 1 and 2),
//   - assembles the executions β = α1·α2·s1·α3·α4·s2·α7 and
//     β′ = α1·α2·s2·α5·α6·s1·α′7 (Figures 3 and 4),
//   - checks Claims 1–5 and the read-value tables of Figures 5 and 6,
//   - compares p7's steps in β and β′ for indistinguishability,
//
// and — because the theorem says no TM can survive all of it — reports
// which of Parallelism (strict disjoint-access-parallelism), Consistency
// (weak adaptive consistency) or Liveness (obstruction-freedom) the
// protocol violates, with machine-checked evidence: a blocked or aborted
// solo run, a contention between disjoint transactions, or a read-value
// deviation certified by the exhaustive WAC checker finding no witness.
package pcl

import "pcltm/internal/core"

// Process assignments: T_k runs on process p_k (0-indexed ProcID k-1).
const (
	P1 = core.ProcID(0)
	P2 = core.ProcID(1)
	P3 = core.ProcID(2)
	P4 = core.ProcID(3)
	P5 = core.ProcID(4)
	P6 = core.ProcID(5)
	P7 = core.ProcID(6)
)

// Transactions returns the seven static transactions of the proof,
// verbatim from Section 4 (initial value of every item is 0):
//
//	T1@p1: reads b3, b7;  writes 1 to a, b1, c1, d1, e1,3
//	T2@p2: reads b5, b7;  writes 2 to a, b2, c2, d2, e2,5, e2,7
//	T3@p3: reads b1, b4;  writes 1 to b3, c3, e1,3, e3,4
//	T4@p4: reads d2, c3;  writes 1 to b4, e3,4
//	T5@p5: reads b2, b6;  writes 1 to b5, c5, e2,5, e5,6
//	T6@p6: reads d1, c5;  writes 1 to b6, e5,6
//	T7@p7: reads a, c1, c2; writes 1 to b7, e2,7
func Transactions() []core.TxSpec {
	return []core.TxSpec{
		{ID: 1, Proc: P1, Ops: []core.TxOp{
			core.R("b3"), core.R("b7"),
			core.W("a", 1), core.W("b1", 1), core.W("c1", 1), core.W("d1", 1), core.W("e1,3", 1),
		}},
		{ID: 2, Proc: P2, Ops: []core.TxOp{
			core.R("b5"), core.R("b7"),
			core.W("a", 2), core.W("b2", 2), core.W("c2", 2), core.W("d2", 2), core.W("e2,5", 2), core.W("e2,7", 2),
		}},
		{ID: 3, Proc: P3, Ops: []core.TxOp{
			core.R("b1"), core.R("b4"),
			core.W("b3", 1), core.W("c3", 1), core.W("e1,3", 1), core.W("e3,4", 1),
		}},
		{ID: 4, Proc: P4, Ops: []core.TxOp{
			core.R("d2"), core.R("c3"),
			core.W("b4", 1), core.W("e3,4", 1),
		}},
		{ID: 5, Proc: P5, Ops: []core.TxOp{
			core.R("b2"), core.R("b6"),
			core.W("b5", 1), core.W("c5", 1), core.W("e2,5", 1), core.W("e5,6", 1),
		}},
		{ID: 6, Proc: P6, Ops: []core.TxOp{
			core.R("d1"), core.R("c5"),
			core.W("b6", 1), core.W("e5,6", 1),
		}},
		{ID: 7, Proc: P7, Ops: []core.TxOp{
			core.R("a"), core.R("c1"), core.R("c2"),
			core.W("b7", 1), core.W("e2,7", 1),
		}},
	}
}

// ExpectedReads holds the read values weak adaptive consistency forces in
// an execution, keyed by transaction and item — the content of the paper's
// Figures 5 and 6.
type ExpectedReads map[core.TxID]map[core.Item]core.Value

// Figure5Expected are the values the proof forces in β (Figure 5).
func Figure5Expected() ExpectedReads {
	return ExpectedReads{
		1: {"b3": 0, "b7": 0},
		2: {"b5": 0, "b7": 0},
		3: {"b1": 1, "b4": 0},
		4: {"d2": 0, "c3": 1},
		7: {"a": 2, "c1": 1, "c2": 2},
	}
}

// Figure6Expected are the values the proof forces in β′ (Figure 6).
func Figure6Expected() ExpectedReads {
	return ExpectedReads{
		1: {"b3": 0, "b7": 0},
		2: {"b5": 0, "b7": 0},
		5: {"b2": 2, "b6": 0},
		6: {"d1": 0, "c5": 1},
		7: {"a": 1, "c1": 1, "c2": 2},
	}
}
