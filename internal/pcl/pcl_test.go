package pcl

import (
	"strings"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/stms/portfolio"
)

func TestTransactionsMatchPaper(t *testing.T) {
	specs := Transactions()
	if len(specs) != 7 {
		t.Fatalf("transactions = %d, want 7", len(specs))
	}
	// Conflicts exactly as the proof needs them.
	byID := make(map[core.TxID]core.TxSpec)
	for _, s := range specs {
		byID[s.ID] = s
		if int(s.Proc) != int(s.ID)-1 {
			t.Errorf("%v runs on %v, want p%d", s.ID, s.Proc, s.ID)
		}
	}
	mustConflict := [][2]core.TxID{
		{1, 2}, // a
		{1, 3}, // b1, b3, e1,3
		{3, 4}, // b4, c3, e3,4
		{2, 5}, // b2, b5, e2,5
		{5, 6}, // b6, c5, e5,6
		{2, 7}, // c2, e2,7
		{1, 7}, // a, b7, c1
		{1, 6}, // d1
		{2, 4}, // d2
	}
	for _, p := range mustConflict {
		if !core.Conflicts(byID[p[0]], byID[p[1]]) {
			t.Errorf("T%d and T%d must conflict", p[0], p[1])
		}
	}
	mustBeDisjoint := [][2]core.TxID{
		{2, 3}, {3, 5}, {3, 6}, {3, 7}, {4, 5}, {4, 6}, {4, 7}, {5, 7}, {6, 7}, {1, 5}, {1, 4}, {2, 6}, {4, 6},
	}
	for _, p := range mustBeDisjoint {
		if core.Conflicts(byID[p[0]], byID[p[1]]) {
			t.Errorf("T%d and T%d must be disjoint", p[0], p[1])
		}
	}
}

// TestTheoremVerdictMatrix is the headline reproduction: every protocol in
// the portfolio fails the construction, and each fails exactly the
// property its design gives up — TL is blocking (L), the DSTM family and
// the global-clock STM contend across disjoint transactions (P), and the
// no-synchronization designs return stale values no weak-adaptive-
// consistency witness can explain (C).
func TestTheoremVerdictMatrix(t *testing.T) {
	expected := map[string]Property{
		"tl":          Liveness,
		"dstm":        Parallelism,
		"dstm-polite": Liveness, // the contention-manager ablation flips the corner
		"sidstm":      Parallelism,
		"gclock":      Parallelism,
		"pramtm":      Consistency,
		"naive":       Consistency,
	}
	for name, want := range expected {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := NewAdversary(proto).Run()
		if o.Verdict == nil {
			t.Errorf("%s survived the construction — impossible per Theorem 4.1", name)
			continue
		}
		if o.Verdict.Violated != want {
			t.Errorf("%s verdict = %v, want %v\nreport:\n%s", name, o.Verdict.Violated, want, o.Report())
		}
	}
}

func TestTLBlocksAtFigure1(t *testing.T) {
	proto, err := portfolio.ByName("tl")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.Verdict == nil || o.Verdict.Violated != Liveness {
		t.Fatalf("tl verdict: %v", o.Verdict)
	}
	an := o.Verdict.Anomaly
	if an.Block == nil || !an.Block.Blocked {
		t.Errorf("tl evidence is not a blocked solo run: %v", an)
	}
	if !strings.Contains(an.Phase, "figure-1") {
		t.Errorf("tl blocked in phase %q, want figure-1 (T3 spinning on T1's lock)", an.Phase)
	}
}

func TestPramFailsConsistencyWithWACCertificate(t *testing.T) {
	proto, err := portfolio.ByName("pramtm")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.Verdict == nil || o.Verdict.Violated != Consistency {
		t.Fatalf("pramtm verdict: %v", o.Verdict)
	}
	dev := o.Verdict.Anomaly.Deviation
	if dev == nil {
		t.Fatalf("no value deviation recorded: %v", o.Verdict.Anomaly)
	}
	if dev.Item != "b1" || dev.Got != 0 || dev.Want != 1 {
		t.Errorf("deviation = %v, want T3 reading b1=0 instead of 1", dev)
	}
	if dev.WAC.Satisfied {
		t.Errorf("WAC checker found a witness for δ1 — the certificate is broken")
	}
	if dev.WAC.Exhausted {
		t.Errorf("WAC search exhausted, certificate inconclusive")
	}
}

func TestNaiveWalksFullConstruction(t *testing.T) {
	proto, err := portfolio.ByName("naive")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.S1 == nil || o.S2 == nil {
		t.Fatalf("critical steps not located: s1=%v s2=%v", o.S1, o.S2)
	}
	// For the naive write-back TM the critical steps are the flushes of
	// b1 and b2.
	if o.S1.Step.ObjName != "val(b1)" {
		t.Errorf("s1 on %s, want val(b1)", o.S1.Step.ObjName)
	}
	if o.S2.Step.ObjName != "val(b2)" {
		t.Errorf("s2 on %s, want val(b2)", o.S2.Step.ObjName)
	}
	if !o.S1.CommitInvoked || !o.S2.CommitInvoked {
		t.Errorf("Claim 1 failed: commit not invoked before the critical steps")
	}
	if !o.S1.NonTrivial || !o.S1.SeekerReadsObjAfter || !o.S1.SeekerReadsObjBefore {
		t.Errorf("Claim 2 failed for s1: %+v", o.S1)
	}
	if o.S1.Step.Obj == o.S2.Step.Obj {
		t.Errorf("Claim 3 failed: o1 = o2")
	}
	if o.Beta == nil || o.BetaPrime == nil {
		t.Fatalf("β/β′ not assembled")
	}
	if !o.S2RespMatches || !o.S1RespMatches {
		t.Errorf("s′′ responses diverged for a strictly-DAP protocol")
	}
	if o.Indist == nil || !o.Indist.Indistinguishable {
		t.Errorf("α7 and α′7 must be indistinguishable to p7 for a strictly-DAP protocol: %+v", o.Indist)
	}
	if o.Verdict == nil || o.Verdict.Violated != Consistency {
		t.Fatalf("naive verdict: %v", o.Verdict)
	}
	// The verdict's certificate must be exhaustive and negative.
	var sawCertificate bool
	for _, an := range o.Anomalies {
		if an.Deviation != nil {
			if an.Deviation.WAC.Satisfied {
				t.Errorf("WAC witness found for %s — deviation would be benign: %v", an.Deviation.Execution, an)
			}
			sawCertificate = true
		}
	}
	if !sawCertificate {
		t.Errorf("no WAC certificate recorded")
	}
}

func TestDSTMFailsParallelismAtClaim3(t *testing.T) {
	for _, name := range []string{"dstm", "sidstm"} {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := NewAdversary(proto).Run()
		if o.Verdict == nil || o.Verdict.Violated != Parallelism {
			t.Fatalf("%s verdict: %v", name, o.Verdict)
		}
		v := o.Verdict.Anomaly.DAP
		if v == nil {
			t.Fatalf("%s: no DAP evidence: %v", name, o.Verdict.Anomaly)
		}
		// The contended object must be transaction metadata (a status
		// word), not an item representation: the disjoint pair meets on a
		// common neighbor's status.
		if !strings.HasPrefix(v.ObjName, "status(") {
			t.Errorf("%s: contention on %s, want a status word", name, v.ObjName)
		}
		pair := [2]core.TxID{v.T1, v.T2}
		if pair != [2]core.TxID{2, 3} {
			t.Errorf("%s: contending pair %v, want T2/T3 (the Claim 3 pair)", name, pair)
		}
	}
}

func TestGClockFailsParallelismOnClock(t *testing.T) {
	proto, err := portfolio.ByName("gclock")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.Verdict == nil || o.Verdict.Violated != Parallelism {
		t.Fatalf("gclock verdict: %v", o.Verdict)
	}
	v := o.Verdict.Anomaly.DAP
	if v == nil || v.ObjName != "clock" {
		t.Errorf("gclock evidence = %v, want contention on the clock", o.Verdict.Anomaly)
	}
}

func TestReportsRender(t *testing.T) {
	var outcomes []*Outcome
	for _, name := range []string{"naive", "tl", "pramtm"} {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := NewAdversary(proto).Run()
		if rep := o.Report(); rep == "" || !strings.Contains(rep, "VERDICT") {
			t.Errorf("%s report incomplete", name)
		}
		outcomes = append(outcomes, o)
	}
	matrix := RenderVerdictMatrix(outcomes)
	if !strings.Contains(matrix, "naive") || !strings.Contains(matrix, "VIOLATED") {
		t.Errorf("matrix incomplete:\n%s", matrix)
	}
}

func TestExpectedReadTablesMatchPaper(t *testing.T) {
	f5 := Figure5Expected()
	if f5[7]["a"] != 2 || f5[3]["b1"] != 1 || f5[4]["d2"] != 0 {
		t.Errorf("Figure 5 table wrong: %v", f5)
	}
	f6 := Figure6Expected()
	if f6[7]["a"] != 1 || f6[5]["b2"] != 2 || f6[6]["d1"] != 0 {
		t.Errorf("Figure 6 table wrong: %v", f6)
	}
	// The contradiction: T7 reads a=2 in β but a=1 in β′ while p7 cannot
	// distinguish them.
	if f5[7]["a"] == f6[7]["a"] {
		t.Errorf("the two figures must force different values for a")
	}
}
