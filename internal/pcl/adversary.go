package pcl

import (
	"errors"
	"fmt"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// SoloBudget bounds every run-until-done phase of the construction; honest
// solo runs of the seven transactions take well under a hundred steps, so
// exhausting it is a liveness observation, not noise.
const SoloBudget = 8192

// CriticalStep records the outcome of a Figure-1/Figure-2 search: the
// first step of a writer's solo run whose execution flips the value a
// later solo reader observes.
type CriticalStep struct {
	// Writer is the transaction whose solo run contains the step (T1 for
	// s1, T2 for s2); Seeker is the probing reader (T3 resp. T5).
	Writer, Seeker core.TxID
	// Item is the probed data item (b1 resp. b2).
	Item core.Item
	// K is the 1-based position of the critical step within the writer's
	// run: probing from after K-1 steps reads ValBefore, from after K
	// steps reads ValAfter.
	K int
	// Step is the recorded critical step.
	Step core.Step
	// ValBefore, ValAfter are the flip values (0→1 for s1, 0→2 for s2).
	ValBefore, ValAfter core.Value
	// WriterSoloSteps is the length of the writer's full solo run.
	WriterSoloSteps int
	// CommitInvoked reports Claim 1: the writer invoked commit before the
	// critical step.
	CommitInvoked bool
	// NonTrivial reports Claim 2's first half: the critical step updates
	// its base object.
	NonTrivial bool
	// SeekerReadsObjAfter / SeekerReadsObjBefore report Claim 2's second
	// half: the seeker accesses the critical object in both probe runs.
	SeekerReadsObjAfter, SeekerReadsObjBefore bool
	// Probes holds the seeker's observed value for every prefix length
	// (index k = value observed when probing after k writer steps); used
	// by the figure renderer.
	Probes []core.Value
}

func (c *CriticalStep) String() string {
	return fmt.Sprintf("s(%s/%s on %s): step %d/%d = %v (flip %d→%d)",
		c.Writer, c.Seeker, c.Item, c.K, c.WriterSoloSteps, c.Step, c.ValBefore, c.ValAfter)
}

// IndistReport is the p7 indistinguishability comparison between α7 (in β)
// and α′7 (in β′).
type IndistReport struct {
	// Indistinguishable reports whether p7 performed the same step
	// sequence with the same responses in both executions.
	Indistinguishable bool
	// Steps is the number of p7 steps compared.
	Steps int
	// FirstDiff describes the first divergence ("" when none).
	FirstDiff string
}

// Outcome is everything the adversary learned about one protocol.
type Outcome struct {
	// Protocol names the TM.
	Protocol string
	// Verdict is the classification by the first anomaly (nil only if
	// the protocol survived — which Theorem 4.1 rules out).
	Verdict *Verdict
	// Anomalies lists every violation observed, in detection order.
	Anomalies []*Anomaly
	// S1, S2 are the located critical steps (nil when the pipeline
	// stopped before finding them).
	S1, S2 *CriticalStep
	// Beta, BetaPrime are the assembled executions (Figures 3/4), as far
	// as construction succeeded.
	Beta, BetaPrime *core.Execution
	// S2RespMatches / S1RespMatches report the s′′2 = s2 and s′′1 = s1
	// response checks inside β and β′.
	S2RespMatches, S1RespMatches bool
	// Indist is the α7/α′7 comparison (nil if β or β′ was not built).
	Indist *IndistReport
	// Log records the phases the pipeline went through.
	Log []string
}

// Adversary drives one protocol through the Section-4 construction.
type Adversary struct {
	bundle  *stms.Bundle
	budget  int
	seen    map[string]bool // de-duplicated DAP violations
	outcome *Outcome
}

// NewAdversary builds the adversary for a protocol.
func NewAdversary(p stms.Protocol) *Adversary {
	return &Adversary{
		bundle: &stms.Bundle{Protocol: p, Specs: Transactions(), NProcs: 7},
		budget: SoloBudget,
		seen:   make(map[string]bool),
	}
}

// Run executes the full pipeline.
func (a *Adversary) Run() *Outcome { return a.RunTo(DepthFull) }

// RunTo executes the pipeline up to the given depth; benchmarks use it to
// time individual figures. Adversaries are single-use: build a fresh one
// per run.
func (a *Adversary) RunTo(depth Depth) *Outcome {
	a.outcome = &Outcome{Protocol: a.bundle.Protocol.Name()}
	a.pipeline(depth)
	if len(a.outcome.Anomalies) > 0 {
		first := a.outcome.Anomalies[0]
		a.outcome.Verdict = &Verdict{
			Protocol: a.outcome.Protocol,
			Violated: first.Property,
			Anomaly:  first,
		}
	}
	return a.outcome
}

// run executes a schedule on a fresh machine and applies the standing
// checks (well-formedness, strict DAP) to the recorded execution.
func (a *Adversary) run(phase string, sched machine.Schedule) (*core.Execution, error) {
	exec, err := a.bundle.Run(a.withBudgets(sched))
	if werr := history.CheckWellFormed(exec); werr != nil {
		a.anomaly(&Anomaly{
			Property: Consistency, Phase: phase,
			Detail: fmt.Sprintf("recorded history is not well-formed: %v", werr),
		})
	}
	a.checkDAP(phase, exec)
	return exec, err
}

func (a *Adversary) withBudgets(sched machine.Schedule) machine.Schedule {
	out := make(machine.Schedule, len(sched))
	for i, ph := range sched {
		if ph.Stop == machine.UntilDone && ph.Budget == 0 {
			ph.Budget = a.budget
		}
		out[i] = ph
	}
	return out
}

// checkDAP records strict-DAP violations, de-duplicated by pair+object.
func (a *Adversary) checkDAP(phase string, exec *core.Execution) {
	for _, v := range dap.CheckStrict(exec) {
		key := fmt.Sprintf("%v/%v/%s", v.T1, v.T2, v.ObjName)
		if a.seen[key] {
			continue
		}
		a.seen[key] = true
		vv := v
		a.anomaly(&Anomaly{
			Property: Parallelism, Phase: phase,
			Detail: fmt.Sprintf("disjoint transactions %v and %v contend on %s", v.T1, v.T2, v.ObjName),
			DAP:    &vv,
		})
	}
}

func (a *Adversary) anomaly(an *Anomaly) {
	a.outcome.Anomalies = append(a.outcome.Anomalies, an)
}

func (a *Adversary) logf(format string, args ...any) {
	a.outcome.Log = append(a.outcome.Log, fmt.Sprintf(format, args...))
}

// blockAnomaly classifies a schedule error as a liveness violation.
func (a *Adversary) blockAnomaly(phase string, err error, proc core.ProcID, txn core.TxID, prefixDesc string) {
	ev := &BlockEvidence{Proc: proc, Txn: txn, PrefixDesc: prefixDesc, Blocked: true, Steps: a.budget}
	var be *machine.BudgetError
	if errors.As(err, &be) {
		ev.Proc = be.Proc
		ev.Steps = be.Steps
	}
	a.anomaly(&Anomaly{
		Property: Liveness, Phase: phase,
		Detail: fmt.Sprintf("solo run of %v did not complete: %v", txn, err),
		Block:  ev,
	})
}

// abortAnomaly classifies a solo abort as a liveness violation.
func (a *Adversary) abortAnomaly(phase string, txn core.TxID, prefixDesc string, steps int) {
	a.anomaly(&Anomaly{
		Property: Liveness, Phase: phase,
		Detail: fmt.Sprintf("solo run of %v aborted", txn),
		Block:  &BlockEvidence{Txn: txn, PrefixDesc: prefixDesc, Blocked: false, Steps: steps},
	})
}

// deviation records a consistency anomaly certified by the WAC checker;
// if the checker finds a witness the deviation is benign fallout of an
// earlier property violation and only the log records it.
func (a *Adversary) deviation(phase, execName string, exec *core.Execution, txn core.TxID, item core.Item, got, want core.Value) {
	res := consistency.WeakAdaptiveConsistent(history.FromExecution(exec))
	if res.Satisfied {
		a.logf("%s: %v read %s=%d (forced %d), but a WAC witness exists — benign", execName, txn, item, got, want)
		return
	}
	dev := &ValueDeviation{
		Execution: execName, Txn: txn, Item: item, Got: got, Want: want, WAC: res,
	}
	a.anomaly(&Anomaly{
		Property: Consistency, Phase: phase,
		Detail:    fmt.Sprintf("%v read %s=%d in %s; the proof forces %d", txn, item, got, execName, want),
		Deviation: dev,
	})
}

// checkValues compares an execution's reads to forced values, recording
// deviations; it returns true when everything matched. Only one WAC
// certificate is computed per execution.
func (a *Adversary) checkValues(phase, execName string, exec *core.Execution, expected ExpectedReads) bool {
	type dev struct {
		txn  core.TxID
		item core.Item
		got  core.Value
		want core.Value
	}
	var devs []dev
	for txn, items := range expected {
		got := exec.ReadValues(txn)
		for item, want := range items {
			g, ok := got[item]
			if !ok {
				continue // the transaction did not reach this read
			}
			if g != want {
				devs = append(devs, dev{txn, item, g, want})
			}
		}
	}
	if len(devs) == 0 {
		return true
	}
	// One exhaustive WAC run decides whether the deviations are real
	// consistency violations or benign fallout of an earlier property
	// violation (e.g. a DSTM enemy abort discarding T1's writes — then
	// reading the old values is perfectly consistent and a witness
	// exists).
	hv := history.FromExecution(exec)
	res := consistency.WeakAdaptiveConsistent(hv)
	if res.Satisfied {
		if err := consistency.ValidateWACWitness(hv, res.Witness); err != nil {
			a.anomaly(&Anomaly{
				Property: Consistency, Phase: phase,
				Detail: fmt.Sprintf("WAC witness for %s failed independent validation: %v", execName, err),
			})
			return false
		}
		a.logf("%s deviates from the forced values in %d place(s), but the WAC checker "+
			"found a (validated) witness — benign fallout, not a consistency violation", execName, len(devs))
		return false
	}
	for i, d := range devs {
		an := &Anomaly{
			Property: Consistency, Phase: phase,
			Detail: fmt.Sprintf("%v read %s=%d in %s; the proof forces %d",
				d.txn, d.item, d.got, execName, d.want),
		}
		if i == 0 {
			an.Deviation = &ValueDeviation{
				Execution: execName, Txn: d.txn, Item: d.item,
				Got: d.got, Want: d.want, WAC: res,
			}
		}
		a.anomaly(an)
	}
	return false
}
