package pcl

import (
	"fmt"

	"pcltm/internal/core"
	"pcltm/internal/machine"
)

// Depth selects how far the pipeline runs; benchmarks use it to time
// individual figures.
type Depth int

const (
	// DepthS1 stops after the Figure 1 critical-step search.
	DepthS1 Depth = iota
	// DepthS2 stops after the Figure 2 search.
	DepthS2
	// DepthBeta stops after β is assembled and checked (Figures 3/5).
	DepthBeta
	// DepthFull runs everything (Figures 4/6 and indistinguishability).
	DepthFull
)

// pipeline walks the Section-4 construction phase by phase. Phases that
// depend on earlier results are skipped when those results are missing
// (e.g. no critical step exists because the protocol never propagates
// writes); everything that can be constructed is, so the figure renderers
// get the richest possible data even for protocols that fail early.
func (a *Adversary) pipeline(depth Depth) {
	if !a.phaseSoloT1() {
		return
	}
	if !a.phaseFigure1() || depth < DepthS2 {
		return
	}
	if !a.phaseFigure2() || depth < DepthBeta {
		return
	}
	a.phaseClaim3()
	a.phaseDelta2()
	a.phaseBeta()
	if depth < DepthFull {
		return
	}
	a.phaseBetaPrime()
	a.phaseIndistinguishability()
}

// alpha1Len returns |α1| = K1-1 writer steps.
func (a *Adversary) alpha1Len() int { return a.outcome.S1.K - 1 }

// alpha2Len returns |α2| = K2-1 writer steps.
func (a *Adversary) alpha2Len() int { return a.outcome.S2.K - 1 }

// phaseSoloT1 runs T1 solo from the initial configuration: it must commit
// (obstruction-freedom) reading 0 for b3 and b7 (no writer exists).
func (a *Adversary) phaseSoloT1() bool {
	const phase = "solo-T1"
	exec, err := a.run(phase, machine.Schedule{machine.Solo(P1)})
	if err != nil {
		a.blockAnomaly(phase, err, P1, 1, "from the initial configuration")
		return false
	}
	if exec.StatusOf(1) != core.TxCommitted {
		a.abortAnomaly(phase, 1, "from the initial configuration", len(exec.Steps))
		return false
	}
	ok := a.checkValues(phase, "T1's solo run", exec, ExpectedReads{1: {"b3": 0, "b7": 0}})
	a.logf("T1 commits solo in %d steps", len(exec.Steps))
	return ok
}

// criticalSearch locates a critical step: prefix runs of the writer's
// process, each followed by a solo run of the seeker, scanning for the
// first prefix length at which the seeker's read of item flips from
// before to after. prefixSched(k) must schedule everything up to and
// including k steps of the writer's process.
func (a *Adversary) criticalSearch(phase string, writer, seeker core.TxID,
	writerProc, seekerProc core.ProcID, item core.Item, before, after core.Value,
	prefixSched func(k int) machine.Schedule, writerSoloSteps int, prefixDesc string) (*CriticalStep, bool) {

	cs := &CriticalStep{
		Writer: writer, Seeker: seeker, Item: item,
		ValBefore: before, ValAfter: after,
		WriterSoloSteps: writerSoloSteps,
	}
	probeExecs := make([]*core.Execution, writerSoloSteps+1)
	for k := 0; k <= writerSoloSteps; k++ {
		sched := append(prefixSched(k), machine.Solo(seekerProc))
		exec, err := a.run(phase, sched)
		if err != nil {
			a.blockAnomaly(phase, err, seekerProc, seeker,
				fmt.Sprintf("after %d solo steps of %v %s", k, writer, prefixDesc))
			return nil, false
		}
		if exec.StatusOf(seeker) != core.TxCommitted {
			a.abortAnomaly(phase, seeker,
				fmt.Sprintf("after %d solo steps of %v %s", k, writer, prefixDesc), len(exec.Steps))
			return nil, false
		}
		cs.Probes = append(cs.Probes, exec.ReadValues(seeker)[item])
		probeExecs[k] = exec
	}

	if cs.Probes[0] != before {
		a.deviation(phase, fmt.Sprintf("%v's solo run from %s", seeker, prefixDesc),
			probeExecs[0], seeker, item, cs.Probes[0], before)
		return nil, false
	}
	if cs.Probes[writerSoloSteps] != after {
		// The full writer run did not become visible: the proof's case
		// analysis shows this violates weak adaptive consistency (this is
		// execution δ1 for the s1 search).
		a.deviation(phase, fmt.Sprintf("δ(%v·%v)", writer, seeker),
			probeExecs[writerSoloSteps], seeker, item, cs.Probes[writerSoloSteps], after)
		return nil, false
	}
	k := -1
	for i := 1; i <= writerSoloSteps; i++ {
		if cs.Probes[i-1] == before && cs.Probes[i] == after {
			k = i
			break
		}
	}
	if k < 0 {
		a.anomaly(&Anomaly{
			Property: Consistency, Phase: phase,
			Detail: fmt.Sprintf("no clean %d→%d flip of %s found in %v's probe sequence %v",
				before, after, item, seeker, cs.Probes),
		})
		return nil, false
	}
	cs.K = k

	// The critical step is the k-th step of the writer's process in the
	// probe run.
	var writerSteps []core.Step
	for _, s := range probeExecs[k].Steps {
		if s.Proc == writerProc {
			writerSteps = append(writerSteps, s)
		}
	}
	cs.Step = writerSteps[len(writerSteps)-1]
	cs.NonTrivial = cs.Step.NonTrivial()

	// Claim 1: the writer invoked commit within the prefix before the
	// critical step.
	cs.CommitInvoked = false
	for _, s := range writerSteps[:len(writerSteps)-1] {
		if ev := s.Event; ev != nil && ev.Txn == writer && ev.Inv && ev.Op == core.OpTryCommit {
			cs.CommitInvoked = true
		}
	}
	if !cs.CommitInvoked {
		a.anomaly(&Anomaly{
			Property: Consistency, Phase: phase,
			Detail: fmt.Sprintf("Claim 1 fails: %v had not invoked commit before the critical step — "+
				"no write serialization point can exist for it, violating weak adaptive consistency", writer),
		})
	}

	// Claim 2: the step is non-trivial and the seeker accesses its object
	// in both probe runs.
	cs.SeekerReadsObjAfter = seekerTouches(probeExecs[k], seekerProc, cs.Step.Obj)
	cs.SeekerReadsObjBefore = seekerTouches(probeExecs[k-1], seekerProc, cs.Step.Obj)
	if !cs.NonTrivial || !cs.SeekerReadsObjAfter || !cs.SeekerReadsObjBefore {
		a.anomaly(&Anomaly{
			Property: Consistency, Phase: phase,
			Detail: fmt.Sprintf("Claim 2 fails: critical step %v (non-trivial=%v, read after=%v, read before=%v) "+
				"cannot explain the flip — the two probe runs would be indistinguishable to the seeker",
				cs.Step, cs.NonTrivial, cs.SeekerReadsObjAfter, cs.SeekerReadsObjBefore),
		})
	}
	return cs, true
}

func seekerTouches(exec *core.Execution, proc core.ProcID, obj core.ObjID) bool {
	for _, s := range exec.Steps {
		if s.Proc == proc && s.Prim != core.PrimEvent && s.Obj == obj {
			return true
		}
	}
	return false
}

// phaseFigure1 locates s1: the first step of T1's solo run after which
// T3's solo run reads 1 for b1 (Figure 1).
func (a *Adversary) phaseFigure1() bool {
	const phase = "figure-1(s1)"
	full, err := a.run(phase, machine.Schedule{machine.Solo(P1)})
	if err != nil {
		a.blockAnomaly(phase, err, P1, 1, "from the initial configuration")
		return false
	}
	n1 := len(full.Steps)
	cs, ok := a.criticalSearch(phase, 1, 3, P1, P3, "b1", 0, 1,
		func(k int) machine.Schedule { return machine.Schedule{machine.Steps(P1, k)} },
		n1, "from the initial configuration")
	if !ok {
		return false
	}
	a.outcome.S1 = cs
	a.logf("s1 located: %v", cs)

	// T3 must also read 0 for b4 in α3 (no writer of b4 ran).
	exec, err := a.run(phase, machine.Schedule{machine.Steps(P1, cs.K), machine.Solo(P3)})
	if err == nil {
		a.checkValues(phase, "α1·s1·α3", exec, ExpectedReads{3: {"b4": 0}})
	}
	return true
}

// phaseFigure2 locates s2 inside T2's solo run from C1⁻, probed by T5 on
// b2 (Figure 2).
func (a *Adversary) phaseFigure2() bool {
	const phase = "figure-2(s2)"
	a1 := a.alpha1Len()
	full, err := a.run(phase, machine.Schedule{machine.Steps(P1, a1), machine.Solo(P2)})
	if err != nil {
		a.blockAnomaly(phase, err, P2, 2, "from C1⁻")
		return false
	}
	if full.StatusOf(2) != core.TxCommitted {
		a.abortAnomaly(phase, 2, "from C1⁻", len(full.Steps))
		return false
	}
	if !a.checkValues(phase, "T2's solo run from C1⁻", full, ExpectedReads{2: {"b5": 0, "b7": 0}}) {
		return false
	}
	var n2 int
	for _, s := range full.Steps {
		if s.Proc == P2 {
			n2++
		}
	}
	cs, ok := a.criticalSearch(phase, 2, 5, P2, P5, "b2", 0, 2,
		func(k int) machine.Schedule {
			return machine.Schedule{machine.Steps(P1, a1), machine.Steps(P2, k)}
		},
		n2, "from C1⁻")
	if !ok {
		return false
	}
	a.outcome.S2 = cs
	a.logf("s2 located: %v", cs)

	// T5 must read 0 for b6 in α5 (no writer of b6 ran).
	exec, err := a.run(phase, machine.Schedule{
		machine.Steps(P1, a1), machine.Steps(P2, cs.K), machine.Solo(P5),
	})
	if err == nil {
		a.checkValues(phase, "α1·α2·s2·α5", exec, ExpectedReads{5: {"b6": 0}})
	}
	return true
}

// phaseClaim3 checks o1 ≠ o2 and probes the execution α1·α2·s′1·γ3 the
// proof uses to derive it: this is where non-strictly-DAP protocols
// exhibit the disjoint contention (T2 and T3 meeting on a common
// neighbor's metadata).
func (a *Adversary) phaseClaim3() {
	const phase = "claim-3(o1≠o2)"
	s1, s2 := a.outcome.S1, a.outcome.S2
	if s1.Step.Obj == s2.Step.Obj {
		a.anomaly(&Anomaly{
			Property: Parallelism, Phase: phase,
			Detail: fmt.Sprintf("o1 = o2 = %s: the proof shows s′2 after α1·α2·s1·α3 then violates strict DAP",
				s1.Step.ObjName),
		})
	}
	exec, err := a.run(phase, machine.Schedule{
		machine.Steps(P1, a.alpha1Len()),
		machine.Steps(P2, a.alpha2Len()),
		machine.Steps(P1, 1), // s′1
		machine.Solo(P3),     // γ3
	})
	if err != nil {
		a.blockAnomaly(phase, err, P3, 3, "in α1·α2·s′1·γ3")
		return
	}
	// s′1 must equal s1 (same primitive, object, response) when strict
	// DAP holds; a mismatch is itself parallelism evidence.
	sp1 := stepOfProcAt(exec, P1, a.alpha1Len()+1)
	if !sameStep(sp1, s1.Step) {
		a.anomaly(&Anomaly{
			Property: Parallelism, Phase: phase,
			Detail: fmt.Sprintf("s′1 = %v differs from s1 = %v: α2 changed state s1 depends on, "+
				"which strict DAP forbids for the disjoint pair T2/T3", sp1, s1.Step),
		})
	}
	a.logf("claim-3 probe ran: o1=%s o2=%s", s1.Step.ObjName, s2.Step.ObjName)
}

// phaseDelta2 builds δ2 = α1·α2·s1·α3·α4·α′5 and applies the proof's
// value checks: T4 reads 0 for d2 (T2 ∉ com) and 1 for c3, T5 reads 0 for
// b2 and T3 reads 1 for b1 (Claim 4's groundwork).
func (a *Adversary) phaseDelta2() {
	const phase = "delta-2(T4)"
	exec, err := a.run(phase, machine.Schedule{
		machine.Steps(P1, a.alpha1Len()),
		machine.Steps(P2, a.alpha2Len()),
		machine.Steps(P1, 1), // s1
		machine.Solo(P3),     // α3
		machine.Solo(P4),     // α4
		machine.Solo(P5),     // α′5
	})
	if err != nil {
		a.blockAnomaly(phase, err, P5, 5, "in δ2 = α1·α2·s1·α3·α4·α′5")
		return
	}
	a.checkValues(phase, "δ2", exec, ExpectedReads{
		3: {"b1": 1, "b4": 0},
		4: {"d2": 0, "c3": 1},
		5: {"b2": 0},
	})
}

// betaSchedule is β = α1·α2·s1·α3·α4·s2·α7 (Figure 3).
func (a *Adversary) betaSchedule() machine.Schedule {
	return machine.Schedule{
		machine.Steps(P1, a.alpha1Len()),
		machine.Steps(P2, a.alpha2Len()),
		machine.Steps(P1, 1), // s1
		machine.Solo(P3),     // α3
		machine.Solo(P4),     // α4
		machine.Steps(P2, 1), // s′′2
		machine.Solo(P7),     // α7
	}
}

// betaPrimeSchedule is β′ = α1·α2·s2·α5·α6·s1·α′7 (Figure 4).
func (a *Adversary) betaPrimeSchedule() machine.Schedule {
	return machine.Schedule{
		machine.Steps(P1, a.alpha1Len()),
		machine.Steps(P2, a.alpha2Len()),
		machine.Steps(P2, 1), // s2
		machine.Solo(P5),     // α5
		machine.Solo(P6),     // α6
		machine.Steps(P1, 1), // s′′1
		machine.Solo(P7),     // α′7
	}
}

// phaseBeta assembles β and applies the Figure 5 value table.
func (a *Adversary) phaseBeta() {
	const phase = "beta(F3/F5)"
	exec, err := a.run(phase, a.betaSchedule())
	a.outcome.Beta = exec
	if err != nil {
		a.blockAnomaly(phase, err, P7, 7, "in β")
		return
	}
	// s′′2 = s2: same primitive, object and response (the proof derives
	// this from strict DAP via δ2).
	sp2 := stepOfProcAt(exec, P2, a.alpha2Len()+1)
	a.outcome.S2RespMatches = sameStep(sp2, a.outcome.S2.Step)
	if !a.outcome.S2RespMatches {
		a.anomaly(&Anomaly{
			Property: Parallelism, Phase: phase,
			Detail: fmt.Sprintf("s′′2 = %v differs from s2 = %v: α3·α4 changed state s2 depends on, "+
				"which strict DAP forbids (T5 is disjoint from T3 and T4)", sp2, a.outcome.S2.Step),
		})
	}
	a.checkValues(phase, "β", exec, Figure5Expected())
	a.logf("β assembled: %d steps", len(exec.Steps))
}

// phaseBetaPrime assembles β′ and applies the Figure 6 value table.
func (a *Adversary) phaseBetaPrime() {
	const phase = "beta'(F4/F6)"
	exec, err := a.run(phase, a.betaPrimeSchedule())
	a.outcome.BetaPrime = exec
	if err != nil {
		a.blockAnomaly(phase, err, P7, 7, "in β′")
		return
	}
	sp1 := stepOfProcAt(exec, P1, a.alpha1Len()+1)
	a.outcome.S1RespMatches = sameStep(sp1, a.outcome.S1.Step)
	if !a.outcome.S1RespMatches {
		a.anomaly(&Anomaly{
			Property: Parallelism, Phase: phase,
			Detail: fmt.Sprintf("s′′1 = %v differs from s1 = %v: α5·α6 changed state s1 depends on, "+
				"which strict DAP forbids (T3 is disjoint from T5 and T6)", sp1, a.outcome.S1.Step),
		})
	}
	a.checkValues(phase, "β′", exec, Figure6Expected())
	a.logf("β′ assembled: %d steps", len(exec.Steps))
}

// phaseIndistinguishability compares p7's step sequences in β and β′.
func (a *Adversary) phaseIndistinguishability() {
	const phase = "indistinguishability(α7/α′7)"
	if a.outcome.Beta == nil || a.outcome.BetaPrime == nil {
		return
	}
	rep := compareProcSteps(a.outcome.Beta, a.outcome.BetaPrime, P7)
	a.outcome.Indist = rep
	a.logf("α7 vs α′7: indistinguishable=%v over %d steps", rep.Indistinguishable, rep.Steps)
	// When the steps are indistinguishable, T7 reads the same value for
	// data item a in both — so at most one of the Figure 5 / Figure 6
	// tables can hold, which is the theorem's contradiction. The value
	// checks above have already recorded it as a deviation; nothing to
	// add here. A distinguishable pair, by the proof's argument, means s1
	// and s2 interacted through shared state, which the DAP checks have
	// already flagged.
}

// stepOfProcAt returns the n-th step (1-based) taken by proc in exec.
func stepOfProcAt(exec *core.Execution, proc core.ProcID, n int) core.Step {
	count := 0
	for _, s := range exec.Steps {
		if s.Proc == proc {
			count++
			if count == n {
				return s
			}
		}
	}
	return core.Step{Index: -1}
}

// sameStep compares two steps up to position: primitive, object,
// arguments and response.
func sameStep(a, b core.Step) bool {
	if a.Prim != b.Prim || a.Obj != b.Obj || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return a.Resp == b.Resp
}

// compareProcSteps checks indistinguishability of two executions to one
// process: the same steps with the same responses, in the same order.
func compareProcSteps(e1, e2 *core.Execution, proc core.ProcID) *IndistReport {
	s1 := procSteps(e1, proc)
	s2 := procSteps(e2, proc)
	rep := &IndistReport{Indistinguishable: true, Steps: len(s1)}
	n := len(s1)
	if len(s2) < n {
		n = len(s2)
	}
	for i := 0; i < n; i++ {
		if !sameStep(s1[i], s2[i]) || !sameEvent(s1[i].Event, s2[i].Event) {
			rep.Indistinguishable = false
			rep.FirstDiff = fmt.Sprintf("step %d: %v vs %v", i, s1[i], s2[i])
			return rep
		}
	}
	if len(s1) != len(s2) {
		rep.Indistinguishable = false
		rep.FirstDiff = fmt.Sprintf("step counts differ: %d vs %d", len(s1), len(s2))
	}
	return rep
}

func sameEvent(a, b *core.Event) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Op == b.Op && a.Inv == b.Inv && a.Item == b.Item &&
		a.Value == b.Value && a.Status == b.Status
}

func procSteps(e *core.Execution, proc core.ProcID) []core.Step {
	var out []core.Step
	for _, s := range e.Steps {
		if s.Proc == proc {
			out = append(out, s)
		}
	}
	return out
}
