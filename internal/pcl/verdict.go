package pcl

import (
	"fmt"
	"strings"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
)

// Property names the corner of the PCL triangle an anomaly violates.
type Property int

const (
	// Parallelism is strict disjoint-access-parallelism.
	Parallelism Property = iota
	// Consistency is weak adaptive consistency.
	Consistency
	// Liveness is obstruction-freedom.
	Liveness
)

var propertyNames = [...]string{"Parallelism (strict DAP)", "Consistency (weak adaptive)", "Liveness (obstruction-freedom)"}

func (p Property) String() string {
	if p < 0 || int(p) >= len(propertyNames) {
		return fmt.Sprintf("property(%d)", int(p))
	}
	return propertyNames[p]
}

// Short returns the one-letter tag used in the verdict matrix.
func (p Property) Short() string { return [...]string{"P", "C", "L"}[p] }

// BlockEvidence documents a Liveness violation: a solo run that aborted or
// exhausted its step budget.
type BlockEvidence struct {
	// Proc is the process that ran solo.
	Proc core.ProcID
	// Txn is the transaction that failed to commit.
	Txn core.TxID
	// PrefixDesc describes the configuration the solo run started from.
	PrefixDesc string
	// Blocked is true for budget exhaustion, false for an abort.
	Blocked bool
	// Steps is the number of steps the solo run took.
	Steps int
}

func (b *BlockEvidence) String() string {
	what := "aborted"
	if b.Blocked {
		what = fmt.Sprintf("exhausted its %d-step budget", b.Steps)
	}
	return fmt.Sprintf("%s run solo %s %s — a solo transaction must commit under obstruction-freedom",
		b.Txn, b.PrefixDesc, what)
}

// ValueDeviation documents a Consistency violation: a read returned a
// value other than the one the proof forces, and the exhaustive weak
// adaptive consistency check of the execution found no witness.
type ValueDeviation struct {
	// Execution names the construction execution (δ1, β, β′, ...).
	Execution string
	// Txn and Item locate the deviating read.
	Txn  core.TxID
	Item core.Item
	// Got is the value read; Want the value the proof forces.
	Got, Want core.Value
	// WAC is the checker result on the execution (Satisfied=false is the
	// certificate; Satisfied=true would mean the deviation is benign).
	WAC consistency.Result
}

func (v *ValueDeviation) String() string {
	cert := "WAC checker found no witness"
	if v.WAC.Satisfied {
		cert = "WAC checker found a witness (deviation benign)"
	}
	return fmt.Sprintf("in %s, %s read %s=%d where the proof forces %d; %s (%d configs, %d nodes)",
		v.Execution, v.Txn, v.Item, v.Got, v.Want, cert, v.WAC.Configs, v.WAC.Nodes)
}

// Anomaly is one observed property violation with its evidence.
type Anomaly struct {
	// Property is the violated corner.
	Property Property
	// Phase names the construction phase that observed it.
	Phase string
	// Detail is a one-line human-readable description.
	Detail string
	// DAP is set for Parallelism anomalies.
	DAP *dap.Violation
	// Block is set for Liveness anomalies.
	Block *BlockEvidence
	// Deviation is set for Consistency anomalies.
	Deviation *ValueDeviation
}

func (a *Anomaly) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", a.Property.Short(), a.Phase, a.Detail)
	switch {
	case a.DAP != nil:
		fmt.Fprintf(&b, "\n    %s", a.DAP)
	case a.Block != nil:
		fmt.Fprintf(&b, "\n    %s", a.Block)
	case a.Deviation != nil:
		fmt.Fprintf(&b, "\n    %s", a.Deviation)
	}
	return b.String()
}

// Verdict is the adversary's conclusion for one protocol.
type Verdict struct {
	// Protocol names the TM.
	Protocol string
	// Violated is the property of the first anomaly.
	Violated Property
	// Anomaly is that first anomaly.
	Anomaly *Anomaly
}

func (v *Verdict) String() string {
	return fmt.Sprintf("%s violates %s\n  %s", v.Protocol, v.Violated, v.Anomaly)
}
