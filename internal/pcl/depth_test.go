package pcl

import (
	"strings"
	"testing"

	"pcltm/internal/stms/portfolio"
)

func TestRunToDepths(t *testing.T) {
	proto, err := portfolio.ByName("naive")
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewAdversary(proto).RunTo(DepthS1)
	if s1.S1 == nil {
		t.Fatalf("DepthS1 did not locate s1")
	}
	if s1.S2 != nil || s1.Beta != nil {
		t.Errorf("DepthS1 went too far: s2=%v beta=%v", s1.S2, s1.Beta)
	}

	s2 := NewAdversary(proto).RunTo(DepthS2)
	if s2.S2 == nil {
		t.Fatalf("DepthS2 did not locate s2")
	}
	if s2.Beta != nil {
		t.Errorf("DepthS2 assembled β")
	}

	beta := NewAdversary(proto).RunTo(DepthBeta)
	if beta.Beta == nil {
		t.Fatalf("DepthBeta did not assemble β")
	}
	if beta.BetaPrime != nil {
		t.Errorf("DepthBeta assembled β′")
	}

	full := NewAdversary(proto).RunTo(DepthFull)
	if full.BetaPrime == nil || full.Indist == nil {
		t.Fatalf("DepthFull incomplete")
	}
}

func TestRenderersHandleMissingData(t *testing.T) {
	o := &Outcome{Protocol: "x"}
	if !strings.Contains(RenderCriticalStep("t", nil), "not located") {
		t.Errorf("nil critical step not handled")
	}
	if !strings.Contains(RenderValueTable("t", nil, nil), "not assembled") {
		t.Errorf("nil execution not handled")
	}
	if !strings.Contains(RenderComposition("t", o, false), "impossible") {
		t.Errorf("missing critical steps not handled")
	}
	if rep := o.Report(); !strings.Contains(rep, "survived") {
		t.Errorf("no-verdict report wrong:\n%s", rep)
	}
}

func TestVerdictAndAnomalyStrings(t *testing.T) {
	proto, err := portfolio.ByName("tl")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.Verdict.String() == "" || o.Verdict.Anomaly.String() == "" {
		t.Errorf("verdict unprintable")
	}
	if Parallelism.Short() != "P" || Consistency.Short() != "C" || Liveness.Short() != "L" {
		t.Errorf("short tags wrong")
	}
	if Parallelism.String() == "" || Liveness.String() == "" {
		t.Errorf("property names wrong")
	}
}

// TestAdversaryDeterminism: two runs of the same protocol produce the same
// verdict at the same phase with the same critical steps.
func TestAdversaryDeterminism(t *testing.T) {
	for _, name := range []string{"naive", "dstm", "pramtm"} {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := NewAdversary(proto).Run()
		b := NewAdversary(proto).Run()
		if (a.Verdict == nil) != (b.Verdict == nil) {
			t.Fatalf("%s: verdict presence diverged", name)
		}
		if a.Verdict.Violated != b.Verdict.Violated || a.Verdict.Anomaly.Phase != b.Verdict.Anomaly.Phase {
			t.Errorf("%s: verdicts diverged: %v vs %v", name, a.Verdict, b.Verdict)
		}
		if (a.S1 == nil) != (b.S1 == nil) {
			t.Fatalf("%s: s1 presence diverged", name)
		}
		if a.S1 != nil && (a.S1.K != b.S1.K || a.S1.Step.ObjName != b.S1.Step.ObjName) {
			t.Errorf("%s: s1 diverged: %v vs %v", name, a.S1, b.S1)
		}
	}
}

// TestGClockCriticalStepIsWriteBack documents where s1 lands for the
// global-clock design: b1's stamped write-back.
func TestGClockCriticalStepIsWriteBack(t *testing.T) {
	proto, err := portfolio.ByName("gclock")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.S1 == nil {
		t.Fatalf("s1 not located for gclock")
	}
	if o.S1.Step.ObjName != "item(b1)" {
		t.Errorf("gclock s1 on %s, want item(b1)", o.S1.Step.ObjName)
	}
}

// TestDSTMCriticalStepIsCommitCAS documents where s1 lands for DSTM: the
// commit status CAS.
func TestDSTMCriticalStepIsCommitCAS(t *testing.T) {
	proto, err := portfolio.ByName("dstm")
	if err != nil {
		t.Fatal(err)
	}
	o := NewAdversary(proto).Run()
	if o.S1 == nil {
		t.Fatalf("s1 not located for dstm")
	}
	if o.S1.Step.ObjName != "status(T1)" {
		t.Errorf("dstm s1 on %s, want status(T1)", o.S1.Step.ObjName)
	}
}
