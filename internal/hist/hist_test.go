package hist

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestBucketMapping pins the log-linear grid: monotone, continuous
// across magnitude boundaries, exact below subCount, and bucketUpper is
// a true upper bound with relative width 2^-subBits.
func TestBucketMapping(t *testing.T) {
	for v := int64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Fatalf("bucketUpper(%d) = %d, want exact", v, got)
		}
	}
	check := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			return false
		}
		up := bucketUpper(idx)
		if up < v {
			return false
		}
		// Bucket width is at most a relative 2^-subBits.
		if up-v > v>>subBits {
			return false
		}
		// Monotone: the previous bucket's upper bound is below v.
		return idx == 0 || bucketUpper(idx-1) < v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Boundary spot checks: continuity where the linear grid changes pitch.
	for _, v := range []int64{31, 32, 33, 63, 64, 65, 1 << 20, (1 << 62) + 12345} {
		idx := bucketIndex(v)
		if prev := bucketIndex(v - 1); prev > idx {
			t.Fatalf("bucketIndex not monotone at %d: %d then %d", v, prev, idx)
		}
	}
}

// quantileOracle is the sorted-slice ground truth matching Quantile's
// rank convention (ceil(q*n), 1-based).
func quantileOracle(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileAccuracy drives random sample sets through the histogram
// and checks every reported quantile against the oracle within the
// bucket-width bound: never below the true value, never more than a
// relative 2^-subBits (plus one) above it.
func TestQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(2000)
		samples := make([]int64, n)
		h := New()
		for i := range samples {
			// Mix magnitudes: exact region, mid, and huge values.
			var v int64
			switch rr.Intn(3) {
			case 0:
				v = int64(rr.Intn(subCount))
			case 1:
				v = rr.Int63n(1 << 20)
			default:
				v = rr.Int63()
			}
			samples[i] = v
			h.Record(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1}
		for i := 0; i < 5; i++ {
			qs = append(qs, rr.Float64())
		}
		for _, q := range qs {
			want := quantileOracle(samples, q)
			got := h.Quantile(q)
			if got < want {
				t.Logf("seed %d q=%g: estimate %d below true %d", seed, q, got, want)
				return false
			}
			if got-want > (want>>subBits)+1 {
				t.Logf("seed %d q=%g: estimate %d exceeds bound for true %d", seed, q, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomHist(r *rand.Rand, n int) *H {
	h := New()
	for i := 0; i < n; i++ {
		h.Record(r.Int63n(1 << 40))
	}
	return h
}

// TestMergeAssociativity pins that merge order cannot change the
// result: (a+b)+c == a+(b+c), and merging equals recording everything
// into one histogram.
func TestMergeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		a := randomHist(r, 1+r.Intn(500))
		b := randomHist(r, r.Intn(500))
		c := randomHist(r, r.Intn(500))

		left := New()
		left.Merge(a)
		left.Merge(b)
		left.Merge(c)

		bc := New()
		bc.Merge(b)
		bc.Merge(c)
		right := New()
		right.Merge(a)
		right.Merge(bc)

		if !reflect.DeepEqual(left, right) {
			t.Fatalf("round %d: merge not associative", round)
		}
		if left.Count() != a.Count()+b.Count()+c.Count() {
			t.Fatalf("round %d: merged count %d", round, left.Count())
		}
	}
}

// TestMergeEmpty pins the identity element: merging an empty histogram
// changes nothing, merging into an empty histogram copies.
func TestMergeEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomHist(r, 100)
	before := *a
	a.Merge(New())
	if !reflect.DeepEqual(&before, a) {
		t.Fatal("merge of empty changed histogram")
	}
	into := New()
	into.Merge(a)
	if !reflect.DeepEqual(into, a) {
		t.Fatal("merge into empty is not a copy")
	}
}

// TestJSONRoundTrip pins the artifact format CI parses: marshal,
// unmarshal, identical histogram (quantiles included).
func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	h := randomHist(r, 1000)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back H
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, &back) {
		t.Fatal("JSON round trip changed histogram")
	}
	if h.Quantile(0.99) != back.Quantile(0.99) {
		t.Fatal("round-tripped quantile differs")
	}
	// A precision mismatch must be rejected, not silently re-bucketed.
	var bad H
	if err := json.Unmarshal([]byte(`{"sub_bits":4,"total":1,"counts":{"0":1}}`), &bad); err == nil {
		t.Fatal("want error for mismatched sub_bits")
	}
}

// TestRecordEdges pins clamping and extremes.
func TestRecordEdges(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	h.Record(-5) // clamps to 0
	h.Record(1<<62 + 999)
	if h.Min() != 0 {
		t.Fatalf("min = %d", h.Min())
	}
	if h.Max() != 1<<62+999 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("q=1 gives %d, want clamped max %d", got, h.Max())
	}
}
