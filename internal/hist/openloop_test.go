package hist

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopBasics drives a fast responder and checks the accounting:
// every scheduled arrival completes, errors are counted, and the run
// spans roughly the configured duration.
func TestOpenLoopBasics(t *testing.T) {
	var calls atomic.Int64
	res := OpenLoop(OpenLoopConfig{
		Rate: 500, Duration: 300 * time.Millisecond, Workers: 4,
		Send: func() error {
			if calls.Add(1)%10 == 0 {
				return errors.New("planted")
			}
			return nil
		},
	})
	if res.Scheduled != 150 {
		t.Fatalf("scheduled %d arrivals, want 150", res.Scheduled)
	}
	if res.Done != res.Scheduled {
		t.Fatalf("done %d != scheduled %d", res.Done, res.Scheduled)
	}
	if res.Errors != 15 {
		t.Fatalf("errors %d, want 15", res.Errors)
	}
	if res.Hist.Count() != res.Done {
		t.Fatalf("histogram count %d != done %d", res.Hist.Count(), res.Done)
	}
	if res.Elapsed < 250*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the schedule", res.Elapsed)
	}
}

// TestOpenLoopZeroConfig pins the degenerate inputs.
func TestOpenLoopZeroConfig(t *testing.T) {
	res := OpenLoop(OpenLoopConfig{})
	if res.Done != 0 || res.Hist.Count() != 0 {
		t.Fatal("zero config must do nothing")
	}
}

// TestCoordinatedOmission is the regression test for the measurement
// discipline itself: a responder that stalls once must inflate the
// recorded tail, not hide it. The open-loop latencies are measured from
// each request's scheduled arrival, so every arrival that queued behind
// the stall carries the wait; a closed-loop view (timing only the Send
// call bodies) sees one slow call and a healthy tail — the coordinated
// omission this harness exists to avoid.
func TestCoordinatedOmission(t *testing.T) {
	const stall = 400 * time.Millisecond
	var calls atomic.Int64
	var mu sync.Mutex
	closed := New() // per-call service times: the misleading view

	res := OpenLoop(OpenLoopConfig{
		Rate: 200, Duration: time.Second, Workers: 1,
		Send: func() error {
			begin := time.Now()
			if calls.Add(1) == 1 {
				time.Sleep(stall)
			} else {
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			closed.Record(time.Since(begin).Nanoseconds())
			mu.Unlock()
			return nil
		},
	})
	if res.Done != res.Scheduled {
		t.Fatalf("done %d != scheduled %d", res.Done, res.Scheduled)
	}

	open := res.Hist
	// The tail must carry the stall: requests scheduled during the
	// 400ms stall waited most of it.
	if p999 := open.Quantile(0.999); p999 < (stall / 2).Nanoseconds() {
		t.Fatalf("open-loop p999 = %v hides the %v stall",
			time.Duration(p999), stall)
	}
	// The stall's queue also drags the body of the distribution:
	// many non-stalled requests waited.
	if p90 := open.Quantile(0.90); p90 < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("open-loop p90 = %v shows no queueing", time.Duration(p90))
	}
	// The closed-loop view of the same run is the lie: its median is
	// the 1ms service time, far below the open-loop tail.
	closedP50 := closed.Quantile(0.5)
	if closedP50 > (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("closed-loop p50 = %v, expected a healthy-looking median",
			time.Duration(closedP50))
	}
	if open.Quantile(0.999) < 4*closedP50 {
		t.Fatalf("open-loop tail %v not inflated vs closed-loop median %v",
			time.Duration(open.Quantile(0.999)), time.Duration(closedP50))
	}
}
