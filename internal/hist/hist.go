// Package hist is the latency accounting of the serving tier: an
// HDR-style log-linear histogram plus an open-loop request pacer
// (openloop.go) that records latencies the coordinated-omission-safe
// way — from each request's *scheduled* arrival time, not from when a
// lagging client finally got around to sending it.
//
// The histogram buckets non-negative int64 values (nanoseconds, in this
// repo) on a log-linear grid: exact below 2^subBits, then subCount
// linear sub-buckets per power of two. Worst-case relative quantile
// error is 2^-subBits (~3%), memory is a fixed ~15KB array, Record is
// two adds and a shift — cheap enough to sit on the load generator's
// hot path without becoming the thing measured. Histograms merge by
// bucket-wise addition, so per-worker recording needs no locks.
package hist

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strconv"
)

const (
	// subBits sets the precision: subCount linear sub-buckets per power
	// of two, so quantiles are exact to a relative 2^-subBits.
	subBits  = 5
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: values below subCount
	// map one-to-one, and each of the remaining (63-subBits) value
	// magnitudes contributes subCount buckets.
	numBuckets = (63 - subBits + 1) * subCount
)

// H is a log-linear histogram of non-negative int64 samples. The zero
// value is ready to use. It is not safe for concurrent use; give each
// recorder its own H and Merge.
type H struct {
	counts   [numBuckets]uint64
	total    uint64
	min, max int64
}

// New returns an empty histogram.
func New() *H { return &H{} }

// bucketIndex maps v (>= 0) to its bucket. Values below subCount map to
// themselves; a larger v with top bit at position msb lands in linear
// sub-bucket v>>(msb-subBits) of magnitude msb, and the grid is
// continuous across magnitude boundaries (31 -> 31, 32 -> 32, 64 -> 64).
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	shift := msb - subBits
	return shift*subCount + int(v>>uint(shift))
}

// bucketUpper returns the largest value mapping to bucket idx — the
// quantile estimate, so reported quantiles never understate the true
// value by more than the bucket they share.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := idx/subCount - 1
	m := int64(idx - shift*subCount) // in [subCount, 2*subCount)
	return m<<uint(shift) + (1 << uint(shift)) - 1
}

// Record adds one sample. Negative samples clamp to zero (a scheduled
// send that completed before its official arrival instant — clock
// steps; they are latency zero, not data loss).
func (h *H) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n occurrences of sample v.
func (h *H) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)] += n
	h.total += n
}

// Count returns the number of recorded samples.
func (h *H) Count() uint64 { return h.total }

// Min and Max are the exact extremes of the recorded samples (0 when
// empty).
func (h *H) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

func (h *H) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper estimate of the q-quantile (q in [0,1]):
// the upper bound of the bucket holding the sample of rank ceil(q*n),
// clamped to the exact observed [min, max]. The estimate is never below
// the true quantile and overstates it by at most a relative 2^-subBits.
// An empty histogram reports 0.
func (h *H) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds o's samples into h (bucket-wise; exact min/max preserved).
func (h *H) Merge(o *H) {
	if o == nil || o.total == 0 {
		return
	}
	if h.total == 0 {
		h.min = o.min
	} else if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// histJSON is the wire form: sparse bucket counts keyed by index, plus
// enough metadata (sub_bits) for a reader to reconstruct bucket bounds.
type histJSON struct {
	SubBits int               `json:"sub_bits"`
	Total   uint64            `json:"total"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Counts  map[string]uint64 `json:"counts"`
}

// MarshalJSON encodes the histogram sparsely (only occupied buckets).
func (h *H) MarshalJSON() ([]byte, error) {
	out := histJSON{
		SubBits: subBits, Total: h.total, Min: h.Min(), Max: h.Max(),
		Counts: make(map[string]uint64),
	}
	for i, c := range h.counts {
		if c != 0 {
			out.Counts[strconv.Itoa(i)] = c
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the sparse wire form. Histograms written with a
// different precision are rejected rather than silently re-bucketed.
func (h *H) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.SubBits != subBits {
		return fmt.Errorf("hist: sub_bits %d != %d", in.SubBits, subBits)
	}
	*h = H{total: in.Total, min: in.Min, max: in.Max}
	for k, c := range in.Counts {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= numBuckets {
			return fmt.Errorf("hist: bad bucket index %q", k)
		}
		h.counts[i] = c
	}
	return nil
}
