package hist

import (
	"sync"
	"sync/atomic"
	"time"
)

// OpenLoopConfig shapes one open-loop measurement run.
type OpenLoopConfig struct {
	// Rate is the arrival rate in requests per second. Arrivals are
	// scheduled on this fixed grid regardless of how the system under
	// test is coping — the open-loop discipline.
	Rate float64
	// Duration is how long arrivals are generated for; the run drains
	// in-flight requests past the deadline.
	Duration time.Duration
	// Workers is the number of concurrent senders draining the arrival
	// queue. It bounds concurrency, not the arrival rate: when all
	// workers are busy, arrivals queue and their eventual latency
	// includes the wait.
	Workers int
	// Send performs one request and reports failure. It is called
	// concurrently from Workers goroutines.
	Send func() error
}

// OpenLoopResult is one run's outcome.
type OpenLoopResult struct {
	// Scheduled is the number of arrivals the schedule produced.
	Scheduled uint64
	// Done is the number of Send calls that completed (with or without
	// error); Errors is how many returned a non-nil error.
	Done, Errors uint64
	// Elapsed spans the first scheduled arrival to the last completion.
	Elapsed time.Duration
	// Hist holds one latency sample per completed request, measured
	// from the request's scheduled arrival instant to its completion —
	// time a request spent queued behind a stalled responder is part of
	// its latency, which is what a user arriving at that instant would
	// have felt. Measuring from the actual send instant instead would
	// be coordinated omission: the generator and the stall would
	// conspire to drop exactly the samples the tail is made of.
	Hist *H
}

// OpenLoop drives cfg.Send at a fixed arrival rate and returns the
// latency distribution. The arrival queue is pre-sized for the whole
// schedule, so the dispatcher never blocks on slow workers: arrivals
// happen on time no matter how the responder behaves, and a stalled
// responder shows up as queueing latency in the histogram instead of as
// silently missing samples.
func OpenLoop(cfg OpenLoopConfig) OpenLoopResult {
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Send == nil {
		return OpenLoopResult{Hist: New()}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	// The queue holds scheduled arrival instants. Capacity n guarantees
	// the dispatcher's send never blocks — the open-loop invariant.
	arrivals := make(chan time.Time, n)
	var errs atomic.Uint64

	start := time.Now()
	go func() {
		defer close(arrivals)
		for i := 0; i < n; i++ {
			sched := start.Add(time.Duration(i) * interval)
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			arrivals <- sched
		}
	}()

	hists := make([]*H, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := New()
			hists[w] = h
			for sched := range arrivals {
				if err := cfg.Send(); err != nil {
					errs.Add(1)
				}
				h.Record(time.Since(sched).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()

	res := OpenLoopResult{
		Scheduled: uint64(n),
		Errors:    errs.Load(),
		Elapsed:   time.Since(start),
		Hist:      New(),
	}
	for _, h := range hists {
		res.Hist.Merge(h)
	}
	res.Done = res.Hist.Count()
	return res
}
