// Package benchfmt is the single definition of the BENCH_*.json cell
// schema — the machine-readable perf trajectory every tool in this repo
// speaks. cmd/tmbench (closed-loop throughput cells) and cmd/tmload
// (open-loop latency cells) write it; cmd/benchdiff reads it (with its
// own loose decode-side struct, so old baselines keep parsing); CI
// uploads it as artifacts.
//
// Every record is stamped with the runner metadata of the machine that
// produced it (RunnerClass from $BENCH_RUNNER_CLASS, GOMAXPROCS,
// NumCPU), because the repo's standing caveat — wall-clock numbers are
// only comparable within a runner class — belongs in the data, not in
// prose next to it. benchdiff downgrades any cross-runner-class
// comparison to advisory.
package benchfmt

import (
	"encoding/json"
	"os"
	"runtime"

	"pcltm/stm"
)

// RunnerClassEnv names the environment variable CI sets to its runner
// label; unset means an uncontrolled local machine.
const RunnerClassEnv = "BENCH_RUNNER_CLASS"

// Record is one measurement cell. Fields added over the trajectory's
// life are omitempty, so baselines written before a schema change stay
// cell-compatible with candidates written after it.
type Record struct {
	Engine  string `json:"engine"`
	Pattern string `json:"pattern"`
	Workers int    `json:"workers"`
	// Values is the payload kind dimension ("int", "string", "struct",
	// "any"); cmd/benchdiff treats an absent field as "int", so baselines
	// written before the schema carried it stay cell-compatible.
	Values     string  `json:"values,omitempty"`
	OpsPerWkr  int     `json:"ops_per_worker,omitempty"`
	Vars       int     `json:"vars,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"tx_per_sec"`
	Commits    uint64  `json:"commits"`
	Aborts     uint64  `json:"aborts"`
	Retries    uint64  `json:"retries"`
	// AllocsPerOp and BytesPerOp are heap allocations per committed
	// transaction over the run (see workload.Result); the alloc cells
	// cmd/benchdiff compares. Steady-state engine work is pooled and
	// contributes zero, so these track harness overhead plus any
	// regression of the zero-alloc contract.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Adaptive is the per-regime breakdown, present only for the
	// adaptive engine.
	Adaptive *stm.AdaptiveStats `json:"adaptive,omitempty"`
	// Structure, Partitions and Skew are the E7 dimensions, present only
	// for structure-mode records ("tmap" on one engine, "store" across
	// Partitions engine instances, "served" through the network front
	// end); cmd/benchdiff folds them into the cell key when present, so
	// raw-TVar baselines stay cell-compatible.
	Structure  string `json:"structure,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	Skew       string `json:"skew,omitempty"`
	// CrossFrac and CrossPath are the E11 dimensions: the percentage of
	// ops that are two-key cross-partition transfers and the commit path
	// they took ("scoped" footprint locking vs the whole-store "sweep").
	// Zero/empty on single-key cells, so pre-E11 baselines stay
	// cell-compatible.
	CrossFrac int    `json:"cross_frac,omitempty"`
	CrossPath string `json:"cross_path,omitempty"`
	// RateRPS is the open-loop target arrival rate of a served cell
	// (cmd/tmload); zero on closed-loop cells. Part of the cell key —
	// latency is only comparable at equal offered load.
	RateRPS float64 `json:"rate_rps,omitempty"`
	// P50NS/P99NS/P999NS are open-loop latency quantiles in nanoseconds,
	// measured from scheduled arrival (coordinated-omission-safe; see
	// internal/hist). Present only on served cells, so throughput-only
	// baselines stay comparable.
	P50NS  int64 `json:"p50_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`
	P999NS int64 `json:"p999_ns,omitempty"`
	// Non2xx counts failed requests of a served cell.
	Non2xx uint64 `json:"non2xx,omitempty"`
	// TransportErrs counts transient connection errors (dial refused,
	// reset, EOF) a served cell's client saw — retried or given up.
	// Separate from Non2xx so a crash-recovery load test's transport
	// noise is not read as server failures.
	TransportErrs uint64 `json:"transport_errs,omitempty"`
	// WalAck and WalBackend are the E10 durability dimensions: the
	// commit log's acknowledgement mode ("sync", "group", "async") and
	// backing ("mem", "file"). Empty on non-durable cells; part of the
	// cell key when present — throughput is only comparable at equal
	// durability contract.
	WalAck     string `json:"wal_ack,omitempty"`
	WalBackend string `json:"wal_backend,omitempty"`
	// WalWindowUS is the group-commit batch window in microseconds —
	// how long the log writer waits to widen a batch before fsyncing.
	// Zero means fsync as soon as the queue drains (the pre-window
	// behaviour), so old E10 baselines stay cell-compatible.
	WalWindowUS int64 `json:"wal_window_us,omitempty"`
	// RunnerClass, GOMAXPROCS and NumCPU identify the machine class that
	// produced the cell. benchdiff refuses a blocking verdict across
	// differing non-empty runner classes.
	RunnerClass string `json:"runner_class,omitempty"`
	GOMAXPROCS  int    `json:"gomaxprocs,omitempty"`
	NumCPU      int    `json:"num_cpu,omitempty"`
}

// RunnerClass reports this process's runner class: $BENCH_RUNNER_CLASS
// when set (CI), else "local".
func RunnerClass() string {
	if c := os.Getenv(RunnerClassEnv); c != "" {
		return c
	}
	return "local"
}

// StampRunner fills r's runner metadata in place.
func StampRunner(r *Record) {
	r.RunnerClass = RunnerClass()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.NumCPU = runtime.NumCPU()
}

// WriteJSON writes records as indented JSON to path ("-" = stdout).
func WriteJSON(path string, records []Record) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
