package certify

import (
	"sort"

	"pcltm/internal/core"
)

// The constraint graph. Real nodes are com positions (serializability)
// or split serialization points (snapshot isolation: R(i)=2i the
// global-read point, W(i)=2i+1 the write point of com position i).
// Virtual nodes — timeline chain nodes sparsifying the quadratic
// real-time/window relation, and per-item all-writers fan-out nodes for
// initial-value reads — carry no transaction but transmit reachability,
// keeping the edge count linear in the history size.
//
// Every edge is a *forced* precedence: it must hold in any serialization
// justifying the condition. A cycle therefore convicts; acyclicity alone
// certifies nothing (that is what candidate replay and the exact small
// search are for).
type graph struct {
	p      *prep
	si     bool
	strict bool
	// nReal is the real-node count; adj may grow with virtual nodes.
	nReal int
	adj   [][]int32
	edges int
	seen  map[uint64]struct{}
	// itemFans memoizes the per-item writer fan chains.
	itemFans map[int32]*itemFan
}

// rNode/wNode map a com position to the node carrying its reads /
// writes under the current mode.
func (g *graph) rNode(ci int32) int32 {
	if g.si {
		return 2 * ci
	}
	return ci
}

func (g *graph) wNode(ci int32) int32 {
	if g.si {
		return 2*ci + 1
	}
	return ci
}

// txnOf maps a real node back to its com position; -1 for virtuals.
func (g *graph) txnOf(node int32) int32 {
	if int(node) >= g.nReal {
		return -1
	}
	if g.si {
		return node >> 1
	}
	return node
}

func (g *graph) addNode() int32 {
	g.adj = append(g.adj, nil)
	return int32(len(g.adj) - 1)
}

// addEdge inserts u→v once; it reports whether the edge was new.
func (g *graph) addEdge(u, v int32) bool {
	if u == v {
		return false
	}
	k := uint64(uint32(u))<<32 | uint64(uint32(v))
	if _, dup := g.seen[k]; dup {
		return false
	}
	g.seen[k] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
	g.edges++
	return true
}

// itemFan holds an item's writer fan chains: pre[i] reaches the write
// points of writers[0..i], suf[i] those of writers[i..m-1]. A reader of
// the initial value precedes every com writer of the item except
// itself; with the chains that is at most two edges per reader — one
// into the prefix before its own slot, one into the suffix after —
// instead of a per-reader fan that goes quadratic when every reader of
// an item also writes it (the hot-counter shape).
type itemFan struct {
	pre, suf []int32
}

// fans builds (memoized) the fan chains over the item's writer list.
// Chain edges flow virtual→writer and virtual→virtual toward smaller /
// larger indices only, so the chains are acyclic by construction.
func (g *graph) fans(item int32) *itemFan {
	if f, ok := g.itemFans[item]; ok {
		return f
	}
	ws := g.p.writers[item]
	m := len(ws)
	f := &itemFan{pre: make([]int32, m), suf: make([]int32, m)}
	for i := 0; i < m; i++ {
		vn := g.addNode()
		g.addEdge(vn, g.wNode(ws[i]))
		if i > 0 {
			g.addEdge(vn, f.pre[i-1])
		}
		f.pre[i] = vn
	}
	for i := m - 1; i >= 0; i-- {
		vn := g.addNode()
		g.addEdge(vn, g.wNode(ws[i]))
		if i < m-1 {
			g.addEdge(vn, f.suf[i+1])
		}
		f.suf[i] = vn
	}
	g.itemFans[item] = f
	return f
}

// buildGraph assembles the base forced edges for one condition:
// reads-from (writer before reader), initial-value reads (reader before
// every writer of the item), intra-transaction R-before-W points (SI),
// and the real-time / window order via a sparse timeline chain.
func buildGraph(p *prep, condition string) *graph {
	g := &graph{
		p:        p,
		si:       condition == SnapshotIsolation,
		strict:   condition == StrictSerializability,
		seen:     make(map[uint64]struct{}),
		itemFans: make(map[int32]*itemFan),
	}
	m := len(p.com)
	g.nReal = m
	if g.si {
		g.nReal = 2 * m
	}
	g.adj = make([][]int32, g.nReal, g.nReal+m+8)

	if g.si {
		for ci := int32(0); ci < int32(m); ci++ {
			g.addEdge(g.rNode(ci), g.wNode(ci))
		}
	}
	for _, r := range p.reads {
		if r.ambiguous {
			continue
		}
		if r.writer >= 0 {
			g.addEdge(g.wNode(r.writer), g.rNode(r.reader))
			continue
		}
		// Initial-value read: the reader precedes every com writer of the
		// item (its own later write excepted — under SI the intra edge
		// already orders it, under SER it lives in the reader's own block).
		// The writer list is in ascending com-position order, so the
		// reader's own slot, if any, is found by binary search and skipped
		// by entering the fan chains on either side of it.
		ws := p.writers[r.item]
		if len(ws) == 0 {
			continue
		}
		f := g.fans(r.item)
		j := sort.Search(len(ws), func(i int) bool { return ws[i] >= r.reader })
		if j < len(ws) && ws[j] == r.reader {
			if j > 0 {
				g.addEdge(g.rNode(r.reader), f.pre[j-1])
			}
			if j+1 < len(ws) {
				g.addEdge(g.rNode(r.reader), f.suf[j+1])
			}
		} else {
			g.addEdge(g.rNode(r.reader), f.pre[len(ws)-1])
		}
	}

	switch {
	case g.strict:
		// Real-time order: committed T1 wholly before T2's begin forces
		// T1 before T2 (internal/consistency precedes). Strict inequality;
		// at equal stamps no precedence.
		var evs []chainEvent
		for ci, ti := range p.com {
			t := &p.h.Txns[ti]
			if t.Status == core.TxCommitted {
				evs = append(evs, chainEvent{key: t.End, src: true, node: int32(ci)})
			}
			evs = append(evs, chainEvent{key: t.Begin, node: int32(ci)})
		}
		g.chain(evs, false)
	case g.si:
		// Window order: T1's interval wholly before T2's window start
		// forces every T1 point before every T2 point (positions are
		// shareable gaps, so End1 ≤ Lo2 — not strictly less — forces).
		// W(1)→R(2) plus the intra edges covers all four point pairs.
		var evs []chainEvent
		for ci, ti := range p.com {
			t := &p.h.Txns[ti]
			evs = append(evs, chainEvent{key: t.End, src: true, node: g.wNode(int32(ci))})
			evs = append(evs, chainEvent{key: t.Lo, node: g.rNode(int32(ci))})
		}
		g.chain(evs, true)
	}
	return g
}

// chainEvent is one endpoint fed to the timeline chain: a source (its
// key is where its precedence begins) or a target (receives an edge from
// every source with a smaller key — or equal key when tieSourceFirst).
type chainEvent struct {
	key  int64
	src  bool
	node int32
}

// chain sparsifies the "every source with key < target key precedes the
// target" biclique into a linear chain of virtual nodes: O(n) edges
// instead of O(n²).
func (g *graph) chain(evs []chainEvent, tieSourceFirst bool) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.src != b.src {
			return a.src == tieSourceFirst
		}
		return a.node < b.node
	})
	cur := int32(-1)
	for _, ev := range evs {
		if ev.src {
			nc := g.addNode()
			if cur >= 0 {
				g.addEdge(cur, nc)
			}
			g.addEdge(ev.node, nc)
			cur = nc
		} else if cur >= 0 {
			g.addEdge(cur, ev.node)
		}
	}
}

// scc computes strongly connected components (iterative Tarjan).
// Components are numbered in reverse topological order: for any edge
// u→v across components, comp[v] < comp[u].
func (g *graph) scc() (comp []int32, ncomp int) {
	n := len(g.adj)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	num := make([]int32, n)
	low := make([]int32, n)
	onstack := make([]bool, n)
	stack := make([]int32, 0, n)
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	var idx int32
	for root := 0; root < n; root++ {
		if num[root] != 0 {
			continue
		}
		idx++
		num[root], low[root] = idx, idx
		stack = append(stack, int32(root))
		onstack[root] = true
		frames = append(frames[:0], frame{int32(root), 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei]
				f.ei++
				if num[w] == 0 {
					idx++
					num[w], low[w] = idx, idx
					stack = append(stack, w)
					onstack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onstack[w] && num[w] < low[f.v] {
					low[f.v] = num[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if pv := frames[len(frames)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = int32(ncomp)
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// cycleWitness reports the transactions on a shortest cycle through the
// lowest node of some nontrivial SCC, or nil if the graph is acyclic.
// Virtual nodes transmit but never appear in the witness; a cycle always
// carries at least two real nodes (virtual-only edges form forward
// chains and fan-outs, which are acyclic by construction).
func (g *graph) cycleWitness(p *prep) []core.TxID {
	comp, ncomp := g.scc()
	size := make([]int32, ncomp)
	for _, c := range comp {
		size[c]++
	}
	start := int32(-1)
	for v := 0; v < len(g.adj); v++ {
		if size[comp[v]] >= 2 {
			start = int32(v)
			break
		}
	}
	if start < 0 {
		return nil
	}
	// BFS within the SCC back to start.
	target := comp[start]
	parent := make([]int32, len(g.adj))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[start] = -1
	queue := []int32{start}
	var closer int32 = -1 // node with an edge back to start
bfs:
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if comp[v] != target {
				continue
			}
			if v == start {
				closer = u
				break bfs
			}
			if parent[v] == -2 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	if closer < 0 {
		return nil // unreachable: a nontrivial SCC always closes
	}
	var path []int32
	for v := closer; v != -1; v = parent[v] {
		path = append(path, v)
	}
	// path is closer→…→start; reverse into cycle order start→…→closer.
	var ids []core.TxID
	for i := len(path) - 1; i >= 0; i-- {
		ci := g.txnOf(path[i])
		if ci < 0 {
			continue
		}
		id := p.h.Txns[p.com[ci]].ID
		if len(ids) == 0 || ids[len(ids)-1] != id {
			ids = append(ids, id)
		}
	}
	return ids
}

// reachCap bounds the condensation size for which full transitive
// closure is materialized (bitset rows: reachCap²/8 bytes ≈ 32 MB).
const reachCap = 16384

// reachability answers "is there a forced path u→v" for the inference
// step: exact bitset closure over the condensation when it fits, else a
// sound partial fallback from interval order alone.
type reachability struct {
	g     *graph
	comp  []int32
	rows  [][]uint64 // nil beyond reachCap
	words int
}

// newReachability assumes the graph is acyclic (cycleWitness ran first).
func newReachability(g *graph) *reachability {
	comp, ncomp := g.scc()
	r := &reachability{g: g, comp: comp}
	if ncomp > reachCap {
		return r
	}
	r.words = (ncomp + 63) / 64
	backing := make([]uint64, ncomp*r.words)
	r.rows = make([][]uint64, ncomp)
	for c := 0; c < ncomp; c++ {
		r.rows[c] = backing[c*r.words : (c+1)*r.words]
	}
	// comp ids are reverse-topological: successors have smaller ids, so
	// ascending order processes sinks first and successor rows are final.
	nodesByComp := make([][]int32, ncomp)
	for v := range g.adj {
		nodesByComp[comp[v]] = append(nodesByComp[comp[v]], int32(v))
	}
	for c := 0; c < ncomp; c++ {
		row := r.rows[c]
		for _, u := range nodesByComp[c] {
			for _, v := range g.adj[u] {
				cv := comp[v]
				if int(cv) == c {
					continue
				}
				row[cv>>6] |= 1 << (uint(cv) & 63)
				for w, bits := range r.rows[cv] {
					row[w] |= bits
				}
			}
		}
	}
	return r
}

// reaches reports a forced path from real node u to real node v. With
// closure rows it is exact; otherwise it falls back to the interval
// order (a subset of the graph's edges, hence still sound).
func (r *reachability) reaches(u, v int32) bool {
	if r.rows != nil {
		cu, cv := r.comp[u], r.comp[v]
		if cu == cv {
			return false
		}
		return r.rows[cu][cv>>6]&(1<<(uint(cv)&63)) != 0
	}
	g := r.g
	tu, tv := g.txnOf(u), g.txnOf(v)
	if tu < 0 || tv < 0 {
		return false
	}
	a, b := &g.p.h.Txns[g.p.com[tu]], &g.p.h.Txns[g.p.com[tv]]
	if g.si {
		if tu == tv {
			return u&1 == 0 && v&1 == 1 // R before own W
		}
		return a.End <= b.Lo
	}
	if !g.strict {
		return false
	}
	return a.Status == core.TxCommitted && a.End < b.Begin
}

// inferBudget caps the writer×read pairs the saturation loop may visit,
// mirroring the exhaustive checkers' node budget in spirit.
const inferBudget = 50_000_000

// maxSatRounds caps saturation rounds; each round recomputes SCCs and
// reachability, so convergence is typically immediate.
const maxSatRounds = 8

type satResult struct {
	rounds   int
	complete bool
	witness  []core.TxID
}

// saturate alternates cycle detection with anti-dependency inference to
// fixpoint: for a read of x from W observed by T, any other com writer
// W′ of x must be ordered outside the W…T span — if W′ is forced after W
// it is forced after T, and if forced before T it is forced before W.
func saturate(g *graph, p *prep, condition string) satResult {
	res := satResult{complete: true}
	budget := inferBudget
	for {
		if w := g.cycleWitness(p); w != nil {
			res.witness = w
			return res
		}
		if res.rounds >= maxSatRounds {
			res.complete = false
			return res
		}
		if !res.complete {
			return res
		}
		rc := newReachability(g)
		added := 0
		for _, r := range p.reads {
			if r.ambiguous || r.writer < 0 {
				continue
			}
			ws := p.writers[r.item]
			budget -= len(ws)
			if budget < 0 {
				res.complete = false
				break
			}
			wN, rN := g.wNode(r.writer), g.rNode(r.reader)
			for _, w2 := range ws {
				if w2 == r.writer || w2 == r.reader {
					continue
				}
				w2N := g.wNode(w2)
				if rc.reaches(wN, w2N) {
					if g.addEdge(rN, w2N) {
						added++
					}
				} else if rc.reaches(w2N, rN) {
					if g.addEdge(w2N, wN) {
						added++
					}
				}
			}
		}
		if added == 0 && res.complete {
			return res
		}
		res.rounds++
	}
}

// topoOrder returns the real nodes in a topological order of the full
// graph, ties broken toward commit-stamp order (and R before W under
// SI), or ok=false if a cycle remains.
func (g *graph) topoOrder(p *prep, si bool) (order []int32, ok bool) {
	n := len(g.adj)
	indeg := make([]int32, n)
	for _, vs := range g.adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	// Min-heap keyed by (End stamp, point phase); virtual nodes release
	// with minimal key so they never delay real nodes.
	key := func(v int32) int64 {
		ci := g.txnOf(v)
		if ci < 0 {
			return -1 << 62
		}
		t := &p.h.Txns[p.com[ci]]
		if si {
			return t.End<<1 | int64(v&1)
		}
		return t.End
	}
	heap := make([]int32, 0, n)
	less := func(a, b int32) bool { return key(a) < key(b) }
	push := func(v int32) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() int32 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && less(heap[l], heap[small]) {
				small = l
			}
			if r < last && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for v := int32(0); int(v) < n; v++ {
		if indeg[v] == 0 {
			push(v)
		}
	}
	order = make([]int32, 0, g.nReal)
	seen := 0
	for len(heap) > 0 {
		v := pop()
		seen++
		if int(v) < g.nReal {
			order = append(order, v)
		}
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				push(w)
			}
		}
	}
	return order, seen == n
}
