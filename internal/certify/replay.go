package certify

// Candidate replay: the certifier's positive evidence. A candidate is a
// total order of com transactions (serializability) or of split R/W
// points (snapshot isolation); replaying it against the legality rules —
// a read returns the last same-block write, else the last committed
// write, else the initial value — is an exact check, entirely
// independent of how the candidate was produced. If any candidate
// replays legally the condition holds.
//
// The first candidate is always the commit-stamp order: the recorder's
// End stamps are taken after commit publication, so for engines that
// serialize at commit (validation or locks) this is the serialization
// the implementation enforces, and huge histories certify in one linear
// pass. The second candidate is a topological order of the saturated
// constraint graph, tie-broken toward commit-stamp order.

// replayer tracks the last published value per item with epoch-tagged
// slots so consecutive replays reuse the buffers.
type replayer struct {
	last  []int64
	epoch []uint32
	cur   uint32
	local map[int32]int64
}

func newReplayer(items int) *replayer {
	return &replayer{
		last:  make([]int64, items),
		epoch: make([]uint32, items),
		cur:   0,
		local: make(map[int32]int64),
	}
}

func (r *replayer) reset() {
	r.cur++
	if r.cur == 0 {
		for i := range r.epoch {
			r.epoch[i] = 0
		}
		r.cur = 1
	}
}

func (r *replayer) get(item int32) int64 {
	if r.epoch[item] != r.cur {
		return 0
	}
	return r.last[item]
}

func (r *replayer) set(item int32, v int64) {
	r.last[item] = v
	r.epoch[item] = r.cur
}

// commitStampOrder returns the commit-stamp candidate: com positions in
// End order (how p.com is already sorted); under SI each transaction
// contributes its R point immediately followed by its W point, both
// placed at the transaction's end — inside its window by construction.
func commitStampOrder(p *prep, si bool) []int32 {
	m := len(p.com)
	if !si {
		order := make([]int32, m)
		for i := range order {
			order[i] = int32(i)
		}
		return order
	}
	order := make([]int32, 0, 2*m)
	for i := int32(0); int(i) < m; i++ {
		order = append(order, 2*i, 2*i+1)
	}
	return order
}

// replayCandidate replays one candidate order exactly. For SI the order
// holds point nodes (2i / 2i+1) and the replay additionally verifies
// window feasibility by greedy gap assignment: positions are
// nondecreasing and shareable, so the earliest legal position for each
// point is max(previous, Lo+1), which must not pass End.
func replayCandidate(p *prep, si bool, order []int32) bool {
	rp := newReplayer(len(p.h.Items))
	rp.reset()
	if !si {
		for _, ci := range order {
			t := &p.h.Txns[p.com[ci]]
			clear(rp.local)
			for _, op := range t.Ops {
				if op.Write {
					rp.local[op.Item] = op.Value
					continue
				}
				if want, ok := rp.local[op.Item]; ok {
					if op.Value != want {
						return false
					}
					continue
				}
				if rp.get(op.Item) != op.Value {
					return false
				}
			}
			for item, v := range rp.local {
				rp.set(item, v)
			}
		}
		return true
	}
	gap := int64(-1 << 62)
	for _, node := range order {
		t := &p.h.Txns[p.com[node>>1]]
		lo := t.Lo + 1
		if gap < lo {
			gap = lo
		}
		if gap > t.End {
			return false
		}
		if node&1 == 0 {
			// Global-read point: T_gr checked against the published state.
			for _, op := range t.Ops {
				if !op.Write && op.Global && rp.get(op.Item) != op.Value {
					return false
				}
			}
		} else {
			// Write point: T_w publishes in program order.
			for _, op := range t.Ops {
				if op.Write {
					rp.set(op.Item, op.Value)
				}
			}
		}
	}
	return true
}
