package certify_test

import (
	"testing"

	"pcltm/internal/certify"
	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
	"pcltm/stm"
)

// verdicts runs the certifier on an execution and returns the reports.
func verdicts(t *testing.T, e *core.Execution) map[string]certify.Report {
	t.Helper()
	return certify.All(certify.FromExecution(e))
}

// wantVerdict asserts one condition's verdict.
func wantVerdict(t *testing.T, reps map[string]certify.Report, cond string, want certify.Verdict) {
	t.Helper()
	got := reps[cond]
	if got.Verdict != want {
		t.Errorf("%s: got %s via %q (%s), want %s", cond, got.Verdict, got.Method, got.Reason, want)
	}
}

// agreeWithExhaustive cross-checks every certifier decision against the
// exhaustive checkers on one execution.
func agreeWithExhaustive(t *testing.T, e *core.Execution) {
	t.Helper()
	v := history.FromExecution(e)
	reps := certify.All(certify.FromView(v))
	exact := consistency.CheckAll(v)
	for _, cond := range certify.Conditions() {
		res, ok := exact[cond]
		if !ok || res.Exhausted || reps[cond].Verdict == certify.Unknown {
			continue
		}
		if res.Satisfied != (reps[cond].Verdict == certify.Certified) {
			t.Errorf("%s: exhaustive satisfied=%v, certifier %s via %q",
				cond, res.Satisfied, reps[cond].Verdict, reps[cond].Method)
		}
	}
}

func TestSequentialHistoryCertifies(t *testing.T) {
	e := exectest.New().
		SeqTxn(0, 1, exectest.WV("x", 1), exectest.WV("y", 2)).
		SeqTxn(1, 2, exectest.RV("x", 1), exectest.WV("x", 3)).
		SeqTxn(0, 3, exectest.RV("x", 3), exectest.RV("y", 2)).
		Exec()
	reps := verdicts(t, e)
	for _, cond := range certify.Conditions() {
		wantVerdict(t, reps, cond, certify.Certified)
		if reps[cond].Com != 3 {
			t.Errorf("%s: com=%d, want 3", cond, reps[cond].Com)
		}
	}
	agreeWithExhaustive(t, e)
}

func TestEmptyHistoryCertifies(t *testing.T) {
	reps := verdicts(t, exectest.New().Exec())
	for _, cond := range certify.Conditions() {
		wantVerdict(t, reps, cond, certify.Certified)
	}
}

func TestUnjustifiableReadViolatesEverything(t *testing.T) {
	// T1 aborts after writing x=7; T2 commits having read the aborted 7.
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 7).Abort(0, 1)
	b.Begin(1, 2).Read(1, 2, "x", 7).Commit(1, 2)
	e := b.Exec()
	reps := verdicts(t, e)
	for _, cond := range certify.Conditions() {
		wantVerdict(t, reps, cond, certify.Violated)
		if len(reps[cond].Witness) == 0 {
			t.Errorf("%s: violation without witness", cond)
		}
	}
	agreeWithExhaustive(t, e)
}

func TestStaleReadConvictedStrictAndSIOnly(t *testing.T) {
	// T1 commits x=1; T2 begins strictly after T1 ended yet reads the
	// initial 0. Plain serializability may reorder T2 first; strict
	// serializability and SI may not (real-time / window order).
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 1))
	b.SeqTxn(1, 2, exectest.RV("x", 0), exectest.WV("y", 2))
	e := b.Exec()
	reps := verdicts(t, e)
	wantVerdict(t, reps, certify.Serializability, certify.Certified)
	wantVerdict(t, reps, certify.StrictSerializability, certify.Violated)
	wantVerdict(t, reps, certify.SnapshotIsolation, certify.Violated)
	agreeWithExhaustive(t, e)

	strict := reps[certify.StrictSerializability]
	if len(strict.Witness) < 2 {
		t.Errorf("strict witness %v, want the T1/T2 cycle", strict.Witness)
	}
}

func TestReadYourOwnWritesViolation(t *testing.T) {
	// T1 writes x=5 then reads x:3. The SER family validates local reads
	// inside the block; the paper's weak SI leaves local reads
	// unconstrained (Definition 3.1), so SI certifies.
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 5), exectest.RV("x", 3), exectest.WV("x", 3))
	e := b.Exec()
	reps := verdicts(t, e)
	wantVerdict(t, reps, certify.Serializability, certify.Violated)
	wantVerdict(t, reps, certify.StrictSerializability, certify.Violated)
	wantVerdict(t, reps, certify.SnapshotIsolation, certify.Certified)
	agreeWithExhaustive(t, e)
}

func TestWriteSkewSIOnly(t *testing.T) {
	// The classic write skew: overlapping T1 (reads x:0, writes y) and
	// T2 (reads y:0, writes x). Not serializable; allowed by SI.
	b := exectest.New()
	b.Begin(0, 1).Begin(1, 2)
	b.Read(0, 1, "x", 0).Read(1, 2, "y", 0)
	b.Write(0, 1, "y", 1).Write(1, 2, "x", 2)
	b.Commit(0, 1).Commit(1, 2)
	e := b.Exec()
	reps := verdicts(t, e)
	wantVerdict(t, reps, certify.Serializability, certify.Violated)
	wantVerdict(t, reps, certify.StrictSerializability, certify.Violated)
	wantVerdict(t, reps, certify.SnapshotIsolation, certify.Certified)
	agreeWithExhaustive(t, e)
}

func TestCommitPendingForcedIn(t *testing.T) {
	// T1 is commit-pending with x=7 published to T2's read: the read
	// forces T1 into com and both certify.
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 7).CommitInv(0, 1)
	b.Begin(1, 2).Read(1, 2, "x", 7).Commit(1, 2)
	e := b.Exec()
	reps := verdicts(t, e)
	for _, cond := range certify.Conditions() {
		wantVerdict(t, reps, cond, certify.Certified)
		if reps[cond].Com != 2 {
			t.Errorf("%s: com=%d, want 2 (pending writer forced in)", cond, reps[cond].Com)
		}
	}
	agreeWithExhaustive(t, e)
}

func TestCommitPendingUnreadExcluded(t *testing.T) {
	// A commit-pending transaction nobody reads from stays out of com.
	b := exectest.New()
	b.Begin(0, 1).Write(0, 1, "x", 9).CommitInv(0, 1)
	b.Begin(1, 2).Read(1, 2, "x", 0).Commit(1, 2)
	e := b.Exec()
	reps := verdicts(t, e)
	for _, cond := range certify.Conditions() {
		wantVerdict(t, reps, cond, certify.Certified)
		if reps[cond].Com != 1 {
			t.Errorf("%s: com=%d, want 1 (unread pending excluded)", cond, reps[cond].Com)
		}
	}
	agreeWithExhaustive(t, e)
}

func TestInferredAntiDependencyCycle(t *testing.T) {
	// Three committed transactions needing the inference step, serial in
	// real time: W1 writes x=1; W2 overwrites x=2 after W1; R reads x:1
	// after W2 committed. Strictly: W1 < W2 (RT), W2 < R (RT), and R
	// reading x from W1 forces R < W2 — a cycle only the anti-dependency
	// rule sees.
	b := exectest.New()
	b.SeqTxn(0, 1, exectest.WV("x", 1))
	b.SeqTxn(0, 2, exectest.WV("x", 2))
	b.SeqTxn(1, 3, exectest.RV("x", 1), exectest.WV("y", 3))
	e := b.Exec()
	reps := verdicts(t, e)
	wantVerdict(t, reps, certify.Serializability, certify.Certified)
	wantVerdict(t, reps, certify.StrictSerializability, certify.Violated)
	wantVerdict(t, reps, certify.SnapshotIsolation, certify.Violated)
	agreeWithExhaustive(t, e)
}

func TestStreamingBuilderMatchesViewPath(t *testing.T) {
	// Drive a real engine under a recorder and certify the same run via
	// both input paths: the streaming Builder and the stamped-execution
	// conversion. Verdicts must match (and certify: these engines are
	// opaque).
	rec := stm.NewRecorder()
	eng := stm.NewEngine(stm.EngineGlobalLock, stm.WithRecorder(rec))
	x := stm.NewTVar[int64](0)
	y := stm.NewTVar[int64](0)
	for i := int64(1); i <= 20; i++ {
		_ = eng.Atomically(func(tx *stm.Tx) error {
			stm.Get(tx, x)
			stm.Set(tx, x, i)
			stm.Set(tx, y, i*100)
			return nil
		})
	}
	attempts := rec.Take()

	bld := certify.NewBuilder()
	bld.Add(attempts)
	if bld.Len() != 20 {
		t.Fatalf("builder holds %d attempts, want 20", bld.Len())
	}
	h, err := bld.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	streamed := certify.All(h)
	for _, cond := range certify.Conditions() {
		if streamed[cond].Verdict != certify.Certified {
			t.Errorf("streamed %s: %s via %q (%s)", cond,
				streamed[cond].Verdict, streamed[cond].Method, streamed[cond].Reason)
		}
	}
}

func TestBuilderInternsStructuredValues(t *testing.T) {
	rec := stm.NewRecorder()
	eng := stm.NewEngine(stm.EngineGlobalLock, stm.WithRecorder(rec))
	type node struct{ v int }
	p1, p2 := &node{1}, &node{2}
	tv := stm.NewTVar[*node](nil)
	_ = eng.Atomically(func(tx *stm.Tx) error {
		stm.Get(tx, tv) // nil: interns to the initial value
		stm.Set(tx, tv, p1)
		return nil
	})
	_ = eng.Atomically(func(tx *stm.Tx) error {
		stm.Get(tx, tv) // p1: must intern equal to the write above
		stm.Set(tx, tv, p2)
		return nil
	})
	bld := certify.NewBuilder()
	bld.Add(rec.Take())
	h, err := bld.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	reps := certify.All(h)
	for _, cond := range certify.Conditions() {
		if reps[cond].Verdict != certify.Certified {
			t.Errorf("%s: %s (%s)", cond, reps[cond].Verdict, reps[cond].Reason)
		}
	}
}

func TestCheckSingleCondition(t *testing.T) {
	e := exectest.New().SeqTxn(0, 1, exectest.WV("x", 1)).Exec()
	rep := certify.Check(certify.FromExecution(e), certify.StrictSerializability)
	if rep.Verdict != certify.Certified {
		t.Fatalf("got %s, want certified", rep.Verdict)
	}
	if rep.Condition != certify.StrictSerializability {
		t.Fatalf("condition %q", rep.Condition)
	}
	if bad := certify.Check(certify.FromExecution(e), "nonsense"); bad.Verdict != certify.Unknown {
		t.Fatalf("unknown condition must yield Unknown, got %s", bad.Verdict)
	}
}
