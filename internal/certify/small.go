package certify

import (
	"pcltm/internal/core"
)

// The exact fallback: on small histories with unambiguous reads-from,
// the remaining freedom after the forced edges is exactly one binary
// choice per (read, other-writer) pair — the classic polygraph: for T
// reading x from W, every other com writer W′ of x sits either before W
// or after T. A depth-first search over those choices with an
// incrementally maintained transitive closure decides the condition
// outright, so on conformance-episode-sized inputs the certifier never
// answers Unknown and can be compared verdict-for-verdict against the
// exhaustive checkers.

// smallMaxCom bounds the com size the exact search accepts; SI doubles
// the node count, and both fit single-word bitmasks.
const smallMaxCom = 12

// smallBudget bounds search nodes.
const smallBudget = 2_000_000

type smallVerdict int

const (
	smallSAT smallVerdict = iota
	smallUNSAT
	smallAbort
)

type smallChoice struct {
	// a and b are the two admissible orientations (edges), as node pairs.
	a, b [2]int32
}

// smallState maintains the transitive closure of ≤64 nodes as one
// bitmask per node (closure, not reflexive).
type smallState struct {
	n     int
	reach []uint64
}

// implied reports whether u→v already holds in every linearization.
func (s *smallState) implied(e [2]int32) bool {
	return s.reach[e[0]]&(1<<uint(e[1])) != 0
}

// add inserts u→v, updating the closure; false if it closes a cycle
// (the state is unchanged in that case).
func (s *smallState) add(e [2]int32) bool {
	u, v := e[0], e[1]
	if u == v || s.reach[v]&(1<<uint(u)) != 0 {
		return false
	}
	grow := s.reach[v] | 1<<uint(v)
	s.reach[u] |= grow
	for w := 0; w < s.n; w++ {
		if s.reach[w]&(1<<uint(u)) != 0 {
			s.reach[w] |= grow
		}
	}
	return true
}

// solveSmall decides the condition exactly over the com set. Callers
// gate on len(p.com) ≤ smallMaxCom and !p.ambiguous.
func solveSmall(p *prep, condition string) smallVerdict {
	si := condition == SnapshotIsolation
	strict := condition == StrictSerializability
	m := len(p.com)
	n := m
	rNode := func(ci int32) int32 { return ci }
	wNode := func(ci int32) int32 { return ci }
	if si {
		n = 2 * m
		rNode = func(ci int32) int32 { return 2 * ci }
		wNode = func(ci int32) int32 { return 2*ci + 1 }
	}

	st := &smallState{n: n, reach: make([]uint64, n)}
	addBase := func(u, v int32) bool {
		if u == v {
			return true
		}
		if st.implied([2]int32{u, v}) {
			return true
		}
		return st.add([2]int32{u, v})
	}

	// Base forced edges, direct (no virtual nodes at this size).
	if si {
		for ci := int32(0); int(ci) < m; ci++ {
			if !addBase(rNode(ci), wNode(ci)) {
				return smallUNSAT
			}
		}
	}
	for _, r := range p.reads {
		if r.writer >= 0 {
			if !addBase(wNode(r.writer), rNode(r.reader)) {
				return smallUNSAT
			}
			continue
		}
		for _, w := range p.writers[r.item] {
			if w != r.reader && !addBase(rNode(r.reader), wNode(w)) {
				return smallUNSAT
			}
		}
	}
	for i := int32(0); int(i) < m; i++ {
		a := &p.h.Txns[p.com[i]]
		for j := int32(0); int(j) < m; j++ {
			if i == j {
				continue
			}
			b := &p.h.Txns[p.com[j]]
			switch {
			case strict && a.Status == core.TxCommitted && a.End < b.Begin:
				if !addBase(i, j) {
					return smallUNSAT
				}
			case si && a.End <= b.Lo:
				if !addBase(wNode(i), rNode(j)) {
					return smallUNSAT
				}
			}
		}
	}

	var choices []smallChoice
	for _, r := range p.reads {
		if r.writer < 0 {
			continue
		}
		for _, w2 := range p.writers[r.item] {
			if w2 == r.writer || w2 == r.reader {
				continue
			}
			choices = append(choices, smallChoice{
				a: [2]int32{wNode(w2), wNode(r.writer)},
				b: [2]int32{rNode(r.reader), wNode(w2)},
			})
		}
	}

	budget := smallBudget
	snapshot := make([]uint64, n*(len(choices)+1))
	var dfs func(i int) smallVerdict
	dfs = func(i int) smallVerdict {
		budget--
		if budget < 0 {
			return smallAbort
		}
		if i == len(choices) {
			return smallSAT
		}
		c := choices[i]
		if st.implied(c.a) || st.implied(c.b) {
			return dfs(i + 1)
		}
		saved := snapshot[i*n : (i+1)*n]
		copy(saved, st.reach)
		if st.add(c.a) {
			if v := dfs(i + 1); v != smallUNSAT {
				return v
			}
			copy(st.reach, saved)
		}
		if st.add(c.b) {
			if v := dfs(i + 1); v != smallUNSAT {
				return v
			}
			copy(st.reach, saved)
		}
		return smallUNSAT
	}
	return dfs(0)
}
