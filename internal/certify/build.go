package certify

import (
	"fmt"
	"reflect"
	"sort"

	"pcltm/internal/core"
	"pcltm/internal/history"
	"pcltm/stm"
)

// FromView converts the exhaustive checkers' input into a certifiable
// history, preserving exactly the coordinates their semantics use:
// BeginIndex for real-time precedence, IntervalLo/IntervalHi for SI
// windows.
func FromView(v *history.View) *History {
	h := &History{}
	idx := make(map[core.Item]int32)
	intern := func(x core.Item) int32 {
		if i, ok := idx[x]; ok {
			return i
		}
		i := int32(len(h.Items))
		idx[x] = i
		h.Items = append(h.Items, string(x))
		return i
	}
	for _, t := range v.Txns {
		nt := Txn{
			ID: t.ID, Proc: int(t.Proc), Status: t.Status,
			Lo: int64(t.IntervalLo), Begin: int64(t.BeginIndex), End: int64(t.IntervalHi),
			Ops: make([]Op, 0, len(t.Ops)),
		}
		for _, op := range t.Ops {
			nt.Ops = append(nt.Ops, Op{
				Write:  op.Kind == core.OpWrite,
				Global: op.Global,
				Item:   intern(op.Item),
				Value:  int64(op.Value),
			})
		}
		h.Txns = append(h.Txns, nt)
	}
	return h
}

// FromExecution certifies over a stamped execution (trace files, the
// conformance harness).
func FromExecution(e *core.Execution) *History {
	return FromView(history.FromExecution(e))
}

// Builder accumulates recorder attempt logs directly into a History —
// the streaming path for server-scale histories, skipping the
// core.Execution materialization (three events per op) the small tier
// uses. Attempts may come from any number of engines as long as they
// share one stm.Recorder: the shared stamp counter is what makes their
// begin/op/end tickets mutually ordered, so a partitioned store's
// per-partition engines merge into one certifiable history.
//
// Value handling mirrors conformance.StampInterned: integers pass
// through, nil-ish values (typed nil chain links, every link TVar's
// initial value) map to the initial value 0, and every other distinct
// comparable value is interned to a unique negative integer.
type Builder struct {
	txns     []Txn
	items    map[uint64]int32
	names    []string
	interned map[any]int64
	nextNeg  int64
	written  map[int32]bool
	err      error
}

// NewBuilder returns an empty streaming builder.
func NewBuilder() *Builder {
	return &Builder{
		items:    make(map[uint64]int32),
		interned: make(map[any]int64),
		written:  make(map[int32]bool),
	}
}

// Add appends a batch of drained attempts; call it after each
// Recorder.Take. The first conversion error sticks and fails Finish.
func (b *Builder) Add(attempts []*stm.AttemptRecord) {
	for _, a := range attempts {
		b.add(a)
	}
}

func (b *Builder) add(a *stm.AttemptRecord) {
	status := core.TxAborted
	if a.Outcome == stm.AttemptCommitted {
		status = core.TxCommitted
	}
	t := Txn{
		Proc: a.Proc, Status: status,
		Lo: int64(a.BeginSeq), Begin: int64(a.BeginSeq), End: int64(a.EndSeq),
		Ops: make([]Op, 0, len(a.Ops)),
	}
	clear(b.written)
	for _, op := range a.Ops {
		item := b.internItem(op.TVar)
		v, err := b.internValue(op.Value)
		if err != nil && b.err == nil {
			b.err = err
		}
		t.Ops = append(t.Ops, Op{
			Write:  op.Write,
			Global: !op.Write && !b.written[item],
			Item:   item,
			Value:  v,
		})
		if op.Write {
			b.written[item] = true
		}
	}
	b.txns = append(b.txns, t)
}

func (b *Builder) internItem(tvar uint64) int32 {
	if i, ok := b.items[tvar]; ok {
		return i
	}
	i := int32(len(b.names))
	b.items[tvar] = i
	b.names = append(b.names, fmt.Sprintf("t%d", tvar))
	return i
}

func (b *Builder) internValue(v any) (int64, error) {
	switch x := v.(type) {
	case nil:
		return 0, nil
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func, reflect.Slice, reflect.Interface:
		if rv.IsNil() {
			return 0, nil
		}
	}
	if rv.IsZero() {
		// Zero values of non-pointer types (a bool stop flag, an int64
		// queue size) are how control TVars start life; like typed nils
		// they must intern to the initial value 0, mirroring
		// conformance.StampInterned.
		return 0, nil
	}
	if !reflect.TypeOf(v).Comparable() {
		return 0, fmt.Errorf("certify: recorded value of type %T is not comparable; cannot intern", v)
	}
	if id, ok := b.interned[v]; ok {
		return id, nil
	}
	b.nextNeg--
	b.interned[v] = b.nextNeg
	return b.nextNeg, nil
}

// Len reports the number of attempts added so far.
func (b *Builder) Len() int { return len(b.txns) }

// Finish freezes the history: transactions sorted by begin stamp with
// IDs assigned in that order, matching conformance.Stamp's convention.
func (b *Builder) Finish() (*History, error) {
	if b.err != nil {
		return nil, b.err
	}
	sort.SliceStable(b.txns, func(i, j int) bool { return b.txns[i].Begin < b.txns[j].Begin })
	for i := range b.txns {
		b.txns[i].ID = core.TxID(i + 1)
	}
	return &History{Txns: b.txns, Items: b.names}, nil
}
