// Package certify is the repo's second checker tier: a polynomial-time
// certifier for serializability, strict serializability and the paper's
// weak snapshot isolation over recorded histories far beyond the
// exhaustive checkers' ~10-transaction ceiling (internal/consistency
// decides by permutation search; this package decides by constraint
// saturation, following the commit-order-saturation idea of Biswas &
// Enea, "On the Complexity of Checking Transactional Consistency").
//
// Checking SER/SI is NP-complete in general, so the certifier is
// three-valued. Its two decisive verdicts are both backed by evidence:
//
//   - Violated comes only from constraints every justifying serialization
//     must satisfy — an unjustifiable read, a broken read-your-own-writes
//     sequence, or a cycle of forced precedence edges (reads-from,
//     real-time order, inferred anti-dependencies). The witness is the
//     transaction subset on the offending cycle.
//   - Certified comes only from an explicit justification: a candidate
//     serialization (commit-stamp order, or a topological order of the
//     saturated constraint graph) that replays legally, or — on small
//     histories — an exact search over the remaining ordering choices.
//
// Everything else is Unknown, with the reason recorded. In practice the
// engines' histories certify via the commit-stamp candidate (their
// commit publication order is a legal serialization), and planted bugs
// are convicted by the forced-edge cycle check, so Unknown is the rare
// honest answer, not the common case.
//
// The certifier deliberately mirrors the exhaustive checkers' semantics
// — com(α) choice over commit-pending transactions, legality of blocks,
// real-time precedence only from committed transactions, SI's split
// global-read/write points confined to the transaction's interval with
// shareable positions — so that on small histories the two tiers can be
// compared verdict-for-verdict (the conformance differential test).
package certify

import (
	"fmt"
	"time"

	"pcltm/internal/core"
)

// Condition names understood by Check; they match the exhaustive
// checkers' names (internal/consistency) so reports line up.
const (
	Serializability       = "serializability"
	StrictSerializability = "strict-serializability"
	SnapshotIsolation     = "snapshot-isolation"
)

// Conditions returns the conditions the certifier decides, in report
// order.
func Conditions() []string {
	return []string{Serializability, StrictSerializability, SnapshotIsolation}
}

// Verdict is the three-valued outcome of one certification.
type Verdict int

const (
	// Unknown: the certifier could neither exhibit a justifying
	// serialization nor a forced contradiction within budget.
	Unknown Verdict = iota
	// Certified: a justifying serialization was exhibited and replayed
	// legally.
	Certified
	// Violated: a constraint every justification must satisfy is
	// contradictory; Witness carries the offending transactions.
	Violated
)

var verdictNames = [...]string{"unknown", "certified", "violated"}

// String returns the verdict name.
func (v Verdict) String() string {
	if v < 0 || int(v) >= len(verdictNames) {
		return "invalid"
	}
	return verdictNames[v]
}

// Op is one completed operation of a transaction, with the item interned
// to an index into History.Items.
type Op struct {
	// Write distinguishes writes from reads.
	Write bool
	// Global marks reads not preceded by a same-transaction write to the
	// same item (the fragment SI constrains). Builders compute it.
	Global bool
	// Item indexes History.Items.
	Item int32
	// Value is the value written or observed. 0 is the initial value of
	// every item (core.InitialValue).
	Value int64
}

// Txn is one transaction of a certifiable history.
type Txn struct {
	// ID identifies the transaction (witness vocabulary).
	ID core.TxID
	// Proc is the recording process, informational only — none of the
	// certified conditions constrain per-process order.
	Proc int
	// Status is the transaction's fate; only committed and commit-pending
	// transactions can enter com(α).
	Status core.TxStatus
	// Lo, Begin and End are stamp positions: the first step, the begin
	// invocation, and the last step of the transaction. Real-time
	// precedence uses End < Begin; SI windows span (Lo, End]. For
	// recorder-fed histories all three collapse to BeginSeq/EndSeq.
	Lo, Begin, End int64
	// Ops are the completed operations in program order.
	Ops []Op
}

// History is the certifier's input: a whole recorded run.
type History struct {
	// Txns holds every transaction, in begin order.
	Txns []Txn
	// Items names the interned items, for witnesses and debugging.
	Items []string
}

// Report is the outcome of certifying one condition over one history.
type Report struct {
	// Condition is the condition checked.
	Condition string
	// Verdict is the three-valued outcome.
	Verdict Verdict
	// Txns counts all transactions in the history; Com counts the
	// transactions certified over (committed plus forced-in
	// commit-pending).
	Txns, Com int
	// Method says how the verdict was reached ("commit-order replay",
	// "forced-edge cycle", "exact small-history search", ...).
	Method string
	// Reason elaborates Violated and Unknown verdicts.
	Reason string
	// Witness lists the transactions of the forced contradiction
	// (violations only).
	Witness []core.TxID
	// Rounds and Edges summarize the saturation work done.
	Rounds, Edges int
	// Elapsed is the wall-clock cost of this certification.
	Elapsed time.Duration
}

// String renders a one-line summary.
func (r Report) String() string {
	s := fmt.Sprintf("%s: %s (%d/%d txns, %s", r.Condition, r.Verdict, r.Com, r.Txns, r.Method)
	if r.Reason != "" {
		s += ": " + r.Reason
	}
	return s + ")"
}

// Check certifies one condition over the history.
func Check(h *History, condition string) Report {
	return decide(h, prepare(h), condition)
}

// All certifies every condition, sharing the history preparation.
func All(h *History) map[string]Report {
	p := prepare(h)
	out := make(map[string]Report, 3)
	for _, c := range Conditions() {
		out[c] = decide(h, p, c)
	}
	return out
}

// decide runs the certification pipeline for one condition:
// prechecks → base constraint graph → cycle check → commit-stamp
// candidate → saturation (inferred anti-dependency edges) → saturated
// topological candidate → exact search on small histories → Unknown.
func decide(h *History, p *prep, condition string) Report {
	start := time.Now()
	rep := Report{Condition: condition, Txns: len(h.Txns), Com: len(p.com)}
	finish := func(r Report) Report {
		r.Elapsed = time.Since(start)
		return r
	}

	si := condition == SnapshotIsolation
	strict := condition == StrictSerializability
	if !si && !strict && condition != Serializability {
		rep.Reason = fmt.Sprintf("unknown condition %q", condition)
		return finish(rep)
	}

	// Prechecks: constraints that hold in every com choice and every
	// serialization, so their failure is a violation outright.
	if p.unjust != nil {
		rep.Verdict = Violated
		rep.Method = "unjustifiable read"
		rep.Reason = p.unjust.reason
		rep.Witness = p.unjust.txns
		return finish(rep)
	}
	// SI places no constraint on local reads (Definition 3.1); the
	// SER-family validates them inside the transaction's block.
	if !si && p.internal != nil {
		rep.Verdict = Violated
		rep.Method = "read-your-own-writes"
		rep.Reason = p.internal.reason
		rep.Witness = p.internal.txns
		return finish(rep)
	}
	if len(p.com) == 0 {
		rep.Verdict = Certified
		rep.Method = "empty com"
		return finish(rep)
	}

	g := buildGraph(p, condition)
	rep.Edges = g.edges
	if w := g.cycleWitness(p); w != nil {
		rep.Verdict = Violated
		rep.Method = "forced-edge cycle"
		rep.Reason = "cycle of reads-from / real-time / window constraints"
		rep.Witness = w
		return finish(rep)
	}

	// Fast path: the commit-stamp order (the order commit publication
	// completed in) replayed as a serialization. For the production
	// engines this is the serialization the implementation actually
	// enforces, so ≥100k-transaction histories certify here without ever
	// computing reachability.
	if replayCandidate(p, si, commitStampOrder(p, si)) {
		rep.Verdict = Certified
		rep.Method = "commit-order replay"
		return finish(rep)
	}

	// Saturate: infer anti-dependency edges forced by reachability, then
	// re-check for cycles, to fixpoint or budget.
	sat := saturate(g, p, condition)
	rep.Rounds, rep.Edges = sat.rounds, g.edges
	if sat.witness != nil {
		rep.Verdict = Violated
		rep.Method = "saturated-edge cycle"
		rep.Reason = "cycle after anti-dependency inference"
		rep.Witness = sat.witness
		return finish(rep)
	}

	// Second candidate: a topological order of the saturated graph,
	// tie-broken toward commit-stamp order.
	if order, ok := g.topoOrder(p, si); ok && replayCandidate(p, si, order) {
		rep.Verdict = Certified
		rep.Method = "saturated-order replay"
		return finish(rep)
	}

	// Exact fallback: small histories with unambiguous reads-from are
	// decided outright, so the certifier agrees verdict-for-verdict with
	// the exhaustive checkers on conformance-episode-sized inputs.
	if len(p.com) <= smallMaxCom && !p.ambiguous {
		switch solveSmall(p, condition) {
		case smallSAT:
			rep.Verdict = Certified
			rep.Method = "exact small-history search"
			return finish(rep)
		case smallUNSAT:
			rep.Verdict = Violated
			rep.Method = "exact small-history search"
			rep.Reason = "no legal serialization exists"
			rep.Witness = comIDs(p)
			return finish(rep)
		}
		rep.Reason = "exact search budget exhausted"
		return finish(rep)
	}

	switch {
	case p.ambiguous:
		rep.Reason = fmt.Sprintf("ambiguous reads-from (%d reads) and candidate replays failed", p.ambiguousReads)
	case !sat.complete:
		rep.Reason = "saturation budget exhausted and candidate replays failed"
	default:
		rep.Reason = "candidate replays failed on large history"
	}
	return finish(rep)
}

// comIDs lists the com transactions' IDs.
func comIDs(p *prep) []core.TxID {
	ids := make([]core.TxID, len(p.com))
	for i, ti := range p.com {
		ids[i] = p.h.Txns[ti].ID
	}
	return ids
}
