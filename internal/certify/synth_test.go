package certify

import (
	"testing"
	"time"
)

// The synthetic E9 workload must certify under every condition — it is
// honest by construction — at bench-relevant sizes, quickly.
func TestSynthCertifies(t *testing.T) {
	for _, n := range []int{10, 1000, 20000} {
		h := Synth(n, 32, 8, 1)
		if len(h.Txns) != n {
			t.Fatalf("Synth(%d): %d txns", n, len(h.Txns))
		}
		start := time.Now()
		for cond, rep := range All(h) {
			if rep.Verdict != Certified {
				t.Errorf("n=%d %s: %s", n, cond, rep)
			}
		}
		if el := time.Since(start); el > 20*time.Second {
			t.Errorf("n=%d: certification took %v", n, el)
		}
	}
}

// Synth is deterministic: the same parameters give the same history.
func TestSynthDeterministic(t *testing.T) {
	a, b := Synth(500, 16, 4, 7), Synth(500, 16, 4, 7)
	for i := range a.Txns {
		x, y := a.Txns[i], b.Txns[i]
		if x.ID != y.ID || x.Begin != y.Begin || x.End != y.End ||
			x.Ops[0].Item != y.Ops[0].Item || x.Ops[1].Value != y.Ops[1].Value {
			t.Fatalf("txn %d differs between identical Synth calls", i)
		}
	}
}
