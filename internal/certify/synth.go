package certify

import (
	"fmt"
	"math/rand"

	"pcltm/internal/core"
)

// Synth generates a deterministic honest history of n committed
// transactions over m items with overlapping intervals — the workload
// behind the E9 certification-cost experiment (cmd/tmbench -mode
// certify and BenchmarkE9Certify).
//
// Transaction k is a read-modify-write of a seeded-random item at
// serialization position k: it reads the item's current counter value
// and writes value+1, so every written value is unique per item and
// every read is justified by the generation order. End stamps increase
// with k and each interval's begin is jittered backwards up to `span`
// positions, so up to ~span transactions are concurrently open at any
// stamp — the overlap structure a loaded server produces, not a serial
// chain. The history certifies under every condition by construction
// (the generation order is a legal serialization consistent with the
// intervals), so certification cost is measured on the honest path:
// candidate replay over genuinely interleaved intervals.
func Synth(n, m, span int, seed int64) *History {
	if m < 1 {
		m = 1
	}
	if span < 1 {
		span = 1
	}
	rng := rand.New(rand.NewSource(seed))
	h := &History{Items: make([]string, m)}
	for i := range h.Items {
		h.Items[i] = fmt.Sprintf("x%d", i)
	}
	counters := make([]int64, m)
	h.Txns = make([]Txn, 0, n)
	for k := 0; k < n; k++ {
		item := int32(rng.Intn(m))
		end := int64(2*k + 1)
		begin := end - 1 - int64(rng.Intn(2*span))
		if begin < 0 {
			begin = 0
		}
		val := counters[item] + 1
		counters[item] = val
		h.Txns = append(h.Txns, Txn{
			ID:     core.TxID(k + 1),
			Proc:   k % span,
			Status: core.TxCommitted,
			Lo:     begin,
			Begin:  begin,
			End:    end,
			Ops: []Op{
				{Write: false, Global: true, Item: item, Value: val - 1},
				{Write: true, Item: item, Value: val},
			},
		})
	}
	return h
}
