package certify

import (
	"fmt"
	"sort"

	"pcltm/internal/core"
)

// violation is a precheck failure that holds in every com choice.
type violation struct {
	reason string
	txns   []core.TxID
}

// readRef is one resolved global read of a com transaction.
type readRef struct {
	// reader and writer are com positions; writer is -1 for a read of
	// the initial value.
	reader, writer int32
	// item is the item read.
	item int32
	// ambiguous marks reads whose justifying writer is not uniquely
	// determined by the value (several com writers wrote it, or the value
	// is 0 and some com writer wrote 0). Ambiguous reads contribute no
	// forced edges and disable the exact small-history fallback.
	ambiguous bool
}

// prep is the condition-independent analysis of a history: the com set,
// reads-from resolution, per-item writer lists and the precheck verdicts.
type prep struct {
	h *History
	// com holds the indices (into h.Txns) of the certified transaction
	// set — all committed transactions plus the commit-pending ones some
	// com read forces in — sorted by End stamp.
	com []int32
	// pos maps a txn index to its com position, -1 if excluded.
	pos []int32
	// reads are the global reads of com transactions.
	reads []readRef
	// writers lists, per item, the com positions writing it (any value),
	// in com (End-stamp) order.
	writers [][]int32
	// internal is the first read-your-own-writes mismatch (SER-family
	// violation; SI leaves local reads unconstrained).
	internal *violation
	// unjust is the first committed read of a value no com candidate
	// wrote (violation of every condition).
	unjust *violation
	// ambiguous notes that at least one read could not be uniquely
	// resolved; ambiguousReads counts them.
	ambiguous      bool
	ambiguousReads int
}

type wkey struct {
	item int32
	val  int64
}

// prepare analyzes the history once for all conditions.
//
// The com choice: the exhaustive checkers try every subset of the
// commit-pending transactions. Under unambiguous reads-from the single
// choice "committed plus the least fixpoint of pending writers whose
// values some included transaction read" is exact: a pending transaction
// nobody reads from can be dropped from any justifying serialization
// without breaking legality (its writes were never the last write before
// a read, or the reader would have read its value and forced it in), and
// one a committed transaction reads from must appear in every choice
// that justifies the history. Ambiguity is recorded and downgrades
// decisions to Unknown rather than risking a wrong verdict.
func prepare(h *History) *prep {
	n := len(h.Txns)
	p := &prep{h: h, pos: make([]int32, n)}

	// Writer candidates: committed and commit-pending transactions, by
	// (item, value). Only a transaction's FINAL write per item counts —
	// block semantics publish the block's last value, so an intermediate
	// write overwritten inside its own block can never justify another
	// transaction's read (it serves same-block local reads only, which
	// the inclusion walk below checks separately).
	writersVal := make(map[wkey][]int32)
	candidate := func(t *Txn) bool {
		return t.Status == core.TxCommitted || t.Status == core.TxCommitPending
	}
	finals := make(map[int32]int64)
	for i := range h.Txns {
		t := &h.Txns[i]
		if !candidate(t) {
			continue
		}
		clear(finals)
		for _, op := range t.Ops {
			if op.Write {
				finals[op.Item] = op.Value
			}
		}
		for item, val := range finals {
			writersVal[wkey{item, val}] = append(writersVal[wkey{item, val}], int32(i))
		}
	}

	// Inclusion fixpoint. Committed transactions seed the set; a read of
	// a pending transaction's (unique) value forces it in, and its own
	// reads are then processed too.
	include := make([]bool, n)
	var queue []int32
	for i := range h.Txns {
		if h.Txns[i].Status == core.TxCommitted {
			include[i] = true
			queue = append(queue, int32(i))
		}
	}

	type rawRead struct {
		reader, writer int32 // txn indices; writer -1 for initial
		item           int32
		ambiguous      bool
	}
	var raws []rawRead
	local := make(map[int32]int64)
	for len(queue) > 0 {
		ti := queue[0]
		queue = queue[1:]
		t := &h.Txns[ti]
		clear(local)
		for _, op := range t.Ops {
			if op.Write {
				local[op.Item] = op.Value
				continue
			}
			if want, ok := local[op.Item]; ok {
				// Local read: legality forces the transaction's own last
				// write to the item.
				if op.Value != want && p.internal == nil {
					p.internal = &violation{
						reason: fmt.Sprintf("%s read %s:%d after writing %d",
							t.ID, h.Items[op.Item], op.Value, want),
						txns: []core.TxID{t.ID},
					}
				}
				continue
			}
			// Global read.
			ws := writersVal[wkey{op.Item, op.Value}]
			// A transaction's own write can never justify its own global
			// read (the write, if any, comes later in program order).
			self := false
			for _, w := range ws {
				if w == ti {
					self = true
				}
			}
			nOthers := len(ws)
			if self {
				nOthers--
			}
			r := rawRead{reader: ti, writer: -1, item: op.Item}
			switch {
			case op.Value == int64(core.InitialValue) && nOthers == 0:
				// Read of the initial value, no com candidate wrote 0.
			case op.Value == int64(core.InitialValue):
				// 0 was also written by a candidate: initial-or-writer, not
				// uniquely resolvable.
				r.ambiguous = true
			case nOthers == 0:
				if p.unjust == nil {
					p.unjust = &violation{
						reason: fmt.Sprintf("%s read %s:%d, a value no committed or commit-pending transaction wrote",
							t.ID, h.Items[op.Item], op.Value),
						txns: []core.TxID{t.ID},
					}
				}
				continue
			case nOthers == 1:
				for _, w := range ws {
					if w != ti {
						r.writer = w
					}
				}
				if !include[r.writer] {
					include[r.writer] = true
					queue = append(queue, r.writer)
				}
			default:
				r.ambiguous = true
			}
			if r.ambiguous {
				p.ambiguous = true
				p.ambiguousReads++
			}
			raws = append(raws, r)
		}
	}

	// Freeze the com set in End-stamp order and project txn indices to
	// com positions.
	for i := range h.Txns {
		if include[i] {
			p.com = append(p.com, int32(i))
		}
	}
	sort.Slice(p.com, func(a, b int) bool {
		ta, tb := &h.Txns[p.com[a]], &h.Txns[p.com[b]]
		if ta.End != tb.End {
			return ta.End < tb.End
		}
		return ta.ID < tb.ID
	})
	for i := range p.pos {
		p.pos[i] = -1
	}
	for ci, ti := range p.com {
		p.pos[ti] = int32(ci)
	}

	p.reads = make([]readRef, 0, len(raws))
	for _, r := range raws {
		rr := readRef{reader: p.pos[r.reader], writer: -1, item: r.item, ambiguous: r.ambiguous}
		if r.writer >= 0 {
			rr.writer = p.pos[r.writer]
		}
		p.reads = append(p.reads, rr)
	}

	p.writers = make([][]int32, len(h.Items))
	for ci, ti := range p.com {
		t := &h.Txns[ti]
		clear(finals)
		for _, op := range t.Ops {
			if op.Write {
				finals[op.Item] = op.Value
			}
		}
		for item := range finals {
			p.writers[item] = append(p.writers[item], int32(ci))
		}
	}
	return p
}
