package conformance

import (
	"errors"
	"runtime"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// Pool-hygiene conformance: the stm/ engines recycle attempt state
// through per-engine pools, so the failure mode this file hunts is state
// leaking across an attempt's reset — a conflicted attempt's write set,
// undo log or lock set surfacing in a later attempt's published values.
// The recorder sits above the pooling seam, which is exactly why the
// harness can see the symptom: a leaked write publishes a value no
// recorded op wrote, and the stamped history stops being justifiable.

// TestStressPooledEnginesUnderConflict sweeps every engine over tiny hot
// variable sets — the shapes most likely to conflict under real
// scheduling — recorder attached, checkers on. Conflict coverage is
// scheduler-dependent (a 1-core runner rarely interleaves microsecond
// transactions), so it is reported rather than required;
// TestConflictedAttemptHistoryClean below forces the conflicted-reuse
// path deterministically.
func TestStressPooledEnginesUnderConflict(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	conflicted := 0
	checked := 0
	for _, kind := range stm.EngineKinds() {
		for _, seed := range seeds {
			ep := Episode{
				Pattern: workload.Zipf,
				Workers: 3, TxnsPerWorker: 2, OpsPerTxn: 3,
				Vars: 2, WriteFrac: 60, Seed: seed,
			}
			rep, err := Check(Factory(kind), kind.String(), ep)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", kind, seed, err)
			}
			if fails := rep.Failures(); len(fails) > 0 {
				t.Errorf("%s seed=%d violated %v\n%s", kind, seed, fails, rep.DumpHistory())
			}
			if !rep.Skipped {
				checked++
			}
			conflicted += rep.Aborted
		}
	}
	if checked == 0 {
		t.Fatal("every episode was oversized; nothing was checked")
	}
	t.Logf("checked=%d episodes, %d conflicted/aborted transactions observed", checked, conflicted)
}

// stampAndEvaluate drains the recorder, stamps the attempts and runs the
// checker battery under the given engine's expectations.
func stampAndEvaluate(t *testing.T, rec *stm.Recorder, engine string,
	items map[uint64]core.Item, nprocs int) *Report {
	t.Helper()
	exec, err := Stamp(rec.Take(), func(id uint64) (core.Item, bool) {
		s, ok := items[id]
		return s, ok
	}, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(engine, Episode{Seed: 1}, exec)
	if rep.WellFormed != nil {
		t.Fatalf("%s: stamped history not well-formed: %v", engine, rep.WellFormed)
	}
	return rep
}

// TestConflictedAttemptHistoryClean is the targeted pool-hygiene test:
// force a conflicted attempt (whose read set, write set and undo log die
// with it), let the pooled state run the retry and more transactions,
// and assert the stamped history both contains the conflicted attempt
// and still satisfies every required condition — i.e. nothing of the
// dead attempt leaked into any later attempt's reads or published
// writes.
func TestConflictedAttemptHistoryClean(t *testing.T) {
	// Speculative engines (and adaptive, whose first regime is tl2s):
	// a transaction committed between an attempt's read and its commit
	// dooms validation deterministically.
	for _, kind := range []stm.EngineKind{stm.EngineTL2, stm.EngineTL2Striped, stm.EngineAdaptive} {
		t.Run(kind.String(), func(t *testing.T) {
			rec := stm.NewRecorder()
			eng := stm.NewEngine(kind, stm.WithRecorder(rec))
			x := stm.NewTVar[int64](0)
			a := stm.NewTVar[int64](0)
			b := stm.NewTVar[int64](0)
			items := map[uint64]core.Item{x.ID(): "x", a.ID(): "a", b.ID(): "b"}

			first := true
			if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
				v := stm.Get(tx, x)
				if first {
					first = false
					// The doomed attempt also buffers a write to `a`
					// that must never surface.
					stm.Set(tx, a, 111)
					if err := eng.AtomicallyAs(1, func(tx2 *stm.Tx) error {
						stm.Set(tx2, x, stm.Get(tx2, x)+100)
						return nil
					}); err != nil {
						return err
					}
					stm.Set(tx, x, v+1)
					return nil
				}
				// The retry, on the pooled state, writes only b.
				stm.Set(tx, b, 222)
				stm.Set(tx, x, v+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got := a.Peek(); got != 0 {
				t.Fatalf("doomed attempt's buffered write to a surfaced: a = %d", got)
			}

			rep := stampAndEvaluate(t, rec, kind.String(), items, 2)
			if rep.Aborted == 0 {
				t.Fatal("no conflicted attempt in the stamped history; the forced conflict failed")
			}
			if fails := rep.Failures(); len(fails) > 0 {
				t.Errorf("history with conflicted pooled attempt violated %v\n%s", fails, rep.DumpHistory())
			}
		})
	}

	// 2PL: a held ownership record makes a concurrent attempt bounce
	// (encounter-time conflict) before the pooled retry commits.
	t.Run("twopl", func(t *testing.T) {
		defer func(old int) { stm.OrecShards = old }(stm.OrecShards)
		stm.OrecShards = 1
		rec := stm.NewRecorder()
		eng := stm.NewEngine(stm.EngineTwoPL, stm.WithRecorder(rec))
		x := stm.NewTVar[int64](0)
		y := stm.NewTVar[int64](0)
		items := map[uint64]core.Item{x.ID(): "x", y.ID(): "y"}

		hold := make(chan struct{})
		release := make(chan struct{})
		go func() {
			_ = eng.AtomicallyAs(0, func(tx *stm.Tx) error {
				stm.Set(tx, x, 1)
				select {
				case <-hold:
				default:
					close(hold)
				}
				<-release
				return nil
			})
		}()
		<-hold
		done := make(chan error, 1)
		go func() {
			done <- eng.AtomicallyAs(1, func(tx *stm.Tx) error {
				stm.Set(tx, y, stm.Get(tx, y)+2)
				return nil
			})
		}()
		// Let the second worker bounce off the held record at least once
		// before releasing it. Lock failures are counted synchronously.
		for eng.Stats().LockFails == 0 {
			runtime.Gosched()
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatal(err)
		}

		rep := stampAndEvaluate(t, rec, "twopl", items, 2)
		if rep.Aborted == 0 {
			t.Fatal("no conflicted attempt in the stamped history; the forced lock conflict failed")
		}
		if fails := rep.Failures(); len(fails) > 0 {
			t.Errorf("history with conflicted pooled attempt violated %v\n%s", fails, rep.DumpHistory())
		}
	})
}

// TestLeakyPoolEngineConvicted is the suite's self-test, in the mold of
// TestBrokenEngineCaught: an engine whose pooled attempt state leaks its
// undo log (stm.NewLeakyPoolEngineForTest) is driven through the exact
// sequence the leak corrupts — commit a write to x, then abort a
// transaction on the reused state, resurrecting x's overwritten value —
// and the checkers must convict the recorded history. This is the proof
// that the sweep above would catch a reset that forgot to truncate.
func TestLeakyPoolEngineConvicted(t *testing.T) {
	rec := stm.NewRecorder()
	eng := stm.NewLeakyPoolEngineForTest(stm.WithRecorder(rec))
	x := stm.NewTVar[int64](0)
	y := stm.NewTVar[int64](0)
	items := map[uint64]core.Item{x.ID(): "x", y.ID(): "y"}

	// T1 commits x=101; its undo entry (x→0) leaks into the pooled state.
	if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Set(tx, x, 101)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// T2 aborts; rolling back replays the leaked entry and resurrects x=0.
	wantErr := errors.New("deliberate abort")
	if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Set(tx, y, 202)
		return wantErr
	}); err != wantErr {
		t.Fatal(err)
	}
	// T3 observes the resurrected value — a read no serialization of the
	// committed writes can justify.
	if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Get(tx, x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 0 {
		t.Fatalf("fixture failed to leak: x = %d, want the resurrected 0", got)
	}

	exec, err := Stamp(rec.Take(), func(id uint64) (core.Item, bool) {
		s, ok := items[id]
		return s, ok
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate("leaky", Episode{Seed: 1}, exec)
	if rep.WellFormed != nil {
		t.Fatalf("stamped history not well-formed: %v", rep.WellFormed)
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("harness did not convict the leaky pooled engine:\n%s", rep.DumpHistory())
	}
	for _, must := range []string{"opacity", "strict-serializability"} {
		if res, ok := rep.Results[must]; !ok || res.Satisfied {
			t.Errorf("%s should be violated by the resurrected value\n%s", must, rep.DumpHistory())
		}
	}
	t.Logf("leaky pooled engine convicted of %v", fails)
}
