package conformance

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// Conformance of the raw-word value plane (stm/value.go): the word path
// and the boxed fallback must produce identical, checker-clean histories
// — and a planted word corruption must be convicted, proving the harness
// would catch a real encode/decode/publish bug the same way.

// TestBoxedFallbackHistoriesClean runs the same episode shapes over
// TVar[any] (boxed fallback) on every engine and requires the same
// verdicts as the word path: the two value pipelines are semantically
// indistinguishable to the checkers.
func TestBoxedFallbackHistoriesClean(t *testing.T) {
	seeds := []int64{1, 2}
	if !testing.Short() {
		seeds = append(seeds, 3, 4)
	}
	checked := 0
	for _, kind := range stm.EngineKinds() {
		for _, seed := range seeds {
			for _, boxed := range []bool{false, true} {
				ep := Episode{
					Pattern: workload.Zipf,
					Workers: 2, TxnsPerWorker: 2, OpsPerTxn: 3,
					Vars: 3, WriteFrac: 50, Boxed: boxed, Seed: seed,
				}
				rep, err := Check(Factory(kind), kind.String(), ep)
				if err != nil {
					t.Fatalf("%s seed=%d boxed=%v: %v", kind, seed, boxed, err)
				}
				if fails := rep.Failures(); len(fails) > 0 {
					t.Errorf("%s seed=%d boxed=%v violated %v\n%s",
						kind, seed, boxed, fails, rep.DumpHistory())
				}
				if !rep.Skipped {
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("every episode was oversized; nothing was checked")
	}
}

// TestWordCorruptingEngineConvicted is the word plane's self-test, in
// the mold of TestLeakyPoolEngineConvicted: an engine whose publish
// truncates one-word values to 32 bits
// (stm.NewWordCorruptingEngineForTest) commits a value that needs the
// high bits; the next read observes the truncation — a value no
// transaction ever wrote, which no serialization can justify — and the
// checkers must convict. This is the proof that a real bug in the
// raw-word encode/decode/publish pipeline would not slip past the
// harness as long as it changes any observed value.
func TestWordCorruptingEngineConvicted(t *testing.T) {
	rec := stm.NewRecorder()
	eng := stm.NewWordCorruptingEngineForTest(stm.WithRecorder(rec))
	x := stm.NewTVar[int64](0)
	items := map[uint64]core.Item{x.ID(): "x"}

	// T1 commits a value with live high bits; the planted bug publishes
	// only the low 32.
	const wide = int64(1)<<40 | 5
	if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Set(tx, x, wide)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// T2 observes the truncated value.
	if err := eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Get(tx, x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 5 {
		t.Fatalf("fixture failed to corrupt: x = %d, want the truncated 5", got)
	}

	exec, err := Stamp(rec.Take(), func(id uint64) (core.Item, bool) {
		s, ok := items[id]
		return s, ok
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate("corrupt", Episode{Seed: 1}, exec)
	if rep.WellFormed != nil {
		t.Fatalf("stamped history not well-formed: %v", rep.WellFormed)
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("harness did not convict the word-corrupting engine:\n%s", rep.DumpHistory())
	}
	for _, must := range []string{"opacity", "strict-serializability"} {
		if res, ok := rep.Results[must]; !ok || res.Satisfied {
			t.Errorf("%s should be violated by the truncated value\n%s", must, rep.DumpHistory())
		}
	}
	t.Logf("word-corrupting engine convicted of %v", fails)
}
