package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/stm"
	"pcltm/store"
	"pcltm/tstructs"
)

// The structure layer of the conformance harness: where conformance.go
// records histories of raw TVars, this file records histories at two
// additional abstraction levels and runs the same checkers on both.
//
//   - Structure-level ("map-level") histories: every TMap or store
//     operation is one transaction over the *keyspace* — R(k)=v or
//     W(k,v) — with its real-time interval bracketed by tickets taken
//     before and after the operation ran. A correct map over a correct
//     engine linearizes its operations, so these histories must be
//     strictly serializable; a map that mishandles its bucket chains
//     (NewAliasedTMapForTest) yields reads of values the serialization
//     order cannot justify, and the checkers convict it. Absence is
//     encoded as the checkers' initial value 0 (episodes write only
//     positive values), so "get of a lost key" shows up as a read of 0
//     after a committed write — exactly the unjustifiable read.
//
//   - Per-partition TVar-level histories: a partitioned store runs one
//     engine per partition, each wearing its own recorder (the store's
//     EngineOptions seam); each partition's attempt log is stamped
//     independently (StampInterned, since chain links record entry
//     pointers) and must satisfy the engine's required conditions —
//     opacity for the speculative engines — partition by partition.
//     This is the acceptance check that partitioning did not buy
//     parallelism by weakening any single partition's consistency.

// StructEpisode sizes one recorded structure run.
type StructEpisode struct {
	// Workers and OpsPerWorker shape the concurrent load; their product
	// is the structure-level transaction count, which must stay at or
	// under maxCheckedTxns for the episode to be checked (default 2×3).
	Workers, OpsPerWorker int
	// Keys is the keyspace size (default 4, keys 1..Keys).
	Keys int
	// PutFrac is the chance an op writes, in percent (default 50).
	PutFrac int
	// Partitions sizes the store driver's partition count (default 2).
	Partitions int
	// Seed fixes the op plans (default 1).
	Seed int64
}

func (ep StructEpisode) withDefaults() StructEpisode {
	if ep.Workers == 0 {
		ep.Workers = 2
	}
	if ep.OpsPerWorker == 0 {
		ep.OpsPerWorker = 3
	}
	if ep.Keys == 0 {
		ep.Keys = 4
	}
	if ep.PutFrac == 0 {
		ep.PutFrac = 50
	}
	if ep.Partitions == 0 {
		ep.Partitions = 2
	}
	if ep.Seed == 0 {
		ep.Seed = 1
	}
	return ep
}

// structOp is one completed structure-level operation with its ticket
// bracket.
type structOp struct {
	proc            int
	begin, mid, end uint64
	write           bool
	key             int64
	val             int64
}

// keyedMap is the structure under test, abstracted so the TMap and
// store drivers share the episode runner: one get or put, executed as
// one transaction on behalf of proc.
type keyedMap interface {
	get(proc int, k int64) int64
	put(proc int, k, v int64)
}

// tmapUnderTest runs a TMap on a single engine.
type tmapUnderTest struct {
	eng *stm.Engine
	m   *tstructs.TMap[int64, int64]
}

func (u tmapUnderTest) get(proc int, k int64) int64 {
	var v int64
	_ = u.eng.AtomicallyAs(proc, func(tx *stm.Tx) error {
		v, _ = u.m.Get(tx, k)
		return nil
	})
	return v
}

func (u tmapUnderTest) put(proc int, k, v int64) {
	_ = u.eng.AtomicallyAs(proc, func(tx *stm.Tx) error {
		u.m.Put(tx, k, v)
		return nil
	})
}

// storeUnderTest routes through a partitioned store.
type storeUnderTest struct{ s *store.Store[int64, int64] }

func (u storeUnderTest) get(proc int, k int64) int64 {
	var v int64
	_ = u.s.AtomicallyAs(u.s.PartitionOf(k), proc, func(tx *stm.Tx, p *store.Part[int64, int64]) error {
		v, _ = p.Get(tx, k)
		return nil
	})
	return v
}

func (u storeUnderTest) put(proc int, k, v int64) {
	_ = u.s.AtomicallyAs(u.s.PartitionOf(k), proc, func(tx *stm.Tx, p *store.Part[int64, int64]) error {
		p.Put(tx, k, v)
		return nil
	})
}

// runStructOps drives the episode's planned ops concurrently against m,
// ticketing each op's real-time bracket, and projects the completed ops
// into a structure-level core.Execution.
func runStructOps(m keyedMap, ep StructEpisode) *core.Execution {
	var tickets atomic.Uint64
	var values atomic.Int64 // unique positive write values; 0 stays "absent"
	ops := make([][]structOp, ep.Workers)
	var wg sync.WaitGroup
	for w := 0; w < ep.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(ep.Seed + int64(w)*7919))
			for i := 0; i < ep.OpsPerWorker; i++ {
				op := structOp{
					proc:  w,
					key:   1 + int64(r.Intn(ep.Keys)),
					write: r.Intn(100) < ep.PutFrac,
				}
				op.begin = tickets.Add(1)
				if op.write {
					op.val = values.Add(1)
					m.put(w, op.key, op.val)
				} else {
					op.val = m.get(w, op.key)
				}
				op.mid = tickets.Add(1)
				op.end = tickets.Add(1)
				ops[w] = append(ops[w], op)
			}
		}(w)
	}
	wg.Wait()
	var all []structOp
	for _, ws := range ops {
		all = append(all, ws...)
	}
	return buildStructExecution(all, ep.Workers)
}

// buildStructExecution projects completed structure ops into a
// core.Execution: one committed single-op transaction per operation,
// intervals from the ticket brackets. Soundness mirrors Stamp's: the
// begin ticket is taken before the operation's transaction starts and
// the end ticket after it returns, so every real-time precedence in the
// projected history actually happened.
func buildStructExecution(ops []structOp, nprocs int) *core.Execution {
	sort.Slice(ops, func(i, j int) bool { return ops[i].begin < ops[j].begin })
	b := exectest.New().NProcs(nprocs)
	type ev struct {
		seq  uint64
		kind momentKind
		txn  core.TxID
		op   structOp
	}
	var evs []ev
	for i, op := range ops {
		txn := core.TxID(i + 1)
		item := core.Item(fmt.Sprintf("k%d", op.key))
		spec := core.TxSpec{ID: txn, Proc: core.ProcID(op.proc)}
		if op.write {
			spec.Ops = []core.TxOp{core.W(item, core.Value(op.val))}
		} else {
			spec.Ops = []core.TxOp{core.R(item)}
		}
		b.Spec(spec)
		evs = append(evs,
			ev{seq: op.begin, kind: momentBegin, txn: txn, op: op},
			ev{seq: op.mid, kind: momentOp, txn: txn, op: op},
			ev{seq: op.end, kind: momentEnd, txn: txn, op: op})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for _, e := range evs {
		p := core.ProcID(e.op.proc)
		item := core.Item(fmt.Sprintf("k%d", e.op.key))
		switch e.kind {
		case momentBegin:
			b.Begin(p, e.txn)
		case momentOp:
			if e.op.write {
				b.Write(p, e.txn, item, core.Value(e.op.val))
			} else {
				b.Read(p, e.txn, item, core.Value(e.op.val))
			}
		case momentEnd:
			b.Commit(p, e.txn)
		}
	}
	return b.Exec()
}

// RunTMapEpisode records one structure-level history of a TMap on a
// fresh engine of the given kind.
func RunTMapEpisode(kind stm.EngineKind, ep StructEpisode) *core.Execution {
	ep = ep.withDefaults()
	u := tmapUnderTest{eng: stm.NewEngine(kind), m: tstructs.NewTMap[int64, int64](16)}
	return runStructOps(u, ep)
}

// StoreEpisodeResult is one store episode's recorded output: the
// structure-level history plus each partition's TVar-level history.
type StoreEpisodeResult struct {
	// StoreLevel is the keyspace history (every store op one committed
	// transaction).
	StoreLevel *core.Execution
	// Partitions holds one stamped TVar-level execution per partition,
	// from that partition's own engine's recorder.
	Partitions []*core.Execution
}

// RunStoreEpisode records one store episode: a fresh partitioned store
// whose partitions each run their own engine of the given kind, one
// recorder per partition.
func RunStoreEpisode(kind stm.EngineKind, ep StructEpisode) (*StoreEpisodeResult, error) {
	ep = ep.withDefaults()
	recs := make([]*stm.Recorder, 0, ep.Partitions)
	s := store.New[int64, int64](store.Config{
		Partitions: ep.Partitions,
		Engine:     kind,
		Buckets:    8,
		EngineOptions: func(part int) []stm.Option {
			r := stm.NewRecorder()
			recs = append(recs, r)
			return []stm.Option{stm.WithRecorder(r)}
		},
	})
	res := &StoreEpisodeResult{StoreLevel: runStructOps(storeUnderTest{s: s}, ep)}
	itemOf := func(id uint64) (core.Item, bool) { return core.Item(fmt.Sprintf("t%d", id)), true }
	for _, r := range recs {
		exec, err := StampInterned(r.Take(), itemOf, ep.Workers)
		if err != nil {
			return nil, err
		}
		res.Partitions = append(res.Partitions, exec)
	}
	return res, nil
}

// ConvictAliasedTMap is the structure layer's self-test, mirroring the
// broken engines of stm/broken.go: it drives the planted
// cross-bucket-aliasing fixture — one bucket, chain-dropping Put — with
// a deterministic sequential history (put k1, put k2, get k1) and
// returns the Evaluate report, which must convict: the second put
// destroys k1's entry, so the final read returns 0 ("absent") after
// k1's write committed, a read no real-time-respecting serialization
// justifies. A harness that cannot flag this fixture would be vacuous
// on real structure bugs of the same shape.
func ConvictAliasedTMap() *Report {
	eng := stm.NewEngine(stm.EngineGlobalLock)
	m := tstructs.NewAliasedTMapForTest[int64, int64]()
	u := tmapUnderTest{eng: eng, m: m}
	var tickets atomic.Uint64
	var ops []structOp
	do := func(write bool, k, v int64) {
		op := structOp{write: write, key: k, val: v}
		op.begin = tickets.Add(1)
		if write {
			u.put(0, k, v)
		} else {
			op.val = u.get(0, k)
		}
		op.mid = tickets.Add(1)
		op.end = tickets.Add(1)
		ops = append(ops, op)
	}
	do(true, 1, 10) // put k1=10
	do(true, 2, 20) // put k2=20: replaces the whole chain, k1 is lost
	do(false, 1, 0) // get k1: observes 0 ("absent") — the conviction
	exec := buildStructExecution(ops, 1)
	return Evaluate("aliased", Episode{Seed: 1}, exec)
}

// StructStressConfig sizes a structure-conformance sweep.
type StructStressConfig struct {
	// Episodes per engine × driver cell (default 3).
	Episodes int
	// Seed derives every episode deterministically (default 1).
	Seed int64
	// Engines to sweep (default: every registered kind).
	Engines []stm.EngineKind
}

func (c StructStressConfig) withDefaults() StructStressConfig {
	if c.Episodes == 0 {
		c.Episodes = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Engines == nil {
		c.Engines = stm.EngineKinds()
	}
	return c
}

// StructStressSummary aggregates a structure sweep. Reports carry one
// entry per checked history: structure-level TMap and store histories,
// and each store episode's per-partition TVar-level histories.
type StructStressSummary struct {
	Reports []*Report
	// MapHistories, StoreHistories, PartitionHistories and
	// StitchedHistories count the checked histories by level (stitched =
	// keyspace-level with cross-partition transactions; stitch.go).
	MapHistories, StoreHistories, PartitionHistories, StitchedHistories int
	// Episodes, Checked, Skipped, Inconclusive mirror StressSummary.
	Episodes, Checked, Skipped, Inconclusive int
	// Failures holds one formatted entry per violated history.
	Failures []string
	// AliasedConvicted reports the planted-fixture self-test: true when
	// the checkers flagged the aliased TMap. A sweep with this false is
	// itself broken.
	AliasedConvicted bool
	// HalfCrossConvicted reports the stitching checker's self-test: true
	// when the checkers flagged the planted half-applied-cross store
	// (store.BreakCrossForTest). A sweep with this false cannot see
	// cross-partition atomicity bugs.
	HalfCrossConvicted bool
}

// StressStructures runs the seeded structure-conformance sweep: per
// engine, TMap episodes and partitioned-store episodes (structure-level
// histories checked for every engine; per-partition TVar-level
// histories checked against the engine's required conditions — opacity
// included for the speculative engines), plus the aliased-fixture
// conviction self-test.
func StressStructures(cfg StructStressConfig) (*StructStressSummary, error) {
	cfg = cfg.withDefaults()
	sum := &StructStressSummary{}
	for _, kind := range cfg.Engines {
		name := kind.String()
		for i := 0; i < cfg.Episodes; i++ {
			ep := structShape(cfg.Seed, name, i)

			exec := RunTMapEpisode(kind, ep)
			sum.MapHistories++
			sum.fold(name, ep, exec)

			res, err := RunStoreEpisode(kind, ep)
			if err != nil {
				return nil, fmt.Errorf("structures %s #%d: %w", name, i, err)
			}
			sum.StoreHistories++
			sum.fold(name, ep, res.StoreLevel)
			for _, pexec := range res.Partitions {
				sum.PartitionHistories++
				sum.fold(name, ep, pexec)
			}

			sexec := RunCrossEpisode(kind, CrossEpisode{StructEpisode: ep})
			sum.StitchedHistories++
			sum.fold(name, ep, sexec)
		}
	}
	rep := ConvictAliasedTMap()
	sum.AliasedConvicted = len(rep.Failures()) > 0
	rep = ConvictHalfAppliedCross()
	sum.HalfCrossConvicted = len(rep.Failures()) > 0
	return sum, nil
}

// fold evaluates one history and accumulates its verdict.
func (s *StructStressSummary) fold(engine string, ep StructEpisode, exec *core.Execution) {
	rep := Evaluate(engine, Episode{Seed: ep.Seed}, exec)
	s.Reports = append(s.Reports, rep)
	s.Episodes++
	if rep.Skipped {
		s.Skipped++
	} else {
		s.Checked++
	}
	if len(rep.Inconclusive()) > 0 {
		s.Inconclusive++
	}
	if fails := rep.Failures(); len(fails) > 0 {
		s.Failures = append(s.Failures, fmt.Sprintf(
			"%s structures seed=%d violated %v\n%s",
			engine, ep.Seed, fails, rep.DumpHistory()))
	}
}

// structShape derives one structure episode deterministically from the
// sweep seed and cell coordinates, sized to stay checkable: the
// structure-level transaction count is Workers × OpsPerWorker ≤
// maxCheckedTxns, and the per-partition TVar-level histories hold
// roughly their partition's share of those ops plus retries.
func structShape(seed int64, engine string, i int) StructEpisode {
	h := int64(0)
	for _, c := range engine {
		h = h*131 + int64(c)
	}
	r := rand.New(rand.NewSource(seed + h + int64(i)*104_729))
	return StructEpisode{
		Workers:      2,
		OpsPerWorker: 2 + r.Intn(3), // 2..4 → 4..8 structure-level txns
		Keys:         3 + r.Intn(4), // 3..6
		PutFrac:      40 + 10*r.Intn(3),
		Partitions:   2,
		Seed:         seed + int64(i)*31 + h%1000 + 1,
	}
}
