package conformance

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcltm/internal/certify"
	"pcltm/internal/core"
	"pcltm/stm"
	"pcltm/tstructs"
)

// The scale tier of the conformance harness: histories far past
// maxCheckedTxns, where the exhaustive checkers never run and the
// polynomial certifier is the only judge. The planted bugs must still
// be convicted — a checker that only catches bugs on eight-transaction
// episodes is a demo, not a harness. Sizes here stay -race-friendly;
// scale_norace_test.go re-runs the same drivers at full size.

// runBrokenAtScale drives the stale-read-cache engine through n
// read-modify-write transactions on a shared variable and evaluates the
// recorded history. Every transaction past the first reads the poisoned
// initial value, so certifying any condition would require a
// serialization where thousands of committed writes are all invisible.
func runBrokenAtScale(t *testing.T, workers, txnsPerWorker int) *Report {
	t.Helper()
	rec := stm.NewRecorder()
	eng := stm.NewBrokenEngineForTest(stm.WithRecorder(rec))
	x := stm.NewTVar[int64](0)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				v := next.Add(1)
				_ = eng.AtomicallyAs(w, func(tx *stm.Tx) error {
					stm.Get(tx, x)
					stm.Set(tx, x, v)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	xid := x.ID()
	itemOf := func(id uint64) (core.Item, bool) {
		if id == xid {
			return "x", true
		}
		return core.Item(fmt.Sprintf("t%d", id)), true
	}
	exec, err := Stamp(rec.Take(), itemOf, workers)
	if err != nil {
		t.Fatalf("stamping: %v", err)
	}
	return Evaluate("broken", Episode{Seed: 1}, exec)
}

// requireCertifyConviction asserts the report's failures include a
// certifier conviction of every named condition.
func requireCertifyConviction(t *testing.T, rep *Report, conditions ...string) {
	t.Helper()
	fails := rep.Failures()
	for _, cond := range conditions {
		found := false
		for _, f := range fails {
			if f == "certify:"+cond {
				found = true
				break
			}
		}
		if !found {
			cr := rep.Certify[cond]
			t.Errorf("certifier did not convict %s (verdict %s via %q, %s); failures: %v",
				cond, cr.Verdict, cr.Method, cr.Reason, fails)
		}
	}
	for _, d := range rep.Disagreements {
		t.Errorf("tier disagreement: %s", d)
	}
}

func TestCertifierConvictsBrokenEngineModerateScale(t *testing.T) {
	rep := runBrokenAtScale(t, 4, 250)
	if !rep.Skipped {
		t.Fatalf("expected the exhaustive tier to be skipped at %d txns", rep.Txns)
	}
	requireCertifyConviction(t, rep,
		certify.Serializability, certify.StrictSerializability, certify.SnapshotIsolation)
}

// runAliasedTMapAtScale drives the chain-dropping TMap fixture through
// nOps sequential structure-level operations: seed k1, then alternate
// puts of other keys (each destroying the whole chain) with gets of k1
// observing "absent". The structure history is strictly serializable
// for a correct map; here every get of k1 after the first committed put
// reads 0 against real-time order.
func runAliasedTMapAtScale(t *testing.T, nOps int) *Report {
	t.Helper()
	eng := stm.NewEngine(stm.EngineGlobalLock)
	m := tstructs.NewAliasedTMapForTest[int64, int64]()
	u := tmapUnderTest{eng: eng, m: m}
	var tickets atomic.Uint64
	ops := make([]structOp, 0, nOps)
	do := func(write bool, k, v int64) {
		op := structOp{write: write, key: k, val: v}
		op.begin = tickets.Add(1)
		if write {
			u.put(0, k, v)
		} else {
			op.val = u.get(0, k)
		}
		op.mid = tickets.Add(1)
		op.end = tickets.Add(1)
		ops = append(ops, op)
	}
	do(true, 1, 10)
	for len(ops) < nOps {
		do(true, 2+int64(len(ops))%7, int64(100+len(ops)))
		do(false, 1, 0)
	}
	exec := buildStructExecution(ops, 1)
	return Evaluate("aliased", Episode{Seed: 1}, exec)
}

func TestCertifierConvictsAliasedTMapModerateScale(t *testing.T) {
	rep := runAliasedTMapAtScale(t, 1001)
	if !rep.Skipped {
		t.Fatalf("expected the exhaustive tier to be skipped at %d txns", rep.Txns)
	}
	// Plain serializability legitimately holds (the lost-key reads can
	// all serialize before k1's put); real-time order is what convicts.
	requireCertifyConviction(t, rep,
		certify.StrictSerializability, certify.SnapshotIsolation)
}

// runHonestAtScale certifies a large recorded run of a registered
// engine through the streaming Builder path and returns the reports
// plus the history size.
func runHonestAtScale(t *testing.T, kind stm.EngineKind, workers, txnsPerWorker, vars int) (map[string]certify.Report, int) {
	t.Helper()
	rec := stm.NewRecorder()
	eng := stm.NewEngine(kind, stm.WithRecorder(rec))
	tvars := make([]*stm.TVar[int64], vars)
	for i := range tvars {
		tvars[i] = stm.NewTVar[int64](0)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				v := next.Add(1)
				a := tvars[(w+i)%vars]
				b := tvars[(w*7+i*3)%vars]
				_ = eng.AtomicallyAs(w, func(tx *stm.Tx) error {
					stm.Get(tx, a)
					stm.Set(tx, a, v)
					stm.Get(tx, b)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()

	bld := certify.NewBuilder()
	bld.Add(rec.Take())
	n := bld.Len()
	h, err := bld.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	start := time.Now()
	reps := certify.All(h)
	elapsed := time.Since(start)
	t.Logf("certified %d-txn %s history in %v", n, kind, elapsed)
	if elapsed > 30*time.Second {
		t.Errorf("certifying %d txns took %v, want seconds", n, elapsed)
	}
	return reps, n
}

func requireAllCertified(t *testing.T, reps map[string]certify.Report) {
	t.Helper()
	for _, cond := range certify.Conditions() {
		r := reps[cond]
		if r.Verdict != certify.Certified {
			t.Errorf("%s: %s via %q (%s)", cond, r.Verdict, r.Method, r.Reason)
		}
	}
}

func TestCertifierHonestEngineModerateScale(t *testing.T) {
	reps, n := runHonestAtScale(t, stm.EngineTL2, 4, 500, 8)
	if n < 2000 {
		t.Fatalf("history too small: %d txns", n)
	}
	requireAllCertified(t, reps)
}

// TestCertifyReportString pins the one-line report rendering the CLI
// and failures lean on.
func TestCertifyReportString(t *testing.T) {
	rep := runBrokenAtScale(t, 2, 20)
	s := rep.Certify[certify.StrictSerializability].String()
	for _, want := range []string{certify.StrictSerializability, "violated"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string %q missing %q", s, want)
		}
	}
}
