// Package conformance wires the repo's two halves into one test surface:
// it records genuine concurrent histories from the production stm/
// engines (stm.Recorder) and runs the paper's consistency checkers
// (internal/consistency) on them. The simulated protocols walk the PCL
// construction; this package asks the engines people actually run the
// same question — "was that execution opaque / strictly serializable /
// ...?" — on real interleavings under real parallelism.
//
// The pipeline: RunEpisode drives one engine with a small seeded
// concurrent workload under a recorder, Stamp projects the drained
// attempt log into a core.Execution (every attempt one transaction,
// events ordered by the recorder's atomic tickets), and Check asserts
// well-formedness and runs every registered checker against the engine's
// expectations. Stress sweeps engines × workload patterns × seeds.
package conformance

import (
	"fmt"
	"reflect"
	"sort"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/stm"
)

// momentKind orders the three event classes of one attempt.
type momentKind int

const (
	momentBegin momentKind = iota
	momentOp
	momentEnd
)

// moment is one stamped event of the merged log.
type moment struct {
	seq  uint64
	kind momentKind
	att  *stm.AttemptRecord
	txn  core.TxID
	op   stm.RecordedOp
}

// Stamp projects drained attempt records into a core.Execution in the
// paper's vocabulary. Every attempt becomes one transaction — committed
// attempts commit, conflicted/aborted/waited attempts abort — with ids
// assigned in begin-stamp order. itemOf maps recorded tvar ids to data
// items; recorded values must be int64 or int (the bounded value spaces
// the conformance workloads use, so reads-from is unambiguous).
//
// Soundness of the projection: every recorder stamp is taken at a
// real-time point inside its operation's span (see stm/record.go), so the
// stamped total order is a linearization of the real execution — any
// real-time precedence the checkers derive from it actually happened, and
// observed values are consistent with stamp order. A condition that holds
// on the stamped history therefore held in the machine.
func Stamp(attempts []*stm.AttemptRecord, itemOf func(tvar uint64) (core.Item, bool), nprocs int) (*core.Execution, error) {
	return stamp(attempts, itemOf, nprocs, convertOp)
}

// StampInterned is Stamp for histories whose recorded values are not all
// integers — the transactional data structures record chain-link TVars
// holding entry pointers. Integer payloads pass through unchanged;
// nil-ish values (typed nil links: the empty chain, which is also every
// link TVar's initial value) map to 0; every other distinct value gets a
// unique negative integer, assigned on first sight. The mapping is
// injective, so it preserves exactly the equality structure reads-from
// depends on: a read maps to a write's value iff the machine really
// returned that write's pointer. (Two link writes of the same pointer map
// to the same integer, as they must — they are the same value.)
func StampInterned(attempts []*stm.AttemptRecord, itemOf func(tvar uint64) (core.Item, bool), nprocs int) (*core.Execution, error) {
	in := &interner{seen: make(map[any]core.Value)}
	return stamp(attempts, itemOf, nprocs, in.convert)
}

func stamp(attempts []*stm.AttemptRecord, itemOf func(tvar uint64) (core.Item, bool), nprocs int,
	convert func(stm.RecordedOp, func(uint64) (core.Item, bool)) (core.Item, core.Value, error)) (*core.Execution, error) {
	byBegin := make([]*stm.AttemptRecord, len(attempts))
	copy(byBegin, attempts)
	sort.Slice(byBegin, func(i, j int) bool { return byBegin[i].BeginSeq < byBegin[j].BeginSeq })

	var moments []moment
	b := exectest.New().NProcs(nprocs)
	for i, a := range byBegin {
		txn := core.TxID(i + 1)
		moments = append(moments,
			moment{seq: a.BeginSeq, kind: momentBegin, att: a, txn: txn},
			moment{seq: a.EndSeq, kind: momentEnd, att: a, txn: txn})
		for _, op := range a.Ops {
			moments = append(moments, moment{seq: op.Seq, kind: momentOp, att: a, txn: txn, op: op})
		}

		// The static spec: the attempt's completed code.
		spec := core.TxSpec{ID: txn, Proc: core.ProcID(a.Proc)}
		for _, op := range a.Ops {
			item, v, err := convert(op, itemOf)
			if err != nil {
				return nil, err
			}
			if op.Write {
				spec.Ops = append(spec.Ops, core.W(item, v))
			} else {
				spec.Ops = append(spec.Ops, core.R(item))
			}
		}
		b.Spec(spec)
	}
	sort.Slice(moments, func(i, j int) bool { return moments[i].seq < moments[j].seq })

	for _, m := range moments {
		p := core.ProcID(m.att.Proc)
		switch m.kind {
		case momentBegin:
			b.Begin(p, m.txn)
		case momentOp:
			item, v, err := convert(m.op, itemOf)
			if err != nil {
				return nil, err
			}
			if m.op.Write {
				b.Write(p, m.txn, item, v)
			} else {
				b.Read(p, m.txn, item, v)
			}
		case momentEnd:
			if m.att.Outcome == stm.AttemptCommitted {
				b.Commit(p, m.txn)
			} else {
				// Conflicted, user-aborted and Retry-blocked attempts all
				// end in A_T: the engine rolled them back.
				b.Abort(p, m.txn)
			}
		}
	}
	return b.Exec(), nil
}

// interner maps arbitrary recorded values to core.Values for
// StampInterned: integers pass through, nil-ish values become 0,
// anything else gets the next negative integer on first sight.
type interner struct {
	seen map[any]core.Value
	next core.Value
}

func (in *interner) convert(op stm.RecordedOp, itemOf func(uint64) (core.Item, bool)) (core.Item, core.Value, error) {
	item, ok := itemOf(op.TVar)
	if !ok {
		return "", 0, fmt.Errorf("conformance: recorded op on unknown tvar id %d", op.TVar)
	}
	switch v := op.Value.(type) {
	case nil:
		return item, 0, nil
	case int64:
		return item, core.Value(v), nil
	case int:
		return item, core.Value(v), nil
	}
	rv := reflect.ValueOf(op.Value)
	switch rv.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func, reflect.Slice, reflect.Interface:
		if rv.IsNil() {
			// A typed-nil link is the structures' empty marker and every
			// link TVar's initial value; it must intern to the checkers'
			// initial value 0 or every first chain read would look like a
			// read of an unwritten value.
			return item, 0, nil
		}
	}
	if rv.IsZero() {
		// Same reasoning for non-pointer control TVars (a server's bool
		// stop flag, a queue's int64 size): they start at their type's
		// zero value, so the zero value must intern to the checkers'
		// initial 0 or a pre-write read would look unjustifiable. A TVar
		// holds one static type, so the per-item mapping stays injective.
		return item, 0, nil
	}
	if !reflect.TypeOf(op.Value).Comparable() {
		return "", 0, fmt.Errorf("conformance: recorded value of %s has non-comparable type %T; cannot intern", item, op.Value)
	}
	if id, ok := in.seen[op.Value]; ok {
		return item, id, nil
	}
	in.next--
	in.seen[op.Value] = in.next
	return item, in.next, nil
}

// convertOp resolves a recorded op's item and value.
func convertOp(op stm.RecordedOp, itemOf func(uint64) (core.Item, bool)) (core.Item, core.Value, error) {
	item, ok := itemOf(op.TVar)
	if !ok {
		return "", 0, fmt.Errorf("conformance: recorded op on unknown tvar id %d", op.TVar)
	}
	switch v := op.Value.(type) {
	case int64:
		return item, core.Value(v), nil
	case int:
		return item, core.Value(v), nil
	default:
		return "", 0, fmt.Errorf("conformance: recorded value %v (%T) on %s is not an integer", op.Value, op.Value, item)
	}
}
