package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pcltm/internal/trace"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// dumpDisagreement writes the episode's stamped execution as trace JSON
// to a persistent path and returns it, so a tier disagreement leaves a
// repro behind: `tmcheck -certify <path>` replays the certifier,
// `tmcheck <path>` the exhaustive tier.
func dumpDisagreement(t *testing.T, rep *Report) string {
	t.Helper()
	data, err := trace.Encode(rep.Exec)
	if err != nil {
		t.Fatalf("encoding disagreement repro: %v", err)
	}
	path := filepath.Join(os.TempDir(), fmt.Sprintf(
		"certify-disagreement-%s-%s-seed%d.json", rep.Engine, rep.Episode.Pattern, rep.Episode.Seed))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing disagreement repro: %v", err)
	}
	return path
}

// requireAgreement fails the test if the two checker tiers disagreed on
// the episode, dumping the repro trace first.
func requireAgreement(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Disagreements) == 0 {
		return
	}
	path := dumpDisagreement(t, rep)
	t.Errorf("%s/%s seed=%d: tier disagreement %v\nrepro: %s\n%s",
		rep.Engine, rep.Episode.Pattern, rep.Episode.Seed,
		rep.Disagreements, path, rep.DumpHistory())
}

// TestCertifierDifferentialSweep runs the seeded conformance sweep over
// every engine × pattern cell and asserts the polynomial certifier and
// the exhaustive checkers never contradict each other — and that on the
// honest engines the certifier never abstains into Unknown on an
// episode the exhaustive tier could decide.
func TestCertifierDifferentialSweep(t *testing.T) {
	episodes := 3
	if testing.Short() {
		episodes = 1
	}
	for _, kind := range stm.EngineKinds() {
		for _, pat := range workload.Patterns() {
			for i := 0; i < episodes; i++ {
				for _, seed := range []int64{1, 17, 4242} {
					ep := episodeShape(seed, kind.String(), pat, i)
					rep, err := Check(Factory(kind), kind.String(), ep)
					if err != nil {
						t.Fatalf("%s/%s #%d: %v", kind, pat, i, err)
					}
					requireAgreement(t, rep)
					if fails := rep.Failures(); len(fails) > 0 {
						t.Errorf("%s/%s seed=%d: %v\n%s",
							kind, pat, ep.Seed, fails, rep.DumpHistory())
					}
				}
			}
		}
	}
}

// TestCertifierDifferentialBrokenEngine sweeps the planted-bug engine:
// whatever each tier concludes per episode, they must not contradict
// each other (the certifier may abstain; it may not acquit what the
// exhaustive tier convicts, nor convict what it acquits). Episodes are
// kept tiny on purpose — proving a violation exhaustively means
// enumerating every serialization, which already takes tens of seconds
// at six transactions (the measurement behind this PR's certifier).
func TestCertifierDifferentialBrokenEngine(t *testing.T) {
	for _, pat := range workload.Patterns() {
		for _, seed := range []int64{1, 7, 99} {
			ep := Episode{
				Pattern: pat, Workers: 2, TxnsPerWorker: 1,
				OpsPerTxn: 3, Vars: 3, WriteFrac: 50, Seed: seed,
			}
			rep, err := Check(stm.NewBrokenEngineForTest, "broken", ep)
			if err != nil {
				t.Fatalf("broken/%s seed=%d: %v", pat, seed, err)
			}
			requireAgreement(t, rep)
		}
	}
}

// FuzzCertifyDifferential lets the fuzzer drive the episode shape and
// seed directly. The property is the sweep's: both tiers decided ⇒ same
// verdict, on every engine including the planted-bug fixture. The shape
// caps (two workers, one transaction each) keep the exhaustive tier's
// enumeration cheap even when the fixture violates — the certifier
// itself is flat-rate either way.
func FuzzCertifyDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(3), uint8(6), false)
	f.Add(int64(7), uint8(1), uint8(4), uint8(4), true)
	f.Add(int64(99), uint8(2), uint8(2), uint8(8), false)
	f.Fuzz(func(t *testing.T, seed int64, patByte, ops, vars uint8, boxed bool) {
		pats := workload.Patterns()
		ep := Episode{
			Pattern:       pats[int(patByte)%len(pats)],
			Workers:       2,
			TxnsPerWorker: 1,
			OpsPerTxn:     1 + int(ops)%4,
			Vars:          1 + int(vars)%10,
			Boxed:         boxed,
			Seed:          seed,
		}
		kinds := append([]stm.EngineKind(nil), stm.EngineKinds()...)
		for _, kind := range kinds {
			rep, err := Check(Factory(kind), kind.String(), ep)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			requireAgreement(t, rep)
		}
		rep, err := Check(stm.NewBrokenEngineForTest, "broken", ep)
		if err != nil {
			t.Fatalf("broken: %v", err)
		}
		requireAgreement(t, rep)
	})
}
