package conformance

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"pcltm/internal/certify"
	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/history"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// EngineFactory builds the engine under test with the harness's options
// (the recorder). Registered engines wrap stm.NewEngine; the broken test
// engine wraps stm.NewBrokenEngineForTest.
type EngineFactory func(opts ...stm.Option) *stm.Engine

// Factory returns the EngineFactory of a registered engine kind.
func Factory(kind stm.EngineKind) EngineFactory {
	return func(opts ...stm.Option) *stm.Engine { return stm.NewEngine(kind, opts...) }
}

// Episode describes one small recorded run: a handful of workers each
// executing a handful of short transactions, sized so the exhaustive
// checkers stay exact (they are built for the paper's ≤8-transaction
// executions; retries add aborted transactions on top of the commits).
type Episode struct {
	// Pattern is the contention shape (internal/workload semantics).
	Pattern workload.Pattern
	// Workers, TxnsPerWorker, OpsPerTxn and Vars size the run.
	Workers, TxnsPerWorker, OpsPerTxn, Vars int
	// WriteFrac is the chance an op is a write, in percent (default 40).
	WriteFrac int
	// Boxed runs the episode over TVar[any] variables instead of
	// TVar[int64]: the same int64 payloads, but flowing through the
	// engines' boxed fallback instead of the raw-word path. The stress
	// sweep alternates so both value pipelines face the checkers.
	Boxed bool
	// Seed makes the op plans deterministic (default 1, like every other
	// driver in the repo). Scheduling still interleaves attempts freely —
	// the seed fixes what each transaction does, not when.
	Seed int64
}

func (ep Episode) withDefaults() Episode {
	if ep.Workers == 0 {
		ep.Workers = 2
	}
	if ep.TxnsPerWorker == 0 {
		ep.TxnsPerWorker = 2
	}
	if ep.OpsPerTxn == 0 {
		ep.OpsPerTxn = 3
	}
	if ep.Vars == 0 {
		ep.Vars = 6
	}
	if ep.WriteFrac == 0 {
		ep.WriteFrac = 40
	}
	if ep.Seed == 0 {
		ep.Seed = 1
	}
	return ep
}

// planOp is one planned operation of a transaction: which variable, and
// whether it writes. Write values are not planned — each executed write
// draws a fresh value from the episode's counter, so two attempts of the
// same transaction never write the same value (a dirty read of an
// aborted attempt's write must not be justifiable by its committed
// retry's identical value).
type planOp struct {
	varIdx int
	write  bool
}

// plan pre-generates every worker's transactions from the episode seed.
func (ep Episode) plan() [][][]planOp {
	plans := make([][][]planOp, ep.Workers)
	for w := 0; w < ep.Workers; w++ {
		r := rand.New(rand.NewSource(ep.Seed + int64(w)*7919))
		pick := workload.Picker(ep.Pattern, r, 0, ep.Vars, ep.Workers,
			ep.TxnsPerWorker*ep.OpsPerTxn, w)
		plans[w] = make([][]planOp, ep.TxnsPerWorker)
		for t := 0; t < ep.TxnsPerWorker; t++ {
			ops := make([]planOp, ep.OpsPerTxn)
			for o := range ops {
				ops[o] = planOp{
					varIdx: pick(t*ep.OpsPerTxn + o),
					write:  r.Intn(100) < ep.WriteFrac,
				}
			}
			ops[len(ops)-1].write = true // every transaction publishes something
			plans[w][t] = ops
		}
	}
	return plans
}

// episodeVars is the variable set of one episode, abstracted over the
// engines' two value pipelines: the raw-word path (TVar[int64]) and the
// boxed fallback (TVar[any] carrying int64). Both record int64 payloads,
// so the stamped histories are identical in shape and the checkers judge
// the pipelines on equal terms.
type episodeVars interface {
	item(i int) (uint64, core.Item)
	get(tx *stm.Tx, i int)
	set(tx *stm.Tx, i int, v int64)
}

type wordVars []*stm.TVar[int64]

func (vs wordVars) item(i int) (uint64, core.Item) {
	return vs[i].ID(), core.Item(fmt.Sprintf("x%d", i))
}
func (vs wordVars) get(tx *stm.Tx, i int)          { stm.Get(tx, vs[i]) }
func (vs wordVars) set(tx *stm.Tx, i int, v int64) { stm.Set(tx, vs[i], v) }

type boxedVars []*stm.TVar[any]

func (vs boxedVars) item(i int) (uint64, core.Item) {
	return vs[i].ID(), core.Item(fmt.Sprintf("x%d", i))
}
func (vs boxedVars) get(tx *stm.Tx, i int)          { stm.Get(tx, vs[i]) }
func (vs boxedVars) set(tx *stm.Tx, i int, v int64) { stm.Set(tx, vs[i], any(v)) }

func (ep Episode) makeVars() episodeVars {
	if ep.Boxed {
		vs := make(boxedVars, ep.Vars)
		for i := range vs {
			vs[i] = stm.NewTVar[any](int64(0))
		}
		return vs
	}
	vs := make(wordVars, ep.Vars)
	for i := range vs {
		vs[i] = stm.NewTVar[int64](0)
	}
	return vs
}

// RunEpisode drives a fresh engine from the factory with the episode's
// concurrent workload under a recorder and returns the stamped execution.
func RunEpisode(factory EngineFactory, ep Episode) (*core.Execution, error) {
	ep = ep.withDefaults()
	rec := stm.NewRecorder()
	eng := factory(stm.WithRecorder(rec))

	vars := ep.makeVars()
	items := make(map[uint64]core.Item, ep.Vars)
	for i := 0; i < ep.Vars; i++ {
		id, item := vars.item(i)
		items[id] = item
	}

	plans := ep.plan()
	// Every executed write — including those of attempts that go on to
	// conflict — stores a globally unique value, so reads-from is
	// unambiguous across the whole recorded history.
	var valueCtr atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < ep.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for _, ops := range plans[worker] {
				ops := ops
				_ = eng.AtomicallyAs(worker, func(tx *stm.Tx) error {
					for _, op := range ops {
						if op.write {
							vars.set(tx, op.varIdx, valueCtr.Add(1))
						} else {
							vars.get(tx, op.varIdx)
						}
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()

	itemOf := func(id uint64) (core.Item, bool) { x, ok := items[id]; return x, ok }
	return Stamp(rec.Take(), itemOf, ep.Workers)
}

// maxCheckedTxns bounds the history size the exhaustive checkers are
// asked to decide; a high-contention episode whose retries push past it
// is reported Skipped instead of burning the search budget.
const maxCheckedTxns = 10

// RequiredConditions returns the consistency conditions the named engine
// must satisfy on every recorded history. The speculative engines and the
// adaptive composition are opaque; the global lock trivially satisfies
// everything; encounter-time 2PL is required down from strict
// serializability (its opacity verdict is reported but not enforced —
// the paper's claim for the blocking corner is strict serializability).
// Unknown names carry no expectations.
func RequiredConditions(engine string) []string {
	var all []string
	for _, c := range consistency.Checkers() {
		all = append(all, c.Name)
	}
	switch engine {
	case "tl2", "tl2s", "adaptive", "glock":
		return all
	case "broken", "leaky", "corrupt", "aliased", "half-cross":
		// The test fixtures impersonate glock, so they owe everything —
		// that the harness flags them is the harness's own self-test
		// (stale read cache for "broken", pooled undo-log leak for
		// "leaky", raw-word truncation for "corrupt", dropped bucket
		// chains for the structure layer's "aliased" TMap, dropped
		// cross-partition shares for the stitching layer's "half-cross"
		// store).
		return all
	case "twopl":
		var out []string
		for _, name := range all {
			if name != "opacity" {
				out = append(out, name)
			}
		}
		return out
	default:
		return nil
	}
}

// Report is the conformance verdict of one episode.
type Report struct {
	// Engine is the engine's short name ("broken" for the test fixture).
	Engine string
	// Episode echoes the workload (after defaulting).
	Episode Episode
	// Txns, Committed and Aborted count the recorded transactions.
	Txns, Committed, Aborted int
	// Skipped is set when retries made the history larger than
	// maxCheckedTxns and the checkers were not run.
	Skipped bool
	// WellFormed is the first well-formedness violation, or nil.
	WellFormed error
	// Results maps checker name to its verdict (nil when Skipped).
	Results map[string]consistency.Result
	// Certify maps condition name to the polynomial certifier's verdict.
	// Unlike Results it is always populated: oversized episodes that skip
	// the exhaustive tier are still certified by the second tier — that
	// is the certifier's whole point.
	Certify map[string]certify.Report
	// Disagreements lists conditions where both tiers reached a decision
	// and the decisions differ — a bug in one of the checkers, always a
	// failure.
	Disagreements []string
	// Exec is the stamped execution, kept for dumping violations.
	Exec *core.Execution
}

// Failures lists the required conditions the episode violated. A search
// that exhausted its budget is inconclusive, not a failure; a
// non-well-formed history always is (the recorder promised a well-formed
// projection).
func (r *Report) Failures() []string {
	var out []string
	if r.WellFormed != nil {
		out = append(out, fmt.Sprintf("history not well-formed: %v", r.WellFormed))
	}
	if !r.Skipped {
		for _, name := range RequiredConditions(r.Engine) {
			res, ok := r.Results[name]
			if !ok {
				continue
			}
			if !res.Satisfied && !res.Exhausted {
				out = append(out, name)
			}
		}
	}
	// The certifier's convictions count whatever the episode size — its
	// Violated verdicts rest on forced constraints only. Unknown is
	// inconclusive, never a failure.
	for _, name := range RequiredConditions(r.Engine) {
		if cr, ok := r.Certify[name]; ok && cr.Verdict == certify.Violated {
			out = append(out, "certify:"+name)
		}
	}
	for _, d := range r.Disagreements {
		out = append(out, "tier disagreement: "+d)
	}
	return out
}

// Inconclusive lists required conditions whose search hit its budget.
func (r *Report) Inconclusive() []string {
	var out []string
	for _, name := range RequiredConditions(r.Engine) {
		if res, ok := r.Results[name]; ok && res.Exhausted {
			out = append(out, name)
		}
	}
	return out
}

// DumpHistory renders the recorded history in the paper's x:v / x(v)
// notation, one transaction per line — the evidence attached to every
// violation.
func (r *Report) DumpHistory() string {
	v := history.FromExecution(r.Exec)
	var b strings.Builder
	fmt.Fprintf(&b, "history of %s episode (pattern=%s seed=%d, %d txns):\n",
		r.Engine, r.Episode.Pattern, r.Episode.Seed, len(v.Txns))
	for _, t := range v.Txns {
		fmt.Fprintf(&b, "  %s@%s [%d,%d]:", t.ID, t.Proc, t.IntervalLo, t.IntervalHi)
		for _, op := range t.Ops {
			fmt.Fprintf(&b, " %s", op)
		}
		status := "A"
		if t.Status == core.TxCommitted {
			status = "C"
		}
		fmt.Fprintf(&b, " %s\n", status)
	}
	return b.String()
}

// Check runs one episode end to end: record, stamp, assert
// well-formedness, run every checker. engineName labels the report and
// selects the expectations.
func Check(factory EngineFactory, engineName string, ep Episode) (*Report, error) {
	ep = ep.withDefaults()
	exec, err := RunEpisode(factory, ep)
	if err != nil {
		return nil, err
	}
	return Evaluate(engineName, ep, exec), nil
}

// Evaluate judges an already-stamped execution: well-formedness, the
// polynomial certifier (always — it scales to load-test histories), the
// exhaustive checker battery (unless oversized), counts, and the
// cross-tier comparison. Split from Check so tests can drive an engine
// by hand and still get a Report.
func Evaluate(engineName string, ep Episode, exec *core.Execution) *Report {
	r := &Report{Engine: engineName, Episode: ep, Exec: exec}
	if werr := history.CheckWellFormed(exec); werr != nil {
		r.WellFormed = werr
	}
	v := history.FromExecution(exec)
	r.Txns = len(v.Txns)
	for _, t := range v.Txns {
		if t.Status == core.TxCommitted {
			r.Committed++
		} else {
			r.Aborted++
		}
	}
	r.Certify = certify.All(certify.FromView(v))
	if r.Txns > maxCheckedTxns {
		r.Skipped = true
		return r
	}
	r.Results = consistency.CheckAll(v)
	// Small episodes run both tiers; where both decided, the verdicts
	// must agree (the certifier's Unknown and an exhausted search are the
	// legitimate abstentions).
	for _, name := range certify.Conditions() {
		res, ok := r.Results[name]
		if !ok || res.Exhausted {
			continue
		}
		cr := r.Certify[name]
		if cr.Verdict == certify.Unknown {
			continue
		}
		if res.Satisfied != (cr.Verdict == certify.Certified) {
			r.Disagreements = append(r.Disagreements, fmt.Sprintf(
				"%s: exhaustive says satisfied=%v, certifier says %s via %s",
				name, res.Satisfied, cr.Verdict, cr.Method))
		}
	}
	return r
}
