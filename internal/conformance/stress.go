package conformance

import (
	"fmt"
	"math/rand"

	"pcltm/internal/workload"
	"pcltm/stm"
)

// StressConfig sizes a conformance sweep.
type StressConfig struct {
	// Episodes is the number of episodes per engine × pattern cell
	// (default 4).
	Episodes int
	// Seed derives every episode's seed deterministically (default 1).
	Seed int64
	// Engines are the engines to sweep (default: every registered kind).
	Engines []stm.EngineKind
	// Patterns are the contention shapes (default: every pattern).
	Patterns []workload.Pattern
}

func (c StressConfig) withDefaults() StressConfig {
	if c.Episodes == 0 {
		c.Episodes = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Engines == nil {
		c.Engines = stm.EngineKinds()
	}
	if c.Patterns == nil {
		c.Patterns = workload.Patterns()
	}
	return c
}

// StressSummary aggregates a sweep.
type StressSummary struct {
	// Reports holds every episode's verdict in sweep order.
	Reports []*Report
	// Episodes, Checked, Skipped and Inconclusive count the sweep:
	// Skipped episodes grew past the checker size bound, Inconclusive
	// ones hit a search budget on a required condition.
	Episodes, Checked, Skipped, Inconclusive int
	// Failures holds one formatted entry per violated episode, history
	// dump included.
	Failures []string
}

// Stress runs the seeded conformance sweep: engines × patterns ×
// episodes, each episode's shape drawn deterministically from the
// config seed. Errors from the harness itself (not violations) are
// returned; violations land in the summary.
func Stress(cfg StressConfig) (*StressSummary, error) {
	cfg = cfg.withDefaults()
	sum := &StressSummary{}
	for _, kind := range cfg.Engines {
		for _, pat := range cfg.Patterns {
			for i := 0; i < cfg.Episodes; i++ {
				ep := episodeShape(cfg.Seed, kind.String(), pat, i)
				rep, err := Check(Factory(kind), kind.String(), ep)
				if err != nil {
					return nil, fmt.Errorf("stress %s/%s #%d: %w", kind, pat, i, err)
				}
				sum.add(rep)
			}
		}
	}
	return sum, nil
}

// add folds one report into the summary.
func (s *StressSummary) add(rep *Report) {
	s.Reports = append(s.Reports, rep)
	s.Episodes++
	switch {
	case rep.Skipped:
		s.Skipped++
	default:
		s.Checked++
	}
	if len(rep.Inconclusive()) > 0 {
		s.Inconclusive++
	}
	if fails := rep.Failures(); len(fails) > 0 {
		s.Failures = append(s.Failures, fmt.Sprintf(
			"%s/%s seed=%d violated %v\n%s",
			rep.Engine, rep.Episode.Pattern, rep.Episode.Seed, fails, rep.DumpHistory()))
	}
}

// episodeShape derives one episode's dimensions deterministically from
// the sweep seed and the cell coordinates. Shapes stay small on purpose:
// the checkers are exhaustive, and commits plus conflict-aborted attempts
// must fit under maxCheckedTxns for the episode to count as checked.
// Odd episodes run boxed (TVar[any]), even ones on the raw-word path, so
// every sweep checks both value pipelines of every engine.
func episodeShape(seed int64, engine string, pat workload.Pattern, i int) Episode {
	h := int64(0)
	for _, c := range engine {
		h = h*131 + int64(c)
	}
	r := rand.New(rand.NewSource(seed + h + int64(pat)*10_007 + int64(i)*104_729))
	return Episode{
		Pattern:       pat,
		Workers:       2 + r.Intn(2),     // 2..3
		TxnsPerWorker: 1 + r.Intn(2),     // 1..2
		OpsPerTxn:     2 + r.Intn(3),     // 2..4
		Vars:          4 + r.Intn(7),     // 4..10
		WriteFrac:     30 + 10*r.Intn(4), // 30..60
		Boxed:         i%2 == 1,
		Seed:          seed + int64(i)*31 + h%1000 + 1,
	}
}
