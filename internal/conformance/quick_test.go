package conformance

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pcltm/internal/history"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// quickEpisode is a randomly drawn (engine, episode) pair for the
// well-formedness property.
type quickEpisode struct {
	Kind stm.EngineKind
	Ep   Episode
}

// Generate draws a small random workload shape — sizes may exceed the
// checker bound (well-formedness is linear, so bigger is fine here).
func (quickEpisode) Generate(r *rand.Rand, size int) reflect.Value {
	kinds := stm.EngineKinds()
	q := quickEpisode{
		Kind: kinds[r.Intn(len(kinds))],
		Ep: Episode{
			Pattern:       workload.Patterns()[r.Intn(len(workload.Patterns()))],
			Workers:       1 + r.Intn(4),
			TxnsPerWorker: 1 + r.Intn(4),
			OpsPerTxn:     1 + r.Intn(5),
			Vars:          1 + r.Intn(12),
			WriteFrac:     10 + r.Intn(80),
			Seed:          1 + r.Int63n(1_000_000),
		},
	}
	return reflect.ValueOf(q)
}

// TestRecorderHistoriesWellFormed is the recorder's core contract as a
// property: for every engine under every random small concurrent
// workload, the stamped history is well-formed in the paper's sense —
// alternating invocation/response per transaction starting with
// begin·ok, every transaction ending in exactly one C_T or A_T, nothing
// after it. If stamping ever interleaves one transaction's events or
// drops a response, this is the test that goes off.
func TestRecorderHistoriesWellFormed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 12
	}
	property := func(q quickEpisode) bool {
		exec, err := RunEpisode(Factory(q.Kind), q.Ep)
		if err != nil {
			t.Logf("%s %+v: harness error: %v", q.Kind, q.Ep, err)
			return false
		}
		if werr := history.CheckWellFormed(exec); werr != nil {
			t.Logf("%s %+v: %v", q.Kind, q.Ep, werr)
			return false
		}
		// Ticket stamps are unique, so no two steps collapsed.
		v := history.FromExecution(exec)
		for _, txn := range v.Txns {
			if txn.BeginIndex < 0 || txn.IntervalHi < txn.IntervalLo {
				t.Logf("%s %+v: %s has a degenerate interval", q.Kind, q.Ep, txn.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
