package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/stm"
	"pcltm/store"
)

// Stitching: the cross-partition extension of the structure layer.
//
// The per-partition histories of structures.go deliberately cannot see
// a cross-partition atomicity bug — each partition's history shows its
// own half of a cross transaction as a perfectly ordinary local
// transaction. The stitched history closes that blind spot: every store
// operation, single-partition get/put AND multi-partition Cross alike,
// becomes ONE transaction over the whole keyspace, carrying all of its
// reads (with observed values) and writes, bracketed in real time by
// tickets. A correct store linearizes cross transactions against all
// single-partition traffic (the footprint's exclusive locks), so the
// stitched history must be strictly serializable. A store that applies
// half a cross — the planted BreakCrossForTest bug — leaks a state in
// which one participant's write is visible and another's is not, and no
// real-time-respecting serial order of whole transactions justifies the
// reads that observe it: the checkers convict.

// CrossEpisode sizes one stitched episode: a StructEpisode plus the
// cross-transaction mix.
type CrossEpisode struct {
	StructEpisode
	// CrossFrac is the chance an op is a cross-partition transaction, in
	// percent (default 30).
	CrossFrac int
}

func (ep CrossEpisode) withDefaults() CrossEpisode {
	ep.StructEpisode = ep.StructEpisode.withDefaults()
	if ep.CrossFrac == 0 {
		ep.CrossFrac = 30
	}
	return ep
}

// stitchOp is one completed keyspace-level transaction — single-key or
// cross-partition — with its ticket bracket. Reads carry the values the
// committed run observed.
type stitchOp struct {
	proc            int
	begin, mid, end uint64
	ops             []core.TxOp
}

// RunCrossEpisode records one stitched keyspace-level history of a
// partitioned store driven by a mix of single-partition ops and
// cross-partition transactions. Each cross transaction reads two keys
// in distinct partitions and writes fresh unique values under both, and
// is stitched into the history as one multi-key transaction.
func RunCrossEpisode(kind stm.EngineKind, ep CrossEpisode) *core.Execution {
	ep = ep.withDefaults()
	s := store.New[int64, int64](store.Config{
		Partitions: ep.Partitions,
		Engine:     kind,
		Buckets:    8,
	})
	return runStitchedOps(s, ep)
}

// runStitchedOps drives the episode's op mix concurrently against s,
// ticketing each transaction's real-time bracket.
func runStitchedOps(s *store.Store[int64, int64], ep CrossEpisode) *core.Execution {
	var tickets atomic.Uint64
	var values atomic.Int64 // unique positive write values; 0 stays "absent"
	ops := make([][]stitchOp, ep.Workers)
	var wg sync.WaitGroup
	for w := 0; w < ep.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(ep.Seed + int64(w)*7919))
			for i := 0; i < ep.OpsPerWorker; i++ {
				op := stitchOp{proc: w}
				if r.Intn(100) < ep.CrossFrac && ep.Keys >= 2 {
					ka := 1 + int64(r.Intn(ep.Keys))
					kb := 1 + int64(r.Intn(ep.Keys))
					if kb == ka {
						kb = 1 + ka%int64(ep.Keys)
					}
					va, vb := values.Add(1), values.Add(1)
					op.begin = tickets.Add(1)
					var ra, rb int64
					if err := s.Cross(func(ct *store.CrossTx[int64, int64]) error {
						// Re-executed per round; the committed run's
						// reads overwrite the discovery run's.
						ra, _ = ct.Get(ka)
						rb, _ = ct.Get(kb)
						ct.Put(ka, va)
						ct.Put(kb, vb)
						return nil
					}); err != nil {
						continue
					}
					op.ops = []core.TxOp{
						core.R(stitchItem(ka)), core.R(stitchItem(kb)),
						core.W(stitchItem(ka), core.Value(va)),
						core.W(stitchItem(kb), core.Value(vb)),
					}
					op.ops[0].Value = core.Value(ra)
					op.ops[1].Value = core.Value(rb)
				} else {
					k := 1 + int64(r.Intn(ep.Keys))
					op.begin = tickets.Add(1)
					if r.Intn(100) < ep.PutFrac {
						v := values.Add(1)
						s.Put(k, v)
						op.ops = []core.TxOp{core.W(stitchItem(k), core.Value(v))}
					} else {
						v, _ := s.Get(k)
						rd := core.R(stitchItem(k))
						rd.Value = core.Value(v)
						op.ops = []core.TxOp{rd}
					}
				}
				op.mid = tickets.Add(1)
				op.end = tickets.Add(1)
				ops[w] = append(ops[w], op)
			}
		}(w)
	}
	wg.Wait()
	var all []stitchOp
	for _, ws := range ops {
		all = append(all, ws...)
	}
	return buildStitchedExecution(all, ep.Workers)
}

func stitchItem(k int64) core.Item { return core.Item(fmt.Sprintf("k%d", k)) }

// buildStitchedExecution projects completed stitched transactions into
// a core.Execution: one committed transaction per operation, all of its
// reads and writes at the mid ticket, interval from the begin/end
// bracket. Soundness mirrors buildStructExecution's: the bracket
// tickets are taken outside the transaction, so every projected
// real-time precedence actually happened.
func buildStitchedExecution(sops []stitchOp, nprocs int) *core.Execution {
	sort.Slice(sops, func(i, j int) bool { return sops[i].begin < sops[j].begin })
	b := exectest.New().NProcs(nprocs)
	type ev struct {
		seq  uint64
		kind momentKind
		txn  core.TxID
		op   stitchOp
	}
	var evs []ev
	for i, op := range sops {
		txn := core.TxID(i + 1)
		spec := core.TxSpec{ID: txn, Proc: core.ProcID(op.proc), Ops: op.ops}
		b.Spec(spec)
		evs = append(evs,
			ev{seq: op.begin, kind: momentBegin, txn: txn, op: op},
			ev{seq: op.mid, kind: momentOp, txn: txn, op: op},
			ev{seq: op.end, kind: momentEnd, txn: txn, op: op})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for _, e := range evs {
		p := core.ProcID(e.op.proc)
		switch e.kind {
		case momentBegin:
			b.Begin(p, e.txn)
		case momentOp:
			for _, o := range e.op.ops {
				if o.Kind == core.OpWrite {
					b.Write(p, e.txn, o.Item, o.Value)
				} else {
					b.Read(p, e.txn, o.Item, o.Value)
				}
			}
		case momentEnd:
			b.Commit(p, e.txn)
		}
	}
	return b.Exec()
}

// ConvictHalfAppliedCross is the stitching checker's self-test,
// mirroring ConvictAliasedTMap: it drives a store broken with
// BreakCrossForTest — every Cross silently drops the share routed to
// one partition — through a deterministic sequential history and
// returns the Evaluate report, which must convict. The history seeds
// a=10 and b=20 (keys in distinct partitions), runs one cross
// transaction claiming to write a=11 and b=21 (b's share vanishes),
// then reads a (sees 11) and b (sees 20, the stale seed). Real time
// forces the cross before the read of a, hence before the read of b —
// which must then see 21. No serialization of whole transactions
// justifies the stale read; a checker that cannot flag this fixture
// would be vacuous on real half-applied-cross bugs.
func ConvictHalfAppliedCross() *Report {
	s := store.New[int64, int64](store.Config{Partitions: 2, Buckets: 8})
	// Two keys in distinct partitions.
	a := int64(1)
	b := a + 1
	for s.PartitionOf(b) == s.PartitionOf(a) {
		b++
	}
	s.BreakCrossForTest(s.PartitionOf(b))

	var tickets atomic.Uint64
	var sops []stitchOp
	rec := func(ops ...core.TxOp) *stitchOp {
		sops = append(sops, stitchOp{begin: tickets.Add(1), ops: ops})
		return &sops[len(sops)-1]
	}
	fin := func(op *stitchOp) {
		op.mid = tickets.Add(1)
		op.end = tickets.Add(1)
	}

	op := rec(core.W(stitchItem(a), 10))
	s.Put(a, 10)
	fin(op)
	op = rec(core.W(stitchItem(b), 20))
	s.Put(b, 20)
	fin(op)
	op = rec(core.W(stitchItem(a), 11), core.W(stitchItem(b), 21))
	_ = s.Cross(func(ct *store.CrossTx[int64, int64]) error {
		ct.Put(a, 11)
		ct.Put(b, 21) // silently dropped by the planted bug
		return nil
	})
	fin(op)
	va, _ := s.Get(a)
	rd := core.R(stitchItem(a))
	rd.Value = core.Value(va)
	op = rec(rd)
	fin(op)
	vb, _ := s.Get(b)
	rd = core.R(stitchItem(b))
	rd.Value = core.Value(vb)
	op = rec(rd)
	fin(op)

	exec := buildStitchedExecution(sops, 1)
	return Evaluate("half-cross", Episode{Seed: 1}, exec)
}
