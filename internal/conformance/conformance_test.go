package conformance

import (
	"strings"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// TestStressAllEngines is the acceptance gate of the conformance
// subsystem: every production engine, across every contention pattern,
// under the seeded concurrent stress driver, must satisfy its required
// consistency conditions on every recorded history (tl2/tl2s/adaptive:
// opacity and everything weaker; twopl: strict serializability down;
// glock: everything). Run under -race in CI.
func TestStressAllEngines(t *testing.T) {
	episodes := 4
	if testing.Short() {
		episodes = 2
	}
	sum, err := Stress(StressConfig{Episodes: episodes, Seed: 1})
	if err != nil {
		t.Fatalf("stress harness error: %v", err)
	}
	for _, f := range sum.Failures {
		t.Errorf("conformance violation:\n%s", f)
	}
	if sum.Checked == 0 {
		t.Fatalf("no episode was small enough to check (%d skipped)", sum.Skipped)
	}
	// The sweep must actually cover the whole matrix.
	want := len(stm.EngineKinds()) * len(workload.Patterns()) * episodes
	if sum.Episodes != want {
		t.Errorf("swept %d episodes, want %d", sum.Episodes, want)
	}
	if sum.Skipped > sum.Episodes/2 {
		t.Errorf("%d of %d episodes oversized — shapes need retuning", sum.Skipped, sum.Episodes)
	}
	t.Logf("episodes=%d checked=%d skipped=%d inconclusive=%d",
		sum.Episodes, sum.Checked, sum.Skipped, sum.Inconclusive)
}

// TestStressDeterministicShapes: the same seed derives the same episode
// shapes, the contract that makes failures replayable.
func TestStressDeterministicShapes(t *testing.T) {
	a := episodeShape(7, "tl2", workload.Zipf, 3)
	b := episodeShape(7, "tl2", workload.Zipf, 3)
	if a != b {
		t.Fatalf("episode shape not deterministic: %+v vs %+v", a, b)
	}
	c := episodeShape(8, "tl2", workload.Zipf, 3)
	if a == c {
		t.Errorf("different sweep seeds produced identical shapes")
	}
}

// TestBrokenEngineCaught drives the deliberately inconsistent test engine
// through the harness: a single process reads x, commits a write to x,
// reads x again — the stale cache serves the old value, and the checkers
// must convict. Serializability alone stays satisfied (the stale read can
// be serialized before the write), which is exactly why the harness runs
// the whole battery: the real-time and per-process conditions are the
// ones that see the lie.
func TestBrokenEngineCaught(t *testing.T) {
	rec := stm.NewRecorder()
	eng := stm.NewBrokenEngineForTest(stm.WithRecorder(rec))
	x := stm.NewTVar[int64](0)
	items := map[uint64]core.Item{x.ID(): "x"}

	read := func() {
		_ = eng.AtomicallyAs(0, func(tx *stm.Tx) error {
			stm.Get(tx, x)
			return nil
		})
	}
	read() // primes the stale cache with x=0
	_ = eng.AtomicallyAs(0, func(tx *stm.Tx) error {
		stm.Set(tx, x, 101)
		return nil
	})
	read() // observes the stale 0: the committed write is lost

	exec, err := Stamp(rec.Take(), func(id uint64) (core.Item, bool) {
		s, ok := items[id]
		return s, ok
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate("broken", Episode{Seed: 1}, exec)
	if rep.WellFormed != nil {
		t.Fatalf("stamped history not well-formed: %v", rep.WellFormed)
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("harness did not catch the broken engine:\n%s", rep.DumpHistory())
	}
	for _, must := range []string{"opacity", "strict-serializability", "pram"} {
		if res, ok := rep.Results[must]; !ok || res.Satisfied {
			t.Errorf("%s should be violated by the stale read\n%s", must, rep.DumpHistory())
		}
	}
	if res := rep.Results["serializability"]; !res.Satisfied {
		t.Errorf("plain serializability should still hold (stale read serializes first)")
	}
	t.Logf("broken engine convicted of %v", fails)
}

// TestBrokenEngineCaughtByStressPath routes the broken engine through the
// same Check entry point the stress driver uses, so the detection isn't
// an artifact of the hand-driven history above.
func TestBrokenEngineCaughtByStressPath(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		rep, err := Check(stm.NewBrokenEngineForTest, "broken", Episode{
			Pattern: workload.Zipf, Workers: 2, TxnsPerWorker: 2,
			OpsPerTxn: 3, Vars: 2, WriteFrac: 50, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Failures()) > 0 {
			caught = true
			t.Logf("seed %d convicted: %v", seed, rep.Failures())
		}
	}
	if !caught {
		t.Errorf("six seeded episodes on a 2-variable hot set never caught the stale-read engine")
	}
}

// TestReportDumpNotation: the violation dump speaks the paper's x:v /
// x(v) language.
func TestReportDumpNotation(t *testing.T) {
	rep, err := Check(Factory(stm.EngineGlobalLock), "glock", Episode{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dump := rep.DumpHistory()
	if !strings.Contains(dump, "T1@p") {
		t.Errorf("dump lacks transaction/process labels:\n%s", dump)
	}
	if !strings.Contains(dump, "(") && !strings.Contains(dump, ":") {
		t.Errorf("dump lacks x:v / x(v) op notation:\n%s", dump)
	}
}

// TestRequiredConditionsShape pins the expectation table: twopl is the
// only engine excused from opacity, and every production engine owes
// strict serializability.
func TestRequiredConditionsShape(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		req := RequiredConditions(kind.String())
		if len(req) == 0 {
			t.Fatalf("%s has no required conditions", kind)
		}
		hasSS, hasOpacity := false, false
		for _, name := range req {
			hasSS = hasSS || name == "strict-serializability"
			hasOpacity = hasOpacity || name == "opacity"
		}
		if !hasSS {
			t.Errorf("%s not required to be strictly serializable", kind)
		}
		if hasOpacity == (kind == stm.EngineTwoPL) {
			t.Errorf("%s opacity requirement wrong: got %v", kind, hasOpacity)
		}
	}
	if RequiredConditions("no-such-engine") != nil {
		t.Errorf("unknown engines must carry no expectations")
	}
}
