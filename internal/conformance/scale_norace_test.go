//go:build !race

package conformance

import (
	"testing"

	"pcltm/internal/certify"
	"pcltm/stm"
)

// Full-size scale tier: the ISSUE's acceptance numbers (~10k-txn
// convictions, a ≥100k-txn certification in seconds). The race detector
// multiplies both the drivers' and the certifier's constants, so these
// run only in the plain test matrix; scale_test.go keeps -race-sized
// variants of the same drivers.

func TestCertifierConvictsBrokenEngineFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale conviction is not -short sized")
	}
	rep := runBrokenAtScale(t, 8, 1250) // ~10k committed transactions
	if rep.Txns < 10_000 {
		t.Fatalf("history too small: %d txns", rep.Txns)
	}
	requireCertifyConviction(t, rep,
		certify.Serializability, certify.StrictSerializability, certify.SnapshotIsolation)
}

func TestCertifierConvictsAliasedTMapFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale conviction is not -short sized")
	}
	rep := runAliasedTMapAtScale(t, 10_001)
	if rep.Txns < 10_000 {
		t.Fatalf("history too small: %d txns", rep.Txns)
	}
	requireCertifyConviction(t, rep,
		certify.StrictSerializability, certify.SnapshotIsolation)
}

func TestCertifierHonestEngineHundredK(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-txn certification is not -short sized")
	}
	reps, n := runHonestAtScale(t, stm.EngineTL2, 8, 12_500, 16)
	if n < 100_000 {
		t.Fatalf("history too small: %d txns", n)
	}
	requireAllCertified(t, reps)
}
