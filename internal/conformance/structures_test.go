package conformance

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/stm"
)

// TestStructTMapHistoriesConform records structure-level TMap histories
// on every engine and checks each against the engine's required
// conditions — a correct map over a correct engine linearizes its
// operations, so every history must pass.
func TestStructTMapHistoriesConform(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			for i := 0; i < 3; i++ {
				ep := structShape(7, kind.String(), i)
				exec := RunTMapEpisode(kind, ep)
				rep := Evaluate(kind.String(), Episode{Seed: ep.Seed}, exec)
				if fails := rep.Failures(); len(fails) > 0 {
					t.Fatalf("TMap history #%d violated %v\n%s", i, fails, rep.DumpHistory())
				}
			}
		})
	}
}

// TestStructStoreHistoriesConform records store episodes on every
// engine and checks the structure-level history AND every partition's
// TVar-level history — the per-partition opacity assertion of the
// partitioned-store design.
func TestStructStoreHistoriesConform(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			checkedPartitions := 0
			for i := 0; i < 3; i++ {
				ep := structShape(11, kind.String(), i)
				res, err := RunStoreEpisode(kind, ep)
				if err != nil {
					t.Fatal(err)
				}
				rep := Evaluate(kind.String(), Episode{Seed: ep.Seed}, res.StoreLevel)
				if fails := rep.Failures(); len(fails) > 0 {
					t.Fatalf("store-level history #%d violated %v\n%s", i, fails, rep.DumpHistory())
				}
				if len(res.Partitions) != ep.withDefaults().Partitions {
					t.Fatalf("episode recorded %d partition histories, want %d",
						len(res.Partitions), ep.withDefaults().Partitions)
				}
				for p, pexec := range res.Partitions {
					prep := Evaluate(kind.String(), Episode{Seed: ep.Seed}, pexec)
					if fails := prep.Failures(); len(fails) > 0 {
						t.Fatalf("partition %d TVar history #%d violated %v\n%s",
							p, i, fails, prep.DumpHistory())
					}
					if !prep.Skipped {
						checkedPartitions++
					}
				}
			}
			if checkedPartitions == 0 {
				t.Fatalf("every partition history skipped as oversized; the per-partition assertion is vacuous")
			}
		})
	}
}

// TestConvictAliasedTMap is the structure layer's planted-bug
// self-test: the checkers must flag the aliased chain-dropping TMap, or
// the harness could not catch a real structure bug of the same shape.
func TestConvictAliasedTMap(t *testing.T) {
	rep := ConvictAliasedTMap()
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("aliased TMap fixture passed every checker; harness self-test failed\n%s", rep.DumpHistory())
	}
	// The conviction must include a real-time condition: the lost key is
	// serializable (read moved first) but never strictly serializable.
	seen := map[string]bool{}
	for _, f := range fails {
		seen[f] = true
	}
	t.Logf("aliased fixture convicted of: %v", fails)
}

// TestStressStructures runs the full seeded structure sweep — the same
// entry point tmcheck -live uses — and requires a clean bill for the
// real engines plus a conviction of the planted fixture.
func TestStressStructures(t *testing.T) {
	if testing.Short() {
		t.Skip("structure sweep is the long self-test; run without -short")
	}
	sum, err := StressStructures(StructStressConfig{Episodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) > 0 {
		t.Fatalf("structure sweep recorded %d violation(s):\n%s", len(sum.Failures), sum.Failures[0])
	}
	if !sum.AliasedConvicted {
		t.Fatal("planted aliased fixture was not convicted; the sweep's self-test failed")
	}
	if sum.PartitionHistories == 0 || sum.Checked == 0 {
		t.Fatalf("sweep checked %d histories (%d per-partition); expected real coverage",
			sum.Checked, sum.PartitionHistories)
	}
	t.Logf("structures sweep: %d histories (%d map, %d store, %d partition), %d checked, %d skipped, %d inconclusive",
		sum.Episodes, sum.MapHistories, sum.StoreHistories, sum.PartitionHistories,
		sum.Checked, sum.Skipped, sum.Inconclusive)
}

// TestStampInterned pins the interner's contract directly: integers
// pass through, typed-nil pointers map to the initial value 0, distinct
// pointers get distinct negative ids, equal pointers the same id.
func TestStampInterned(t *testing.T) {
	rec := stm.NewRecorder()
	eng := stm.NewEngine(stm.EngineGlobalLock, stm.WithRecorder(rec))
	type node struct{ v int }
	n1, n2 := &node{1}, &node{2}
	link := stm.NewTVar[*node](nil)
	payload := stm.NewTVar[int64](0)
	_ = eng.Atomically(func(tx *stm.Tx) error {
		if stm.Get(tx, link) != nil { // reads typed nil → must intern to 0
			t.Error("fresh link TVar not nil")
		}
		stm.Set(tx, link, n1)
		stm.Set(tx, payload, 42)
		return nil
	})
	_ = eng.Atomically(func(tx *stm.Tx) error {
		if stm.Get(tx, link) != n1 { // reads n1 → same id as the write of n1
			t.Error("link did not hold n1")
		}
		stm.Set(tx, link, n2)
		return nil
	})
	exec, err := StampInterned(rec.Take(), func(id uint64) (core.Item, bool) {
		switch id {
		case link.ID():
			return "link", true
		case payload.ID():
			return "payload", true
		}
		return "", false
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate("glock", Episode{Seed: 1}, exec)
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("interned pointer history violated %v\n%s", fails, rep.DumpHistory())
	}
}
