package conformance

import (
	"testing"

	"pcltm/stm"
)

// TestStitchedHistoriesConform records stitched keyspace-level
// histories — single-partition ops mixed with cross-partition
// transactions — on every engine: a correct store linearizes cross
// transactions against all other traffic, so every stitched history
// must pass the checkers.
func TestStitchedHistoriesConform(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			for i := 0; i < 3; i++ {
				ep := CrossEpisode{StructEpisode: structShape(13, kind.String(), i)}
				exec := RunCrossEpisode(kind, ep)
				rep := Evaluate(kind.String(), Episode{Seed: ep.Seed}, exec)
				if fails := rep.Failures(); len(fails) > 0 {
					t.Fatalf("stitched history #%d violated %v\n%s", i, fails, rep.DumpHistory())
				}
			}
		})
	}
}

// TestConvictHalfAppliedCross is the self-test's test: the planted
// half-applied-cross store must be convicted, and the conviction must
// come from a checked (not skipped) history.
func TestConvictHalfAppliedCross(t *testing.T) {
	rep := ConvictHalfAppliedCross()
	if rep.Skipped {
		t.Fatal("half-applied-cross fixture skipped, not checked")
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatalf("half-applied-cross fixture NOT convicted\n%s", rep.DumpHistory())
	}
	t.Logf("convicted: %v", fails)
}
