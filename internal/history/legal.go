package history

import (
	"fmt"

	"pcltm/internal/core"
)

// Block is one transaction's contribution to a candidate sequential
// history: either a full transaction H|T, or one of the derived fragments
// Tgr (global reads only) / Tw (writes only) used by snapshot isolation and
// weak adaptive consistency. All blocks in a candidate history are treated
// as committed (the definitions append commit events to the fragments).
type Block struct {
	// Txn identifies the contributing transaction.
	Txn core.TxID
	// Ops is the fragment's operation sequence.
	Ops []Op
	// CheckReads says whether this block's reads must be validated.
	// Processor consistency and weak adaptive consistency only require
	// legality for the transactions of the view-owning process; blocks of
	// other processes still contribute their writes but their reads are
	// unconstrained.
	CheckReads bool
	// Ephemeral keeps the block's writes visible to its own later reads
	// (legality rule (i)) but invisible to every following block — the
	// shape of an aborted or excluded transaction under opacity, whose
	// reads must still be legal while its writes publish nothing.
	Ephemeral bool
}

// IllegalRead pinpoints the first legality violation in a candidate
// sequential history.
type IllegalRead struct {
	// Txn is the reading transaction.
	Txn core.TxID
	// Item is the item read.
	Item core.Item
	// Got is the value the read returned in the execution.
	Got core.Value
	// Want is the value legality forces at that position.
	Want core.Value
	// BlockIndex is the offending block's position in the candidate.
	BlockIndex int
}

func (e *IllegalRead) Error() string {
	return fmt.Sprintf("illegal read in block %d: %s read %s and got %d, legality forces %d",
		e.BlockIndex, e.Txn, e.Item, e.Got, e.Want)
}

// CheckLegal validates a candidate sequential history block by block,
// following the paper's legality definition: a read of x returns (i) the
// last value the same block wrote to x, if any; otherwise (ii) the last
// value written to x by a preceding (committed) block; otherwise (iii) the
// initial value 0. It returns nil if the candidate is legal.
func CheckLegal(blocks []Block) *IllegalRead {
	last := make(map[core.Item]core.Value) // last committed write per item
	for bi, b := range blocks {
		local := make(map[core.Item]core.Value)
		for _, op := range b.Ops {
			switch op.Kind {
			case core.OpWrite:
				local[op.Item] = op.Value
			case core.OpRead:
				if !b.CheckReads {
					continue
				}
				want, ok := local[op.Item]
				if !ok {
					want, ok = last[op.Item]
					if !ok {
						want = core.InitialValue
					}
				}
				if op.Value != want {
					return &IllegalRead{
						Txn: b.Txn, Item: op.Item,
						Got: op.Value, Want: want, BlockIndex: bi,
					}
				}
			}
		}
		if !b.Ephemeral {
			for x, v := range local {
				last[x] = v
			}
		}
	}
	return nil
}

// LegalPrefix carries the incremental legality state of a growing
// sequential-history prefix: the last committed write per item so far. The
// checker searches extend candidates block by block and backtrack, so
// incremental validation with cloning is their inner loop.
type LegalPrefix struct {
	last map[core.Item]core.Value
}

// NewLegalPrefix returns the state of the empty prefix.
func NewLegalPrefix() *LegalPrefix {
	return &LegalPrefix{last: make(map[core.Item]core.Value)}
}

// Clone copies the state for backtracking.
func (s *LegalPrefix) Clone() *LegalPrefix {
	c := NewLegalPrefix()
	for x, v := range s.last {
		c.last[x] = v
	}
	return c
}

// Append extends the prefix with b, validating its reads when requested;
// it reports whether the extended prefix is still legal. On failure the
// state is unspecified and must be discarded.
func (s *LegalPrefix) Append(b Block) bool {
	local := make(map[core.Item]core.Value)
	for _, op := range b.Ops {
		switch op.Kind {
		case core.OpWrite:
			local[op.Item] = op.Value
		case core.OpRead:
			if !b.CheckReads {
				continue
			}
			want, ok := local[op.Item]
			if !ok {
				want, ok = s.last[op.Item]
				if !ok {
					want = core.InitialValue
				}
			}
			if op.Value != want {
				return false
			}
		}
	}
	if !b.Ephemeral {
		for x, v := range local {
			s.last[x] = v
		}
	}
	return true
}

// AppendBlocks validates a whole block sequence incrementally; it must
// agree with CheckLegal.
func AppendBlocks(blocks []Block) bool {
	s := NewLegalPrefix()
	for _, b := range blocks {
		if !s.Append(b) {
			return false
		}
	}
	return true
}

// FullBlock builds the H|T block of a transaction (all its reads and
// writes, reads validated).
func FullBlock(t *Txn) Block {
	return Block{Txn: t.ID, Ops: t.Ops, CheckReads: true}
}

// GRBlock builds T_gr: the global-read fragment. The second return is
// false when the fragment is empty (T performed no global read), in which
// case the definitions set Tgr = λ and no block is inserted.
func GRBlock(t *Txn, checkReads bool) (Block, bool) {
	ops := t.GlobalReads()
	return Block{Txn: t.ID, Ops: ops, CheckReads: checkReads}, len(ops) > 0
}

// WBlock builds T_w: the write fragment; false when T wrote nothing.
func WBlock(t *Txn) (Block, bool) {
	ops := t.Writes()
	return Block{Txn: t.ID, Ops: ops}, len(ops) > 0
}
