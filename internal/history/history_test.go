package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pcltm/internal/core"
)

// execBuilder assembles executions event by event for tests.
type execBuilder struct {
	steps []core.Step
}

func (b *execBuilder) ev(proc core.ProcID, txn core.TxID, ev core.Event) *execBuilder {
	e := ev
	e.Proc = proc
	e.Txn = txn
	e.StepIndex = len(b.steps)
	b.steps = append(b.steps, core.Step{
		Index: e.StepIndex, Proc: proc, Txn: txn, Obj: core.NoObj,
		Prim: core.PrimEvent, Event: &e,
	})
	return b
}

func (b *execBuilder) obj(proc core.ProcID, txn core.TxID, name string, changed bool) *execBuilder {
	b.steps = append(b.steps, core.Step{
		Index: len(b.steps), Proc: proc, Txn: txn, Obj: 0, ObjName: name,
		Prim: core.PrimWrite, Changed: changed,
	})
	return b
}

func (b *execBuilder) begin(p core.ProcID, t core.TxID) *execBuilder {
	return b.ev(p, t, core.Event{Op: core.OpBegin, Inv: true}).
		ev(p, t, core.Event{Op: core.OpBegin, Status: core.StatusOK})
}

func (b *execBuilder) read(p core.ProcID, t core.TxID, x core.Item, v core.Value) *execBuilder {
	return b.ev(p, t, core.Event{Op: core.OpRead, Inv: true, Item: x}).
		ev(p, t, core.Event{Op: core.OpRead, Item: x, Value: v, Status: core.StatusOK})
}

func (b *execBuilder) write(p core.ProcID, t core.TxID, x core.Item, v core.Value) *execBuilder {
	return b.ev(p, t, core.Event{Op: core.OpWrite, Inv: true, Item: x, Value: v}).
		ev(p, t, core.Event{Op: core.OpWrite, Item: x, Value: v, Status: core.StatusOK})
}

func (b *execBuilder) commit(p core.ProcID, t core.TxID) *execBuilder {
	return b.ev(p, t, core.Event{Op: core.OpTryCommit, Inv: true}).
		ev(p, t, core.Event{Op: core.OpTryCommit, Status: core.StatusCommitted})
}

func (b *execBuilder) commitInv(p core.ProcID, t core.TxID) *execBuilder {
	return b.ev(p, t, core.Event{Op: core.OpTryCommit, Inv: true})
}

func (b *execBuilder) exec() *core.Execution {
	return &core.Execution{Steps: b.steps, Specs: map[core.TxID]core.TxSpec{}, NProcs: 8}
}

func TestFromExecutionBasics(t *testing.T) {
	b := &execBuilder{}
	b.begin(0, 1).
		read(0, 1, "x", 0).
		write(0, 1, "x", 5).
		read(0, 1, "x", 5). // local read: preceded by own write
		write(0, 1, "y", 1).
		commit(0, 1).
		begin(1, 2).
		read(1, 2, "y", 1).
		commitInv(1, 2)
	v := FromExecution(b.exec())
	if len(v.Txns) != 2 {
		t.Fatalf("txns = %d", len(v.Txns))
	}
	t1 := v.ByID(1)
	if t1 == nil || t1.Status != core.TxCommitted {
		t.Fatalf("T1 = %+v", t1)
	}
	if len(t1.Ops) != 4 {
		t.Fatalf("T1 ops = %v", t1.Ops)
	}
	if !t1.Ops[0].Global {
		t.Errorf("first read of x must be global")
	}
	if t1.Ops[2].Global {
		t.Errorf("read of x after own write must be local")
	}
	gr := t1.GlobalReads()
	if len(gr) != 1 || gr[0].Item != "x" || gr[0].Value != 0 {
		t.Errorf("T1 global reads = %v", gr)
	}
	w := t1.Writes()
	if len(w) != 2 || w[0].Item != "x" || w[1].Item != "y" {
		t.Errorf("T1 writes = %v", w)
	}
	if !t1.WritesItem("y") || t1.WritesItem("z") {
		t.Errorf("WritesItem misclassifies")
	}
	t2 := v.ByID(2)
	if t2.Status != core.TxCommitPending {
		t.Errorf("T2 status = %v", t2.Status)
	}
	if len(v.Committed()) != 1 || len(v.CommitPending()) != 1 {
		t.Errorf("committed/pending split wrong")
	}
	if v.Txns[0].ID != 1 || v.Txns[1].ID != 2 {
		t.Errorf("begin order not respected: %v %v", v.Txns[0].ID, v.Txns[1].ID)
	}
}

func TestFromExecutionIntervals(t *testing.T) {
	b := &execBuilder{}
	b.begin(0, 1)           // steps 0..1
	b.obj(0, 1, "o1", true) // step 2
	b.begin(1, 2)           // steps 3..4
	b.obj(0, 1, "o2", true) // step 5
	b.commit(0, 1)          // steps 6..7
	b.commit(1, 2)          // steps 8..9
	v := FromExecution(b.exec())
	t1 := v.ByID(1)
	if t1.IntervalLo != 0 || t1.IntervalHi != 7 {
		t.Errorf("T1 interval = [%d,%d], want [0,7]", t1.IntervalLo, t1.IntervalHi)
	}
	t2 := v.ByID(2)
	if t2.IntervalLo != 3 || t2.IntervalHi != 9 {
		t.Errorf("T2 interval = [%d,%d], want [3,9]", t2.IntervalLo, t2.IntervalHi)
	}
	if t1.BeginIndex != 0 || t2.BeginIndex != 3 {
		t.Errorf("begin indices = %d, %d", t1.BeginIndex, t2.BeginIndex)
	}
}

func TestCheckLegalRules(t *testing.T) {
	// Rule (iii): read before any write sees the initial value.
	ok := []Block{{Txn: 1, Ops: []Op{{Kind: core.OpRead, Item: "x", Value: 0, Global: true}}, CheckReads: true}}
	if err := CheckLegal(ok); err != nil {
		t.Errorf("initial read of 0 flagged: %v", err)
	}
	bad := []Block{{Txn: 1, Ops: []Op{{Kind: core.OpRead, Item: "x", Value: 3, Global: true}}, CheckReads: true}}
	if err := CheckLegal(bad); err == nil {
		t.Errorf("read of unwritten value not flagged")
	}

	// Rule (ii): read sees the last preceding committed write.
	seq := []Block{
		{Txn: 1, Ops: []Op{{Kind: core.OpWrite, Item: "x", Value: 1}}},
		{Txn: 2, Ops: []Op{{Kind: core.OpWrite, Item: "x", Value: 2}}},
		{Txn: 3, Ops: []Op{{Kind: core.OpRead, Item: "x", Value: 2, Global: true}}, CheckReads: true},
	}
	if err := CheckLegal(seq); err != nil {
		t.Errorf("read of last write flagged: %v", err)
	}
	seq[2].Ops[0].Value = 1
	if err := CheckLegal(seq); err == nil {
		t.Errorf("read of overwritten value not flagged")
	} else if err.Want != 2 || err.Got != 1 || err.Item != "x" || err.BlockIndex != 2 {
		t.Errorf("violation details wrong: %+v", err)
	}

	// Rule (i): own write wins over preceding blocks.
	own := []Block{
		{Txn: 1, Ops: []Op{{Kind: core.OpWrite, Item: "x", Value: 1}}},
		{Txn: 2, Ops: []Op{
			{Kind: core.OpWrite, Item: "x", Value: 9},
			{Kind: core.OpRead, Item: "x", Value: 9},
		}, CheckReads: true},
	}
	if err := CheckLegal(own); err != nil {
		t.Errorf("own-write read flagged: %v", err)
	}

	// CheckReads=false blocks are unconstrained.
	skip := []Block{
		{Txn: 1, Ops: []Op{{Kind: core.OpRead, Item: "x", Value: 77, Global: true}}, CheckReads: false},
	}
	if err := CheckLegal(skip); err != nil {
		t.Errorf("unchecked block flagged: %v", err)
	}
}

func TestIllegalReadError(t *testing.T) {
	e := &IllegalRead{Txn: 3, Item: "b1", Got: 0, Want: 1, BlockIndex: 2}
	if e.Error() == "" {
		t.Errorf("empty error text")
	}
}

// Property: incremental legality (AppendBlocks) agrees with CheckLegal on
// random block sequences.
func TestIncrementalLegalityAgreesWithBatch(t *testing.T) {
	items := []core.Item{"x", "y", "z"}
	gen := func(r *rand.Rand) []Block {
		nb := 1 + r.Intn(5)
		blocks := make([]Block, nb)
		for i := range blocks {
			nops := r.Intn(4)
			ops := make([]Op, nops)
			for j := range ops {
				it := items[r.Intn(len(items))]
				if r.Intn(2) == 0 {
					ops[j] = Op{Kind: core.OpWrite, Item: it, Value: core.Value(r.Intn(3))}
				} else {
					ops[j] = Op{Kind: core.OpRead, Item: it, Value: core.Value(r.Intn(3)), Global: true}
				}
			}
			blocks[i] = Block{Txn: core.TxID(i + 1), Ops: ops, CheckReads: r.Intn(2) == 0}
		}
		return blocks
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		blocks := gen(r)
		batch := CheckLegal(blocks) == nil
		incr := AppendBlocks(blocks)
		if batch != incr {
			t.Fatalf("disagreement on %v: batch=%v incr=%v", blocks, batch, incr)
		}
	}
}

func TestGRWBlocks(t *testing.T) {
	txn := &Txn{ID: 5, Ops: []Op{
		{Kind: core.OpRead, Item: "a", Value: 0, Global: true},
		{Kind: core.OpWrite, Item: "b", Value: 1},
		{Kind: core.OpRead, Item: "b", Value: 1, Global: false},
	}}
	gr, ok := GRBlock(txn, true)
	if !ok || len(gr.Ops) != 1 || gr.Ops[0].Item != "a" {
		t.Errorf("GRBlock = %v ok=%v", gr, ok)
	}
	w, ok := WBlock(txn)
	if !ok || len(w.Ops) != 1 || w.Ops[0].Item != "b" {
		t.Errorf("WBlock = %v ok=%v", w, ok)
	}
	readOnly := &Txn{ID: 6, Ops: []Op{{Kind: core.OpRead, Item: "a", Value: 0, Global: true}}}
	if _, ok := WBlock(readOnly); ok {
		t.Errorf("WBlock of read-only txn must be empty")
	}
	writer := &Txn{ID: 7, Ops: []Op{{Kind: core.OpWrite, Item: "a", Value: 1}}}
	if _, ok := GRBlock(writer, true); ok {
		t.Errorf("GRBlock of write-only txn must be empty")
	}
	full := FullBlock(txn)
	if len(full.Ops) != 3 || !full.CheckReads {
		t.Errorf("FullBlock = %v", full)
	}
}

func TestWellFormedAccepts(t *testing.T) {
	b := &execBuilder{}
	b.begin(0, 1).read(0, 1, "x", 0).write(0, 1, "y", 2).commit(0, 1)
	b.begin(1, 2).read(1, 2, "y", 2).commitInv(1, 2)
	if err := CheckWellFormed(b.exec()); err != nil {
		t.Errorf("well-formed history rejected: %v", err)
	}
}

func TestWellFormedAbortResponse(t *testing.T) {
	b := &execBuilder{}
	b.begin(0, 1).
		ev(0, 1, core.Event{Op: core.OpRead, Inv: true, Item: "x"}).
		ev(0, 1, core.Event{Op: core.OpRead, Item: "x", Status: core.StatusAborted})
	if err := CheckWellFormed(b.exec()); err != nil {
		t.Errorf("aborting read rejected: %v", err)
	}
}

func TestWellFormedViolations(t *testing.T) {
	// Missing begin.
	b := &execBuilder{}
	b.ev(0, 1, core.Event{Op: core.OpRead, Inv: true, Item: "x"})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("read before begin accepted")
	}

	// Event after commit.
	b = &execBuilder{}
	b.begin(0, 1).commit(0, 1).read(0, 1, "x", 0)
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("event after C_T accepted")
	}

	// Response without invocation.
	b = &execBuilder{}
	b.begin(0, 1).ev(0, 1, core.Event{Op: core.OpRead, Item: "x", Status: core.StatusOK})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("response without invocation accepted")
	}

	// Two pending invocations.
	b = &execBuilder{}
	b.begin(0, 1).
		ev(0, 1, core.Event{Op: core.OpRead, Inv: true, Item: "x"}).
		ev(0, 1, core.Event{Op: core.OpRead, Inv: true, Item: "y"})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("overlapping invocations accepted")
	}

	// Duplicate begin.
	b = &execBuilder{}
	b.begin(0, 1).ev(0, 1, core.Event{Op: core.OpBegin, Inv: true})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("duplicate begin accepted")
	}

	// Commit answered with ok.
	b = &execBuilder{}
	b.begin(0, 1).
		ev(0, 1, core.Event{Op: core.OpTryCommit, Inv: true}).
		ev(0, 1, core.Event{Op: core.OpTryCommit, Status: core.StatusOK})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("commit answered ok accepted")
	}

	// Mismatched response op.
	b = &execBuilder{}
	b.begin(0, 1).
		ev(0, 1, core.Event{Op: core.OpRead, Inv: true, Item: "x"}).
		ev(0, 1, core.Event{Op: core.OpWrite, Status: core.StatusOK})
	if err := CheckWellFormed(b.exec()); err == nil {
		t.Errorf("mismatched response accepted")
	}
}

func TestWellFormedErrorString(t *testing.T) {
	err := &WellFormedError{Txn: 2, Reason: "x", Event: &core.Event{Op: core.OpBegin, Inv: true, Txn: 2}}
	if err.Error() == "" {
		t.Errorf("empty error")
	}
}

// Property: FromExecution never classifies the first read of an item as
// local, regardless of op order.
func TestGlobalReadClassificationProperty(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		b := &execBuilder{}
		b.begin(0, 1)
		written := map[core.Item]bool{}
		wantGlobal := []bool{}
		for _, o := range opsRaw {
			it := core.Item(rune('a' + o%3))
			if o%2 == 0 {
				b.write(0, 1, it, core.Value(o))
				written[it] = true
			} else {
				b.read(0, 1, it, 0)
				wantGlobal = append(wantGlobal, !written[it])
			}
		}
		b.commit(0, 1)
		v := FromExecution(b.exec())
		txn := v.ByID(1)
		gi := 0
		for _, op := range txn.Ops {
			if op.Kind != core.OpRead {
				continue
			}
			if op.Global != wantGlobal[gi] {
				return false
			}
			gi++
		}
		return gi == len(wantGlobal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
