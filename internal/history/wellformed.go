package history

import (
	"fmt"

	"pcltm/internal/core"
)

// WellFormedError reports the first well-formedness violation of a
// history, with the offending event.
type WellFormedError struct {
	Txn    core.TxID
	Reason string
	Event  *core.Event
}

func (e *WellFormedError) Error() string {
	return fmt.Sprintf("history of %s not well-formed: %s (at %v)", e.Txn, e.Reason, e.Event)
}

// CheckWellFormed validates H|T for every transaction of the execution
// against the paper's conditions: (i) alternating invocations and
// responses starting with begin·ok, (ii) reads answered by a value or A_T,
// (iii) writes answered by ok or A_T, (iv) commit answered by C_T or A_T,
// (v) abort answered by A_T, (vi) nothing follows C_T or A_T. A trailing
// unanswered invocation is permitted (the transaction is live or
// commit-pending).
func CheckWellFormed(e *core.Execution) *WellFormedError {
	type state struct {
		begun      bool
		pending    *core.Event
		terminated bool
	}
	states := make(map[core.TxID]*state)
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev == nil {
			continue
		}
		st := states[ev.Txn]
		if st == nil {
			st = &state{}
			states[ev.Txn] = st
		}
		if st.terminated {
			return &WellFormedError{ev.Txn, "event after C_T/A_T", ev}
		}
		if ev.Inv {
			if st.pending != nil {
				return &WellFormedError{ev.Txn, "invocation while another operation is pending", ev}
			}
			if !st.begun && ev.Op != core.OpBegin {
				return &WellFormedError{ev.Txn, "first invocation is not begin_T", ev}
			}
			if st.begun && ev.Op == core.OpBegin {
				return &WellFormedError{ev.Txn, "duplicate begin_T", ev}
			}
			st.pending = ev
			continue
		}
		// Response.
		if st.pending == nil {
			return &WellFormedError{ev.Txn, "response without pending invocation", ev}
		}
		if ev.Op != st.pending.Op {
			return &WellFormedError{ev.Txn, fmt.Sprintf("response op %v does not match pending %v", ev.Op, st.pending.Op), ev}
		}
		switch ev.Op {
		case core.OpBegin:
			if ev.Status != core.StatusOK {
				return &WellFormedError{ev.Txn, "begin_T response is not ok", ev}
			}
			st.begun = true
		case core.OpRead:
			if ev.Status != core.StatusOK && ev.Status != core.StatusAborted {
				return &WellFormedError{ev.Txn, "read response is neither a value nor A_T", ev}
			}
			if ev.Item != st.pending.Item {
				return &WellFormedError{ev.Txn, "read response item mismatch", ev}
			}
		case core.OpWrite:
			if ev.Status != core.StatusOK && ev.Status != core.StatusAborted {
				return &WellFormedError{ev.Txn, "write response is neither ok nor A_T", ev}
			}
		case core.OpTryCommit:
			if ev.Status != core.StatusCommitted && ev.Status != core.StatusAborted {
				return &WellFormedError{ev.Txn, "commit response is neither C_T nor A_T", ev}
			}
		case core.OpAbortReq:
			if ev.Status != core.StatusAborted {
				return &WellFormedError{ev.Txn, "abort response is not A_T", ev}
			}
		}
		if ev.Status == core.StatusCommitted || ev.Status == core.StatusAborted {
			st.terminated = true
		}
		st.pending = nil
	}
	return nil
}
