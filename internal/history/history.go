// Package history projects recorded executions into the paper's history
// vocabulary: per-transaction operation sequences, well-formedness,
// global-read classification (Section 3, "Consistency"), and legality of
// sequential histories — the primitive every consistency checker is built
// on.
package history

import (
	"fmt"
	"sort"

	"pcltm/internal/core"
)

// Op is a completed (successfully responded) read or write of a
// transaction.
type Op struct {
	// Kind is core.OpRead or core.OpWrite.
	Kind core.OpKind
	// Item is the data item accessed.
	Item core.Item
	// Value is the value written, or the value the read returned.
	Value core.Value
	// Global marks reads not preceded by a write to the same item by the
	// same transaction. Only global reads are constrained by the paper's
	// weak snapshot isolation and weak adaptive consistency.
	Global bool
}

// String renders the op in the paper's x:v / x(v) figure notation.
func (o Op) String() string {
	if o.Kind == core.OpRead {
		return fmt.Sprintf("%s:%d", o.Item, o.Value)
	}
	return fmt.Sprintf("%s(%d)", o.Item, o.Value)
}

// Txn is the checker-facing summary of one transaction in an execution.
type Txn struct {
	// ID identifies the transaction.
	ID core.TxID
	// Proc is the process that executed it.
	Proc core.ProcID
	// Status is its fate in the execution.
	Status core.TxStatus
	// Ops are its completed reads and writes in program order.
	Ops []Op
	// IntervalLo and IntervalHi delimit its active execution interval in
	// step indices.
	IntervalLo, IntervalHi int
	// BeginIndex is the step index of its begin invocation (consistency
	// groups are intervals of the begin order).
	BeginIndex int
}

// GlobalReads returns the ops of T|read_g: the global reads in order.
func (t *Txn) GlobalReads() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == core.OpRead && op.Global {
			out = append(out, op)
		}
	}
	return out
}

// Writes returns the ops of T|write: the writes in order.
func (t *Txn) Writes() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == core.OpWrite {
			out = append(out, op)
		}
	}
	return out
}

// WritesItem reports whether the transaction performed a write to x.
func (t *Txn) WritesItem(x core.Item) bool {
	for _, op := range t.Ops {
		if op.Kind == core.OpWrite && op.Item == x {
			return true
		}
	}
	return false
}

// View is the input consumed by the consistency checkers: the
// transactions of an execution with their intervals, in begin order.
type View struct {
	// Txns is sorted by BeginIndex.
	Txns []*Txn
	// NProcs is the machine width the execution was recorded on.
	NProcs int
}

// ByID returns the transaction with the given id, or nil.
func (v *View) ByID(id core.TxID) *Txn {
	for _, t := range v.Txns {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Committed returns the committed transactions.
func (v *View) Committed() []*Txn {
	var out []*Txn
	for _, t := range v.Txns {
		if t.Status == core.TxCommitted {
			out = append(out, t)
		}
	}
	return out
}

// CommitPending returns the commit-pending transactions.
func (v *View) CommitPending() []*Txn {
	var out []*Txn
	for _, t := range v.Txns {
		if t.Status == core.TxCommitPending {
			out = append(out, t)
		}
	}
	return out
}

// FromExecution builds the checker view of a recorded execution. Only
// operations with successful responses become Ops; unanswered invocations
// and aborted operations carry no value to validate.
func FromExecution(e *core.Execution) *View {
	byID := make(map[core.TxID]*Txn)
	var order []core.TxID
	written := make(map[core.TxID]map[core.Item]bool)

	for i := range e.Steps {
		s := &e.Steps[i]
		if s.Txn == core.NoTx {
			continue
		}
		t, ok := byID[s.Txn]
		if !ok {
			t = &Txn{ID: s.Txn, Proc: s.Proc, IntervalLo: s.Index, BeginIndex: -1}
			byID[s.Txn] = t
			order = append(order, s.Txn)
			written[s.Txn] = make(map[core.Item]bool)
		}
		t.IntervalHi = s.Index
		ev := s.Event
		if ev == nil {
			continue
		}
		switch {
		case ev.Inv && ev.Op == core.OpBegin:
			t.BeginIndex = s.Index
		case !ev.Inv && ev.Op == core.OpRead && ev.Status == core.StatusOK:
			t.Ops = append(t.Ops, Op{
				Kind:   core.OpRead,
				Item:   ev.Item,
				Value:  ev.Value,
				Global: !written[s.Txn][ev.Item],
			})
		case !ev.Inv && ev.Op == core.OpWrite && ev.Status == core.StatusOK:
			t.Ops = append(t.Ops, Op{Kind: core.OpWrite, Item: ev.Item, Value: ev.Value})
			written[s.Txn][ev.Item] = true
		}
	}

	v := &View{NProcs: e.NProcs}
	for _, id := range order {
		t := byID[id]
		t.Status = e.StatusOf(id)
		if t.BeginIndex < 0 {
			t.BeginIndex = t.IntervalLo
		}
		v.Txns = append(v.Txns, t)
	}
	sort.SliceStable(v.Txns, func(i, j int) bool {
		return v.Txns[i].BeginIndex < v.Txns[j].BeginIndex
	})
	return v
}
