// Package registry is the single enumeration point for everything the
// benchmarks and CLIs sweep: the production stm/ engines, the simulated
// protocol portfolio, and the workload contention patterns. cmd/tmbench,
// cmd/tmcheck and the root bench_test.go all resolve names through here,
// so adding an engine (stm's engine table), a protocol
// (internal/stms/portfolio) or a pattern (internal/workload) shows up in
// every tool without touching any of them.
package registry

import (
	"fmt"
	"strings"

	"pcltm/internal/stms"
	"pcltm/internal/stms/portfolio"
	"pcltm/internal/workload"
	"pcltm/stm"
)

// Engines lists every production engine in presentation order.
func Engines() []stm.EngineKind { return stm.EngineKinds() }

// EngineNames lists the engine short names in presentation order.
func EngineNames() []string {
	kinds := Engines()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// EngineByName resolves an engine short name; the error names the known
// engines.
func EngineByName(name string) (stm.EngineKind, error) {
	if k, ok := stm.EngineByName(name); ok {
		return k, nil
	}
	return 0, fmt.Errorf("registry: unknown engine %q (known: %s)",
		name, strings.Join(EngineNames(), ", "))
}

// Protocols lists the simulated protocol portfolio.
func Protocols() []stms.Protocol { return portfolio.All() }

// ProtocolNames lists the protocol names in presentation order.
func ProtocolNames() []string { return portfolio.Names() }

// ProtocolByName resolves a protocol name; the error names the known
// protocols.
func ProtocolByName(name string) (stms.Protocol, error) {
	p, err := portfolio.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("registry: unknown protocol %q (known: %s)",
			name, strings.Join(ProtocolNames(), ", "))
	}
	return p, nil
}

// Patterns lists the workload contention patterns.
func Patterns() []workload.Pattern { return workload.Patterns() }

// PatternNames lists the pattern names in presentation order.
func PatternNames() []string {
	pats := Patterns()
	names := make([]string, len(pats))
	for i, p := range pats {
		names[i] = p.String()
	}
	return names
}

// PatternByName resolves a pattern name; the error names the known
// patterns.
func PatternByName(name string) (workload.Pattern, error) {
	if p, ok := workload.PatternByName(name); ok {
		return p, nil
	}
	return 0, fmt.Errorf("registry: unknown pattern %q (known: %s)",
		name, strings.Join(PatternNames(), ", "))
}

// ValueKinds lists the workload payload kinds (the value-representation
// dimension of the E1/E6 experiments).
func ValueKinds() []workload.ValueKind { return workload.ValueKinds() }

// ValueKindNames lists the payload kind names in presentation order.
func ValueKindNames() []string {
	kinds := ValueKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// ValueKindByName resolves a payload kind name; the error names the
// known kinds.
func ValueKindByName(name string) (workload.ValueKind, error) {
	if k, ok := workload.ValueKindByName(name); ok {
		return k, nil
	}
	return 0, fmt.Errorf("registry: unknown value kind %q (known: %s)",
		name, strings.Join(ValueKindNames(), ", "))
}

// Skews lists the structure workloads' key distributions (the E7
// dimension).
func Skews() []workload.Skew { return workload.Skews() }

// SkewNames lists the skew names in presentation order.
func SkewNames() []string {
	skews := Skews()
	names := make([]string, len(skews))
	for i, s := range skews {
		names[i] = s.String()
	}
	return names
}

// SkewByName resolves a skew name; the error names the known skews.
func SkewByName(name string) (workload.Skew, error) {
	if s, ok := workload.SkewByName(name); ok {
		return s, nil
	}
	return 0, fmt.Errorf("registry: unknown skew %q (known: %s)",
		name, strings.Join(SkewNames(), ", "))
}
