package registry

import (
	"strings"
	"testing"

	"pcltm/stm"
)

func TestEnginesEnumeratesAll(t *testing.T) {
	kinds := Engines()
	if len(kinds) != 5 {
		t.Fatalf("Engines() = %v, want 5", kinds)
	}
	want := map[stm.EngineKind]bool{
		stm.EngineTL2: true, stm.EngineTL2Striped: true,
		stm.EngineTwoPL: true, stm.EngineGlobalLock: true,
		stm.EngineAdaptive: true,
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected engine %v", k)
		}
		delete(want, k)
	}
	for k := range want {
		t.Errorf("engine %v missing from registry", k)
	}
}

func TestEngineRoundTrip(t *testing.T) {
	for _, k := range Engines() {
		got, err := EngineByName(k.String())
		if err != nil || got != k {
			t.Errorf("EngineByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	_, err := EngineByName("bogus")
	if err == nil {
		t.Fatal("EngineByName accepted bogus")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name known engine %q", err, name)
		}
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	names := ProtocolNames()
	if len(names) == 0 {
		t.Fatal("no protocols registered")
	}
	if len(names) != len(Protocols()) {
		t.Errorf("ProtocolNames/Protocols length mismatch")
	}
	for _, name := range names {
		p, err := ProtocolByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ProtocolByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ProtocolByName("bogus"); err == nil {
		t.Error("ProtocolByName accepted bogus")
	}
}

func TestPatternRoundTrip(t *testing.T) {
	pats := Patterns()
	if len(pats) == 0 {
		t.Fatal("no patterns registered")
	}
	for _, p := range pats {
		got, err := PatternByName(p.String())
		if err != nil || got != p {
			t.Errorf("PatternByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := PatternByName("bogus"); err == nil {
		t.Error("PatternByName accepted bogus")
	}
}
