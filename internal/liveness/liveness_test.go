package liveness

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/stms"
	"pcltm/internal/stms/portfolio"
)

func conflictingSpecs() []core.TxSpec {
	return []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("y"), core.W("x", 1), core.W("s", 1)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("x"), core.W("y", 2), core.W("s", 2)}},
	}
}

func TestObstructionFreedomVerdicts(t *testing.T) {
	// Expected verdicts per protocol: TL and the polite-contention-manager
	// DSTM ablation are blocking, the rest are obstruction-free.
	expect := map[string]bool{
		"naive":       true,
		"tl":          false,
		"dstm":        true,
		"dstm-polite": false,
		"sidstm":      true,
		"gclock":      true,
		"pramtm":      true,
	}
	for name, wantOF := range expect {
		proto, err := portfolio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := &stms.Bundle{Protocol: proto, Specs: conflictingSpecs()}
		rep := CheckObstructionFreedom(b, &Options{Budget: 1500})
		if got := rep.ObstructionFree(); got != wantOF {
			t.Errorf("%s: obstruction-free = %v, want %v (violations: %v)",
				name, got, wantOF, firstN(rep.Violations, 3))
		}
		if len(rep.Probes) == 0 {
			t.Errorf("%s: no probes recorded", name)
		}
	}
}

func firstN(ps []Probe, n int) []Probe {
	if len(ps) <= n {
		return ps
	}
	return ps[:n]
}

func TestTLViolationIsBlocking(t *testing.T) {
	proto, err := portfolio.ByName("tl")
	if err != nil {
		t.Fatal(err)
	}
	b := &stms.Bundle{Protocol: proto, Specs: conflictingSpecs()}
	rep := CheckObstructionFreedom(b, &Options{Budget: 1500})
	if rep.ObstructionFree() {
		t.Fatalf("tl reported obstruction-free")
	}
	for _, v := range rep.Violations {
		if v.Outcome != SoloBlocked {
			t.Errorf("tl violation is %v, want blocked: %v", v.Outcome, v)
		}
		if v.PrefixProc < 0 {
			t.Errorf("tl blocked from the initial configuration: %v", v)
		}
		if v.String() == "" {
			t.Errorf("probe unprintable")
		}
	}
}

func TestPrefixStrideReducesProbes(t *testing.T) {
	proto, err := portfolio.ByName("naive")
	if err != nil {
		t.Fatal(err)
	}
	b := &stms.Bundle{Protocol: proto, Specs: conflictingSpecs()}
	all := CheckObstructionFreedom(b, &Options{Budget: 1500, PrefixStride: 1})
	strided := CheckObstructionFreedom(b, &Options{Budget: 1500, PrefixStride: 4})
	if len(strided.Probes) >= len(all.Probes) {
		t.Errorf("stride did not reduce probes: %d vs %d", len(strided.Probes), len(all.Probes))
	}
}

func TestOutcomeStrings(t *testing.T) {
	if SoloCommitted.String() != "committed" || SoloBlocked.String() != "blocked" || SoloAborted.String() != "aborted" {
		t.Errorf("outcome strings wrong")
	}
	p := Probe{Proc: 0, PrefixProc: -1, Outcome: SoloCommitted, Steps: 10}
	if p.String() == "" {
		t.Errorf("probe unprintable")
	}
}
