// Package liveness probes TM protocols for obstruction-freedom, the
// paper's Liveness corner: "a TM algorithm is obstruction-free if a
// transaction T can be aborted only when other processes take steps during
// the execution interval of T".
//
// The probe schedule family mirrors the proof's solo runs: every process
// is run solo to completion from the initial configuration, and from every
// configuration reachable by a partial solo run of one other process. In
// all those runs no step by another process falls inside the probed
// transactions' execution intervals, so every probed transaction must
// commit; an abort or an exhausted step budget (spinning on a lock left
// behind by the stopped process) is an obstruction-freedom violation.
package liveness

import (
	"errors"
	"fmt"

	"pcltm/internal/core"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
)

// SoloOutcome classifies one solo probe.
type SoloOutcome int

const (
	// SoloCommitted: every transaction of the probed process committed.
	SoloCommitted SoloOutcome = iota
	// SoloAborted: some transaction aborted despite running solo.
	SoloAborted
	// SoloBlocked: the probe exhausted its step budget (blocking).
	SoloBlocked
)

var soloNames = [...]string{"committed", "aborted", "blocked"}

func (o SoloOutcome) String() string {
	if o < 0 || int(o) >= len(soloNames) {
		return fmt.Sprintf("outcome(%d)", int(o))
	}
	return soloNames[o]
}

// Probe is one solo-run observation.
type Probe struct {
	// Proc is the process run solo.
	Proc core.ProcID
	// PrefixProc is the process whose partial solo run preceded the
	// probe; -1 when probing from the initial configuration.
	PrefixProc core.ProcID
	// PrefixSteps is the length of that partial run.
	PrefixSteps int
	// Outcome classifies the probe.
	Outcome SoloOutcome
	// Steps is the number of steps the probed process took.
	Steps int
	// AbortedTxn identifies the aborting transaction for SoloAborted.
	AbortedTxn core.TxID
}

func (p Probe) String() string {
	from := "the initial configuration"
	if p.PrefixProc >= 0 {
		from = fmt.Sprintf("after %d solo steps of %s", p.PrefixSteps, p.PrefixProc)
	}
	return fmt.Sprintf("%s run solo %s: %s after %d steps", p.Proc, from, p.Outcome, p.Steps)
}

// Report aggregates the probes of one protocol.
type Report struct {
	// Protocol names the probed TM.
	Protocol string
	// Probes lists every observation.
	Probes []Probe
	// Violations lists the non-committed probes.
	Violations []Probe
}

// ObstructionFree reports whether no probe violated obstruction-freedom.
func (r *Report) ObstructionFree() bool { return len(r.Violations) == 0 }

// Options configure the probe harness.
type Options struct {
	// Budget caps each run-until-done phase (0 means a conservative
	// default well above any honest solo run).
	Budget int
	// PrefixStride probes every stride-th prefix length (1 = all).
	PrefixStride int
}

func (o *Options) withDefaults() Options {
	out := Options{Budget: 4096, PrefixStride: 1}
	if o != nil {
		if o.Budget > 0 {
			out.Budget = o.Budget
		}
		if o.PrefixStride > 0 {
			out.PrefixStride = o.PrefixStride
		}
	}
	return out
}

// CheckObstructionFreedom runs the probe family against the bundle.
func CheckObstructionFreedom(b *stms.Bundle, opts *Options) Report {
	o := opts.withDefaults()
	rep := Report{Protocol: b.Protocol.Name()}
	procs := bundleProcs(b)

	// Solo from the initial configuration; also learn each process's solo
	// step count for the prefix probes.
	soloSteps := make(map[core.ProcID]int)
	for _, p := range procs {
		probe := runProbe(b, machine.Schedule{}, p, -1, 0, o.Budget)
		soloSteps[p] = probe.Steps
		rep.record(probe)
	}

	// Solo after every partial solo run of one other process.
	for _, a := range procs {
		for _, p := range procs {
			if a == p {
				continue
			}
			for k := 1; k < soloSteps[a]; k += o.PrefixStride {
				prefix := machine.Schedule{machine.Steps(a, k)}
				rep.record(runProbe(b, prefix, p, a, k, o.Budget))
			}
		}
	}
	return rep
}

func (r *Report) record(p Probe) {
	r.Probes = append(r.Probes, p)
	if p.Outcome != SoloCommitted {
		r.Violations = append(r.Violations, p)
	}
}

// runProbe replays the prefix, then runs process p solo until done or
// budget, classifying the outcome.
func runProbe(b *stms.Bundle, prefix machine.Schedule, p core.ProcID, prefixProc core.ProcID, prefixSteps, budget int) Probe {
	m := b.Build()
	defer m.Close()
	probe := Probe{Proc: p, PrefixProc: prefixProc, PrefixSteps: prefixSteps}
	if err := machine.RunSchedule(m, prefix); err != nil {
		// The prefix itself misbehaved; classify as blocked for safety.
		probe.Outcome = SoloBlocked
		return probe
	}
	before := m.StepCount()
	_, err := m.RunUntilDone(p, budget)
	probe.Steps = m.StepCount() - before
	var be *machine.BudgetError
	if errors.As(err, &be) {
		probe.Outcome = SoloBlocked
		return probe
	}
	exec := m.Execution()
	for _, s := range b.Specs {
		if s.Proc != p {
			continue
		}
		if st := exec.StatusOf(s.ID); st != core.TxCommitted {
			probe.Outcome = SoloAborted
			probe.AbortedTxn = s.ID
			return probe
		}
	}
	probe.Outcome = SoloCommitted
	return probe
}

// bundleProcs lists the bundle's processes in ascending order.
func bundleProcs(b *stms.Bundle) []core.ProcID {
	seen := make(map[core.ProcID]bool)
	var procs []core.ProcID
	for _, s := range b.Specs {
		if !seen[s.Proc] {
			seen[s.Proc] = true
			procs = append(procs, s.Proc)
		}
	}
	for i := 1; i < len(procs); i++ {
		for j := i; j > 0 && procs[j] < procs[j-1]; j-- {
			procs[j], procs[j-1] = procs[j-1], procs[j]
		}
	}
	return procs
}
