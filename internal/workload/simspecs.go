package workload

import (
	"fmt"
	"math/rand"

	"pcltm/internal/core"
)

// DisjointSpecs builds n static transactions on n disjoint item sets —
// the workload strict disjoint-access-parallelism is about: no pair
// conflicts, so no pair may contend on any base object.
func DisjointSpecs(n, itemsPerTx int) []core.TxSpec {
	specs := make([]core.TxSpec, n)
	for i := 0; i < n; i++ {
		var ops []core.TxOp
		for j := 0; j < itemsPerTx; j++ {
			item := core.Item(fmt.Sprintf("x%d_%d", i, j))
			ops = append(ops, core.R(item), core.W(item, core.Value(i+1)))
		}
		specs[i] = core.TxSpec{ID: core.TxID(i + 1), Proc: core.ProcID(i), Ops: ops}
	}
	return specs
}

// ChainSpecs builds n transactions where consecutive pairs share one item
// (T_i and T_{i+1} conflict on link_i) but non-adjacent pairs are
// disjoint — the conflict-graph chain shape behind the weaker chain-DAP
// variant.
func ChainSpecs(n int) []core.TxSpec {
	specs := make([]core.TxSpec, n)
	for i := 0; i < n; i++ {
		var ops []core.TxOp
		own := core.Item(fmt.Sprintf("own%d", i))
		ops = append(ops, core.R(own), core.W(own, 1))
		if i > 0 {
			ops = append(ops, core.W(core.Item(fmt.Sprintf("link%d", i-1)), core.Value(i)))
		}
		if i < n-1 {
			ops = append(ops, core.W(core.Item(fmt.Sprintf("link%d", i)), core.Value(i)))
		}
		specs[i] = core.TxSpec{ID: core.TxID(i + 1), Proc: core.ProcID(i), Ops: ops}
	}
	return specs
}

// StarSpecs builds n transactions all conflicting with a central hub item
// written by every transaction — maximal conflict, where even strictly
// DAP designs may contend freely.
func StarSpecs(n int) []core.TxSpec {
	specs := make([]core.TxSpec, n)
	for i := 0; i < n; i++ {
		own := core.Item(fmt.Sprintf("own%d", i))
		specs[i] = core.TxSpec{ID: core.TxID(i + 1), Proc: core.ProcID(i), Ops: []core.TxOp{
			core.R("hub"), core.R(own), core.W(own, 1), core.W("hub", core.Value(i+1)),
		}}
	}
	return specs
}

// RandomSpecs builds n transactions over a shared item pool with the
// given ops per transaction, reproducibly from seed. Reads and writes mix
// roughly evenly.
func RandomSpecs(n, items, opsPerTx int, seed int64) []core.TxSpec {
	r := rand.New(rand.NewSource(seed))
	specs := make([]core.TxSpec, n)
	for i := 0; i < n; i++ {
		var ops []core.TxOp
		for j := 0; j < opsPerTx; j++ {
			item := core.Item(fmt.Sprintf("v%d", r.Intn(items)))
			if r.Intn(2) == 0 {
				ops = append(ops, core.R(item))
			} else {
				ops = append(ops, core.W(item, core.Value(r.Intn(5)+1)))
			}
		}
		specs[i] = core.TxSpec{ID: core.TxID(i + 1), Proc: core.ProcID(i), Ops: ops}
	}
	return specs
}
