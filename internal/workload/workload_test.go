package workload

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/stm"
)

func TestRunPreservesSumInvariant(t *testing.T) {
	cfg := Config{Vars: 64, Workers: 4, OpsPerWorker: 200, ReadsPerTx: 2, WritesPerTx: 2, Seed: 1}
	for _, kind := range stm.EngineKinds() {
		for _, pat := range Patterns() {
			c := cfg
			c.Pattern = pat
			res := Run(kind, c)
			if res.Sum != c.ExpectedSum() {
				t.Errorf("%v/%v: sum = %d, want %d (serializability broken under load)",
					kind, pat, res.Sum, c.ExpectedSum())
			}
			if res.Commits < uint64(c.Workers*c.OpsPerWorker) {
				t.Errorf("%v/%v: commits = %d, want ≥ %d", kind, pat, res.Commits, c.Workers*c.OpsPerWorker)
			}
			if res.Throughput <= 0 {
				t.Errorf("%v/%v: throughput = %v", kind, pat, res.Throughput)
			}
		}
	}
}

func TestPatternNames(t *testing.T) {
	for _, p := range Patterns() {
		got, ok := PatternByName(p.String())
		if !ok || got != p {
			t.Errorf("PatternByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PatternByName("bogus"); ok {
		t.Errorf("accepted bogus pattern")
	}
}

func TestDisjointSpecsAreDisjoint(t *testing.T) {
	specs := DisjointSpecs(5, 3)
	if len(specs) != 5 {
		t.Fatalf("specs = %d", len(specs))
	}
	for i := range specs {
		for j := i + 1; j < len(specs); j++ {
			if core.Conflicts(specs[i], specs[j]) {
				t.Errorf("specs %d and %d conflict", i, j)
			}
		}
	}
}

func TestChainSpecsShape(t *testing.T) {
	specs := ChainSpecs(4)
	for i := 0; i+1 < len(specs); i++ {
		if !core.Conflicts(specs[i], specs[i+1]) {
			t.Errorf("adjacent specs %d,%d must conflict", i, i+1)
		}
	}
	for i := 0; i+2 < len(specs); i++ {
		if core.Conflicts(specs[i], specs[i+2]) {
			t.Errorf("non-adjacent specs %d,%d must be disjoint", i, i+2)
		}
	}
}

func TestStarSpecsShareHub(t *testing.T) {
	specs := StarSpecs(4)
	for i := range specs {
		for j := i + 1; j < len(specs); j++ {
			if !core.Conflicts(specs[i], specs[j]) {
				t.Errorf("star specs %d,%d must conflict via hub", i, j)
			}
		}
	}
}

func TestRandomSpecsReproducible(t *testing.T) {
	a := RandomSpecs(3, 8, 5, 42)
	b := RandomSpecs(3, 8, 5, 42)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("same seed diverged at spec %d", i)
		}
	}
	c := RandomSpecs(3, 8, 5, 43)
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical specs")
	}
}

func TestScanWorkloadConsistency(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		res := RunScan(kind, ScanConfig{Vars: 64, Writers: 2, Scans: 20, Seed: 3})
		if !res.Consistent {
			t.Errorf("%v: a scan observed a torn writer transaction", kind)
		}
		if res.WriterCommits == 0 {
			t.Errorf("%v: writers starved entirely", kind)
		}
	}
}
