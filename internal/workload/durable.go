package workload

import (
	"fmt"
	"time"

	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
)

// The E10 experiment: what durability costs. The workload is the E7
// store driver unchanged — keyed get/increment traffic — but the store
// is opened over a commit log, so every increment pays the append and
// waits for its acknowledgement. Sweeping the ack mode prices the
// contract: sync = one fsync per commit, group = one fsync per batch of
// concurrent commits, async = acknowledge before the fsync (bounded
// loss). The backend dimension separates the protocol's cost (mem) from
// the disk's (file).

// DurableStoreConfig describes an E10 durable-store load run.
type DurableStoreConfig struct {
	StoreConfig
	// Ack is the commit log's acknowledgement mode.
	Ack wal.AckMode
	// Dir is the file backend's directory; empty runs the in-memory
	// backend (protocol cost only, no disk).
	Dir string
	// SegmentBytes caps segment size (0 = the log's default).
	SegmentBytes int64
	// Window is the group-commit batch window: the writer waits at most
	// this long to widen a batch before fsyncing (0 = fsync as soon as
	// the queue drains). Meaningful under AckGroup/AckAsync only.
	Window time.Duration
}

// RunDurableStore executes the structure workload against a durable
// partitioned store. The returned result carries the wal stamp (ack
// mode, backend kind, log counters); the log is sealed before
// returning, so a run doubles as a recovery fixture when Dir is set.
func RunDurableStore(kind stm.EngineKind, cfg DurableStoreConfig) (StoreResult, error) {
	sc := cfg.StoreConfig.withDefaults()
	var backend wal.Backend = wal.NewMemBackend()
	backendName := "mem"
	if cfg.Dir != "" {
		fb, err := wal.NewFileBackend(cfg.Dir)
		if err != nil {
			return StoreResult{}, fmt.Errorf("workload: durable store: %w", err)
		}
		backend = fb
		backendName = "file"
	}
	s, _, err := store.OpenDurable(store.DurableConfig[int64, int64]{
		Store:        store.Config{Partitions: sc.Partitions, Engine: kind, Buckets: sc.Buckets},
		Backend:      backend,
		Ack:          cfg.Ack,
		SegmentBytes: cfg.SegmentBytes,
		BatchWindow:  cfg.Window,
		Codec:        store.Int64Codec(),
	})
	if err != nil {
		return StoreResult{}, fmt.Errorf("workload: durable store: %w", err)
	}
	for k := int64(0); k < int64(sc.Keys); k++ {
		s.Put(k, 0)
	}
	res := runStructLoad(kind, sc, storeDriver{s: s, sweep: sc.CrossSweep})
	if ws, ok := s.WALStats(); ok {
		res.Wal = &ws
	}
	res.WalAck = cfg.Ack.String()
	res.WalBackend = backendName
	return res, s.CloseWAL()
}
