package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pcltm/stm"
)

// ScanConfig describes the long-read-only-transaction workload that
// motivated snapshot isolation in the first place (the paper's Section 2:
// SI was "originally introduced … to increase throughput for long
// read-only transactions"): one scanner repeatedly sums the whole
// variable array inside a single transaction while writers keep
// committing increments.
type ScanConfig struct {
	// Vars is the array size (the scan length).
	Vars int
	// Writers is the number of concurrent increment goroutines.
	Writers int
	// Scans is the number of full-array scan transactions to run.
	Scans int
	// Seed drives the writers' variable choice.
	Seed int64
}

func (c ScanConfig) withDefaults() ScanConfig {
	if c.Vars == 0 {
		c.Vars = 512
	}
	if c.Writers == 0 {
		c.Writers = 2
	}
	if c.Scans == 0 {
		c.Scans = 50
	}
	return c
}

// ScanResult summarizes a scan run.
type ScanResult struct {
	// Engine is the engine measured.
	Engine stm.EngineKind
	// Elapsed is the scanners' wall-clock time.
	Elapsed time.Duration
	// ScanRetries counts scan transactions that had to restart —
	// the cost long readers pay under each concurrency control.
	ScanRetries uint64
	// WriterCommits counts writer transactions committed while the
	// scans ran.
	WriterCommits uint64
	// Consistent reports that every scan observed an exact multiple of
	// one increment (the sum can never be torn).
	Consistent bool
}

// RunScan executes the scan workload on a fresh engine of the given kind.
func RunScan(kind stm.EngineKind, cfg ScanConfig) ScanResult {
	cfg = cfg.withDefaults()
	eng := stm.NewEngine(kind)
	vars := make([]*stm.TVar[int64], cfg.Vars)
	for i := range vars {
		vars[i] = stm.NewTVar[int64](0)
	}

	var stop atomic.Bool
	var writerCommits atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				// Each writer transaction increments two variables by 1
				// each, keeping the array total even: a torn scan shows
				// up as an odd sum.
				i, j := r.Intn(cfg.Vars), r.Intn(cfg.Vars)
				_ = eng.Atomically(func(tx *stm.Tx) error {
					stm.Set(tx, vars[i], stm.Get(tx, vars[i])+1)
					stm.Set(tx, vars[j], stm.Get(tx, vars[j])+1)
					return nil
				})
				writerCommits.Add(1)
			}
		}(cfg.Seed + int64(w))
	}

	// Wait for the writers to be in full swing so every scan really races
	// them (and the retry metric measures contention, not startup).
	for writerCommits.Load() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	before := eng.Stats()
	consistent := true
	start := time.Now()
	for s := 0; s < cfg.Scans; s++ {
		var sum int64
		_ = eng.Atomically(func(tx *stm.Tx) error {
			sum = 0
			for _, v := range vars {
				sum += stm.Get(tx, v)
			}
			return nil
		})
		if sum%2 != 0 {
			consistent = false
		}
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	after := eng.Stats()

	return ScanResult{
		Engine:        kind,
		Elapsed:       elapsed,
		ScanRetries:   after.Retries - before.Retries,
		WriterCommits: writerCommits.Load(),
		Consistent:    consistent,
	}
}
