package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
	"pcltm/tstructs"
)

// The structure workloads of the E7 experiment: keyed get/increment
// traffic against the transactional map (tstructs.TMap on one engine)
// and the partitioned store (one engine instance per partition). The
// knob that matters is key skew — uniform keys are mostly disjoint, so
// they measure how much commit parallelism the sharding actually
// delivers; zipf keys concentrate on a few hot keys, so they measure
// how the structures degrade under genuine conflict.

// Skew selects the key distribution of a structure workload.
type Skew int

const (
	// SkewUniform draws keys uniformly: disjoint-dominated traffic.
	SkewUniform Skew = iota
	// SkewZipf skews toward a few hot keys with parameter ZipfS.
	SkewZipf
)

var skewNames = [...]string{"uniform", "zipf"}

func (s Skew) String() string {
	if s < 0 || int(s) >= len(skewNames) {
		return fmt.Sprintf("skew(%d)", int(s))
	}
	return skewNames[s]
}

// Skews lists all key distributions.
func Skews() []Skew { return []Skew{SkewUniform, SkewZipf} }

// SkewByName resolves a skew name.
func SkewByName(s string) (Skew, bool) {
	for _, k := range Skews() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// StoreConfig describes a structure load run (map or store driver).
type StoreConfig struct {
	// Keys is the keyspace size; every key is seeded before the timed
	// section so steady-state ops exercise lookup and overwrite, not
	// insertion (default 1024).
	Keys int
	// Partitions is the store driver's partition count (default
	// runtime.GOMAXPROCS(0); ignored by the map driver).
	Partitions int
	// Buckets is the per-map bucket-table size (default
	// tstructs.DefaultBuckets).
	Buckets int
	// Workers and OpsPerWorker size the load.
	Workers, OpsPerWorker int
	// ReadFrac is the chance an op reads, in percent (default 50; the
	// rest are read-modify-write increments).
	ReadFrac int
	// Skew selects the key distribution; ZipfS is the zipf parameter
	// (>1, default 1.2).
	Skew  Skew
	ZipfS float64
	// CrossFrac is the chance an op is a two-key cross-partition
	// transfer, in percent (default 0: the pre-E11 single-key mix).
	// Transfers move one unit between keys, so the sum invariant is
	// unchanged: the keyspace total still equals the increment count.
	CrossFrac int
	// CrossSweep routes transfers through the whole-store sweep instead
	// of the scoped footprint commit — the E11 baseline path. Ignored by
	// the map driver, which runs both keys in one engine transaction.
	CrossSweep bool
	// Seed fixes key choices (default 1).
	Seed int64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Partitions == 0 {
		c.Partitions = runtime.GOMAXPROCS(0)
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 1000
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 50
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// keyPicker returns one worker's key chooser for the skew.
func (c StoreConfig) keyPicker(worker int) func() int64 {
	r := rand.New(rand.NewSource(c.Seed + int64(worker)*7919))
	if c.Skew == SkewZipf {
		z := rand.NewZipf(r, c.ZipfS, 1, uint64(c.Keys-1))
		return func() int64 { return int64(z.Uint64()) }
	}
	return func() int64 { return int64(r.Intn(c.Keys)) }
}

// StoreResult summarizes one structure load run.
type StoreResult struct {
	// Engine is the engine kind each partition (or the single map
	// engine) ran.
	Engine stm.EngineKind
	// Config echoes the workload.
	Config StoreConfig
	// Elapsed is the wall-clock duration of the timed section.
	Elapsed time.Duration
	// Commits, Aborts, Retries aggregate every partition's counters.
	Commits, Aborts, Retries uint64
	// Throughput is committed transactions per second.
	Throughput float64
	// AllocsPerOp and BytesPerOp are heap allocations and bytes per
	// committed transaction over the timed section.
	AllocsPerOp, BytesPerOp float64
	// Writes is the number of increment ops the run performed; the
	// keyspace total must equal it (sum invariant — transfers conserve
	// the total, so they don't count).
	Writes int64
	// CrossOps is the number of two-key transfers the run performed.
	CrossOps int64
	// Sum is the keyspace total after the run.
	Sum int64
	// PerPartition is each partition's own counters (store driver; nil
	// for the map driver) — the evidence that disjoint traffic committed
	// in disjoint engines.
	PerPartition []stm.Stats
	// WalAck, WalBackend and Wal stamp a durable run (RunDurableStore):
	// the acknowledgement mode, the backend kind ("mem"/"file") and the
	// commit log's counters. Zero on non-durable runs.
	WalAck     string
	WalBackend string
	Wal        *wal.Stats
}

// structDriver abstracts the structure under load so RunMap and
// RunStore share the measurement loop.
type structDriver interface {
	read(k int64)
	incr(k int64)
	// cross moves one unit from a to b atomically — on the store driver
	// a genuine cross-partition transaction, on the map driver a two-key
	// transaction on the single engine.
	cross(a, b int64)
	sum(keys int) int64
	stats() (total stm.Stats, per []stm.Stats)
}

type tmapDriver struct {
	eng *stm.Engine
	m   *tstructs.TMap[int64, int64]
}

func (d tmapDriver) read(k int64) {
	_ = d.eng.Atomically(func(tx *stm.Tx) error {
		_, _ = d.m.Get(tx, k)
		return nil
	})
}

func (d tmapDriver) incr(k int64) {
	_ = d.eng.Atomically(func(tx *stm.Tx) error {
		v, _ := d.m.Get(tx, k)
		d.m.Put(tx, k, v+1)
		return nil
	})
}

func (d tmapDriver) cross(a, b int64) {
	_ = d.eng.Atomically(func(tx *stm.Tx) error {
		va, _ := d.m.Get(tx, a)
		vb, _ := d.m.Get(tx, b)
		d.m.Put(tx, a, va-1)
		d.m.Put(tx, b, vb+1)
		return nil
	})
}

func (d tmapDriver) sum(keys int) int64 {
	var total int64
	_ = d.eng.Atomically(func(tx *stm.Tx) error {
		total = 0
		for k := int64(0); k < int64(keys); k++ {
			if v, ok := d.m.Get(tx, k); ok {
				total += v
			}
		}
		return nil
	})
	return total
}

func (d tmapDriver) stats() (stm.Stats, []stm.Stats) { return d.eng.Stats(), nil }

type storeDriver struct {
	s     *store.Store[int64, int64]
	sweep bool // route cross ops through the whole-store sweep
}

func (d storeDriver) read(k int64) { _, _ = d.s.Get(k) }

func (d storeDriver) incr(k int64) {
	d.s.Update(k, func(v int64, ok bool) int64 { return v + 1 })
}

func (d storeDriver) cross(a, b int64) {
	fn := func(ct *store.CrossTx[int64, int64]) error {
		va, _ := ct.Get(a)
		vb, _ := ct.Get(b)
		ct.Put(a, va-1)
		ct.Put(b, vb+1)
		return nil
	}
	if d.sweep {
		_ = d.s.CrossSweep(fn)
	} else {
		_ = d.s.Cross(fn)
	}
}

func (d storeDriver) sum(keys int) int64 {
	var total int64
	for k := int64(0); k < int64(keys); k++ {
		if v, ok := d.s.Get(k); ok {
			total += v
		}
	}
	return total
}

func (d storeDriver) stats() (stm.Stats, []stm.Stats) {
	per := d.s.Stats()
	var total stm.Stats
	for _, st := range per {
		total.Commits += st.Commits
		total.Aborts += st.Aborts
		total.Retries += st.Retries
		total.LockFails += st.LockFails
	}
	return total, per
}

// RunMap executes the structure workload against a TMap on one engine
// of the given kind — the unpartitioned baseline the store cells
// compare against.
func RunMap(kind stm.EngineKind, cfg StoreConfig) StoreResult {
	cfg = cfg.withDefaults()
	d := tmapDriver{eng: stm.NewEngine(kind), m: tstructs.NewTMap[int64, int64](cfg.Buckets)}
	_ = d.eng.Atomically(func(tx *stm.Tx) error {
		for k := int64(0); k < int64(cfg.Keys); k++ {
			d.m.Put(tx, k, 0)
		}
		return nil
	})
	return runStructLoad(kind, cfg, d)
}

// RunStore executes the structure workload against a partitioned store
// whose partitions each run their own engine of the given kind.
func RunStore(kind stm.EngineKind, cfg StoreConfig) StoreResult {
	cfg = cfg.withDefaults()
	s := store.New[int64, int64](store.Config{
		Partitions: cfg.Partitions, Engine: kind, Buckets: cfg.Buckets,
	})
	for k := int64(0); k < int64(cfg.Keys); k++ {
		s.Put(k, 0)
	}
	return runStructLoad(kind, cfg, storeDriver{s: s, sweep: cfg.CrossSweep})
}

// runStructLoad is the shared timed section: seeded keyed traffic, sum
// invariant, allocation accounting. Seeding transactions have already
// run, so the engine counters are snapshotted before the load.
func runStructLoad(kind stm.EngineKind, cfg StoreConfig, d structDriver) StoreResult {
	pre, _ := d.stats()
	writeCounts := make([]int64, cfg.Workers)
	crossCounts := make([]int64, cfg.Workers)

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 104_729 + int64(worker)*7919))
			pick := cfg.keyPicker(worker)
			for op := 0; op < cfg.OpsPerWorker; op++ {
				k := pick()
				if cfg.CrossFrac > 0 && r.Intn(100) < cfg.CrossFrac {
					b := pick()
					if b == k { // a transfer needs two keys
						b = (k + 1) % int64(cfg.Keys)
					}
					d.cross(k, b)
					crossCounts[worker]++
				} else if r.Intn(100) < cfg.ReadFrac {
					d.read(k)
				} else {
					d.incr(k)
					writeCounts[worker]++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	post, per := d.stats()
	res := StoreResult{
		Engine: kind, Config: cfg, Elapsed: elapsed,
		Commits:      post.Commits - pre.Commits,
		Aborts:       post.Aborts - pre.Aborts,
		Retries:      post.Retries - pre.Retries,
		Sum:          d.sum(cfg.Keys),
		PerPartition: per,
	}
	for _, n := range writeCounts {
		res.Writes += n
	}
	for _, n := range crossCounts {
		res.CrossOps += n
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Commits) / elapsed.Seconds()
	}
	if res.Commits > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Commits)
		res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Commits)
	}
	return res
}
