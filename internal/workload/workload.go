// Package workload generates transactional workloads for the two
// experiment families of EXPERIMENTS.md:
//
//   - real-parallelism load on the production stm/ engines (E1): worker
//     goroutines running read-modify-write transactions over variable
//     sets with configurable contention patterns;
//   - static transaction sets for the simulated protocols (machine-level
//     step and contention accounting).
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pcltm/stm"
)

// Pattern selects how workers pick variables.
type Pattern int

const (
	// Disjoint partitions the variables among workers: zero conflicts,
	// the parallelism-friendly extreme the PCL theorem's P property is
	// about.
	Disjoint Pattern = iota
	// Uniform picks variables uniformly at random: moderate conflicts.
	Uniform
	// Zipf skews accesses toward a few hot variables: high contention.
	Zipf
	// PhaseShift changes contention mid-run: each worker's first half of
	// operations stays in its disjoint partition, the second half hammers
	// a handful of shared hot variables — the workload the adaptive
	// engine's regime switch exists for.
	PhaseShift
)

var patternNames = [...]string{"disjoint", "uniform", "zipf", "phase"}

// phaseHotVars is the hot-set size of PhaseShift's contended phase.
const phaseHotVars = 4

func (p Pattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("pattern(%d)", int(p))
	}
	return patternNames[p]
}

// Patterns lists all patterns.
func Patterns() []Pattern { return []Pattern{Disjoint, Uniform, Zipf, PhaseShift} }

// PatternByName resolves a pattern name.
func PatternByName(s string) (Pattern, bool) {
	for _, p := range Patterns() {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// Config describes a real-engine load run.
type Config struct {
	// Vars is the number of transactional variables.
	Vars int
	// ReadsPerTx and WritesPerTx size each transaction.
	ReadsPerTx, WritesPerTx int
	// Pattern selects the contention shape.
	Pattern Pattern
	// ZipfS is the Zipf skew (>1; used by the Zipf pattern).
	ZipfS float64
	// Workers is the number of goroutines.
	Workers int
	// OpsPerWorker is the number of transactions per goroutine.
	OpsPerWorker int
	// Seed makes variable choices reproducible. Every driver in this
	// repo (tmbench -seed, the benchmarks, the conformance stress
	// driver) defaults it to 1, so two runs of the same command replay
	// the same variable choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Vars == 0 {
		c.Vars = 256
	}
	if c.ReadsPerTx == 0 {
		c.ReadsPerTx = 3
	}
	if c.WritesPerTx == 0 {
		c.WritesPerTx = 2
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 1000
	}
	return c
}

// Result summarizes one load run.
type Result struct {
	// Engine is the engine measured.
	Engine stm.EngineKind
	// Config echoes the workload.
	Config Config
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Commits, Aborts, Retries are the engine counters accumulated by
	// the run.
	Commits, Aborts, Retries uint64
	// Throughput is committed transactions per second.
	Throughput float64
	// AllocsPerOp and BytesPerOp are heap allocations and bytes per
	// committed transaction over the whole parallel section (runtime
	// mallocs/total-alloc deltas divided by commits). They include the
	// workers' fixed per-run overhead (goroutine spawn, RNG state),
	// which amortizes toward zero as OpsPerWorker grows; with pooled
	// attempt state the steady-state contribution of the engines
	// themselves is zero (see the stm package's allocation contract).
	AllocsPerOp, BytesPerOp float64
	// Sum is the total of all variables after the run (workload
	// invariant: equals the number of increments performed).
	Sum int64
	// Adaptive is the per-regime breakdown when the engine is
	// stm.EngineAdaptive; nil otherwise.
	Adaptive *stm.AdaptiveStats
}

// Picker returns one worker's variable chooser for a pattern: a function
// from the worker's op ordinal to a variable index. The semantics are the
// contract every driver (Run, the benchmarks, the conformance stress
// driver) shares: Disjoint partitions [0,vars) among the workers, Uniform
// draws uniformly, Zipf skews toward low indices with skew zipfS, and
// PhaseShift plays Disjoint for the first half of opsPerWorker ordinals
// and hammers the phaseHotVars lowest variables for the second half.
func Picker(p Pattern, r *rand.Rand, zipfS float64, vars, workers, opsPerWorker, worker int) func(op int) int {
	if zipfS <= 1 {
		zipfS = 1.2
	}
	disjointPick := func() int {
		span := vars / workers
		if span == 0 {
			span = 1
		}
		base := (worker * span) % vars
		return base + r.Intn(span)
	}
	var z *rand.Zipf
	if p == Zipf {
		z = rand.NewZipf(r, zipfS, 1, uint64(vars-1))
	}
	return func(op int) int {
		switch p {
		case Disjoint:
			return disjointPick()
		case Zipf:
			return int(z.Uint64())
		case PhaseShift:
			if op*2 < opsPerWorker {
				return disjointPick()
			}
			hot := phaseHotVars
			if hot > vars {
				hot = vars
			}
			return r.Intn(hot)
		default:
			return r.Intn(vars)
		}
	}
}

// Run executes the workload on a fresh engine of the given kind.
func Run(kind stm.EngineKind, cfg Config) Result {
	cfg = cfg.withDefaults()
	eng := stm.NewEngine(kind)
	vars := make([]*stm.TVar[int64], cfg.Vars)
	for i := range vars {
		vars[i] = stm.NewTVar[int64](0)
	}

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			pick := Picker(cfg.Pattern, r, cfg.ZipfS, cfg.Vars, cfg.Workers, cfg.OpsPerWorker, worker)
			for op := 0; op < cfg.OpsPerWorker; op++ {
				_ = eng.Atomically(func(tx *stm.Tx) error {
					var acc int64
					for i := 0; i < cfg.ReadsPerTx; i++ {
						acc += stm.Get(tx, vars[pick(op)])
					}
					for i := 0; i < cfg.WritesPerTx; i++ {
						tv := vars[pick(op)]
						stm.Set(tx, tv, stm.Get(tx, tv)+1)
					}
					_ = acc
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	var sum int64
	_ = eng.Atomically(func(tx *stm.Tx) error {
		sum = 0
		for _, v := range vars {
			sum += stm.Get(tx, v)
		}
		return nil
	})

	st := eng.Stats()
	res := Result{
		Engine: kind, Config: cfg, Elapsed: elapsed,
		Commits: st.Commits, Aborts: st.Aborts, Retries: st.Retries,
		Sum: sum,
	}
	if as, ok := eng.AdaptiveStats(); ok {
		res.Adaptive = &as
	}
	if elapsed > 0 {
		res.Throughput = float64(st.Commits) / elapsed.Seconds()
	}
	if st.Commits > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(st.Commits)
		res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(st.Commits)
	}
	return res
}

// ExpectedSum returns the invariant total the run must produce.
func (c Config) ExpectedSum() int64 {
	c = c.withDefaults()
	return int64(c.Workers) * int64(c.OpsPerWorker) * int64(c.WritesPerTx)
}
