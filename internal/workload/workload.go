// Package workload generates transactional workloads for the two
// experiment families of EXPERIMENTS.md:
//
//   - real-parallelism load on the production stm/ engines (E1): worker
//     goroutines running read-modify-write transactions over variable
//     sets with configurable contention patterns;
//   - static transaction sets for the simulated protocols (machine-level
//     step and contention accounting).
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pcltm/stm"
	"pcltm/tstructs"
)

// Pattern selects how workers pick variables.
type Pattern int

const (
	// Disjoint partitions the variables among workers: zero conflicts,
	// the parallelism-friendly extreme the PCL theorem's P property is
	// about.
	Disjoint Pattern = iota
	// Uniform picks variables uniformly at random: moderate conflicts.
	Uniform
	// Zipf skews accesses toward a few hot variables: high contention.
	Zipf
	// PhaseShift changes contention mid-run: each worker's first half of
	// operations stays in its disjoint partition, the second half hammers
	// a handful of shared hot variables — the workload the adaptive
	// engine's regime switch exists for.
	PhaseShift
	// RateLimit models the server package's admission control: each
	// worker's data accesses are disjoint (zero data conflicts), but
	// every transaction also spends a token from one shared
	// tstructs.TBucket — N workers serializing on a single two-word
	// TVar. It is the maximal-contention regime with the minimal
	// footprint: the conflict window is one read-modify-write, so it
	// measures pure conflict-resolution cost rather than long-footprint
	// validation.
	RateLimit
)

var patternNames = [...]string{"disjoint", "uniform", "zipf", "phase", "ratelimit"}

// phaseHotVars is the hot-set size of PhaseShift's contended phase.
const phaseHotVars = 4

func (p Pattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("pattern(%d)", int(p))
	}
	return patternNames[p]
}

// Patterns lists all patterns.
func Patterns() []Pattern { return []Pattern{Disjoint, Uniform, Zipf, PhaseShift, RateLimit} }

// PatternByName resolves a pattern name.
func PatternByName(s string) (Pattern, bool) {
	for _, p := range Patterns() {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// ValueKind selects the payload type the workload's transactions carry —
// the value-kind dimension of the E1/E6 experiments. Every transaction
// performs one Get+Set of a payload variable of this kind on top of its
// int64 counter ops, so the cells isolate what the engines' value
// representation charges per kind: int, string and struct ride the
// raw-word path (zero allocations), any is the boxed fallback (one box
// per Set).
type ValueKind int

const (
	// VKInt: int64 payloads — one data word.
	VKInt ValueKind = iota
	// VKString: string payloads from a fixed table — data pointer + length.
	VKString
	// VKStruct: a two-word pointer-free struct — both data words.
	VKStruct
	// VKAny: interface payloads — the boxed fallback, one allocation per Set.
	VKAny
)

var valueKindNames = [...]string{"int", "string", "struct", "any"}

func (k ValueKind) String() string {
	if k < 0 || int(k) >= len(valueKindNames) {
		return fmt.Sprintf("values(%d)", int(k))
	}
	return valueKindNames[k]
}

// ValueKinds lists all payload kinds.
func ValueKinds() []ValueKind { return []ValueKind{VKInt, VKString, VKStruct, VKAny} }

// ValueKindByName resolves a payload kind name.
func ValueKindByName(s string) (ValueKind, bool) {
	for _, k := range ValueKinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Config describes a real-engine load run.
type Config struct {
	// Vars is the number of transactional variables.
	Vars int
	// ReadsPerTx and WritesPerTx size each transaction.
	ReadsPerTx, WritesPerTx int
	// Pattern selects the contention shape.
	Pattern Pattern
	// ZipfS is the Zipf skew (>1; used by the Zipf pattern).
	ZipfS float64
	// Workers is the number of goroutines.
	Workers int
	// OpsPerWorker is the number of transactions per goroutine.
	OpsPerWorker int
	// Values selects the payload kind each transaction carries (default
	// VKInt; see ValueKind).
	Values ValueKind
	// Seed makes variable choices reproducible. Every driver in this
	// repo (tmbench -seed, the benchmarks, the conformance stress
	// driver) defaults it to 1, so two runs of the same command replay
	// the same variable choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Vars == 0 {
		c.Vars = 256
	}
	if c.ReadsPerTx == 0 {
		c.ReadsPerTx = 3
	}
	if c.WritesPerTx == 0 {
		c.WritesPerTx = 2
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 1000
	}
	return c
}

// Result summarizes one load run.
type Result struct {
	// Engine is the engine measured.
	Engine stm.EngineKind
	// Config echoes the workload.
	Config Config
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Commits, Aborts, Retries are the engine counters accumulated by
	// the run.
	Commits, Aborts, Retries uint64
	// Throughput is committed transactions per second.
	Throughput float64
	// AllocsPerOp and BytesPerOp are heap allocations and bytes per
	// committed transaction over the whole parallel section (runtime
	// mallocs/total-alloc deltas divided by commits). They include the
	// workers' fixed per-run overhead (goroutine spawn, RNG state),
	// which amortizes toward zero as OpsPerWorker grows; with pooled
	// attempt state the steady-state contribution of the engines
	// themselves is zero (see the stm package's allocation contract).
	AllocsPerOp, BytesPerOp float64
	// Sum is the total of all variables after the run (workload
	// invariant: equals the number of increments performed).
	Sum int64
	// Adaptive is the per-regime breakdown when the engine is
	// stm.EngineAdaptive; nil otherwise.
	Adaptive *stm.AdaptiveStats
}

// Picker returns one worker's variable chooser for a pattern: a function
// from the worker's op ordinal to a variable index. The semantics are the
// contract every driver (Run, the benchmarks, the conformance stress
// driver) shares: Disjoint partitions [0,vars) among the workers, Uniform
// draws uniformly, Zipf skews toward low indices with skew zipfS, and
// PhaseShift plays Disjoint for the first half of opsPerWorker ordinals
// and hammers the phaseHotVars lowest variables for the second half.
// RateLimit picks like Disjoint — its contention comes from the shared
// token bucket Run threads through every transaction, not from data.
func Picker(p Pattern, r *rand.Rand, zipfS float64, vars, workers, opsPerWorker, worker int) func(op int) int {
	if zipfS <= 1 {
		zipfS = 1.2
	}
	disjointPick := func() int {
		span := vars / workers
		if span == 0 {
			span = 1
		}
		base := (worker * span) % vars
		return base + r.Intn(span)
	}
	var z *rand.Zipf
	if p == Zipf {
		z = rand.NewZipf(r, zipfS, 1, uint64(vars-1))
	}
	return func(op int) int {
		switch p {
		case Disjoint, RateLimit:
			// RateLimit's data accesses are disjoint on purpose: the only
			// conflict the pattern allows is the shared token bucket Run
			// threads through every transaction.
			return disjointPick()
		case Zipf:
			return int(z.Uint64())
		case PhaseShift:
			if op*2 < opsPerWorker {
				return disjointPick()
			}
			hot := phaseHotVars
			if hot > vars {
				hot = vars
			}
			return r.Intn(hot)
		default:
			return r.Intn(vars)
		}
	}
}

// payloadPair is the VKStruct payload: two words, pointer-free, so it
// rides the raw-word path.
type payloadPair struct{ A, B uint64 }

// payloadStrings is the VKString table; preallocated so the workload
// itself stores strings without constructing them (what the STM charges
// per string Set is the measurand, not fmt).
var payloadStrings = func() [16]string {
	var out [16]string
	for i := range out {
		out[i] = fmt.Sprintf("payload-string-%02d", i)
	}
	return out
}()

// payloadAnys is the VKAny table, boxed once up front; each Set still
// re-boxes through the engines' fallback, which is the point.
var payloadAnys = func() [16]any {
	var out [16]any
	for i := range out {
		out[i] = int64(i)
	}
	return out
}()

// makePayload builds the per-run payload accessor: apply(tx, i, n)
// performs one Get+Set of payload variable i with a value derived from
// the op ordinal n. Every kind runs the same transaction shape, so cells
// differ only in what the value representation costs.
func makePayload(kind ValueKind, vars int) func(tx *stm.Tx, i, n int) {
	switch kind {
	case VKString:
		pv := make([]*stm.TVar[string], vars)
		for i := range pv {
			pv[i] = stm.NewTVar[string](payloadStrings[0])
		}
		return func(tx *stm.Tx, i, n int) {
			_ = stm.Get(tx, pv[i])
			stm.Set(tx, pv[i], payloadStrings[n%len(payloadStrings)])
		}
	case VKStruct:
		pv := make([]*stm.TVar[payloadPair], vars)
		for i := range pv {
			pv[i] = stm.NewTVar[payloadPair](payloadPair{})
		}
		return func(tx *stm.Tx, i, n int) {
			v := stm.Get(tx, pv[i])
			stm.Set(tx, pv[i], payloadPair{A: v.A + uint64(n), B: v.B ^ uint64(n)})
		}
	case VKAny:
		pv := make([]*stm.TVar[any], vars)
		for i := range pv {
			pv[i] = stm.NewTVar[any](payloadAnys[0])
		}
		return func(tx *stm.Tx, i, n int) {
			_ = stm.Get(tx, pv[i])
			stm.Set(tx, pv[i], payloadAnys[n%len(payloadAnys)])
		}
	default: // VKInt
		pv := make([]*stm.TVar[int64], vars)
		for i := range pv {
			pv[i] = stm.NewTVar[int64](0)
		}
		return func(tx *stm.Tx, i, n int) {
			v := stm.Get(tx, pv[i])
			stm.Set(tx, pv[i], v+int64(n))
		}
	}
}

// Run executes the workload on a fresh engine of the given kind.
func Run(kind stm.EngineKind, cfg Config) Result {
	cfg = cfg.withDefaults()
	eng := stm.NewEngine(kind)
	vars := make([]*stm.TVar[int64], cfg.Vars)
	for i := range vars {
		vars[i] = stm.NewTVar[int64](0)
	}
	payload := makePayload(cfg.Values, cfg.Vars)
	// The RateLimit pattern threads one shared admission bucket through
	// every transaction. Capacity and rate are effectively unbounded:
	// the measurand is the serialization on the bucket's TVar, not
	// rejected work — the sum invariant stays exactly ExpectedSum.
	var limiter *tstructs.TBucket
	if cfg.Pattern == RateLimit {
		limiter = tstructs.NewTBucket(1<<40, 1e12)
	}

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			pick := Picker(cfg.Pattern, r, cfg.ZipfS, cfg.Vars, cfg.Workers, cfg.OpsPerWorker, worker)
			for op := 0; op < cfg.OpsPerWorker; op++ {
				var now int64
				if limiter != nil {
					now = time.Now().UnixNano()
				}
				_ = eng.Atomically(func(tx *stm.Tx) error {
					if limiter != nil {
						limiter.TryTake(tx, now, 1)
					}
					var acc int64
					for i := 0; i < cfg.ReadsPerTx; i++ {
						acc += stm.Get(tx, vars[pick(op)])
					}
					for i := 0; i < cfg.WritesPerTx; i++ {
						tv := vars[pick(op)]
						stm.Set(tx, tv, stm.Get(tx, tv)+1)
					}
					payload(tx, pick(op), op)
					_ = acc
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	var sum int64
	_ = eng.Atomically(func(tx *stm.Tx) error {
		sum = 0
		for _, v := range vars {
			sum += stm.Get(tx, v)
		}
		return nil
	})

	st := eng.Stats()
	res := Result{
		Engine: kind, Config: cfg, Elapsed: elapsed,
		Commits: st.Commits, Aborts: st.Aborts, Retries: st.Retries,
		Sum: sum,
	}
	if as, ok := eng.AdaptiveStats(); ok {
		res.Adaptive = &as
	}
	if elapsed > 0 {
		res.Throughput = float64(st.Commits) / elapsed.Seconds()
	}
	if st.Commits > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(st.Commits)
		res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(st.Commits)
	}
	return res
}

// ExpectedSum returns the invariant total the run must produce.
func (c Config) ExpectedSum() int64 {
	c = c.withDefaults()
	return int64(c.Workers) * int64(c.OpsPerWorker) * int64(c.WritesPerTx)
}
