// Package machine implements the asynchronous shared-memory system of the
// paper's Section 3 as a deterministic, step-granular simulator.
//
// A Machine owns a set of base objects (atomic registers with read, write,
// CAS, TAS, FAA and LL/SC primitives) and a set of processes. Protocol code
// runs in one goroutine per process; every base-object access and every
// TM-interface event crosses a scheduler handshake, so exactly one process
// advances at a time and each primitive — together with the local
// computation that follows it — is one atomic step, exactly as the model
// prescribes. The machine records every step, which gives downstream
// analyses (histories, consistency checkers, contention/DAP analysis,
// indistinguishability comparisons) a complete, replayable view of the
// execution.
//
// Configurations are reproduced by deterministic replay: "resume from the
// configuration after prefix π" is implemented as "build a fresh machine
// and re-run π". This preserves the proof-relevant semantics because every
// protocol is deterministic by construction (the machine offers no
// randomness, time, or map-iteration nondeterminism).
package machine

import (
	"fmt"

	"pcltm/internal/core"
)

// object is one base object: named state plus LL/SC link flags. The link
// flags are part of the object's state: an operation that invalidates a
// link is a state update and therefore non-trivial.
type object struct {
	id    core.ObjID
	name  string
	state any
	// linked tracks which processes hold a valid load-link on the
	// object; any state change invalidates all links.
	linked map[core.ProcID]bool
}

// apply executes one atomic primitive and reports the response and whether
// the object's state changed (the paper's non-triviality test).
func (o *object) apply(p core.ProcID, prim core.Prim, args []any) (resp any, changed bool) {
	switch prim {
	case core.PrimRead:
		return o.state, false

	case core.PrimWrite:
		if len(args) != 1 {
			panic(fmt.Sprintf("machine: write on %s needs 1 arg, got %d", o.name, len(args)))
		}
		changed = o.state != args[0]
		changed = o.store(args[0]) || changed
		return nil, changed

	case core.PrimCAS:
		if len(args) != 2 {
			panic(fmt.Sprintf("machine: cas on %s needs 2 args, got %d", o.name, len(args)))
		}
		if o.state == args[0] {
			changed = o.state != args[1]
			changed = o.store(args[1]) || changed
			return true, changed
		}
		return false, false

	case core.PrimTAS:
		prev, ok := o.state.(bool)
		if !ok {
			panic(fmt.Sprintf("machine: tas on non-boolean object %s", o.name))
		}
		changed = !prev
		if changed {
			changed = o.store(true) || changed
		}
		return prev, changed

	case core.PrimFAA:
		if len(args) != 1 {
			panic(fmt.Sprintf("machine: faa on %s needs 1 arg, got %d", o.name, len(args)))
		}
		prev, ok := o.state.(int64)
		if !ok {
			panic(fmt.Sprintf("machine: faa on non-int64 object %s", o.name))
		}
		delta, ok := args[0].(int64)
		if !ok {
			panic(fmt.Sprintf("machine: faa delta on %s must be int64", o.name))
		}
		changed = delta != 0
		if changed {
			changed = o.store(prev+delta) || changed
		}
		return prev, changed

	case core.PrimLL:
		o.linked[p] = true
		return o.state, false

	case core.PrimSC:
		if len(args) != 1 {
			panic(fmt.Sprintf("machine: sc on %s needs 1 arg, got %d", o.name, len(args)))
		}
		if !o.linked[p] {
			return false, false
		}
		changed = o.state != args[0]
		changed = o.store(args[0]) || changed // SC success always breaks links
		return true, changed

	default:
		panic(fmt.Sprintf("machine: unknown primitive %v on %s", prim, o.name))
	}
}

// store installs a new state, invalidating all load-links; it reports
// whether any link was invalidated (itself an observable state change).
func (o *object) store(v any) (linksBroken bool) {
	o.state = v
	linksBroken = len(o.linked) > 0
	for p := range o.linked {
		delete(o.linked, p)
	}
	return linksBroken
}
