package machine

import (
	"errors"
	"fmt"

	"pcltm/internal/core"
)

// ErrProcDone is returned when a step is requested from a process whose
// program has already finished.
var ErrProcDone = errors.New("machine: process program has finished")

// ErrNotSpawned is returned when a step is requested from a process that
// has no program.
var ErrNotSpawned = errors.New("machine: process has no spawned program")

// BudgetError reports that a run exhausted its step budget without the
// process finishing — the machine-level observation of blocking (a spinning
// lock acquisition, a livelock, or a diverging protocol).
type BudgetError struct {
	Proc  core.ProcID
	Steps int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("machine: %s exhausted budget of %d steps without completing", e.Proc, e.Steps)
}

// poison is panicked into parked process goroutines when the machine is
// closed, unwinding them cleanly.
type poison struct{}

// request is the process→scheduler handshake message: one step to perform.
type request struct {
	prim core.Prim
	obj  core.ObjID
	args []any
	txn  core.TxID
	ev   *core.Event
	resp chan any
}

// proc is the scheduler-side view of a process.
type proc struct {
	id       core.ProcID
	req      chan *request
	finished chan struct{}
	pending  *request
	done     bool
	spawned  bool
	panicMsg any
}

// Machine is a deterministic shared-memory multiprocessor with full
// step-level scheduling control. It is not safe for concurrent use: a
// single harness goroutine drives it.
type Machine struct {
	objs   []*object
	procs  []*proc
	steps  []core.Step
	specs  map[core.TxID]core.TxSpec
	closed chan struct{}
}

// New creates a machine with nprocs processes (no programs yet).
func New(nprocs int) *Machine {
	m := &Machine{
		specs:  make(map[core.TxID]core.TxSpec),
		closed: make(chan struct{}),
	}
	for i := 0; i < nprocs; i++ {
		m.procs = append(m.procs, &proc{
			id:       core.ProcID(i),
			req:      make(chan *request),
			finished: make(chan struct{}),
		})
	}
	return m
}

// NProcs returns the number of processes.
func (m *Machine) NProcs() int { return len(m.procs) }

// NewObject allocates a base object with the given display name and
// initial state, returning its id.
func (m *Machine) NewObject(name string, initial any) core.ObjID {
	id := core.ObjID(len(m.objs))
	m.objs = append(m.objs, &object{
		id:     id,
		name:   name,
		state:  initial,
		linked: make(map[core.ProcID]bool),
	})
	return id
}

// ObjectName returns the display name of a base object.
func (m *Machine) ObjectName(id core.ObjID) string {
	if id == core.NoObj {
		return ""
	}
	return m.objs[id].name
}

// ObjectState returns the current state of a base object (harness-side
// inspection; does not count as a step).
func (m *Machine) ObjectState(id core.ObjID) any { return m.objs[id].state }

// RegisterSpec records the static code of a transaction so that recorded
// executions carry the specs the DAP and consistency analyses need.
func (m *Machine) RegisterSpec(spec core.TxSpec) { m.specs[spec.ID] = spec }

// Spawn installs program as the code of process p and runs it until it
// parks at its first step (or finishes without taking any step). Programs
// interact with shared memory exclusively through the provided Ctx.
func (m *Machine) Spawn(p core.ProcID, program func(*Ctx)) {
	pr := m.procs[p]
	if pr.spawned {
		panic(fmt.Sprintf("machine: process %s spawned twice", p))
	}
	pr.spawned = true
	ctx := &Ctx{m: m, p: pr}
	go func() {
		defer close(pr.finished)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(poison); ok {
					return // machine closed; unwind silently
				}
				pr.panicMsg = r
			}
		}()
		program(ctx)
	}()
	m.waitPark(pr)
}

// waitPark blocks until the process is parked at its next step or has
// finished.
func (m *Machine) waitPark(pr *proc) {
	select {
	case r := <-pr.req:
		pr.pending = r
	case <-pr.finished:
		pr.done = true
		if pr.panicMsg != nil {
			panic(fmt.Sprintf("machine: process %s panicked: %v", pr.id, pr.panicMsg))
		}
	}
}

// Done reports whether process p's program has finished.
func (m *Machine) Done(p core.ProcID) bool { return m.procs[p].done }

// Poised returns the primitive and object of the step process p will take
// next, mirroring the proof's "the step p is poised to perform". The third
// return is false if p is done or not spawned.
func (m *Machine) Poised(p core.ProcID) (core.Prim, core.ObjID, bool) {
	pr := m.procs[p]
	if pr.pending == nil {
		return 0, core.NoObj, false
	}
	return pr.pending.prim, pr.pending.obj, true
}

// Step lets process p take exactly one step: its parked primitive is
// applied atomically, recorded, and the process runs on (local computation
// included in the same step) until it parks again or finishes.
func (m *Machine) Step(p core.ProcID) (core.Step, error) {
	pr := m.procs[p]
	if !pr.spawned {
		return core.Step{}, ErrNotSpawned
	}
	if pr.done {
		return core.Step{}, ErrProcDone
	}
	r := pr.pending
	pr.pending = nil

	step := core.Step{
		Index: len(m.steps),
		Proc:  pr.id,
		Prim:  r.prim,
		Obj:   r.obj,
		Args:  r.args,
	}
	var resp any
	if r.prim == core.PrimEvent {
		ev := r.ev
		ev.StepIndex = step.Index
		ev.Proc = pr.id
		step.Event = ev
		step.Txn = ev.Txn
	} else {
		obj := m.objs[r.obj]
		step.ObjName = obj.name
		var changed bool
		resp, changed = obj.apply(pr.id, r.prim, r.args)
		step.Resp = resp
		step.Changed = changed
		step.Txn = r.txn
	}
	m.steps = append(m.steps, step)

	r.resp <- resp
	m.waitPark(pr)
	return step, nil
}

// RunUntilDone grants steps to p until its program finishes, up to budget
// steps. It returns the number of steps taken; if the budget is exhausted
// first it returns a *BudgetError, making blocking observable.
func (m *Machine) RunUntilDone(p core.ProcID, budget int) (int, error) {
	n := 0
	for !m.Done(p) {
		if n >= budget {
			return n, &BudgetError{Proc: p, Steps: n}
		}
		if _, err := m.Step(p); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// StepN grants exactly n steps to p; it is an error for the program to
// finish early.
func (m *Machine) StepN(p core.ProcID, n int) error {
	for i := 0; i < n; i++ {
		if m.Done(p) {
			return fmt.Errorf("machine: %s finished after %d of %d requested steps", p, i, n)
		}
		if _, err := m.Step(p); err != nil {
			return err
		}
	}
	return nil
}

// StepCount returns the number of steps recorded so far.
func (m *Machine) StepCount() int { return len(m.steps) }

// Steps returns the recorded steps (shared slice; callers must not
// modify).
func (m *Machine) Steps() []core.Step { return m.steps }

// Execution snapshots the recorded run.
func (m *Machine) Execution() *core.Execution {
	steps := make([]core.Step, len(m.steps))
	copy(steps, m.steps)
	specs := make(map[core.TxID]core.TxSpec, len(m.specs))
	for id, s := range m.specs {
		specs[id] = s
	}
	return &core.Execution{Steps: steps, Specs: specs, NProcs: len(m.procs)}
}

// Close unwinds all parked process goroutines. The machine must not be
// used afterwards.
func (m *Machine) Close() {
	select {
	case <-m.closed:
		return
	default:
	}
	close(m.closed)
	// Drain processes parked with a pending request: answer them with
	// poison via the closed channel (their next select observes it).
	for _, pr := range m.procs {
		if pr.spawned && !pr.done {
			<-pr.finished
		}
	}
}
