package machine

import (
	"testing"

	"pcltm/internal/core"
)

// TestProcessPanicSurfaces: a panic inside protocol code must surface
// through the machine (with the process identified), not hang the
// scheduler.
func TestProcessPanicSurfaces(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))

	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("process panic swallowed")
		}
	}()
	m.Spawn(0, func(c *Ctx) {
		c.Read(obj)
		panic("protocol bug")
	})
	// The panic happens after the first step's local computation; the
	// machine re-raises it at the next park.
	_, _ = m.Step(0)
	t.Fatalf("panic did not surface")
}

// TestSpawnTwicePanics guards against double-spawning a process.
func TestSpawnTwicePanics(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) { c.Read(obj) })
	defer func() {
		if recover() == nil {
			t.Fatalf("double spawn accepted")
		}
	}()
	m.Spawn(0, func(c *Ctx) {})
}

// TestObjectNameLookup covers the display-name helpers.
func TestObjectNameLookup(t *testing.T) {
	m := New(1)
	defer m.Close()
	id := m.NewObject("counter", int64(5))
	if m.ObjectName(id) != "counter" {
		t.Errorf("name = %q", m.ObjectName(id))
	}
	if m.ObjectName(core.NoObj) != "" {
		t.Errorf("NoObj has a name")
	}
	if m.ObjectState(id) != int64(5) {
		t.Errorf("state = %v", m.ObjectState(id))
	}
	if m.NProcs() != 1 {
		t.Errorf("nprocs = %d", m.NProcs())
	}
}

// TestExecutionSnapshotIsolation: mutating the machine after Execution()
// must not affect the snapshot.
func TestExecutionSnapshotIsolation(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) {
		c.Write(obj, core.Value(1))
		c.Write(obj, core.Value(2))
	})
	if err := m.StepN(0, 1); err != nil {
		t.Fatal(err)
	}
	snap := m.Execution()
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if len(snap.Steps) != 1 {
		t.Errorf("snapshot grew after later steps: %d", len(snap.Steps))
	}
	if m.StepCount() != 2 {
		t.Errorf("machine steps = %d", m.StepCount())
	}
}
