package machine

import (
	"errors"
	"testing"

	"pcltm/internal/core"
)

func TestObjectPrimitives(t *testing.T) {
	m := New(2)
	defer m.Close()
	reg := m.NewObject("r", core.Value(0))
	cnt := m.NewObject("c", int64(0))
	flag := m.NewObject("f", false)

	done := make(chan struct{})
	m.Spawn(0, func(c *Ctx) {
		defer close(done)
		if v := c.Read(reg); v != core.Value(0) {
			t.Errorf("initial read = %v", v)
		}
		c.Write(reg, core.Value(7))
		if v := c.Read(reg); v != core.Value(7) {
			t.Errorf("read after write = %v", v)
		}
		if !c.CAS(reg, core.Value(7), core.Value(9)) {
			t.Errorf("cas with correct expected failed")
		}
		if c.CAS(reg, core.Value(7), core.Value(11)) {
			t.Errorf("cas with stale expected succeeded")
		}
		if prev := c.FAA(cnt, 5); prev != 0 {
			t.Errorf("faa prev = %d", prev)
		}
		if prev := c.FAA(cnt, 3); prev != 5 {
			t.Errorf("faa prev = %d", prev)
		}
		if was := c.TAS(flag); was {
			t.Errorf("tas on clear flag returned true")
		}
		if was := c.TAS(flag); !was {
			t.Errorf("tas on set flag returned false")
		}
	})
	if _, err := m.RunUntilDone(0, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	<-done
	if got := m.ObjectState(reg); got != core.Value(9) {
		t.Errorf("final register state = %v", got)
	}
	if got := m.ObjectState(cnt); got != int64(8) {
		t.Errorf("final counter state = %v", got)
	}
}

func TestLLSC(t *testing.T) {
	m := New(2)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))

	// p0 LLs, p1 writes (breaking the link), p0's SC must fail; then a
	// clean LL/SC by p0 must succeed.
	m.Spawn(0, func(c *Ctx) {
		c.LL(obj)
		if c.SC(obj, core.Value(1)) {
			t.Errorf("sc after intervening write succeeded")
		}
		c.LL(obj)
		if !c.SC(obj, core.Value(2)) {
			t.Errorf("clean sc failed")
		}
	})
	m.Spawn(1, func(c *Ctx) {
		c.Write(obj, core.Value(42))
	})

	if err := m.StepN(0, 1); err != nil { // p0: LL
		t.Fatal(err)
	}
	if err := m.StepN(1, 1); err != nil { // p1: write, breaks link
		t.Fatal(err)
	}
	if _, err := m.RunUntilDone(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := m.ObjectState(obj); got != core.Value(2) {
		t.Errorf("final state = %v", got)
	}
}

func TestStepRecordingAndNonTriviality(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) {
		c.SetTxn(4)
		c.Read(obj)                              // trivial
		c.Write(obj, core.Value(1))              // non-trivial
		c.Write(obj, core.Value(1))              // same value: trivial
		c.CAS(obj, core.Value(0), core.Value(2)) // fails: trivial
		c.CAS(obj, core.Value(1), core.Value(2)) // succeeds: non-trivial
	})
	if _, err := m.RunUntilDone(0, 100); err != nil {
		t.Fatal(err)
	}
	steps := m.Steps()
	if len(steps) != 5 {
		t.Fatalf("recorded %d steps, want 5", len(steps))
	}
	wantChanged := []bool{false, true, false, false, true}
	for i, s := range steps {
		if s.Changed != wantChanged[i] {
			t.Errorf("step %d (%v) changed=%v, want %v", i, s, s.Changed, wantChanged[i])
		}
		if s.Txn != 4 {
			t.Errorf("step %d txn = %v, want T4", i, s.Txn)
		}
		if s.Index != i {
			t.Errorf("step %d index = %d", i, s.Index)
		}
	}
}

func TestEventSteps(t *testing.T) {
	m := New(1)
	defer m.Close()
	m.Spawn(0, func(c *Ctx) {
		c.SetTxn(1)
		c.InvBegin()
		c.RespBegin()
		c.InvRead("x")
		c.RespRead("x", 0)
		c.InvCommit()
		c.RespCommitted()
	})
	if _, err := m.RunUntilDone(0, 100); err != nil {
		t.Fatal(err)
	}
	exec := m.Execution()
	evs := exec.Events()
	if len(evs) != 6 {
		t.Fatalf("recorded %d events, want 6", len(evs))
	}
	if exec.StatusOf(1) != core.TxCommitted {
		t.Errorf("T1 status = %v", exec.StatusOf(1))
	}
	if v := exec.ReadValues(1)["x"]; v != 0 {
		t.Errorf("read value = %v", v)
	}
	for i, ev := range evs {
		if ev.StepIndex != i {
			t.Errorf("event %d step index = %d", i, ev.StepIndex)
		}
		if ev.Proc != 0 || ev.Txn != 1 {
			t.Errorf("event %d tagged %v/%v", i, ev.Proc, ev.Txn)
		}
	}
}

func TestInterleavingControl(t *testing.T) {
	m := New(2)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	var p0Saw core.Value
	m.Spawn(0, func(c *Ctx) {
		c.Write(obj, core.Value(1))
		p0Saw = c.Read(obj).(core.Value)
	})
	m.Spawn(1, func(c *Ctx) {
		c.Write(obj, core.Value(2))
	})
	// p0 writes 1, p1 overwrites with 2, p0 reads 2.
	if err := m.StepN(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StepN(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunUntilDone(0, 10); err != nil {
		t.Fatal(err)
	}
	if p0Saw != 2 {
		t.Errorf("p0 read %v, want 2 (interleaving not honored)", p0Saw)
	}
}

func TestBudgetDetectsSpin(t *testing.T) {
	m := New(1)
	defer m.Close()
	lock := m.NewObject("lock", true) // held forever
	m.Spawn(0, func(c *Ctx) {
		for c.Read(lock).(bool) { // spins: lock never released
		}
	})
	n, err := m.RunUntilDone(0, 50)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if n != 50 || be.Steps != 50 {
		t.Errorf("steps = %d / %d, want 50", n, be.Steps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Machine {
		m := New(2)
		x := m.NewObject("x", core.Value(0))
		y := m.NewObject("y", core.Value(0))
		m.Spawn(0, func(c *Ctx) {
			c.SetTxn(1)
			c.Write(x, core.Value(1))
			v := c.Read(y).(core.Value)
			c.Write(x, v+10)
		})
		m.Spawn(1, func(c *Ctx) {
			c.SetTxn(2)
			c.Write(y, core.Value(5))
			c.Read(x)
		})
		return m
	}
	run := func(sched Schedule) []core.Step {
		m := build()
		defer m.Close()
		if err := RunSchedule(m, sched); err != nil {
			t.Fatal(err)
		}
		return m.Execution().Steps
	}
	sched := Schedule{Steps(0, 1), Steps(1, 2), Solo(0), Solo(1)}
	a := run(sched)
	b := run(sched)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("replay diverges at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPoised(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) {
		c.CAS(obj, core.Value(0), core.Value(1))
	})
	prim, o, ok := m.Poised(0)
	if !ok || prim != core.PrimCAS || o != obj {
		t.Errorf("poised = %v %v %v", prim, o, ok)
	}
	if _, err := m.RunUntilDone(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.Poised(0); ok {
		t.Errorf("done process reports poised step")
	}
}

func TestCloseUnwindsParkedProcesses(t *testing.T) {
	m := New(2)
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) {
		for {
			c.Read(obj) // parks forever
		}
	})
	m.Spawn(1, func(c *Ctx) {
		c.Read(obj)
	})
	if err := m.StepN(0, 3); err != nil {
		t.Fatal(err)
	}
	m.Close() // must not hang
	m.Close() // idempotent
}

func TestStepAfterDone(t *testing.T) {
	m := New(1)
	defer m.Close()
	m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) {})
	if !m.Done(0) {
		t.Fatalf("empty program not done after spawn")
	}
	if _, err := m.Step(0); !errors.Is(err, ErrProcDone) {
		t.Errorf("step on done proc: err = %v", err)
	}
}

func TestStepOnUnspawned(t *testing.T) {
	m := New(1)
	defer m.Close()
	if _, err := m.Step(0); !errors.Is(err, ErrNotSpawned) {
		t.Errorf("err = %v, want ErrNotSpawned", err)
	}
}

func TestScheduleStepsErrorWhenProgramEndsEarly(t *testing.T) {
	m := New(1)
	defer m.Close()
	obj := m.NewObject("x", core.Value(0))
	m.Spawn(0, func(c *Ctx) { c.Read(obj) })
	err := RunSchedule(m, Schedule{Steps(0, 5)})
	if err == nil {
		t.Errorf("expected error when requesting more steps than the program has")
	}
}
