package machine

import "pcltm/internal/core"

// DefaultBudget bounds run-until-done phases; exhausting it is the
// machine's observation of blocking.
const DefaultBudget = 1 << 16

// StopKind says when a schedule phase ends.
type StopKind int

const (
	// UntilDone grants steps until the process's program finishes.
	UntilDone StopKind = iota
	// UntilCount grants exactly N steps.
	UntilCount
)

// Phase grants steps to one process until its stop condition.
type Phase struct {
	// Proc is the process granted steps.
	Proc core.ProcID
	// Stop is the phase's stop condition.
	Stop StopKind
	// N is the step count for UntilCount phases.
	N int
	// Budget caps UntilDone phases (0 means DefaultBudget).
	Budget int
}

// Solo builds an UntilDone phase: p runs solo until its program finishes.
func Solo(p core.ProcID) Phase { return Phase{Proc: p, Stop: UntilDone} }

// Steps builds an UntilCount phase: p takes exactly n steps.
func Steps(p core.ProcID, n int) Phase { return Phase{Proc: p, Stop: UntilCount, N: n} }

// Schedule is a sequence of phases, executed in order. Because exactly one
// process is granted steps at a time, a schedule denotes a unique execution
// of a deterministic protocol — this is how the harness names the proof's
// compositions (α1 · α2 · s1 · α3 · ...).
type Schedule []Phase

// RunSchedule executes the schedule on a (typically fresh) machine. It
// stops at the first failing phase and returns the error; the machine keeps
// the steps recorded so far, so callers can inspect the partial execution.
func RunSchedule(m *Machine, sched Schedule) error {
	for _, ph := range sched {
		switch ph.Stop {
		case UntilDone:
			budget := ph.Budget
			if budget == 0 {
				budget = DefaultBudget
			}
			if _, err := m.RunUntilDone(ph.Proc, budget); err != nil {
				return err
			}
		case UntilCount:
			if err := m.StepN(ph.Proc, ph.N); err != nil {
				return err
			}
		}
	}
	return nil
}
