package machine

import "pcltm/internal/core"

// Ctx is the process-side handle to the machine: the only way protocol
// code touches shared memory or emits TM-interface events. Every method
// that takes a step parks the calling goroutine until the scheduler grants
// it.
type Ctx struct {
	m   *Machine
	p   *proc
	txn core.TxID
}

// Proc returns the id of the process this context belongs to.
func (c *Ctx) Proc() core.ProcID { return c.p.id }

// SetTxn tags subsequent steps with the given transaction. Protocol
// drivers call it when a transaction begins.
func (c *Ctx) SetTxn(t core.TxID) { c.txn = t }

// Txn returns the current transaction tag.
func (c *Ctx) Txn() core.TxID { return c.txn }

// step performs the scheduler handshake for one step.
func (c *Ctx) step(r *request) any {
	r.resp = make(chan any, 1)
	select {
	case c.p.req <- r:
	case <-c.m.closed:
		panic(poison{})
	}
	select {
	case v := <-r.resp:
		return v
	case <-c.m.closed:
		panic(poison{})
	}
}

func (c *Ctx) access(prim core.Prim, obj core.ObjID, args ...any) any {
	return c.step(&request{prim: prim, obj: obj, args: args, txn: c.txn})
}

// Read atomically reads the base object's state.
func (c *Ctx) Read(o core.ObjID) any { return c.access(core.PrimRead, o) }

// Write atomically replaces the base object's state.
func (c *Ctx) Write(o core.ObjID, v any) { c.access(core.PrimWrite, o, v) }

// CAS atomically compares-and-swaps the base object's state.
func (c *Ctx) CAS(o core.ObjID, old, new any) bool {
	return c.access(core.PrimCAS, o, old, new).(bool)
}

// TAS atomically test-and-sets a boolean base object, returning the prior
// state.
func (c *Ctx) TAS(o core.ObjID) bool { return c.access(core.PrimTAS, o).(bool) }

// FAA atomically fetch-and-adds delta to an int64 base object, returning
// the prior value.
func (c *Ctx) FAA(o core.ObjID, delta int64) int64 {
	return c.access(core.PrimFAA, o, delta).(int64)
}

// LL load-links the base object.
func (c *Ctx) LL(o core.ObjID) any { return c.access(core.PrimLL, o) }

// SC store-conditionally writes v; it succeeds only if no state change
// intervened since this process's last LL on the object.
func (c *Ctx) SC(o core.ObjID, v any) bool {
	return c.access(core.PrimSC, o, v).(bool)
}

// event records a TM-interface event as a step.
func (c *Ctx) event(ev *core.Event) {
	ev.Txn = c.txn
	c.step(&request{prim: core.PrimEvent, txn: c.txn, ev: ev})
}

// InvBegin records the invocation of begin_T.
func (c *Ctx) InvBegin() { c.event(&core.Event{Op: core.OpBegin, Inv: true}) }

// RespBegin records begin_T's ok response.
func (c *Ctx) RespBegin() { c.event(&core.Event{Op: core.OpBegin, Status: core.StatusOK}) }

// InvRead records the invocation of x.read().
func (c *Ctx) InvRead(x core.Item) { c.event(&core.Event{Op: core.OpRead, Inv: true, Item: x}) }

// RespRead records a successful read response returning v.
func (c *Ctx) RespRead(x core.Item, v core.Value) {
	c.event(&core.Event{Op: core.OpRead, Item: x, Value: v, Status: core.StatusOK})
}

// InvWrite records the invocation of x.write(v).
func (c *Ctx) InvWrite(x core.Item, v core.Value) {
	c.event(&core.Event{Op: core.OpWrite, Inv: true, Item: x, Value: v})
}

// RespWrite records a successful write's ok response.
func (c *Ctx) RespWrite(x core.Item, v core.Value) {
	c.event(&core.Event{Op: core.OpWrite, Item: x, Value: v, Status: core.StatusOK})
}

// InvCommit records the invocation of commit_T.
func (c *Ctx) InvCommit() { c.event(&core.Event{Op: core.OpTryCommit, Inv: true}) }

// RespCommitted records C_T.
func (c *Ctx) RespCommitted() {
	c.event(&core.Event{Op: core.OpTryCommit, Status: core.StatusCommitted})
}

// RespAborted records A_T as the response of the given operation.
func (c *Ctx) RespAborted(op core.OpKind, x core.Item) {
	c.event(&core.Event{Op: op, Item: x, Status: core.StatusAborted})
}
