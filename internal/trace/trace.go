// Package trace serializes recorded executions to JSON and back, so the
// consistency and DAP checkers can run on traces produced elsewhere
// (cmd/tmcheck reads these files). The codec preserves everything the
// analyses need: step order, per-step process/transaction/object identity,
// non-triviality, the full TM-interface event stream, and the static
// transaction specs.
package trace

import (
	"encoding/json"
	"fmt"

	"pcltm/internal/core"
)

// File is the on-disk representation of an execution.
type File struct {
	// Meta describes the trace's provenance; optional, absent from
	// pre-metadata files.
	Meta *Meta `json:"meta,omitempty"`
	// NProcs is the machine width.
	NProcs int `json:"nprocs"`
	// Specs are the static transactions.
	Specs []SpecJSON `json:"specs"`
	// Steps is the full step sequence.
	Steps []StepJSON `json:"steps"`
}

// Meta is a trace's provenance: which tool recorded it, over which
// engine, and — for histories stitched from a partitioned store's
// per-partition recorders — how many partitions fed it. Checkers ignore
// it; tmcheck prints it, and the stitching fields let a reader of a
// server-recorded artifact know the history merges several engines'
// logs over one shared stamp counter.
type Meta struct {
	// Source names the producer ("tmserve", "tmcheck -live", a test).
	Source string `json:"source,omitempty"`
	// Engine is the engine kind's short name.
	Engine string `json:"engine,omitempty"`
	// Partitions counts the per-partition recorders stitched into the
	// trace; 0 or 1 means a single unpartitioned log.
	Partitions int `json:"partitions,omitempty"`
	// HistoryDropped counts attempts rotated out of a bounded history
	// accumulator before this trace was cut. When non-zero the trace is
	// a suffix, not the full run: certification verdicts over it speak
	// only for the retained window.
	HistoryDropped uint64 `json:"history_dropped,omitempty"`
}

// SpecJSON is a static transaction.
type SpecJSON struct {
	ID   int      `json:"id"`
	Proc int      `json:"proc"`
	Ops  []OpJSON `json:"ops"`
}

// OpJSON is one spec operation.
type OpJSON struct {
	Kind  string `json:"kind"` // "read" | "write"
	Item  string `json:"item"`
	Value int64  `json:"value,omitempty"`
}

// StepJSON is one step. Object identity is carried by name; primitive
// arguments and responses are carried as display strings (the analyses
// use only identity, non-triviality and events).
type StepJSON struct {
	Proc    int        `json:"proc"`
	Txn     int        `json:"txn,omitempty"`
	Obj     string     `json:"obj,omitempty"`
	Prim    string     `json:"prim"`
	Changed bool       `json:"changed,omitempty"`
	Args    []string   `json:"args,omitempty"`
	Resp    string     `json:"resp,omitempty"`
	Event   *EventJSON `json:"event,omitempty"`
}

// EventJSON is a TM-interface event.
type EventJSON struct {
	Op     string `json:"op"`
	Inv    bool   `json:"inv,omitempty"`
	Item   string `json:"item,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Status string `json:"status,omitempty"`
}

var primByName = map[string]core.Prim{
	"event": core.PrimEvent, "read": core.PrimRead, "write": core.PrimWrite,
	"cas": core.PrimCAS, "tas": core.PrimTAS, "faa": core.PrimFAA,
	"ll": core.PrimLL, "sc": core.PrimSC,
}

var opByName = map[string]core.OpKind{
	"begin": core.OpBegin, "read": core.OpRead, "write": core.OpWrite,
	"commit": core.OpTryCommit, "abort": core.OpAbortReq,
}

var statusByName = map[string]core.Status{
	"": core.StatusNone, "ok": core.StatusOK, "C": core.StatusCommitted, "A": core.StatusAborted,
}

// Encode marshals an execution to JSON.
func Encode(e *core.Execution) ([]byte, error) {
	return EncodeWithMeta(e, nil)
}

// EncodeWithMeta marshals an execution with provenance metadata; nil
// meta encodes identically to Encode.
func EncodeWithMeta(e *core.Execution, meta *Meta) ([]byte, error) {
	f := File{Meta: meta, NProcs: e.NProcs}
	for _, id := range sortedSpecIDs(e) {
		spec := e.Specs[id]
		sj := SpecJSON{ID: int(spec.ID), Proc: int(spec.Proc)}
		for _, op := range spec.Ops {
			oj := OpJSON{Item: string(op.Item), Value: int64(op.Value)}
			if op.Kind == core.OpRead {
				oj.Kind = "read"
			} else {
				oj.Kind = "write"
			}
			sj.Ops = append(sj.Ops, oj)
		}
		f.Specs = append(f.Specs, sj)
	}
	for _, s := range e.Steps {
		sj := StepJSON{
			Proc:    int(s.Proc),
			Txn:     int(s.Txn),
			Obj:     s.ObjName,
			Prim:    s.Prim.String(),
			Changed: s.Changed,
		}
		for _, a := range s.Args {
			sj.Args = append(sj.Args, fmt.Sprint(a))
		}
		if s.Resp != nil {
			sj.Resp = fmt.Sprint(s.Resp)
		}
		if ev := s.Event; ev != nil {
			sj.Event = &EventJSON{
				Op:     ev.Op.String(),
				Inv:    ev.Inv,
				Item:   string(ev.Item),
				Value:  int64(ev.Value),
				Status: ev.Status.String(),
			}
		}
		f.Steps = append(f.Steps, sj)
	}
	return json.MarshalIndent(f, "", " ")
}

// Decode unmarshals an execution from JSON. Object ids are reassigned in
// first-appearance order of the names, which preserves identity.
func Decode(data []byte) (*core.Execution, error) {
	e, _, err := DecodeFile(data)
	return e, err
}

// DecodeFile unmarshals an execution plus its provenance metadata (nil
// when the file carries none).
func DecodeFile(data []byte) (*core.Execution, *Meta, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	e := &core.Execution{
		NProcs: f.NProcs,
		Specs:  make(map[core.TxID]core.TxSpec),
	}
	for _, sj := range f.Specs {
		spec := core.TxSpec{ID: core.TxID(sj.ID), Proc: core.ProcID(sj.Proc)}
		for _, oj := range sj.Ops {
			switch oj.Kind {
			case "read":
				spec.Ops = append(spec.Ops, core.R(core.Item(oj.Item)))
			case "write":
				spec.Ops = append(spec.Ops, core.W(core.Item(oj.Item), core.Value(oj.Value)))
			default:
				return nil, nil, fmt.Errorf("trace: unknown spec op kind %q", oj.Kind)
			}
		}
		e.Specs[spec.ID] = spec
	}
	objIDs := make(map[string]core.ObjID)
	for i, sj := range f.Steps {
		prim, ok := primByName[sj.Prim]
		if !ok {
			return nil, nil, fmt.Errorf("trace: step %d has unknown primitive %q", i, sj.Prim)
		}
		step := core.Step{
			Index:   i,
			Proc:    core.ProcID(sj.Proc),
			Txn:     core.TxID(sj.Txn),
			Obj:     core.NoObj,
			ObjName: sj.Obj,
			Prim:    prim,
			Changed: sj.Changed,
		}
		if prim != core.PrimEvent {
			id, ok := objIDs[sj.Obj]
			if !ok {
				id = core.ObjID(len(objIDs))
				objIDs[sj.Obj] = id
			}
			step.Obj = id
		}
		for _, a := range sj.Args {
			step.Args = append(step.Args, a)
		}
		if sj.Resp != "" {
			step.Resp = sj.Resp
		}
		if sj.Event != nil {
			op, ok := opByName[sj.Event.Op]
			if !ok {
				return nil, nil, fmt.Errorf("trace: step %d has unknown event op %q", i, sj.Event.Op)
			}
			st, ok := statusByName[sj.Event.Status]
			if !ok {
				return nil, nil, fmt.Errorf("trace: step %d has unknown status %q", i, sj.Event.Status)
			}
			step.Event = &core.Event{
				StepIndex: i,
				Proc:      step.Proc,
				Txn:       step.Txn,
				Op:        op,
				Inv:       sj.Event.Inv,
				Item:      core.Item(sj.Event.Item),
				Value:     core.Value(sj.Event.Value),
				Status:    st,
			}
		}
		e.Steps = append(e.Steps, step)
	}
	return e, f.Meta, nil
}

func sortedSpecIDs(e *core.Execution) []core.TxID {
	ids := make([]core.TxID, 0, len(e.Specs))
	for id := range e.Specs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
