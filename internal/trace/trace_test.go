package trace

import (
	"testing"

	"pcltm/internal/consistency"
	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/history"
	"pcltm/internal/machine"
	"pcltm/internal/stms"
	"pcltm/internal/stms/portfolio"
)

// recordedExecution produces a real execution via a simulated protocol.
func recordedExecution(t *testing.T) *core.Execution {
	t.Helper()
	proto, err := portfolio.ByName("naive")
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.TxSpec{
		{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("x", 1), core.W("y", 2)}},
		{ID: 2, Proc: 1, Ops: []core.TxOp{core.R("y"), core.W("z", 3)}},
	}
	b := &stms.Bundle{Protocol: proto, Specs: specs}
	exec, err := b.Run(machine.Schedule{machine.Solo(0), machine.Solo(1)})
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestRoundTripPreservesAnalyses(t *testing.T) {
	orig := recordedExecution(t)
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Steps) != len(orig.Steps) {
		t.Fatalf("steps = %d, want %d", len(back.Steps), len(orig.Steps))
	}
	// Histories must agree.
	if err := history.CheckWellFormed(back); err != nil {
		t.Fatalf("round-tripped history ill-formed: %v", err)
	}
	v1 := history.FromExecution(orig)
	v2 := history.FromExecution(back)
	if len(v1.Txns) != len(v2.Txns) {
		t.Fatalf("txn counts differ")
	}
	for i := range v1.Txns {
		a, b := v1.Txns[i], v2.Txns[i]
		if a.ID != b.ID || a.Status != b.Status || len(a.Ops) != len(b.Ops) {
			t.Errorf("txn %v differs after round trip", a.ID)
		}
	}
	// Checker verdicts must agree.
	r1 := consistency.Serializable(v1)
	r2 := consistency.Serializable(v2)
	if r1.Satisfied != r2.Satisfied {
		t.Errorf("serializability verdict changed: %v vs %v", r1.Satisfied, r2.Satisfied)
	}
	// DAP analysis must agree (identity carried by object names).
	c1 := dap.Contentions(orig)
	c2 := dap.Contentions(back)
	if len(c1) != len(c2) {
		t.Errorf("contentions differ: %d vs %d", len(c1), len(c2))
	}
	// Specs must survive.
	if len(back.Specs) != 2 || back.Specs[1].String() != orig.Specs[1].String() {
		t.Errorf("specs lost: %v", back.Specs)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{nope")); err == nil {
		t.Errorf("garbage accepted")
	}
	if _, err := Decode([]byte(`{"steps":[{"prim":"zorp"}]}`)); err == nil {
		t.Errorf("unknown primitive accepted")
	}
	if _, err := Decode([]byte(`{"steps":[{"prim":"event","event":{"op":"zorp"}}]}`)); err == nil {
		t.Errorf("unknown event op accepted")
	}
	if _, err := Decode([]byte(`{"specs":[{"id":1,"ops":[{"kind":"zorp"}]}]}`)); err == nil {
		t.Errorf("unknown spec op accepted")
	}
}

func TestObjectIdentityPreserved(t *testing.T) {
	orig := recordedExecution(t)
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Same object name ⇒ same reassigned id.
	byName := make(map[string]core.ObjID)
	for _, s := range back.Steps {
		if s.Prim == core.PrimEvent {
			continue
		}
		if id, ok := byName[s.ObjName]; ok {
			if id != s.Obj {
				t.Fatalf("object %q has two ids", s.ObjName)
			}
		} else {
			byName[s.ObjName] = s.Obj
		}
	}
}
