package trace

import (
	"encoding/json"
	"fmt"
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
)

func TestMetaRoundTrip(t *testing.T) {
	orig := recordedExecution(t)
	meta := &Meta{Source: "tmserve", Engine: "tl2s", Partitions: 4}
	data, err := EncodeWithMeta(orig, meta)
	if err != nil {
		t.Fatal(err)
	}
	back, gotMeta, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta == nil || *gotMeta != *meta {
		t.Fatalf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	if len(back.Steps) != len(orig.Steps) {
		t.Fatalf("steps = %d, want %d", len(back.Steps), len(orig.Steps))
	}
	// The plain Decode path must keep working on a metadata-carrying file.
	back2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2.Steps) != len(orig.Steps) {
		t.Fatalf("Decode on meta file: steps = %d, want %d", len(back2.Steps), len(orig.Steps))
	}
}

func TestMetaAbsentOnLegacyFiles(t *testing.T) {
	orig := recordedExecution(t)
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Encode without meta must not emit the key at all (old readers see
	// byte-identical framing) and DecodeFile must report nil.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["meta"]; ok {
		t.Errorf("meta key present on metadata-free encode")
	}
	_, gotMeta, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != nil {
		t.Errorf("meta on legacy file: %+v", gotMeta)
	}
}

func TestLargeHistoryRoundTrip(t *testing.T) {
	// A few thousand transactions with interleaved intervals — the size
	// class the certifier path ships through trace files.
	const n = 3000
	b := exectest.New().NProcs(4)
	for i := 0; i < n; i++ {
		item := core.Item(fmt.Sprintf("x%d", i%17))
		b.SeqTxn(core.ProcID(i%4), core.TxID(i+1),
			exectest.RV(item, 0), exectest.WV(item, core.Value(i+1)))
	}
	orig := b.Exec()
	data, err := EncodeWithMeta(orig, &Meta{Source: "test", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	back, meta, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Partitions != 2 {
		t.Fatalf("meta lost on large file: %+v", meta)
	}
	if err := history.CheckWellFormed(back); err != nil {
		t.Fatalf("round-tripped large history ill-formed: %v", err)
	}
	v1, v2 := history.FromExecution(orig), history.FromExecution(back)
	if len(v1.Txns) != n || len(v2.Txns) != n {
		t.Fatalf("txn counts: %d and %d, want %d", len(v1.Txns), len(v2.Txns), n)
	}
	for i := range v1.Txns {
		a, c := v1.Txns[i], v2.Txns[i]
		if a.ID != c.ID || a.Status != c.Status ||
			a.BeginIndex != c.BeginIndex || a.IntervalLo != c.IntervalLo || a.IntervalHi != c.IntervalHi ||
			len(a.Ops) != len(c.Ops) {
			t.Fatalf("txn %v differs after round trip", a.ID)
		}
	}
}

func TestDecodeFileRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"truncated":        `{"meta":{"source":"x"},"steps":[{"prim":"rea`,
		"bad meta type":    `{"meta":"tmserve","steps":[]}`,
		"bad status":       `{"steps":[{"prim":"event","event":{"op":"begin","status":"Z"}}]}`,
		"bad spec op kind": `{"specs":[{"id":1,"ops":[{"kind":"increment"}]}]}`,
	}
	for name, data := range cases {
		if _, _, err := DecodeFile([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
