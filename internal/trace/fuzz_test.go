package trace

import (
	"testing"

	"pcltm/internal/core"
	"pcltm/internal/dap"
	"pcltm/internal/exectest"
	"pcltm/internal/history"
)

// FuzzDecode hardens the trace codec and the downstream analyses against
// arbitrary input: whatever bytes arrive, Decode either errors or yields
// an execution every cheap analysis can process without panicking.
func FuzzDecode(f *testing.F) {
	seed := exectest.New().
		Spec(core.TxSpec{ID: 1, Proc: 0, Ops: []core.TxOp{core.R("x"), core.W("y", 1)}}).
		Begin(0, 1).
		Read(0, 1, "x", 0).
		Obj(0, 1, "val(x)", core.PrimRead, false).
		Write(0, 1, "y", 1).
		Obj(0, 1, "val(y)", core.PrimWrite, true).
		Commit(0, 1).
		Exec()
	real, err := Encode(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nprocs":3,"steps":[{"proc":0,"prim":"read","obj":"x"}]}`))
	f.Add([]byte(`{"steps":[{"prim":"event","event":{"op":"begin","inv":true}}]}`))
	f.Add([]byte(`{"specs":[{"id":1,"proc":0,"ops":[{"kind":"read","item":"x"}]}]}`))
	f.Add([]byte(`{"steps":[{"prim":"cas","obj":"o","changed":true,"txn":-1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return
		}
		// Analyses must be total on decoded executions.
		_ = history.CheckWellFormed(e)
		_ = history.FromExecution(e)
		_ = dap.Contentions(e)
		_ = dap.CheckStrict(e)
		for _, id := range e.TxIDs() {
			_ = e.StatusOf(id)
			_ = e.ReadValues(id)
		}
		// Re-encoding must succeed.
		if _, err := Encode(e); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
