// Package core defines the shared vocabulary of the PCL reproduction: the
// identifiers, values, step and event records that every other layer — the
// deterministic machine, the history projections, the consistency checkers,
// the DAP analyzers and the Section-4 adversary — exchanges.
//
// The types here mirror Section 3 of Bushkov, Dziuma, Fatourou, Guerraoui,
// "The PCL Theorem" (SPAA 2014): processes take atomic steps on base
// objects, transactions invoke begin/read/write/commit/abort operations on
// data items, and an execution is the interleaved record of both.
package core

import "fmt"

// ProcID identifies a process p_i. Processes are numbered from 0; the
// paper's p1..p7 map to ProcID 0..6.
type ProcID int

// String renders the process in the paper's p_i notation (1-based).
func (p ProcID) String() string { return fmt.Sprintf("p%d", int(p)+1) }

// TxID identifies a transaction. The zero value NoTx tags steps taken
// outside any transaction (e.g. machine bookkeeping).
type TxID int

// NoTx tags steps that do not belong to a transaction.
const NoTx TxID = 0

// String renders the transaction in the paper's T_k notation.
func (t TxID) String() string {
	if t == NoTx {
		return "T?"
	}
	return fmt.Sprintf("T%d", int(t))
}

// ObjID identifies a base object allocated on a Machine. Base objects are
// the low-level shared-memory cells providing atomic primitives; they are
// distinct from data items, which are the application-level locations a TM
// implements on top of base objects.
type ObjID int

// NoObj tags steps that touch no base object (TM-interface events).
const NoObj ObjID = -1

// Item names a data item ("application object"). The paper uses symbolic
// names such as "b3" or "e1,3"; keeping items as strings keeps recorded
// executions and checker witnesses human-readable.
type Item string

// Value is the domain of data-item values. Every data item starts at 0,
// matching the paper's convention ("the initial value of every data item is
// considered to be 0").
type Value int64

// InitialValue is the value every data item holds before any write.
const InitialValue Value = 0
