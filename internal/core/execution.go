package core

import "fmt"

// TxStatus classifies a transaction's fate within a recorded execution.
type TxStatus int

const (
	// TxLive: the transaction has begun but has invoked neither commit
	// nor abort, or an operation is still pending.
	TxLive TxStatus = iota
	// TxCommitPending: the history of the transaction ends with an
	// unanswered commit invocation.
	TxCommitPending
	// TxCommitted: the transaction received C_T.
	TxCommitted
	// TxAborted: the transaction received A_T.
	TxAborted
)

var txStatusNames = [...]string{"live", "commit-pending", "committed", "aborted"}

// String returns the status name.
func (s TxStatus) String() string {
	if s < 0 || int(s) >= len(txStatusNames) {
		return fmt.Sprintf("txstatus(%d)", int(s))
	}
	return txStatusNames[s]
}

// Execution is a recorded run of a TM implementation on the machine: the
// totally ordered steps, the embedded history (event steps), and the specs
// of the transactions involved.
type Execution struct {
	// Steps is the full step sequence, Steps[i].Index == i.
	Steps []Step
	// Specs maps each transaction to its static code.
	Specs map[TxID]TxSpec
	// NProcs is the number of processes of the machine that produced the
	// execution.
	NProcs int
}

// Events extracts the history H_α: the subsequence of TM-interface events
// in step order.
func (e *Execution) Events() []*Event {
	var evs []*Event
	for i := range e.Steps {
		if ev := e.Steps[i].Event; ev != nil {
			evs = append(evs, ev)
		}
	}
	return evs
}

// StepsOf returns α|T: the subsequence of steps executed on behalf of
// transaction t (including its event steps).
func (e *Execution) StepsOf(t TxID) []Step {
	var out []Step
	for _, s := range e.Steps {
		if s.Txn == t {
			out = append(out, s)
		}
	}
	return out
}

// ObjectStepsOf returns the base-object steps of t (event steps excluded).
func (e *Execution) ObjectStepsOf(t TxID) []Step {
	var out []Step
	for _, s := range e.Steps {
		if s.Txn == t && s.Prim != PrimEvent {
			out = append(out, s)
		}
	}
	return out
}

// TxIDs returns the transactions that appear in the execution, in order of
// their first step.
func (e *Execution) TxIDs() []TxID {
	seen := make(map[TxID]bool)
	var ids []TxID
	for _, s := range e.Steps {
		if s.Txn != NoTx && !seen[s.Txn] {
			seen[s.Txn] = true
			ids = append(ids, s.Txn)
		}
	}
	return ids
}

// StatusOf computes the fate of transaction t in the execution from its
// events.
func (e *Execution) StatusOf(t TxID) TxStatus {
	status := TxLive
	pendingCommit := false
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev == nil || ev.Txn != t {
			continue
		}
		switch {
		case ev.Inv && ev.Op == OpTryCommit:
			pendingCommit = true
		case !ev.Inv && ev.Status == StatusCommitted:
			return TxCommitted
		case !ev.Inv && ev.Status == StatusAborted:
			return TxAborted
		case ev.Inv:
			pendingCommit = false
		}
	}
	if pendingCommit {
		return TxCommitPending
	}
	return status
}

// Interval returns the active execution interval of t in step indices:
// [first step of any operation invoked by t, last such step]. The second
// return is false if t took no steps.
func (e *Execution) Interval(t TxID) (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for _, s := range e.Steps {
		if s.Txn != t {
			continue
		}
		if lo < 0 {
			lo = s.Index
		}
		hi = s.Index
	}
	return lo, hi, lo >= 0
}

// ReadValues returns, for transaction t, the values its successful reads
// returned, keyed by item, in the order read responses occur. If an item
// is read more than once the last value wins (the construction's
// transactions read each item once).
func (e *Execution) ReadValues(t TxID) map[Item]Value {
	out := make(map[Item]Value)
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev == nil || ev.Txn != t || ev.Inv || ev.Op != OpRead || ev.Status != StatusOK {
			continue
		}
		out[ev.Item] = ev.Value
	}
	return out
}

// BeginIndex returns the step index of t's begin invocation, or -1.
func (e *Execution) BeginIndex(t TxID) int {
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev != nil && ev.Txn == t && ev.Inv && ev.Op == OpBegin {
			return e.Steps[i].Index
		}
	}
	return -1
}

// Precedes reports T1 <α T2: T1 is not live and its commit/abort response
// precedes T2's begin invocation.
func (e *Execution) Precedes(t1, t2 TxID) bool {
	end1 := -1
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev == nil {
			continue
		}
		if ev.Txn == t1 && !ev.Inv && (ev.Status == StatusCommitted || ev.Status == StatusAborted) {
			end1 = e.Steps[i].Index
		}
	}
	if end1 < 0 {
		return false
	}
	b2 := e.BeginIndex(t2)
	return b2 >= 0 && end1 < b2
}

// Concurrent reports that neither T1 <α T2 nor T2 <α T1.
func (e *Execution) Concurrent(t1, t2 TxID) bool {
	return !e.Precedes(t1, t2) && !e.Precedes(t2, t1)
}

// InvokedCommit reports whether t invoked commit_T in the execution.
func (e *Execution) InvokedCommit(t TxID) bool {
	for i := range e.Steps {
		ev := e.Steps[i].Event
		if ev != nil && ev.Txn == t && ev.Inv && ev.Op == OpTryCommit {
			return true
		}
	}
	return false
}

// Append returns a new Execution whose steps are e's followed by more,
// reindexed; specs are merged. Neither input is modified.
func (e *Execution) Append(more *Execution) *Execution {
	out := &Execution{
		Specs:  make(map[TxID]TxSpec, len(e.Specs)+len(more.Specs)),
		NProcs: max(e.NProcs, more.NProcs),
	}
	for id, s := range e.Specs {
		out.Specs[id] = s
	}
	for id, s := range more.Specs {
		out.Specs[id] = s
	}
	out.Steps = make([]Step, 0, len(e.Steps)+len(more.Steps))
	out.Steps = append(out.Steps, e.Steps...)
	out.Steps = append(out.Steps, more.Steps...)
	for i := range out.Steps {
		out.Steps[i].Index = i
		if ev := out.Steps[i].Event; ev != nil {
			clone := *ev
			clone.StepIndex = i
			out.Steps[i].Event = &clone
		}
	}
	return out
}
