package core

import "fmt"

// Prim enumerates the atomic primitives a base object supports, plus the
// pseudo-primitive PrimEvent used to record TM-interface invocations and
// responses as steps ("Invocations and responses performed by transactions
// are considered as steps", Section 3).
type Prim int

const (
	// PrimEvent marks a TM-interface invocation or response step. It
	// touches no base object and is always trivial.
	PrimEvent Prim = iota
	// PrimRead returns the object's state without changing it (trivial).
	PrimRead
	// PrimWrite replaces the object's state (non-trivial unless the new
	// state equals the old one).
	PrimWrite
	// PrimCAS compares the state to an expected value and, on match,
	// replaces it; responds with the success boolean.
	PrimCAS
	// PrimTAS sets the state to true and responds with the prior state.
	PrimTAS
	// PrimFAA adds a delta to an integer state and responds with the
	// prior value.
	PrimFAA
	// PrimLL performs a load-linked read; PrimSC the paired
	// store-conditional.
	PrimLL
	// PrimSC stores if no write intervened since the process's last LL on
	// the object; responds with the success boolean.
	PrimSC
)

var primNames = [...]string{"event", "read", "write", "cas", "tas", "faa", "ll", "sc"}

// String returns the lowercase primitive mnemonic.
func (p Prim) String() string {
	if p < 0 || int(p) >= len(primNames) {
		return fmt.Sprintf("prim(%d)", int(p))
	}
	return primNames[p]
}

// Step is one atomic unit of an execution: a single primitive applied to a
// single base object by one process (plus the local computation that
// follows, which the machine serializes into the same step), or a
// TM-interface event. Steps are totally ordered by Index.
type Step struct {
	// Index is the step's position in the execution, from 0.
	Index int
	// Proc is the process that took the step.
	Proc ProcID
	// Txn is the transaction on whose behalf the step was taken.
	Txn TxID
	// Obj is the base object accessed, or NoObj for event steps.
	Obj ObjID
	// ObjName is the allocator-supplied name of Obj ("" for events).
	ObjName string
	// Prim is the primitive applied.
	Prim Prim
	// Args are the primitive's arguments (e.g. value written, CAS
	// expected/new pair).
	Args []any
	// Resp is the primitive's response (value read, CAS success, ...).
	Resp any
	// Changed reports whether the primitive updated the object's state;
	// it is the paper's non-triviality test for contention.
	Changed bool
	// Event holds the TM-interface event for PrimEvent steps, nil
	// otherwise.
	Event *Event
}

// NonTrivial reports whether the step performed a non-trivial operation,
// i.e. one that updated the state of its base object.
func (s Step) NonTrivial() bool { return s.Changed }

// String renders a compact, human-readable form of the step.
func (s Step) String() string {
	if s.Prim == PrimEvent {
		return fmt.Sprintf("#%d %s/%s %v", s.Index, s.Proc, s.Txn, s.Event)
	}
	return fmt.Sprintf("#%d %s/%s %s(%s%v)=%v", s.Index, s.Proc, s.Txn, s.Prim, s.ObjName, s.Args, s.Resp)
}
