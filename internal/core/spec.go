package core

import (
	"fmt"
	"sort"
)

// TxOp is one operation of a static transaction's code: a read of an item
// or a write of a fixed value to an item.
type TxOp struct {
	// Kind is OpRead or OpWrite.
	Kind OpKind
	// Item is the data item accessed.
	Item Item
	// Value is the value written (writes only).
	Value Value
}

// R constructs a read operation on item x.
func R(x Item) TxOp { return TxOp{Kind: OpRead, Item: x} }

// W constructs a write of v to item x.
func W(x Item, v Value) TxOp { return TxOp{Kind: OpWrite, Item: x, Value: v} }

// String renders the operation in the paper's notation.
func (op TxOp) String() string {
	if op.Kind == OpRead {
		return fmt.Sprintf("%s.read()", op.Item)
	}
	return fmt.Sprintf("%s.write(%d)", op.Item, op.Value)
}

// TxSpec is a static, predefined transaction: its data set can be derived
// by inspecting its code, as the paper assumes for the Section-4
// construction ("we assume that transactions are static and predefined").
type TxSpec struct {
	// ID is the transaction's identity (T1..T7 in the construction).
	ID TxID
	// Proc is the process that executes the transaction.
	Proc ProcID
	// Ops is the transaction's code in program order. A run performs
	// begin, then Ops in order, then commit.
	Ops []TxOp
}

// DataSet returns D(T): the set of items the transaction's code reads or
// writes, sorted for determinism.
func (t TxSpec) DataSet() []Item {
	seen := make(map[Item]bool, len(t.Ops))
	var items []Item
	for _, op := range t.Ops {
		if !seen[op.Item] {
			seen[op.Item] = true
			items = append(items, op.Item)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// ReadSet returns the items the transaction reads, in first-access order.
func (t TxSpec) ReadSet() []Item { return t.itemsOf(OpRead) }

// WriteSet returns the items the transaction writes, in first-access order.
func (t TxSpec) WriteSet() []Item { return t.itemsOf(OpWrite) }

func (t TxSpec) itemsOf(kind OpKind) []Item {
	seen := make(map[Item]bool, len(t.Ops))
	var items []Item
	for _, op := range t.Ops {
		if op.Kind == kind && !seen[op.Item] {
			seen[op.Item] = true
			items = append(items, op.Item)
		}
	}
	return items
}

// Writes reports whether the transaction's code writes item x.
func (t TxSpec) Writes(x Item) bool {
	for _, op := range t.Ops {
		if op.Kind == OpWrite && op.Item == x {
			return true
		}
	}
	return false
}

// Conflicts reports whether two static transactions conflict, i.e. whether
// their data sets intersect (D(T1) ∩ D(T2) ≠ ∅). Note the paper's
// definition is about data sets, not about the items actually accessed in
// a particular execution.
func Conflicts(a, b TxSpec) bool {
	in := make(map[Item]bool)
	for _, op := range a.Ops {
		in[op.Item] = true
	}
	for _, op := range b.Ops {
		if in[op.Item] {
			return true
		}
	}
	return false
}

// ItemUniverse returns the sorted union of the data sets of the given
// specs: the items a TM instance must provide shared representations for.
func ItemUniverse(specs []TxSpec) []Item {
	seen := make(map[Item]bool)
	var items []Item
	for _, s := range specs {
		for _, x := range s.DataSet() {
			if !seen[x] {
				seen[x] = true
				items = append(items, x)
			}
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// String renders the spec as "Tk@pi: x.read() y.write(1) ...".
func (t TxSpec) String() string {
	s := fmt.Sprintf("%s@%s:", t.ID, t.Proc)
	for _, op := range t.Ops {
		s += " " + op.String()
	}
	return s
}
