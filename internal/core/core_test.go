package core

import (
	"testing"
	"testing/quick"
)

func TestProcTxStrings(t *testing.T) {
	if got := ProcID(0).String(); got != "p1" {
		t.Errorf("ProcID(0) = %q, want p1", got)
	}
	if got := TxID(7).String(); got != "T7" {
		t.Errorf("TxID(7) = %q, want T7", got)
	}
	if got := NoTx.String(); got != "T?" {
		t.Errorf("NoTx = %q, want T?", got)
	}
}

func TestPrimAndStatusStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{PrimRead.String(), "read"},
		{PrimCAS.String(), "cas"},
		{PrimEvent.String(), "event"},
		{StatusCommitted.String(), "C"},
		{StatusAborted.String(), "A"},
		{StatusOK.String(), "ok"},
		{OpTryCommit.String(), "commit"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func specT1() TxSpec {
	return TxSpec{ID: 1, Proc: 0, Ops: []TxOp{
		R("b3"), R("b7"),
		W("a", 1), W("b1", 1), W("c1", 1), W("d1", 1), W("e1,3", 1),
	}}
}

func specT3() TxSpec {
	return TxSpec{ID: 3, Proc: 2, Ops: []TxOp{
		R("b1"), R("b4"),
		W("b3", 1), W("c3", 1), W("e1,3", 1), W("e3,4", 1),
	}}
}

func specT5() TxSpec {
	return TxSpec{ID: 5, Proc: 4, Ops: []TxOp{
		R("b2"), R("b6"),
		W("b5", 1), W("c5", 1), W("e2,5", 1), W("e5,6", 1),
	}}
}

func TestDataSet(t *testing.T) {
	ds := specT1().DataSet()
	want := []Item{"a", "b1", "b3", "b7", "c1", "d1", "e1,3"}
	if len(ds) != len(want) {
		t.Fatalf("DataSet = %v, want %v", ds, want)
	}
	for i := range ds {
		if ds[i] != want[i] {
			t.Fatalf("DataSet = %v, want %v", ds, want)
		}
	}
}

func TestReadWriteSets(t *testing.T) {
	s := specT1()
	rs := s.ReadSet()
	if len(rs) != 2 || rs[0] != "b3" || rs[1] != "b7" {
		t.Errorf("ReadSet = %v", rs)
	}
	ws := s.WriteSet()
	if len(ws) != 5 || ws[0] != "a" {
		t.Errorf("WriteSet = %v", ws)
	}
	if !s.Writes("e1,3") || s.Writes("b3") {
		t.Errorf("Writes misclassifies")
	}
}

func TestConflicts(t *testing.T) {
	t1, t3, t5 := specT1(), specT3(), specT5()
	if !Conflicts(t1, t3) {
		t.Errorf("T1 and T3 share b1, b3, e1,3: must conflict")
	}
	if Conflicts(t1, t5) {
		t.Errorf("T1 and T5 are disjoint: must not conflict")
	}
	if Conflicts(t3, t5) {
		t.Errorf("T3 and T5 are disjoint: must not conflict")
	}
}

func TestItemUniverse(t *testing.T) {
	u := ItemUniverse([]TxSpec{specT1(), specT3()})
	seen := make(map[Item]bool)
	for _, x := range u {
		if seen[x] {
			t.Fatalf("duplicate item %s in universe %v", x, u)
		}
		seen[x] = true
	}
	for _, x := range append(specT1().DataSet(), specT3().DataSet()...) {
		if !seen[x] {
			t.Fatalf("missing item %s in universe %v", x, u)
		}
	}
}

// buildExec assembles a small execution by hand: T1 commits, then T3 begins
// and stays commit-pending.
func buildExec() *Execution {
	mk := func(i int, tx TxID, ev *Event) Step {
		if ev != nil {
			ev.StepIndex = i
			ev.Txn = tx
			return Step{Index: i, Proc: ProcID(int(tx) - 1), Txn: tx, Obj: NoObj, Prim: PrimEvent, Event: ev}
		}
		return Step{Index: i, Proc: ProcID(int(tx) - 1), Txn: tx, Obj: 0, ObjName: "o", Prim: PrimWrite, Args: []any{Value(1)}, Changed: true}
	}
	steps := []Step{
		mk(0, 1, &Event{Op: OpBegin, Inv: true}),
		mk(1, 1, &Event{Op: OpBegin, Status: StatusOK}),
		mk(2, 1, &Event{Op: OpRead, Inv: true, Item: "b3"}),
		mk(3, 1, &Event{Op: OpRead, Status: StatusOK, Item: "b3", Value: 0}),
		mk(4, 1, nil),
		mk(5, 1, &Event{Op: OpTryCommit, Inv: true}),
		mk(6, 1, &Event{Op: OpTryCommit, Status: StatusCommitted}),
		mk(7, 3, &Event{Op: OpBegin, Inv: true}),
		mk(8, 3, &Event{Op: OpBegin, Status: StatusOK}),
		mk(9, 3, &Event{Op: OpRead, Inv: true, Item: "b1"}),
		mk(10, 3, &Event{Op: OpRead, Status: StatusOK, Item: "b1", Value: 1}),
		mk(11, 3, &Event{Op: OpTryCommit, Inv: true}),
	}
	return &Execution{Steps: steps, Specs: map[TxID]TxSpec{1: specT1(), 3: specT3()}, NProcs: 7}
}

func TestExecutionStatus(t *testing.T) {
	e := buildExec()
	if got := e.StatusOf(1); got != TxCommitted {
		t.Errorf("T1 status = %v, want committed", got)
	}
	if got := e.StatusOf(3); got != TxCommitPending {
		t.Errorf("T3 status = %v, want commit-pending", got)
	}
	if got := e.StatusOf(9); got != TxLive {
		t.Errorf("unknown txn status = %v, want live", got)
	}
}

func TestExecutionIntervalAndOrder(t *testing.T) {
	e := buildExec()
	lo, hi, ok := e.Interval(1)
	if !ok || lo != 0 || hi != 6 {
		t.Errorf("interval(T1) = [%d,%d] ok=%v", lo, hi, ok)
	}
	if !e.Precedes(1, 3) {
		t.Errorf("T1 must precede T3")
	}
	if e.Precedes(3, 1) || e.Concurrent(1, 3) {
		t.Errorf("ordering misclassified")
	}
	if !e.InvokedCommit(3) {
		t.Errorf("T3 invoked commit")
	}
}

func TestExecutionReadValues(t *testing.T) {
	e := buildExec()
	rv := e.ReadValues(3)
	if v, ok := rv["b1"]; !ok || v != 1 {
		t.Errorf("T3 read values = %v, want b1:1", rv)
	}
	rv1 := e.ReadValues(1)
	if v, ok := rv1["b3"]; !ok || v != 0 {
		t.Errorf("T1 read values = %v, want b3:0", rv1)
	}
}

func TestExecutionStepsOf(t *testing.T) {
	e := buildExec()
	if got := len(e.StepsOf(1)); got != 7 {
		t.Errorf("steps of T1 = %d, want 7", got)
	}
	if got := len(e.ObjectStepsOf(1)); got != 1 {
		t.Errorf("object steps of T1 = %d, want 1", got)
	}
	ids := e.TxIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("TxIDs = %v", ids)
	}
}

func TestExecutionAppendReindexes(t *testing.T) {
	e := buildExec()
	both := e.Append(e)
	if len(both.Steps) != 2*len(e.Steps) {
		t.Fatalf("append length %d", len(both.Steps))
	}
	for i, s := range both.Steps {
		if s.Index != i {
			t.Fatalf("step %d has index %d", i, s.Index)
		}
		if s.Event != nil && s.Event.StepIndex != i {
			t.Fatalf("event at step %d has stale index %d", i, s.Event.StepIndex)
		}
	}
	// Original must be untouched.
	for i, s := range e.Steps {
		if s.Index != i || (s.Event != nil && s.Event.StepIndex != i) {
			t.Fatalf("append mutated its input at %d", i)
		}
	}
}

// Property: DataSet is duplicate-free and covers exactly the ops' items,
// for arbitrary generated op lists.
func TestDataSetProperty(t *testing.T) {
	f := func(reads, writes []uint8) bool {
		var ops []TxOp
		for _, r := range reads {
			ops = append(ops, R(Item(rune('a'+r%5))))
		}
		for _, w := range writes {
			ops = append(ops, W(Item(rune('a'+w%5)), Value(w)))
		}
		spec := TxSpec{ID: 1, Ops: ops}
		ds := spec.DataSet()
		seen := make(map[Item]bool)
		for _, x := range ds {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		for _, op := range ops {
			if !seen[op.Item] {
				return false
			}
		}
		return len(seen) == len(ds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepString(t *testing.T) {
	s := Step{Index: 4, Proc: 0, Txn: 1, Obj: 0, ObjName: "b1", Prim: PrimWrite, Args: []any{Value(1)}, Resp: "ok", Changed: true}
	if s.String() == "" || !s.NonTrivial() {
		t.Errorf("step string/non-trivial broken: %v", s)
	}
	ev := Step{Index: 0, Proc: 0, Txn: 1, Obj: NoObj, Prim: PrimEvent, Event: &Event{Op: OpBegin, Inv: true, Txn: 1}}
	if ev.String() == "" || ev.NonTrivial() {
		t.Errorf("event step string/non-trivial broken: %v", ev)
	}
}
