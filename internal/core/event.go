package core

import "fmt"

// OpKind enumerates the TM-interface operations a transaction invokes.
type OpKind int

const (
	// OpBegin is the begin_T routine.
	OpBegin OpKind = iota
	// OpRead is x.read().
	OpRead
	// OpWrite is x.write(v).
	OpWrite
	// OpTryCommit is commit_T.
	OpTryCommit
	// OpAbortReq is abort_T (an explicit abort request by the program).
	OpAbortReq
)

var opNames = [...]string{"begin", "read", "write", "commit", "abort"}

// String returns the lowercase operation mnemonic.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(k))
	}
	return opNames[k]
}

// Status is the status component of a TM-interface response.
type Status int

const (
	// StatusNone marks invocations (no status yet).
	StatusNone Status = iota
	// StatusOK is the ok response of begin and successful writes, and
	// the implicit status of a successful read.
	StatusOK
	// StatusCommitted is C_T, the successful commit response.
	StatusCommitted
	// StatusAborted is A_T, returned by any routine when the transaction
	// aborts.
	StatusAborted
)

var statusNames = [...]string{"", "ok", "C", "A"}

// String renders the paper's response notation (ok, C, A).
func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("status(%d)", int(s))
	}
	return statusNames[s]
}

// Event is a TM-interface invocation or response. The sequence of events of
// an execution α is its history H_α.
type Event struct {
	// StepIndex is the index of the step that recorded this event.
	StepIndex int
	// Proc is the process executing the transaction.
	Proc ProcID
	// Txn is the transaction performing the operation.
	Txn TxID
	// Op is the operation invoked or responded to.
	Op OpKind
	// Inv is true for invocations, false for responses.
	Inv bool
	// Item is the data item for reads and writes.
	Item Item
	// Value is the argument of a write invocation, or the value returned
	// by a successful read response.
	Value Value
	// Status qualifies responses: StatusOK / StatusCommitted /
	// StatusAborted. StatusNone for invocations.
	Status Status
}

// String renders the event in the paper's notation.
func (e *Event) String() string {
	if e.Inv {
		switch e.Op {
		case OpRead:
			return fmt.Sprintf("%s.read()?", e.Item)
		case OpWrite:
			return fmt.Sprintf("%s.write(%d)?", e.Item, e.Value)
		default:
			return fmt.Sprintf("%s_%s?", e.Op, e.Txn)
		}
	}
	switch {
	case e.Status == StatusAborted:
		return fmt.Sprintf("A_%s", e.Txn)
	case e.Status == StatusCommitted:
		return fmt.Sprintf("C_%s", e.Txn)
	case e.Op == OpRead:
		return fmt.Sprintf("%s:%d", e.Item, e.Value)
	default:
		return "ok"
	}
}
