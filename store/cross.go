package store

import (
	"sync"

	"pcltm/internal/wal"
	"pcltm/stm"
)

// rwMutexPadded is a sync.RWMutex on its own cache line so partitions'
// escalation locks never false-share — a partition's RLock traffic must
// stay partition-local or the whole disjoint-commit design leaks
// coherence misses.
type rwMutexPadded struct {
	sync.RWMutex
	_ [64]byte
}

// fibMul and mix64 mirror tstructs' spreading pipeline; see
// PartitionOf for why routing re-scrambles the key hash.
const fibMul = 0x9E3779B97F4A7C15

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// crossMaxGrows caps footprint re-discovery rounds before Cross
// degenerates to the full sweep: the footprint set only ever grows, so
// the loop terminates anyway, but an fn whose key set keeps shifting
// with the data should stop burning re-runs and take the conservative
// path.
const crossMaxGrows = 3

// CrossTx is the handle Cross passes to its body: reads go to the
// owning partition's engine, writes buffer until the body succeeds, and
// the buffered writes then apply under the touched partitions'
// exclusive locks. The body sees its own writes (read-your-writes
// through the buffer). Every partition the body reads or writes joins
// the transaction's footprint — the set of locks the commit takes.
type CrossTx[K comparable, V any] struct {
	s       *Store[K, V]
	buf     map[K]crossWrite[V]
	touched []bool // partitions read or written by the body
}

// crossWrite is one buffered intent: a pending value or a deletion.
type crossWrite[V any] struct {
	v   V
	del bool
}

// Get reads k — from the buffer when the body already wrote it, else
// from k's partition.
func (ct *CrossTx[K, V]) Get(k K) (V, bool) {
	if w, ok := ct.buf[k]; ok {
		if w.del {
			var zero V
			return zero, false
		}
		return w.v, true
	}
	pi := ct.s.PartitionOf(k)
	ct.touched[pi] = true
	part := ct.s.parts[pi]
	var v V
	var ok bool
	_ = part.engine.Atomically(func(tx *stm.Tx) error {
		v, ok = part.m.Get(tx, k)
		return nil
	})
	return v, ok
}

// Put buffers a write of v under k.
func (ct *CrossTx[K, V]) Put(k K, v V) {
	ct.touched[ct.s.PartitionOf(k)] = true
	ct.buf[k] = crossWrite[V]{v: v}
}

// Delete buffers a deletion of k, reporting whether k was visible at
// this point of the body.
func (ct *CrossTx[K, V]) Delete(k K) bool {
	_, ok := ct.Get(k)
	ct.buf[k] = crossWrite[V]{del: true}
	return ok
}

// Cross runs fn as one atomic cross-partition transaction, locking only
// the partitions the transaction actually touches — the scoped
// 2PC-shaped commit path:
//
//  1. Discovery: fn runs with no locks held, reads served by
//     per-partition read transactions and writes buffered; every
//     partition it touches joins the footprint.
//  2. Lock phase: the footprint's escalation locks are taken exclusive
//     in partition-id order — the same total order Len and the sweep
//     use, so concurrent Cross calls (and Len) stay deadlock-free.
//     Untouched partitions are never locked: single-partition traffic
//     there proceeds completely undisturbed.
//  3. Validation by re-execution: fn runs again under the locks. Locked
//     partitions cannot change, so if the re-run's footprint stays
//     inside the locked set, its reads are a consistent snapshot and
//     its buffer is the transaction's write set. If the footprint grew
//     (the data moved between discovery and locking), the locks are
//     released, the footprint union is re-locked, and fn re-runs; after
//     crossMaxGrows rounds the footprint escalates to every partition,
//     which cannot grow further. fn must therefore tolerate
//     re-execution, exactly like an stm.Atomically body.
//  4. Apply ("commit"): the buffer is flushed, one write transaction
//     per touched partition, all under the locks — externally atomic
//     because every participant is exclusively held. On error the
//     buffer is discarded and no partition changed — all-or-nothing.
//
// On a durable store a multi-partition commit is logged through the
// log's cross path: every participant's record plus one decision record
// (internal/wal), appended under the locks and acknowledged after they
// are released, so recovery replays the cross all-or-nothing and the
// fsync latency is never paid while holding partition locks. A
// single-partition footprint commits exactly like a plain transaction.
func (s *Store[K, V]) Cross(fn func(ct *CrossTx[K, V]) error) error {
	return s.cross(fn, false)
}

// CrossSweep is the pre-scoped escalation path: every partition's lock
// is taken exclusive, fn runs once under the full sweep, and the buffer
// applies. It is kept as the measurable baseline the scoped path is
// judged against (EXPERIMENTS.md E11) and as the explicit
// maximal-footprint fallback; new code wants Cross.
func (s *Store[K, V]) CrossSweep(fn func(ct *CrossTx[K, V]) error) error {
	return s.cross(fn, true)
}

func (s *Store[K, V]) cross(fn func(ct *CrossTx[K, V]) error, sweep bool) error {
	n := len(s.parts)
	locked := make([]bool, n)
	lock := func(need []bool) {
		for i, want := range need {
			if want {
				s.parts[i].mu.Lock()
				locked[i] = true
			}
		}
	}
	unlock := func() {
		for i := n - 1; i >= 0; i-- {
			if locked[i] {
				s.parts[i].mu.Unlock()
				locked[i] = false
			}
		}
	}
	if sweep {
		all := make([]bool, n)
		for i := range all {
			all[i] = true
		}
		lock(all)
	}
	defer unlock()

	var ct *CrossTx[K, V]
	for round := 0; ; round++ {
		ct = &CrossTx[K, V]{s: s, buf: make(map[K]crossWrite[V]), touched: make([]bool, n)}
		if err := fn(ct); err != nil {
			return err
		}
		need := ct.touched
		for k := range ct.buf {
			need[s.PartitionOf(k)] = true
		}
		covered := round > 0 || sweep // a no-lock discovery run never commits
		grew := false
		for i, want := range need {
			if want && !locked[i] {
				covered, grew = false, true
			}
		}
		if covered || !grew {
			// Covered, or an empty footprint (nothing read or written):
			// either way the locks held cover every partition the commit
			// touches.
			break
		}
		if round >= crossMaxGrows {
			for i := range need {
				need[i] = true
			}
		}
		for i, held := range locked {
			need[i] = need[i] || held
		}
		unlock()
		lock(need)
	}

	// Apply: group buffered intents by partition, flush each group as
	// one transaction on the owning engine, all under the footprint's
	// exclusive locks. On a durable store each group is captured as its
	// partition's record, stamped inside its apply transaction; a
	// multi-partition footprint links the records through the wal cross
	// path (decision record) so a crash cannot recover half of it.
	byPart := make(map[int][]K)
	for k := range ct.buf {
		part := s.PartitionOf(k)
		byPart[part] = append(byPart[part], k)
	}
	d := s.durable
	var members []wal.CrossPart
	var bufs []*walBuf
	for part, keys := range byPart {
		if part == s.dropCrossPart {
			// Planted half-applied-cross bug (BreakCrossForTest): this
			// participant's share silently vanishes.
			continue
		}
		sp := s.parts[part]
		var buf *walBuf
		if d != nil {
			buf = d.bufs.Get().(*walBuf)
		}
		_ = sp.engine.Atomically(func(tx *stm.Tx) error {
			if buf != nil {
				buf.reset()
			}
			for _, k := range keys {
				if w := ct.buf[k]; w.del {
					sp.m.Delete(tx, k)
					if buf != nil {
						captureDelete(buf, d.codec, k)
					}
				} else {
					sp.m.Put(tx, k, w.v)
					if buf != nil {
						capturePut(buf, d.codec, k, w.v)
					}
				}
			}
			if buf != nil && buf.nops > 0 {
				n := stm.Get(tx, d.seq[part]) + 1
				stm.Set(tx, d.seq[part], n)
				buf.seq = n
			}
			return nil
		})
		if buf != nil {
			if buf.nops > 0 {
				members = append(members, wal.CrossPart{Part: part, Seq: buf.seq, Nops: buf.nops, Ops: buf.ops})
				bufs = append(bufs, buf)
			} else {
				d.bufs.Put(buf)
			}
		}
	}
	if len(members) == 0 {
		return nil
	}

	// Durability: records are enqueued before the locks release, and the
	// acknowledgement is awaited after — commits that observe the
	// released state stamp later sequences and park behind these in the
	// log's release order, so fsync latency is never paid while holding
	// partition locks exclusive.
	var derr error
	if len(members) == 1 {
		// A single-partition footprint needs no decision record: it is
		// indistinguishable from a plain partition commit.
		m := members[0]
		unlock()
		if aerr := d.log.Append(m.Part, m.Seq, m.Nops, m.Ops); aerr != nil {
			derr = &DurabilityError{Part: m.Part, Seq: m.Seq, Err: aerr}
		}
	} else {
		wait, aerr := d.log.AppendCross(members)
		if aerr == nil {
			unlock()
			aerr = wait()
		}
		if aerr != nil {
			derr = &DurabilityError{Part: members[0].Part, Seq: members[0].Seq, Err: aerr}
		}
	}
	for _, buf := range bufs {
		d.bufs.Put(buf)
	}
	return derr
}

// BreakCrossForTest plants the classic half-applied-cross bug: every
// later Cross silently drops the share routed to partition part. The
// conformance layer's stitching checker must convict a store broken
// this way — its self-test (internal/conformance). Pass -1 to heal.
func (s *Store[K, V]) BreakCrossForTest(part int) {
	s.dropCrossPart = part
}
