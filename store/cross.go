package store

import (
	"sync"

	"pcltm/stm"
)

// rwMutexPadded is a sync.RWMutex on its own cache line so partitions'
// escalation locks never false-share — a partition's RLock traffic must
// stay partition-local or the whole disjoint-commit design leaks
// coherence misses.
type rwMutexPadded struct {
	sync.RWMutex
	_ [64]byte
}

// fibMul and mix64 mirror tstructs' spreading pipeline; see
// PartitionOf for why routing re-scrambles the key hash.
const fibMul = 0x9E3779B97F4A7C15

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CrossTx is the handle Cross passes to its body: reads go to the
// owning partition's engine, writes buffer until the body succeeds, and
// the buffered writes then apply under the full exclusive sweep. The
// body sees its own writes (read-your-writes through the buffer).
type CrossTx[K comparable, V any] struct {
	s   *Store[K, V]
	buf map[K]crossWrite[V]
}

// crossWrite is one buffered intent: a pending value or a deletion.
type crossWrite[V any] struct {
	v   V
	del bool
}

// Get reads k — from the buffer when the body already wrote it, else
// from k's partition.
func (ct *CrossTx[K, V]) Get(k K) (V, bool) {
	if w, ok := ct.buf[k]; ok {
		if w.del {
			var zero V
			return zero, false
		}
		return w.v, true
	}
	part := ct.s.parts[ct.s.PartitionOf(k)]
	var v V
	var ok bool
	_ = part.engine.Atomically(func(tx *stm.Tx) error {
		v, ok = part.m.Get(tx, k)
		return nil
	})
	return v, ok
}

// Put buffers a write of v under k.
func (ct *CrossTx[K, V]) Put(k K, v V) {
	ct.buf[k] = crossWrite[V]{v: v}
}

// Delete buffers a deletion of k, reporting whether k was visible at
// this point of the body.
func (ct *CrossTx[K, V]) Delete(k K) bool {
	_, ok := ct.Get(k)
	ct.buf[k] = crossWrite[V]{del: true}
	return ok
}

// Cross runs fn as one atomic cross-partition transaction — the store's
// escalation path, shaped like a degenerate single-node two-phase
// commit:
//
//  1. Lock phase: every partition's escalation lock is taken exclusive
//     in partition-id order (the total order that makes concurrent
//     Cross calls deadlock-free), draining all in-flight
//     single-partition transactions and blocking new ones.
//  2. Read/compute phase: fn reads committed state through per-
//     partition read transactions and buffers its writes.
//  3. Apply phase ("commit"): on success the buffer is flushed, one
//     write transaction per touched partition. Nothing else runs, so
//     the multi-transaction flush is externally atomic. On error the
//     buffer is discarded and no partition changed — all-or-nothing.
//
// The cost is global: a Cross call serializes against every
// single-partition transaction in the store. That asymmetry is the
// design — the common case (single-partition) pays one shared-mode
// lock, and only genuine cross-partition atomicity pays the sweep. A
// distributed deployment would replace step 1/3 with prepare/commit
// votes per partition; the seam is deliberately the same shape.
func (s *Store[K, V]) Cross(fn func(ct *CrossTx[K, V]) error) error {
	for _, p := range s.parts {
		p.mu.Lock()
	}
	defer func() {
		for i := len(s.parts) - 1; i >= 0; i-- {
			s.parts[i].mu.Unlock()
		}
	}()

	ct := &CrossTx[K, V]{s: s, buf: make(map[K]crossWrite[V])}
	if err := fn(ct); err != nil {
		return err
	}

	// Apply: group buffered intents by partition, flush each group as
	// one transaction on the owning engine. On a durable store each
	// group is logged as its partition's record, stamped inside its
	// apply transaction; the appends happen under the sweep, so the
	// per-partition records of one Cross are contiguous in every
	// partition's sequence. Crash-durability of a Cross is still
	// per-partition — see the durability notes in durable.go.
	byPart := make(map[int][]K)
	for k := range ct.buf {
		part := s.PartitionOf(k)
		byPart[part] = append(byPart[part], k)
	}
	d := s.durable
	var derr error
	for part, keys := range byPart {
		sp := s.parts[part]
		var buf *walBuf
		if d != nil {
			buf = d.bufs.Get().(*walBuf)
		}
		_ = sp.engine.Atomically(func(tx *stm.Tx) error {
			if buf != nil {
				buf.reset()
			}
			for _, k := range keys {
				if w := ct.buf[k]; w.del {
					sp.m.Delete(tx, k)
					if buf != nil {
						captureDelete(buf, d.codec, k)
					}
				} else {
					sp.m.Put(tx, k, w.v)
					if buf != nil {
						capturePut(buf, d.codec, k, w.v)
					}
				}
			}
			if buf != nil && buf.nops > 0 {
				n := stm.Get(tx, d.seq[part]) + 1
				stm.Set(tx, d.seq[part], n)
				buf.seq = n
			}
			return nil
		})
		if buf != nil {
			if buf.nops > 0 {
				if aerr := d.log.Append(part, buf.seq, buf.nops, buf.ops); aerr != nil && derr == nil {
					derr = &DurabilityError{Part: part, Seq: buf.seq, Err: aerr}
				}
			}
			d.bufs.Put(buf)
		}
	}
	return derr
}
