package store

import (
	"fmt"
	"sync"
	"testing"

	"pcltm/stm"
	"pcltm/tstructs"
)

// TestStoreBasicOps drives the single-key surface against a model map
// on every engine kind.
func TestStoreBasicOps(t *testing.T) {
	for _, kind := range stm.EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			s := New[string, int64](Config{Partitions: 4, Engine: kind, Buckets: 8})
			model := map[string]int64{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%40)
				switch i % 5 {
				case 0:
					got := s.Delete(k)
					_, want := model[k]
					if got != want {
						t.Fatalf("Delete(%q) = %v, model %v", k, got, want)
					}
					delete(model, k)
				case 1:
					got, ok := s.Get(k)
					want, wantOK := model[k]
					if ok != wantOK || got != want {
						t.Fatalf("Get(%q) = %d,%v model %d,%v", k, got, ok, want, wantOK)
					}
				case 2:
					s.Update(k, func(v int64, ok bool) int64 { return v + 1 })
					model[k]++
				default:
					s.Put(k, int64(i))
					model[k] = int64(i)
				}
			}
			if got := s.Len(); got != len(model) {
				t.Fatalf("Len = %d, model %d", got, len(model))
			}
			for k, want := range model {
				if got, ok := s.Get(k); !ok || got != want {
					t.Fatalf("final Get(%q) = %d,%v want %d,true", k, got, ok, want)
				}
			}
		})
	}
}

// TestStorePartitionRouting checks routing is deterministic, total, and
// actually spreads keys across partitions.
func TestStorePartitionRouting(t *testing.T) {
	s := New[int, int](Config{Partitions: 8, Engine: stm.EngineTL2})
	if s.Partitions() != 8 {
		t.Fatalf("Partitions = %d, want 8", s.Partitions())
	}
	seen := make([]int, 8)
	for k := 0; k < 4096; k++ {
		p := s.PartitionOf(k)
		if p != s.PartitionOf(k) {
			t.Fatal("routing not deterministic")
		}
		if p < 0 || p >= 8 {
			t.Fatalf("PartitionOf(%d) = %d out of range", k, p)
		}
		seen[p]++
	}
	for p, n := range seen {
		if n == 0 {
			t.Errorf("partition %d received no keys of 4096", p)
		}
	}
	// A single-partition store routes everything to 0.
	s1 := New[int, int](Config{Partitions: 1, Engine: stm.EngineTL2})
	for k := 0; k < 100; k++ {
		if s1.PartitionOf(k) != 0 {
			t.Fatalf("1-partition store routed key %d to %d", k, s1.PartitionOf(k))
		}
	}
}

// TestStorePartitionBucketIndependence pins the routing decorrelation:
// within one partition, keys must still spread over the TMap buckets.
// (Routing and bucketing both Fibonacci-spread the same key hash; if
// routing did not re-scramble first, a partition's keys would share
// their top product bits and collapse onto a fraction of its buckets.)
func TestStorePartitionBucketIndependence(t *testing.T) {
	const parts = 8
	s := New[int, int](Config{Partitions: parts, Engine: stm.EngineTL2, Buckets: 16})
	// A probe TMap with the same geometry as the partitions' maps
	// buckets keys identically to them.
	probe := tstructs.NewTMap[int, int](16)
	perBucket := make(map[int]map[int]bool) // partition -> set of buckets hit
	for p := 0; p < parts; p++ {
		perBucket[p] = make(map[int]bool)
	}
	for k := 0; k < 1<<14; k++ {
		perBucket[s.PartitionOf(k)][probe.BucketOf(k)] = true
	}
	for p := 0; p < parts; p++ {
		if got := len(perBucket[p]); got < 12 {
			t.Errorf("partition %d's keys hit only %d of 16 buckets; routing and bucketing are correlated", p, got)
		}
	}
}

// TestStoreAtomicallySamePartition moves value between two keys of the
// same partition atomically and checks the invariant from a concurrent
// reader's view.
func TestStoreAtomicallySamePartition(t *testing.T) {
	s := New[int, int64](Config{Partitions: 4, Engine: stm.EngineTL2})
	// Find two keys in one partition.
	k1 := 0
	k2 := -1
	for k := 1; k < 1000; k++ {
		if s.PartitionOf(k) == s.PartitionOf(k1) {
			k2 = k
			break
		}
	}
	if k2 < 0 {
		t.Fatal("no two keys share a partition in 1000 tries")
	}
	part := s.PartitionOf(k1)
	s.Put(k1, 500)
	s.Put(k2, 500)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			_ = s.Atomically(part, func(tx *stm.Tx, p *Part[int, int64]) error {
				a, _ := p.Get(tx, k1)
				b, _ := p.Get(tx, k2)
				p.Put(tx, k1, a-1)
				p.Put(tx, k2, b+1)
				return nil
			})
		}
	}()
	for i := 0; i < 300; i++ {
		var sum int64
		_ = s.Atomically(part, func(tx *stm.Tx, p *Part[int, int64]) error {
			a, _ := p.Get(tx, k1)
			b, _ := p.Get(tx, k2)
			sum = a + b
			return nil
		})
		if sum != 1000 {
			t.Fatalf("atomicity leak: observed sum %d, want 1000", sum)
		}
	}
	<-done
}

// TestStoreRoutingViolationPanics checks Part refuses keys owned by
// another partition.
func TestStoreRoutingViolationPanics(t *testing.T) {
	s := New[int, int](Config{Partitions: 4, Engine: stm.EngineGlobalLock})
	var foreign int
	for k := 0; k < 1000; k++ {
		if s.PartitionOf(k) != 0 {
			foreign = k
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign key inside partition 0's transaction did not panic")
		}
	}()
	_ = s.Atomically(0, func(tx *stm.Tx, p *Part[int, int]) error {
		p.Put(tx, foreign, 1)
		return nil
	})
}

// TestStoreCrossAtomic checks Cross moves value between partitions
// all-or-nothing: concurrent single-partition readers always see the
// total conserved.
func TestStoreCrossAtomic(t *testing.T) {
	const keys = 16
	s := New[int, int64](Config{Partitions: 4, Engine: stm.EngineTL2})
	for k := 0; k < keys; k++ {
		s.Put(k, 100)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // cross-partition transfers
		defer wg.Done()
		for i := 0; i < 200; i++ {
			from, to := i%keys, (i*7+3)%keys
			if from == to {
				continue
			}
			_ = s.Cross(func(ct *CrossTx[int, int64]) error {
				a, _ := ct.Get(from)
				b, _ := ct.Get(to)
				ct.Put(from, a-5)
				ct.Put(to, b+5)
				return nil
			})
		}
		close(stop)
	}()
	wg.Add(1)
	go func() { // concurrent total audit via Cross (exact snapshot)
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum int64
			_ = s.Cross(func(ct *CrossTx[int, int64]) error {
				sum = 0 // Cross bodies re-execute (discovery + locked run)
				for k := 0; k < keys; k++ {
					v, _ := ct.Get(k)
					sum += v
				}
				return nil
			})
			if sum != keys*100 {
				t.Errorf("cross-partition atomicity leak: total %d, want %d", sum, keys*100)
				return
			}
		}
	}()
	wg.Wait()
}

// TestStoreCrossRollback checks an erroring Cross body leaves every
// partition untouched (buffered writes discarded).
func TestStoreCrossRollback(t *testing.T) {
	s := New[int, string](Config{Partitions: 4, Engine: stm.EngineTL2})
	s.Put(1, "one")
	errBoom := fmt.Errorf("boom")
	err := s.Cross(func(ct *CrossTx[int, string]) error {
		ct.Put(1, "clobbered")
		ct.Put(2, "new")
		ct.Delete(1)
		return errBoom
	})
	if err != errBoom {
		t.Fatalf("Cross err = %v, want boom", err)
	}
	if v, ok := s.Get(1); !ok || v != "one" {
		t.Errorf("after rollback Get(1) = %q,%v want \"one\",true", v, ok)
	}
	if _, ok := s.Get(2); ok {
		t.Errorf("after rollback Get(2) present, want absent")
	}
}

// TestStoreCrossReadYourWrites checks the body observes its own
// buffered writes and deletes.
func TestStoreCrossReadYourWrites(t *testing.T) {
	s := New[int, int](Config{Partitions: 2, Engine: stm.EngineTL2})
	s.Put(1, 10)
	_ = s.Cross(func(ct *CrossTx[int, int]) error {
		ct.Put(1, 11)
		if v, ok := ct.Get(1); !ok || v != 11 {
			t.Errorf("read-your-writes Get(1) = %d,%v want 11,true", v, ok)
		}
		if !ct.Delete(1) {
			t.Errorf("Delete(1) of buffered key reported absent")
		}
		if _, ok := ct.Get(1); ok {
			t.Errorf("Get(1) after buffered delete reported present")
		}
		ct.Put(2, 22)
		return nil
	})
	if _, ok := s.Get(1); ok {
		t.Errorf("committed delete of 1 did not apply")
	}
	if v, ok := s.Get(2); !ok || v != 22 {
		t.Errorf("committed Put(2) = %d,%v want 22,true", v, ok)
	}
}

// TestStoreConcurrentDisjoint hammers disjoint key ranges from parallel
// workers — the parallel-commit contract at store level.
func TestStoreConcurrentDisjoint(t *testing.T) {
	const workers, opsPer = 4, 250
	for _, kind := range []stm.EngineKind{stm.EngineTL2Striped, stm.EngineAdaptive} {
		t.Run(kind.String(), func(t *testing.T) {
			s := New[int, int64](Config{Partitions: 4, Engine: kind})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						k := w*opsPer + i
						s.Put(k, int64(k))
						s.Update(k, func(v int64, ok bool) int64 { return v + 1 })
					}
				}(w)
			}
			wg.Wait()
			for k := 0; k < workers*opsPer; k++ {
				if v, ok := s.Get(k); !ok || v != int64(k)+1 {
					t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, k+1)
				}
			}
			if got := s.Len(); got != workers*opsPer {
				t.Fatalf("Len = %d, want %d", got, workers*opsPer)
			}
		})
	}
}

// TestStorePerPartitionStats checks each partition's engine counts only
// its own work — the machine-level independence the package doc claims.
func TestStorePerPartitionStats(t *testing.T) {
	s := New[int, int](Config{Partitions: 4, Engine: stm.EngineTL2})
	// Drive exactly one partition.
	var k0 int
	for k := 0; k < 1000; k++ {
		if s.PartitionOf(k) == 0 {
			k0 = k
			break
		}
	}
	for i := 0; i < 50; i++ {
		s.Put(k0, i)
	}
	st := s.Stats()
	if st[0].Commits < 50 {
		t.Errorf("partition 0 commits = %d, want >= 50", st[0].Commits)
	}
	for p := 1; p < 4; p++ {
		if st[p].Commits != 0 {
			t.Errorf("idle partition %d recorded %d commits; engine state is not partition-private",
				p, st[p].Commits)
		}
	}
}

// TestStoreAdaptiveStats checks the per-partition regime snapshot is
// available exactly for adaptive-engined stores.
func TestStoreAdaptiveStats(t *testing.T) {
	s := New[int, int](Config{Partitions: 2, Engine: stm.EngineAdaptive})
	s.Put(1, 1)
	if st, ok := s.AdaptiveStats(); !ok || len(st) != 2 {
		t.Errorf("AdaptiveStats = len %d, ok %v; want 2, true", len(st), ok)
	}
	s2 := New[int, int](Config{Partitions: 2, Engine: stm.EngineTL2})
	if _, ok := s2.AdaptiveStats(); ok {
		t.Errorf("AdaptiveStats ok for tl2 store, want false")
	}
}

// TestStoreEngineOptionsSeam checks per-partition options reach the
// right engine (the conformance harness hangs recorders off this).
func TestStoreEngineOptionsSeam(t *testing.T) {
	recs := make([]*stm.Recorder, 2)
	s := NewFunc[int, int](Config{
		Partitions: 2,
		Engine:     stm.EngineTL2,
		EngineOptions: func(part int) []stm.Option {
			recs[part] = stm.NewRecorder()
			return []stm.Option{stm.WithRecorder(recs[part])}
		},
	}, func(k int) uint64 { return uint64(k) })
	var k0, k1 int = -1, -1
	for k := 0; k < 1000 && (k0 < 0 || k1 < 0); k++ {
		switch s.PartitionOf(k) {
		case 0:
			if k0 < 0 {
				k0 = k
			}
		case 1:
			if k1 < 0 {
				k1 = k
			}
		}
	}
	s.Put(k0, 1)
	s.Put(k1, 2)
	if recs[0].Len() == 0 || recs[1].Len() == 0 {
		t.Fatalf("per-partition recorders saw %d/%d attempts; options did not reach their engines",
			recs[0].Len(), recs[1].Len())
	}
}

// TestLenExactUnderConcurrentWriters pins the PR 6 follow-up: Len must
// be a true instantaneous count, not a time-skewed sum. Movers use
// Cross to atomically delete one key and insert another — the total is
// invariant at every instant — while single-partition writers churn
// overwrites underneath. The old per-partition-transaction Len could
// read one partition before a move and another after it, reporting
// N±1; the exclusive-sweep Len must report exactly N on every call.
func TestLenExactUnderConcurrentWriters(t *testing.T) {
	const (
		keys    = 256
		movers  = 3
		writers = 2
		rounds  = 60
	)
	s := New[int64, int64](Config{Partitions: 4, Engine: stm.EngineTL2, Buckets: 16})
	for k := int64(0); k < keys; k++ {
		s.Put(k, 0)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Movers: atomically replace one owned key with a fresh one. Each
	// mover owns a disjoint key range so movers never collide on keys,
	// and the store's total count never changes.
	for mv := 0; mv < movers; mv++ {
		wg.Add(1)
		go func(mv int) {
			defer wg.Done()
			cur := int64(mv) // current live key of this mover's slot
			next := int64(keys + mv)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Cross(func(ct *CrossTx[int64, int64]) error {
					if !ct.Delete(cur) {
						t.Errorf("mover %d: key %d vanished", mv, cur)
					}
					ct.Put(next, 1)
					return nil
				})
				cur, next = next, cur
			}
		}(mv)
	}
	// Writers: single-partition overwrites — Len must coexist with the
	// shared-lock fast path, not just with Cross.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := int64(movers + w*13)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Update(k%keys, func(v int64, ok bool) int64 { return v + 1 })
				k += 7
			}
		}(w)
	}

	for i := 0; i < rounds; i++ {
		if got := s.Len(); got != keys {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: Len = %d, want exactly %d", i, got, keys)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Len(); got != keys {
		t.Fatalf("quiesced Len = %d, want %d", got, keys)
	}
}
