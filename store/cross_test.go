package store_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pcltm/internal/certify"
	"pcltm/internal/conformance"
	"pcltm/internal/core"
	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
)

// TestCrossScopedLocking checks the tentpole property directly: a Cross
// whose footprint is partitions {0, 1} blocks traffic on those
// partitions and on NO others. The body parks while holding its locks;
// a single-partition write to an untouched partition must complete
// while it is parked, and a write to a touched partition must not.
func TestCrossScopedLocking(t *testing.T) {
	s := store.New[int64, int64](store.Config{Partitions: 4})
	k0 := mustKeyIn(s, 0, 1)
	k1 := mustKeyIn(s, 1, 1)
	k2 := mustKeyIn(s, 2, 1)

	locked := make(chan struct{})
	release := make(chan struct{})
	var calls int32
	done := make(chan error, 1)
	go func() {
		done <- s.Cross(func(ct *store.CrossTx[int64, int64]) error {
			ct.Put(k0, 1)
			ct.Put(k1, 2)
			if atomic.AddInt32(&calls, 1) == 2 {
				// Second run = validation under the footprint's locks.
				close(locked)
				<-release
			}
			return nil
		})
	}()
	<-locked

	// Untouched partition: must proceed while the Cross holds its locks.
	okCh := make(chan struct{})
	go func() {
		s.Put(k2, 42)
		close(okCh)
	}()
	select {
	case <-okCh:
	case <-time.After(5 * time.Second):
		t.Fatal("single-partition write to untouched partition blocked behind scoped Cross")
	}

	// Touched partition: must wait for the Cross to finish.
	var blockedDone int32
	go func() {
		s.Put(k0, 99)
		atomic.StoreInt32(&blockedDone, 1)
	}()
	time.Sleep(20 * time.Millisecond)
	if atomic.LoadInt32(&blockedDone) != 0 {
		// Not yet released: the write raced ahead of the exclusive lock.
		t.Fatal("single-partition write to touched partition proceeded under scoped Cross locks")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Cross: %v", err)
	}
	for deadline := time.Now().Add(5 * time.Second); atomic.LoadInt32(&blockedDone) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("blocked write never completed after Cross released")
		}
		time.Sleep(time.Millisecond)
	}
	if v, _ := s.Get(k2); v != 42 {
		t.Errorf("untouched-partition write lost: %d", v)
	}
	if v, _ := s.Get(k0); v != 99 {
		t.Errorf("touched-partition write lost: %d", v)
	}
}

// TestCrossFootprintGrows drives the re-lock loop: the body's footprint
// expands on every run (as if the data moved between discovery and
// locking), so Cross must release, re-lock the union, and re-run until
// the footprint stabilizes — and escalate to every partition past
// crossMaxGrows rounds rather than loop forever.
func TestCrossFootprintGrows(t *testing.T) {
	const parts = 8
	s := store.New[int64, int64](store.Config{Partitions: parts})
	keys := make([]int64, parts)
	for p := range keys {
		keys[p] = mustKeyIn(s, p, 1)
	}
	var calls int32
	err := s.Cross(func(ct *store.CrossTx[int64, int64]) error {
		n := int(atomic.AddInt32(&calls, 1))
		if n > parts {
			n = parts
		}
		for p := 0; p < n; p++ {
			ct.Put(keys[p], int64(p))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Cross: %v", err)
	}
	// The final run's buffer is what applied; it covered some prefix of
	// the partitions, growing each round. Every partition the final run
	// wrote must hold its value.
	final := int(atomic.LoadInt32(&calls))
	if final > parts {
		final = parts
	}
	if final < 2 {
		t.Fatalf("body ran %d times; growth loop never engaged", final)
	}
	for p := 0; p < final; p++ {
		if v, ok := s.Get(keys[p]); !ok || v != int64(p) {
			t.Errorf("partition %d: got %d,%v want %d", p, v, ok, p)
		}
	}
}

// TestCrossEmptyFootprint checks a read-nothing write-nothing body
// terminates (the scoped loop must not spin waiting for a footprint
// that never appears).
func TestCrossEmptyFootprint(t *testing.T) {
	s := store.New[int64, int64](store.Config{Partitions: 4})
	if err := s.Cross(func(ct *store.CrossTx[int64, int64]) error { return nil }); err != nil {
		t.Fatalf("empty Cross: %v", err)
	}
}

// TestCrossSweepEquivalent checks the retained full-sweep path and the
// scoped path agree on results.
func TestCrossSweepEquivalent(t *testing.T) {
	s := store.New[int64, int64](store.Config{Partitions: 4})
	for k := int64(0); k < 32; k++ {
		s.Put(k, 100)
	}
	xfer := func(run func(fn func(ct *store.CrossTx[int64, int64]) error) error, from, to int64) {
		if err := run(func(ct *store.CrossTx[int64, int64]) error {
			a, _ := ct.Get(from)
			b, _ := ct.Get(to)
			ct.Put(from, a-7)
			ct.Put(to, b+7)
			return nil
		}); err != nil {
			t.Fatalf("transfer: %v", err)
		}
	}
	for i := int64(0); i < 16; i++ {
		xfer(s.Cross, i, 31-i)
		xfer(s.CrossSweep, 31-i, i)
	}
	for k := int64(0); k < 32; k++ {
		if v, _ := s.Get(k); v != 100 {
			t.Errorf("key %d drifted to %d", k, v)
		}
	}
}

// TestDurableCrossSinglePartitionNoDecision checks a Cross whose whole
// footprint lands in one partition is logged as a plain record: no
// decision record, no cross accounting.
func TestDurableCrossSinglePartitionNoDecision(t *testing.T) {
	b := wal.NewMemBackend()
	s, _, err := store.OpenDurable(durCfg(b, 4))
	if err != nil {
		t.Fatalf("store.OpenDurable: %v", err)
	}
	k := mustKeyIn(s, 2, 1)
	k2 := mustKeyIn(s, 2, k+1)
	if err := s.Cross(func(ct *store.CrossTx[int64, int64]) error {
		ct.Put(k, 1)
		ct.Put(k2, 2)
		return nil
	}); err != nil {
		t.Fatalf("Cross: %v", err)
	}
	if st, ok := s.WALStats(); !ok || st.Crosses != 0 {
		t.Errorf("single-partition Cross counted as cross: %+v", st)
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}
	s2, scan, err := store.OpenDurable(durCfg(b, 4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if scan.CrossReplayed != 0 {
		t.Errorf("scan found %d cross transactions, want 0", scan.CrossReplayed)
	}
	if v, _ := s2.Get(k); v != 1 {
		t.Errorf("key %d lost", k)
	}
	_ = s2.CloseWAL()
}

// TestDurableCrossCrashPointSweep is the cross-partition analogue of
// TestDurableCrashPointSweepCertified, and the pin on the PR's
// durability claim: a crash is armed at EVERY backend operation of a
// workload whose commits are multi-partition cross transfers, and after
// each crash the recovered state must show every cross transaction
// either fully applied or fully absent — never half — with acked
// crosses always fully applied, and the recovery history of every
// partition certified strictly serializable.
func TestDurableCrossCrashPointSweep(t *testing.T) {
	const parts = 4
	const rounds = 10
	type ranResult struct {
		acked []int // cross indices whose Cross returned nil
	}
	// Cross i writes marker i+1 under one key in each of three
	// partitions: i%4, (i+1)%4, (i+2)%4.
	keysOf := func(s *store.Store[int64, int64], i int) []int64 {
		ks := make([]int64, 0, 3)
		for j := 0; j < 3; j++ {
			p := (i + j) % parts
			ks = append(ks, mustKeyIn(s, p, int64(100*i+1)))
		}
		return ks
	}
	workload := func(backend wal.Backend) (ranResult, error) {
		var res ranResult
		cfg := durCfg(backend, parts)
		cfg.SegmentBytes = 512
		s, _, err := store.OpenDurable(cfg)
		if err != nil {
			return res, err
		}
		for i := 0; i < rounds; i++ {
			ks := keysOf(s, i)
			err := s.Cross(func(ct *store.CrossTx[int64, int64]) error {
				for _, k := range ks {
					ct.Put(k, int64(i+1))
				}
				return nil
			})
			if err != nil {
				return res, err
			}
			res.acked = append(res.acked, i)
		}
		return res, s.CloseWAL()
	}

	probe := wal.NewFailBackend(wal.NewMemBackend())
	if _, err := workload(probe); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Ops()
	if total < rounds {
		t.Fatalf("workload exposes only %d crash points", total)
	}

	for n := uint64(1); n <= total; n++ {
		mem := wal.NewMemBackend()
		fb := wal.NewFailBackend(mem)
		fb.Arm(wal.FailPoint{Kind: wal.FailCrash, N: n})
		ran, err := workload(fb)
		if err == nil {
			if fb.Crashed() {
				t.Fatalf("crash point %d fired but workload succeeded", n)
			}
			continue
		}

		img := mem.Clone(0)
		recs := make([]*stm.Recorder, 0, parts)
		cfg := durCfg(img, parts)
		cfg.Store.EngineOptions = func(part int) []stm.Option {
			r := stm.NewRecorder()
			recs = append(recs, r)
			return []stm.Option{stm.WithRecorder(r)}
		}
		s2, scan, err := store.OpenDurable(cfg)
		if err != nil {
			t.Fatalf("crash point %d: recovery refused: %v", n, err)
		}

		acked := map[int]bool{}
		for _, i := range ran.acked {
			acked[i] = true
		}
		for i := 0; i < rounds; i++ {
			ks := keysOf(s2, i)
			present := 0
			for _, k := range ks {
				if v, ok := s2.Get(k); ok {
					if v != int64(i+1) {
						t.Fatalf("crash point %d: cross %d key %d holds %d", n, i, k, v)
					}
					present++
				}
			}
			switch {
			case present != 0 && present != len(ks):
				t.Fatalf("crash point %d: cross %d HALF-APPLIED after recovery: %d/%d keys (horizons %v, cross replayed %d voided %d)",
					n, i, present, len(ks), scan.Horizon, scan.CrossReplayed, scan.CrossVoided)
			case acked[i] && present == 0:
				t.Fatalf("crash point %d: acked cross %d lost (horizons %v)", n, i, scan.Horizon)
			}
			// An UNacked cross may legitimately be recovered whole: a
			// crash can land after the fsync that covered the decision
			// (e.g. a mid-batch segment rotation's sync) but before the
			// acknowledgement reached the committer — the classic
			// commit-outcome ambiguity every WAL has. The invariants are
			// atomicity (never half) and acked ⇒ applied, both above.
		}

		// The recovered store takes new cross traffic.
		ks := keysOf(s2, rounds)
		if err := s2.Cross(func(ct *store.CrossTx[int64, int64]) error {
			for _, k := range ks {
				ct.Put(k, int64(rounds+1))
			}
			return nil
		}); err != nil {
			t.Fatalf("crash point %d: post-recovery cross: %v", n, err)
		}
		_ = s2.CloseWAL()

		itemOf := func(id uint64) (core.Item, bool) {
			return core.Item(fmt.Sprintf("t%d", id)), true
		}
		for pi, r := range recs {
			attempts := r.Take()
			if len(attempts) == 0 {
				continue
			}
			exec, err := conformance.StampInterned(attempts, itemOf, 1)
			if err != nil {
				t.Fatalf("crash point %d: stamp partition %d: %v", n, pi, err)
			}
			rep := certify.Check(certify.FromExecution(exec), certify.StrictSerializability)
			if rep.Verdict == certify.Violated {
				t.Fatalf("crash point %d: partition %d recovery history violated: %s", n, pi, rep)
			}
		}
	}
}
