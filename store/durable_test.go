package store_test

import (
	"errors"
	"fmt"
	"testing"

	"pcltm/internal/certify"
	"pcltm/internal/conformance"
	"pcltm/internal/core"
	"pcltm/internal/wal"
	"pcltm/stm"
	"pcltm/store"
)

func durCfg(b wal.Backend, parts int) store.DurableConfig[int64, int64] {
	return store.DurableConfig[int64, int64]{
		Store:   store.Config{Partitions: parts, Buckets: 8},
		Backend: b,
		Codec:   store.Int64Codec(),
	}
}

func durPut(t *testing.T, s *store.Store[int64, int64], k, v int64) {
	t.Helper()
	err := s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
		p.Put(tx, k, v)
		return nil
	})
	if err != nil {
		t.Fatalf("durable put %d=%d: %v", k, v, err)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	b := wal.NewMemBackend()
	s, scan, err := store.OpenDurable(durCfg(b, 4))
	if err != nil {
		t.Fatalf("store.OpenDurable: %v", err)
	}
	if scan.Segments != 0 {
		t.Errorf("fresh log has %d segments in scan", scan.Segments)
	}
	for k := int64(1); k <= 50; k++ {
		durPut(t, s, k, k*10)
	}
	// Delete a few, update a few — every op class must survive replay.
	for k := int64(1); k <= 10; k++ {
		if err := s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
			p.Delete(tx, k)
			return nil
		}); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	for k := int64(11); k <= 20; k++ {
		if err := s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
			p.Update(tx, k, func(v int64, ok bool) int64 { return v + 1 })
			return nil
		}); err != nil {
			t.Fatalf("update: %v", err)
		}
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	s2, scan2, err := store.OpenDurable(durCfg(b, 0)) // partitions adopted from log
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !scan2.Clean {
		t.Error("sealed log not Clean on reopen")
	}
	if s2.Partitions() != 4 {
		t.Errorf("adopted partitions = %d, want 4", s2.Partitions())
	}
	for k := int64(1); k <= 50; k++ {
		v, ok := s2.Get(k)
		switch {
		case k <= 10:
			if ok {
				t.Errorf("deleted key %d resurrected as %d", k, v)
			}
		case k <= 20:
			if !ok || v != k*10+1 {
				t.Errorf("updated key %d = %d,%v, want %d", k, v, ok, k*10+1)
			}
		default:
			if !ok || v != k*10 {
				t.Errorf("key %d = %d,%v, want %d", k, v, ok, k*10)
			}
		}
	}
	if err := s2.CloseWAL(); err != nil {
		t.Fatalf("second CloseWAL: %v", err)
	}
}

func TestDurableCrossSurvives(t *testing.T) {
	b := wal.NewMemBackend()
	s, _, err := store.OpenDurable(durCfg(b, 4))
	if err != nil {
		t.Fatalf("store.OpenDurable: %v", err)
	}
	durPut(t, s, 100, 1)
	if err := s.Cross(func(ct *store.CrossTx[int64, int64]) error {
		for k := int64(200); k < 220; k++ {
			ct.Put(k, k)
		}
		ct.Delete(100)
		return nil
	}); err != nil {
		t.Fatalf("Cross: %v", err)
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}
	s2, _, err := store.OpenDurable(durCfg(b, 4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, ok := s2.Get(100); ok {
		t.Error("cross-deleted key survived")
	}
	for k := int64(200); k < 220; k++ {
		if v, ok := s2.Get(k); !ok || v != k {
			t.Errorf("cross-written key %d = %d,%v", k, v, ok)
		}
	}
	_ = s2.CloseWAL()
}

func TestDurableAckedSurvivesHardCrash(t *testing.T) {
	// Group-ack contract at the store level: every Atomically that
	// returned nil must survive a crash that keeps only fsynced bytes.
	b := wal.NewMemBackend()
	s, _, err := store.OpenDurable(durCfg(b, 2))
	if err != nil {
		t.Fatalf("store.OpenDurable: %v", err)
	}
	for k := int64(1); k <= 30; k++ {
		durPut(t, s, k, k)
	}
	img := b.Clone(0) // no CloseWAL: simulated power cut
	s2, scan, err := store.OpenDurable(durCfg(img, 2))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if scan.Clean {
		t.Error("crash image reported Clean")
	}
	for k := int64(1); k <= 30; k++ {
		if v, ok := s2.Get(k); !ok || v != k {
			t.Errorf("acked key %d lost (got %d,%v)", k, v, ok)
		}
	}
	_ = s2.CloseWAL()
	_ = s.CloseWAL()
}

func TestDurabilityErrorPoisons(t *testing.T) {
	fb := wal.NewFailBackend(wal.NewMemBackend())
	cfg := durCfg(fb, 1)
	cfg.Ack = wal.AckSync
	s, _, err := store.OpenDurable(cfg)
	if err != nil {
		t.Fatalf("store.OpenDurable: %v", err)
	}
	durPut(t, s, 1, 1)
	fb.Arm(wal.FailPoint{Kind: wal.FailSync, N: 2}) // next record's fsync
	err = s.Atomically(0, func(tx *stm.Tx, p *store.Part[int64, int64]) error {
		p.Put(tx, mustKeyIn(s, 0, 100), 2)
		return nil
	})
	var de *store.DurabilityError
	if !errors.As(err, &de) {
		t.Fatalf("write over failed fsync = %v, want store.DurabilityError", err)
	}
	// In-memory state advanced (documented), but the log is poisoned:
	// the next write also fails durability.
	err = s.Atomically(0, func(tx *stm.Tx, p *store.Part[int64, int64]) error {
		p.Put(tx, mustKeyIn(s, 0, 200), 3)
		return nil
	})
	if !errors.As(err, &de) {
		t.Fatalf("write after poison = %v, want store.DurabilityError", err)
	}
	if st, ok := s.WALStats(); !ok || st.Failed == 0 {
		t.Errorf("WALStats = %+v, %v; want Failed set", st, ok)
	}
}

// mustKeyIn finds a key >= from routing to partition part.
func mustKeyIn(s *store.Store[int64, int64], part int, from int64) int64 {
	for k := from; ; k++ {
		if s.PartitionOf(k) == part {
			return k
		}
	}
}

// TestTornFixturesCertified drives the four damaged-log fixtures
// through the store's recovery path: the recoverable ones (truncated
// tail, empty final segment) must rebuild a certified per-partition
// prefix; the corrupt ones (mid-log bit flip, duplicated segment) must
// be refused with a witness. Deterministic — the fixtures damage a
// fixed sealed log.
func TestTornFixturesCertified(t *testing.T) {
	const parts, keys = 2, 30
	build := func(t *testing.T) *wal.MemBackend {
		t.Helper()
		b := wal.NewMemBackend()
		cfg := durCfg(b, parts)
		cfg.SegmentBytes = 256 // force several segments
		s, _, err := store.OpenDurable(cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		for k := int64(1); k <= keys; k++ {
			durPut(t, s, k, k*7)
		}
		if err := s.CloseWAL(); err != nil {
			t.Fatalf("build seal: %v", err)
		}
		return b
	}
	names := func(t *testing.T, b *wal.MemBackend) []string {
		t.Helper()
		ns, err := b.List()
		if err != nil || len(ns) < 2 {
			t.Fatalf("fixture log has segments %v (%v), want several", ns, err)
		}
		return ns
	}
	// recoverCertified opens the damaged log with one recorder per
	// partition and requires the replay histories to certify.
	recoverCertified := func(t *testing.T, b *wal.MemBackend) (*store.Store[int64, int64], *wal.ScanResult) {
		t.Helper()
		var recs []*stm.Recorder
		cfg := durCfg(b, parts)
		cfg.Store.EngineOptions = func(int) []stm.Option {
			r := stm.NewRecorder()
			recs = append(recs, r)
			return []stm.Option{stm.WithRecorder(r)}
		}
		s, scan, err := store.OpenDurable(cfg)
		if err != nil {
			t.Fatalf("recovery refused: %v", err)
		}
		itemOf := func(id uint64) (core.Item, bool) {
			return core.Item(fmt.Sprintf("t%d", id)), true
		}
		for pi, r := range recs {
			attempts := r.Take()
			if len(attempts) == 0 {
				continue
			}
			exec, err := conformance.StampInterned(attempts, itemOf, 1)
			if err != nil {
				t.Fatalf("stamp partition %d: %v", pi, err)
			}
			if rep := certify.Check(certify.FromExecution(exec), certify.StrictSerializability); rep.Verdict == certify.Violated {
				t.Fatalf("partition %d replay history violated: %s", pi, rep)
			}
		}
		return s, scan
	}
	// assertPrefix requires the recovered state to be a per-partition
	// prefix of the build workload with correct values.
	assertPrefix := func(t *testing.T, s *store.Store[int64, int64]) {
		t.Helper()
		gone := map[int]bool{}
		for k := int64(1); k <= keys; k++ {
			p := s.PartitionOf(k)
			v, ok := s.Get(k)
			if ok && gone[p] {
				t.Fatalf("non-prefix recovery: key %d present after a gap in partition %d", k, p)
			}
			if ok && v != k*7 {
				t.Fatalf("key %d recovered as %d, want %d", k, v, k*7)
			}
			if !ok {
				gone[p] = true
			}
		}
	}

	t.Run("truncated-tail", func(t *testing.T) {
		b := build(t)
		ns := names(t, b)
		last := ns[len(ns)-1]
		data, err := b.Load(last)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Truncate(last, len(data)-7); err != nil {
			t.Fatal(err)
		}
		s, scan := recoverCertified(t, b)
		if scan.Clean {
			t.Error("truncated log reported Clean")
		}
		if len(scan.Torn) == 0 {
			t.Error("truncation not reported as a torn tail")
		}
		assertPrefix(t, s)
		_ = s.CloseWAL()
	})

	t.Run("empty-final-segment", func(t *testing.T) {
		b := build(t)
		ns := names(t, b)
		var idx int
		if _, err := fmt.Sscanf(ns[len(ns)-1], "wal-%d.seg", &idx); err != nil {
			t.Fatalf("parsing segment name %q: %v", ns[len(ns)-1], err)
		}
		seg, err := b.Create(fmt.Sprintf("wal-%016d.seg", idx+1))
		if err != nil {
			t.Fatal(err)
		}
		_ = seg.Close()
		s, scan := recoverCertified(t, b)
		if scan.Clean {
			t.Error("log with empty final segment reported Clean (seal is not last)")
		}
		assertPrefix(t, s)
		for k := int64(1); k <= keys; k++ {
			if _, ok := s.Get(k); !ok {
				t.Fatalf("key %d lost to an empty segment that held no data", k)
			}
		}
		_ = s.CloseWAL()
	})

	t.Run("bit-flip-refuses", func(t *testing.T) {
		b := build(t)
		ns := names(t, b)
		if err := b.Corrupt(ns[0], 30); err != nil { // mid-record of the first segment
			t.Fatal(err)
		}
		_, _, err := store.OpenDurable(durCfg(b, parts))
		var ce *wal.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit-flipped log opened: err = %v, want wal.CorruptError", err)
		}
		if ce.Segment != ns[0] {
			t.Errorf("witness names segment %q, want %q", ce.Segment, ns[0])
		}
	})

	t.Run("duplicated-segment-refuses", func(t *testing.T) {
		b := build(t)
		ns := names(t, b)
		var idx int
		if _, err := fmt.Sscanf(ns[len(ns)-1], "wal-%d.seg", &idx); err != nil {
			t.Fatal(err)
		}
		if err := b.Duplicate(ns[0], fmt.Sprintf("wal-%016d.seg", idx+1)); err != nil {
			t.Fatal(err)
		}
		_, _, err := store.OpenDurable(durCfg(b, parts))
		var ce *wal.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("duplicated-segment log opened: err = %v, want wal.CorruptError", err)
		}
	})
}

// TestDurableCrashPointSweepCertified is the PR's acceptance criterion:
// kill the store at every numbered backend operation, recover from the
// fsynced image, and require (a) every acknowledged commit survived,
// (b) the recovered state is a per-partition commit prefix, and (c) a
// recorded recovery — replay plus fresh post-recovery traffic — is
// certified strictly serializable.
func TestDurableCrashPointSweepCertified(t *testing.T) {
	const parts, keys = 2, 24
	type ranResult struct {
		acked []int64 // keys whose Atomically returned nil, in order
	}
	workload := func(backend wal.Backend) (ranResult, error) {
		var res ranResult
		cfg := durCfg(backend, parts)
		cfg.SegmentBytes = 512
		s, _, err := store.OpenDurable(cfg)
		if err != nil {
			return res, err
		}
		for k := int64(1); k <= keys; k++ {
			k := k
			err := s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
				p.Put(tx, k, k*7)
				return nil
			})
			if err != nil {
				return res, err
			}
			res.acked = append(res.acked, k)
		}
		return res, s.CloseWAL()
	}

	probe := wal.NewFailBackend(wal.NewMemBackend())
	if _, err := workload(probe); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Ops()
	if total < keys {
		t.Fatalf("workload exposes only %d crash points", total)
	}

	for n := uint64(1); n <= total; n++ {
		mem := wal.NewMemBackend()
		fb := wal.NewFailBackend(mem)
		fb.Arm(wal.FailPoint{Kind: wal.FailCrash, N: n})
		ran, err := workload(fb)
		if err == nil {
			if fb.Crashed() {
				t.Fatalf("crash point %d fired but workload succeeded", n)
			}
			continue
		}

		// Recover with one recorder per partition so replay and the
		// post-recovery probe become one certified history.
		img := mem.Clone(0)
		recs := make([]*stm.Recorder, 0, parts)
		cfg := durCfg(img, parts)
		cfg.Store.EngineOptions = func(part int) []stm.Option {
			r := stm.NewRecorder()
			recs = append(recs, r)
			return []stm.Option{stm.WithRecorder(r)}
		}
		s2, scan, err := store.OpenDurable(cfg)
		if err != nil {
			t.Fatalf("crash point %d: recovery refused: %v", n, err)
		}

		// (a) acked ⇒ survives; (b) prefix shape: key k present only if
		// every earlier key of its partition is present.
		seen := map[int64]bool{}
		for k := int64(1); k <= keys; k++ {
			_, ok := s2.Get(k)
			seen[k] = ok
		}
		for _, k := range ran.acked {
			// The crashing Atomically is not in acked; everything acked
			// before it must be here.
			if !seen[k] {
				t.Fatalf("crash point %d: acked key %d lost (horizons %v)", n, k, scan.Horizon)
			}
		}
		for k := int64(1); k <= keys; k++ {
			if seen[k] {
				continue
			}
			// Keys were written in order, one commit each: if k is gone,
			// no later key of k's partition may have survived.
			p := s2.PartitionOf(k)
			for k2 := k + 1; k2 <= keys; k2++ {
				if s2.PartitionOf(k2) == p && seen[k2] {
					t.Fatalf("crash point %d: non-prefix recovery: key %d absent but %d present (partition %d)",
						n, k, k2, p)
				}
			}
		}

		// Post-recovery traffic on the recovered store.
		for k := int64(keys + 1); k <= keys+4; k++ {
			if err := s2.Atomically(s2.PartitionOf(k), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
				p.Put(tx, k, k)
				return nil
			}); err != nil {
				t.Fatalf("crash point %d: post-recovery write: %v", n, err)
			}
		}
		_ = s2.CloseWAL()

		// (c) certify the stitched history, one partition engine at a
		// time (partitions share no state, so each is its own history).
		itemOf := func(id uint64) (core.Item, bool) {
			return core.Item(fmt.Sprintf("t%d", id)), true
		}
		for pi, r := range recs {
			attempts := r.Take()
			if len(attempts) == 0 {
				continue
			}
			exec, err := conformance.StampInterned(attempts, itemOf, 1)
			if err != nil {
				t.Fatalf("crash point %d: stamp partition %d: %v", n, pi, err)
			}
			rep := certify.Check(certify.FromExecution(exec), certify.StrictSerializability)
			if rep.Verdict == certify.Violated {
				t.Fatalf("crash point %d: partition %d recovery history violated: %s", n, pi, rep)
			}
		}
	}
}
