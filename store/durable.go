// Durability: the store's commit stream, partially constrained.
//
// A durable store appends every writing transaction to a write-ahead
// log (internal/wal) — but the log order is constrained only where
// commit order demands it. Each partition keeps a transactional
// sequence TVar; a writing transaction reads and increments it inside
// itself, so the engine's own concurrency control makes the sequence a
// strict serialization of that partition's writers: seq order IS a
// valid replay order, by the same argument that makes the engine
// correct. Across partitions nothing is ordered, because nothing needs
// to be — single-partition transactions of different partitions
// commute. The physical append order in the log is unconstrained too:
// appends happen after commit, so a later sequence can reach the log
// first, and recovery's contiguous-prefix rule (internal/wal/scan.go)
// plus the writer's contiguous acknowledgement rule (a record is acked
// only when all lower sequences of its partition are durable) keep the
// contract exact: acknowledged ⇒ survives recovery, and whatever
// recovery replays is a state the store really passed through.
//
// Cross transactions are logged as one payload record per touched
// partition — stamped inside each partition's apply transaction while
// the footprint's exclusive locks are held — linked by a single
// decision record naming the cross id and every (partition, sequence)
// participant. Recovery replays a cross all-or-nothing: its records
// count toward their partitions' replayable prefixes only when the
// decision is durable and every participant survived, and the writer
// mirrors the rule by acknowledging a cross only once its decision is
// durable (internal/wal). A crash can therefore never recover some
// partitions' halves without the others — the decision record is the
// single-node shape of a two-phase-commit outcome, and the seam where
// a distributed coordinator would attach (see Cross).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"pcltm/internal/wal"
	"pcltm/stm"
)

// Codec translates keys and values to and from the byte images the log
// stores. Append* must be deterministic; Decode* must reject trailing
// or truncated input (images are stored length-prefixed, so Decode sees
// exactly what Append produced).
type Codec[K comparable, V any] struct {
	AppendKey func(dst []byte, k K) []byte
	DecodeKey func(b []byte) (K, error)
	AppendVal func(dst []byte, v V) []byte
	DecodeVal func(b []byte) (V, error)
}

// Int64Codec is the varint codec for the int64→int64 store the server
// exposes.
func Int64Codec() Codec[int64, int64] {
	app := func(dst []byte, x int64) []byte { return binary.AppendVarint(dst, x) }
	dec := func(b []byte) (int64, error) {
		x, n := binary.Varint(b)
		if n <= 0 || n != len(b) {
			return 0, errors.New("store: malformed int64 image")
		}
		return x, nil
	}
	return Codec[int64, int64]{AppendKey: app, DecodeKey: dec, AppendVal: app, DecodeVal: dec}
}

// DurabilityError reports a commit that is applied in memory but whose
// log append failed: the state advanced, the durability guarantee did
// not. The log is poisoned at this point — every later write returns
// the same class of error — so callers should treat it as "stop taking
// writes", not "retry".
type DurabilityError struct {
	Part int
	Seq  uint64
	Err  error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("store: commit applied but not durable (partition %d seq %d): %v", e.Part, e.Seq, e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// DurableConfig opens a store on top of a write-ahead log.
type DurableConfig[K comparable, V any] struct {
	// Store is the in-memory configuration. If Partitions is zero and
	// the log is non-empty, the logged partition count is adopted, so a
	// restart on different hardware cannot silently re-route the
	// keyspace.
	Store Config
	// Backend is the log storage (wal.NewMemBackend, wal.NewFileBackend,
	// or a wal.FailBackend wrapper for fault injection).
	Backend wal.Backend
	// Ack selects the acknowledgement mode (wal.AckGroup default).
	Ack wal.AckMode
	// SegmentBytes caps segment size before rotation (0 = wal default).
	SegmentBytes int64
	// BatchWindow bounds how long the writer waits to widen a group
	// before fsyncing (0 = fsync as soon as the queue drains; see
	// wal.Options.BatchWindow).
	BatchWindow time.Duration
	// Codec translates K and V to log images.
	Codec Codec[K, V]
	// ReplayProc is the process id replay transactions run under when a
	// recorder is attached via Store.EngineOptions.
	ReplayProc int
}

// durableState is the per-store durability harness.
type durableState[K comparable, V any] struct {
	log   *wal.Log
	codec Codec[K, V]
	seq   []*stm.TVar[uint64] // per-partition commit sequence
	bufs  sync.Pool           // *walBuf
}

// walBuf captures one transaction's write set as an encoded ops
// section. It is reset at every attempt, so aborted speculation leaves
// nothing behind.
type walBuf struct {
	ops        []byte
	nops       int
	seq        uint64
	kbuf, vbuf []byte // codec scratch
}

func (b *walBuf) reset() { b.ops, b.nops, b.seq = b.ops[:0], 0, 0 }

// capturePut appends a put op for k=v.
func capturePut[K comparable, V any](b *walBuf, c Codec[K, V], k K, v V) {
	b.kbuf = c.AppendKey(b.kbuf[:0], k)
	b.vbuf = c.AppendVal(b.vbuf[:0], v)
	b.ops = wal.AppendOp(b.ops, false, b.kbuf, b.vbuf)
	b.nops++
}

// captureDelete appends a delete op for k.
func captureDelete[K comparable, V any](b *walBuf, c Codec[K, V], k K) {
	b.kbuf = c.AppendKey(b.kbuf[:0], k)
	b.ops = wal.AppendOp(b.ops, true, b.kbuf, nil)
	b.nops++
}

// OpenDurable recovers a store from its log and arms it for durable
// operation: scan the surviving segments, build the in-memory store,
// replay the per-partition contiguous prefixes through ordinary store
// transactions (so an attached recorder sees recovery as real history),
// then start a new log generation. The returned ScanResult tells the
// caller what recovery found — horizons, torn tails, dropped records,
// whether the previous shutdown was clean.
func OpenDurable[K comparable, V any](cfg DurableConfig[K, V]) (*Store[K, V], *wal.ScanResult, error) {
	if cfg.Backend == nil {
		return nil, nil, errors.New("store: OpenDurable: nil Backend")
	}
	if cfg.Codec.AppendKey == nil || cfg.Codec.DecodeKey == nil ||
		cfg.Codec.AppendVal == nil || cfg.Codec.DecodeVal == nil {
		return nil, nil, errors.New("store: OpenDurable: incomplete Codec")
	}
	scan, err := wal.Scan(cfg.Backend)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Store.Partitions == 0 && scan.Partitions > 0 {
		cfg.Store.Partitions = scan.Partitions
	}
	s := New[K, V](cfg.Store)
	if scan.Partitions > 0 && scan.Partitions != s.Partitions() {
		return nil, nil, fmt.Errorf("store: OpenDurable: log has %d partitions, store configured for %d",
			scan.Partitions, s.Partitions())
	}
	d := &durableState[K, V]{
		codec: cfg.Codec,
		seq:   make([]*stm.TVar[uint64], s.Partitions()),
	}
	d.bufs.New = func() any { return &walBuf{} }
	for i := range d.seq {
		d.seq[i] = stm.NewTVar[uint64](0)
	}
	// Replay before arming: these transactions rebuild state and stamp
	// the sequence TVars up to each partition's horizon, but must not
	// re-log themselves.
	if err := replayRecords(s, cfg.Codec, scan.Records, d.seq, cfg.ReplayProc); err != nil {
		return nil, nil, err
	}
	log, err := wal.Start(cfg.Backend, wal.Options{
		Ack:          cfg.Ack,
		SegmentBytes: cfg.SegmentBytes,
		BatchWindow:  cfg.BatchWindow,
		Partitions:   s.Partitions(),
	}, scan)
	if err != nil {
		return nil, nil, err
	}
	d.log = log
	s.durable = d
	return s, scan, nil
}

// Replay applies a scan's replay plan to a non-durable store — the
// offline judging path (cmd/tmcheck) that rebuilds recovered state
// without starting a new log generation.
func Replay[K comparable, V any](s *Store[K, V], codec Codec[K, V], records []wal.Record, proc int) error {
	return replayRecords(s, codec, records, nil, proc)
}

func replayRecords[K comparable, V any](s *Store[K, V], codec Codec[K, V], records []wal.Record, seq []*stm.TVar[uint64], proc int) error {
	for _, rec := range records {
		rec := rec
		err := s.AtomicallyAs(rec.Part, proc, func(tx *stm.Tx, p *Part[K, V]) error {
			for _, op := range rec.Ops {
				k, err := codec.DecodeKey(op.Key)
				if err != nil {
					return err
				}
				if op.Del {
					p.Delete(tx, k)
					continue
				}
				v, err := codec.DecodeVal(op.Val)
				if err != nil {
					return err
				}
				p.Put(tx, k, v)
			}
			if seq != nil {
				stm.Set(tx, seq[rec.Part], rec.Seq)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("store: replay: partition %d seq %d: %w", rec.Part, rec.Seq, err)
		}
	}
	return nil
}

// Durable reports whether the store carries a write-ahead log.
func (s *Store[K, V]) Durable() bool { return s.durable != nil }

// WALStats snapshots the log's counters; ok is false for a non-durable
// store.
func (s *Store[K, V]) WALStats() (wal.Stats, bool) {
	if s.durable == nil {
		return wal.Stats{}, false
	}
	return s.durable.log.Stats(), true
}

// WALAck returns the log's acknowledgement mode.
func (s *Store[K, V]) WALAck() (wal.AckMode, bool) {
	if s.durable == nil {
		return 0, false
	}
	return s.durable.log.Ack(), true
}

// CloseWAL flushes and seals the log — the graceful-shutdown half of
// the durability contract. The store remains usable in memory but
// writes after CloseWAL fail with a DurabilityError.
func (s *Store[K, V]) CloseWAL() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.log.Close()
}
