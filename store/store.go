// Package store is the partitioned transactional key-value store: the
// keyspace is split across N partitions, each owning its own stm.Engine
// instance — private version clock, orec table, striped counters,
// adaptive regime — and its own sharded tstructs.TMap. A transaction
// that touches keys of one partition runs entirely inside that
// partition's engine, so transactions on different partitions share no
// concurrency-control state at all: no clock ticks to rendezvous on, no
// orec table to alias in, no adaptive regime dragged serial by someone
// else's contention. Disjoint-key workloads therefore commit in
// parallel with machine-level independence, not just algorithm-level
// independence.
//
// This is the store-level reading of the PCL trade-off: parallelism is
// bought by partitioning the keyspace, and the price is that
// cross-partition atomicity needs an escalation protocol. The seam for
// that protocol is Cross (cross.go): a buffered read/compute phase
// followed by an apply phase under an ordered exclusive sweep of every
// partition lock — the degenerate, single-node shape of two-phase
// commit, with the partition locks standing in for participant votes.
// Single-partition operations hold their partition's read lock only, so
// they never coordinate with each other; they coordinate with Cross
// exactly when a cross-partition transaction is in flight.
package store

import (
	"fmt"
	"reflect"
	"runtime"

	"pcltm/stm"
	"pcltm/tstructs"
)

// Config sizes and wires a Store.
type Config struct {
	// Partitions is the partition count; 0 means runtime.GOMAXPROCS(0),
	// matching one engine instance per core. Rounded up to a power of
	// two so routing is a shift.
	Partitions int
	// Engine is the concurrency-control algorithm every partition runs.
	// The zero value selects stm.EngineTL2; set stm.EngineAdaptive to
	// let each partition pick its own regime from its own contention.
	Engine stm.EngineKind
	// Buckets is each partition's TMap bucket count; 0 means
	// tstructs.DefaultBuckets.
	Buckets int
	// EngineOptions, when non-nil, supplies extra options for the given
	// partition's engine — the test seam the conformance harness uses to
	// attach one recorder per partition.
	EngineOptions func(part int) []stm.Option
}

// partition is one keyspace shard: an engine, its map, and the
// escalation lock single-partition work holds shared and Cross holds
// exclusive.
type partition[K comparable, V any] struct {
	mu     rwMutexPadded
	engine *stm.Engine
	m      *tstructs.TMap[K, V]
}

// Store is the partitioned transactional map. All methods are safe for
// concurrent use.
type Store[K comparable, V any] struct {
	parts   []*partition[K, V]
	hash    func(K) uint64
	shift   uint                // 64 - log2(len(parts)), for fibIndex-style routing
	durable *durableState[K, V] // nil unless built by OpenDurable

	// dropCrossPart, when >= 0, plants the half-applied-cross bug for
	// the conformance stitching checker's self-test; see
	// BreakCrossForTest.
	dropCrossPart int
}

// New builds a store whose key hash is derived from K's layout (the
// same derivation as tstructs.NewTMap); it panics for key types with no
// canonical byte image — use NewFunc with an explicit hash for those.
func New[K comparable, V any](cfg Config) *Store[K, V] {
	hash := tstructs.KeyHash[K]()
	if hash == nil {
		panic(fmt.Sprintf("store: key type %v has no derivable hash; use NewFunc",
			reflect.TypeFor[K]()))
	}
	return NewFunc[K, V](cfg, hash)
}

// NewFunc builds a store with an explicit key hash (deterministic,
// agreeing with ==). The hash is shared with each partition's TMap;
// routing decorrelates it first so partition and bucket selection use
// independent bits.
func NewFunc[K comparable, V any](cfg Config, hash func(K) uint64) *Store[K, V] {
	if hash == nil {
		panic("store: NewFunc: nil hash")
	}
	n := cfg.Partitions
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pow, log := 1, uint(0)
	for pow < n {
		pow <<= 1
		log++
	}
	s := &Store[K, V]{
		parts:         make([]*partition[K, V], pow),
		hash:          hash,
		shift:         64 - log,
		dropCrossPart: -1,
	}
	for i := range s.parts {
		var opts []stm.Option
		if cfg.EngineOptions != nil {
			opts = cfg.EngineOptions(i)
		}
		s.parts[i] = &partition[K, V]{
			engine: stm.NewEngine(cfg.Engine, opts...),
			m:      tstructs.NewTMapFunc[K, V](cfg.Buckets, hash),
		}
	}
	return s
}

// Partitions returns the partition count (a power of two).
func (s *Store[K, V]) Partitions() int { return len(s.parts) }

// PartitionOf returns the partition owning k. Routing scrambles the key
// hash with a finalizer before the Fibonacci spread so the bits it
// consumes are independent of the bits each partition's TMap consumes
// for bucket selection (both would otherwise read the top bits of the
// same product, collapsing every partition onto a fraction of its
// buckets).
func (s *Store[K, V]) PartitionOf(k K) int {
	if s.shift == 64 {
		return 0
	}
	return int((mix64(s.hash(k)) * fibMul) >> s.shift)
}

// Engine exposes partition part's engine — for stats, conformance
// recording and benchmarks, not for running transactions behind the
// store's locking discipline.
func (s *Store[K, V]) Engine(part int) *stm.Engine { return s.parts[part].engine }

// Part is the handle Atomically passes to its body: the partition's map
// plus routing enforcement, so a same-partition transaction cannot
// silently file a key under the wrong partition.
type Part[K comparable, V any] struct {
	s    *Store[K, V]
	part int
	m    *tstructs.TMap[K, V]
	buf  *walBuf // non-nil on a durable store: captures the write set
}

// check panics when k is not owned by this handle's partition — a
// routing violation that would corrupt the store (the key would exist
// in a partition no lookup ever searches).
func (p *Part[K, V]) check(k K) {
	if got := p.s.PartitionOf(k); got != p.part {
		panic(fmt.Sprintf("store: key routed to partition %d used inside partition %d's transaction",
			got, p.part))
	}
}

// Get reads k inside the partition transaction.
func (p *Part[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	p.check(k)
	return p.m.Get(tx, k)
}

// Contains tests k inside the partition transaction.
func (p *Part[K, V]) Contains(tx *stm.Tx, k K) bool {
	p.check(k)
	return p.m.Contains(tx, k)
}

// Put stores v under k inside the partition transaction.
func (p *Part[K, V]) Put(tx *stm.Tx, k K, v V) {
	p.check(k)
	p.m.Put(tx, k, v)
	if p.buf != nil {
		capturePut(p.buf, p.s.durable.codec, k, v)
	}
}

// Delete removes k inside the partition transaction.
func (p *Part[K, V]) Delete(tx *stm.Tx, k K) bool {
	p.check(k)
	ok := p.m.Delete(tx, k)
	if p.buf != nil {
		captureDelete(p.buf, p.s.durable.codec, k)
	}
	return ok
}

// Update applies fn to k's current value (ok reports presence) and
// stores the result — the read-modify-write primitive.
func (p *Part[K, V]) Update(tx *stm.Tx, k K, fn func(v V, ok bool) V) {
	p.check(k)
	cur, ok := p.m.Get(tx, k)
	next := fn(cur, ok)
	p.m.Put(tx, k, next)
	if p.buf != nil {
		capturePut(p.buf, p.s.durable.codec, k, next)
	}
}

// Atomically runs fn as one transaction on partition part's engine,
// under the partition's shared escalation lock. Every key fn touches
// must route to part (enforced per operation); transactions on other
// partitions proceed concurrently with no shared state. On a durable
// store a writing transaction additionally stamps the partition's
// commit sequence inside itself and appends its write set to the log
// after commit, blocking per the log's ack mode; a failed append
// returns a DurabilityError (state applied, durability lost).
func (s *Store[K, V]) Atomically(part int, fn func(tx *stm.Tx, p *Part[K, V]) error) error {
	return s.run(part, -1, fn)
}

// AtomicallyAs is Atomically with an explicit process id for an
// attached recorder — the conformance harness's entry point.
func (s *Store[K, V]) AtomicallyAs(part, proc int, fn func(tx *stm.Tx, p *Part[K, V]) error) error {
	return s.run(part, proc, fn)
}

// run is the shared transaction path; proc < 0 means no explicit
// process id.
func (s *Store[K, V]) run(part, proc int, fn func(tx *stm.Tx, p *Part[K, V]) error) error {
	sp := s.parts[part]
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	h := Part[K, V]{s: s, part: part, m: sp.m}
	d := s.durable
	if d != nil {
		h.buf = d.bufs.Get().(*walBuf)
	}
	body := func(tx *stm.Tx) error {
		if h.buf != nil {
			// Reset per attempt: aborted speculation must not leak ops.
			h.buf.reset()
		}
		if err := fn(tx, &h); err != nil {
			return err
		}
		if h.buf != nil && h.buf.nops > 0 {
			// The sequence stamp rides inside the transaction, so the
			// engine's own serialization makes seq order a valid replay
			// order for this partition. Read-only transactions skip it
			// and pay nothing.
			n := stm.Get(tx, d.seq[part]) + 1
			stm.Set(tx, d.seq[part], n)
			h.buf.seq = n
		}
		return nil
	}
	var err error
	if proc < 0 {
		err = sp.engine.Atomically(body)
	} else {
		err = sp.engine.AtomicallyAs(proc, body)
	}
	if h.buf != nil {
		if err == nil && h.buf.nops > 0 {
			if aerr := d.log.Append(part, h.buf.seq, h.buf.nops, h.buf.ops); aerr != nil {
				err = &DurabilityError{Part: part, Seq: h.buf.seq, Err: aerr}
			}
		}
		d.bufs.Put(h.buf)
	}
	return err
}

// Get reads k as a single-key transaction on its partition.
func (s *Store[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	_ = s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *Part[K, V]) error {
		v, ok = p.Get(tx, k)
		return nil
	})
	return v, ok
}

// Put stores v under k as a single-key transaction on its partition.
func (s *Store[K, V]) Put(k K, v V) {
	_ = s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *Part[K, V]) error {
		p.Put(tx, k, v)
		return nil
	})
}

// Delete removes k as a single-key transaction on its partition.
func (s *Store[K, V]) Delete(k K) bool {
	var ok bool
	_ = s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *Part[K, V]) error {
		ok = p.Delete(tx, k)
		return nil
	})
	return ok
}

// Update applies fn to k read-modify-write as one transaction on k's
// partition.
func (s *Store[K, V]) Update(k K, fn func(v V, ok bool) V) {
	_ = s.Atomically(s.PartitionOf(k), func(tx *stm.Tx, p *Part[K, V]) error {
		p.Update(tx, k, fn)
		return nil
	})
}

// Len returns the exact entry count: it takes every partition's
// escalation lock exclusive in partition order (the same total order
// Cross uses, so the two never deadlock), which drains all in-flight
// transactions store-wide, then sums the quiesced per-partition bucket
// counters. The count is therefore a true instantaneous snapshot even
// against concurrent Cross transactions moving keys between partitions.
// The price mirrors Cross's: a Len serializes against every transaction
// in the store — it is an administration operation, not a hot path. For
// cheap monitoring, LenApprox reads without any exclusion.
func (s *Store[K, V]) Len() int {
	for _, p := range s.parts {
		p.mu.Lock()
	}
	var n int
	for _, p := range s.parts {
		n += p.m.LenQuiesced()
	}
	for i := len(s.parts) - 1; i >= 0; i-- {
		s.parts[i].mu.Unlock()
	}
	return n
}

// LenApprox sums the partition sizes with one read transaction per
// partition, excluding nothing. The partitions are read at slightly
// different times, so under concurrent key movement the sum can be off
// by the number of in-flight movers — fine for dashboards, wrong for
// invariant checks; use Len for those.
func (s *Store[K, V]) LenApprox() int {
	var n int
	for part := range s.parts {
		_ = s.Atomically(part, func(tx *stm.Tx, p *Part[K, V]) error {
			n += p.m.Len(tx)
			return nil
		})
	}
	return n
}

// Stats snapshots every partition engine's counters, indexed by
// partition.
func (s *Store[K, V]) Stats() []stm.Stats {
	out := make([]stm.Stats, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.engine.Stats()
	}
	return out
}

// AdaptiveStats snapshots every partition's regime breakdown; ok is
// false when the partitions do not run the adaptive engine. Partitions
// switch regimes independently — one hot partition can go serial while
// the rest stay speculative, which is the point of per-partition
// engines.
func (s *Store[K, V]) AdaptiveStats() ([]stm.AdaptiveStats, bool) {
	out := make([]stm.AdaptiveStats, len(s.parts))
	for i, p := range s.parts {
		st, ok := p.engine.AdaptiveStats()
		if !ok {
			return nil, false
		}
		out[i] = st
	}
	return out, true
}
