// Pipeline: a bounded producer/consumer queue built purely from
// transactional variables and stm.Retry — blocking puts when full,
// blocking takes when empty, no channels, no condition variables.
//
//	go run ./examples/pipeline [-items 1000] [-capacity 8] [-consumers 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"pcltm/stm"
)

// queue is a bounded FIFO over a single TVar.
type queue struct {
	eng *stm.Engine
	buf *stm.TVar[[]int]
	cap int
}

func newQueue(eng *stm.Engine, capacity int) *queue {
	return &queue{eng: eng, buf: stm.NewTVar[[]int](nil), cap: capacity}
}

// Put blocks while the queue is full.
func (q *queue) Put(v int) {
	_ = q.eng.Atomically(func(tx *stm.Tx) error {
		items := stm.Get(tx, q.buf)
		if len(items) >= q.cap {
			stm.Retry(tx)
		}
		stm.Set(tx, q.buf, append(append([]int(nil), items...), v))
		return nil
	})
}

// Take blocks while the queue is empty; -1 is the poison pill.
func (q *queue) Take() int {
	var v int
	_ = q.eng.Atomically(func(tx *stm.Tx) error {
		items := stm.Get(tx, q.buf)
		if len(items) == 0 {
			stm.Retry(tx)
		}
		v = items[0]
		stm.Set(tx, q.buf, append([]int(nil), items[1:]...))
		return nil
	})
	return v
}

func main() {
	items := flag.Int("items", 1000, "items to push through the pipeline")
	capacity := flag.Int("capacity", 8, "queue capacity")
	consumers := flag.Int("consumers", 3, "consumer goroutines")
	flag.Parse()

	eng := stm.NewEngine(stm.EngineTL2)
	q := newQueue(eng, *capacity)

	var sum atomic.Int64
	var count atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < *consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := q.Take()
				if v < 0 {
					return
				}
				sum.Add(int64(v))
				count.Add(1)
			}
		}()
	}

	for i := 1; i <= *items; i++ {
		q.Put(i)
	}
	for c := 0; c < *consumers; c++ {
		q.Put(-1)
	}
	wg.Wait()

	want := int64(*items) * int64(*items+1) / 2
	fmt.Printf("consumed %d items, sum %d (want %d), stats %+v\n",
		count.Load(), sum.Load(), want, eng.Stats())
	if sum.Load() != want || count.Load() != int64(*items) {
		fmt.Println("PIPELINE BROKEN")
		os.Exit(1)
	}
	fmt.Println("pipeline intact: every item delivered exactly once")
}
