// Quickstart: transactional variables and atomic blocks with the stm
// package.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcltm/stm"
)

func main() {
	// Pick an engine: TL2 (speculative), TwoPL (locking) or GlobalLock.
	eng := stm.NewEngine(stm.EngineTL2)

	// Transactional variables hold any Go value.
	balance := stm.NewTVar[int](100)
	history := stm.NewTVar[[]string](nil)

	// Atomically runs the function as a transaction: all-or-nothing,
	// automatically retried on conflicts.
	err := eng.Atomically(func(tx *stm.Tx) error {
		b := stm.Get(tx, balance)
		if b < 30 {
			return fmt.Errorf("insufficient funds: %d", b)
		}
		stm.Set(tx, balance, b-30)
		stm.Set(tx, history, append(stm.Get(tx, history), "withdraw 30"))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("balance: %d\n", balance.Peek())
	fmt.Printf("history: %v\n", history.Peek())
	fmt.Printf("engine:  %s, stats: %+v\n", eng.Kind(), eng.Stats())
}
