// Pclwalkthrough: a narrated run of the PCL adversary against one TM
// protocol, printing every phase of the Section-4 construction — the
// critical-step searches, the assembled executions β and β′, the
// Figure 5/6 value tables, and the final verdict with its evidence.
//
//	go run ./examples/pclwalkthrough [-protocol naive]
package main

import (
	"flag"
	"fmt"
	"os"

	"pcltm/internal/pcl"
	"pcltm/internal/stms/portfolio"
)

func main() {
	protoName := flag.String("protocol", "naive", "portfolio protocol to put on trial")
	flag.Parse()

	proto, err := portfolio.ByName(*protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclwalkthrough: %v (known: %v)\n", err, portfolio.Names())
		os.Exit(2)
	}

	fmt.Printf("Putting %q on trial: %s\n\n", proto.Name(), proto.Description())
	fmt.Println("The PCL theorem says it must violate Parallelism, Consistency or")
	fmt.Println("Liveness somewhere in the following construction. Watching where:")
	fmt.Println()

	o := pcl.NewAdversary(proto).Run()
	fmt.Println(o.Report())

	fmt.Println("adversary phase log:")
	for _, line := range o.Log {
		fmt.Printf("  %s\n", line)
	}
}
