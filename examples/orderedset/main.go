// Orderedset: a sorted singly-linked set built from transactional
// variables — concurrent inserts, removes and membership tests with no
// hand-written locking, demonstrating composable STM data structures
// (the workload DSTM was designed for).
//
//	go run ./examples/orderedset [-writers 6] [-ops 400]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"pcltm/stm"
)

// node is one list cell; next is transactional so structural changes are
// atomic.
type node struct {
	key  int
	next *stm.TVar[*node]
}

// set is a sorted linked set with a sentinel head.
type set struct {
	eng  *stm.Engine
	head *stm.TVar[*node]
}

func newSet(eng *stm.Engine) *set {
	return &set{eng: eng, head: stm.NewTVar[*node](nil)}
}

// locate finds the insertion window (prev-var, current-node) for key
// inside a transaction.
func (s *set) locate(tx *stm.Tx, key int) (*stm.TVar[*node], *node) {
	prev := s.head
	cur := stm.Get(tx, prev)
	for cur != nil && cur.key < key {
		prev = cur.next
		cur = stm.Get(tx, prev)
	}
	return prev, cur
}

// Insert adds key; it reports whether the set changed.
func (s *set) Insert(key int) bool {
	added := false
	_ = s.eng.Atomically(func(tx *stm.Tx) error {
		prev, cur := s.locate(tx, key)
		if cur != nil && cur.key == key {
			added = false
			return nil
		}
		n := &node{key: key, next: stm.NewTVar[*node](cur)}
		stm.Set(tx, prev, n)
		added = true
		return nil
	})
	return added
}

// Remove deletes key; it reports whether the set changed.
func (s *set) Remove(key int) bool {
	removed := false
	_ = s.eng.Atomically(func(tx *stm.Tx) error {
		prev, cur := s.locate(tx, key)
		if cur == nil || cur.key != key {
			removed = false
			return nil
		}
		stm.Set(tx, prev, stm.Get(tx, cur.next))
		removed = true
		return nil
	})
	return removed
}

// Contains tests membership.
func (s *set) Contains(key int) bool {
	found := false
	_ = s.eng.Atomically(func(tx *stm.Tx) error {
		_, cur := s.locate(tx, key)
		found = cur != nil && cur.key == key
		return nil
	})
	return found
}

// Snapshot returns the keys in order, atomically.
func (s *set) Snapshot() []int {
	var keys []int
	_ = s.eng.Atomically(func(tx *stm.Tx) error {
		keys = keys[:0]
		for cur := stm.Get(tx, s.head); cur != nil; cur = stm.Get(tx, cur.next) {
			keys = append(keys, cur.key)
		}
		return nil
	})
	return keys
}

func main() {
	writers := flag.Int("writers", 6, "concurrent writer goroutines")
	ops := flag.Int("ops", 400, "operations per goroutine")
	flag.Parse()

	eng := stm.NewEngine(stm.EngineTL2)
	s := newSet(eng)

	// Track which keys must be present at the end: each worker owns a
	// disjoint key range, inserting all and removing the odd ones.
	var wg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(worker)))
			base := worker * *ops
			for i := 0; i < *ops; i++ {
				s.Insert(base + i)
				if r.Intn(3) == 0 {
					s.Contains(base + r.Intn(*ops))
				}
			}
			for i := 1; i < *ops; i += 2 {
				s.Remove(base + i)
			}
		}(w)
	}
	wg.Wait()

	keys := s.Snapshot()
	// Verify: sorted, and exactly the even offsets of every worker range.
	want := *writers * ((*ops + 1) / 2)
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			sorted = false
		}
	}
	ok := sorted && len(keys) == want
	for _, k := range keys {
		if (k%*ops)%2 != 0 {
			ok = false
		}
	}
	fmt.Printf("set size: %d (want %d), sorted: %v, engine stats: %+v\n",
		len(keys), want, sorted, eng.Stats())
	if !ok {
		fmt.Println("INVARIANT BROKEN")
		os.Exit(1)
	}
	fmt.Println("all invariants hold")
}
