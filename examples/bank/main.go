// Bank: concurrent transfers over shared accounts, rebuilt on the
// partitioned store — the classic STM correctness demo, restated at the
// store layer. Accounts are keyed into a store.Store whose partitions
// each run their own engine instance; a transfer whose two accounts
// land in the same partition commits entirely inside that partition's
// engine (the fast path the partitioning exists for), and a transfer
// that straddles partitions escalates through store.Cross, the
// test-only 2PC-shaped seam. The conservation invariant is audited at
// the end under Cross, so the sum is a consistent cut across every
// partition.
//
//	go run ./examples/bank [-accounts 32] [-goroutines 8] [-transfers 2000] [-partitions 4]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pcltm/stm"
	"pcltm/store"
)

func main() {
	accounts := flag.Int("accounts", 32, "number of accounts")
	goroutines := flag.Int("goroutines", 8, "concurrent transferrers")
	transfers := flag.Int("transfers", 2000, "transfers per goroutine")
	partitions := flag.Int("partitions", 4, "store partitions (each its own engine instance)")
	flag.Parse()

	const initial = 1000
	for _, kind := range stm.EngineKinds() {
		s := store.New[int64, int64](store.Config{
			Partitions: *partitions, Engine: kind,
		})
		for a := int64(0); a < int64(*accounts); a++ {
			s.Put(a, initial)
		}

		var fastPath, crossPath atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < *goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < *transfers; i++ {
					from, to := int64(r.Intn(*accounts)), int64(r.Intn(*accounts))
					if from == to {
						continue
					}
					amount := int64(r.Intn(50) + 1)
					if s.PartitionOf(from) == s.PartitionOf(to) {
						// Both accounts share a partition: one ordinary
						// transaction inside that partition's engine.
						fastPath.Add(1)
						_ = s.Atomically(s.PartitionOf(from), func(tx *stm.Tx, p *store.Part[int64, int64]) error {
							f, _ := p.Get(tx, from)
							if f < amount {
								return nil // declined, still consistent
							}
							p.Put(tx, from, f-amount)
							t, _ := p.Get(tx, to)
							p.Put(tx, to, t+amount)
							return nil
						})
						continue
					}
					// The accounts straddle partitions: escalate.
					crossPath.Add(1)
					_ = s.Cross(func(cx *store.CrossTx[int64, int64]) error {
						f, _ := cx.Get(from)
						if f < amount {
							return nil
						}
						cx.Put(from, f-amount)
						t, _ := cx.Get(to)
						cx.Put(to, t+amount)
						return nil
					})
				}
			}(int64(g) + 1)
		}
		wg.Wait()
		elapsed := time.Since(start)

		// Audit under Cross: a consistent cut of every partition at once.
		var total int64
		_ = s.Cross(func(cx *store.CrossTx[int64, int64]) error {
			total = 0
			for a := int64(0); a < int64(*accounts); a++ {
				v, _ := cx.Get(a)
				total += v
			}
			return nil
		})

		want := int64(*accounts) * initial
		status := "ok"
		if total != want {
			status = fmt.Sprintf("BROKEN (want %d)", want)
		}
		var commits, retries uint64
		for _, st := range s.Stats() {
			commits += st.Commits
			retries += st.Retries
		}
		fmt.Printf("%-6s total=%-8d %-6s %8.1fms  commits=%-7d retries=%-5d same-partition=%d cross=%d\n",
			kind, total, status, float64(elapsed.Microseconds())/1000, commits, retries,
			fastPath.Load(), crossPath.Load())
		if total != want {
			os.Exit(1)
		}
	}
}
