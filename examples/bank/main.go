// Bank: concurrent transfers over shared accounts, run against every
// engine, with the conservation invariant checked at the end — the
// classic STM correctness demo, and a small-scale version of the E1
// experiment (watch the retry counts differ between engines).
//
//	go run ./examples/bank [-accounts 32] [-goroutines 8] [-transfers 2000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"pcltm/stm"
)

func main() {
	accounts := flag.Int("accounts", 32, "number of accounts")
	goroutines := flag.Int("goroutines", 8, "concurrent transferrers")
	transfers := flag.Int("transfers", 2000, "transfers per goroutine")
	flag.Parse()

	const initial = 1000
	for _, kind := range stm.EngineKinds() {
		eng := stm.NewEngine(kind)
		vars := make([]*stm.TVar[int64], *accounts)
		for i := range vars {
			vars[i] = stm.NewTVar[int64](initial)
		}

		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < *goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < *transfers; i++ {
					from, to := r.Intn(*accounts), r.Intn(*accounts)
					if from == to {
						continue
					}
					amount := int64(r.Intn(50) + 1)
					_ = eng.Atomically(func(tx *stm.Tx) error {
						f := stm.Get(tx, vars[from])
						if f < amount {
							return nil // declined, still consistent
						}
						stm.Set(tx, vars[from], f-amount)
						stm.Set(tx, vars[to], stm.Get(tx, vars[to])+amount)
						return nil
					})
				}
			}(int64(g) + 1)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var total int64
		_ = eng.Atomically(func(tx *stm.Tx) error {
			total = 0
			for _, v := range vars {
				total += stm.Get(tx, v)
			}
			return nil
		})

		want := int64(*accounts) * initial
		status := "ok"
		if total != want {
			status = fmt.Sprintf("BROKEN (want %d)", want)
		}
		s := eng.Stats()
		fmt.Printf("%-6s total=%-8d %-6s %8.1fms  commits=%-7d retries=%d\n",
			kind, total, status, float64(elapsed.Microseconds())/1000, s.Commits, s.Retries)
		if total != want {
			os.Exit(1)
		}
	}
}
