package stm

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// syntheticWindow builds a windowMetrics with the given conflict rate
// and write fraction out of 100 attempts / 1000 operations.
func syntheticWindow(conflictRate, writeFraction float64) windowMetrics {
	conflicts := uint64(conflictRate * 100)
	stores := uint64(writeFraction * 1000)
	return windowMetrics{
		attempts:  100,
		commits:   100 - conflicts,
		conflicts: conflicts,
		loads:     1000 - stores,
		stores:    stores,
	}
}

// TestAdaptivePolicySwitchAndHysteresis drives the regime policy with
// synthetic windows: one hot window must not switch (hysteresis), a
// sustained streak must, and the post-switch cooldown plus the needDown
// streak govern the way back.
func TestAdaptivePolicySwitchAndHysteresis(t *testing.T) {
	p := defaultPolicy()
	hot := syntheticWindow(0.6, 0.4)
	cold := syntheticWindow(0.0, 0.4)
	mid := syntheticWindow((p.high+p.low)/2, 0.4)

	if got := p.decide(regimeLow, hot); got != regimeLow {
		t.Fatalf("one hot window switched immediately: got %d", got)
	}
	// A mid-band window resets the streak: the next hot window counts as
	// the first again.
	if got := p.decide(regimeLow, mid); got != regimeLow {
		t.Fatalf("mid-band window moved the regime: got %d", got)
	}
	if got := p.decide(regimeLow, hot); got != regimeLow {
		t.Fatalf("hot streak survived a mid-band window: got %d", got)
	}
	if got := p.decide(regimeLow, hot); got != regimeHigh {
		t.Fatalf("%d consecutive hot windows did not switch up", p.needUp)
	}

	// The engine resets the policy when the switch commits.
	p.reset()

	// Cooldown: the first windows after a switch are ignored outright.
	for i := 0; i < p.cooldown; i++ {
		if got := p.decide(regimeHigh, cold); got != regimeHigh {
			t.Fatalf("cooldown window %d moved the regime: got %d", i, got)
		}
	}
	// Then needDown cold windows walk back down.
	for i := 0; i < p.needDown-1; i++ {
		if got := p.decide(regimeHigh, cold); got != regimeHigh {
			t.Fatalf("cold window %d switched early: got %d", i, got)
		}
	}
	if got := p.decide(regimeHigh, cold); got != regimeLow {
		t.Fatalf("%d cold windows did not switch back down", p.needDown)
	}
}

// TestAdaptivePolicyReadDominatedStaysSpeculative: conflicts on a
// read-dominated workload are what lazy snapshot extension is for;
// the policy must not flee to locking.
func TestAdaptivePolicyReadDominatedStaysSpeculative(t *testing.T) {
	p := defaultPolicy()
	readHot := syntheticWindow(0.6, p.minWriteFrac/2)
	for i := 0; i < 10; i++ {
		if got := p.decide(regimeLow, readHot); got != regimeLow {
			t.Fatalf("read-dominated hot window %d left the speculative regime: got %d", i, got)
		}
	}
}

// TestAdaptivePolicyEscalatesToSerialAndProbesBack: a try-lock failure
// storm on the locking regime (conflict rate above escalate) must reach
// the serial escape hatch, and the serial regime's conflict-free windows
// must eventually probe back down the ladder.
func TestAdaptivePolicyEscalatesToSerialAndProbesBack(t *testing.T) {
	p := defaultPolicy()
	storm := syntheticWindow(0.95, 0.5)
	calm := syntheticWindow(0, 0.5)

	for i := 0; i < p.needUp-1; i++ {
		if got := p.decide(regimeHigh, storm); got != regimeHigh {
			t.Fatalf("storm window %d escalated early: got %d", i, got)
		}
	}
	if got := p.decide(regimeHigh, storm); got != regimeSerial {
		t.Fatalf("%d storm windows did not escalate to serial", p.needUp)
	}

	p.reset()
	steps := 0
	for ; steps < p.cooldown+p.needDown+1; steps++ {
		if got := p.decide(regimeSerial, calm); got == regimeHigh {
			break
		} else if got != regimeSerial {
			t.Fatalf("serial regime moved to %d, want %d", got, regimeHigh)
		}
	}
	if want := p.cooldown + p.needDown - 1; steps != want {
		t.Fatalf("serial regime probed back after %d windows, want %d", steps+1, want+1)
	}
}

// TestAdaptivePolicyEscalatesOnLockFailStorm: try-lock failures per
// attempt are an escalation signal in their own right, even when the
// per-attempt conflict rate stays below the escalate mark (one attempt
// can bounce off several records before dying once).
func TestAdaptivePolicyEscalatesOnLockFailStorm(t *testing.T) {
	p := defaultPolicy()
	storm := syntheticWindow(0.5, 0.5)
	storm.lockFails = storm.attempts * 2 // lockFailRate 2.0 > escalate
	for i := 0; i < p.needUp-1; i++ {
		if got := p.decide(regimeHigh, storm); got != regimeHigh {
			t.Fatalf("lock-fail storm window %d escalated early: got %d", i, got)
		}
	}
	if got := p.decide(regimeHigh, storm); got != regimeSerial {
		t.Fatalf("%d lock-fail storm windows did not escalate to serial", p.needUp)
	}
}

// TestAdaptiveRetryNotCountedAsConflict: an explicit Retry is a wait,
// not contention — a Retry-blocked consumer must not push the policy's
// conflict rate and trigger spurious switches.
func TestAdaptiveRetryNotCountedAsConflict(t *testing.T) {
	e := NewEngine(EngineAdaptive)
	a := e.impl.(*adaptiveEngine)
	flag := NewTVar[bool](false)
	other := NewTVar[int](0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = e.Atomically(func(tx *Tx) error {
			if !Get(tx, flag) {
				Retry(tx)
			}
			return nil
		})
	}()
	// Wake the waiter repeatedly without satisfying its condition, then
	// satisfy it. The consumer never reads `other`, so none of its
	// attempts can genuinely conflict.
	for i := 0; i < 5; i++ {
		_ = e.Atomically(func(tx *Tx) error { Set(tx, other, i); return nil })
		time.Sleep(time.Millisecond)
	}
	_ = e.Atomically(func(tx *Tx) error { Set(tx, flag, true); return nil })
	<-done
	var conflicts uint64
	for r := range a.regimes {
		conflicts += a.regimes[r].conflicts.sum()
	}
	if conflicts != 0 {
		t.Fatalf("Retry waits were counted as %d conflicts", conflicts)
	}
}

// TestAdaptiveEpochDrainBlocksSwitch checks the handoff invariant: once
// a switch is decided, in-flight transactions finish on the old
// delegate, new begins block, and the switch commits (epoch bump,
// delegate swap) only when the engine is idle — never mid-epoch.
func TestAdaptiveEpochDrainBlocksSwitch(t *testing.T) {
	a := newAdaptiveEngine()
	tx1 := a.begin(0).(*adaptiveTx)
	if tx1.regime != regimeLow {
		t.Fatalf("fresh engine began on regime %d, want %d", tx1.regime, regimeLow)
	}

	// Decide a switch while tx1 is in flight.
	a.mu.Lock()
	a.target.Store(regimeHigh)
	epoch0 := a.epoch
	a.mu.Unlock()

	began := make(chan *adaptiveTx)
	go func() { began <- a.begin(0).(*adaptiveTx) }()

	select {
	case <-began:
		t.Fatal("begin crossed a draining epoch boundary")
	case <-time.After(50 * time.Millisecond):
	}

	// The pending switch must not have taken effect mid-epoch.
	a.mu.Lock()
	if a.cur.Load() != regimeLow || a.epoch != epoch0 {
		t.Fatalf("switch committed mid-epoch: cur=%d epoch=%d", a.cur.Load(), a.epoch)
	}
	a.mu.Unlock()

	// Finishing the in-flight transaction drains the epoch; the blocked
	// begin commits the switch and runs on the new delegate.
	if !tx1.commit() {
		t.Fatal("solo transaction failed to commit")
	}
	var tx2 *adaptiveTx
	select {
	case tx2 = <-began:
	case <-time.After(2 * time.Second):
		t.Fatal("begin still blocked after the epoch drained")
	}
	if tx2.regime != regimeHigh {
		t.Fatalf("post-switch begin ran on regime %d, want %d", tx2.regime, regimeHigh)
	}
	a.mu.Lock()
	if a.cur.Load() != regimeHigh || a.epoch != epoch0+1 || a.switches != 1 {
		t.Fatalf("switch bookkeeping: cur=%d epoch=%d switches=%d", a.cur.Load(), a.epoch, a.switches)
	}
	a.mu.Unlock()
	tx2.commit()
}

// TestAdaptiveRegimeSwitchUnderContentionRamp is the end-to-end ramp:
// a disjoint phase must keep the engine speculative, then a hot-variable
// phase must drive a TL2Striped → TwoPL switch, and no update may be
// lost across the handoffs (the sum invariant holds under -race).
func TestAdaptiveRegimeSwitchUnderContentionRamp(t *testing.T) {
	const workers = 8
	const disjointOps = 200
	const hotOps = 400

	e := NewEngine(EngineAdaptive)

	// Phase 1 — disjoint: one private variable per worker, zero
	// conflicts, the engine must stay on the speculative delegate.
	private := make([]*TVar[int64], workers)
	for i := range private {
		private[i] = NewTVar[int64](0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < disjointOps; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, private[w], Get(tx, private[w])+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()

	as, ok := e.AdaptiveStats()
	if !ok {
		t.Fatal("AdaptiveStats not available on the adaptive engine")
	}
	if as.Current != EngineTL2Striped.String() || as.Switches != 0 {
		t.Fatalf("disjoint phase left the speculative regime: current=%s switches=%d",
			as.Current, as.Switches)
	}

	// Phase 2 — contention ramp: every worker hammers one hot variable,
	// yielding between read and write so attempts overlap even on one
	// core. The conflict windows must drive the policy onto TwoPL.
	hot := NewTVar[int64](0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < hotOps; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					v := Get(tx, hot)
					runtime.Gosched()
					Set(tx, hot, v+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()

	as, _ = e.AdaptiveStats()
	if as.Switches == 0 {
		t.Fatalf("contention ramp produced no regime switch: %+v", as)
	}
	var twopl RegimeStats
	for _, r := range as.Regimes {
		if r.Engine == EngineTwoPL.String() {
			twopl = r
		}
	}
	if twopl.Commits == 0 {
		t.Fatalf("TwoPL regime never committed work under contention: %+v", as)
	}

	// No lost updates across the regime handoffs.
	if got := hot.Peek(); got != workers*hotOps {
		t.Fatalf("hot counter = %d, want %d (lost updates across a switch)", got, workers*hotOps)
	}
	for w, tv := range private {
		if got := tv.Peek(); got != disjointOps {
			t.Fatalf("private[%d] = %d, want %d", w, got, disjointOps)
		}
	}
	st := e.Stats()
	if st.Commits != uint64(workers*(disjointOps+hotOps)) {
		t.Fatalf("commits = %d, want %d", st.Commits, workers*(disjointOps+hotOps))
	}
}

// TestAdaptiveStatsOnOtherEngines: the per-regime breakdown is only for
// the adaptive kind.
func TestAdaptiveStatsOnOtherEngines(t *testing.T) {
	if _, ok := NewEngine(EngineTL2).AdaptiveStats(); ok {
		t.Fatal("AdaptiveStats succeeded on a non-adaptive engine")
	}
}
