package stm

import (
	"errors"
	"testing"
)

// Pool-hygiene tests: pooled attempt state is reused by design, so the
// classic failure mode is an entry leaking across reset — a conflicted
// attempt's write set republished by its successor, a leaked undo entry
// resurrecting an overwritten value, a leaked lock-set entry
// double-unlocking an orec. Each test here forces the dangerous
// attempt sequence on the same pooled state (single goroutine → the pool
// hands back the same object) and asserts the leak's observable symptom
// is absent.

// forceTL2Conflict runs one transaction on e whose first attempt is
// doomed: it writes doomedWrites, then a nested committed transaction
// bumps a variable it read, so commit-time validation fails and the
// retry runs retryBody instead.
func forceTL2Conflict(t *testing.T, e *Engine, x *TVar[int],
	doomed func(tx *Tx), retryBody func(tx *Tx)) {
	t.Helper()
	first := true
	if err := e.Atomically(func(tx *Tx) error {
		_ = Get(tx, x)
		if first {
			first = false
			doomed(tx)
			if err := e.Atomically(func(tx2 *Tx) error {
				Set(tx2, x, Get(tx2, x)+1)
				return nil
			}); err != nil {
				return err
			}
			return nil
		}
		retryBody(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolNoWriteSetLeakTL2: a conflicted attempt buffered a write to a;
// its pooled successor writes only b. If reset leaked the write set, the
// retry's commit would publish the stale a write.
func TestPoolNoWriteSetLeakTL2(t *testing.T) {
	for _, kind := range []EngineKind{EngineTL2, EngineTL2Striped} {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			a := NewTVar[int](100)
			b := NewTVar[int](200)
			forceTL2Conflict(t, e, x,
				func(tx *Tx) { Set(tx, a, 111) },
				func(tx *Tx) { Set(tx, b, 222) })
			if got := a.Peek(); got != 100 {
				t.Errorf("conflicted attempt's write to a leaked into the retry's commit: a = %d, want 100", got)
			}
			if got := b.Peek(); got != 222 {
				t.Errorf("retry's own write lost: b = %d, want 222", got)
			}
			if st := e.Stats(); st.Retries == 0 {
				t.Fatalf("no conflict was forced; the test is vacuous")
			}
		})
	}
}

// TestPoolNoReadSetLeakTL2: a conflicted attempt read x (whose version
// then moved). Its pooled successor never reads x; leaked read-set
// entries would make every successor commit fail validation forever.
// The transaction committing at all — with a bounded retry count — is
// the assertion.
func TestPoolNoReadSetLeakTL2(t *testing.T) {
	e := NewEngine(EngineTL2)
	x := NewTVar[int](0)
	y := NewTVar[int](0)
	scratch := NewTVar[int](0)
	forceTL2Conflict(t, e, x,
		// The doomed attempt must write something — read-only TL2
		// commits without re-validation — so it writes a scratch var
		// while x moves under its read.
		func(tx *Tx) { Set(tx, scratch, 1) },
		// The retry still reads x through forceTL2Conflict's Get, which
		// is fine: its version is stable now. Write y to make commit
		// validate.
		func(tx *Tx) { Set(tx, y, 1) })
	if got := y.Peek(); got != 1 {
		t.Errorf("retry failed to commit: y = %d, want 1", got)
	}
	// One forced conflict, one retry: a leaked read set would have
	// produced an unbounded (or at least larger) retry count.
	if st := e.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want exactly 1 (leaked read-set entries re-doom retries)", st.Retries)
	}
}

// TestPoolNoLockSetLeakTwoPL: a conflicted 2PL attempt released its
// orecs during conflictCleanup; if the lock set leaked through reset,
// the successor's release would unlock records it never locked,
// panicking sync.Mutex. Forcing the conflict needs two goroutines
// holding disjoint-then-overlapping records.
func TestPoolNoLockSetLeakTwoPL(t *testing.T) {
	defer func(old int) { OrecShards = old }(OrecShards)
	OrecShards = 1 // every variable shares one record: conflicts are certain
	e := NewEngine(EngineTwoPL)
	x := NewTVar[int](0)
	hold := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = e.Atomically(func(tx *Tx) error {
			Set(tx, x, Get(tx, x)+1)
			close(hold)
			<-release
			return nil
		})
	}()
	<-hold
	// This transaction's first attempts bounce off the held record
	// (conflict, pooled state reused); after release they must commit
	// cleanly without a double-unlock panic.
	done := make(chan error, 1)
	go func() {
		done <- e.Atomically(func(tx *Tx) error {
			Set(tx, x, Get(tx, x)+10)
			return nil
		})
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := x.Peek(); got != 11 {
		t.Errorf("x = %d, want 11", got)
	}
}

// TestPoolNoUndoLogLeak: transaction 1 commits a write to a; its pooled
// successor writes b and aborts. A leaked undo log would roll a back to
// its pre-transaction-1 value — the exact bug NewLeakyPoolEngineForTest
// plants and the conformance harness convicts.
func TestPoolNoUndoLogLeak(t *testing.T) {
	boom := errors.New("boom")
	for _, kind := range []EngineKind{EngineTwoPL, EngineGlobalLock, EngineAdaptive} {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			a := NewTVar[int](1)
			b := NewTVar[int](2)
			if err := e.Atomically(func(tx *Tx) error {
				Set(tx, a, 10)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Atomically(func(tx *Tx) error {
				Set(tx, b, 20)
				return boom
			}); !errors.Is(err, boom) {
				t.Fatal(err)
			}
			if got := a.Peek(); got != 10 {
				t.Errorf("aborting transaction rolled back its predecessor's committed write: a = %d, want 10", got)
			}
			if got := b.Peek(); got != 2 {
				t.Errorf("abort failed to roll back its own write: b = %d, want 2", got)
			}
		})
	}
}

// TestPoolStateReusedAcrossAttempts pins that pooling actually engages —
// the whole hygiene suite would be vacuous if every attempt got fresh
// state. Several transactions run on one goroutine; some adjacent pair
// must share a txState object. (Not every pair: under -race, sync.Pool
// deliberately drops a fraction of puts, so exact reuse is statistical.)
func TestPoolStateReusedAcrossAttempts(t *testing.T) {
	const rounds = 32
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			var prev txState
			reused := false
			for i := 0; i < rounds; i++ {
				var cur txState
				if err := e.Atomically(func(tx *Tx) error {
					cur = tx.st
					Set(tx, x, i%256)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if cur == prev {
					reused = true
				}
				prev = cur
			}
			if !reused {
				t.Errorf("%s: %d transactions never reused attempt state; pooling not engaged", kind, rounds)
			}
		})
	}
}

// TestLeakySelfTestEngineLeaks confirms the planted bug in
// NewLeakyPoolEngineForTest does what its doc says — the undo leak
// resurrects an overwritten committed value — so the conformance
// harness's conviction of it (internal/conformance) is earned.
func TestLeakySelfTestEngineLeaks(t *testing.T) {
	e := NewLeakyPoolEngineForTest()
	a := NewTVar[int](1)
	b := NewTVar[int](2)
	if err := e.Atomically(func(tx *Tx) error {
		Set(tx, a, 10)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := e.Atomically(func(tx *Tx) error {
		Set(tx, b, 20)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if got := a.Peek(); got != 1 {
		t.Fatalf("leaky engine failed to leak: a = %d, want the resurrected 1", got)
	}
}
