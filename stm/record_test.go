package stm

import (
	"errors"
	"runtime"
	"testing"
)

// TestRecorderObservedValues: the log carries exactly the values the
// transaction observed and stored, tagged with the variables' ids and the
// caller's proc.
func TestRecorderObservedValues(t *testing.T) {
	rec := NewRecorder()
	eng := NewEngine(EngineTL2, WithRecorder(rec))
	x := NewTVar[int64](7)
	y := NewTVar[int64](0)
	if err := eng.AtomicallyAs(3, func(tx *Tx) error {
		v := Get(tx, x)
		Set(tx, y, v+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	atts := rec.Take()
	if len(atts) != 1 {
		t.Fatalf("recorded %d attempts, want 1", len(atts))
	}
	a := atts[0]
	if a.Proc != 3 || a.Outcome != AttemptCommitted || a.Attempt != 0 {
		t.Fatalf("attempt metadata wrong: %+v", a)
	}
	if len(a.Ops) != 2 {
		t.Fatalf("recorded %d ops, want 2", len(a.Ops))
	}
	r0, w1 := a.Ops[0], a.Ops[1]
	if r0.Write || r0.TVar != x.ID() || r0.Value.(int64) != 7 {
		t.Errorf("read op wrong: %+v", r0)
	}
	if !w1.Write || w1.TVar != y.ID() || w1.Value.(int64) != 8 {
		t.Errorf("write op wrong: %+v", w1)
	}
	if !(a.BeginSeq < r0.Seq && r0.Seq < w1.Seq && w1.Seq < a.EndSeq) {
		t.Errorf("stamps out of order: begin=%d ops=%d,%d end=%d",
			a.BeginSeq, r0.Seq, w1.Seq, a.EndSeq)
	}
}

// TestRecorderOutcomes: user aborts, Retry waits and conflict restarts
// are classified distinctly, and the conflicted attempt's partial op log
// is kept (its reads happened).
func TestRecorderOutcomes(t *testing.T) {
	rec := NewRecorder()
	eng := NewEngine(EngineTL2, WithRecorder(rec))
	x := NewTVar[int64](0)

	errBoom := errors.New("boom")
	if err := eng.Atomically(func(tx *Tx) error {
		Get(tx, x)
		return errBoom
	}); !errors.Is(err, errBoom) {
		t.Fatalf("abort error lost: %v", err)
	}
	atts := rec.Take()
	if len(atts) != 1 || atts[0].Outcome != AttemptAborted || len(atts[0].Ops) != 1 {
		t.Fatalf("user abort misrecorded: %+v", atts)
	}

	// Force a TL2 commit-time conflict: the first attempt reads x, a
	// concurrent transaction bumps x before the first attempt commits its
	// write, so validation fails and the retry commits.
	first := true
	if err := eng.Atomically(func(tx *Tx) error {
		v := Get(tx, x)
		if first {
			first = false
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = eng.Atomically(func(tx2 *Tx) error {
					Set(tx2, x, Get(tx2, x)+100)
					return nil
				})
			}()
			<-done
		}
		Set(tx, x, v+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	atts = rec.Take()
	var outcomes []AttemptOutcome
	for _, a := range atts {
		outcomes = append(outcomes, a.Outcome)
	}
	// Three attempts: the doomed first, the interferer, the retry.
	if len(atts) != 3 {
		t.Fatalf("recorded %d attempts %v, want 3", len(atts), outcomes)
	}
	conflicted, committed := 0, 0
	for _, o := range outcomes {
		switch o {
		case AttemptConflicted:
			conflicted++
		case AttemptCommitted:
			committed++
		}
	}
	if conflicted != 1 || committed != 2 {
		t.Fatalf("outcomes %v, want one conflicted and two committed", outcomes)
	}
	if x.Peek() != 101 {
		t.Fatalf("x = %d, want 101", x.Peek())
	}
}

// TestRecorderRetryOutcome: an attempt that blocks in Retry is logged as
// waited, not as contention and not as a commit.
func TestRecorderRetryOutcome(t *testing.T) {
	rec := NewRecorder()
	eng := NewEngine(EngineGlobalLock, WithRecorder(rec))
	flag := NewTVar[int64](0)

	done := make(chan error, 1)
	go func() {
		done <- eng.AtomicallyAs(1, func(tx *Tx) error {
			if Get(tx, flag) == 0 {
				Retry(tx)
			}
			return nil
		})
	}()
	// Wait until the waiter's blocked attempt has been recorded.
	for rec.Len() == 0 {
		runtime.Gosched()
	}
	if err := eng.AtomicallyAs(0, func(tx *Tx) error {
		Set(tx, flag, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waited, committed := 0, 0
	for _, a := range rec.Take() {
		switch a.Outcome {
		case AttemptWaited:
			waited++
		case AttemptCommitted:
			committed++
		}
	}
	if waited != 1 || committed != 2 {
		t.Fatalf("waited=%d committed=%d, want 1 and 2", waited, committed)
	}
}

// TestRecorderOrElseRollback: the abandoned alternative's ops leave the
// log; the taken alternative's stay.
func TestRecorderOrElseRollback(t *testing.T) {
	rec := NewRecorder()
	eng := NewEngine(EngineTL2, WithRecorder(rec))
	a := NewTVar[int64](1)
	b := NewTVar[int64](2)
	if err := eng.Atomically(func(tx *Tx) error {
		return OrElse(tx,
			func(tx *Tx) error {
				Get(tx, a)
				Set(tx, a, 10)
				Retry(tx)
				return nil
			},
			func(tx *Tx) error {
				Set(tx, b, Get(tx, b)+1)
				return nil
			})
	}); err != nil {
		t.Fatal(err)
	}
	atts := rec.Take()
	if len(atts) != 1 {
		t.Fatalf("recorded %d attempts, want 1", len(atts))
	}
	for _, op := range atts[0].Ops {
		if op.TVar == a.ID() {
			t.Errorf("abandoned alternative's op on a leaked into the log: %+v", op)
		}
	}
	if n := len(atts[0].Ops); n != 2 {
		t.Errorf("kept %d ops, want 2 (read b, write b)", n)
	}
}

// TestRecorderOffIsInert: without a recorder the engine behaves as
// before and WithRecorder on a second engine does not see it.
func TestRecorderOffIsInert(t *testing.T) {
	eng := NewEngine(EngineTwoPL)
	x := NewTVar[int64](0)
	if err := eng.Atomically(func(tx *Tx) error {
		Set(tx, x, Get(tx, x)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if x.Peek() != 1 {
		t.Fatalf("x = %d, want 1", x.Peek())
	}
}

// TestRecorderAllEnginesSmoke: the hook seam sits above the engine
// interfaces, so every registered engine records through it unmodified.
func TestRecorderAllEnginesSmoke(t *testing.T) {
	for _, kind := range EngineKinds() {
		rec := NewRecorder()
		eng := NewEngine(kind, WithRecorder(rec))
		x := NewTVar[int64](0)
		if err := eng.AtomicallyAs(2, func(tx *Tx) error {
			Set(tx, x, Get(tx, x)+1)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		atts := rec.Take()
		if len(atts) != 1 || atts[0].Outcome != AttemptCommitted ||
			len(atts[0].Ops) != 2 || atts[0].Proc != 2 {
			t.Fatalf("%s misrecorded: %+v", kind, atts)
		}
	}
}
