package stm

// The raw-word value plane. Values used to flow through the engines as
// `any`, which made every Set of a string, float, large integer or small
// struct box its argument — one heap allocation per write on a hot path
// that PR 4 had otherwise driven to zero. Values now flow as vwords: up
// to two raw machine words plus one GC-visible pointer word, classified
// once per TVar type at construction. Get/Set convert between T and the
// word form with unsafe loads/stores of the value's own bytes, so for
// every word-representable type the whole pipeline — write set, undo
// log, tvar storage, publication — touches the allocator zero times.
// Types the words cannot carry (interfaces, pointer-mixed or >2-word
// structs, slices) keep the old boxed representation behind the same
// API, documented as the fallback.

import (
	"reflect"
	"unsafe"
)

// valueKind is a TVar element type's raw-word classification, computed
// once by NewTVar and fixed for the variable's lifetime.
type valueKind uint8

const (
	// kindWord: pointer-free, at most 8 bytes (ints, floats, bool,
	// small pointer-free structs/arrays). One data word.
	kindWord valueKind = iota
	// kindPair: pointer-free, 9..16 bytes (two-word structs,
	// complex128, [2]uint64). Two data words.
	kindPair
	// kindString: string-kind types. The data pointer rides in the
	// GC-visible pointer slot, the length in a data word.
	kindString
	// kindPointer: exactly one pointer word (*T, unsafe.Pointer, map,
	// chan, func). The pointer slot alone.
	kindPointer
	// kindPtrLo: a mixed pointer+scalar struct with the pointer word at
	// offset 0 and pointer-free bytes at [8,size) — e.g. struct{P *T;
	// N int}. The pointer rides the GC-visible slot, the scalar bytes
	// ride w0: all three vword words in use, no box. 64-bit only.
	kindPtrLo
	// kindPtrHi: the mirrored layout — pointer-free bytes at [0,8) and
	// the single pointer word at offset 8 (e.g. struct{N int; P *T},
	// size exactly 16). Scalar in w0, pointer in the slot.
	kindPtrHi
	// kindBoxed: everything the words cannot carry — interface kinds
	// (TVar[any], TVar[error]), multi-pointer or >16-byte non-interface
	// types, slices. The pointer slot holds a *any box; Set allocates,
	// exactly as before the word representation.
	kindBoxed
)

var valueKindNames = [...]string{"word", "pair", "string", "pointer", "ptr+word", "word+ptr", "boxed"}

func (k valueKind) String() string {
	if int(k) >= len(valueKindNames) {
		return "kind(?)"
	}
	return valueKindNames[k]
}

// wide reports whether the kind spreads a value over more than one
// storage word, so an in-place publish must bracket the stores with the
// tvar's seqlock for unlocked readers (see tvar.publish).
func (k valueKind) wide() bool {
	return k == kindPair || k == kindString || k == kindPtrLo || k == kindPtrHi
}

// vword is one value in raw-word form. w0/w1 carry pointer-free bytes;
// p is the single GC-visible pointer slot (string data, pointer value,
// or the boxed fallback's *any). The struct is three words passed and
// stored by value — buffering one in a write set or undo log allocates
// nothing, and because p is a real pointer type the GC keeps whatever
// it references alive while the value is in flight.
type vword struct {
	w0, w1 uint64
	p      unsafe.Pointer
}

// classify maps a TVar element type to its kind. The classification is
// conservative: anything not provably carryable in the words goes
// boxed, which is always correct (boxed is the pre-word pipeline).
func classify(t reflect.Type) valueKind {
	switch t.Kind() {
	case reflect.String:
		return kindString
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func:
		return kindPointer
	}
	if pointerFree(t) {
		switch {
		case t.Size() <= 8:
			return kindWord
		case t.Size() <= 16:
			return kindPair
		}
	}
	if k, ok := classifyMixed(t); ok {
		return k
	}
	return kindBoxed
}

// classifyMixed detects the pointer+scalar layouts the three vword words
// can carry without boxing: a type of at most 16 bytes whose pointer map
// is exactly one pointer-sized word, with every other byte pointer-free.
// The pointer word rides the GC-visible slot and the scalar bytes ride
// w0, so structs like {*T; int} take the raw-word path. Only meaningful
// where a pointer fills a whole 8-byte word (64-bit); elsewhere the
// boxed fallback stands.
func classifyMixed(t reflect.Type) (valueKind, bool) {
	if unsafe.Sizeof(uintptr(0)) != 8 || t.Size() > 16 {
		return 0, false
	}
	offs := ptrWordOffsets(t, 0, nil)
	if offs == nil || len(*offs) != 1 {
		return 0, false
	}
	switch off := (*offs)[0]; {
	case off == 0 && t.Size() == 8:
		// A bare pointer in a wrapper struct: layout-identical to the
		// pointer kind, no scalar word at all.
		return kindPointer, true
	case off == 0:
		return kindPtrLo, true
	case off == 8 && t.Size() == 16:
		return kindPtrHi, true
	default:
		return 0, false
	}
}

// ptrWordOffsets collects the offsets of single-word pointer fields
// (pointer, unsafe.Pointer, map, chan, func) reachable in t at base.
// It returns nil when t contains a pointer shape that is not one clean
// word (string, interface, slice) — those types cannot ride the mixed
// kinds. Pointer-free leaves contribute nothing.
func ptrWordOffsets(t reflect.Type, base uintptr, acc *[]uintptr) *[]uintptr {
	if acc == nil {
		acc = new([]uintptr)
	}
	switch t.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func:
		*acc = append(*acc, base)
		return acc
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if acc = ptrWordOffsets(f.Type, base+f.Offset, acc); acc == nil {
				return nil
			}
		}
		return acc
	case reflect.Array:
		for i := 0; i < t.Len(); i++ {
			if acc = ptrWordOffsets(t.Elem(), base+uintptr(i)*t.Elem().Size(), acc); acc == nil {
				return nil
			}
		}
		return acc
	default:
		if pointerFree(t) {
			return acc
		}
		return nil
	}
}

// pointerFree reports whether values of t contain no pointer words, so
// their raw bytes can live in non-GC-visible storage.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return t.Len() == 0 || pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// stringHeader is the runtime layout of a string value — the one layout
// assumption the string kind makes, identical to reflect.StringHeader
// with an honest pointer type.
type stringHeader struct {
	data unsafe.Pointer
	len  int
}

// encode packs *v into raw-word form for the kind. v is only read
// through, never retained, so the callee keeps the caller's value on
// the stack; for word-representable kinds nothing here allocates. The
// boxed fallback allocates its *any box — the documented exception.
//
// Typed word loads are used only when the type's own alignment proves
// them safe (aligned below): the choice is a per-type constant, never a
// function of the value's runtime address, so encode and decode always
// take the same path and the word layout is deterministic. (An
// address-based check would diverge between the typed load and the
// byte copy on big-endian targets, silently corrupting values of types
// whose alignment is smaller than their size.)
func encode[T any](kind valueKind, v *T) vword {
	switch kind {
	case kindWord:
		return vword{w0: loadWordBytes(unsafe.Pointer(v), unsafe.Sizeof(*v), aligned(v))}
	case kindPair:
		// An 8-aligned base keeps both words' sub-loads aligned.
		a := unsafe.Alignof(*v) >= 8
		return vword{
			w0: loadWordBytes(unsafe.Pointer(v), 8, a),
			w1: loadWordBytes(unsafe.Add(unsafe.Pointer(v), 8), unsafe.Sizeof(*v)-8, a),
		}
	case kindString:
		h := (*stringHeader)(unsafe.Pointer(v))
		return vword{w0: uint64(h.len), p: h.data}
	case kindPointer:
		return vword{p: *(*unsafe.Pointer)(unsafe.Pointer(v))}
	case kindPtrLo:
		// Pointer word at [0,8), scalar bytes at [8,size). The base is
		// 8-aligned (the type contains a pointer), so the sub-load at +8
		// is naturally aligned for its width.
		return vword{
			p:  *(*unsafe.Pointer)(unsafe.Pointer(v)),
			w0: loadWordBytes(unsafe.Add(unsafe.Pointer(v), 8), unsafe.Sizeof(*v)-8, true),
		}
	case kindPtrHi:
		return vword{
			w0: loadWordBytes(unsafe.Pointer(v), 8, true),
			p:  *(*unsafe.Pointer)(unsafe.Add(unsafe.Pointer(v), 8)),
		}
	default:
		b := new(any)
		*b = *v
		return vword{p: unsafe.Pointer(b)}
	}
}

// decode unpacks a raw-word value back into T. Exact inverse of encode
// for every kind; allocation-free for all of them (the boxed fallback's
// type assertion reads the existing box).
func decode[T any](kind valueKind, w vword) T {
	var v T
	switch kind {
	case kindWord:
		storeWordBytes(unsafe.Pointer(&v), w.w0, unsafe.Sizeof(v), aligned(&v))
	case kindPair:
		a := unsafe.Alignof(v) >= 8
		storeWordBytes(unsafe.Pointer(&v), w.w0, 8, a)
		storeWordBytes(unsafe.Add(unsafe.Pointer(&v), 8), w.w1, unsafe.Sizeof(v)-8, a)
	case kindString:
		h := (*stringHeader)(unsafe.Pointer(&v))
		h.data = w.p
		h.len = int(w.w0)
	case kindPointer:
		*(*unsafe.Pointer)(unsafe.Pointer(&v)) = w.p
	case kindPtrLo:
		*(*unsafe.Pointer)(unsafe.Pointer(&v)) = w.p
		storeWordBytes(unsafe.Add(unsafe.Pointer(&v), 8), w.w0, unsafe.Sizeof(v)-8, true)
	case kindPtrHi:
		storeWordBytes(unsafe.Pointer(&v), w.w0, 8, true)
		*(*unsafe.Pointer)(unsafe.Add(unsafe.Pointer(&v), 8)) = w.p
	default:
		v = (*(*any)(w.p)).(T)
	}
	return v
}

// aligned reports whether T's own alignment covers its size, so any
// *T — stack local, heap slot, struct field — is naturally aligned for
// a single typed load of the whole value. A compile-time constant per
// instantiation.
func aligned[T any](v *T) bool {
	return unsafe.Alignof(*v) >= unsafe.Sizeof(*v)
}

// loadWordBytes reads the n (≤8) bytes at p into the low bytes of one
// word. The typed fast paths run only when the caller proves natural
// alignment from the type (see encode) — which also keeps checkptr
// (enabled under -race) quiet — otherwise the bytes are copied
// little-end-first, and odd sizes always copy so nothing past the
// value is touched.
func loadWordBytes(p unsafe.Pointer, n uintptr, aligned bool) uint64 {
	if aligned {
		switch n {
		case 8:
			return *(*uint64)(p)
		case 4:
			return uint64(*(*uint32)(p))
		case 2:
			return uint64(*(*uint16)(p))
		case 1:
			return uint64(*(*uint8)(p))
		}
	}
	if n == 0 {
		return 0
	}
	var w uint64
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&w)), n), unsafe.Slice((*byte)(p), n))
	return w
}

// storeWordBytes writes the low n (≤8) bytes of w to p, with the same
// alignment discipline as loadWordBytes.
func storeWordBytes(p unsafe.Pointer, w uint64, n uintptr, aligned bool) {
	if aligned {
		switch n {
		case 8:
			*(*uint64)(p) = w
			return
		case 4:
			*(*uint32)(p) = uint32(w)
			return
		case 2:
			*(*uint16)(p) = uint16(w)
			return
		case 1:
			*(*uint8)(p) = uint8(w)
			return
		}
	}
	if n == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(p), n), unsafe.Slice((*byte)(unsafe.Pointer(&w)), n))
}
