package stm

import "sync/atomic"

func init() {
	registerEngine(EngineTwoPL, "twopl",
		"encounter-time try-locking on a sharded orec table, restart on lock failure (consistent, DAP, blocking)",
		func() engine { return newTwoPLEngine() })
}

// twoPLEngine is encounter-time two-phase locking: every access try-locks
// the ownership record covering the variable, writes go in place with an
// undo log, and a failed try-lock restarts the whole transaction
// (deadlock avoidance by abort). Locks live in a sharded orec table
// (orec.go) rather than on the variables, so per-variable memory stays
// flat and the shard count is a striping knob; only the accessed
// variables' records are ever touched, so the engine remains
// disjoint-access-parallel up to hash aliasing. The corner it gives up
// is liveness: a preempted lock holder stalls every conflicting
// transaction.
type twoPLEngine struct {
	orecs     *orecTable
	lockFails atomic.Uint64
}

func newTwoPLEngine() *twoPLEngine {
	return &twoPLEngine{orecs: newOrecTable(OrecShards)}
}

func (e *twoPLEngine) lockFailCount() uint64 { return e.lockFails.Load() }

// twoPLTx is one 2PL attempt: the held ownership records in acquisition
// order and the undo log of in-place writes.
type twoPLTx struct {
	eng    *twoPLEngine
	locked map[*orec]bool
	lorder []*orec
	undo   undoLog
}

func (e *twoPLEngine) begin(attempt int) txState {
	backoff(attempt)
	return &twoPLTx{eng: e, locked: make(map[*orec]bool)}
}

// acquire try-locks the variable's ownership record at first access;
// failure restarts the whole transaction. Two variables covered by the
// same record share one acquisition.
func (tx *twoPLTx) acquire(tv *tvar) {
	o := tx.eng.orecs.of(tv)
	if tx.locked[o] {
		return
	}
	if !o.mu.TryLock() {
		tx.eng.lockFails.Add(1)
		panic(conflict{})
	}
	tx.locked[o] = true
	tx.lorder = append(tx.lorder, o)
}

func (tx *twoPLTx) load(tv *tvar) any {
	tx.acquire(tv)
	return *tv.val.Load()
}

func (tx *twoPLTx) store(tv *tvar, v any) {
	tx.acquire(tv)
	tx.undo.push(tv)
	nv := v
	tv.val.Store(&nv)
}

// commit releases the locks; the in-place writes are already visible.
// The undo log is kept so wrote() can answer after commit.
func (tx *twoPLTx) commit() bool {
	tx.releaseLocks()
	return true
}

func (tx *twoPLTx) abortCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) conflictCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) releaseLocks() {
	for i := len(tx.lorder) - 1; i >= 0; i-- {
		tx.lorder[i].mu.Unlock()
	}
	tx.lorder = tx.lorder[:0]
	for o := range tx.locked {
		delete(tx.locked, o)
	}
}

func (tx *twoPLTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *twoPLTx) mark() txMark { return len(tx.undo) }

func (tx *twoPLTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.(int)) }
